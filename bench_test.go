// Benchmarks regenerating every table and figure of the paper's evaluation.
// Each BenchmarkFigXX / BenchmarkTabXX target drives the corresponding
// experiment in internal/experiments at a reduced default scale (the same
// code path `pqobench -experiment <id>` runs, with -full for paper scale).
// Reported custom metrics carry each figure's headline number so `go test
// -bench=.` output doubles as a compact reproduction summary.
package main

import (
	"sync"
	"testing"

	"repro/internal/diagram"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/workload"
)

// benchRunner is shared across benchmarks: building four database systems
// plus statistics is setup, not the measured work.
var (
	benchOnce   sync.Once
	benchR      *experiments.Runner
	benchRErr   error
	benchConfig = experiments.Config{
		NumTemplates: 8,
		M:            120,
		Seed:         20170514,
		Orderings:    []workload.Ordering{workload.Random, workload.DecreasingCost},
	}
)

func runner(b *testing.B) *experiments.Runner {
	b.Helper()
	benchOnce.Do(func() {
		benchR, benchRErr = experiments.NewRunner(benchConfig)
	})
	if benchRErr != nil {
		b.Fatal(benchRErr)
	}
	return benchR
}

func BenchmarkFig01ExampleWorkload(b *testing.B) {
	r := runner(b)
	for i := 0; i < b.N; i++ {
		res, err := r.Fig1()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.NumOpt["SCR2"]), "scr2-numOpt/13")
		b.ReportMetric(float64(res.NumOpt["PCM2"]), "pcm2-numOpt/13")
	}
}

func BenchmarkFig06OptOnceEllipse(b *testing.B) {
	r := runner(b)
	for i := 0; i < b.N; i++ {
		dists, err := r.Fig6()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(dists[0].MSO.P95, "optonce-MSO-p95")
		b.ReportMetric(dists[1].MSO.P95, "ellipse-MSO-p95")
	}
}

func BenchmarkFig07PCM2SCR2(b *testing.B) {
	r := runner(b)
	for i := 0; i < b.N; i++ {
		dists, err := r.Fig7()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(dists[0].MSO.P95, "pcm2-MSO-p95")
		b.ReportMetric(dists[1].MSO.P95, "scr2-MSO-p95")
		b.ReportMetric(float64(dists[1].Violations), "scr2-violating-seqs")
	}
}

func BenchmarkFig08SCRLambdaTC(b *testing.B) {
	r := runner(b)
	for i := 0; i < b.N; i++ {
		dists, err := r.Fig8()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(dists[0].TC.Mean, "scr1.1-TC-mean")
		b.ReportMetric(dists[len(dists)-1].TC.Mean, "scr2-TC-mean")
	}
}

func BenchmarkFig09NumOpt(b *testing.B) {
	r := runner(b)
	for i := 0; i < b.N; i++ {
		rows, err := r.Fig9()
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range rows {
			if row.Technique == "SCR2" {
				b.ReportMetric(row.MeanPct, "scr2-numOpt-%")
			}
			if row.Technique == "PCM2" {
				b.ReportMetric(row.MeanPct, "pcm2-numOpt-%")
			}
		}
	}
}

func BenchmarkFig10SCRLambdaNumOpt(b *testing.B) {
	r := runner(b)
	for i := 0; i < b.N; i++ {
		rows, err := r.Fig10()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].MeanPct, "scr1.1-numOpt-%")
		b.ReportMetric(rows[len(rows)-1].MeanPct, "scr2-numOpt-%")
	}
}

func BenchmarkFig11NumOptVsM(b *testing.B) {
	r := runner(b)
	for i := 0; i < b.N; i++ {
		pts, err := r.Fig11([]int{100, 200, 400})
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range pts {
			if p.Technique == "SCR2" && p.M == 400 {
				b.ReportMetric(p.OptPct, "scr2-numOpt-%-at-max-m")
			}
		}
	}
}

func BenchmarkFig12NumOptVsD(b *testing.B) {
	r := runner(b)
	for i := 0; i < b.N; i++ {
		pts, err := r.Fig12()
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range pts {
			if p.D == 10 && p.Technique == "SCR2" {
				b.ReportMetric(p.OptPct, "scr2-numOpt-%-d10")
			}
			if p.D == 10 && p.Technique == "PCM2" {
				b.ReportMetric(p.OptPct, "pcm2-numOpt-%-d10")
			}
		}
	}
}

func BenchmarkFig13NumPlans(b *testing.B) {
	r := runner(b)
	for i := 0; i < b.N; i++ {
		rows, err := r.Fig13()
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range rows {
			if row.Technique == "SCR2" {
				b.ReportMetric(row.P95, "scr2-plans-p95")
			}
			if row.Technique == "PCM2" {
				b.ReportMetric(row.P95, "pcm2-plans-p95")
			}
		}
	}
}

func BenchmarkFig14SCRLambdaNumPlans(b *testing.B) {
	r := runner(b)
	for i := 0; i < b.N; i++ {
		rows, err := r.Fig14()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].Mean, "scr1.1-plans-mean")
		b.ReportMetric(rows[len(rows)-1].Mean, "scr2-plans-mean")
	}
}

func BenchmarkFig15EasySequences(b *testing.B) {
	r := runner(b)
	for i := 0; i < b.N; i++ {
		rows, n, err := r.Fig15()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(n), "easy-sequences")
		for _, row := range rows {
			if row.Technique == "SCR2" {
				b.ReportMetric(row.AvgPlans, "scr2-avg-plans")
			}
		}
	}
}

func BenchmarkFig16AggMSO(b *testing.B) {
	r := runner(b)
	for i := 0; i < b.N; i++ {
		rows, err := r.Fig16()
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range rows {
			if row.Technique == "SCR2" {
				b.ReportMetric(row.Mean, "scr2-MSO-mean")
			}
		}
	}
}

func BenchmarkFig17AggTC(b *testing.B) {
	r := runner(b)
	for i := 0; i < b.N; i++ {
		rows, err := r.Fig17()
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range rows {
			if row.Technique == "SCR2" {
				b.ReportMetric(row.Mean, "scr2-TC-mean")
			}
		}
	}
}

func BenchmarkFig18TenDNumOpt(b *testing.B) {
	r := runner(b)
	for i := 0; i < b.N; i++ {
		pts, err := r.Fig18([]int{100, 200, 400})
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range pts {
			if p.Technique == "SCR2" && p.M == 400 {
				b.ReportMetric(p.OptPct, "scr2-numOpt-%-at-max-m")
			}
		}
	}
}

func BenchmarkFig19PlanBudget(b *testing.B) {
	r := runner(b)
	for i := 0; i < b.N; i++ {
		pts, err := r.Fig19()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(pts[0].OptPct, "numOpt-%-k-inf")
		b.ReportMetric(pts[len(pts)-1].OptPct, "numOpt-%-k2")
	}
}

func BenchmarkFig20RandomOrdering(b *testing.B) {
	r := runner(b)
	for i := 0; i < b.N; i++ {
		rows, err := r.Fig20()
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range rows {
			if row.Technique == "SCR2" {
				b.ReportMetric(row.P95Pct, "scr2-numOpt-p95-%")
			}
		}
	}
}

func BenchmarkFig21RecostAugmented(b *testing.B) {
	r := runner(b)
	for i := 0; i < b.N; i++ {
		rows, err := r.Fig21()
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range rows {
			if row.Technique == "Ranges" {
				b.ReportMetric(row.PlainPlans, "ranges-plans-p95")
				b.ReportMetric(row.AugPlans, "ranges+RC-plans-p95")
			}
		}
	}
}

func BenchmarkTab03Execution(b *testing.B) {
	r := runner(b)
	for i := 0; i < b.N; i++ {
		rows, err := r.Tab3(120, 20000)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range rows {
			if row.Technique == "SCR1.1" {
				b.ReportMetric(float64(row.Plans), "scr1.1-plans")
				b.ReportMetric(float64(row.Total.Milliseconds()), "scr1.1-total-ms")
			}
			if row.Technique == "OptAlways" {
				b.ReportMetric(float64(row.Total.Milliseconds()), "optalways-total-ms")
			}
		}
	}
}

func BenchmarkAppDDynamicLambda(b *testing.B) {
	r := runner(b)
	for i := 0; i < b.N; i++ {
		rows, err := r.AppD(120)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rows[0].NumPlans), "static-plans")
		b.ReportMetric(float64(rows[1].NumPlans), "dynamic-plans")
	}
}

func BenchmarkAppELambdaR(b *testing.B) {
	r := runner(b)
	for i := 0; i < b.N; i++ {
		rows, err := r.AppE(120)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rows[0].Plans), "store-always-plans")
		b.ReportMetric(float64(rows[2].Plans), "sqrt-lambda-plans")
	}
}

func BenchmarkAblationGLOrdering(b *testing.B) {
	r := runner(b)
	for i := 0; i < b.N; i++ {
		rows, err := r.AblationGLOrdering(120)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rows[0].GetPlanRecosts), "naive-recosts")
		b.ReportMetric(float64(rows[1].GetPlanRecosts), "limit8-recosts")
	}
}

func BenchmarkAblationCandidateOrder(b *testing.B) {
	r := runner(b)
	for i := 0; i < b.N; i++ {
		rows, err := r.AblationCandOrder(120)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rows[0].NumOpt), "gl-order-numOpt")
		b.ReportMetric(float64(rows[len(rows)-1].NumOpt), "l-order32-numOpt")
	}
}

func BenchmarkAnorexicReduction(b *testing.B) {
	// Not a paper figure, but the offline complement of SCR's redundancy
	// check (Harish et al., cited as [8]): how few plans a 2-d diagram
	// needs at cost-increase threshold λ=2.
	r := runner(b)
	var eng2d *engine.TemplateEngine
	for _, e := range r.Entries() {
		if e.Tpl.Dimensions() == 2 {
			var err error
			eng2d, err = e.Sys.EngineFor(e.Tpl)
			if err != nil {
				b.Fatal(err)
			}
			break
		}
	}
	if eng2d == nil {
		b.Skip("no 2-d template in the bench suite slice")
	}
	for i := 0; i < b.N; i++ {
		d, err := diagram.Build(eng2d, 14, 1e-4, 0.95)
		if err != nil {
			b.Fatal(err)
		}
		red, err := d.Reduce(2)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(d.NumPlans()), "diagram-plans")
		b.ReportMetric(float64(red.NumPlans()), "anorexic-plans")
	}
}

func BenchmarkHybridOfflineOnline(b *testing.B) {
	// The paper's §9 future work, implemented: seed SCR from an anorexic
	// plan-diagram reduction and measure the optimizer-call savings.
	r := runner(b)
	for i := 0; i < b.N; i++ {
		rows, err := r.HybridStudy(120, 10)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rows[0].NumOpt), "cold-numOpt")
		b.ReportMetric(float64(rows[1].NumOpt), "seeded-numOpt")
	}
}
