#!/bin/sh
# Tier-1 verification: vet, build, run the full test suite, and re-run the
# concurrency-sensitive packages under the race detector. The experiment
# reproduction tests are minutes-long already and ~10x slower under -race
# (they exceed go test's per-package timeout on small machines), so the
# race pass targets the packages with concurrent hot paths.
#
#   ./scripts/check.sh          # vet + build + tests + targeted race pass
#   ./scripts/check.sh -lint    # additionally run pqolint + extra analyzers
#   ./scripts/check.sh -bench   # additionally run the parallel benchmarks
#   ./scripts/check.sh -chaos   # additionally run the full chaos profiles
#
# The short chaos profile (fault-injected serving, docs/ROBUSTNESS.md) is
# part of the default test suite; -chaos runs the long streams.
set -eu
cd "$(dirname "$0")/.."

go vet ./...
go build ./...
# -shuffle=on randomizes test (and subtest) execution order, so hidden
# inter-test state dependencies fail loudly instead of by luck of the
# default order.
go test -shuffle=on ./...
go test -race ./internal/core/ ./internal/server/ ./internal/engine/ \
    ./internal/baselines/ ./internal/harness/ ./internal/memo/ \
    ./internal/faultinject/ ./internal/cluster/

run_lint() {
    # pqolint: the repo's invariant analyzers (docs/LINT.md). Driven through
    # `go vet -vettool` so package loading and result caching come from the
    # go command.
    bin=$(mktemp -d)/pqolint
    go build -o "$bin" ./cmd/pqolint
    go vet -vettool="$bin" ./...
    # Audit the //lint:allow inventory: an allow naming an unknown analyzer
    # (typo or stale after a rename) or missing its reason fails here.
    "$bin" -allows >/dev/null
    rm -f "$bin"
    echo "check.sh: pqolint clean"

    # Extra analyzers, best-effort: these tools are not vendored, so they
    # run only where the host has them installed (e.g. CI).
    if command -v govulncheck >/dev/null 2>&1; then
        govulncheck ./... || exit 1
    else
        echo "check.sh: govulncheck not installed; skipping"
    fi
    if command -v shadow >/dev/null 2>&1; then
        go vet -vettool="$(command -v shadow)" ./... || exit 1
    else
        echo "check.sh: shadow not installed; skipping"
    fi
}

case "${1:-}" in
-lint)
    run_lint
    ;;
-bench)
    # Fast smoke over the memo hot path first: a regression in Optimize/
    # Recost cost or allocations shows up here in seconds (see docs/PERF.md
    # and scripts/bench.sh for the full comparison workflow).
    go test ./internal/memo/ -run '^$' -benchtime 100x -benchmem \
        -bench 'BenchmarkOptimize$|BenchmarkRecost$'
    go test ./internal/server/ -run '^$' -bench BenchmarkServerParallel -cpu 8
    # Regression gates: ProcessParallel/rcu vs the frozen BENCH_PR7.json
    # sweep point and Process p99 during background epoch revalidation vs
    # steady state (>2x fails).
    ./scripts/bench_smoke.sh
    # Scaling smoke: the lock-free read path must still deliver >= 1.25x
    # single-proc throughput at max(8, NumCPU) procs; a lock reintroduced
    # on the hit path flattens the curve and fails here in seconds.
    ./scripts/bench_scaling.sh -smoke
    ;;
-chaos)
    # Full chaos streams: long fault-injected request replays under the
    # race detector (the short profile already runs in the default suite).
    # TestChaos matches both the single-node serving chaos and the
    # network-fault cluster profile (TestChaosCluster): a three-node
    # in-process cluster driven through epoch advances under dropped,
    # delayed, duplicated, and partitioned coordinator RPCs.
    go test -race ./internal/server/ -run 'TestChaos' -chaos.full \
        -count=1 -timeout 600s -v
    ;;
esac

echo "check.sh: all green"
