#!/bin/sh
# Tier-1 verification: vet, build, run the full test suite, and re-run the
# concurrency-sensitive packages under the race detector. The experiment
# reproduction tests are minutes-long already and ~10x slower under -race
# (they exceed go test's per-package timeout on small machines), so the
# race pass targets the packages with concurrent hot paths.
#
#   ./scripts/check.sh          # vet + build + tests + targeted race pass
#   ./scripts/check.sh -bench   # additionally run the parallel benchmarks
set -eu
cd "$(dirname "$0")/.."

go vet ./...
go build ./...
go test ./...
go test -race ./internal/core/ ./internal/server/ ./internal/engine/ \
    ./internal/baselines/ ./internal/harness/ ./internal/memo/

if [ "${1:-}" = "-bench" ]; then
    # Fast smoke over the memo hot path first: a regression in Optimize/
    # Recost cost or allocations shows up here in seconds (see docs/PERF.md
    # and scripts/bench.sh for the full comparison workflow).
    go test ./internal/memo/ -run '^$' -benchtime 100x -benchmem \
        -bench 'BenchmarkOptimize$|BenchmarkRecost$'
    go test ./internal/core/ -run '^$' -bench BenchmarkProcessParallel -cpu 8
    go test ./internal/server/ -run '^$' -bench BenchmarkServerParallel -cpu 8
fi

echo "check.sh: all green"
