#!/bin/sh
# Bench smoke: fast regression gates for the serving hot path, run by
# ./scripts/check.sh -bench (docs/PERF.md has the full workflow).
#
# Gate 1 — throughput: BenchmarkProcessParallel/rcu (the shipped lock-free
# read path) against the frozen PR7 sweep point at 8 procs in
# BENCH_PR7.json. The limit is 2.5x the reference: on an oversubscribed
# single-CPU host individual samples jitter a lot, so the gate takes the
# best of 3 runs and is tuned to catch serialization (a lock back on the
# hit path costs 10-30x, see the rwmutex/mutex variants), not scheduler
# noise. 2.5x the reference also sits just below the retired PR2 rwmutex
# design's 8959 ns/op — regressing to lock-era throughput fails.
# Gate 2 — revalidation tail: BenchmarkProcessDuringRevalidation must show
# p99 Process latency with background epoch revalidation running within
# 2x of the same traffic's steady-state p99 (docs/STATS.md: a statistics
# refresh must never be a self-inflicted cold start).
set -eu
cd "$(dirname "$0")/.."

BASE=$(sed -n 's/.*"8": {"ns_per_op": \([0-9]*\).*/\1/p' BENCH_PR7.json)
if [ -z "$BASE" ]; then
    echo "bench_smoke.sh: no 8-proc rcu reference in BENCH_PR7.json" >&2
    exit 1
fi

OUT=$(mktemp)
trap 'rm -f "$OUT"' EXIT

# -benchtime matches the fixed iteration count bench_scaling.sh used to
# record the reference: with a time-based benchtime the cache keeps
# growing over ~100k iterations and ns/op measures a different workload.
go test ./internal/core/ -run '^$' -bench 'BenchmarkProcessParallel$/rcu' \
    -cpu 8 -benchtime 2000x -count 3 | tee "$OUT"
awk -v base="$BASE" '
$1 ~ /^BenchmarkProcessParallel\/rcu-8/ && $4 == "ns/op" {
    if (best == 0 || $3 + 0 < best) best = $3 + 0
}
END {
    if (best == 0) { print "bench_smoke.sh: no rcu samples"; exit 1 }
    limit = base * 2.5
    printf "bench_smoke.sh: ProcessParallel/rcu best %d ns/op vs PR7 reference %d (limit %.0f)\n", best, base, limit
    if (best > limit) {
        printf "bench_smoke.sh: FAIL — hot-path regression against BENCH_PR7.json\n"
        exit 1
    }
}' "$OUT"

go test ./internal/core/ -run '^$' -bench BenchmarkProcessDuringRevalidation \
    -cpu 8 -benchtime 0.5s | tee "$OUT"
awk '
$1 ~ /^BenchmarkProcessDuringRevalidation\/steady/ {
    for (i = 2; i <= NF; i++) if ($i == "p99-ns") steady = $(i-1) + 0
}
$1 ~ /^BenchmarkProcessDuringRevalidation\/revalidating/ {
    for (i = 2; i <= NF; i++) if ($i == "p99-ns") reval = $(i-1) + 0
}
END {
    if (steady == 0 || reval == 0) { print "bench_smoke.sh: missing p99-ns samples"; exit 1 }
    printf "bench_smoke.sh: Process p99 %d ns steady, %d ns during revalidation (limit %.0f)\n", steady, reval, 2 * steady
    if (reval > 2 * steady) {
        printf "bench_smoke.sh: FAIL — revalidation pushes Process p99 beyond 2x steady state\n"
        exit 1
    }
}' "$OUT"

echo "bench_smoke.sh: hot path within budget"
