#!/bin/sh
# Bench smoke: fast regression gates for the serving hot path, run by
# ./scripts/check.sh -bench (docs/PERF.md has the full workflow).
#
# Gate 1 — throughput: BenchmarkProcessParallel/rwmutex against the frozen
# PR4 reference in BENCH_PR4.json; fails on a >25% ns/op regression.
# Gate 2 — revalidation tail: BenchmarkProcessDuringRevalidation must show
# p99 Process latency with background epoch revalidation running within
# 2x of the same traffic's steady-state p99 (docs/STATS.md: a statistics
# refresh must never be a self-inflicted cold start).
set -eu
cd "$(dirname "$0")/.."

BASE=$(sed -n 's/.*"BenchmarkProcessParallel\/rwmutex": {"ns_per_op": \([0-9]*\).*/\1/p' BENCH_PR4.json)
if [ -z "$BASE" ]; then
    echo "bench_smoke.sh: no BenchmarkProcessParallel/rwmutex reference in BENCH_PR4.json" >&2
    exit 1
fi

OUT=$(mktemp)
trap 'rm -f "$OUT"' EXIT

go test ./internal/core/ -run '^$' -bench 'BenchmarkProcessParallel$' \
    -cpu 8 -benchtime 0.5s -count 3 | tee "$OUT"
awk -v base="$BASE" '
$1 ~ /^BenchmarkProcessParallel\/rwmutex/ && $4 == "ns/op" {
    if (best == 0 || $3 + 0 < best) best = $3 + 0
}
END {
    if (best == 0) { print "bench_smoke.sh: no rwmutex samples"; exit 1 }
    limit = base * 1.25
    printf "bench_smoke.sh: ProcessParallel/rwmutex best %d ns/op vs PR4 reference %d (limit %.0f)\n", best, base, limit
    if (best > limit) {
        printf "bench_smoke.sh: FAIL — >25%% regression against BENCH_PR4.json\n"
        exit 1
    }
}' "$OUT"

go test ./internal/core/ -run '^$' -bench BenchmarkProcessDuringRevalidation \
    -cpu 8 -benchtime 0.5s | tee "$OUT"
awk '
$1 ~ /^BenchmarkProcessDuringRevalidation\/steady/ {
    for (i = 2; i <= NF; i++) if ($i == "p99-ns") steady = $(i-1) + 0
}
$1 ~ /^BenchmarkProcessDuringRevalidation\/revalidating/ {
    for (i = 2; i <= NF; i++) if ($i == "p99-ns") reval = $(i-1) + 0
}
END {
    if (steady == 0 || reval == 0) { print "bench_smoke.sh: missing p99-ns samples"; exit 1 }
    printf "bench_smoke.sh: Process p99 %d ns steady, %d ns during revalidation (limit %.0f)\n", steady, reval, 2 * steady
    if (reval > 2 * steady) {
        printf "bench_smoke.sh: FAIL — revalidation pushes Process p99 beyond 2x steady state\n"
        exit 1
    }
}' "$OUT"

echo "bench_smoke.sh: hot path within budget"
