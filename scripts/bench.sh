#!/bin/sh
# Microbenchmark driver for the optimizer/Recost hot path.
#
#   ./scripts/bench.sh              # run benches, write BENCH_PR2.json
#   ./scripts/bench.sh -count 10    # extra flags forwarded to `go test`
#                                   # (benchstat-friendly: pipe stdout of two
#                                   #  runs into `benchstat old.txt new.txt`)
#
# Emits BENCH_PR2.json: the frozen pre-PR2 baseline (measured on the seed
# map-based search + per-call Env construction) next to the numbers just
# measured, so the trajectory of the hot path is recorded in-repo.
set -eu
cd "$(dirname "$0")/.."

OUT=BENCH_PR2.json
MEMO_TXT=$(mktemp)
CORE_TXT=$(mktemp)
trap 'rm -f "$MEMO_TXT" "$CORE_TXT"' EXIT

go test ./internal/memo/ -run '^$' \
    -bench 'BenchmarkOptimize$|BenchmarkRecost$|BenchmarkRecostTree$' \
    -benchmem "$@" | tee "$MEMO_TXT"
go test ./internal/core/ -run '^$' \
    -bench 'BenchmarkProcessParallel' -cpu 8 -benchmem "$@" | tee "$CORE_TXT"

awk '
BEGIN {
    # Pre-PR2 baseline, measured at the parent commit of this PR with the
    # same benchmarks (3-way TPC-H template, cycling 8 selectivity vectors).
    base["BenchmarkOptimize"]   = "11070 9802 141"
    base["BenchmarkRecost"]     = "690 712 7"
    base["BenchmarkRecostTree"] = "778 584 6"
}
/ns\/op/ {
    name = $1
    sub(/-[0-9]+$/, "", name)      # strip the GOMAXPROCS suffix
    for (i = 2; i <= NF; i++) {
        if ($(i) == "ns/op" && (!(name in ns) || $(i-1) + 0 < ns[name])) {
            ns[name] = $(i-1) + 0
            for (j = i; j <= NF; j++) {
                if ($(j) == "B/op")      bytes[name]  = $(j-1) + 0
                if ($(j) == "allocs/op") allocs[name] = $(j-1) + 0
            }
        }
    }
    if (!(name in seen)) { order[++n] = name; seen[name] = 1 }
}
END {
    printf "{\n  \"pr\": 2,\n"
    printf "  \"note\": \"baseline = seed map-based search + per-call Env; current = flat-array search, pooled env, recost cache\",\n"
    printf "  \"baseline\": {\n"
    first = 1
    for (i = 1; i <= n; i++) {
        name = order[i]
        if (!(name in base)) continue
        split(base[name], b, " ")
        if (!first) printf ",\n"
        first = 0
        printf "    \"%s\": {\"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", name, b[1], b[2], b[3]
    }
    printf "\n  },\n  \"current\": {\n"
    for (i = 1; i <= n; i++) {
        name = order[i]
        printf "    \"%s\": {\"ns_per_op\": %g, \"bytes_per_op\": %g, \"allocs_per_op\": %g}", name, ns[name], bytes[name], allocs[name]
        printf (i < n) ? ",\n" : "\n"
    }
    printf "  }\n}\n"
}' "$MEMO_TXT" "$CORE_TXT" > "$OUT"

echo "bench.sh: wrote $OUT"
