#!/bin/sh
# Resilience-overhead benchmark driver (PR4: fault injection + degraded
# mode). Measures SCR throughput with the full resilience configuration
# armed but idle — degraded fallback on, circuit breaker closed, optimizer
# deadline far above planning time — against the plain configuration, on
# identical traffic. The acceptance bar is "within noise": the resilience
# layer adds work only on optimizer misses, never on the read-path hot
# loop.
#
#   ./scripts/bench_resilience.sh             # run benches, write BENCH_PR4.json
#   ./scripts/bench_resilience.sh -count 5    # extra flags forwarded to `go test`
#
# Emits BENCH_PR4.json with both variants plus the PR2 reference number
# for BenchmarkProcessParallel/rwmutex, so the hot-path trajectory stays
# recorded in-repo.
set -eu
cd "$(dirname "$0")/.."

OUT=BENCH_PR4.json
TXT=$(mktemp)
trap 'rm -f "$TXT"' EXIT

go test ./internal/core/ -run '^$' \
    -bench 'BenchmarkProcessParallelResilient' -cpu 8 -benchmem "$@" | tee "$TXT"

awk '
/ns\/op/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    for (i = 2; i <= NF; i++) {
        if ($(i) == "ns/op" && (!(name in ns) || $(i-1) + 0 < ns[name])) {
            ns[name] = $(i-1) + 0
            for (j = i; j <= NF; j++) {
                if ($(j) == "B/op")      bytes[name]  = $(j-1) + 0
                if ($(j) == "allocs/op") allocs[name] = $(j-1) + 0
            }
        }
    }
    if (!(name in seen)) { order[++n] = name; seen[name] = 1 }
}
END {
    printf "{\n  \"pr\": 4,\n"
    printf "  \"note\": \"resilient = degraded fallback + closed circuit breaker + 100ms optimizer deadline on a healthy engine; must be within noise of baseline (PR2 rwmutex reference: 8959 ns/op)\",\n"
    printf "  \"pr2_reference\": {\"BenchmarkProcessParallel/rwmutex\": {\"ns_per_op\": 8959, \"bytes_per_op\": 219, \"allocs_per_op\": 2}},\n"
    printf "  \"current\": {\n"
    first = 1
    for (i = 1; i <= n; i++) {
        name = order[i]
        if (!first) printf ",\n"
        first = 0
        printf "    \"%s\": {\"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", name, ns[name], bytes[name], allocs[name]
    }
    printf "\n  }\n}\n"
}' "$TXT" > "$OUT"

echo "bench_resilience.sh: wrote $OUT"
cat "$OUT"
