#!/bin/sh
# Scaling sweep for the lock-free (RCU) Process read path (docs/PERF.md).
#
#   ./scripts/bench_scaling.sh           # full sweep -> BENCH_PR7.json
#   ./scripts/bench_scaling.sh -smoke    # fast {1, N} pair, no json output
#   ./scripts/bench_scaling.sh -write    # write-heavy sweep -> BENCH_PR10.json
#
# Write mode sweeps BenchmarkProcessWriteHeavy (8 templates, ~30% store
# traffic, background epoch revalidation) across the sharded write path
# and the reconstructed unsharded baseline (one shared writer mutex +
# eager per-mutation publication), emits BENCH_PR10.json, and enforces
# the PR10 acceptance gates:
#   - sharded throughput >= 2x the unsharded baseline at 16 procs,
#   - the rcu read path stayed within 1.1x of its BENCH_PR7.json point
#     at the same proc count (sharding must not tax readers),
#   - rcu read-path allocs/op still within the 2-alloc budget.
# Smoke mode additionally runs a single write-heavy pair and fails if
# sharding stops paying at all (< 1.25x) — check.sh -bench runs it.
#
# Full mode sweeps BenchmarkProcessParallel/rcu across GOMAXPROCS in powers
# of two up to max(16, NumCPU), emits the curve to BENCH_PR7.json, and
# enforces the PR7 acceptance gates:
#   - throughput at the largest swept point >= 2x the frozen PR2 rwmutex
#     reference (8959 ns/op at -cpu 8, recorded in BENCH_PR4.json),
#   - the curve is monotone: ns/op never rises by more than the jitter
#     allowance as GOMAXPROCS doubles,
#   - allocs/op unchanged from the 2-alloc hit-path budget.
# Smoke mode runs just {1, max(8, NumCPU)} with short benchtime and fails
# if the multi-proc point does not deliver >= 1.25x single-proc throughput
# — the cheapest signal that the read path stopped scaling. check.sh -bench
# runs smoke mode.
#
# The scaling does not require physical cores: ~10% of operations sleep a
# simulated 200us optimizer call, so added GOMAXPROCS overlap miss latency
# even on a single-CPU host; what the sweep detects is serialization (a
# lock on the hit path flattens or inverts the curve, as the rwmutex and
# mutex variants of the same benchmark demonstrate).
set -eu
cd "$(dirname "$0")/.."

PR2_REF=8959        # BenchmarkProcessParallel/rwmutex ns/op, frozen at PR2
ALLOC_BUDGET=2      # hit-path allocs/op (TestProcessHitPathAllocBudget)
JITTER=1.05         # monotonicity allowance between adjacent sweep points
WRITE_SPEEDUP=2     # sharded vs unsharded write-heavy gate at 16 procs
READ_JITTER=1.10    # allowed rcu read-path drift vs the BENCH_PR7.json point

NCPU=$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)

OUT=$(mktemp)
trap 'rm -f "$OUT"' EXIT

if [ "${1:-}" = "-smoke" ]; then
    HI=$NCPU
    [ "$HI" -lt 8 ] && HI=8
    go test ./internal/core/ -run '^$' -bench 'BenchmarkProcessParallel$/rcu' \
        -cpu "1,$HI" -benchtime 1000x -count 2 | tee "$OUT"
    awk -v hi="$HI" '
    $1 ~ /^BenchmarkProcessParallel\/rcu(-[0-9]+)?$/ && $4 == "ns/op" {
        # go test omits the -N GOMAXPROCS suffix when N == 1.
        n = $1
        if (sub(/^.*-/, "", n) == 0) n = "1"
        if (!(n in ns) || $3 + 0 < ns[n]) ns[n] = $3 + 0
    }
    END {
        if (!("1" in ns) || !(hi in ns)) { print "bench_scaling.sh: missing samples"; exit 1 }
        ratio = ns["1"] / ns[hi]
        printf "bench_scaling.sh: rcu %d ns/op @1 proc, %d ns/op @%d procs (%.2fx throughput)\n", ns["1"], ns[hi], hi, ratio
        if (ratio < 1.25) {
            printf "bench_scaling.sh: FAIL — read path stopped scaling (< 1.25x at %d procs)\n", hi
            exit 1
        }
    }' "$OUT"
    # Write-heavy pair: the sharded write path must still beat the
    # reconstructed unsharded baseline by a clear margin (the full gate
    # is 2x in -write mode; smoke only catches it collapsing).
    go test ./internal/core/ -run '^$' -bench 'BenchmarkProcessWriteHeavy' \
        -cpu "$HI" -benchtime 1000x -count 2 | tee "$OUT"
    awk -v hi="$HI" '
    $1 ~ /^BenchmarkProcessWriteHeavy\/(sharded|unsharded)(-[0-9]+)?$/ && $4 == "ns/op" {
        v = ($1 ~ /unsharded/) ? "unsharded" : "sharded"
        if (!(v in ns) || $3 + 0 < ns[v]) ns[v] = $3 + 0
    }
    END {
        if (!("sharded" in ns) || !("unsharded" in ns)) { print "bench_scaling.sh: missing write-heavy samples"; exit 1 }
        ratio = ns["unsharded"] / ns["sharded"]
        printf "bench_scaling.sh: write-heavy sharded %d ns/op vs unsharded %d ns/op (%.2fx) @%d procs\n", ns["sharded"], ns["unsharded"], ratio, hi
        if (ratio < 1.25) {
            printf "bench_scaling.sh: FAIL — sharded write path stopped paying (< 1.25x at %d procs)\n", hi
            exit 1
        }
    }' "$OUT"
    echo "bench_scaling.sh: smoke ok"
    exit 0
fi

if [ "${1:-}" = "-write" ]; then
    WRITE_HI=16
    [ "$NCPU" -gt "$WRITE_HI" ] && WRITE_HI=$NCPU
    go test ./internal/core/ -run '^$' -bench 'BenchmarkProcessWriteHeavy' \
        -cpu "1,4,$WRITE_HI" -benchmem -benchtime 5000x -count 3 | tee "$OUT"
    # The read-path regression point: sharding the write path must not tax
    # readers, so the rcu benchmark is re-run at the PR7 sweep's top proc
    # count and held within READ_JITTER of the recorded BENCH_PR7.json value.
    go test ./internal/core/ -run '^$' -bench 'BenchmarkProcessParallel$/rcu' \
        -cpu "$WRITE_HI" -benchmem -benchtime 2000x -count 3 | tee -a "$OUT"
    PR7_REF=$(awk -v hi="$WRITE_HI" -F'"' '$2 == hi && /ns_per_op/ {
        line = $0; sub(/.*"ns_per_op": /, "", line); sub(/[,}].*/, "", line); print line; exit }' BENCH_PR7.json)
    if [ -z "$PR7_REF" ]; then
        echo "bench_scaling.sh: no BENCH_PR7.json point at $WRITE_HI procs" >&2
        exit 1
    fi

    awk -v hi="$WRITE_HI" -v pr7="$PR7_REF" -v speedgate="$WRITE_SPEEDUP" \
        -v readjitter="$READ_JITTER" -v budget="$ALLOC_BUDGET" '
    function procs(name,   n) {
        n = name
        if (sub(/^.*-/, "", n) == 0) n = "1"
        return n
    }
    $1 ~ /^BenchmarkProcessWriteHeavy\/(sharded|unsharded)(-[0-9]+)?$/ && /ns\/op/ {
        v = ($1 ~ /unsharded/) ? "unsharded" : "sharded"
        n = procs($1)
        key = v SUBSEP n
        for (i = 2; i <= NF; i++) {
            if ($i == "ns/op" && (!(key in ns) || $(i-1) + 0 < ns[key])) {
                ns[key] = $(i-1) + 0
                for (j = i; j <= NF; j++) {
                    if ($j == "B/op")      bytes[key]  = $(j-1) + 0
                    if ($j == "allocs/op") allocs[key] = $(j-1) + 0
                }
            }
        }
        if (!((v, n) in seen)) { order[v, ++cnt[v]] = n; seen[v, n] = 1 }
    }
    $1 ~ /^BenchmarkProcessParallel\/rcu(-[0-9]+)?$/ && /ns\/op/ {
        for (i = 2; i <= NF; i++) {
            if ($i == "ns/op" && (rcu == 0 || $(i-1) + 0 < rcu)) {
                rcu = $(i-1) + 0
                for (j = i; j <= NF; j++) if ($j == "allocs/op") rcuallocs = $(j-1) + 0
            }
        }
    }
    END {
        if (cnt["sharded"] == 0 || cnt["unsharded"] == 0 || rcu == 0) {
            print "bench_scaling.sh: missing write-mode samples" > "/dev/stderr"; exit 1
        }
        if (!(("sharded", hi) in seen) || !(("unsharded", hi) in seen)) {
            printf "bench_scaling.sh: no write-heavy samples at %d procs\n", hi > "/dev/stderr"; exit 1
        }
        speedup = ns["unsharded", hi] / ns["sharded", hi]
        readratio = rcu / pr7
        fail = 0
        if (speedup < speedgate) {
            printf "bench_scaling.sh: FAIL — sharded only %.2fx vs unsharded at %d procs, need >= %dx\n", speedup, hi, speedgate > "/dev/stderr"
            fail = 1
        }
        if (readratio > readjitter) {
            printf "bench_scaling.sh: FAIL — rcu read path %.2fx its BENCH_PR7.json point (%d vs %d ns/op), allowed %.2fx\n", readratio, rcu, pr7, readjitter > "/dev/stderr"
            fail = 1
        }
        if (rcuallocs + 0 > budget) {
            printf "bench_scaling.sh: FAIL — rcu %d allocs/op exceeds the %d-alloc budget\n", rcuallocs, budget > "/dev/stderr"
            fail = 1
        }
        printf "{\n  \"pr\": 10,\n"
        printf "  \"note\": \"BenchmarkProcessWriteHeavy: 8 templates, ~30%% store traffic, background epoch revalidation; sharded = per-template write domains with coalesced publication, unsharded = one shared writer mutex with eager per-mutation publication (the reconstructed pre-sharding write path)\",\n"
        printf "  \"write_heavy\": {\n"
        for (vi = 1; vi <= 2; vi++) {
            v = (vi == 1) ? "sharded" : "unsharded"
            printf "    \"%s\": {\n", v
            for (i = 1; i <= cnt[v]; i++) {
                n = order[v, i]
                printf "      \"%s\": {\"ns_per_op\": %g, \"bytes_per_op\": %g, \"allocs_per_op\": %g}", n, ns[v, n], bytes[v, n], allocs[v, n]
                printf (i < cnt[v]) ? ",\n" : "\n"
            }
            printf (vi < 2) ? "    },\n" : "    }\n"
        }
        printf "  },\n"
        printf "  \"speedup_sharded_vs_unsharded_at_%s_procs\": %.2f,\n", hi, speedup
        printf "  \"read_path\": {\"procs\": %d, \"ns_per_op\": %g, \"allocs_per_op\": %g, \"pr7_reference_ns_per_op\": %g, \"ratio_vs_pr7\": %.2f}\n}\n", hi, rcu, rcuallocs, pr7, readratio
        if (fail) exit 1
        printf "bench_scaling.sh: write-heavy %.2fx at %d procs, rcu read path %.2fx of its PR7 point, allocs within budget\n", speedup, hi, readratio > "/dev/stderr"
    }' "$OUT" > BENCH_PR10.json

    cat BENCH_PR10.json
    echo "bench_scaling.sh: wrote BENCH_PR10.json"
    exit 0
fi

# Powers of two up to max(16, NumCPU).
MAX=16
[ "$NCPU" -gt "$MAX" ] && MAX=$NCPU
CPUS=1
P=2
while [ "$P" -le "$MAX" ]; do
    CPUS="$CPUS,$P"
    P=$((P * 2))
done

go test ./internal/core/ -run '^$' -bench 'BenchmarkProcessParallel$/rcu' \
    -cpu "$CPUS" -benchmem -benchtime 2000x -count 3 "$@" | tee "$OUT"

awk -v ref="$PR2_REF" -v budget="$ALLOC_BUDGET" -v jitter="$JITTER" '
$1 ~ /^BenchmarkProcessParallel\/rcu(-[0-9]+)?$/ && /ns\/op/ {
    # go test omits the -N GOMAXPROCS suffix when N == 1.
    n = $1
    if (sub(/^.*-/, "", n) == 0) n = "1"
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op" && (!(n in ns) || $(i-1) + 0 < ns[n])) {
            ns[n] = $(i-1) + 0
            for (j = i; j <= NF; j++) {
                if ($j == "B/op")      bytes[n]  = $(j-1) + 0
                if ($j == "allocs/op") allocs[n] = $(j-1) + 0
            }
        }
    }
    if (!(n in seen)) { order[++cnt] = n; seen[n] = 1 }
}
END {
    if (cnt == 0) { print "bench_scaling.sh: no rcu samples" > "/dev/stderr"; exit 1 }
    # order[] follows -cpu order, i.e. ascending GOMAXPROCS.
    maxn = order[cnt]
    speedup = ref / ns[maxn]
    fail = 0
    for (i = 2; i <= cnt; i++) {
        prev = order[i-1]; cur = order[i]
        if (ns[cur] > ns[prev] * jitter) {
            printf "bench_scaling.sh: FAIL — curve not monotone: %s procs %d ns/op -> %s procs %d ns/op\n", prev, ns[prev], cur, ns[cur] > "/dev/stderr"
            fail = 1
        }
    }
    for (i = 1; i <= cnt; i++) {
        n = order[i]
        if (allocs[n] + 0 > budget) {
            printf "bench_scaling.sh: FAIL — %s allocs/op at %s procs exceeds the %d-alloc budget\n", allocs[n], n, budget > "/dev/stderr"
            fail = 1
        }
    }
    if (speedup < 2) {
        printf "bench_scaling.sh: FAIL — %.2fx vs PR2 rwmutex reference at %s procs, need >= 2x\n", speedup, maxn > "/dev/stderr"
        fail = 1
    }
    printf "{\n  \"pr\": 7,\n"
    printf "  \"note\": \"BenchmarkProcessParallel/rcu (lock-free snapshot read path) swept across GOMAXPROCS; reference = PR2 rwmutex discipline at -cpu 8\",\n"
    printf "  \"pr2_reference\": {\"BenchmarkProcessParallel/rwmutex\": {\"ns_per_op\": %d, \"bytes_per_op\": 219, \"allocs_per_op\": 2}},\n", ref
    printf "  \"scaling\": {\n"
    for (i = 1; i <= cnt; i++) {
        n = order[i]
        printf "    \"%s\": {\"ns_per_op\": %g, \"bytes_per_op\": %g, \"allocs_per_op\": %g}", n, ns[n], bytes[n], allocs[n]
        printf (i < cnt) ? ",\n" : "\n"
    }
    printf "  },\n"
    printf "  \"speedup_vs_pr2_at_%s_procs\": %.2f\n}\n", maxn, speedup
    if (fail) exit 1
    printf "bench_scaling.sh: %.2fx vs PR2 reference at %s procs, curve monotone, allocs within budget\n", speedup, maxn > "/dev/stderr"
}' "$OUT" > BENCH_PR7.json

cat BENCH_PR7.json
echo "bench_scaling.sh: wrote BENCH_PR7.json"
