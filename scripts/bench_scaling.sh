#!/bin/sh
# Scaling sweep for the lock-free (RCU) Process read path (docs/PERF.md).
#
#   ./scripts/bench_scaling.sh           # full sweep -> BENCH_PR7.json
#   ./scripts/bench_scaling.sh -smoke    # fast {1, N} pair, no json output
#
# Full mode sweeps BenchmarkProcessParallel/rcu across GOMAXPROCS in powers
# of two up to max(16, NumCPU), emits the curve to BENCH_PR7.json, and
# enforces the PR7 acceptance gates:
#   - throughput at the largest swept point >= 2x the frozen PR2 rwmutex
#     reference (8959 ns/op at -cpu 8, recorded in BENCH_PR4.json),
#   - the curve is monotone: ns/op never rises by more than the jitter
#     allowance as GOMAXPROCS doubles,
#   - allocs/op unchanged from the 2-alloc hit-path budget.
# Smoke mode runs just {1, max(8, NumCPU)} with short benchtime and fails
# if the multi-proc point does not deliver >= 1.25x single-proc throughput
# — the cheapest signal that the read path stopped scaling. check.sh -bench
# runs smoke mode.
#
# The scaling does not require physical cores: ~10% of operations sleep a
# simulated 200us optimizer call, so added GOMAXPROCS overlap miss latency
# even on a single-CPU host; what the sweep detects is serialization (a
# lock on the hit path flattens or inverts the curve, as the rwmutex and
# mutex variants of the same benchmark demonstrate).
set -eu
cd "$(dirname "$0")/.."

PR2_REF=8959        # BenchmarkProcessParallel/rwmutex ns/op, frozen at PR2
ALLOC_BUDGET=2      # hit-path allocs/op (TestProcessHitPathAllocBudget)
JITTER=1.05         # monotonicity allowance between adjacent sweep points

NCPU=$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)

OUT=$(mktemp)
trap 'rm -f "$OUT"' EXIT

if [ "${1:-}" = "-smoke" ]; then
    HI=$NCPU
    [ "$HI" -lt 8 ] && HI=8
    go test ./internal/core/ -run '^$' -bench 'BenchmarkProcessParallel$/rcu' \
        -cpu "1,$HI" -benchtime 1000x -count 2 | tee "$OUT"
    awk -v hi="$HI" '
    $1 ~ /^BenchmarkProcessParallel\/rcu(-[0-9]+)?$/ && $4 == "ns/op" {
        # go test omits the -N GOMAXPROCS suffix when N == 1.
        n = $1
        if (sub(/^.*-/, "", n) == 0) n = "1"
        if (!(n in ns) || $3 + 0 < ns[n]) ns[n] = $3 + 0
    }
    END {
        if (!("1" in ns) || !(hi in ns)) { print "bench_scaling.sh: missing samples"; exit 1 }
        ratio = ns["1"] / ns[hi]
        printf "bench_scaling.sh: rcu %d ns/op @1 proc, %d ns/op @%d procs (%.2fx throughput)\n", ns["1"], ns[hi], hi, ratio
        if (ratio < 1.25) {
            printf "bench_scaling.sh: FAIL — read path stopped scaling (< 1.25x at %d procs)\n", hi
            exit 1
        }
    }' "$OUT"
    echo "bench_scaling.sh: smoke ok"
    exit 0
fi

# Powers of two up to max(16, NumCPU).
MAX=16
[ "$NCPU" -gt "$MAX" ] && MAX=$NCPU
CPUS=1
P=2
while [ "$P" -le "$MAX" ]; do
    CPUS="$CPUS,$P"
    P=$((P * 2))
done

go test ./internal/core/ -run '^$' -bench 'BenchmarkProcessParallel$/rcu' \
    -cpu "$CPUS" -benchmem -benchtime 2000x -count 3 "$@" | tee "$OUT"

awk -v ref="$PR2_REF" -v budget="$ALLOC_BUDGET" -v jitter="$JITTER" '
$1 ~ /^BenchmarkProcessParallel\/rcu(-[0-9]+)?$/ && /ns\/op/ {
    # go test omits the -N GOMAXPROCS suffix when N == 1.
    n = $1
    if (sub(/^.*-/, "", n) == 0) n = "1"
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op" && (!(n in ns) || $(i-1) + 0 < ns[n])) {
            ns[n] = $(i-1) + 0
            for (j = i; j <= NF; j++) {
                if ($j == "B/op")      bytes[n]  = $(j-1) + 0
                if ($j == "allocs/op") allocs[n] = $(j-1) + 0
            }
        }
    }
    if (!(n in seen)) { order[++cnt] = n; seen[n] = 1 }
}
END {
    if (cnt == 0) { print "bench_scaling.sh: no rcu samples" > "/dev/stderr"; exit 1 }
    # order[] follows -cpu order, i.e. ascending GOMAXPROCS.
    maxn = order[cnt]
    speedup = ref / ns[maxn]
    fail = 0
    for (i = 2; i <= cnt; i++) {
        prev = order[i-1]; cur = order[i]
        if (ns[cur] > ns[prev] * jitter) {
            printf "bench_scaling.sh: FAIL — curve not monotone: %s procs %d ns/op -> %s procs %d ns/op\n", prev, ns[prev], cur, ns[cur] > "/dev/stderr"
            fail = 1
        }
    }
    for (i = 1; i <= cnt; i++) {
        n = order[i]
        if (allocs[n] + 0 > budget) {
            printf "bench_scaling.sh: FAIL — %s allocs/op at %s procs exceeds the %d-alloc budget\n", allocs[n], n, budget > "/dev/stderr"
            fail = 1
        }
    }
    if (speedup < 2) {
        printf "bench_scaling.sh: FAIL — %.2fx vs PR2 rwmutex reference at %s procs, need >= 2x\n", speedup, maxn > "/dev/stderr"
        fail = 1
    }
    printf "{\n  \"pr\": 7,\n"
    printf "  \"note\": \"BenchmarkProcessParallel/rcu (lock-free snapshot read path) swept across GOMAXPROCS; reference = PR2 rwmutex discipline at -cpu 8\",\n"
    printf "  \"pr2_reference\": {\"BenchmarkProcessParallel/rwmutex\": {\"ns_per_op\": %d, \"bytes_per_op\": 219, \"allocs_per_op\": 2}},\n", ref
    printf "  \"scaling\": {\n"
    for (i = 1; i <= cnt; i++) {
        n = order[i]
        printf "    \"%s\": {\"ns_per_op\": %g, \"bytes_per_op\": %g, \"allocs_per_op\": %g}", n, ns[n], bytes[n], allocs[n]
        printf (i < cnt) ? ",\n" : "\n"
    }
    printf "  },\n"
    printf "  \"speedup_vs_pr2_at_%s_procs\": %.2f\n}\n", maxn, speedup
    if (fail) exit 1
    printf "bench_scaling.sh: %.2fx vs PR2 reference at %s procs, curve monotone, allocs within budget\n", speedup, maxn > "/dev/stderr"
}' "$OUT" > BENCH_PR7.json

cat BENCH_PR7.json
echo "bench_scaling.sh: wrote BENCH_PR7.json"
