// Command pqoexplain inspects the optimizer: it prints the chosen plan for
// a template at given selectivities, or sweeps a 2-d selectivity grid and
// renders an ASCII plan diagram (the optimality regions whose diversity
// drives parametric query optimization).
//
// Usage:
//
//	pqoexplain -list
//	pqoexplain -template tpch_li_ord_00 -sv 0.01,0.5
//	pqoexplain -template tpch_li_ord_00 -diagram -grid 24
//	pqoexplain -catalog tpch -sql "SELECT * FROM lineitem, orders WHERE ..." -sv 0.01,0.5
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	pdiag "repro/internal/diagram"
	"repro/internal/engine"
	"repro/internal/sqlparse"
	"repro/internal/suite"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list suite templates")
		name     = flag.String("template", "", "template name (see -list)")
		sqlText  = flag.String("sql", "", "ad-hoc SQL template (with -catalog) instead of -template")
		catName  = flag.String("catalog", "tpch", "catalog for -sql: tpch, tpcds, rd1, rd2")
		svArg    = flag.String("sv", "", "comma-separated selectivity vector, e.g. 0.01,0.5")
		diagram  = flag.Bool("diagram", false, "render a 2-d ASCII plan diagram")
		anorexic = flag.Float64("anorexic", 0, "with -diagram: also render the λ-reduced (anorexic) diagram")
		grid     = flag.Int("grid", 20, "plan-diagram grid resolution per axis")
		seed     = flag.Int64("seed", 20170514, "statistics seed")
	)
	flag.Parse()

	systems, err := suite.NewSystems(*seed)
	if err != nil {
		fatal(err)
	}
	entries, err := suite.Build(systems)
	if err != nil {
		fatal(err)
	}

	if *sqlText != "" {
		var sys *engine.System
		switch strings.ToLower(*catName) {
		case "tpch":
			sys = systems.TPCH
		case "tpcds":
			sys = systems.TPCDS
		case "rd1":
			sys = systems.RD1
		case "rd2":
			sys = systems.RD2
		default:
			fatal(fmt.Errorf("unknown catalog %q", *catName))
		}
		tpl, err := sqlparse.Parse("adhoc", *sqlText, sys.Cat)
		if err != nil {
			fatal(err)
		}
		entries = append(entries, suite.Entry{Tpl: tpl, Sys: sys})
		*name = "adhoc"
	}

	if *list {
		for _, e := range entries {
			fmt.Printf("%-24s d=%-2d catalog=%-12s %s\n",
				e.Tpl.Name, e.Tpl.Dimensions(), e.Tpl.Catalog.Name, e.Tpl.SQL())
		}
		return
	}
	if *name == "" {
		fatal(fmt.Errorf("need -template (or -list)"))
	}
	var entry *suite.Entry
	for i := range entries {
		if entries[i].Tpl.Name == *name {
			entry = &entries[i]
			break
		}
	}
	if entry == nil {
		fatal(fmt.Errorf("unknown template %q (use -list)", *name))
	}
	eng, err := entry.Sys.EngineFor(entry.Tpl)
	if err != nil {
		fatal(err)
	}

	if *diagram {
		if entry.Tpl.Dimensions() != 2 {
			fatal(fmt.Errorf("plan diagrams need a 2-d template; %s has d=%d",
				entry.Tpl.Name, entry.Tpl.Dimensions()))
		}
		d, err := pdiag.Build(eng, *grid, 1e-4, 0.95)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("plan diagram for %s (%d distinct plans; log scale %g..%g)\n\n%s\n",
			entry.Tpl.Name, d.NumPlans(), 1e-4, 0.95, indent(d.Render()))
		if *anorexic > 0 {
			r, err := d.Reduce(*anorexic)
			if err != nil {
				fatal(err)
			}
			so, err := r.MaxSubOptimality()
			if err != nil {
				fatal(err)
			}
			fmt.Printf("anorexic reduction at λ=%g: %d → %d plans (max sub-optimality %.3f)\n\n%s\n",
				*anorexic, d.NumPlans(), r.NumPlans(), so, indent(r.Render()))
		}
		return
	}

	sv, err := parseSV(*svArg, entry.Tpl.Dimensions())
	if err != nil {
		fatal(err)
	}
	cp, cost, err := eng.Optimize(sv)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("template: %s\nSQL: %s\nsVector: %v\nestimated cost: %.2f\nplan:\n%s",
		entry.Tpl.Name, entry.Tpl.SQL(), sv, cost, cp.Plan)
}

func parseSV(arg string, d int) ([]float64, error) {
	if arg == "" {
		// Default: mid-range selectivities.
		sv := make([]float64, d)
		for i := range sv {
			sv[i] = 0.1
		}
		return sv, nil
	}
	parts := strings.Split(arg, ",")
	if len(parts) != d {
		return nil, fmt.Errorf("-sv has %d entries, template needs %d", len(parts), d)
	}
	sv := make([]float64, d)
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("parsing -sv entry %d: %w", i, err)
		}
		sv[i] = v
	}
	return sv, nil
}

func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = "  " + lines[i]
	}
	return strings.Join(lines, "\n")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pqoexplain:", err)
	os.Exit(1)
}
