// Command pqodemo processes a live workload sequence through SCR and a
// chosen baseline side by side, narrating each decision — a quick way to
// see the selectivity/cost/redundancy checks at work.
//
// Usage:
//
//	pqodemo [-template tpch_li_ord_00] [-m 40] [-lambda 2] [-baseline PCM]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/suite"
	"repro/internal/workload"
)

func main() {
	var (
		name     = flag.String("template", "tpch_li_ord_00", "suite template to run")
		m        = flag.Int("m", 40, "workload length")
		lambda   = flag.Float64("lambda", 2, "SCR sub-optimality bound λ")
		baseline = flag.String("baseline", "PCM", "comparison technique: PCM, Ellipse, Density, Ranges, OptOnce")
		seed     = flag.Int64("seed", 20170514, "workload seed")
	)
	flag.Parse()

	systems, err := suite.NewSystems(*seed)
	if err != nil {
		fatal(err)
	}
	entries, err := suite.Build(systems)
	if err != nil {
		fatal(err)
	}
	var entry *suite.Entry
	for i := range entries {
		if entries[i].Tpl.Name == *name {
			entry = &entries[i]
			break
		}
	}
	if entry == nil {
		fatal(fmt.Errorf("unknown template %q", *name))
	}
	eng, err := entry.Sys.EngineFor(entry.Tpl)
	if err != nil {
		fatal(err)
	}

	insts, err := workload.GenerateSet(entry.Tpl.Dimensions(), *m, *seed)
	if err != nil {
		fatal(err)
	}
	insts, err = workload.Prepare(eng, insts)
	if err != nil {
		fatal(err)
	}

	scr, err := core.NewSCR(eng, core.Config{Lambda: *lambda, DetectViolations: true})
	if err != nil {
		fatal(err)
	}
	other, err := makeBaseline(*baseline, eng, *lambda)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("template %s (d=%d): %s\n\n", entry.Tpl.Name, entry.Tpl.Dimensions(), entry.Tpl.SQL())
	fmt.Printf("%-5s %-28s | %-18s | %-18s\n", "#", "sVector", scr.Name(), other.Name())
	for i, q := range insts {
		d1, err := scr.Process(context.Background(), q.SV)
		if err != nil {
			fatal(err)
		}
		d2, err := other.Process(context.Background(), q.SV)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("q%-4d %-28s | %-18s | %-18s\n", i+1, fmtSV(q.SV), d1.Via, d2.Via)
	}
	fmt.Println()
	for _, tech := range []core.Technique{scr, other} {
		st := tech.Stats()
		fmt.Printf("%-12s numOpt=%d/%d  plans=%d  getPlanRecosts=%d  cacheMem=%dB\n",
			tech.Name(), st.OptCalls, st.Instances, st.MaxPlans, st.GetPlanRecosts, st.MemoryBytes)
	}

	// Sub-optimality audit against ground truth.
	seq := &workload.Sequence{Name: "demo", Tpl: entry.Tpl, Instances: insts}
	scr2, _ := core.NewSCR(eng, core.Config{Lambda: *lambda, DetectViolations: true})
	res, err := harness.Run(context.Background(), eng, scr2, seq, harness.Options{Lambda: *lambda})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\nSCR replay audit: MSO=%.3f TotalCostRatio=%.3f boundViolations=%d\n",
		res.MSO, res.TotalCostRatio, res.BoundViolations)
}

func makeBaseline(name string, eng core.Engine, lambda float64) (core.Technique, error) {
	switch name {
	case "PCM":
		return baselines.NewPCM(eng, lambda)
	case "Ellipse":
		return baselines.NewEllipse(eng, 0.9)
	case "Density":
		return baselines.NewDensity(eng, 0.1, 0.5, 3)
	case "Ranges":
		return baselines.NewRanges(eng, 0.01)
	case "OptOnce":
		return baselines.NewOptOnce(eng), nil
	default:
		return nil, fmt.Errorf("unknown baseline %q", name)
	}
}

func fmtSV(sv []float64) string {
	s := "("
	for i, v := range sv {
		if i > 0 {
			s += ","
		}
		s += fmt.Sprintf("%.3g", v)
	}
	return s + ")"
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pqodemo:", err)
	os.Exit(1)
}
