// Command pqocluster drives multi-node statistics-epoch propagation: it
// points an epoch coordinator at a fleet of pqo servers and either probes
// their status, pushes one new generation, or runs the continuous
// health-probe loop.
//
// Usage:
//
//	pqocluster -members http://a:8080,http://b:8080 status
//	pqocluster -members ... advance -seed 42
//	pqocluster -members ... advance -deltas deltas.json
//	pqocluster -members ... run
//
// The coordinator withholds generation N+1 until every healthy member has
// acknowledged N (the default skew bound of 1); persistently failing
// members are quarantined and re-admitted via catch-up replay by the run
// loop. See docs/ROBUSTNESS.md.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/pqo"
)

func main() {
	fs := flag.NewFlagSet("pqocluster", flag.ExitOnError)
	members := fs.String("members", "", "comma-separated member base URLs (required)")
	timeout := fs.Duration("rpc-timeout", 2*time.Second, "per-RPC timeout")
	retries := fs.Int("retries", 4, "delivery attempts per generation per member")
	skew := fs.Uint64("skew-bound", 1, "cross-node skew bound in generations")
	quarantine := fs.Int("quarantine-after", 3, "consecutive failed rounds before quarantine")
	probeEvery := fs.Duration("probe-interval", 2*time.Second, "run-loop probe cadence")
	workers := fs.Int("workers", 0, "revalidation workers per member install (0 = member default)")
	initial := fs.Uint64("initial-epoch", 1, "generation members are assumed to hold at startup")
	jitterSeed := fs.Int64("jitter-seed", 1, "backoff jitter PRNG seed")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: pqocluster -members <url,...> [flags] status|advance|run")
		fs.PrintDefaults()
	}
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}
	if *members == "" || fs.NArg() < 1 {
		fs.Usage()
		os.Exit(2)
	}

	coord, err := cluster.New(cluster.Config{
		Members:             strings.Split(*members, ","),
		RPCTimeout:          *timeout,
		RetryLimit:          *retries,
		SkewBound:           *skew,
		QuarantineThreshold: *quarantine,
		ProbeInterval:       *probeEvery,
		Workers:             *workers,
		InitialEpoch:        *initial,
		Seed:                *jitterSeed,
		Logger:              log.New(os.Stderr, "", log.LstdFlags),
	})
	if err != nil {
		fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	switch cmd := fs.Arg(0); cmd {
	case "status":
		printStatus(coord.Status(ctx))
		coord.WriteMetrics(os.Stdout)
	case "advance":
		if err := runAdvance(ctx, coord, fs.Args()[1:]); err != nil {
			fatal(err)
		}
	case "run":
		if err := coord.Run(ctx); err != nil && !errors.Is(err, context.Canceled) {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("unknown command %q (want status, advance or run)", cmd))
	}
}

func runAdvance(ctx context.Context, coord *cluster.Coordinator, args []string) error {
	fs := flag.NewFlagSet("pqocluster advance", flag.ExitOnError)
	seed := fs.Int64("seed", 0, "resample the statistics with this seed")
	deltasPath := fs.String("deltas", "", "JSON file with histogram deltas to apply")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var p cluster.Payload
	switch {
	case *deltasPath != "" && *seed != 0:
		return errors.New("advance takes -seed or -deltas, not both")
	case *deltasPath != "":
		data, err := os.ReadFile(*deltasPath)
		if err != nil {
			return err
		}
		var deltas []pqo.HistogramDelta
		if err := json.Unmarshal(data, &deltas); err != nil {
			return fmt.Errorf("%s: %w", *deltasPath, err)
		}
		p.Deltas = deltas
	case *seed != 0:
		p.ResampleSeed = seed
	default:
		return errors.New("advance requires -seed or -deltas")
	}
	// Sync the coordinator's view of the fleet before the withhold check,
	// so a fresh pqocluster invocation doesn't refuse generations the
	// members already hold.
	coord.Probe(ctx)
	id, err := coord.Advance(ctx, p)
	if err != nil {
		return err
	}
	fmt.Printf("assigned epoch %d\n", id)
	printStatus(coord.Members())
	return nil
}

func printStatus(members []cluster.MemberStatus) {
	fmt.Printf("%-40s %-13s %-6s %-9s %s\n", "member", "state", "epoch", "health", "last error")
	for _, m := range members {
		errStr := m.LastErr
		if len(errStr) > 60 {
			errStr = errStr[:57] + "..."
		}
		fmt.Printf("%-40s %-13s %-6d %-9s %s\n", m.URL, m.State, m.Acked, m.Health, errStr)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pqocluster:", err)
	os.Exit(1)
}
