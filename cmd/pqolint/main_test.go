package main_test

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// repoRoot walks up from the working directory to the module root.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above test directory")
		}
		dir = parent
	}
}

func buildPqolint(t *testing.T) string {
	t.Helper()
	root := repoRoot(t)
	bin := filepath.Join(t.TempDir(), "pqolint")
	build := exec.Command("go", "build", "-o", bin, "./cmd/pqolint")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building pqolint: %v\n%s", err, out)
	}
	return bin
}

// TestAllowsAudit exercises `pqolint -allows`: listing, unknown-analyzer
// and missing-reason detection over a synthetic tree, plus a clean audit
// of the real repository.
func TestAllowsAudit(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the linter binary")
	}
	bin := buildPqolint(t)

	dir := t.TempDir()
	src := `package p

func a() {
	//lint:allow hotalloc cold path, measured and justified
	_ = make([]int, 8)
}

func b() {
	//lint:allow nosuchanalyzer this analyzer does not exist
	_ = 1
	//lint:allow epochflow
	_ = 2
}
`
	if err := os.WriteFile(filepath.Join(dir, "p.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	// Allows under testdata must be excluded from the audit.
	td := filepath.Join(dir, "testdata")
	if err := os.MkdirAll(td, 0o755); err != nil {
		t.Fatal(err)
	}
	fixture := "package q\n\nfunc f() {\n\t//lint:allow alsonotreal fixture allows are not audited\n}\n"
	if err := os.WriteFile(filepath.Join(td, "q.go"), []byte(fixture), 0o644); err != nil {
		t.Fatal(err)
	}

	cmd := exec.Command(bin, "-allows", dir)
	out, err := cmd.Output()
	ee, _ := err.(*exec.ExitError)
	if ee == nil || ee.ExitCode() != 1 {
		t.Fatalf("-allows with bad suppressions: got err %v, want exit status 1\nstdout:\n%s", err, out)
	}
	stderr := string(ee.Stderr)
	if !strings.Contains(stderr, `unknown analyzer "nosuchanalyzer"`) {
		t.Errorf("stderr does not flag the unknown analyzer:\n%s", stderr)
	}
	if !strings.Contains(stderr, "lint:allow epochflow has no reason") {
		t.Errorf("stderr does not flag the reason-less allow:\n%s", stderr)
	}
	if strings.Contains(stderr, "alsonotreal") {
		t.Errorf("testdata allows leaked into the audit:\n%s", stderr)
	}
	if want := "hotalloc\tcold path, measured and justified"; !strings.Contains(string(out), want) {
		t.Errorf("stdout missing the valid allow row %q:\n%s", want, out)
	}

	// The repository's own allows must audit clean.
	repo := exec.Command(bin, "-allows")
	repo.Dir = repoRoot(t)
	repoOut, err := repo.CombinedOutput()
	if err != nil {
		t.Fatalf("-allows on the repository tree failed: %v\n%s", err, repoOut)
	}
	if !strings.Contains(string(repoOut), "rcupublish\tintentional second-chance re-check") {
		t.Errorf("repository audit is missing the known rcupublish allow:\n%s", repoOut)
	}
}

// pqolintFinding mirrors the -json output schema.
type pqolintFinding struct {
	Pos          string `json:"pos"`
	Analyzer     string `json:"analyzer"`
	Message      string `json:"message"`
	SuppressedBy string `json:"suppressedBy"`
}

// TestJSONFindings exercises `pqolint -json`: on the (clean) repository
// tree it must exit 0 while still listing suppressed findings with their
// allow reasons; on a module with a live violation it must exit 1 and
// report the finding unsuppressed.
func TestJSONFindings(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the full linter")
	}
	bin := buildPqolint(t)
	root := repoRoot(t)

	cmd := exec.Command(bin, "-json", "./internal/memo/")
	cmd.Dir = root
	out, err := cmd.Output()
	if err != nil {
		t.Fatalf("-json on a clean package: %v\n%s", err, out)
	}
	var findings []pqolintFinding
	if err := json.Unmarshal(out, &findings); err != nil {
		t.Fatalf("-json output is not a JSON array: %v\n%s", err, out)
	}
	foundSuppressed := false
	for _, f := range findings {
		if f.Pos == "" || f.Analyzer == "" || f.Message == "" {
			t.Errorf("finding with missing fields: %+v", f)
		}
		if f.SuppressedBy == "" {
			t.Errorf("clean tree reported a live finding: %+v", f)
		}
		if f.Analyzer == "hotalloc" && strings.Contains(f.Pos, "shrunken.go") {
			foundSuppressed = true
			if want := "plans beyond smStackOps pay one bounded spill allocation"; f.SuppressedBy != want {
				t.Errorf("suppression reason = %q, want %q", f.SuppressedBy, want)
			}
			if strings.Contains(f.Message, "[suppressed:") {
				t.Errorf("suppression prefix not stripped from message: %q", f.Message)
			}
		}
	}
	if !foundSuppressed {
		t.Errorf("suppressed shrunken.go hotalloc finding not in artifact:\n%s", out)
	}

	// A module with a seeded violation: the epochflow engine fixture has
	// live (unsuppressed) findings, so -json must exit 1 and carry them.
	mod := t.TempDir()
	if err := os.WriteFile(filepath.Join(mod, "go.mod"), []byte("module seeded\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	fixture, err := os.ReadFile(filepath.Join(root, "internal/lint/epochflow/testdata/src/engine/engine.go"))
	if err != nil {
		t.Fatal(err)
	}
	// The fixture's // want comments are analysistest markup, not source.
	engDir := filepath.Join(mod, "engine")
	if err := os.MkdirAll(engDir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(engDir, "engine.go"), fixture, 0o644); err != nil {
		t.Fatal(err)
	}
	seeded := exec.Command(bin, "-json", "./...")
	seeded.Dir = mod
	sout, serr := seeded.Output()
	ee, _ := serr.(*exec.ExitError)
	if ee == nil || ee.ExitCode() != 1 {
		t.Fatalf("-json on seeded module: got err %v, want exit status 1\nstdout:\n%s", serr, sout)
	}
	var seededFindings []pqolintFinding
	if err := json.Unmarshal(sout, &seededFindings); err != nil {
		t.Fatalf("seeded -json output is not a JSON array: %v\n%s", err, sout)
	}
	live := 0
	for _, f := range seededFindings {
		if f.Analyzer == "epochflow" && f.SuppressedBy == "" {
			live++
		}
	}
	if live == 0 {
		t.Errorf("seeded module produced no live epochflow findings:\n%s", sout)
	}
}
