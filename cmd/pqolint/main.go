// Command pqolint runs the project's invariant analyzers (docs/LINT.md)
// over Go packages.
//
// Four modes share one binary:
//
//	pqolint ./...              # standalone: re-execs `go vet -vettool=pqolint <patterns>`
//	pqolint -json ./...        # standalone, machine-readable findings (suppressed included)
//	pqolint -allows [dir]      # audit every //lint:allow comment in the tree
//	go vet -vettool=$(which pqolint) ./...   # vet tool: unitchecker protocol
//
// The go command's vet driver handles package loading, export data and
// caching, so standalone mode simply re-invokes itself through it. With no
// arguments, ./... is assumed.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis/unitchecker"

	"repro/internal/lint"
	"repro/internal/lint/lintutil"
)

func main() {
	args := os.Args[1:]
	// Own modes are intercepted before the unitchecker-protocol sniff:
	// they start with '-' and would otherwise be mistaken for vet flags.
	// A *.cfg operand means the go vet driver is invoking us as its tool
	// (it forwards flags like -json to the tool), so those invocations
	// fall through to the unitchecker protocol.
	if len(args) > 0 && !hasCfgArg(args) {
		switch args[0] {
		case "-allows", "--allows":
			os.Exit(allowsMain(args[1:]))
		case "-json", "--json":
			os.Exit(jsonMain(args[1:]))
		}
	}
	if vetMode(args) {
		unitchecker.Main(lint.Analyzers()...) // does not return
	}
	os.Exit(standalone(args))
}

// vetMode reports whether the invocation follows the unitchecker protocol:
// a single *.cfg argument (per-package analysis unit) or flag arguments
// such as -V=full (version handshake) and -flags.
func vetMode(args []string) bool {
	for _, a := range args {
		if strings.HasPrefix(a, "-") || strings.HasSuffix(a, ".cfg") {
			return true
		}
	}
	return false
}

// hasCfgArg reports whether any argument is a unitchecker *.cfg unit.
func hasCfgArg(args []string) bool {
	for _, a := range args {
		if strings.HasSuffix(a, ".cfg") {
			return true
		}
	}
	return false
}

// standalone re-executes the binary through `go vet -vettool` so the go
// command performs package loading and caching.
func standalone(patterns []string) int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "pqolint: cannot locate own binary: %v\n", err)
		return 2
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + exe}, patterns...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintf(os.Stderr, "pqolint: %v\n", err)
		return 2
	}
	return 0
}

// allowsMain implements `pqolint -allows [dir]`: a parse-only audit of
// every //lint:allow comment under dir (default "."), skipping vendor and
// testdata trees. Each suppression prints as
//
//	file:line<TAB>analyzer<TAB>reason
//
// sorted by position. An allow naming an analyzer the suite does not have
// (typo, or a stale name after a rename) or carrying no reason is an audit
// error: it is reported on stderr and the exit status is 1, so CI catches
// suppressions that silently stopped suppressing.
func allowsMain(args []string) int {
	root := "."
	if len(args) > 0 {
		root = args[0]
	}
	known := map[string]bool{}
	for _, a := range lint.Analyzers() {
		known[a.Name] = true
	}

	type row struct {
		file   string
		line   int
		name   string
		reason string
	}
	var rows []row
	bad := 0
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "vendor" || name == "testdata" || (strings.HasPrefix(name, ".") && path != root) {
				return fs.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		f, perr := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if f == nil {
			return perr
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				spec, ok := lintutil.ParseAllow(c.Text)
				if !ok {
					continue
				}
				p := fset.Position(c.Pos())
				for _, n := range spec.Names {
					if !known[n] {
						fmt.Fprintf(os.Stderr, "pqolint -allows: %s:%d: unknown analyzer %q in lint:allow\n", path, p.Line, n)
						bad++
						continue
					}
					if spec.Reason == "" {
						fmt.Fprintf(os.Stderr, "pqolint -allows: %s:%d: lint:allow %s has no reason\n", path, p.Line, n)
						bad++
						continue
					}
					rows = append(rows, row{file: path, line: p.Line, name: n, reason: spec.Reason})
				}
			}
		}
		return nil
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "pqolint -allows: %v\n", err)
		return 2
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].file != rows[j].file {
			return rows[i].file < rows[j].file
		}
		if rows[i].line != rows[j].line {
			return rows[i].line < rows[j].line
		}
		return rows[i].name < rows[j].name
	})
	for _, r := range rows {
		fmt.Printf("%s:%d\t%s\t%s\n", r.file, r.line, r.name, r.reason)
	}
	if bad > 0 {
		return 1
	}
	return 0
}

// finding is one machine-readable diagnostic of `pqolint -json`.
type finding struct {
	Pos      string `json:"pos"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	// SuppressedBy is the reason of the //lint:allow comment that matched
	// this diagnostic, empty for a live finding. Suppressed findings are
	// included so CI artifacts record intentional violations alongside
	// real ones.
	SuppressedBy string `json:"suppressedBy,omitempty"`
}

// jsonMain implements `pqolint -json [patterns]`: it re-execs the vet
// driver with JSON output and suppressed-diagnostic emission enabled,
// parses the per-package JSON tree, and prints one sorted JSON array of
// findings on stdout. The exit status is 1 only when an unsuppressed
// finding remains, so the artifact can be uploaded from a green build.
func jsonMain(patterns []string) int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "pqolint: cannot locate own binary: %v\n", err)
		return 2
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cmd := exec.Command("go", append([]string{"vet", "-json", "-vettool=" + exe}, patterns...)...)
	cmd.Env = append(os.Environ(), "PQOLINT_EMIT_SUPPRESSED=1")
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	runErr := cmd.Run()

	findings, perr := parseVetJSON(stderr.Bytes(), stdout.Bytes())
	if perr != nil {
		fmt.Fprintf(os.Stderr, "pqolint -json: %v\n", perr)
		os.Stderr.Write(stderr.Bytes())
		return 2
	}
	if runErr != nil && len(findings) == 0 {
		// vet failed without producing diagnostics: a build or loading
		// error, not lint findings. Surface it as-is.
		os.Stderr.Write(stderr.Bytes())
		if ee, ok := runErr.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintf(os.Stderr, "pqolint -json: %v\n", runErr)
		return 2
	}

	sort.Slice(findings, func(i, j int) bool {
		if findings[i].Pos != findings[j].Pos {
			return findings[i].Pos < findings[j].Pos
		}
		return findings[i].Analyzer < findings[j].Analyzer
	})
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "\t")
	if findings == nil {
		findings = []finding{}
	}
	if err := enc.Encode(findings); err != nil {
		fmt.Fprintf(os.Stderr, "pqolint -json: %v\n", err)
		return 2
	}
	for _, f := range findings {
		if f.SuppressedBy == "" {
			return 1
		}
	}
	return 0
}

// parseVetJSON decodes `go vet -json` output: per-package blocks of
// `# pkgpath` comment lines followed by one JSON object mapping package
// path → analyzer → diagnostics. The driver interleaves the blocks on
// stderr (stdout stays empty), but both streams are accepted.
func parseVetJSON(streams ...[]byte) ([]finding, error) {
	type vetDiag struct {
		Posn    string `json:"posn"`
		Message string `json:"message"`
	}
	var out []finding
	wd, _ := os.Getwd()
	for _, raw := range streams {
		if len(bytes.TrimSpace(raw)) == 0 {
			continue
		}
		// Strip the `# pkg` comment lines; the rest is a stream of JSON
		// objects.
		var buf bytes.Buffer
		sc := bufio.NewScanner(bytes.NewReader(raw))
		sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
		for sc.Scan() {
			if strings.HasPrefix(strings.TrimSpace(sc.Text()), "#") {
				continue
			}
			buf.Write(sc.Bytes())
			buf.WriteByte('\n')
		}
		dec := json.NewDecoder(&buf)
		for dec.More() {
			var tree map[string]map[string][]vetDiag
			if err := dec.Decode(&tree); err != nil {
				return nil, fmt.Errorf("decoding vet output: %w", err)
			}
			for _, analyzers := range tree {
				for name, diags := range analyzers {
					for _, d := range diags {
						f := finding{Pos: relPos(wd, d.Posn), Analyzer: name, Message: d.Message}
						if rest, ok := strings.CutPrefix(d.Message, lintutil.SuppressedPrefix); ok {
							if i := strings.Index(rest, "] "); i >= 0 {
								f.SuppressedBy = rest[:i]
								f.Message = rest[i+2:]
							}
						}
						out = append(out, f)
					}
				}
			}
		}
	}
	return out, nil
}

// relPos rewrites an absolute file position relative to wd when possible,
// keeping artifact paths stable across checkouts.
func relPos(wd, posn string) string {
	if wd == "" || !strings.HasPrefix(posn, wd) {
		return posn
	}
	if rel, err := filepath.Rel(wd, strings.SplitN(posn, ":", 2)[0]); err == nil {
		if i := strings.Index(posn, ":"); i >= 0 {
			return rel + posn[i:]
		}
		return rel
	}
	return posn
}
