// Command pqolint runs the project's invariant analyzers (docs/LINT.md)
// over Go packages.
//
// Two modes share one binary:
//
//	pqolint ./...              # standalone: re-execs `go vet -vettool=pqolint <patterns>`
//	go vet -vettool=$(which pqolint) ./...   # vet tool: unitchecker protocol
//
// The go command's vet driver handles package loading, export data and
// caching, so standalone mode simply re-invokes itself through it. With no
// arguments, ./... is assumed.
package main

import (
	"fmt"
	"os"
	"os/exec"
	"strings"

	"golang.org/x/tools/go/analysis/unitchecker"

	"repro/internal/lint"
)

func main() {
	args := os.Args[1:]
	if vetMode(args) {
		unitchecker.Main(lint.Analyzers()...) // does not return
	}
	os.Exit(standalone(args))
}

// vetMode reports whether the invocation follows the unitchecker protocol:
// a single *.cfg argument (per-package analysis unit) or flag arguments
// such as -V=full (version handshake) and -flags.
func vetMode(args []string) bool {
	for _, a := range args {
		if strings.HasPrefix(a, "-") || strings.HasSuffix(a, ".cfg") {
			return true
		}
	}
	return false
}

// standalone re-executes the binary through `go vet -vettool` so the go
// command performs package loading and caching.
func standalone(patterns []string) int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "pqolint: cannot locate own binary: %v\n", err)
		return 2
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + exe}, patterns...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintf(os.Stderr, "pqolint: %v\n", err)
		return 2
	}
	return 0
}
