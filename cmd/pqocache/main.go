// Command pqocache inspects plan-cache snapshots produced by SCR.Export
// (e.g. the files written by examples/server's /snapshot endpoint):
// which plans are cached, how many optimized instances anchor each plan's
// inference region, their usage counts and cost ranges.
//
// Usage:
//
//	pqocache snapshot.json [more.json ...]
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: pqocache <snapshot.json> [...]")
		os.Exit(2)
	}
	for _, path := range os.Args[1:] {
		data, err := os.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		sum, err := core.InspectSnapshot(data)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
		fmt.Printf("%s: %d plans, %d optimized instances, d=%d\n",
			path, len(sum.Plans), sum.Instances, sum.Dimensions)
		fmt.Printf("  %-4s %-9s %-7s %-12s %-11s %s\n",
			"#", "instances", "usage", "cost range", "quarantined", "fingerprint")
		for i, p := range sum.Plans {
			fp := p.Fingerprint
			if len(fp) > 60 {
				fp = fp[:57] + "..."
			}
			fmt.Printf("  %-4d %-9d %-7d %6.0f-%-5.0f %-11d %s\n",
				i+1, p.Instances, p.Usage, p.MinCost, p.MaxCost, p.Quarantined, fp)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pqocache:", err)
	os.Exit(1)
}
