// Command pqotrace records and replays workload traces: reproducible
// experiment inputs that can be shared, diffed, or replayed against any
// technique.
//
// Usage:
//
//	pqotrace -record -template tpch_li_ord_00 -m 200 -ordering random -o trace.json
//	pqotrace -replay trace.json -template tpch_li_ord_00 -technique SCR -lambda 2
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/suite"
	"repro/internal/workload"
)

func main() {
	var (
		record    = flag.Bool("record", false, "record a new trace")
		replay    = flag.String("replay", "", "replay the given trace file")
		name      = flag.String("template", "", "suite template name")
		m         = flag.Int("m", 200, "instances to record")
		orderName = flag.String("ordering", "random", "ordering: random, decreasing-cost, round-robin, inside-out, outside-in")
		out       = flag.String("o", "", "output file for -record (default stdout)")
		techName  = flag.String("technique", "SCR", "technique for -replay: SCR, PCM, Ellipse, Density, Ranges, OptOnce, OptAlways")
		lambda    = flag.Float64("lambda", 2, "λ for SCR/PCM")
		seed      = flag.Int64("seed", 20170514, "workload seed")
	)
	flag.Parse()

	if *record == (*replay != "") {
		fatal(fmt.Errorf("exactly one of -record or -replay is required"))
	}
	if *name == "" {
		fatal(fmt.Errorf("-template is required"))
	}

	systems, err := suite.NewSystems(*seed)
	if err != nil {
		fatal(err)
	}
	entries, err := suite.Build(systems)
	if err != nil {
		fatal(err)
	}
	var entry *suite.Entry
	for i := range entries {
		if entries[i].Tpl.Name == *name {
			entry = &entries[i]
			break
		}
	}
	if entry == nil {
		fatal(fmt.Errorf("unknown template %q (see pqoexplain -list)", *name))
	}
	eng, err := entry.Sys.EngineFor(entry.Tpl)
	if err != nil {
		fatal(err)
	}

	if *record {
		ordering, err := parseOrdering(*orderName)
		if err != nil {
			fatal(err)
		}
		base, err := workload.GenerateSet(entry.Tpl.Dimensions(), *m, *seed)
		if err != nil {
			fatal(err)
		}
		base, err = workload.Prepare(eng, base)
		if err != nil {
			fatal(err)
		}
		ordered, err := workload.Order(base, ordering, *seed+1)
		if err != nil {
			fatal(err)
		}
		seq := &workload.Sequence{
			Name:      fmt.Sprintf("%s/%s", entry.Tpl.Name, ordering),
			Tpl:       entry.Tpl,
			Instances: ordered,
		}
		w := os.Stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			w = f
		}
		if err := workload.WriteTrace(w, seq); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "recorded %d instances (%d distinct optimal plans)\n",
			len(ordered), workload.DistinctOptimalPlans(ordered))
		return
	}

	f, err := os.Open(*replay)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	seq, err := workload.ReadTrace(f)
	if err != nil {
		fatal(err)
	}
	seq.Tpl = entry.Tpl
	tech, err := makeTechnique(*techName, eng, *lambda)
	if err != nil {
		fatal(err)
	}
	res, err := harness.Run(context.Background(), eng, tech, seq, harness.Options{Lambda: *lambda})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("replayed %s over %s (%d instances)\n", seq.Name, tech.Name(), res.M)
	fmt.Printf("MSO=%.3f TotalCostRatio=%.3f numOpt=%d (%.1f%%) plans=%d recosts=%d violations=%d\n",
		res.MSO, res.TotalCostRatio, res.NumOpt, res.OptFraction*100,
		res.NumPlans, res.GetPlanRecosts, res.BoundViolations)
}

func parseOrdering(name string) (workload.Ordering, error) {
	for _, o := range workload.AllOrderings {
		if strings.EqualFold(o.String(), name) {
			return o, nil
		}
	}
	return 0, fmt.Errorf("unknown ordering %q", name)
}

func makeTechnique(name string, eng core.Engine, lambda float64) (core.Technique, error) {
	switch strings.ToUpper(name) {
	case "SCR":
		return core.NewSCR(eng, core.Config{Lambda: lambda, DetectViolations: true})
	case "PCM":
		return baselines.NewPCM(eng, lambda)
	case "ELLIPSE":
		return baselines.NewEllipse(eng, 0.9)
	case "DENSITY":
		return baselines.NewDensity(eng, 0.1, 0.5, 3)
	case "RANGES":
		return baselines.NewRanges(eng, 0.01)
	case "OPTONCE":
		return baselines.NewOptOnce(eng), nil
	case "OPTALWAYS":
		return baselines.NewOptAlways(eng), nil
	default:
		return nil, fmt.Errorf("unknown technique %q", name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pqotrace:", err)
	os.Exit(1)
}
