// Command pqobench regenerates the paper's tables and figures.
//
// Usage:
//
//	pqobench -experiment fig9 [-m 200] [-templates 12] [-seed 1] [-full]
//	pqobench -experiment all
//
// Each experiment prints the same rows/series the corresponding figure or
// table of the paper reports (see EXPERIMENTS.md for the index). The -full
// flag switches to paper-scale workloads (all 90 templates, m=1000); the
// default configuration reproduces the qualitative shapes in seconds.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "experiment id: fig1, fig6-fig21, tab3, appd, appe, ablation, candorder, or 'all'")
		m          = flag.Int("m", 0, "instances per sequence (0 = default 200; paper uses 1000)")
		templates  = flag.Int("templates", 12, "number of suite templates (0 = all 90)")
		seed       = flag.Int64("seed", 0, "random seed (0 = fixed default)")
		full       = flag.Bool("full", false, "paper-scale run: all templates, m=1000")
		parallel   = flag.Int("parallel", 1, "sequences run concurrently per technique")
	)
	flag.Parse()

	cfg := experiments.Config{
		NumTemplates: *templates,
		M:            *m,
		Seed:         *seed,
		Parallel:     *parallel,
		Out:          os.Stdout,
	}
	if *full {
		cfg.NumTemplates = 0
		if cfg.M == 0 {
			cfg.M = 1000
		}
	}

	start := time.Now()
	fmt.Printf("building systems and %d-template suite...\n", cfg.NumTemplates)
	r, err := experiments.NewRunner(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("ready in %v (%d templates, m=%d)\n\n",
		time.Since(start).Round(time.Millisecond), len(r.Entries()), r.Config().M)

	ids := strings.Split(strings.ToLower(*experiment), ",")
	if len(ids) == 1 && ids[0] == "all" {
		ids = []string{"fig1", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
			"fig13", "fig14", "fig15", "fig16", "fig17", "fig18", "fig19", "fig20", "fig21",
			"tab3", "appd", "appe", "ablation", "candorder", "violations", "hybrid"}
	}
	for _, id := range ids {
		if err := run(r, strings.TrimSpace(id)); err != nil {
			fatal(fmt.Errorf("experiment %s: %w", id, err))
		}
		fmt.Println()
	}
	fmt.Printf("done in %v\n", time.Since(start).Round(time.Millisecond))
}

func run(r *experiments.Runner, id string) error {
	switch id {
	case "fig1":
		_, err := r.Fig1()
		return err
	case "fig6":
		_, err := r.Fig6()
		return err
	case "fig7":
		_, err := r.Fig7()
		return err
	case "fig8":
		_, err := r.Fig8()
		return err
	case "fig9":
		_, err := r.Fig9()
		return err
	case "fig10":
		_, err := r.Fig10()
		return err
	case "fig11":
		_, err := r.Fig11(nil)
		return err
	case "fig12":
		_, err := r.Fig12()
		return err
	case "fig13":
		_, err := r.Fig13()
		return err
	case "fig14":
		_, err := r.Fig14()
		return err
	case "fig15":
		_, _, err := r.Fig15()
		return err
	case "fig16":
		_, err := r.Fig16()
		return err
	case "fig17":
		_, err := r.Fig17()
		return err
	case "fig18":
		_, err := r.Fig18(nil)
		return err
	case "fig19":
		_, err := r.Fig19()
		return err
	case "fig20":
		_, err := r.Fig20()
		return err
	case "fig21":
		_, err := r.Fig21()
		return err
	case "tab3":
		_, err := r.Tab3(0, 0)
		return err
	case "appd":
		_, err := r.AppD(0)
		return err
	case "appe":
		_, err := r.AppE(0)
		return err
	case "ablation":
		_, err := r.AblationGLOrdering(0)
		return err
	case "candorder":
		_, err := r.AblationCandOrder(0)
		return err
	case "violations":
		_, err := r.ViolationStudy(0)
		return err
	case "hybrid":
		_, err := r.HybridStudy(0, 0)
		return err
	default:
		return fmt.Errorf("unknown experiment id %q", id)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pqobench:", err)
	os.Exit(1)
}
