// Package pqo is the stable, importable facade of the repository: online
// parametric query optimization with the paper's λ-optimality guarantee
// (SIGMOD 2017, "Leveraging Re-costing for Online Optimization of
// Parameterized Queries with Guarantees").
//
// It re-exports the supported surface of the internal packages so
// consumers — including internal/server, the HTTP plan-cache service —
// depend on one import path instead of internal/core, internal/engine,
// internal/catalog and internal/sqlparse:
//
//	sys, _ := pqo.NewSystem(pqo.TPCH(0.1), 42)
//	tpl, _ := pqo.ParseTemplate("q", "SELECT ... WHERE a <= ?0", sys.Cat)
//	eng, _ := sys.EngineFor(tpl)
//	scr, _ := pqo.New(eng, pqo.WithLambda(2))
//	dec, _ := scr.Process(ctx, []float64{0.02, 0.10})
//
// The SCR plan cache is safe for concurrent use: cache hits are served
// lock-free off an immutable RCU snapshot, writers serialize on a
// per-template write domain with coalesced snapshot publication, and
// concurrent misses for identical instances share one optimizer call.
// A Directory groups many templates' SCRs so multi-template deployments
// revalidate and aggregate statistics without stop-the-world pauses.
// Snapshots round-trip through SCR.Export / SCR.Import.
package pqo

import (
	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/query"
	"repro/internal/sqlparse"
	"repro/internal/stats"
)

// Core technique surface.
type (
	// SCR is the paper's online PQO technique: a concurrent plan cache
	// driven by the selectivity, cost and redundancy checks.
	SCR = core.SCR
	// Decision is the outcome of processing one query instance.
	Decision = core.Decision
	// Stats are the cumulative counters a technique reports.
	Stats = core.Stats
	// Check identifies how a plan decision was made.
	Check = core.Check
	// Option configures an SCR built with New.
	Option = core.Option
	// Engine is the database-engine surface a technique requires: a full
	// optimizer call and the Recost API.
	Engine = core.Engine
	// Technique is an online PQO technique processing a stream of query
	// instances for one template.
	Technique = core.Technique
	// DynamicLambda is Appendix D's per-instance λ configuration.
	DynamicLambda = core.DynamicLambda
	// ScanOrder selects the selectivity check's instance-list traversal.
	ScanOrder = core.ScanOrder
	// SnapshotSummary describes an exported plan cache.
	SnapshotSummary = core.SnapshotSummary
	// SnapshotPlan summarizes one cached plan within a snapshot.
	SnapshotPlan = core.SnapshotPlan
	// DegradedReason explains why a decision was served without the λ
	// guarantee (Decision.Degraded).
	DegradedReason = core.DegradedReason
	// BreakerState is the optimizer circuit breaker's state.
	BreakerState = core.BreakerState
	// FaultReporter is implemented by engines that count injected faults
	// (internal/faultinject); Stats picks the count up automatically.
	FaultReporter = core.FaultReporter
	// EpochEngine is the optional versioned-statistics surface of an
	// Engine: epoch-reporting Optimize/Recost plus the current epoch id.
	EpochEngine = core.EpochEngine
	// Revalidation is a handle on one background cache-revalidation run
	// started by SCR.Revalidate after a statistics epoch advance.
	Revalidation = core.Revalidation
	// RevalidationProgress is a point-in-time snapshot of a run's counters.
	RevalidationProgress = core.RevalidationProgress
	// Directory groups per-template SCRs behind a lock-free name lookup;
	// each template is its own write domain, so writers to different
	// templates never contend and revalidation schedules across domains
	// usage-weighted.
	Directory = core.Directory
	// DirectoryStats aggregates Stats-level counters across a Directory's
	// domains without stopping writers.
	DirectoryStats = core.DirectoryStats
	// Epoch is one statistics generation: a monotonic id plus the
	// immutable statistics store it names.
	Epoch = stats.Epoch
	// StatsStore is an immutable per-column histogram statistics store.
	StatsStore = stats.Store
	// HistogramDelta is one column's replacement sample in a partial
	// statistics refresh (StatsStore.Apply).
	HistogramDelta = stats.HistogramDelta
)

// DefaultRevalidationWorkers is SCR.Revalidate's worker-pool size when
// the caller passes workers <= 0.
const DefaultRevalidationWorkers = core.DefaultRevalidationWorkers

// Decision provenance values.
const (
	ViaOptimizer   = core.ViaOptimizer
	ViaSelectivity = core.ViaSelectivity
	ViaCost        = core.ViaCost
	ViaInference   = core.ViaInference
	ViaFallback    = core.ViaFallback
)

// Degraded-decision reasons (Decision.DegradedReason).
const (
	DegradedBreakerOpen      = core.DegradedBreakerOpen
	DegradedOptimizerTimeout = core.DegradedOptimizerTimeout
	DegradedOptimizerPanic   = core.DegradedOptimizerPanic
	DegradedOptimizerError   = core.DegradedOptimizerError
	DegradedStatsEpochLag    = core.DegradedStatsEpochLag
	DegradedEpochSkew        = core.DegradedEpochSkew
)

// Circuit breaker states (Stats.BreakerState).
const (
	BreakerClosed   = core.BreakerClosed
	BreakerOpen     = core.BreakerOpen
	BreakerHalfOpen = core.BreakerHalfOpen
)

// Scan orders for WithScanOrder.
const (
	ScanInsertion = core.ScanInsertion
	ScanByArea    = core.ScanByArea
	ScanByUsage   = core.ScanByUsage
)

// Sentinel errors; match with errors.Is.
var (
	ErrNoPlan           = core.ErrNoPlan
	ErrBudgetExhausted  = core.ErrBudgetExhausted
	ErrCancelled        = core.ErrCancelled
	ErrInvalidConfig    = core.ErrInvalidConfig
	ErrOptimizerTimeout = core.ErrOptimizerTimeout
	ErrOptimizerPanic   = core.ErrOptimizerPanic
	ErrBreakerOpen      = core.ErrBreakerOpen
	ErrUnavailable      = core.ErrUnavailable
	ErrEpochUnsupported = core.ErrEpochUnsupported
	ErrSnapshotCorrupt  = core.ErrSnapshotCorrupt
)

// New builds an SCR plan cache over eng from functional options; see the
// With* options for the available knobs. Defaults: λ=2, λr=√λ, cost-check
// limit 8, unlimited plan budget.
func New(eng Engine, opts ...Option) (*SCR, error) { return core.New(eng, opts...) }

// Functional options for New.
var (
	WithLambda              = core.WithLambda
	WithDynamicLambda       = core.WithDynamicLambda
	WithRedundancyThreshold = core.WithRedundancyThreshold
	WithStoreAlways         = core.WithStoreAlways
	WithPlanBudget          = core.WithPlanBudget
	WithCostCheckLimit      = core.WithCostCheckLimit
	WithoutCostCheck        = core.WithoutCostCheck
	WithGLCutoff            = core.WithGLCutoff
	WithCandidateOrderByL   = core.WithCandidateOrderByL
	WithScanOrder           = core.WithScanOrder
	WithViolationDetection  = core.WithViolationDetection
	WithDegradedFallback    = core.WithDegradedFallback
	WithOptimizerDeadline   = core.WithOptimizerDeadline
	WithCircuitBreaker      = core.WithCircuitBreaker
	WithClusterSkewBound    = core.WithClusterSkewBound
	// Benchmark-baseline knobs: force all SCRs onto one shared writer
	// mutex / publish every mutation eagerly, reconstructing the
	// pre-sharding write path for comparison runs.
	WithSharedWriteLock = core.WithSharedWriteLock
	WithEagerPublish    = core.WithEagerPublish
)

// NewDirectory returns an empty template directory; attach each
// template's SCR under its template name.
func NewDirectory() *Directory { return core.NewDirectory() }

// InspectSnapshot parses an SCR.Export-produced snapshot and returns its
// summary without needing an engine.
func InspectSnapshot(data []byte) (*SnapshotSummary, error) {
	return core.InspectSnapshot(data)
}

// WriteSnapshotFile persists an SCR.Export-produced snapshot crash-safely:
// framed with a checksum, written to a temp file, fsynced and atomically
// renamed over path, so a process killed mid-persist always leaves either
// the previous snapshot or the new one — never a torn mix.
func WriteSnapshotFile(path string, data []byte) error {
	return core.WriteSnapshotFile(path, data)
}

// ReadSnapshotFile reads a snapshot written by WriteSnapshotFile,
// verifying its checksum; damaged files fail with an error wrapping
// ErrSnapshotCorrupt. Pre-framing snapshots (raw Export JSON) pass
// through unverified for backward compatibility.
func ReadSnapshotFile(path string) ([]byte, error) {
	return core.ReadSnapshotFile(path)
}

// Database-system surface: catalogs, templates, engines.
type (
	// System bundles a catalog with its statistics and optimizer.
	System = engine.System
	// TemplateEngine binds the optimizer to one query template; it
	// implements Engine and supports snapshot rehydration.
	TemplateEngine = engine.TemplateEngine
	// CachedPlan is the unit stored in a plan cache.
	CachedPlan = engine.CachedPlan
	// Catalog describes a database schema with table statistics.
	Catalog = catalog.Catalog
	// Template is a parameterized query template; its parameterized
	// predicates are the selectivity dimensions.
	Template = query.Template
)

// TPCH returns the built-in TPC-H-shaped catalog at the given scale factor.
func TPCH(sf float64) *Catalog { return catalog.NewTPCH(sf) }

// TPCDS returns the built-in TPC-DS-shaped catalog at the given scale
// factor.
func TPCDS(sf float64) *Catalog { return catalog.NewTPCDS(sf) }

// NewSystem builds histogram statistics and an optimizer for cat with the
// default cost model; seed drives the deterministic synthetic data.
func NewSystem(cat *Catalog, seed int64) (*System, error) {
	return engine.NewSystem(cat, seed)
}

// ParseTemplate parses a parameterized SQL string (placeholders ?0, ?1, …
// mark the selectivity dimensions) into a template over cat.
func ParseTemplate(name, sql string, cat *Catalog) (*Template, error) {
	return sqlparse.Parse(name, sql, cat)
}
