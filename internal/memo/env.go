// Package memo implements a memo-based (Cascades-style) cost-based query
// optimizer over the join-graph query language of package query, together
// with the two engine APIs the paper requires (§4.2): selectivity-vector
// computation (via package stats) and an efficient Recost API backed by a
// ShrunkenMemo — a pruned, cacheable representation of the winning plan that
// supports re-deriving cardinalities and costs bottom-up without plan search.
package memo

import (
	"fmt"

	"repro/internal/query"
	"repro/internal/stats"
)

// Env is the per-instance selectivity environment: the selectivity of every
// predicate of a template under one instance's selectivity vector. All
// cardinality derivation — during optimization and during recost — reads
// from an Env.
type Env struct {
	Tpl *query.Template
	// predSel[i] is the selectivity of Tpl.Preds[i].
	predSel []float64
	// tableSel caches the combined selectivity per table.
	tableSel map[string]float64
	// predsOn caches the number of predicates per table.
	predsOn map[string]int
}

// NewEnv builds the environment for template tpl under selectivity vector
// sv. Constant predicates are evaluated against the statistics store st.
func NewEnv(tpl *query.Template, sv []float64, st *stats.Store) (*Env, error) {
	if got, want := len(sv), tpl.Dimensions(); got != want {
		return nil, fmt.Errorf("memo: sVector has %d entries, template %s needs %d", got, tpl.Name, want)
	}
	e := &Env{
		Tpl:      tpl,
		predSel:  make([]float64, len(tpl.Preds)),
		tableSel: make(map[string]float64, len(tpl.Tables)),
		predsOn:  make(map[string]int, len(tpl.Tables)),
	}
	for i, p := range tpl.Preds {
		if p.Param >= 0 {
			e.predSel[i] = stats.ClampSelectivity(sv[p.Param])
			continue
		}
		var (
			s   float64
			err error
		)
		if p.Op == query.LE {
			s, err = st.SelectivityLE(p.Table, p.Column, p.Value)
		} else {
			s, err = st.SelectivityGE(p.Table, p.Column, p.Value)
		}
		if err != nil {
			return nil, fmt.Errorf("memo: constant predicate on %s.%s: %w", p.Table, p.Column, err)
		}
		e.predSel[i] = s
	}
	for _, tab := range tpl.Tables {
		sel := 1.0
		n := 0
		for i, p := range tpl.Preds {
			if p.Table == tab {
				sel *= e.predSel[i]
				n++
			}
		}
		e.tableSel[tab] = stats.ClampSelectivity(sel)
		e.predsOn[tab] = n
	}
	return e, nil
}

// TableSel returns the combined selectivity of all predicates on table.
// Tables without predicates have selectivity 1.
func (e *Env) TableSel(table string) float64 {
	if s, ok := e.tableSel[table]; ok {
		return s
	}
	return 1
}

// NumPredsOn returns the number of predicates on table.
func (e *Env) NumPredsOn(table string) int { return e.predsOn[table] }

// PredSelOn returns the selectivity of the predicate on table.column and
// whether such a predicate exists. Templates are constructed with at most
// one predicate per column; if several exist their combined selectivity is
// returned.
func (e *Env) PredSelOn(table, column string) (float64, bool) {
	sel := 1.0
	found := false
	for i, p := range e.Tpl.Preds {
		if p.Table == table && p.Column == column {
			sel *= e.predSel[i]
			found = true
		}
	}
	return sel, found
}
