// Package memo implements a memo-based (Cascades-style) cost-based query
// optimizer over the join-graph query language of package query, together
// with the two engine APIs the paper requires (§4.2): selectivity-vector
// computation (via package stats) and an efficient Recost API backed by a
// ShrunkenMemo — a pruned, cacheable representation of the winning plan that
// supports re-deriving cardinalities and costs bottom-up without plan search.
package memo

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/catalog"
	"repro/internal/query"
	"repro/internal/stats"
)

// tplMeta is the immutable per-template structure shared by every Env,
// Optimize and ShrunkenMemo over one template: table indexing, predicate
// placement, join edges as bitmasks, and the catalog-derived leaf data
// (rows, indexes, order keys). Computing it once per template — instead of
// rebuilding maps inside every Env — is what makes pooled environments
// allocation-free to reset. Templates are immutable after Validate, and
// every template names its own catalog, so meta is cached per template
// pointer for the process lifetime.
type tplMeta struct {
	tables   []metaTable
	tableIdx map[string]int
	edges    []metaEdge
	dims     int
}

// metaTable is the per-table slice of a template's metadata.
type metaTable struct {
	name string
	// tab is the catalog entry; nil when the template references a table
	// the catalog does not know (surfaced as an error by Optimize).
	tab *catalog.Table
	// preds holds the indices into Tpl.Preds of the predicates on this
	// table, in predicate order.
	preds []int32
	// indexes mirrors tab.Indexes with precomputed order keys and the
	// predicate indices each index column serves.
	indexes []metaIndex
}

// metaIndex precomputes, per catalog index, everything the access-path
// enumeration needs without string building.
type metaIndex struct {
	name      string
	column    string
	clustered bool
	// orderKey is "table.column", the delivered sort order.
	orderKey string
	// preds are the indices of predicates on (table, column).
	preds []int32
}

// metaEdge is a join edge with endpoint bitmasks and prebuilt join keys.
type metaEdge struct {
	aMask, bMask uint32
	sel          float64
	aKey, bKey   string // "table.column" on each side
}

// metaCache maps *query.Template → *tplMeta.
var metaCache sync.Map

// metaFor returns the cached metadata for tpl, building it on first use.
func metaFor(tpl *query.Template) *tplMeta {
	if m, ok := metaCache.Load(tpl); ok {
		return m.(*tplMeta)
	}
	m := buildMeta(tpl)
	actual, _ := metaCache.LoadOrStore(tpl, m)
	return actual.(*tplMeta)
}

// buildMeta derives the per-template metadata.
//
//lint:allow hotalloc built once per template and memoized by metaFor, never per recost
func buildMeta(tpl *query.Template) *tplMeta {
	n := len(tpl.Tables)
	m := &tplMeta{
		tables:   make([]metaTable, n),
		tableIdx: make(map[string]int, n),
		dims:     tpl.Dimensions(),
	}
	for i, name := range tpl.Tables {
		m.tableIdx[name] = i
		mt := &m.tables[i]
		mt.name = name
		if tpl.Catalog != nil {
			mt.tab = tpl.Catalog.Table(name)
		}
		for pi, p := range tpl.Preds {
			if p.Table == name {
				mt.preds = append(mt.preds, int32(pi))
			}
		}
		if mt.tab == nil {
			continue
		}
		for _, ix := range mt.tab.Indexes {
			mi := metaIndex{
				name: ix.Name, column: ix.Column, clustered: ix.Clustered,
				orderKey: name + "." + ix.Column,
			}
			for _, pi := range mt.preds {
				if tpl.Preds[pi].Column == ix.Column {
					mi.preds = append(mi.preds, pi)
				}
			}
			mt.indexes = append(mt.indexes, mi)
		}
	}
	m.edges = make([]metaEdge, 0, len(tpl.Joins))
	for _, j := range tpl.Joins {
		a, b := m.tableIdx[j.Left], m.tableIdx[j.Right]
		m.edges = append(m.edges, metaEdge{
			aMask: 1 << uint(a), bMask: 1 << uint(b),
			sel:  j.Selectivity,
			aKey: j.Left + "." + j.LeftCol,
			bKey: j.Right + "." + j.RightCol,
		})
	}
	return m
}

// Env is the per-instance selectivity environment: the selectivity of every
// predicate of a template under one instance's selectivity vector. All
// cardinality derivation — during optimization and during recost — reads
// from an Env.
//
// Envs are cheap to reset: a pooled Env obtained from Optimizer.PrepareEnv
// reuses its backing slices, so steady-state Recost traffic allocates
// nothing. The zero Env is invalid; build with NewEnv or PrepareEnv.
type Env struct {
	Tpl  *query.Template
	meta *tplMeta
	// epoch is the statistics-epoch id the environment was prepared under
	// (0 for NewEnv-built environments over a bare store).
	epoch uint64
	// predSel[i] is the selectivity of Tpl.Preds[i].
	predSel []float64
	// tableSel[t] is the combined selectivity of the predicates on the
	// t-th table of Tpl.Tables.
	tableSel []float64
}

// NewEnv builds a fresh (non-pooled) environment for template tpl under
// selectivity vector sv. Constant predicates are evaluated against the
// statistics store st.
func NewEnv(tpl *query.Template, sv []float64, st *stats.Store) (*Env, error) {
	e := &Env{}
	if err := e.reset(tpl, sv, st); err != nil {
		return nil, err
	}
	return e, nil
}

// reset (re)initializes e for (tpl, sv), reusing backing slices.
func (e *Env) reset(tpl *query.Template, sv []float64, st *stats.Store) error {
	m := metaFor(tpl)
	if got, want := len(sv), m.dims; got != want {
		return fmt.Errorf("memo: sVector has %d entries, template %s needs %d", got, tpl.Name, want)
	}
	e.Tpl, e.meta = tpl, m
	e.predSel = grow(e.predSel, len(tpl.Preds))
	for i, p := range tpl.Preds {
		if p.Param >= 0 {
			e.predSel[i] = stats.ClampSelectivity(sv[p.Param])
			continue
		}
		var (
			s   float64
			err error
		)
		if p.Op == query.LE {
			s, err = st.SelectivityLE(p.Table, p.Column, p.Value)
		} else {
			s, err = st.SelectivityGE(p.Table, p.Column, p.Value)
		}
		if err != nil {
			return fmt.Errorf("memo: constant predicate on %s.%s: %w", p.Table, p.Column, err)
		}
		e.predSel[i] = s
	}
	e.tableSel = grow(e.tableSel, len(m.tables))
	for ti := range m.tables {
		sel := 1.0
		for _, pi := range m.tables[ti].preds {
			sel *= e.predSel[pi]
		}
		e.tableSel[ti] = stats.ClampSelectivity(sel)
	}
	return nil
}

// grow returns s resized to n, reusing capacity when possible.
//
//lint:allow hotalloc amortized growth, env vectors are pooled and their capacity is reused
func grow(s []float64, n int) []float64 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]float64, n)
}

// TableSel returns the combined selectivity of all predicates on table.
// Tables without predicates have selectivity 1.
func (e *Env) TableSel(table string) float64 {
	if ti, ok := e.meta.tableIdx[table]; ok {
		return e.tableSel[ti]
	}
	return 1
}

// NumPredsOn returns the number of predicates on table.
func (e *Env) NumPredsOn(table string) int {
	if ti, ok := e.meta.tableIdx[table]; ok {
		return len(e.meta.tables[ti].preds)
	}
	return 0
}

// PredSelOn returns the selectivity of the predicate on table.column and
// whether such a predicate exists. Templates are constructed with at most
// one predicate per column; if several exist their combined selectivity is
// returned.
func (e *Env) PredSelOn(table, column string) (float64, bool) {
	ti, ok := e.meta.tableIdx[table]
	if !ok {
		return 1, false
	}
	sel := 1.0
	found := false
	for _, pi := range e.meta.tables[ti].preds {
		if e.Tpl.Preds[pi].Column == column {
			sel *= e.predSel[pi]
			found = true
		}
	}
	return sel, found
}

// envPool recycles Envs across PrepareEnv/ReleaseEnv cycles so the recost
// hot path reaches steady-state zero allocations.
var envPool = sync.Pool{New: func() any { return new(Env) }}

// PrepareEnv returns a pooled environment for (tpl, sv): the batched
// recosting entry point. Build the environment once per query instance,
// recost any number of candidate plans against it with
// ShrunkenMemo.RecostWith or Optimizer.RecostPlanWith, then return it with
// ReleaseEnv. The Env must not be used after release.
func (o *Optimizer) PrepareEnv(tpl *query.Template, sv []float64) (*Env, error) {
	e := envPool.Get().(*Env)
	atomic.AddInt64(&o.envGets, 1)
	if e.meta != nil {
		atomic.AddInt64(&o.envReuses, 1)
	}
	// One atomic load pins the (id, store) pair for the whole environment:
	// every selectivity this Env answers comes from the same generation.
	ep := o.epoch.Load()
	if err := e.reset(tpl, sv, ep.Store); err != nil {
		envPool.Put(e)
		return nil, err
	}
	e.epoch = ep.ID
	return e, nil
}

// EpochID returns the statistics-epoch id the environment was prepared
// under; 0 for environments built directly with NewEnv.
func (e *Env) EpochID() uint64 { return e.epoch }

// ReleaseEnv returns a pooled environment to the pool. nil is a no-op.
func (o *Optimizer) ReleaseEnv(e *Env) {
	if e != nil {
		envPool.Put(e)
	}
}

// EnvPoolCounters reports how many pooled environments were handed out and
// how many of those reused a previously allocated Env (pool hits). The
// reuse ratio approaches 1 in steady state; it is surfaced through the
// serving stack's Stats and /metrics.
func (o *Optimizer) EnvPoolCounters() (gets, reuses int64) {
	return atomic.LoadInt64(&o.envGets), atomic.LoadInt64(&o.envReuses)
}
