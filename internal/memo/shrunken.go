package memo

import (
	"fmt"
	"sync/atomic"

	"repro/internal/plan"
	"repro/internal/query"
)

// ShrunkenMemo is the compact, cacheable representation of one winning plan
// described in Appendix B of the paper: the memo pruned of all groups and
// expressions not needed by the final plan, flattened into a post-order
// operator array. Recosting replaces the selectivities in the base entries
// and re-derives cardinality and cost bottom-up with plain arithmetic — no
// pointer-chasing plan walk, no plan search.
//
// The plan cache stores one ShrunkenMemo per cached plan; its Size is the
// dominant per-plan memory overhead the paper discusses in §6.1.
type ShrunkenMemo struct {
	tpl *query.Template
	ops []shrunkenOp
	// root is the index of the final operator (always len(ops)-1).
	root int
}

// shrunkenOp is one operator entry. Child references are indices into the
// ops slice (always smaller than the entry's own index: post-order).
type shrunkenOp struct {
	op    plan.OpType
	left  int // -1 for leaves
	right int // -1 for leaves and unary ops

	// Leaf data.
	table       string
	rows        float64
	rowBytes    int
	clustered   bool
	indexColumn string
	nPreds      int
	hasIxPred   bool

	// Join data.
	joinSel                 float64
	leftSorted, rightSorted bool
}

// NewShrunkenMemo compiles a plan into its shrunken-memo form. The
// compilation cost is paid once per stored plan (per Appendix B, it is not
// part of the Recost API's overhead).
func NewShrunkenMemo(o *Optimizer, p *plan.Plan, tpl *query.Template) (*ShrunkenMemo, error) {
	sm := &ShrunkenMemo{tpl: tpl}
	idx, err := sm.compile(o, p.Root)
	if err != nil {
		return nil, err
	}
	sm.root = idx
	return sm, nil
}

func (sm *ShrunkenMemo) compile(o *Optimizer, n *plan.Node) (int, error) {
	if n == nil {
		return -1, fmt.Errorf("memo: shrunken memo of nil node")
	}
	switch n.Op {
	case plan.TableScan, plan.IndexScan:
		t := o.Cat.Table(n.Table)
		if t == nil {
			return -1, fmt.Errorf("memo: shrunken memo references unknown table %s", n.Table)
		}
		e := shrunkenOp{
			op: n.Op, left: -1, right: -1,
			table: n.Table, rows: float64(t.Rows), rowBytes: t.RowBytes,
			clustered: n.Clustered, indexColumn: n.IndexColumn,
		}
		sm.ops = append(sm.ops, e)
		return len(sm.ops) - 1, nil

	case plan.NLJoin, plan.HashJoin, plan.MergeJoin:
		l, err := sm.compile(o, n.Children[0])
		if err != nil {
			return -1, err
		}
		r, err := sm.compile(o, n.Children[1])
		if err != nil {
			return -1, err
		}
		e := shrunkenOp{
			op: n.Op, left: l, right: r, joinSel: n.JoinSel,
			leftSorted:  deliversOrder(n.Children[0], n.JoinCol),
			rightSorted: deliversOrder(n.Children[1], n.RightJoinCol),
		}
		sm.ops = append(sm.ops, e)
		return len(sm.ops) - 1, nil

	case plan.HashAgg, plan.StreamAgg:
		c, err := sm.compile(o, n.Children[0])
		if err != nil {
			return -1, err
		}
		sm.ops = append(sm.ops, shrunkenOp{op: n.Op, left: c, right: -1})
		return len(sm.ops) - 1, nil

	default:
		return -1, fmt.Errorf("memo: shrunken memo of unsupported operator %s", n.Op)
	}
}

// Size returns an estimate of the memory footprint in bytes, used for the
// plan-cache overhead accounting of §6.1.
func (sm *ShrunkenMemo) Size() int {
	const opBytes = 112 // approximate size of one shrunkenOp entry
	return len(sm.ops)*opBytes + 64
}

// NumOps returns the number of operator entries retained after pruning.
func (sm *ShrunkenMemo) NumOps() int { return len(sm.ops) }

// Recost re-derives the plan's cost for selectivity vector sv. It is the
// fast path used by the PQO cost and redundancy checks.
func (sm *ShrunkenMemo) Recost(o *Optimizer, sv []float64) (float64, error) {
	env, err := NewEnv(sm.tpl, sv, o.Stats)
	if err != nil {
		return 0, err
	}
	atomic.AddInt64(&o.recalls, 1)
	atomic.AddInt64(&o.recostOps, int64(len(sm.ops)))

	type state struct {
		cst, card float64
		rowBytes  int
	}
	states := make([]state, len(sm.ops))
	for i := range sm.ops {
		e := &sm.ops[i]
		switch e.op {
		case plan.TableScan:
			nPreds := env.NumPredsOn(e.table)
			cst := o.Model.TableScanCost(o.Cat.Table(e.table)) + o.Model.FilterCost(e.rows, nPreds)
			states[i] = state{cst: cst, card: e.rows * env.TableSel(e.table), rowBytes: e.rowBytes}

		case plan.IndexScan:
			ixSel, hasPred := env.PredSelOn(e.table, e.indexColumn)
			if !hasPred {
				ixSel = 1
			}
			matched := e.rows * ixSel
			residual := env.NumPredsOn(e.table)
			if hasPred {
				residual--
			}
			cst := o.Model.IndexScanCost(o.Cat.Table(e.table), e.clustered, ixSel) +
				o.Model.FilterCost(matched, residual)
			states[i] = state{cst: cst, card: e.rows * env.TableSel(e.table), rowBytes: e.rowBytes}

		case plan.NLJoin, plan.HashJoin, plan.MergeJoin:
			l, r := states[e.left], states[e.right]
			var opCost float64
			switch e.op {
			case plan.NLJoin:
				opCost = o.Model.NLJoinCost(l.card, r.card)
			case plan.HashJoin:
				opCost = o.Model.HashJoinCost(l.card, r.card, r.rowBytes)
			case plan.MergeJoin:
				opCost = o.Model.MergeJoinCost(l.card, r.card, e.leftSorted, e.rightSorted)
			}
			states[i] = state{
				cst:      l.cst + r.cst + opCost,
				card:     l.card * r.card * e.joinSel,
				rowBytes: l.rowBytes + r.rowBytes,
			}

		case plan.HashAgg, plan.StreamAgg:
			in := states[e.left]
			var opCost float64
			if e.op == plan.HashAgg {
				opCost = o.Model.HashAggCost(in.card)
			} else {
				opCost = o.Model.StreamAggCost(in.card)
			}
			outCard := in.card
			if sm.tpl.Agg == query.GroupBy && sm.tpl.GroupCard > 0 && sm.tpl.GroupCard < outCard {
				outCard = sm.tpl.GroupCard
			}
			states[i] = state{cst: in.cst + opCost, card: outCard, rowBytes: in.rowBytes}
		}
	}
	return states[sm.root].cst, nil
}
