package memo

import (
	"fmt"
	"sync/atomic"

	"repro/internal/catalog"
	"repro/internal/plan"
	"repro/internal/query"
)

// ShrunkenMemo is the compact, cacheable representation of one winning plan
// described in Appendix B of the paper: the memo pruned of all groups and
// expressions not needed by the final plan, flattened into a post-order
// operator array. Recosting replaces the selectivities in the base entries
// and re-derives cardinality and cost bottom-up with plain arithmetic — no
// pointer-chasing plan walk, no plan search.
//
// The plan cache stores one ShrunkenMemo per cached plan; its Size is the
// dominant per-plan memory overhead the paper discusses in §6.1.
type ShrunkenMemo struct {
	tpl *query.Template
	ops []shrunkenOp
	// root is the index of the final operator (always len(ops)-1).
	root int
}

// shrunkenOp is one operator entry. Child references are indices into the
// ops slice (always smaller than the entry's own index: post-order). All
// catalog and template lookups are resolved at compile time so recosting is
// pure arithmetic over the environment's selectivity arrays.
type shrunkenOp struct {
	op    plan.OpType
	left  int // -1 for leaves
	right int // -1 for leaves and unary ops

	// Leaf data.
	table    string
	tab      *catalog.Table
	rows     float64
	rowBytes int
	// tableIdx is the table's position in the template (-1 if the plan
	// references a table the template does not join; such a table carries
	// no predicates).
	tableIdx  int
	nPreds    int
	clustered bool
	// ixPreds are the predicate indices served by the scanned index column.
	ixPreds []int32

	// Join data.
	joinSel                 float64
	leftSorted, rightSorted bool
}

// NewShrunkenMemo compiles a plan into its shrunken-memo form. The
// compilation cost is paid once per stored plan (per Appendix B, it is not
// part of the Recost API's overhead).
func NewShrunkenMemo(o *Optimizer, p *plan.Plan, tpl *query.Template) (*ShrunkenMemo, error) {
	sm := &ShrunkenMemo{tpl: tpl}
	idx, err := sm.compile(o, metaFor(tpl), p.Root)
	if err != nil {
		return nil, err
	}
	sm.root = idx
	return sm, nil
}

func (sm *ShrunkenMemo) compile(o *Optimizer, m *tplMeta, n *plan.Node) (int, error) {
	if n == nil {
		return -1, fmt.Errorf("memo: shrunken memo of nil node")
	}
	switch n.Op {
	case plan.TableScan, plan.IndexScan:
		t := o.Cat.Table(n.Table)
		if t == nil {
			return -1, fmt.Errorf("memo: shrunken memo references unknown table %s", n.Table)
		}
		e := shrunkenOp{
			op: n.Op, left: -1, right: -1,
			table: n.Table, tab: t, rows: float64(t.Rows), rowBytes: t.RowBytes,
			tableIdx: -1, clustered: n.Clustered,
		}
		if ti, ok := m.tableIdx[n.Table]; ok {
			e.tableIdx = ti
			e.nPreds = len(m.tables[ti].preds)
			if n.Op == plan.IndexScan {
				for _, pi := range m.tables[ti].preds {
					if sm.tpl.Preds[pi].Column == n.IndexColumn {
						e.ixPreds = append(e.ixPreds, pi)
					}
				}
			}
		}
		sm.ops = append(sm.ops, e)
		return len(sm.ops) - 1, nil

	case plan.NLJoin, plan.HashJoin, plan.MergeJoin:
		l, err := sm.compile(o, m, n.Children[0])
		if err != nil {
			return -1, err
		}
		r, err := sm.compile(o, m, n.Children[1])
		if err != nil {
			return -1, err
		}
		e := shrunkenOp{
			op: n.Op, left: l, right: r, joinSel: n.JoinSel,
			leftSorted:  deliversOrder(n.Children[0], n.JoinCol),
			rightSorted: deliversOrder(n.Children[1], n.RightJoinCol),
		}
		sm.ops = append(sm.ops, e)
		return len(sm.ops) - 1, nil

	case plan.HashAgg, plan.StreamAgg:
		c, err := sm.compile(o, m, n.Children[0])
		if err != nil {
			return -1, err
		}
		sm.ops = append(sm.ops, shrunkenOp{op: n.Op, left: c, right: -1})
		return len(sm.ops) - 1, nil

	default:
		return -1, fmt.Errorf("memo: shrunken memo of unsupported operator %s", n.Op)
	}
}

// Size returns an estimate of the memory footprint in bytes, used for the
// plan-cache overhead accounting of §6.1.
func (sm *ShrunkenMemo) Size() int {
	const opBytes = 136 // approximate size of one shrunkenOp entry
	return len(sm.ops)*opBytes + 64
}

// NumOps returns the number of operator entries retained after pruning.
func (sm *ShrunkenMemo) NumOps() int { return len(sm.ops) }

// Recost re-derives the plan's cost for selectivity vector sv. It is the
// fast path used by the PQO cost and redundancy checks. The environment is
// pooled; batch callers should prepare one with Optimizer.PrepareEnv and
// call RecostWith directly.
func (sm *ShrunkenMemo) Recost(o *Optimizer, sv []float64) (float64, error) {
	env, err := o.PrepareEnv(sm.tpl, sv)
	if err != nil {
		return 0, err
	}
	c, err := sm.RecostWith(o, env)
	o.ReleaseEnv(env)
	return c, err
}

// smState is the per-operator derived state of one recost pass.
type smState struct {
	cst, card float64
	rowBytes  int
}

// smStackOps is the operator count up to which RecostWith evaluates on a
// stack buffer; larger plans (beyond ~16-way joins with aggregation) fall
// back to one heap allocation.
const smStackOps = 48

// RecostWith re-derives the plan's cost against a previously prepared
// environment: the batched form of Recost. The environment must have been
// prepared for the same template this memo was compiled from.
func (sm *ShrunkenMemo) RecostWith(o *Optimizer, env *Env) (float64, error) {
	if env == nil || env.Tpl != sm.tpl {
		return 0, fmt.Errorf("memo: recost environment does not match shrunken memo template")
	}
	atomic.AddInt64(&o.recalls, 1)
	atomic.AddInt64(&o.recostOps, int64(len(sm.ops)))

	var buf [smStackOps]smState
	var states []smState
	if len(sm.ops) <= smStackOps {
		states = buf[:len(sm.ops)]
	} else {
		states = make([]smState, len(sm.ops)) //lint:allow hotalloc plans beyond smStackOps pay one bounded spill allocation
	}
	for i := range sm.ops {
		e := &sm.ops[i]
		switch e.op {
		case plan.TableScan:
			tableSel := 1.0
			if e.tableIdx >= 0 {
				tableSel = env.tableSel[e.tableIdx]
			}
			cst := o.Model.TableScanCost(e.tab) + o.Model.FilterCost(e.rows, e.nPreds)
			states[i] = smState{cst: cst, card: e.rows * tableSel, rowBytes: e.rowBytes}

		case plan.IndexScan:
			ixSel := 1.0
			for _, pi := range e.ixPreds {
				ixSel *= env.predSel[pi]
			}
			matched := e.rows * ixSel
			residual := e.nPreds
			if len(e.ixPreds) > 0 {
				residual--
			}
			tableSel := 1.0
			if e.tableIdx >= 0 {
				tableSel = env.tableSel[e.tableIdx]
			}
			cst := o.Model.IndexScanCost(e.tab, e.clustered, ixSel) +
				o.Model.FilterCost(matched, residual)
			states[i] = smState{cst: cst, card: e.rows * tableSel, rowBytes: e.rowBytes}

		case plan.NLJoin, plan.HashJoin, plan.MergeJoin:
			l, r := states[e.left], states[e.right]
			var opCost float64
			switch e.op {
			case plan.NLJoin:
				opCost = o.Model.NLJoinCost(l.card, r.card)
			case plan.HashJoin:
				opCost = o.Model.HashJoinCost(l.card, r.card, r.rowBytes)
			case plan.MergeJoin:
				opCost = o.Model.MergeJoinCost(l.card, r.card, e.leftSorted, e.rightSorted)
			}
			states[i] = smState{
				cst:      l.cst + r.cst + opCost,
				card:     l.card * r.card * e.joinSel,
				rowBytes: l.rowBytes + r.rowBytes,
			}

		case plan.HashAgg, plan.StreamAgg:
			in := states[e.left]
			var opCost float64
			if e.op == plan.HashAgg {
				opCost = o.Model.HashAggCost(in.card)
			} else {
				opCost = o.Model.StreamAggCost(in.card)
			}
			outCard := in.card
			if sm.tpl.Agg == query.GroupBy && sm.tpl.GroupCard > 0 && sm.tpl.GroupCard < outCard {
				outCard = sm.tpl.GroupCard
			}
			states[i] = smState{cst: in.cst + opCost, card: outCard, rowBytes: in.rowBytes}
		}
	}
	return states[sm.root].cst, nil
}
