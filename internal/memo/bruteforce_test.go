package memo

import (
	"math"
	"testing"

	"repro/internal/plan"
	"repro/internal/query"
)

// enumerateAllPlans builds every physical plan the optimizer's search space
// contains for a 2- or 3-table template: all join orders over connected
// edges, all three join algorithms at each join, and all access paths per
// table. It is exponential and only used to cross-check the DP.
func enumerateAllPlans(t *testing.T, tpl *query.Template, opt *Optimizer) []*plan.Plan {
	t.Helper()

	// Access-path alternatives per table.
	leaves := make(map[string][]*plan.Node)
	for _, tname := range tpl.Tables {
		tab := opt.Cat.Table(tname)
		alts := []*plan.Node{{Op: plan.TableScan, Table: tname}}
		for _, ix := range tab.Indexes {
			alts = append(alts, &plan.Node{
				Op: plan.IndexScan, Table: tname, Index: ix.Name,
				IndexColumn: ix.Column, Clustered: ix.Clustered,
			})
		}
		leaves[tname] = alts
	}

	edgeBetween := func(a, b map[string]bool) (query.Join, bool) {
		for _, j := range tpl.Joins {
			if a[j.Left] && b[j.Right] {
				return j, true
			}
			if a[j.Right] && b[j.Left] {
				return query.Join{Left: j.Right, LeftCol: j.RightCol,
					Right: j.Left, RightCol: j.LeftCol, Selectivity: j.Selectivity}, true
			}
		}
		return query.Join{}, false
	}
	crossSel := func(a, b map[string]bool) float64 {
		sel := 1.0
		for _, j := range tpl.Joins {
			if (a[j.Left] && b[j.Right]) || (a[j.Right] && b[j.Left]) {
				sel *= j.Selectivity
			}
		}
		return sel
	}
	tablesOf := func(n *plan.Node) map[string]bool {
		out := map[string]bool{}
		for _, tb := range n.Tables() {
			out[tb] = true
		}
		return out
	}

	// Recursive enumeration of join trees over a table set.
	var enum func(tables []string) []*plan.Node
	enum = func(tables []string) []*plan.Node {
		if len(tables) == 1 {
			return leaves[tables[0]]
		}
		var out []*plan.Node
		// All ways to split into (left, right) non-empty subsets.
		n := len(tables)
		for mask := 1; mask < (1 << uint(n)); mask++ {
			if mask == (1<<uint(n))-1 {
				continue
			}
			var ls, rs []string
			for i, tb := range tables {
				if mask&(1<<uint(i)) != 0 {
					ls = append(ls, tb)
				} else {
					rs = append(rs, tb)
				}
			}
			lplans := enum(ls)
			rplans := enum(rs)
			for _, lp := range lplans {
				for _, rp := range rplans {
					lset, rset := tablesOf(lp), tablesOf(rp)
					j, ok := edgeBetween(lset, rset)
					if !ok {
						continue
					}
					jsel := crossSel(lset, rset)
					for _, alg := range []plan.OpType{plan.HashJoin, plan.NLJoin, plan.MergeJoin} {
						out = append(out, &plan.Node{
							Op: alg, JoinSel: jsel,
							JoinCol:      j.Left + "." + j.LeftCol,
							RightJoinCol: j.Right + "." + j.RightCol,
							Children:     []*plan.Node{lp, rp},
						})
					}
				}
			}
		}
		return out
	}

	var plans []*plan.Plan
	for _, root := range enum(tpl.Tables) {
		if tpl.Agg == query.GroupBy {
			for _, agg := range []plan.OpType{plan.HashAgg, plan.StreamAgg} {
				plans = append(plans, plan.New(tpl.Name,
					&plan.Node{Op: agg, Children: []*plan.Node{root}}))
			}
		} else {
			plans = append(plans, plan.New(tpl.Name, root))
		}
	}
	return plans
}

// TestOptimizerMatchesBruteForce verifies the central optimizer invariant:
// at every probed selectivity point, the DP winner's cost equals the
// minimum recost over the exhaustively enumerated plan space.
func TestOptimizerMatchesBruteForce(t *testing.T) {
	r := newRig(t)
	tpl3 := r.threeWay(t)
	all := enumerateAllPlans(t, tpl3, r.opt)
	if len(all) < 50 {
		t.Fatalf("brute force enumerated only %d plans; expected a rich space", len(all))
	}
	t.Logf("brute-force space: %d plans", len(all))

	probes := [][]float64{
		{1e-4, 1e-4, 1e-4}, {0.5, 0.5, 0.5}, {1e-4, 0.9, 0.3},
		{0.9, 1e-4, 0.9}, {0.02, 0.2, 0.6}, {0.9, 0.9, 0.9},
	}
	for _, sv := range probes {
		_, winnerCost, err := r.opt.Optimize(tpl3, sv)
		if err != nil {
			t.Fatal(err)
		}
		best := math.Inf(1)
		for _, p := range all {
			c, err := r.opt.Recost(p, tpl3, sv)
			if err != nil {
				t.Fatalf("recosting brute-force plan: %v", err)
			}
			if c < best {
				best = c
			}
		}
		// The DP search space includes order-aware merge joins the naive
		// enumeration also covers via deliversOrder, so costs must agree.
		if math.Abs(winnerCost-best)/best > 1e-9 {
			if winnerCost > best {
				t.Errorf("sv=%v: DP winner %v worse than brute-force best %v", sv, winnerCost, best)
			} else {
				t.Logf("sv=%v: DP winner %v below brute-force best %v (DP-only alternative)", sv, winnerCost, best)
			}
		}
	}
}

// TestOptimizerMatchesBruteForceWithAgg repeats the cross-check for a
// GroupBy template.
func TestOptimizerMatchesBruteForceWithAgg(t *testing.T) {
	r := newRig(t)
	tpl := &query.Template{
		Name:    "bfagg",
		Catalog: r.cat,
		Tables:  r.tpl.Tables,
		Joins:   r.tpl.Joins,
		Preds:   r.tpl.Preds,
		Agg:     query.GroupBy, GroupCard: 50,
	}
	if err := tpl.Validate(); err != nil {
		t.Fatal(err)
	}
	all := enumerateAllPlans(t, tpl, r.opt)
	for _, sv := range [][]float64{{0.01, 0.01}, {0.5, 0.2}} {
		_, winnerCost, err := r.opt.Optimize(tpl, sv)
		if err != nil {
			t.Fatal(err)
		}
		best := math.Inf(1)
		for _, p := range all {
			c, err := r.opt.Recost(p, tpl, sv)
			if err != nil {
				t.Fatal(err)
			}
			if c < best {
				best = c
			}
		}
		if winnerCost > best*(1+1e-9) {
			t.Errorf("agg sv=%v: DP winner %v worse than brute force %v", sv, winnerCost, best)
		}
	}
}
