package memo

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/catalog"
	"repro/internal/cost"
	"repro/internal/datagen"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/stats"
)

// This file is the differential/property suite for the optimizer rewrite:
// the flat-array search must return bit-identical plans and costs to
// oracleOptimize — a frozen copy of the original map-based, BFS-checked
// search — across randomly generated templates (2–7 tables) and fuzzed
// selectivity vectors, and Recost(winner) must reproduce the winning cost.
// Small templates are additionally cross-checked against the exhaustive
// plan enumeration of bruteforce_test.go.

// oracleOptimize is the seed implementation of Optimize, kept verbatim
// (minus the accounting counters) as the reference the rewritten search is
// differenced against. Do not "improve" it: its value is that it computes
// costs with the original map-of-groups + per-mask-BFS structure.
func oracleOptimize(o *Optimizer, tpl *query.Template, sv []float64) (*plan.Plan, float64, error) {
	env, err := NewEnv(tpl, sv, o.StatsStore())
	if err != nil {
		return nil, 0, err
	}
	n := len(tpl.Tables)
	if n > 20 {
		return nil, 0, fmt.Errorf("memo: template %s joins %d tables; limit is 20", tpl.Name, n)
	}
	tableIdx := make(map[string]int, n)
	for i, t := range tpl.Tables {
		tableIdx[t] = i
	}
	adj := make([]uint32, n)
	type edge struct {
		a, b       int
		aCol, bCol string
		sel        float64
	}
	edges := make([]edge, 0, len(tpl.Joins))
	for _, j := range tpl.Joins {
		a, b := tableIdx[j.Left], tableIdx[j.Right]
		adj[a] |= 1 << uint(b)
		adj[b] |= 1 << uint(a)
		edges = append(edges, edge{a: a, b: b, aCol: j.LeftCol, bCol: j.RightCol, sel: j.Selectivity})
	}

	type oCand struct {
		node     *plan.Node
		cst      float64
		card     float64
		rowBytes int
		order    string
	}
	type oGroup struct{ winners []oCand }
	best := func(g *oGroup) *oCand {
		var out *oCand
		for i := range g.winners {
			if out == nil || g.winners[i].cst < out.cst {
				out = &g.winners[i]
			}
		}
		return out
	}
	offer := func(g *oGroup, c oCand) {
		for i := range g.winners {
			if g.winners[i].order == c.order {
				if c.cst < g.winners[i].cst {
					g.winners[i] = c
				}
				return
			}
		}
		g.winners = append(g.winners, c)
	}

	groups := make(map[uint32]*oGroup, 1<<uint(n))
	for i, tname := range tpl.Tables {
		t := o.Cat.Table(tname)
		g := &oGroup{}
		tsel := env.TableSel(tname)
		card := float64(t.Rows) * tsel
		nPreds := env.NumPredsOn(tname)

		scanCost := o.Model.TableScanCost(t) + o.Model.FilterCost(float64(t.Rows), nPreds)
		offer(g, oCand{
			node:     &plan.Node{Op: plan.TableScan, Table: tname, ResidualPreds: nPreds},
			cst:      scanCost,
			card:     card,
			rowBytes: t.RowBytes,
		})

		for _, ix := range t.Indexes {
			ixSel, hasPred := env.PredSelOn(tname, ix.Column)
			if !hasPred {
				if !ix.Clustered {
					continue
				}
				ixSel = 1
			}
			matched := float64(t.Rows) * ixSel
			cst := o.Model.IndexScanCost(t, ix.Clustered, ixSel)
			residual := nPreds
			if hasPred {
				residual--
			}
			cst += o.Model.FilterCost(matched, residual)
			offer(g, oCand{
				node: &plan.Node{
					Op: plan.IndexScan, Table: tname, Index: ix.Name,
					IndexColumn: ix.Column, Clustered: ix.Clustered,
					ResidualPreds: residual,
				},
				cst:      cst,
				card:     card,
				rowBytes: t.RowBytes,
				order:    tname + "." + ix.Column,
			})
		}
		groups[1<<uint(i)] = g
	}

	crossInfo := func(lm, rm uint32) (sel float64, lCol, rCol string, ok bool) {
		sel = 1
		for _, e := range edges {
			la, ra := uint32(1)<<uint(e.a), uint32(1)<<uint(e.b)
			switch {
			case lm&la != 0 && rm&ra != 0:
				sel *= e.sel
				if !ok {
					lCol = tpl.Tables[e.a] + "." + e.aCol
					rCol = tpl.Tables[e.b] + "." + e.bCol
				}
				ok = true
			case lm&ra != 0 && rm&la != 0:
				sel *= e.sel
				if !ok {
					lCol = tpl.Tables[e.b] + "." + e.bCol
					rCol = tpl.Tables[e.a] + "." + e.aCol
				}
				ok = true
			}
		}
		return sel, lCol, rCol, ok
	}

	oraclePopcount := func(x uint32) int {
		count := 0
		for x != 0 {
			x &= x - 1
			count++
		}
		return count
	}
	oracleTZ := func(x uint32) int {
		n := 0
		for x&1 == 0 {
			x >>= 1
			n++
		}
		return n
	}
	connected := func(mask uint32) bool {
		if mask == 0 {
			return false
		}
		start := mask & (^mask + 1)
		seen := start
		frontier := start
		for frontier != 0 {
			next := uint32(0)
			for f := frontier; f != 0; {
				i := oracleTZ(f)
				f &^= 1 << uint(i)
				next |= adj[i] & mask &^ seen
			}
			seen |= next
			frontier = next
		}
		return seen == mask
	}

	full := uint32(1)<<uint(n) - 1
	for mask := uint32(1); mask <= full; mask++ {
		if mask&full != mask || oraclePopcount(mask) < 2 || !connected(mask) {
			continue
		}
		g := &oGroup{}
		for sub := (mask - 1) & mask; sub != 0; sub = (sub - 1) & mask {
			rest := mask ^ sub
			lg, rg := groups[sub], groups[rest]
			if lg == nil || rg == nil {
				continue
			}
			jsel, lCol, rCol, ok := crossInfo(sub, rest)
			if !ok {
				continue
			}
			l, r := best(lg), best(rg)
			if l == nil || r == nil {
				continue
			}
			outCard := l.card * r.card * jsel
			outBytes := l.rowBytes + r.rowBytes

			hjCost := l.cst + r.cst + o.Model.HashJoinCost(l.card, r.card, r.rowBytes)
			offer(g, oCand{
				node: &plan.Node{Op: plan.HashJoin, JoinCol: lCol, RightJoinCol: rCol, JoinSel: jsel,
					Children: []*plan.Node{l.node, r.node}},
				cst: hjCost, card: outCard, rowBytes: outBytes,
			})
			nlCost := l.cst + r.cst + o.Model.NLJoinCost(l.card, r.card)
			offer(g, oCand{
				node: &plan.Node{Op: plan.NLJoin, JoinCol: lCol, RightJoinCol: rCol, JoinSel: jsel,
					Children: []*plan.Node{l.node, r.node}},
				cst: nlCost, card: outCard, rowBytes: outBytes,
			})

			for _, lc := range lg.winners {
				for _, rc := range rg.winners {
					lSorted := lc.order != "" && lc.order == lCol
					rSorted := rc.order != "" && rc.order == rCol
					if (lc.cst > l.cst && !lSorted) || (rc.cst > r.cst && !rSorted) {
						continue
					}
					mjCost := lc.cst + rc.cst + o.Model.MergeJoinCost(lc.card, rc.card, lSorted, rSorted)
					offer(g, oCand{
						node: &plan.Node{Op: plan.MergeJoin, JoinCol: lCol, RightJoinCol: rCol, JoinSel: jsel,
							Children: []*plan.Node{lc.node, rc.node}},
						cst: mjCost, card: outCard, rowBytes: outBytes,
					})
				}
			}
		}
		if len(g.winners) > 0 {
			groups[mask] = g
		}
	}

	top := groups[full]
	if top == nil {
		return nil, 0, fmt.Errorf("memo: no plan found for template %s", tpl.Name)
	}
	bestCand := best(top)
	root := bestCand.node
	total := bestCand.cst

	if tpl.Agg == query.GroupBy {
		inCard := bestCand.card
		hashCost := total + o.Model.HashAggCost(inCard)
		streamCost := total + o.Model.StreamAggCost(inCard)
		if hashCost <= streamCost {
			root = &plan.Node{Op: plan.HashAgg, Children: []*plan.Node{root}}
			total = hashCost
		} else {
			root = &plan.Node{Op: plan.StreamAgg, Children: []*plan.Node{root}}
			total = streamCost
		}
	}
	if math.IsNaN(total) || math.IsInf(total, 0) || total <= 0 {
		return nil, 0, fmt.Errorf("memo: degenerate plan cost %v for template %s", total, tpl.Name)
	}
	return plan.New(tpl.Name, root), total, nil
}

// fuzzSystem is one catalog with its statistics and optimizer, shared by
// every random template generated over it.
type fuzzSystem struct {
	cat *catalog.Catalog
	st  *stats.Store
	opt *Optimizer
}

func newFuzzSystem(t *testing.T, cat *catalog.Catalog) *fuzzSystem {
	t.Helper()
	st, err := stats.Build(cat, datagen.New(cat, 42))
	if err != nil {
		t.Fatal(err)
	}
	return &fuzzSystem{cat: cat, st: st, opt: NewOptimizer(cat, cost.DefaultModel(), st)}
}

// randomTemplate generates a Validate-clean template over n random tables
// of the system's catalog: a random spanning tree of join edges (plus
// occasional extra edges), and 1–2 parameterized predicates per table on
// distinct columns with dense parameter ordinals.
func randomTemplate(t *testing.T, rng *rand.Rand, fs *fuzzSystem, n int, name string) *query.Template {
	t.Helper()
	all := fs.cat.Tables()
	if n > len(all) {
		t.Fatalf("catalog %s has %d tables, need %d", fs.cat.Name, len(all), n)
	}
	rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
	picked := all[:n]

	tpl := &query.Template{Name: name, Catalog: fs.cat}
	for _, tab := range picked {
		tpl.Tables = append(tpl.Tables, tab.Name)
	}
	randCol := func(tab *catalog.Table) string {
		return tab.Columns[rng.Intn(len(tab.Columns))].Name
	}
	// Spanning tree: join each table to a random earlier one.
	for i := 1; i < n; i++ {
		j := rng.Intn(i)
		tpl.Joins = append(tpl.Joins, query.Join{
			Left: picked[j].Name, LeftCol: randCol(picked[j]),
			Right: picked[i].Name, RightCol: randCol(picked[i]),
			Selectivity: math.Pow(10, -1-5*rng.Float64()),
		})
	}
	// Occasionally densify the join graph beyond a tree.
	for e := rng.Intn(2); e > 0 && n >= 3; e-- {
		a, b := rng.Intn(n), rng.Intn(n)
		if a == b {
			continue
		}
		tpl.Joins = append(tpl.Joins, query.Join{
			Left: picked[a].Name, LeftCol: randCol(picked[a]),
			Right: picked[b].Name, RightCol: randCol(picked[b]),
			Selectivity: math.Pow(10, -1-3*rng.Float64()),
		})
	}
	// Predicates: distinct columns per table, dense parameter ordinals.
	param := 0
	for _, tab := range picked {
		cols := rng.Perm(len(tab.Columns))
		nPreds := 1 + rng.Intn(2)
		if nPreds > len(cols) {
			nPreds = len(cols)
		}
		for k := 0; k < nPreds; k++ {
			op := query.LE
			if rng.Intn(2) == 1 {
				op = query.GE
			}
			tpl.Preds = append(tpl.Preds, query.Predicate{
				Table: tab.Name, Column: tab.Columns[cols[k]].Name, Op: op, Param: param,
			})
			param++
		}
	}
	if err := tpl.Validate(); err != nil {
		t.Fatalf("random template invalid: %v\n%+v", err, tpl)
	}
	return tpl
}

func randomSV(rng *rand.Rand, d int) []float64 {
	sv := make([]float64, d)
	for i := range sv {
		// Mix uniform and log-uniform draws so both extremes and the bulk
		// of the selectivity space are probed.
		if rng.Intn(2) == 0 {
			sv[i] = rng.Float64()
		} else {
			sv[i] = math.Pow(10, -4*rng.Float64())
		}
	}
	return sv
}

// TestDifferentialRandomTemplates is the central property test: for random
// templates of 2–7 tables and random selectivity vectors, the rewritten
// search and the frozen oracle must produce the same plan (by fingerprint)
// with the same float64 cost, and recosting the winner — through the plan
// tree walk and through a fresh shrunken memo — must reproduce it exactly.
func TestDifferentialRandomTemplates(t *testing.T) {
	rng := rand.New(rand.NewSource(20240206))
	tpch := newFuzzSystem(t, catalog.NewTPCH(0.05))
	tpcds := newFuzzSystem(t, catalog.NewTPCDS(0.05))

	cases := 0
	for iter := 0; iter < 40; iter++ {
		n := 2 + rng.Intn(6) // 2..7 tables
		fs := tpch
		if n == 7 || rng.Intn(2) == 1 {
			fs = tpcds // TPCH has only 6 tables; TPCDS carries the 7-way joins
		}
		tpl := randomTemplate(t, rng, fs, n, fmt.Sprintf("fuzz-%d", iter))
		if iter%4 == 0 {
			tpl.Agg = query.GroupBy
			tpl.GroupCard = float64(1 + rng.Intn(10_000))
		}
		for probe := 0; probe < 5; probe++ {
			sv := randomSV(rng, tpl.Dimensions())
			newPlan, newCost, err := fs.opt.Optimize(tpl, sv)
			if err != nil {
				t.Fatalf("tpl %s sv %v: %v", tpl.Name, sv, err)
			}
			oraPlan, oraCost, err := oracleOptimize(fs.opt, tpl, sv)
			if err != nil {
				t.Fatalf("oracle tpl %s sv %v: %v", tpl.Name, sv, err)
			}
			if newCost != oraCost {
				t.Fatalf("tpl %s (%d tables) sv %v: cost %v != oracle %v (Δ %g)",
					tpl.Name, n, sv, newCost, oraCost, newCost-oraCost)
			}
			if newPlan.Fingerprint() != oraPlan.Fingerprint() {
				t.Fatalf("tpl %s sv %v: plan %s != oracle %s",
					tpl.Name, sv, newPlan.Fingerprint(), oraPlan.Fingerprint())
			}
			rc, err := fs.opt.Recost(newPlan, tpl, sv)
			if err != nil {
				t.Fatal(err)
			}
			if rc != newCost {
				t.Fatalf("tpl %s sv %v: Recost(winner) %v != winner cost %v", tpl.Name, sv, rc, newCost)
			}
			sm, err := NewShrunkenMemo(fs.opt, newPlan, tpl)
			if err != nil {
				t.Fatal(err)
			}
			smc, err := sm.Recost(fs.opt, sv)
			if err != nil {
				t.Fatal(err)
			}
			if smc != newCost {
				t.Fatalf("tpl %s sv %v: ShrunkenMemo recost %v != winner cost %v", tpl.Name, sv, smc, newCost)
			}
			cases++
		}
	}
	t.Logf("differential cases checked: %d", cases)
}

// TestDifferentialBruteForceSmall re-checks small random templates against
// the exhaustive plan enumeration: the DP winner must not be worse than the
// best recost over every physical plan in the space.
func TestDifferentialBruteForceSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive enumeration is slow")
	}
	rng := rand.New(rand.NewSource(7))
	fs := newFuzzSystem(t, catalog.NewTPCH(0.05))
	for iter := 0; iter < 6; iter++ {
		n := 2 + rng.Intn(3) // 2..4 tables: enumeration stays tractable
		tpl := randomTemplate(t, rng, fs, n, fmt.Sprintf("bf-%d", iter))
		all := enumerateAllPlans(t, tpl, fs.opt)
		for probe := 0; probe < 3; probe++ {
			sv := randomSV(rng, tpl.Dimensions())
			_, winnerCost, err := fs.opt.Optimize(tpl, sv)
			if err != nil {
				t.Fatal(err)
			}
			bestBF := math.Inf(1)
			for _, p := range all {
				c, err := fs.opt.Recost(p, tpl, sv)
				if err != nil {
					t.Fatal(err)
				}
				if c < bestBF {
					bestBF = c
				}
			}
			if winnerCost > bestBF*(1+1e-9) {
				t.Errorf("tpl %s sv %v: DP winner %v worse than brute force %v", tpl.Name, sv, winnerCost, bestBF)
			}
		}
	}
}
