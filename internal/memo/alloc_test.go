package memo

import "testing"

// Allocation regression tests: the recost hot path must be allocation-free
// in steady state (pooled environments, stack-buffered evaluation), and the
// optimizer's per-call allocations are pinned so the arena/value-candidate
// structure cannot silently regress back to per-candidate nodes.

func TestRecostZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts differ under the race detector")
	}
	r := newRig(t)
	tpl := r.threeWay(t)
	p, _, err := r.opt.Optimize(tpl, []float64{0.01, 0.05, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	sm, err := NewShrunkenMemo(r.opt, p, tpl)
	if err != nil {
		t.Fatal(err)
	}
	sv := []float64{0.1, 0.2, 0.3}
	if _, err := sm.Recost(r.opt, sv); err != nil { // warm the pool
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(200, func() {
		if _, err := sm.Recost(r.opt, sv); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("ShrunkenMemo.Recost allocates %.1f per run, want 0", allocs)
	}

	if allocs := testing.AllocsPerRun(200, func() {
		if _, err := r.opt.Recost(p, tpl, sv); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("Optimizer.Recost allocates %.1f per run, want 0", allocs)
	}
}

func TestBatchedRecostZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts differ under the race detector")
	}
	r := newRig(t)
	tpl := r.threeWay(t)
	p, _, err := r.opt.Optimize(tpl, []float64{0.01, 0.05, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	sm, err := NewShrunkenMemo(r.opt, p, tpl)
	if err != nil {
		t.Fatal(err)
	}
	sv := []float64{0.1, 0.2, 0.3}
	env, err := r.opt.PrepareEnv(tpl, sv)
	if err != nil {
		t.Fatal(err)
	}
	defer r.opt.ReleaseEnv(env)
	if allocs := testing.AllocsPerRun(200, func() {
		if _, err := sm.RecostWith(r.opt, env); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("RecostWith allocates %.1f per run, want 0", allocs)
	}
}

// TestOptimizeAllocBudget pins Optimize's per-call allocation count. The
// seed implementation allocated ~141 times per 3-way call (a map of groups,
// a node per offered candidate, BFS scratch); the flat-array search with a
// winner-only arena needs a small constant number. The budget leaves slack
// for the plan wrapper, arena and fingerprint building.
func TestOptimizeAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts differ under the race detector")
	}
	r := newRig(t)
	tpl := r.threeWay(t)
	sv := []float64{0.01, 0.05, 0.2}
	if _, _, err := r.opt.Optimize(tpl, sv); err != nil { // warm pools + meta
		t.Fatal(err)
	}
	const budget = 25
	if allocs := testing.AllocsPerRun(100, func() {
		if _, _, err := r.opt.Optimize(tpl, sv); err != nil {
			t.Fatal(err)
		}
	}); allocs > budget {
		t.Errorf("Optimize allocates %.1f per run, budget %d", allocs, budget)
	}
}
