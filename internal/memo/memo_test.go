package memo

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/catalog"
	"repro/internal/cost"
	"repro/internal/datagen"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/stats"
)

// testRig bundles an optimizer over a small TPC-H catalog plus a 2-d
// template joining lineitem and orders.
type testRig struct {
	cat *catalog.Catalog
	st  *stats.Store
	opt *Optimizer
	tpl *query.Template
}

func newRig(t testing.TB) *testRig {
	t.Helper()
	cat := catalog.NewTPCH(0.1)
	st, err := stats.Build(cat, datagen.New(cat, 42))
	if err != nil {
		t.Fatal(err)
	}
	opt := NewOptimizer(cat, cost.DefaultModel(), st)
	tpl := &query.Template{
		Name:    "q2d",
		Catalog: cat,
		Tables:  []string{"lineitem", "orders"},
		Joins: []query.Join{{
			Left: "lineitem", Right: "orders",
			LeftCol: "l_orderkey", RightCol: "o_orderkey",
			Selectivity: 1.0 / 150_000,
		}},
		Preds: []query.Predicate{
			{Table: "lineitem", Column: "l_shipdate", Op: query.LE, Param: 0},
			{Table: "orders", Column: "o_orderdate", Op: query.LE, Param: 1},
		},
	}
	if err := tpl.Validate(); err != nil {
		t.Fatal(err)
	}
	return &testRig{cat: cat, st: st, opt: opt, tpl: tpl}
}

func (r *testRig) threeWay(t testing.TB) *query.Template {
	t.Helper()
	tpl := &query.Template{
		Name:    "q3d",
		Catalog: r.cat,
		Tables:  []string{"lineitem", "orders", "customer"},
		Joins: []query.Join{
			{Left: "lineitem", Right: "orders", LeftCol: "l_orderkey", RightCol: "o_orderkey", Selectivity: 1.0 / 150_000},
			{Left: "orders", Right: "customer", LeftCol: "o_custkey", RightCol: "c_custkey", Selectivity: 1.0 / 15_000},
		},
		Preds: []query.Predicate{
			{Table: "lineitem", Column: "l_shipdate", Op: query.LE, Param: 0},
			{Table: "orders", Column: "o_orderdate", Op: query.LE, Param: 1},
			{Table: "customer", Column: "c_acctbal", Op: query.GE, Param: 2},
		},
	}
	if err := tpl.Validate(); err != nil {
		t.Fatal(err)
	}
	return tpl
}

func TestEnvBasics(t *testing.T) {
	r := newRig(t)
	env, err := NewEnv(r.tpl, []float64{0.25, 0.5}, r.st)
	if err != nil {
		t.Fatal(err)
	}
	if got := env.TableSel("lineitem"); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("TableSel(lineitem) = %v, want 0.25", got)
	}
	if got := env.TableSel("customer"); got != 1 {
		t.Errorf("TableSel(customer) = %v, want 1 (no preds)", got)
	}
	if n := env.NumPredsOn("orders"); n != 1 {
		t.Errorf("NumPredsOn(orders) = %d, want 1", n)
	}
	sel, ok := env.PredSelOn("lineitem", "l_shipdate")
	if !ok || math.Abs(sel-0.25) > 1e-12 {
		t.Errorf("PredSelOn = (%v, %v), want (0.25, true)", sel, ok)
	}
	if _, ok := env.PredSelOn("lineitem", "l_quantity"); ok {
		t.Error("PredSelOn for unfiltered column should be false")
	}
	if _, err := NewEnv(r.tpl, []float64{0.5}, r.st); err == nil {
		t.Error("short sVector should fail")
	}
}

func TestOptimizeReturnsValidPlan(t *testing.T) {
	r := newRig(t)
	p, c, err := r.opt.Optimize(r.tpl, []float64{0.1, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if c <= 0 || math.IsInf(c, 0) || math.IsNaN(c) {
		t.Fatalf("cost = %v", c)
	}
	tabs := p.Root.Tables()
	if len(tabs) != 2 {
		t.Fatalf("plan references %v, want both tables", tabs)
	}
}

func TestOptimalPlanVariesWithSelectivity(t *testing.T) {
	// The whole premise of PQO: different regions of the selectivity space
	// have different optimal plans.
	r := newRig(t)
	fps := make(map[string]bool)
	for _, sv := range [][]float64{
		{1e-5, 1e-5}, {1e-5, 0.9}, {0.9, 1e-5}, {0.9, 0.9}, {0.05, 0.5},
	} {
		p, _, err := r.opt.Optimize(r.tpl, sv)
		if err != nil {
			t.Fatal(err)
		}
		fps[p.Fingerprint()] = true
	}
	if len(fps) < 2 {
		t.Errorf("only %d distinct optimal plans across extreme selectivities; need plan diversity", len(fps))
	}
}

func TestWinnerIsMinimalOverSearchSpace(t *testing.T) {
	// Cross-check the DP winner against recosting the winner itself and
	// against the winners found at other selectivity points: for any sv,
	// Cost(winner(sv), sv) <= Cost(winner(sv'), sv) for all sv'.
	r := newRig(t)
	grid := [][]float64{
		{1e-4, 1e-4}, {1e-4, 0.5}, {0.5, 1e-4}, {0.5, 0.5},
		{0.02, 0.2}, {0.9, 0.9}, {1e-4, 0.9}, {0.9, 1e-4},
	}
	plans := make([]*plan.Plan, len(grid))
	for i, sv := range grid {
		p, _, err := r.opt.Optimize(r.tpl, sv)
		if err != nil {
			t.Fatal(err)
		}
		plans[i] = p
	}
	for i, sv := range grid {
		_, ownCost, err := r.opt.Optimize(r.tpl, sv)
		if err != nil {
			t.Fatal(err)
		}
		for j, p := range plans {
			c, err := r.opt.Recost(p, r.tpl, sv)
			if err != nil {
				t.Fatal(err)
			}
			if c < ownCost-1e-9 {
				t.Errorf("winner at %v (cost %v) beaten by plan from %v (cost %v)", sv, ownCost, grid[j], c)
			}
			_ = i
		}
	}
}

func TestRecostEqualsOptimizeCostForWinner(t *testing.T) {
	r := newRig(t)
	tpl3 := r.threeWay(t)
	for _, sv := range [][]float64{{0.001, 0.01, 0.1}, {0.5, 0.5, 0.5}, {1e-5, 0.9, 0.3}} {
		p, c, err := r.opt.Optimize(tpl3, sv)
		if err != nil {
			t.Fatal(err)
		}
		rc, err := r.opt.Recost(p, tpl3, sv)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(rc-c)/c > 1e-9 {
			t.Errorf("Recost(%v) = %v, Optimize cost = %v; must be identical", sv, rc, c)
		}
	}
}

func TestShrunkenMemoMatchesRecost(t *testing.T) {
	r := newRig(t)
	tpl3 := r.threeWay(t)
	p, c, err := r.opt.Optimize(tpl3, []float64{0.01, 0.05, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	sm, err := NewShrunkenMemo(r.opt, p, tpl3)
	if err != nil {
		t.Fatal(err)
	}
	// At the optimized point the shrunken memo reproduces the winning cost.
	got, err := sm.Recost(r.opt, []float64{0.01, 0.05, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-c)/c > 1e-9 {
		t.Errorf("shrunken recost = %v, optimize cost = %v", got, c)
	}
	// At other points it matches the tree-walking Recost exactly.
	for _, sv := range [][]float64{{0.3, 0.3, 0.3}, {1e-4, 0.9, 0.5}, {0.9, 1e-4, 1e-4}} {
		a, err := sm.Recost(r.opt, sv)
		if err != nil {
			t.Fatal(err)
		}
		b, err := r.opt.Recost(p, tpl3, sv)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(a-b) > 1e-9*math.Max(a, b) {
			t.Errorf("shrunken vs tree recost at %v: %v vs %v", sv, a, b)
		}
	}
	if sm.NumOps() != p.Root.NumOperators() {
		t.Errorf("shrunken memo has %d ops, plan has %d", sm.NumOps(), p.Root.NumOperators())
	}
	if sm.Size() <= 0 {
		t.Error("Size() must be positive")
	}
}

func TestRecostMuchCheaperThanOptimize(t *testing.T) {
	// The paper's premise for the cost check: Recost is far cheaper than a
	// full optimizer call. Compare expressions costed vs operators visited.
	cat := catalog.NewTPCH(0.1)
	st, err := stats.Build(cat, datagen.New(cat, 42))
	if err != nil {
		t.Fatal(err)
	}
	opt := NewOptimizer(cat, cost.DefaultModel(), st)
	r := &testRig{cat: cat, st: st, opt: opt}
	tpl := r.threeWay(t)
	sv := []float64{0.01, 0.05, 0.2}
	p, _, err := opt.Optimize(tpl, sv)
	if err != nil {
		t.Fatal(err)
	}
	sm, err := NewShrunkenMemo(opt, p, tpl)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sm.Recost(opt, sv); err != nil {
		t.Fatal(err)
	}
	_, exprCosted, _, recostOps := opt.Counters()
	if exprCosted < 5*recostOps {
		t.Errorf("optimize costed %d exprs, recost visited %d ops; expected optimize >> recost",
			exprCosted, recostOps)
	}
}

func TestCountersAdvance(t *testing.T) {
	r := newRig(t)
	o0, e0, r0, ro0 := r.opt.Counters()
	p, _, err := r.opt.Optimize(r.tpl, []float64{0.1, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.opt.Recost(p, r.tpl, []float64{0.2, 0.2}); err != nil {
		t.Fatal(err)
	}
	o1, e1, r1, ro1 := r.opt.Counters()
	if o1 != o0+1 || e1 <= e0 || r1 != r0+1 || ro1 <= ro0 {
		t.Errorf("counters did not advance: (%d,%d,%d,%d) -> (%d,%d,%d,%d)",
			o0, e0, r0, ro0, o1, e1, r1, ro1)
	}
}

func TestOptimizeSingleTable(t *testing.T) {
	r := newRig(t)
	tpl := &query.Template{
		Name:    "q1t",
		Catalog: r.cat,
		Tables:  []string{"lineitem"},
		Preds: []query.Predicate{
			{Table: "lineitem", Column: "l_shipdate", Op: query.LE, Param: 0},
		},
	}
	if err := tpl.Validate(); err != nil {
		t.Fatal(err)
	}
	// Low selectivity: the optimizer must choose the secondary index scan.
	p, _, err := r.opt.Optimize(tpl, []float64{1e-5})
	if err != nil {
		t.Fatal(err)
	}
	if p.Root.Op != plan.IndexScan || p.Root.Index != "ix_l_shipdate" {
		t.Errorf("at sel 1e-5, got %s, want IndexScan via ix_l_shipdate:\n%s", p.Root.Op, p)
	}
	// High selectivity: full scan (or clustered scan) must win.
	p2, _, err := r.opt.Optimize(tpl, []float64{0.95})
	if err != nil {
		t.Fatal(err)
	}
	if p2.Root.Op == plan.IndexScan && !p2.Root.Clustered {
		t.Errorf("at sel 0.95, secondary index scan should lose:\n%s", p2)
	}
}

func TestOptimizeGroupBy(t *testing.T) {
	r := newRig(t)
	tpl := &query.Template{
		Name:      "qagg",
		Catalog:   r.cat,
		Tables:    []string{"lineitem", "orders"},
		Joins:     r.tpl.Joins,
		Preds:     r.tpl.Preds,
		Agg:       query.GroupBy,
		GroupCard: 100,
	}
	if err := tpl.Validate(); err != nil {
		t.Fatal(err)
	}
	p, c, err := r.opt.Optimize(tpl, []float64{0.1, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if p.Root.Op != plan.HashAgg && p.Root.Op != plan.StreamAgg {
		t.Errorf("GroupBy plan root = %s, want an aggregate", p.Root.Op)
	}
	rc, err := r.opt.Recost(p, tpl, []float64{0.1, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rc-c)/c > 1e-9 {
		t.Errorf("agg recost %v != optimize %v", rc, c)
	}
}

func TestRecostErrors(t *testing.T) {
	r := newRig(t)
	if _, err := r.opt.Recost(plan.New("q", nil), r.tpl, []float64{0.1, 0.1}); err == nil {
		t.Error("recost of nil plan should fail")
	}
	p, _, err := r.opt.Optimize(r.tpl, []float64{0.1, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.opt.Recost(p, r.tpl, []float64{0.1}); err == nil {
		t.Error("recost with short sVector should fail")
	}
	if _, err := NewShrunkenMemo(r.opt, plan.New("q", nil), r.tpl); err == nil {
		t.Error("shrunken memo of nil plan should fail")
	}
}

// Property: Recost is monotone under the PCM assumption for BCG-compliant
// selectivity scalings — increasing every selectivity never decreases cost.
func TestRecostMonotoneProperty(t *testing.T) {
	r := newRig(t)
	p, _, err := r.opt.Optimize(r.tpl, []float64{0.05, 0.05})
	if err != nil {
		t.Fatal(err)
	}
	f := func(aRaw, bRaw, gRaw uint16) bool {
		s1 := float64(aRaw%900+1) / 1000
		s2 := float64(bRaw%900+1) / 1000
		gamma := 1 + float64(gRaw%100)/100 // [1, 2)
		c1, err := r.opt.Recost(p, r.tpl, []float64{s1, s2})
		if err != nil {
			return false
		}
		u1, u2 := math.Min(s1*gamma, 1), math.Min(s2*gamma, 1)
		c2, err := r.opt.Recost(p, r.tpl, []float64{u1, u2})
		if err != nil {
			return false
		}
		return c2+1e-9 >= c1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: BCG with fi(α)=α holds for recosted whole plans in this model
// up to join-count degree: scaling one dimension's selectivity by α scales
// plan cost by at most α per occurrence of that dimension (one table here).
func TestPlanBCGProperty(t *testing.T) {
	r := newRig(t)
	p, _, err := r.opt.Optimize(r.tpl, []float64{0.05, 0.05})
	if err != nil {
		t.Fatal(err)
	}
	f := func(sRaw, aRaw uint16) bool {
		s := float64(sRaw%500+1) / 1000
		alpha := 1 + float64(aRaw%300)/100
		if s*alpha > 1 {
			return true
		}
		c1, err := r.opt.Recost(p, r.tpl, []float64{s, 0.3})
		if err != nil {
			return false
		}
		c2, err := r.opt.Recost(p, r.tpl, []float64{s * alpha, 0.3})
		if err != nil {
			return false
		}
		return c2 <= alpha*c1*(1+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestOptimizeRejectsHugeJoins(t *testing.T) {
	r := newRig(t)
	tpl := &query.Template{Name: "huge", Catalog: r.cat}
	for i := 0; i < 21; i++ {
		tpl.Tables = append(tpl.Tables, "t")
	}
	if _, _, err := r.opt.Optimize(tpl, nil); err == nil {
		t.Error("21-table join should be rejected")
	}
}

func TestOptimizeDeterministic(t *testing.T) {
	// The winner (structure and cost) must be identical across repeated
	// calls and across independently built optimizers: experiments rely on
	// fingerprint equality for plan identity.
	r1 := newRig(t)
	r2 := newRig(t)
	tpl1 := r1.threeWay(t)
	tpl2 := r2.threeWay(t)
	for _, sv := range [][]float64{{0.01, 0.1, 0.5}, {0.5, 0.01, 0.9}, {1e-4, 1e-4, 1e-4}} {
		pa, ca, err := r1.opt.Optimize(tpl1, sv)
		if err != nil {
			t.Fatal(err)
		}
		pb, cb, err := r1.opt.Optimize(tpl1, sv)
		if err != nil {
			t.Fatal(err)
		}
		pc, cc, err := r2.opt.Optimize(tpl2, sv)
		if err != nil {
			t.Fatal(err)
		}
		if pa.Fingerprint() != pb.Fingerprint() || ca != cb {
			t.Errorf("same optimizer, same sv, different result at %v", sv)
		}
		if pa.Fingerprint() != pc.Fingerprint() || math.Abs(ca-cc)/ca > 1e-12 {
			t.Errorf("independent optimizers disagree at %v: %v vs %v", sv, ca, cc)
		}
	}
}
