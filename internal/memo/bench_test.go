package memo

import (
	"testing"
)

// benchSVs is a fixed set of selectivity vectors cycled by the benchmarks so
// the measured work covers more than one point of the selectivity space.
var benchSVs = [][]float64{
	{0.001, 0.01, 0.1},
	{0.5, 0.5, 0.5},
	{1e-4, 0.9, 0.3},
	{0.9, 1e-4, 0.9},
	{0.02, 0.2, 0.6},
	{0.25, 0.75, 0.05},
	{0.7, 0.07, 0.007},
	{0.33, 0.66, 0.99},
}

// BenchmarkOptimize measures a full optimizer call on the 3-way template —
// the cost a PQO technique pays on every cache miss.
func BenchmarkOptimize(b *testing.B) {
	r := newRig(b)
	tpl := r.threeWay(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := r.opt.Optimize(tpl, benchSVs[i%len(benchSVs)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRecost measures the shrunken-memo Recost API — the hot path of
// the SCR cost check (§4.2: one recost per cost-check candidate).
func BenchmarkRecost(b *testing.B) {
	r := newRig(b)
	tpl := r.threeWay(b)
	p, _, err := r.opt.Optimize(tpl, []float64{0.01, 0.05, 0.2})
	if err != nil {
		b.Fatal(err)
	}
	sm, err := NewShrunkenMemo(r.opt, p, tpl)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sm.Recost(r.opt, benchSVs[i%len(benchSVs)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRecostTree measures the plan-tree-walking Recost (used when no
// shrunken memo has been compiled, e.g. recosting arbitrary plans in the
// differential tests).
func BenchmarkRecostTree(b *testing.B) {
	r := newRig(b)
	tpl := r.threeWay(b)
	p, _, err := r.opt.Optimize(tpl, []float64{0.01, 0.05, 0.2})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.opt.Recost(p, tpl, benchSVs[i%len(benchSVs)]); err != nil {
			b.Fatal(err)
		}
	}
}
