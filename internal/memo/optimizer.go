package memo

import (
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/catalog"
	"repro/internal/cost"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/stats"
)

// Optimizer performs cost-based plan search for query templates over one
// catalog. It is safe for concurrent use; accounting counters are atomic.
type Optimizer struct {
	Cat   *catalog.Catalog
	Model *cost.Model
	Stats *stats.Store

	// exprCosted counts physical alternatives costed across all Optimize
	// calls; recostOps counts operators visited across all Recost calls.
	// Their ratio demonstrates the paper's claim that Recost is orders of
	// magnitude cheaper than an optimizer call.
	exprCosted int64
	recostOps  int64
	optCalls   int64
	recalls    int64
}

// NewOptimizer returns an optimizer over the given catalog, cost model and
// statistics store.
func NewOptimizer(cat *catalog.Catalog, m *cost.Model, st *stats.Store) *Optimizer {
	return &Optimizer{Cat: cat, Model: m, Stats: st}
}

// Counters reports cumulative accounting: optimizer calls made, expressions
// costed during optimization, recost calls made, and operators visited
// during recosts.
func (o *Optimizer) Counters() (optCalls, exprCosted, recostCalls, recostOps int64) {
	return atomic.LoadInt64(&o.optCalls), atomic.LoadInt64(&o.exprCosted),
		atomic.LoadInt64(&o.recalls), atomic.LoadInt64(&o.recostOps)
}

// candidate is one physical alternative for a memo group, possibly carrying
// a delivered sort order (an interesting order in System-R terms).
type candidate struct {
	node *plan.Node
	cst  float64
	card float64
	// rowBytes is the output row width, used by the hash-join spill test.
	rowBytes int
	// order is "table.column" if the plan delivers rows sorted on that
	// column, else "".
	order string
}

// group is a memo group: the equivalence class of all plans producing the
// join of one subset of tables. winners holds the cheapest plan overall
// (order "") and the cheapest plan per delivered order.
type group struct {
	winners []candidate
}

// best returns the cheapest candidate overall, or nil.
func (g *group) best() *candidate {
	var out *candidate
	for i := range g.winners {
		if out == nil || g.winners[i].cst < out.cst {
			out = &g.winners[i]
		}
	}
	return out
}

// bestWithOrder returns the cheapest candidate delivering the given order,
// or nil.
func (g *group) bestWithOrder(order string) *candidate {
	var out *candidate
	for i := range g.winners {
		if g.winners[i].order == order && (out == nil || g.winners[i].cst < out.cst) {
			out = &g.winners[i]
		}
	}
	return out
}

// offer adds a candidate if it improves on the incumbent for its order or
// for the overall winner set. Dominated candidates (worse cost, no new
// order) are discarded.
func (g *group) offer(c candidate) {
	for i := range g.winners {
		if g.winners[i].order == c.order {
			if c.cst < g.winners[i].cst {
				g.winners[i] = c
			}
			return
		}
	}
	g.winners = append(g.winners, c)
}

// Optimize finds the cheapest physical plan for tpl under selectivity
// vector sv and returns it with its estimated cost. This corresponds to a
// full optimizer call in the paper: it searches the space of join orders,
// join algorithms and access paths.
func (o *Optimizer) Optimize(tpl *query.Template, sv []float64) (*plan.Plan, float64, error) {
	env, err := NewEnv(tpl, sv, o.Stats)
	if err != nil {
		return nil, 0, err
	}
	atomic.AddInt64(&o.optCalls, 1)

	n := len(tpl.Tables)
	if n > 20 {
		return nil, 0, fmt.Errorf("memo: template %s joins %d tables; limit is 20", tpl.Name, n)
	}
	tableIdx := make(map[string]int, n)
	for i, t := range tpl.Tables {
		tableIdx[t] = i
	}
	// adj[i] is the bitmask of tables joined to table i.
	adj := make([]uint32, n)
	type edge struct {
		a, b       int
		aCol, bCol string
		sel        float64
	}
	edges := make([]edge, 0, len(tpl.Joins))
	for _, j := range tpl.Joins {
		a, b := tableIdx[j.Left], tableIdx[j.Right]
		adj[a] |= 1 << uint(b)
		adj[b] |= 1 << uint(a)
		edges = append(edges, edge{a: a, b: b, aCol: j.LeftCol, bCol: j.RightCol, sel: j.Selectivity})
	}

	groups := make(map[uint32]*group, 1<<uint(n))

	// Leaf groups: access-path selection per table.
	for i, tname := range tpl.Tables {
		t := o.Cat.Table(tname)
		g := &group{}
		tsel := env.TableSel(tname)
		card := float64(t.Rows) * tsel
		nPreds := env.NumPredsOn(tname)

		// Full table scan: all predicates are residual filters.
		scanCost := o.Model.TableScanCost(t) + o.Model.FilterCost(float64(t.Rows), nPreds)
		g.offer(candidate{
			node:     &plan.Node{Op: plan.TableScan, Table: tname, ResidualPreds: nPreds},
			cst:      scanCost,
			card:     card,
			rowBytes: t.RowBytes,
		})
		atomic.AddInt64(&o.exprCosted, 1)

		// Index scans: one per index; usable as an access path when a
		// predicate exists on the index column, and always usable as an
		// order-delivering full scan via the clustered index.
		for _, ix := range t.Indexes {
			ixSel, hasPred := env.PredSelOn(tname, ix.Column)
			if !hasPred {
				if !ix.Clustered {
					continue
				}
				ixSel = 1 // clustered full scan in index order
			}
			matched := float64(t.Rows) * ixSel
			cst := o.Model.IndexScanCost(t, ix.Clustered, ixSel)
			residual := nPreds
			if hasPred {
				residual--
			}
			cst += o.Model.FilterCost(matched, residual)
			g.offer(candidate{
				node: &plan.Node{
					Op: plan.IndexScan, Table: tname, Index: ix.Name,
					IndexColumn: ix.Column, Clustered: ix.Clustered,
					ResidualPreds: residual,
				},
				cst:      cst,
				card:     card,
				rowBytes: t.RowBytes,
				order:    tname + "." + ix.Column,
			})
			atomic.AddInt64(&o.exprCosted, 1)
		}
		groups[1<<uint(i)] = g
	}

	// crossInfo computes, for a (left, right) mask pair, the product of the
	// selectivities of the crossing join edges and the representative join
	// columns on each side. Returns ok=false if no edge crosses.
	crossInfo := func(lm, rm uint32) (sel float64, lCol, rCol string, ok bool) {
		sel = 1
		for _, e := range edges {
			la, ra := uint32(1)<<uint(e.a), uint32(1)<<uint(e.b)
			switch {
			case lm&la != 0 && rm&ra != 0:
				sel *= e.sel
				if !ok {
					lCol = tpl.Tables[e.a] + "." + e.aCol
					rCol = tpl.Tables[e.b] + "." + e.bCol
				}
				ok = true
			case lm&ra != 0 && rm&la != 0:
				sel *= e.sel
				if !ok {
					lCol = tpl.Tables[e.b] + "." + e.bCol
					rCol = tpl.Tables[e.a] + "." + e.aCol
				}
				ok = true
			}
		}
		return sel, lCol, rCol, ok
	}

	connected := func(mask uint32) bool {
		if mask == 0 {
			return false
		}
		// BFS from the lowest set bit.
		start := mask & (^mask + 1)
		seen := start
		frontier := start
		for frontier != 0 {
			next := uint32(0)
			for f := frontier; f != 0; {
				i := trailingZeros(f)
				f &^= 1 << uint(i)
				next |= adj[i] & mask &^ seen
			}
			seen |= next
			frontier = next
		}
		return seen == mask
	}

	full := uint32(1)<<uint(n) - 1
	// Enumerate masks in increasing popcount order (natural order works:
	// any submask of m is numerically smaller than m).
	for mask := uint32(1); mask <= full; mask++ {
		if mask&full != mask || popcount(mask) < 2 || !connected(mask) {
			continue
		}
		g := &group{}
		// Enumerate proper submasks as the left (outer) input.
		for sub := (mask - 1) & mask; sub != 0; sub = (sub - 1) & mask {
			rest := mask ^ sub
			lg, rg := groups[sub], groups[rest]
			if lg == nil || rg == nil {
				continue
			}
			jsel, lCol, rCol, ok := crossInfo(sub, rest)
			if !ok {
				continue // Cartesian products are not enumerated.
			}
			l, r := lg.best(), rg.best()
			if l == nil || r == nil {
				continue
			}
			outCard := l.card * r.card * jsel
			outBytes := l.rowBytes + r.rowBytes

			// Hash join: build on the inner (right) input.
			hjCost := l.cst + r.cst + o.Model.HashJoinCost(l.card, r.card, r.rowBytes)
			g.offer(candidate{
				node: &plan.Node{Op: plan.HashJoin, JoinCol: lCol, RightJoinCol: rCol, JoinSel: jsel,
					Children: []*plan.Node{l.node, r.node}},
				cst: hjCost, card: outCard, rowBytes: outBytes,
			})
			// Nested loops join.
			nlCost := l.cst + r.cst + o.Model.NLJoinCost(l.card, r.card)
			g.offer(candidate{
				node: &plan.Node{Op: plan.NLJoin, JoinCol: lCol, RightJoinCol: rCol, JoinSel: jsel,
					Children: []*plan.Node{l.node, r.node}},
				cst: nlCost, card: outCard, rowBytes: outBytes,
			})
			atomic.AddInt64(&o.exprCosted, 2)

			// Merge join: try every (left order, right order) pairing so a
			// pre-sorted index scan can discount the sort.
			for _, lc := range lg.winners {
				for _, rc := range rg.winners {
					lSorted := lc.order != "" && lc.order == lCol
					rSorted := rc.order != "" && rc.order == rCol
					// Only consider non-best children when they supply a
					// useful order; otherwise they are dominated.
					if (lc.cst > l.cst && !lSorted) || (rc.cst > r.cst && !rSorted) {
						continue
					}
					mjCost := lc.cst + rc.cst + o.Model.MergeJoinCost(lc.card, rc.card, lSorted, rSorted)
					g.offer(candidate{
						node: &plan.Node{Op: plan.MergeJoin, JoinCol: lCol, RightJoinCol: rCol, JoinSel: jsel,
							Children: []*plan.Node{lc.node, rc.node}},
						cst: mjCost, card: outCard, rowBytes: outBytes,
					})
					atomic.AddInt64(&o.exprCosted, 1)
				}
			}
		}
		if len(g.winners) > 0 {
			groups[mask] = g
		}
	}

	top := groups[full]
	if top == nil {
		return nil, 0, fmt.Errorf("memo: no plan found for template %s", tpl.Name)
	}
	bestCand := top.best()
	root := bestCand.node
	total := bestCand.cst

	if tpl.Agg == query.GroupBy {
		inCard := bestCand.card
		hashCost := total + o.Model.HashAggCost(inCard)
		streamCost := total + o.Model.StreamAggCost(inCard)
		atomic.AddInt64(&o.exprCosted, 2)
		if hashCost <= streamCost {
			root = &plan.Node{Op: plan.HashAgg, Children: []*plan.Node{root}}
			total = hashCost
		} else {
			root = &plan.Node{Op: plan.StreamAgg, Children: []*plan.Node{root}}
			total = streamCost
		}
	}
	if math.IsNaN(total) || math.IsInf(total, 0) || total <= 0 {
		return nil, 0, fmt.Errorf("memo: degenerate plan cost %v for template %s", total, tpl.Name)
	}
	return plan.New(tpl.Name, root), total, nil
}

func popcount(x uint32) int {
	count := 0
	for x != 0 {
		x &= x - 1
		count++
	}
	return count
}

func trailingZeros(x uint32) int {
	if x == 0 {
		return 32
	}
	n := 0
	for x&1 == 0 {
		x >>= 1
		n++
	}
	return n
}
