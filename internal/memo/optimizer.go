package memo

import (
	"fmt"
	"math"
	"math/bits"
	"sync"
	"sync/atomic"

	"repro/internal/catalog"
	"repro/internal/cost"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/stats"
)

// maxJoinTables bounds the DP search; the flat memo array has 2^n groups.
const maxJoinTables = 20

// Optimizer performs cost-based plan search for query templates over one
// catalog. It is safe for concurrent use; accounting counters are atomic.
//
// Statistics are versioned: the optimizer holds the current stats.Epoch
// (monotonic id + immutable store) behind an atomic pointer. Every
// PrepareEnv reads the pointer exactly once, so each Optimize/Recost is
// internally consistent even while AdvanceEpoch swaps generations
// underneath concurrent traffic.
type Optimizer struct {
	Cat   *catalog.Catalog
	Model *cost.Model

	// epoch is the current statistics generation; never nil after
	// NewOptimizer. Swapped wholesale by AdvanceEpoch.
	epoch atomic.Pointer[stats.Epoch]

	// exprCosted counts physical alternatives costed across all Optimize
	// calls; recostOps counts operators visited across all Recost calls.
	// Their ratio demonstrates the paper's claim that Recost is orders of
	// magnitude cheaper than an optimizer call.
	exprCosted int64
	recostOps  int64
	optCalls   int64
	recalls    int64

	// envGets/envReuses account the pooled-environment hot path (PrepareEnv).
	envGets   int64
	envReuses int64
}

// NewOptimizer returns an optimizer over the given catalog, cost model and
// statistics store. The store becomes epoch 1.
func NewOptimizer(cat *catalog.Catalog, m *cost.Model, st *stats.Store) *Optimizer {
	o := &Optimizer{Cat: cat, Model: m}
	o.epoch.Store(&stats.Epoch{ID: 1, Store: st})
	return o
}

// Epoch returns the current statistics epoch (id + store), never nil.
func (o *Optimizer) Epoch() *stats.Epoch { return o.epoch.Load() }

// StatsStore returns the statistics store of the current epoch.
func (o *Optimizer) StatsStore() *stats.Store { return o.epoch.Load().Store }

// AdvanceEpoch atomically installs st as the next statistics generation
// and returns the new epoch. Concurrent advances serialize through the
// CAS loop, so ids stay strictly monotonic. In-flight Optimize/Recost
// calls that already prepared their environment finish under the epoch
// they started with; new preparations observe the new epoch.
//
// Unlike a bare stats swap, advancing needs no recost-cache flush: the
// engine layer keys cached recost results by epoch id, so entries from
// previous generations can never satisfy lookups made under the new one
// and simply age out.
func (o *Optimizer) AdvanceEpoch(st *stats.Store) *stats.Epoch {
	for {
		cur := o.epoch.Load()
		next := &stats.Epoch{ID: cur.ID + 1, Store: st}
		if o.epoch.CompareAndSwap(cur, next) {
			return next
		}
	}
}

// Counters reports cumulative accounting: optimizer calls made, expressions
// costed during optimization, recost calls made, and operators visited
// during recosts.
func (o *Optimizer) Counters() (optCalls, exprCosted, recostCalls, recostOps int64) {
	return atomic.LoadInt64(&o.optCalls), atomic.LoadInt64(&o.exprCosted),
		atomic.LoadInt64(&o.recalls), atomic.LoadInt64(&o.recostOps)
}

// candidate is one physical alternative for a memo group, possibly carrying
// a delivered sort order (an interesting order in System-R terms). It is a
// value type: the search keeps candidates inline in group arrays and only
// materializes plan.Nodes for the winning plan, so losing alternatives cost
// no allocation.
type candidate struct {
	cst  float64
	card float64
	// rowBytes is the output row width, used by the hash-join spill test.
	rowBytes int
	// order is "table.column" if the plan delivers rows sorted on that
	// column, else "". Only leaf candidates (index scans) deliver orders.
	order string

	op plan.OpType

	// Leaf fields (TableScan, IndexScan).
	table       string
	index       string
	indexColumn string
	clustered   bool
	residual    int

	// Join fields: children are identified by (group mask, winner index)
	// instead of node pointers.
	leftMask, rightMask uint32
	leftIdx, rightIdx   int32
	joinCol             string
	rightJoinCol        string
	joinSel             float64
}

// group is a memo group: the equivalence class of all plans producing the
// join of one subset of tables. winners holds the cheapest plan overall
// (order "") and the cheapest plan per delivered order.
type group struct {
	winners []candidate
}

// bestIdx returns the index of the cheapest candidate, or -1 if empty.
func (g *group) bestIdx() int {
	best := -1
	for i := range g.winners {
		if best < 0 || g.winners[i].cst < g.winners[best].cst {
			best = i
		}
	}
	return best
}

// offer adds a candidate if it improves on the incumbent for its order or
// for the overall winner set. Dominated candidates (worse cost, no new
// order) are discarded.
func (g *group) offer(c candidate) {
	for i := range g.winners {
		if g.winners[i].order == c.order {
			if c.cst < g.winners[i].cst {
				g.winners[i] = c
			}
			return
		}
	}
	g.winners = append(g.winners, c)
}

// searchCtx is the reusable scratch state of one Optimize call: the flat
// memo array indexed by table-subset mask. Pooled so steady-state
// optimization reuses both the group array and the per-group winner
// arrays.
type searchCtx struct {
	groups []group
}

var searchPool = sync.Pool{New: func() any { return new(searchCtx) }}

// acquireSearchCtx returns a scratch context with 1<<n empty groups.
func acquireSearchCtx(n int) *searchCtx {
	sc := searchPool.Get().(*searchCtx)
	size := 1 << uint(n)
	if cap(sc.groups) < size {
		sc.groups = make([]group, size)
	} else {
		sc.groups = sc.groups[:size]
		for i := range sc.groups {
			sc.groups[i].winners = sc.groups[i].winners[:0]
		}
	}
	return sc
}

func releaseSearchCtx(sc *searchCtx) { searchPool.Put(sc) }

// Optimize finds the cheapest physical plan for tpl under selectivity
// vector sv and returns it with its estimated cost. This corresponds to a
// full optimizer call in the paper: it searches the space of join orders,
// join algorithms and access paths.
//
// The search runs over a flat []group array indexed by table-subset mask.
// Connectivity needs no per-mask graph traversal: a leaf group always has
// candidates, and a join group gains candidates exactly when some split
// has a crossing join edge and two non-empty sides — which, by induction,
// holds if and only if the subset is connected. Disconnected masks simply
// stay empty, so the explicit BFS check of the seed implementation is
// redundant and the enumeration is pure mask arithmetic.
func (o *Optimizer) Optimize(tpl *query.Template, sv []float64) (*plan.Plan, float64, error) {
	p, c, _, err := o.OptimizeEpoch(tpl, sv)
	return p, c, err
}

// OptimizeEpoch is Optimize plus the id of the statistics epoch the search
// ran under. The epoch is pinned once when the environment is prepared, so
// the returned plan, cost and id are mutually consistent even if
// AdvanceEpoch lands mid-search.
func (o *Optimizer) OptimizeEpoch(tpl *query.Template, sv []float64) (*plan.Plan, float64, uint64, error) {
	env, err := o.PrepareEnv(tpl, sv)
	if err != nil {
		return nil, 0, 0, err
	}
	defer o.ReleaseEnv(env)
	p, c, err := o.optimizeWith(tpl, env)
	return p, c, env.EpochID(), err
}

// optimizeWith runs the plan search against an already-prepared
// environment.
func (o *Optimizer) optimizeWith(tpl *query.Template, env *Env) (*plan.Plan, float64, error) {
	atomic.AddInt64(&o.optCalls, 1)

	n := len(tpl.Tables)
	if n > maxJoinTables {
		return nil, 0, fmt.Errorf("memo: template %s joins %d tables; limit is %d", tpl.Name, n, maxJoinTables)
	}
	m := env.meta

	sc := acquireSearchCtx(n)
	defer releaseSearchCtx(sc)
	exprCosted := int64(0)

	// Leaf groups: access-path selection per table.
	for i := range m.tables {
		mt := &m.tables[i]
		if mt.tab == nil {
			return nil, 0, fmt.Errorf("memo: template %s references unknown table %s", tpl.Name, mt.name)
		}
		g := &sc.groups[1<<uint(i)]
		rows := float64(mt.tab.Rows)
		card := rows * env.tableSel[i]
		nPreds := len(mt.preds)

		// Full table scan: all predicates are residual filters.
		scanCost := o.Model.TableScanCost(mt.tab) + o.Model.FilterCost(rows, nPreds)
		g.offer(candidate{
			op: plan.TableScan, table: mt.name, residual: nPreds,
			cst: scanCost, card: card, rowBytes: mt.tab.RowBytes,
		})
		exprCosted++

		// Index scans: one per index; usable as an access path when a
		// predicate exists on the index column, and always usable as an
		// order-delivering full scan via the clustered index.
		for xi := range mt.indexes {
			ix := &mt.indexes[xi]
			hasPred := len(ix.preds) > 0
			ixSel := 1.0
			if hasPred {
				for _, pi := range ix.preds {
					ixSel *= env.predSel[pi]
				}
			} else if !ix.clustered {
				continue
			}
			matched := rows * ixSel
			cst := o.Model.IndexScanCost(mt.tab, ix.clustered, ixSel)
			residual := nPreds
			if hasPred {
				residual--
			}
			cst += o.Model.FilterCost(matched, residual)
			g.offer(candidate{
				op: plan.IndexScan, table: mt.name, index: ix.name,
				indexColumn: ix.column, clustered: ix.clustered, residual: residual,
				cst: cst, card: card, rowBytes: mt.tab.RowBytes, order: ix.orderKey,
			})
			exprCosted++
		}
	}

	full := uint32(1)<<uint(n) - 1
	// Enumerate masks in increasing numeric order (any submask of m is
	// numerically smaller than m, so children are final before parents).
	for mask := uint32(1); mask <= full; mask++ {
		if bits.OnesCount32(mask) < 2 {
			continue
		}
		g := &sc.groups[mask]
		// Enumerate proper submasks as the left (outer) input.
		for sub := (mask - 1) & mask; sub != 0; sub = (sub - 1) & mask {
			rest := mask ^ sub
			lg, rg := &sc.groups[sub], &sc.groups[rest]
			if len(lg.winners) == 0 || len(rg.winners) == 0 {
				continue
			}
			// Crossing-edge scan: product of crossing selectivities and
			// the representative join columns from the first crossing
			// edge. Cartesian products (no edge) are not enumerated.
			jsel := 1.0
			var lCol, rCol string
			crossing := false
			for ei := range m.edges {
				e := &m.edges[ei]
				switch {
				case sub&e.aMask != 0 && rest&e.bMask != 0:
					jsel *= e.sel
					if !crossing {
						lCol, rCol = e.aKey, e.bKey
					}
					crossing = true
				case sub&e.bMask != 0 && rest&e.aMask != 0:
					jsel *= e.sel
					if !crossing {
						lCol, rCol = e.bKey, e.aKey
					}
					crossing = true
				}
			}
			if !crossing {
				continue
			}
			li, ri := lg.bestIdx(), rg.bestIdx()
			l, r := &lg.winners[li], &rg.winners[ri]
			outCard := l.card * r.card * jsel
			outBytes := l.rowBytes + r.rowBytes

			// Hash join: build on the inner (right) input.
			hjCost := l.cst + r.cst + o.Model.HashJoinCost(l.card, r.card, r.rowBytes)
			g.offer(candidate{
				op: plan.HashJoin, joinCol: lCol, rightJoinCol: rCol, joinSel: jsel,
				leftMask: sub, rightMask: rest, leftIdx: int32(li), rightIdx: int32(ri),
				cst: hjCost, card: outCard, rowBytes: outBytes,
			})
			// Nested loops join.
			nlCost := l.cst + r.cst + o.Model.NLJoinCost(l.card, r.card)
			g.offer(candidate{
				op: plan.NLJoin, joinCol: lCol, rightJoinCol: rCol, joinSel: jsel,
				leftMask: sub, rightMask: rest, leftIdx: int32(li), rightIdx: int32(ri),
				cst: nlCost, card: outCard, rowBytes: outBytes,
			})
			exprCosted += 2

			// Merge join: try every (left order, right order) pairing so a
			// pre-sorted index scan can discount the sort.
			for lci := range lg.winners {
				for rci := range rg.winners {
					lc, rc := &lg.winners[lci], &rg.winners[rci]
					lSorted := lc.order != "" && lc.order == lCol
					rSorted := rc.order != "" && rc.order == rCol
					// Only consider non-best children when they supply a
					// useful order; otherwise they are dominated.
					if (lc.cst > l.cst && !lSorted) || (rc.cst > r.cst && !rSorted) {
						continue
					}
					mjCost := lc.cst + rc.cst + o.Model.MergeJoinCost(lc.card, rc.card, lSorted, rSorted)
					g.offer(candidate{
						op: plan.MergeJoin, joinCol: lCol, rightJoinCol: rCol, joinSel: jsel,
						leftMask: sub, rightMask: rest, leftIdx: int32(lci), rightIdx: int32(rci),
						cst: mjCost, card: outCard, rowBytes: outBytes,
					})
					exprCosted++
				}
			}
		}
	}

	top := &sc.groups[full]
	if len(top.winners) == 0 {
		atomic.AddInt64(&o.exprCosted, exprCosted)
		return nil, 0, fmt.Errorf("memo: no plan found for template %s", tpl.Name)
	}
	bi := top.bestIdx()
	best := &top.winners[bi]
	total := best.cst

	aggOp := plan.OpType(-1)
	if tpl.Agg == query.GroupBy {
		inCard := best.card
		hashCost := total + o.Model.HashAggCost(inCard)
		streamCost := total + o.Model.StreamAggCost(inCard)
		exprCosted += 2
		if hashCost <= streamCost {
			aggOp = plan.HashAgg
			total = hashCost
		} else {
			aggOp = plan.StreamAgg
			total = streamCost
		}
	}
	atomic.AddInt64(&o.exprCosted, exprCosted)
	if math.IsNaN(total) || math.IsInf(total, 0) || total <= 0 {
		return nil, 0, fmt.Errorf("memo: degenerate plan cost %v for template %s", total, tpl.Name)
	}

	root := sc.materialize(full, int32(bi), n, aggOp)
	return plan.New(tpl.Name, root), total, nil
}

// materialize builds the winning plan tree from the candidate graph. All
// nodes live in one arena allocated at exactly the plan's node count upper
// bound (n leaves + n-1 joins + 1 aggregate), so only the winner pays node
// allocations — never the losing candidates.
func (sc *searchCtx) materialize(full uint32, bestIdx int32, n int, aggOp plan.OpType) *plan.Node {
	arena := make([]plan.Node, 0, 2*n)
	var build func(mask uint32, idx int32) *plan.Node
	build = func(mask uint32, idx int32) *plan.Node {
		c := &sc.groups[mask].winners[idx]
		switch c.op {
		case plan.TableScan:
			arena = append(arena, plan.Node{Op: plan.TableScan, Table: c.table, ResidualPreds: c.residual})
		case plan.IndexScan:
			arena = append(arena, plan.Node{
				Op: plan.IndexScan, Table: c.table, Index: c.index,
				IndexColumn: c.indexColumn, Clustered: c.clustered,
				ResidualPreds: c.residual,
			})
		default:
			l := build(c.leftMask, c.leftIdx)
			r := build(c.rightMask, c.rightIdx)
			arena = append(arena, plan.Node{
				Op: c.op, JoinCol: c.joinCol, RightJoinCol: c.rightJoinCol,
				JoinSel: c.joinSel, Children: []*plan.Node{l, r},
			})
		}
		return &arena[len(arena)-1]
	}
	root := build(full, bestIdx)
	if aggOp >= 0 {
		arena = append(arena, plan.Node{Op: aggOp, Children: []*plan.Node{root}})
		root = &arena[len(arena)-1]
	}
	return root
}
