package memo

import (
	"fmt"
	"sync/atomic"

	"repro/internal/plan"
	"repro/internal/query"
)

// Recost computes the estimated cost of a fixed physical plan p for
// template tpl under selectivity vector sv — without any plan search. This
// is the engine's "Recost plan" API (§4.2): cardinalities and operator
// costs are re-derived bottom-up exactly as the optimizer would derive them
// for the same tree, so Recost(Optimize(sv).plan, sv) equals the optimizer's
// winning cost.
func (o *Optimizer) Recost(p *plan.Plan, tpl *query.Template, sv []float64) (float64, error) {
	env, err := NewEnv(tpl, sv, o.Stats)
	if err != nil {
		return 0, err
	}
	atomic.AddInt64(&o.recalls, 1)
	c, _, _, err := o.recostNode(p.Root, env)
	return c, err
}

// recostNode returns (cost, outputCard, outputRowBytes) for the subtree.
func (o *Optimizer) recostNode(n *plan.Node, env *Env) (cst, card float64, rowBytes int, err error) {
	if n == nil {
		return 0, 0, 0, fmt.Errorf("memo: recost of nil plan node")
	}
	atomic.AddInt64(&o.recostOps, 1)
	switch n.Op {
	case plan.TableScan:
		t := o.Cat.Table(n.Table)
		if t == nil {
			return 0, 0, 0, fmt.Errorf("memo: recost references unknown table %s", n.Table)
		}
		nPreds := env.NumPredsOn(n.Table)
		cst = o.Model.TableScanCost(t) + o.Model.FilterCost(float64(t.Rows), nPreds)
		card = float64(t.Rows) * env.TableSel(n.Table)
		return cst, card, t.RowBytes, nil

	case plan.IndexScan:
		t := o.Cat.Table(n.Table)
		if t == nil {
			return 0, 0, 0, fmt.Errorf("memo: recost references unknown table %s", n.Table)
		}
		ixSel, hasPred := env.PredSelOn(n.Table, n.IndexColumn)
		if !hasPred {
			ixSel = 1
		}
		matched := float64(t.Rows) * ixSel
		residual := env.NumPredsOn(n.Table)
		if hasPred {
			residual--
		}
		cst = o.Model.IndexScanCost(t, n.Clustered, ixSel) + o.Model.FilterCost(matched, residual)
		card = float64(t.Rows) * env.TableSel(n.Table)
		return cst, card, t.RowBytes, nil

	case plan.NLJoin, plan.HashJoin, plan.MergeJoin:
		lc, lCard, lBytes, err := o.recostNode(n.Children[0], env)
		if err != nil {
			return 0, 0, 0, err
		}
		rc, rCard, rBytes, err := o.recostNode(n.Children[1], env)
		if err != nil {
			return 0, 0, 0, err
		}
		var opCost float64
		switch n.Op {
		case plan.NLJoin:
			opCost = o.Model.NLJoinCost(lCard, rCard)
		case plan.HashJoin:
			opCost = o.Model.HashJoinCost(lCard, rCard, rBytes)
		case plan.MergeJoin:
			lSorted := deliversOrder(n.Children[0], n.JoinCol)
			rSorted := deliversOrder(n.Children[1], n.RightJoinCol)
			opCost = o.Model.MergeJoinCost(lCard, rCard, lSorted, rSorted)
		}
		return lc + rc + opCost, lCard * rCard * n.JoinSel, lBytes + rBytes, nil

	case plan.HashAgg, plan.StreamAgg:
		ic, iCard, iBytes, err := o.recostNode(n.Children[0], env)
		if err != nil {
			return 0, 0, 0, err
		}
		var opCost float64
		if n.Op == plan.HashAgg {
			opCost = o.Model.HashAggCost(iCard)
		} else {
			opCost = o.Model.StreamAggCost(iCard)
		}
		outCard := iCard
		if env.Tpl.Agg == query.GroupBy && env.Tpl.GroupCard > 0 && env.Tpl.GroupCard < outCard {
			outCard = env.Tpl.GroupCard
		}
		return ic + opCost, outCard, iBytes, nil

	default:
		return 0, 0, 0, fmt.Errorf("memo: recost of unsupported operator %s", n.Op)
	}
}

// deliversOrder reports whether the child plan delivers rows sorted on the
// given "table.column" key — true exactly when it is an index scan whose
// index column is that key, mirroring the order property used during
// optimization.
func deliversOrder(n *plan.Node, key string) bool {
	return n != nil && n.Op == plan.IndexScan && n.Table+"."+n.IndexColumn == key
}
