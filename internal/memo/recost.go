package memo

import (
	"fmt"
	"sync/atomic"

	"repro/internal/plan"
	"repro/internal/query"
)

// Recost computes the estimated cost of a fixed physical plan p for
// template tpl under selectivity vector sv — without any plan search. This
// is the engine's "Recost plan" API (§4.2): cardinalities and operator
// costs are re-derived bottom-up exactly as the optimizer would derive them
// for the same tree, so Recost(Optimize(sv).plan, sv) equals the optimizer's
// winning cost.
//
// The selectivity environment is pooled; callers recosting several plans
// against the same instance should build the environment once with
// PrepareEnv and use RecostPlanWith instead.
func (o *Optimizer) Recost(p *plan.Plan, tpl *query.Template, sv []float64) (float64, error) {
	env, err := o.PrepareEnv(tpl, sv)
	if err != nil {
		return 0, err
	}
	c, err := o.RecostPlanWith(env, p)
	o.ReleaseEnv(env)
	return c, err
}

// RecostPlanWith recosts plan p against a previously prepared environment:
// the batched form of Recost. The environment carries the template, so any
// number of candidate plans for the same instance can be recosted without
// recomputing selectivity state.
func (o *Optimizer) RecostPlanWith(env *Env, p *plan.Plan) (float64, error) {
	atomic.AddInt64(&o.recalls, 1)
	ops := int64(0)
	c, _, _, err := o.recostNode(p.Root, env, &ops)
	atomic.AddInt64(&o.recostOps, ops)
	return c, err
}

// recostNode returns (cost, outputCard, outputRowBytes) for the subtree,
// accumulating the visited-operator count into *ops.
func (o *Optimizer) recostNode(n *plan.Node, env *Env, ops *int64) (cst, card float64, rowBytes int, err error) {
	if n == nil {
		return 0, 0, 0, fmt.Errorf("memo: recost of nil plan node")
	}
	*ops++
	switch n.Op {
	case plan.TableScan:
		t := o.Cat.Table(n.Table)
		if t == nil {
			return 0, 0, 0, fmt.Errorf("memo: recost references unknown table %s", n.Table)
		}
		nPreds := env.NumPredsOn(n.Table)
		cst = o.Model.TableScanCost(t) + o.Model.FilterCost(float64(t.Rows), nPreds)
		card = float64(t.Rows) * env.TableSel(n.Table)
		return cst, card, t.RowBytes, nil

	case plan.IndexScan:
		t := o.Cat.Table(n.Table)
		if t == nil {
			return 0, 0, 0, fmt.Errorf("memo: recost references unknown table %s", n.Table)
		}
		ixSel, hasPred := env.PredSelOn(n.Table, n.IndexColumn)
		if !hasPred {
			ixSel = 1
		}
		matched := float64(t.Rows) * ixSel
		residual := env.NumPredsOn(n.Table)
		if hasPred {
			residual--
		}
		cst = o.Model.IndexScanCost(t, n.Clustered, ixSel) + o.Model.FilterCost(matched, residual)
		card = float64(t.Rows) * env.TableSel(n.Table)
		return cst, card, t.RowBytes, nil

	case plan.NLJoin, plan.HashJoin, plan.MergeJoin:
		lc, lCard, lBytes, err := o.recostNode(n.Children[0], env, ops)
		if err != nil {
			return 0, 0, 0, err
		}
		rc, rCard, rBytes, err := o.recostNode(n.Children[1], env, ops)
		if err != nil {
			return 0, 0, 0, err
		}
		var opCost float64
		switch n.Op {
		case plan.NLJoin:
			opCost = o.Model.NLJoinCost(lCard, rCard)
		case plan.HashJoin:
			opCost = o.Model.HashJoinCost(lCard, rCard, rBytes)
		case plan.MergeJoin:
			lSorted := deliversOrder(n.Children[0], n.JoinCol)
			rSorted := deliversOrder(n.Children[1], n.RightJoinCol)
			opCost = o.Model.MergeJoinCost(lCard, rCard, lSorted, rSorted)
		}
		return lc + rc + opCost, lCard * rCard * n.JoinSel, lBytes + rBytes, nil

	case plan.HashAgg, plan.StreamAgg:
		ic, iCard, iBytes, err := o.recostNode(n.Children[0], env, ops)
		if err != nil {
			return 0, 0, 0, err
		}
		var opCost float64
		if n.Op == plan.HashAgg {
			opCost = o.Model.HashAggCost(iCard)
		} else {
			opCost = o.Model.StreamAggCost(iCard)
		}
		outCard := iCard
		if env.Tpl.Agg == query.GroupBy && env.Tpl.GroupCard > 0 && env.Tpl.GroupCard < outCard {
			outCard = env.Tpl.GroupCard
		}
		return ic + opCost, outCard, iBytes, nil

	default:
		return 0, 0, 0, fmt.Errorf("memo: recost of unsupported operator %s", n.Op)
	}
}

// deliversOrder reports whether the child plan delivers rows sorted on the
// given "table.column" key — true exactly when it is an index scan whose
// index column is that key, mirroring the order property used during
// optimization. The comparison is segment-wise to avoid building the key
// string on the recost hot path.
func deliversOrder(n *plan.Node, key string) bool {
	if n == nil || n.Op != plan.IndexScan {
		return false
	}
	lt := len(n.Table)
	return len(key) == lt+1+len(n.IndexColumn) &&
		key[:lt] == n.Table && key[lt] == '.' && key[lt+1:] == n.IndexColumn
}
