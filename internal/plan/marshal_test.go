package plan

import (
	"encoding/json"
	"strings"
	"testing"
)

func samplePlan() *Plan {
	return New("q", &Node{
		Op: HashAgg,
		Children: []*Node{{
			Op: MergeJoin, JoinCol: "a.x", RightJoinCol: "b.y", JoinSel: 0.001,
			Children: []*Node{
				{Op: IndexScan, Table: "a", Index: "ixa", IndexColumn: "x", Clustered: true, ResidualPreds: 1},
				{Op: TableScan, Table: "b", ResidualPreds: 2},
			},
		}},
	})
}

func TestPlanJSONRoundTrip(t *testing.T) {
	p := samplePlan()
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalPlan(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Fingerprint() != p.Fingerprint() {
		t.Errorf("fingerprint changed across round trip:\n  %s\n  %s",
			p.Fingerprint(), back.Fingerprint())
	}
	if back.TemplateName != "q" {
		t.Errorf("template name = %q", back.TemplateName)
	}
	// Field-level fidelity for the fields recost depends on.
	mj := back.Root.Children[0]
	if mj.JoinSel != 0.001 || mj.RightJoinCol != "b.y" {
		t.Errorf("merge join fields lost: %+v", mj)
	}
	leaf := mj.Children[0]
	if !leaf.Clustered || leaf.ResidualPreds != 1 || leaf.IndexColumn != "x" {
		t.Errorf("index scan fields lost: %+v", leaf)
	}
}

func TestUnmarshalPlanErrors(t *testing.T) {
	cases := []struct {
		name string
		data string
		want string
	}{
		{"garbage", "{", "unmarshal"},
		{"unknown op", `{"template":"q","root":{"op":"Nope"}}`, "unknown operator"},
		{"join arity", `{"template":"q","root":{"op":"HashJoin","children":[{"op":"TableScan","table":"a"}]}}`, "children"},
		{"agg arity", `{"template":"q","root":{"op":"HashAgg"}}`, "children"},
		{"leaf with children", `{"template":"q","root":{"op":"TableScan","table":"a","children":[{"op":"TableScan","table":"b"}]}}`, "children"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := UnmarshalPlan([]byte(tc.data))
			if err == nil {
				t.Fatalf("UnmarshalPlan succeeded, want error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error = %v, want containing %q", err, tc.want)
			}
		})
	}
}

func TestMarshalNilRoot(t *testing.T) {
	p := New("q", nil)
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalPlan(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Root != nil {
		t.Error("nil root should round trip to nil")
	}
}
