// Package plan defines physical execution plans: operator trees produced by
// the optimizer, consumed by the execution engine, cached by the PQO plan
// cache, and re-costed by the Recost API.
//
// A plan's structure is instance-independent; only cardinalities and costs
// change with the selectivity vector. Fingerprint() captures the structural
// identity used by the plan cache to detect "plan already stored".
package plan

import (
	"fmt"
	"strings"
)

// OpType identifies a physical operator.
type OpType int

const (
	// TableScan reads every row of a base table, applying all predicates
	// on that table as residual filters.
	TableScan OpType = iota
	// IndexScan performs a range scan via an index serving one predicate;
	// remaining predicates on the table are residual filters.
	IndexScan
	// NLJoin is a (block) nested-loops join.
	NLJoin
	// HashJoin builds on the right (inner) child, probes with the left.
	HashJoin
	// MergeJoin sorts both children as needed and merges.
	MergeJoin
	// HashAgg is a hash-based aggregation.
	HashAgg
	// StreamAgg is a sort-based aggregation.
	StreamAgg
)

// String returns the operator name used in plan display and fingerprints.
func (op OpType) String() string {
	switch op {
	case TableScan:
		return "TableScan"
	case IndexScan:
		return "IndexScan"
	case NLJoin:
		return "NLJoin"
	case HashJoin:
		return "HashJoin"
	case MergeJoin:
		return "MergeJoin"
	case HashAgg:
		return "HashAgg"
	case StreamAgg:
		return "StreamAgg"
	default:
		return fmt.Sprintf("Op(%d)", int(op))
	}
}

// IsJoin reports whether the operator is a binary join.
func (op OpType) IsJoin() bool {
	return op == NLJoin || op == HashJoin || op == MergeJoin
}

// Node is one operator in a plan tree.
type Node struct {
	Op OpType

	// Leaf fields (TableScan, IndexScan).
	Table string
	// Index and IndexColumn identify the index and the column whose
	// predicate the index serves (IndexScan only).
	Index       string
	IndexColumn string
	// Clustered records whether Index is the clustered index.
	Clustered bool
	// ResidualPreds is the number of predicates applied as filters after
	// the access path (all table predicates for TableScan; all but the
	// served one for IndexScan).
	ResidualPreds int

	// Join fields: JoinSel is the product of the selectivities of all join
	// edges applied at this node, fixed across instances. JoinCol and
	// RightJoinCol name the equi-join key ("table.column") on the outer and
	// inner side respectively; merge join ordering depends on both.
	JoinSel      float64
	JoinCol      string
	RightJoinCol string

	// Children: nil for leaves, [outer, inner] for joins, [input] for aggs.
	Children []*Node
}

// Plan is a complete physical plan for one query template.
type Plan struct {
	Root *Node
	// TemplateName records which template the plan belongs to.
	TemplateName string

	fingerprint string
}

// New wraps a root node into a Plan and precomputes its fingerprint.
func New(templateName string, root *Node) *Plan {
	p := &Plan{Root: root, TemplateName: templateName}
	p.fingerprint = fingerprintNode(root)
	return p
}

// Fingerprint returns a structural identity string: two plans for the same
// template with equal fingerprints are the same physical plan.
func (p *Plan) Fingerprint() string { return p.fingerprint }

func fingerprintNode(n *Node) string {
	if n == nil {
		return "nil"
	}
	var b strings.Builder
	writeFingerprint(n, &b)
	return b.String()
}

func writeFingerprint(n *Node, b *strings.Builder) {
	b.WriteString(n.Op.String())
	switch n.Op {
	case TableScan:
		fmt.Fprintf(b, "(%s)", n.Table)
	case IndexScan:
		fmt.Fprintf(b, "(%s:%s)", n.Table, n.Index)
	case NLJoin, HashJoin, MergeJoin:
		fmt.Fprintf(b, "[%s=%s](", n.JoinCol, n.RightJoinCol)
		writeFingerprint(n.Children[0], b)
		b.WriteString(",")
		writeFingerprint(n.Children[1], b)
		b.WriteString(")")
	case HashAgg, StreamAgg:
		b.WriteString("(")
		writeFingerprint(n.Children[0], b)
		b.WriteString(")")
	}
}

// Tables returns the set of base tables referenced under n.
func (n *Node) Tables() []string {
	var out []string
	n.walk(func(m *Node) {
		if m.Op == TableScan || m.Op == IndexScan {
			out = append(out, m.Table)
		}
	})
	return out
}

// NumOperators returns the number of operators in the subtree.
func (n *Node) NumOperators() int {
	count := 0
	n.walk(func(*Node) { count++ })
	return count
}

func (n *Node) walk(f func(*Node)) {
	if n == nil {
		return
	}
	f(n)
	for _, c := range n.Children {
		c.walk(f)
	}
}

// String renders the plan tree as an indented outline.
func (p *Plan) String() string {
	var b strings.Builder
	var rec func(n *Node, depth int)
	rec = func(n *Node, depth int) {
		if n == nil {
			return
		}
		b.WriteString(strings.Repeat("  ", depth))
		switch n.Op {
		case TableScan:
			fmt.Fprintf(&b, "TableScan %s", n.Table)
		case IndexScan:
			fmt.Fprintf(&b, "IndexScan %s via %s(%s)", n.Table, n.Index, n.IndexColumn)
		case NLJoin, HashJoin, MergeJoin:
			fmt.Fprintf(&b, "%s on %s (joinSel=%.3g)", n.Op, n.JoinCol, n.JoinSel)
		default:
			b.WriteString(n.Op.String())
		}
		b.WriteString("\n")
		for _, c := range n.Children {
			rec(c, depth+1)
		}
	}
	rec(p.Root, 0)
	return b.String()
}
