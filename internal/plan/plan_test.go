package plan

import (
	"sort"
	"strings"
	"testing"
)

func leaf(table string) *Node {
	return &Node{Op: TableScan, Table: table}
}

func ixLeaf(table, index, col string) *Node {
	return &Node{Op: IndexScan, Table: table, Index: index, IndexColumn: col}
}

func join(op OpType, col string, sel float64, l, r *Node) *Node {
	return &Node{Op: op, JoinCol: col, JoinSel: sel, Children: []*Node{l, r}}
}

func TestFingerprintStableAndDiscriminating(t *testing.T) {
	p1 := New("q", join(HashJoin, "k", 0.001, leaf("a"), leaf("b")))
	p2 := New("q", join(HashJoin, "k", 0.001, leaf("a"), leaf("b")))
	if p1.Fingerprint() != p2.Fingerprint() {
		t.Error("identical plans must have equal fingerprints")
	}
	variants := []*Plan{
		New("q", join(NLJoin, "k", 0.001, leaf("a"), leaf("b"))),                // different alg
		New("q", join(HashJoin, "k", 0.001, leaf("b"), leaf("a"))),              // swapped children
		New("q", join(HashJoin, "k", 0.001, ixLeaf("a", "ix", "c"), leaf("b"))), // different access path
	}
	seen := map[string]bool{p1.Fingerprint(): true}
	for i, v := range variants {
		if seen[v.Fingerprint()] {
			t.Errorf("variant %d collides with an earlier fingerprint: %s", i, v.Fingerprint())
		}
		seen[v.Fingerprint()] = true
	}
}

func TestFingerprintIgnoresJoinSel(t *testing.T) {
	// JoinSel is derived data; structural identity must not depend on it.
	p1 := New("q", join(HashJoin, "k", 0.001, leaf("a"), leaf("b")))
	p2 := New("q", join(HashJoin, "k", 0.002, leaf("a"), leaf("b")))
	if p1.Fingerprint() != p2.Fingerprint() {
		t.Error("fingerprint should not depend on JoinSel")
	}
}

func TestTablesAndNumOperators(t *testing.T) {
	root := &Node{Op: HashAgg, Children: []*Node{
		join(MergeJoin, "k", 0.01,
			join(HashJoin, "j", 0.001, leaf("a"), ixLeaf("b", "ixb", "x")),
			leaf("c")),
	}}
	p := New("q", root)
	tabs := p.Root.Tables()
	sort.Strings(tabs)
	if strings.Join(tabs, ",") != "a,b,c" {
		t.Errorf("Tables() = %v, want [a b c]", tabs)
	}
	if got := p.Root.NumOperators(); got != 6 {
		t.Errorf("NumOperators() = %d, want 6", got)
	}
}

func TestStringRendering(t *testing.T) {
	p := New("q", &Node{Op: StreamAgg, Children: []*Node{
		join(NLJoin, "k", 0.5, leaf("a"), ixLeaf("b", "ixb", "x")),
	}})
	s := p.String()
	for _, want := range []string{"StreamAgg", "NLJoin", "TableScan a", "IndexScan b via ixb(x)"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}

func TestOpTypeString(t *testing.T) {
	ops := map[OpType]string{
		TableScan: "TableScan", IndexScan: "IndexScan", NLJoin: "NLJoin",
		HashJoin: "HashJoin", MergeJoin: "MergeJoin", HashAgg: "HashAgg", StreamAgg: "StreamAgg",
	}
	for op, want := range ops {
		if op.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(op), op.String(), want)
		}
	}
	if !HashJoin.IsJoin() || TableScan.IsJoin() || HashAgg.IsJoin() {
		t.Error("IsJoin misclassifies operators")
	}
	if !strings.Contains(OpType(42).String(), "42") {
		t.Error("unknown op String() should include the code")
	}
}

func TestNilRootFingerprint(t *testing.T) {
	p := New("q", nil)
	if p.Fingerprint() != "nil" {
		t.Errorf("nil root fingerprint = %q", p.Fingerprint())
	}
	if p.Root.NumOperators() != 0 {
		t.Error("nil root should have 0 operators")
	}
}
