package plan

import (
	"encoding/json"
	"fmt"
)

// nodeJSON is the serialized form of a Node. Children are nested, matching
// the tree structure.
type nodeJSON struct {
	Op            string      `json:"op"`
	Table         string      `json:"table,omitempty"`
	Index         string      `json:"index,omitempty"`
	IndexColumn   string      `json:"indexColumn,omitempty"`
	Clustered     bool        `json:"clustered,omitempty"`
	ResidualPreds int         `json:"residualPreds,omitempty"`
	JoinSel       float64     `json:"joinSel,omitempty"`
	JoinCol       string      `json:"joinCol,omitempty"`
	RightJoinCol  string      `json:"rightJoinCol,omitempty"`
	Children      []*nodeJSON `json:"children,omitempty"`
}

type planJSON struct {
	TemplateName string    `json:"template"`
	Root         *nodeJSON `json:"root"`
}

// opNames maps operator codes to their stable serialized names.
var opNames = map[OpType]string{
	TableScan: "TableScan", IndexScan: "IndexScan",
	NLJoin: "NLJoin", HashJoin: "HashJoin", MergeJoin: "MergeJoin",
	HashAgg: "HashAgg", StreamAgg: "StreamAgg",
}

var opCodes = func() map[string]OpType {
	m := make(map[string]OpType, len(opNames))
	for k, v := range opNames {
		m[v] = k
	}
	return m
}()

// MarshalJSON serializes the plan tree.
func (p *Plan) MarshalJSON() ([]byte, error) {
	root, err := nodeToJSON(p.Root)
	if err != nil {
		return nil, err
	}
	return json.Marshal(planJSON{TemplateName: p.TemplateName, Root: root})
}

func nodeToJSON(n *Node) (*nodeJSON, error) {
	if n == nil {
		return nil, nil
	}
	name, ok := opNames[n.Op]
	if !ok {
		return nil, fmt.Errorf("plan: cannot serialize operator %v", n.Op)
	}
	out := &nodeJSON{
		Op: name, Table: n.Table, Index: n.Index, IndexColumn: n.IndexColumn,
		Clustered: n.Clustered, ResidualPreds: n.ResidualPreds,
		JoinSel: n.JoinSel, JoinCol: n.JoinCol, RightJoinCol: n.RightJoinCol,
	}
	for _, c := range n.Children {
		cj, err := nodeToJSON(c)
		if err != nil {
			return nil, err
		}
		out.Children = append(out.Children, cj)
	}
	return out, nil
}

// UnmarshalPlan deserializes a plan produced by MarshalJSON, recomputing
// the fingerprint.
func UnmarshalPlan(data []byte) (*Plan, error) {
	var pj planJSON
	if err := json.Unmarshal(data, &pj); err != nil {
		return nil, fmt.Errorf("plan: unmarshal: %w", err)
	}
	root, err := nodeFromJSON(pj.Root)
	if err != nil {
		return nil, err
	}
	return New(pj.TemplateName, root), nil
}

func nodeFromJSON(nj *nodeJSON) (*Node, error) {
	if nj == nil {
		return nil, nil
	}
	op, ok := opCodes[nj.Op]
	if !ok {
		return nil, fmt.Errorf("plan: unknown operator %q", nj.Op)
	}
	n := &Node{
		Op: op, Table: nj.Table, Index: nj.Index, IndexColumn: nj.IndexColumn,
		Clustered: nj.Clustered, ResidualPreds: nj.ResidualPreds,
		JoinSel: nj.JoinSel, JoinCol: nj.JoinCol, RightJoinCol: nj.RightJoinCol,
	}
	wantChildren := 0
	switch {
	case op.IsJoin():
		wantChildren = 2
	case op == HashAgg || op == StreamAgg:
		wantChildren = 1
	}
	if len(nj.Children) != wantChildren {
		return nil, fmt.Errorf("plan: operator %s has %d children, want %d",
			nj.Op, len(nj.Children), wantChildren)
	}
	for _, cj := range nj.Children {
		c, err := nodeFromJSON(cj)
		if err != nil {
			return nil, err
		}
		n.Children = append(n.Children, c)
	}
	return n, nil
}
