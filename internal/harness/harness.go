// Package harness runs online PQO techniques over workload sequences and
// computes the paper's evaluation metrics (§2.1): per-instance cost
// sub-optimality SO, worst-case MSO, aggregate TotalCostRatio, optimizer
// overheads (numOpt) and plan-cache size (numPlans) — plus the percentile
// aggregations the figures report.
package harness

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/workload"
)

// Result summarizes one technique's run over one sequence.
type Result struct {
	Technique string
	Sequence  string
	M         int

	// MSO is max SO over the sequence; TotalCostRatio is the paper's
	// aggregate metric in [1, MSO].
	MSO            float64
	TotalCostRatio float64
	// NumOpt is the count of optimizer calls; OptFraction = NumOpt/M.
	NumOpt      int64
	OptFraction float64
	// NumPlans is the high-water plan count (0 for Optimize-Always).
	NumPlans int
	// GetPlanRecosts / ManageRecosts split the Recost overheads between
	// the critical path and the background manageCache work.
	GetPlanRecosts int64
	ManageRecosts  int64
	// MemoryBytes is the final plan-cache memory estimate.
	MemoryBytes int64
	// BoundViolations counts instances whose SO exceeded lambda (only
	// meaningful for guarantee-bearing techniques; 0 for lambda <= 0).
	BoundViolations int64
	// ViaCounts breaks instances down by the mechanism that served them
	// (optimizer call, selectivity check, cost check, baseline inference).
	ViaCounts map[core.Check]int64
	// SOs optionally retains per-instance sub-optimalities (RetainSOs).
	SOs []float64
}

// Options tune a harness run.
type Options struct {
	// Lambda, when positive, makes the harness count SO > Lambda bound
	// violations.
	Lambda float64
	// RetainSOs keeps the per-instance SO series in the result.
	RetainSOs bool
}

// Run processes seq through tech, using eng to evaluate the true cost of
// each chosen plan. Ground-truth optimal costs must be present on the
// sequence (workload.Prepare). Cancelling ctx aborts the run at the next
// instance boundary via the technique's own Process cancellation.
func Run(ctx context.Context, eng core.Engine, tech core.Technique, seq *workload.Sequence, opts Options) (*Result, error) {
	if len(seq.Instances) == 0 {
		return nil, fmt.Errorf("harness: empty sequence %s", seq.Name)
	}
	res := &Result{
		Technique: tech.Name(),
		Sequence:  seq.Name,
		M:         len(seq.Instances),
		MSO:       1,
		ViaCounts: make(map[core.Check]int64),
	}
	var sumChosen, sumOpt float64
	for i, q := range seq.Instances {
		if q.OptCost <= 0 {
			return nil, fmt.Errorf("harness: sequence %s instance %d lacks ground truth", seq.Name, i)
		}
		dec, err := tech.Process(ctx, q.SV)
		if err != nil {
			return nil, fmt.Errorf("harness: %s on %s instance %d: %w", tech.Name(), seq.Name, i, err)
		}
		res.ViaCounts[dec.Via]++
		chosenCost, err := eng.Recost(dec.Plan, q.SV)
		if err != nil {
			return nil, fmt.Errorf("harness: recosting chosen plan at instance %d: %w", i, err)
		}
		so := chosenCost / q.OptCost
		if so < 1 {
			// The technique found a plan the ground-truth pass considered
			// optimal-or-better (ties, float noise); clamp.
			so = 1
		}
		if so > res.MSO {
			res.MSO = so
		}
		if opts.Lambda > 0 && so > opts.Lambda*(1+1e-9) {
			res.BoundViolations++
		}
		if opts.RetainSOs {
			res.SOs = append(res.SOs, so)
		}
		sumChosen += chosenCost
		sumOpt += q.OptCost
	}
	res.TotalCostRatio = sumChosen / sumOpt
	st := tech.Stats()
	res.NumOpt = st.OptCalls
	res.OptFraction = float64(st.OptCalls) / float64(res.M)
	res.NumPlans = st.MaxPlans
	res.GetPlanRecosts = st.GetPlanRecosts
	res.ManageRecosts = st.ManageRecosts
	res.MemoryBytes = st.MemoryBytes
	return res, nil
}

// GroundTruthEngine adapts a prepared workload into a core.Engine whose
// Recost consults the real engine — convenience for harness callers that
// already hold a TemplateEngine.
type GroundTruthEngine struct {
	Eng *engine.TemplateEngine
}

// Dimensions implements core.Engine.
func (g *GroundTruthEngine) Dimensions() int { return g.Eng.Dimensions() }

// Optimize implements core.Engine.
func (g *GroundTruthEngine) Optimize(sv []float64) (*engine.CachedPlan, float64, error) {
	return g.Eng.Optimize(sv)
}

// Recost implements core.Engine.
func (g *GroundTruthEngine) Recost(cp *engine.CachedPlan, sv []float64) (float64, error) {
	return g.Eng.Recost(cp, sv)
}

// Summary aggregates a metric across many results (one per sequence), as
// the figures do: average, median, p95 and max.
type Summary struct {
	N                      int
	Mean, Median, P95, Max float64
}

// Metric selects which Result field Summarize aggregates.
type Metric func(*Result) float64

// Predefined metrics matching the paper's figures.
var (
	MetricMSO         Metric = func(r *Result) float64 { return r.MSO }
	MetricTC          Metric = func(r *Result) float64 { return r.TotalCostRatio }
	MetricOptFraction Metric = func(r *Result) float64 { return r.OptFraction }
	MetricNumPlans    Metric = func(r *Result) float64 { return float64(r.NumPlans) }
)

// Summarize computes the aggregate statistics of metric over results.
func Summarize(results []*Result, metric Metric) Summary {
	if len(results) == 0 {
		return Summary{}
	}
	vals := make([]float64, len(results))
	sum := 0.0
	for i, r := range results {
		vals[i] = metric(r)
		sum += vals[i]
	}
	sort.Float64s(vals)
	return Summary{
		N:      len(vals),
		Mean:   sum / float64(len(vals)),
		Median: percentile(vals, 0.50),
		P95:    percentile(vals, 0.95),
		Max:    vals[len(vals)-1],
	}
}

// percentile returns the p-quantile of sorted vals by nearest-rank with
// linear interpolation.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := p * float64(len(sorted)-1)
	i := int(pos)
	frac := pos - float64(i)
	if i+1 >= len(sorted) {
		return sorted[i]
	}
	return sorted[i]*(1-frac) + sorted[i+1]*frac
}

// Percentile exposes the quantile helper for report code.
func Percentile(vals []float64, p float64) float64 {
	cp := make([]float64, len(vals))
	copy(cp, vals)
	sort.Float64s(cp)
	return percentile(cp, p)
}
