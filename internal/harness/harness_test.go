package harness

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/pqotest"
	"repro/internal/workload"
)

// fakeSequence builds a prepared sequence against a synthetic engine.
func fakeSequence(t *testing.T, eng *pqotest.Engine, m int, seed int64) *workload.Sequence {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	insts := make([]workload.Instance, m)
	for i := range insts {
		sv := pqotest.RandomSVector(rng, eng.Dimensions())
		cp, c, err := eng.Optimize(sv)
		if err != nil {
			t.Fatal(err)
		}
		insts[i] = workload.Instance{SV: sv, OptCost: c, OptFP: cp.Fingerprint()}
	}
	return &workload.Sequence{Name: "fake", Instances: insts}
}

func newRandomEngine(t *testing.T, seed int64, d, plans int) *pqotest.Engine {
	t.Helper()
	eng, err := pqotest.RandomEngine(rand.New(rand.NewSource(seed)), d, plans)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestRunOptAlwaysIsOptimal(t *testing.T) {
	eng := newRandomEngine(t, 1, 3, 8)
	seq := fakeSequence(t, eng, 100, 2)
	res, err := Run(context.Background(), eng, baselines.NewOptAlways(eng), seq, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.MSO > 1+1e-9 {
		t.Errorf("OptAlways MSO = %v, want 1", res.MSO)
	}
	if math.Abs(res.TotalCostRatio-1) > 1e-9 {
		t.Errorf("OptAlways TC = %v, want 1", res.TotalCostRatio)
	}
	if res.NumOpt != 100 || res.OptFraction != 1 {
		t.Errorf("OptAlways numOpt = %d (%v)", res.NumOpt, res.OptFraction)
	}
	if res.NumPlans != 0 {
		t.Errorf("OptAlways numPlans = %d, want 0", res.NumPlans)
	}
}

func TestRunSCRRespectsBound(t *testing.T) {
	eng := newRandomEngine(t, 3, 3, 10)
	seq := fakeSequence(t, eng, 300, 4)
	scr, err := core.NewSCR(eng, core.Config{Lambda: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), eng, scr, seq, Options{Lambda: 2, RetainSOs: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.BoundViolations != 0 {
		t.Errorf("SCR violated the bound %d times on a BCG-compliant engine", res.BoundViolations)
	}
	if res.MSO > 2+1e-9 {
		t.Errorf("SCR MSO = %v > λ=2", res.MSO)
	}
	if res.TotalCostRatio < 1 || res.TotalCostRatio > res.MSO+1e-9 {
		t.Errorf("TC = %v outside [1, MSO=%v]", res.TotalCostRatio, res.MSO)
	}
	if len(res.SOs) != 300 {
		t.Errorf("RetainSOs kept %d entries, want 300", len(res.SOs))
	}
	if res.NumOpt >= 300 {
		t.Error("SCR should reuse some plans")
	}
}

func TestRunRequiresGroundTruth(t *testing.T) {
	eng := newRandomEngine(t, 5, 2, 4)
	seq := &workload.Sequence{Name: "raw", Instances: []workload.Instance{{SV: []float64{0.1, 0.1}}}}
	if _, err := Run(context.Background(), eng, baselines.NewOptAlways(eng), seq, Options{}); err == nil {
		t.Error("unprepared sequence should fail")
	}
	empty := &workload.Sequence{Name: "empty"}
	if _, err := Run(context.Background(), eng, baselines.NewOptAlways(eng), empty, Options{}); err == nil {
		t.Error("empty sequence should fail")
	}
}

func TestSummarize(t *testing.T) {
	results := []*Result{
		{MSO: 1, TotalCostRatio: 1.0, OptFraction: 0.1, NumPlans: 2},
		{MSO: 2, TotalCostRatio: 1.2, OptFraction: 0.2, NumPlans: 4},
		{MSO: 3, TotalCostRatio: 1.4, OptFraction: 0.3, NumPlans: 6},
		{MSO: 10, TotalCostRatio: 5.0, OptFraction: 0.4, NumPlans: 100},
	}
	s := Summarize(results, MetricMSO)
	if s.N != 4 || s.Max != 10 || math.Abs(s.Mean-4) > 1e-12 {
		t.Errorf("MSO summary = %+v", s)
	}
	if s.Median != 2.5 {
		t.Errorf("median = %v, want 2.5", s.Median)
	}
	if s.P95 < 3 || s.P95 > 10 {
		t.Errorf("p95 = %v, want within (3, 10]", s.P95)
	}
	if got := Summarize(nil, MetricMSO); got.N != 0 {
		t.Errorf("empty summary = %+v", got)
	}
	if v := Summarize(results, MetricNumPlans).Max; v != 100 {
		t.Errorf("numPlans max = %v", v)
	}
	if v := Summarize(results, MetricTC).Max; v != 5 {
		t.Errorf("TC max = %v", v)
	}
	if v := Summarize(results, MetricOptFraction).Max; v != 0.4 {
		t.Errorf("optFraction max = %v", v)
	}
}

func TestPercentile(t *testing.T) {
	vals := []float64{5, 1, 3, 2, 4}
	if got := Percentile(vals, 0); got != 1 {
		t.Errorf("p0 = %v", got)
	}
	if got := Percentile(vals, 1); got != 5 {
		t.Errorf("p100 = %v", got)
	}
	if got := Percentile(vals, 0.5); got != 3 {
		t.Errorf("p50 = %v", got)
	}
	if got := Percentile(nil, 0.5); !math.IsNaN(got) {
		t.Errorf("empty percentile = %v, want NaN", got)
	}
}

func TestHeuristicsCanExceedBoundWhereSCRDoesNot(t *testing.T) {
	// The paper's §3 point: heuristics risk unbounded sub-optimality. Use a
	// cost structure with a sharp plan crossover and a sequence that walks
	// across it.
	eng, err := pqotest.NewEngine(2, []pqotest.PlanSpec{
		{Name: "A", Const: 1, Linear: []float64{2, 2000}},
		{Name: "B", Const: 2, Linear: []float64{2000, 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	var insts []workload.Instance
	// March dimension 1 upwards at fixed small dimension 0: optimal plan
	// flips from A to B partway.
	for s := 0.001; s < 1; s *= 1.6 {
		sv := []float64{0.001, s}
		cp, c, err := eng.Optimize(sv)
		if err != nil {
			t.Fatal(err)
		}
		insts = append(insts, workload.Instance{SV: sv, OptCost: c, OptFP: cp.Fingerprint()})
	}
	seq := &workload.Sequence{Name: "crossover", Instances: insts}

	ranges, err := baselines.NewRanges(eng, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	resRanges, err := Run(context.Background(), eng, ranges, seq, Options{})
	if err != nil {
		t.Fatal(err)
	}
	scr, err := core.NewSCR(eng, core.Config{Lambda: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	resSCR, err := Run(context.Background(), eng, scr, seq, Options{Lambda: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	if resSCR.MSO > 1.5+1e-9 {
		t.Errorf("SCR MSO = %v exceeds λ", resSCR.MSO)
	}
	if resRanges.MSO <= resSCR.MSO {
		t.Logf("note: Ranges MSO %v did not exceed SCR's %v on this walk", resRanges.MSO, resSCR.MSO)
	}
}

func TestViaCounts(t *testing.T) {
	eng := newRandomEngine(t, 21, 2, 6)
	seq := fakeSequence(t, eng, 120, 22)
	scr, err := core.NewSCR(eng, core.Config{Lambda: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), eng, scr, seq, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, n := range res.ViaCounts {
		total += n
	}
	if total != int64(res.M) {
		t.Errorf("ViaCounts sum %d != M %d", total, res.M)
	}
	if res.ViaCounts[core.ViaOptimizer] != res.NumOpt {
		t.Errorf("ViaCounts[optimizer] = %d, NumOpt = %d",
			res.ViaCounts[core.ViaOptimizer], res.NumOpt)
	}
	if res.ViaCounts[core.ViaSelectivity]+res.ViaCounts[core.ViaCost] == 0 {
		t.Error("SCR never reused a plan on 120 instances")
	}
}
