// Package faultinject is a deterministic fault-injection framework for the
// engine surface the PQO techniques depend on. It exists to *prove* the
// degraded-mode serving path (docs/ROBUSTNESS.md): chaos tests wrap an
// engine in a FaultyEngine, script optimizer latency spikes, error bursts
// and panics from a seed, and assert that every response the system
// produces is either λ-guaranteed or explicitly degraded — never an
// unexplained failure.
//
// Determinism is the design center: every injection decision is drawn from
// a seeded PRNG (or an explicit boolean sequence), so a failing chaos run
// reproduces from its seed alone. A nil *Injector — and a disabled one —
// injects nothing; production code simply never wraps its engine, so the
// fully-disabled configuration is byte-for-byte the existing fast path.
package faultinject

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
)

// Site identifies one injection point on the engine surface.
type Site string

// The injectable engine entry points.
const (
	// SiteOptimize fires on Engine.Optimize — the paper's expensive full
	// optimizer call, and the call most worth protecting with a deadline
	// and a circuit breaker.
	SiteOptimize Site = "optimize"
	// SiteRecost fires on Engine.Recost — the cost check's hot path.
	SiteRecost Site = "recost"
	// SitePrepare fires on BatchEngine.PrepareRecost.
	SitePrepare Site = "prepare-recost"
	// SiteTransport fires once per HTTP request routed through a
	// Transport wrapper (transport.go) — the cluster propagation path's
	// injection point for drops, delays, duplicate deliveries and
	// synthetic server errors.
	SiteTransport Site = "transport"
)

// Sites lists every injection point, in a fixed order (for reports).
var Sites = []Site{SiteOptimize, SiteRecost, SitePrepare, SiteTransport}

// Fault describes what happens when an injection fires. Latency is applied
// first, then Panic, then Err, so a single Point can model a slow failure.
type Fault struct {
	// Latency is added before the underlying call proceeds (or before the
	// error/panic below fires), modeling an optimizer stall.
	Latency time.Duration
	// Panic, when true, panics with a descriptive value instead of
	// returning — modeling an optimizer crash bug.
	Panic bool
	// Err, when non-nil, is returned without invoking the underlying
	// engine — modeling an engine fault. At SiteTransport it is returned
	// without delivering the request, modeling a refused connection.
	Err error

	// The remaining behaviors apply only at SiteTransport (transport.go);
	// engine sites ignore them. Order after Latency: Drop, Err, Status,
	// then — post-delivery — DropResponse, Duplicate.
	//
	// Drop suppresses delivery entirely (a blackholed packet): the server
	// never sees the request and the caller gets a transport error.
	Drop bool
	// DropResponse delivers the request but loses the response — the
	// server-side effect happens, the caller still sees a transport
	// error. This is the case that forces idempotent install handlers.
	DropResponse bool
	// Duplicate delivers the request twice (a retransmit) and returns the
	// second response, exercising duplicate-delivery tolerance.
	Duplicate bool
	// Status, when non-zero, short-circuits with a synthetic HTTP
	// response of that status code (e.g. 500) without delivering.
	Status int
}

// Point configures injection at one site.
//
// When Sequence is non-empty it fully scripts the site: call i fires iff
// Sequence[i mod len(Sequence)], which makes tests byte-deterministic
// regardless of seed. Otherwise each call fires independently with
// probability Rate drawn from the injector's seeded PRNG.
type Point struct {
	Rate     float64
	Sequence []bool
	Fault    Fault
}

// pointState is a configured Point plus its per-site call counter.
type pointState struct {
	Point
	calls    atomic.Int64
	injected atomic.Int64
}

// Injector decides, per call site, whether to inject a fault. It is safe
// for concurrent use; decisions serialize on an internal mutex so the
// seeded PRNG stream stays deterministic given a deterministic call order
// (concurrent chaos tests that need exact scripts use Sequence instead).
//
// The zero-cost contract: a nil Injector injects nothing and adds nothing
// but a nil check; Disable makes a wired injector inert behind one atomic
// load.
type Injector struct {
	mu      sync.Mutex
	rng     *rand.Rand
	points  map[Site]*pointState
	enabled atomic.Bool
	total   atomic.Int64
}

// New returns an enabled Injector whose probabilistic decisions derive
// from seed. Configure sites with Set.
func New(seed int64) *Injector {
	in := &Injector{
		rng:    rand.New(rand.NewSource(seed)),
		points: make(map[Site]*pointState),
	}
	in.enabled.Store(true)
	return in
}

// Set configures (or replaces) the injection point at site.
func (in *Injector) Set(site Site, p Point) *Injector {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.points[site] = &pointState{Point: p}
	return in
}

// Enable arms the injector.
func (in *Injector) Enable() { in.enabled.Store(true) }

// Disable makes the injector inert: every At call returns no fault after a
// single atomic load, and per-site call counters stop advancing.
func (in *Injector) Disable() { in.enabled.Store(false) }

// Injected reports the total number of faults injected across all sites.
func (in *Injector) Injected() int64 {
	if in == nil {
		return 0
	}
	return in.total.Load()
}

// InjectedAt reports the number of faults injected at site.
func (in *Injector) InjectedAt(site Site) int64 {
	if in == nil {
		return 0
	}
	ps := in.point(site)
	if ps == nil {
		return 0
	}
	return ps.injected.Load()
}

// point looks up a site's state under the mutex.
func (in *Injector) point(site Site) *pointState {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.points[site]
}

// At decides whether a fault fires for the current call at site. The
// returned Fault is meaningful only when fire is true.
func (in *Injector) At(site Site) (f Fault, fire bool) {
	if in == nil || !in.enabled.Load() {
		return Fault{}, false
	}
	ps, fire := in.decide(site)
	if !fire {
		return Fault{}, false
	}
	ps.injected.Add(1)
	in.total.Add(1)
	return ps.Fault, true
}

// decide rolls the site's sequence or rate under the mutex (the PRNG is
// not concurrency-safe).
func (in *Injector) decide(site Site) (ps *pointState, fire bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	ps = in.points[site]
	if ps == nil {
		return nil, false
	}
	n := ps.calls.Add(1) - 1
	if len(ps.Sequence) > 0 {
		fire = ps.Sequence[int(n)%len(ps.Sequence)]
	} else if ps.Rate > 0 {
		fire = in.rng.Float64() < ps.Rate
	}
	return ps, fire
}

// apply executes the fault's behavior in order: latency, panic, error.
// It returns the error to surface (nil means "proceed to the real call").
func apply(site Site, f Fault) error {
	if f.Latency > 0 {
		time.Sleep(f.Latency)
	}
	if f.Panic {
		panic(fmt.Sprintf("faultinject: injected panic at %s", site))
	}
	return f.Err
}

// Engine is the engine surface FaultyEngine wraps. It is structurally
// identical to core.Engine; declaring it locally keeps this package off
// the core dependency graph so core's own tests can use the injector.
type Engine interface {
	Dimensions() int
	Optimize(sv []float64) (*engine.CachedPlan, float64, error)
	Recost(cp *engine.CachedPlan, sv []float64) (float64, error)
}

// batchEngine mirrors core.BatchEngine.
type batchEngine interface {
	PrepareRecost(sv []float64) (*engine.PreparedInstance, error)
}

// cacheReporter mirrors core.CacheReporter.
type cacheReporter interface {
	RecostCacheCounters() (hits, misses int64)
	EnvPoolCounters() (gets, reuses int64)
}

// epochEngine mirrors core.EpochEngine's epoch surface.
type epochEngine interface {
	StatsEpoch() uint64
	OptimizeEpoch(sv []float64) (*engine.CachedPlan, float64, uint64, error)
	RecostEpoch(cp *engine.CachedPlan, sv []float64) (float64, uint64, error)
}

// FaultyEngine wraps an engine with an Injector. It implements
// core.Engine, and forwards core.BatchEngine / core.CacheReporter to the
// inner engine when it supports them; it also implements
// core.FaultReporter so injected-fault counts surface through SCR.Stats,
// /stats and /metrics.
type FaultyEngine struct {
	inner Engine
	inj   *Injector
}

// Wrap returns eng with inj interposed on every engine call. A nil inj is
// legal and yields a transparent wrapper.
func Wrap(eng Engine, inj *Injector) *FaultyEngine {
	return &FaultyEngine{inner: eng, inj: inj}
}

// Injector returns the wrapped injector (nil for a transparent wrapper).
func (e *FaultyEngine) Injector() *Injector { return e.inj }

// Dimensions implements core.Engine.
func (e *FaultyEngine) Dimensions() int { return e.inner.Dimensions() }

// Optimize implements core.Engine, consulting SiteOptimize first.
func (e *FaultyEngine) Optimize(sv []float64) (*engine.CachedPlan, float64, error) {
	if f, fire := e.inj.At(SiteOptimize); fire {
		if err := apply(SiteOptimize, f); err != nil {
			return nil, 0, err
		}
	}
	return e.inner.Optimize(sv)
}

// Recost implements core.Engine, consulting SiteRecost first.
func (e *FaultyEngine) Recost(cp *engine.CachedPlan, sv []float64) (float64, error) {
	if f, fire := e.inj.At(SiteRecost); fire {
		if err := apply(SiteRecost, f); err != nil {
			return 0, err
		}
	}
	return e.inner.Recost(cp, sv)
}

// PrepareRecost implements core.BatchEngine when the inner engine batches;
// otherwise it reports an error, which batching callers treat as "fall
// back to per-call Recost" (so the SiteRecost point still governs them).
func (e *FaultyEngine) PrepareRecost(sv []float64) (*engine.PreparedInstance, error) {
	be, ok := e.inner.(batchEngine)
	if !ok {
		return nil, fmt.Errorf("faultinject: inner engine %T does not batch", e.inner)
	}
	if f, fire := e.inj.At(SitePrepare); fire {
		if err := apply(SitePrepare, f); err != nil {
			return nil, err
		}
	}
	return be.PrepareRecost(sv)
}

// RecostCacheCounters implements core.CacheReporter by delegation; zeros
// when the inner engine does not report.
func (e *FaultyEngine) RecostCacheCounters() (hits, misses int64) {
	if cr, ok := e.inner.(cacheReporter); ok {
		return cr.RecostCacheCounters()
	}
	return 0, 0
}

// EnvPoolCounters implements core.CacheReporter by delegation.
func (e *FaultyEngine) EnvPoolCounters() (gets, reuses int64) {
	if cr, ok := e.inner.(cacheReporter); ok {
		return cr.EnvPoolCounters()
	}
	return 0, 0
}

// InjectedFaults implements core.FaultReporter.
func (e *FaultyEngine) InjectedFaults() int64 { return e.inj.Injected() }

// StatsEpoch implements core.EpochEngine by delegation; an epoch-less
// inner engine is reported as permanently at epoch 0, which core treats
// identically to the engine not implementing epochs at all.
func (e *FaultyEngine) StatsEpoch() uint64 {
	if ee, ok := e.inner.(epochEngine); ok {
		return ee.StatsEpoch()
	}
	return 0
}

// OptimizeEpoch implements core.EpochEngine, consulting SiteOptimize
// first — the background revalidator's optimizer calls route through the
// exact same injection point as foreground traffic.
func (e *FaultyEngine) OptimizeEpoch(sv []float64) (*engine.CachedPlan, float64, uint64, error) {
	if f, fire := e.inj.At(SiteOptimize); fire {
		if err := apply(SiteOptimize, f); err != nil {
			return nil, 0, 0, err
		}
	}
	if ee, ok := e.inner.(epochEngine); ok {
		return ee.OptimizeEpoch(sv)
	}
	cp, c, err := e.inner.Optimize(sv)
	return cp, c, 0, err
}

// RecostEpoch implements core.EpochEngine, consulting SiteRecost first.
func (e *FaultyEngine) RecostEpoch(cp *engine.CachedPlan, sv []float64) (float64, uint64, error) {
	if f, fire := e.inj.At(SiteRecost); fire {
		if err := apply(SiteRecost, f); err != nil {
			return 0, 0, err
		}
	}
	if ee, ok := e.inner.(epochEngine); ok {
		return ee.RecostEpoch(cp, sv)
	}
	c, err := e.inner.Recost(cp, sv)
	return c, 0, err
}

// Canonical fault profiles for chaos suites. Each returns a fresh
// injector derived from seed; rate is the per-call injection probability.

// LatencyProfile models an optimizer that intermittently stalls for spike.
func LatencyProfile(seed int64, rate float64, spike time.Duration) *Injector {
	return New(seed).Set(SiteOptimize, Point{Rate: rate, Fault: Fault{Latency: spike}})
}

// ErrorProfile models an engine that intermittently fails both optimizer
// calls and recosts.
func ErrorProfile(seed int64, rate float64, err error) *Injector {
	return New(seed).
		Set(SiteOptimize, Point{Rate: rate, Fault: Fault{Err: err}}).
		Set(SiteRecost, Point{Rate: rate, Fault: Fault{Err: err}})
}

// PanicProfile models an optimizer with an intermittent crash bug.
func PanicProfile(seed int64, rate float64) *Injector {
	return New(seed).Set(SiteOptimize, Point{Rate: rate, Fault: Fault{Panic: true}})
}
