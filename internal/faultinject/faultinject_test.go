package faultinject

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/pqotest"
)

func testEngine(t *testing.T) *pqotest.Engine {
	t.Helper()
	eng, err := pqotest.RandomEngine(rand.New(rand.NewSource(1)), 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestNilAndDisabledInjectNothing(t *testing.T) {
	eng := testEngine(t)
	sv := []float64{0.2, 0.3}

	// Nil injector: fully transparent.
	fe := Wrap(eng, nil)
	if _, _, err := fe.Optimize(sv); err != nil {
		t.Fatalf("nil injector: %v", err)
	}
	if got := fe.InjectedFaults(); got != 0 {
		t.Errorf("nil injector injected %d", got)
	}

	// Disabled injector: inert even with a 100% error point.
	inj := New(1).Set(SiteOptimize, Point{Rate: 1, Fault: Fault{Err: errors.New("boom")}})
	inj.Disable()
	fe = Wrap(eng, inj)
	if _, _, err := fe.Optimize(sv); err != nil {
		t.Fatalf("disabled injector: %v", err)
	}
	inj.Enable()
	if _, _, err := fe.Optimize(sv); err == nil {
		t.Fatal("re-enabled injector did not fire")
	}
	if got := inj.Injected(); got != 1 {
		t.Errorf("injected = %d, want 1", got)
	}
}

func TestSequenceScriptsExactCalls(t *testing.T) {
	eng := testEngine(t)
	boom := errors.New("scripted")
	inj := New(0).Set(SiteOptimize, Point{
		Sequence: []bool{false, true, false},
		Fault:    Fault{Err: boom},
	})
	fe := Wrap(eng, inj)
	sv := []float64{0.5, 0.5}
	var fired []bool
	for i := 0; i < 6; i++ {
		_, _, err := fe.Optimize(sv)
		fired = append(fired, errors.Is(err, boom))
	}
	want := []bool{false, true, false, false, true, false}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("call %d fired=%v, want %v (all: %v)", i, fired[i], want[i], fired)
		}
	}
	if got := inj.InjectedAt(SiteOptimize); got != 2 {
		t.Errorf("InjectedAt(optimize) = %d, want 2", got)
	}
}

func TestRateIsDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) []bool {
		eng := testEngine(t)
		inj := New(seed).Set(SiteRecost, Point{Rate: 0.5, Fault: Fault{Err: errors.New("x")}})
		fe := Wrap(eng, inj)
		cp, _, err := eng.Optimize([]float64{0.1, 0.1})
		if err != nil {
			t.Fatal(err)
		}
		var outcomes []bool
		for i := 0; i < 32; i++ {
			_, err := fe.Recost(cp, []float64{0.1, 0.1})
			outcomes = append(outcomes, err != nil)
		}
		return outcomes
	}
	a, b, c := run(7), run(7), run(8)
	same := func(x, y []bool) bool {
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	if !same(a, b) {
		t.Error("same seed produced different injection streams")
	}
	if same(a, c) {
		t.Error("different seeds produced identical injection streams (suspicious)")
	}
}

func TestPanicAndLatencyFaults(t *testing.T) {
	eng := testEngine(t)
	inj := New(3).Set(SiteOptimize, Point{
		Sequence: []bool{true},
		Fault:    Fault{Latency: 5 * time.Millisecond, Panic: true},
	})
	fe := Wrap(eng, inj)
	start := time.Now()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected injected panic")
			}
		}()
		_, _, _ = fe.Optimize([]float64{0.1, 0.1})
	}()
	if d := time.Since(start); d < 5*time.Millisecond {
		t.Errorf("latency fault not applied before panic (took %v)", d)
	}
}

func TestPrepareRecostWithoutBatchingInner(t *testing.T) {
	// pqotest.Engine does not batch: PrepareRecost must fail cleanly so
	// batching callers fall back to per-call Recost.
	fe := Wrap(testEngine(t), New(1))
	if _, err := fe.PrepareRecost([]float64{0.1, 0.1}); err == nil {
		t.Fatal("PrepareRecost over a non-batching engine must error")
	}
}
