package faultinject

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// ErrDropped is the transport error surfaced when an injected fault
// suppresses a request (Fault.Drop) or loses its response
// (Fault.DropResponse). Callers cannot distinguish the two — exactly like
// a real network, where a timeout never says whether the server did the
// work — which is what makes DropResponse the probe for idempotency.
var ErrDropped = errors.New("faultinject: request dropped by injected transport fault")

// Transport is an http.RoundTripper that interposes an Injector's
// SiteTransport point on every request: per RPC it can delay delivery,
// blackhole the request, lose the response after delivery, deliver twice,
// fail like a refused connection, or answer with a synthetic HTTP status —
// all from the injector's seeded PRNG or an explicit Sequence, so a
// failing cluster chaos run reproduces from its seed alone.
//
// A nil Injector (or a disabled one) makes the wrapper transparent.
type Transport struct {
	inner http.RoundTripper
	inj   *Injector
}

// NewTransport wraps inner (nil selects http.DefaultTransport) with inj
// interposed at SiteTransport.
func NewTransport(inner http.RoundTripper, inj *Injector) *Transport {
	return &Transport{inner: inner, inj: inj}
}

// Injector returns the wrapped injector (nil for a transparent wrapper).
func (t *Transport) Injector() *Injector { return t.inj }

func (t *Transport) transport() http.RoundTripper {
	if t.inner != nil {
		return t.inner
	}
	return http.DefaultTransport
}

// RoundTrip implements http.RoundTripper. Fault application order:
// Latency (context-aware sleep), Drop, Err, Status — none of which deliver
// the request — then real delivery, then DropResponse and Duplicate.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	f, fire := t.inj.At(SiteTransport)
	if !fire {
		return t.transport().RoundTrip(req)
	}

	// Buffer the body up front: a Duplicate fault replays the request, and
	// even single delivery needs a fresh reader once we own the body.
	var body []byte
	if req.Body != nil {
		var err error
		body, err = io.ReadAll(req.Body)
		req.Body.Close()
		if err != nil {
			return nil, fmt.Errorf("faultinject: buffering request body: %w", err)
		}
	}
	deliver := func() (*http.Response, error) {
		r := req.Clone(req.Context())
		if body != nil {
			r.Body = io.NopCloser(bytes.NewReader(body))
			r.ContentLength = int64(len(body))
		}
		return t.transport().RoundTrip(r)
	}

	if f.Latency > 0 {
		timer := time.NewTimer(f.Latency)
		select {
		case <-req.Context().Done():
			timer.Stop()
			return nil, req.Context().Err()
		case <-timer.C:
		}
	}
	switch {
	case f.Drop:
		return nil, fmt.Errorf("%w (request)", ErrDropped)
	case f.Err != nil:
		return nil, f.Err
	case f.Status != 0:
		return &http.Response{
			Status:     fmt.Sprintf("%d %s", f.Status, http.StatusText(f.Status)),
			StatusCode: f.Status,
			Proto:      "HTTP/1.1",
			ProtoMajor: 1,
			ProtoMinor: 1,
			Header:     http.Header{"X-Faultinject": []string{"synthetic"}},
			Body:       io.NopCloser(strings.NewReader("")),
			Request:    req,
		}, nil
	}

	resp, err := deliver()
	if err != nil {
		return resp, err
	}
	if f.DropResponse {
		io.Copy(io.Discard, resp.Body) //nolint:errcheck // draining a doomed body
		resp.Body.Close()
		return nil, fmt.Errorf("%w (response)", ErrDropped)
	}
	if f.Duplicate {
		io.Copy(io.Discard, resp.Body) //nolint:errcheck // first delivery's response is discarded
		resp.Body.Close()
		return deliver()
	}
	return resp, nil
}

// Transport chaos profiles for cluster suites, mirroring the engine-side
// profiles above.

// PartitionProfile models a full network partition: every request is
// blackholed.
func PartitionProfile(seed int64) *Injector {
	return New(seed).Set(SiteTransport, Point{Rate: 1, Fault: Fault{Drop: true}})
}

// LossyProfile models a lossy link: each request is independently dropped
// with probability rate.
func LossyProfile(seed int64, rate float64) *Injector {
	return New(seed).Set(SiteTransport, Point{Rate: rate, Fault: Fault{Drop: true}})
}

// DuplicateProfile models a retransmitting link: each request is delivered
// twice with probability rate.
func DuplicateProfile(seed int64, rate float64) *Injector {
	return New(seed).Set(SiteTransport, Point{Rate: rate, Fault: Fault{Duplicate: true}})
}
