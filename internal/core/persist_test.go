package core

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/engine"
	"repro/internal/pqotest"
	"repro/internal/query"
	"repro/internal/workload"
)

// realEngine builds a real TemplateEngine (which supports rehydration) over
// a 2-d TPC-H template.
func realEngine(t *testing.T) *engine.TemplateEngine {
	t.Helper()
	sys, err := engine.NewSystem(catalog.NewTPCH(0.05), 9)
	if err != nil {
		t.Fatal(err)
	}
	tpl := &query.Template{
		Name:    "persist2d",
		Catalog: sys.Cat,
		Tables:  []string{"lineitem", "orders"},
		Joins: []query.Join{{Left: "lineitem", Right: "orders",
			LeftCol: "l_orderkey", RightCol: "o_orderkey", Selectivity: 1.0 / 75_000}},
		Preds: []query.Predicate{
			{Table: "lineitem", Column: "l_shipdate", Op: query.LE, Param: 0},
			{Table: "orders", Column: "o_orderdate", Op: query.LE, Param: 1},
		},
	}
	eng, err := sys.EngineFor(tpl)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestExportImportRoundTrip(t *testing.T) {
	eng := realEngine(t)
	s1, err := NewSCR(eng, Config{Lambda: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Warm the cache with a bucketized workload.
	insts, err := workload.GenerateSet(2, 60, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range insts {
		if _, err := s1.Process(context.Background(), q.SV); err != nil {
			t.Fatal(err)
		}
	}
	st1 := s1.Stats()
	if st1.CurPlans == 0 {
		t.Fatal("warm-up cached no plans")
	}
	data, err := s1.Export()
	if err != nil {
		t.Fatal(err)
	}

	// A fresh SCR (new process, same engine) imports the cache and serves
	// the same instances without any optimizer call.
	s2, err := NewSCR(eng, Config{Lambda: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Import(data); err != nil {
		t.Fatal(err)
	}
	if got := s2.Stats().CurPlans; got != st1.CurPlans {
		t.Errorf("imported %d plans, want %d", got, st1.CurPlans)
	}
	if got := s2.NumInstances(); got != s1.NumInstances() {
		t.Errorf("imported %d instances, want %d", got, s1.NumInstances())
	}
	optBefore := s2.Stats().OptCalls
	for _, q := range insts {
		dec, err := s2.Process(context.Background(), q.SV)
		if err != nil {
			t.Fatal(err)
		}
		if dec.Plan == nil {
			t.Fatal("nil plan after import")
		}
	}
	if extra := s2.Stats().OptCalls - optBefore; extra > int64(len(insts))/4 {
		t.Errorf("imported cache still needed %d optimizer calls on the warm-up set", extra)
	}
}

func TestImportValidation(t *testing.T) {
	eng := realEngine(t)
	s, err := NewSCR(eng, Config{Lambda: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Import([]byte("{")); err == nil {
		t.Error("garbage JSON should fail")
	}
	if err := s.Import([]byte(`{"plans":[],"instances":[{"v":[0.1,0.1],"planFP":"missing","c":1,"s":1,"u":1}]}`)); err == nil {
		t.Error("dangling plan reference should fail")
	}
	// Import into a non-empty cache must be rejected.
	if _, err := s.Process(context.Background(), []float64{0.1, 0.1}); err != nil {
		t.Fatal(err)
	}
	data, err := s.Export()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Import(data); err == nil || !strings.Contains(err.Error(), "non-empty") {
		t.Errorf("import into non-empty cache: err = %v", err)
	}
	// Budget enforcement on import.
	s2, err := NewSCR(eng, Config{Lambda: 2, PlanBudget: 1})
	if err != nil {
		t.Fatal(err)
	}
	s3, err := NewSCR(eng, Config{Lambda: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Build a 2-plan cache to violate the k=1 budget.
	for _, sv := range [][]float64{{1e-4, 1e-4}, {0.9, 0.9}, {1e-4, 0.9}, {0.9, 1e-4}} {
		if _, err := s3.Process(context.Background(), sv); err != nil {
			t.Fatal(err)
		}
	}
	if s3.Stats().CurPlans < 2 {
		t.Skip("workload produced a single plan; budget check not exercisable")
	}
	multi, err := s3.Export()
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Import(multi); err == nil || !strings.Contains(err.Error(), "budget") {
		t.Errorf("over-budget import: err = %v", err)
	}
}

func TestImportRequiresRehydrator(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	eng, err := pqotest.RandomEngine(rng, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSCR(eng, Config{Lambda: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Import([]byte(`{"plans":[],"instances":[]}`)); err == nil ||
		!strings.Contains(err.Error(), "rehydrate") {
		t.Errorf("non-rehydrating engine: err = %v", err)
	}
}

func TestImportedGuaranteeStillHolds(t *testing.T) {
	// After a round trip, the λ guarantee must hold for fresh instances:
	// the imported S and C values drive the checks.
	eng := realEngine(t)
	s1, err := NewSCR(eng, Config{Lambda: 2})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := workload.GenerateSet(2, 80, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range warm {
		if _, err := s1.Process(context.Background(), q.SV); err != nil {
			t.Fatal(err)
		}
	}
	data, err := s1.Export()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewSCR(eng, Config{Lambda: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Import(data); err != nil {
		t.Fatal(err)
	}
	fresh, err := workload.GenerateSet(2, 60, 77)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range fresh {
		dec, err := s2.Process(context.Background(), q.SV)
		if err != nil {
			t.Fatal(err)
		}
		chosen, err := eng.Recost(dec.Plan, q.SV)
		if err != nil {
			t.Fatal(err)
		}
		_, opt, err := eng.Optimize(q.SV)
		if err != nil {
			t.Fatal(err)
		}
		if so := chosen / opt; so > 2*(1+0.05) {
			// Allow 5% slack for real-cost-model BCG edge effects.
			t.Errorf("instance %d after import: SO = %v exceeds λ=2", i, so)
		}
	}
}

func TestInspectSnapshot(t *testing.T) {
	eng := realEngine(t)
	s, err := NewSCR(eng, Config{Lambda: 2})
	if err != nil {
		t.Fatal(err)
	}
	insts, err := workload.GenerateSet(2, 40, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range insts {
		if _, err := s.Process(context.Background(), q.SV); err != nil {
			t.Fatal(err)
		}
	}
	data, err := s.Export()
	if err != nil {
		t.Fatal(err)
	}
	sum, err := InspectSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Plans) != s.Stats().CurPlans {
		t.Errorf("summary has %d plans, cache has %d", len(sum.Plans), s.Stats().CurPlans)
	}
	if sum.Instances != s.NumInstances() {
		t.Errorf("summary has %d instances, cache has %d", sum.Instances, s.NumInstances())
	}
	if sum.Dimensions != 2 {
		t.Errorf("dimensions = %d, want 2", sum.Dimensions)
	}
	totalInst := 0
	for _, p := range sum.Plans {
		totalInst += p.Instances
		if p.MinCost <= 0 || p.MaxCost < p.MinCost {
			t.Errorf("plan %s has cost range [%v, %v]", p.Fingerprint, p.MinCost, p.MaxCost)
		}
	}
	if totalInst != sum.Instances {
		t.Errorf("per-plan instances sum %d != total %d", totalInst, sum.Instances)
	}
	if _, err := InspectSnapshot([]byte("{")); err == nil {
		t.Error("garbage should fail")
	}
	if _, err := InspectSnapshot([]byte(`{"plans":[],"instances":[{"v":[0.1],"planFP":"x","c":1,"s":1,"u":1}]}`)); err == nil {
		t.Error("dangling plan reference should fail")
	}
}

// TestSnapshotFileCrashSafety pins the crash-safety contract of
// WriteSnapshotFile/ReadSnapshotFile: the framed file round-trips, every
// torn or bit-flipped variant is rejected with ErrSnapshotCorrupt instead
// of being half-imported, an interrupted rewrite leaves the previous
// snapshot readable, and pre-framing files still pass through.
func TestSnapshotFileCrashSafety(t *testing.T) {
	payload := []byte(`{"plans":[],"instances":[]}`)
	newer := []byte(`{"plans":[],"instances":[],"note":"newer generation"}`)

	t.Run("roundtrip", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "snap.json")
		if err := WriteSnapshotFile(path, payload); err != nil {
			t.Fatal(err)
		}
		got, err := ReadSnapshotFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("roundtrip = %q, want %q", got, payload)
		}
	})

	t.Run("truncation-detected", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "snap.json")
		if err := WriteSnapshotFile(path, payload); err != nil {
			t.Fatal(err)
		}
		framed, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		// Every proper prefix of the framed file is a possible torn write;
		// all of them must be flagged, none silently imported.
		for _, cut := range []int{len(snapshotMagic) + 2, snapshotHeaderLen, len(framed) - 1} {
			if err := os.WriteFile(path, framed[:cut], 0o644); err != nil {
				t.Fatal(err)
			}
			if _, err := ReadSnapshotFile(path); !errors.Is(err, ErrSnapshotCorrupt) {
				t.Errorf("truncated at %d bytes: err = %v, want ErrSnapshotCorrupt", cut, err)
			}
		}
	})

	t.Run("bitflip-detected", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "snap.json")
		if err := WriteSnapshotFile(path, payload); err != nil {
			t.Fatal(err)
		}
		framed, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		framed[snapshotHeaderLen+3] ^= 0x40
		if err := os.WriteFile(path, framed, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadSnapshotFile(path); !errors.Is(err, ErrSnapshotCorrupt) {
			t.Errorf("bit-flipped payload: err = %v, want ErrSnapshotCorrupt", err)
		}
	})

	t.Run("kill-mid-rewrite-keeps-old", func(t *testing.T) {
		// A crash between temp-file write and rename leaves the abandoned
		// temp alongside an intact previous snapshot.
		dir := t.TempDir()
		path := filepath.Join(dir, "snap.json")
		if err := WriteSnapshotFile(path, payload); err != nil {
			t.Fatal(err)
		}
		tmp, err := os.CreateTemp(dir, "snap.json.tmp*")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tmp.Write(append(append([]byte{}, snapshotMagic...), newer[:10]...)); err != nil {
			t.Fatal(err)
		}
		tmp.Close() // crash here: rename never happens
		got, err := ReadSnapshotFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("old snapshot damaged by interrupted rewrite: %q", got)
		}
		// Recovery: the next successful write supersedes cleanly.
		if err := WriteSnapshotFile(path, newer); err != nil {
			t.Fatal(err)
		}
		if got, err = ReadSnapshotFile(path); err != nil || !bytes.Equal(got, newer) {
			t.Fatalf("rewrite after crash = %q, %v, want %q", got, err, newer)
		}
	})

	t.Run("legacy-unframed-passthrough", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "snap.json")
		if err := os.WriteFile(path, payload, 0o644); err != nil {
			t.Fatal(err)
		}
		got, err := ReadSnapshotFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("legacy passthrough = %q, want %q", got, payload)
		}
	})
}
