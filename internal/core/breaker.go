package core

import (
	"sync"
	"sync/atomic"
	"time"
)

// BreakerState is the optimizer circuit breaker's state.
type BreakerState int32

// The classic three-state breaker.
const (
	// BreakerClosed: optimizer calls proceed normally.
	BreakerClosed BreakerState = iota
	// BreakerOpen: optimizer calls are skipped; degraded fallback (or
	// ErrBreakerOpen) serves instead until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: the cooldown elapsed; exactly one probe call is in
	// flight to decide whether to close or re-open.
	BreakerHalfOpen
)

// String names the state for /healthz, /metrics and logs.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// breaker is a circuit breaker over the optimizer: closed → open after
// threshold consecutive failures/timeouts, half-open probe after cooldown,
// half-open → closed on a probe success, half-open → open on a probe
// failure. A stuck or crashing optimizer therefore stops eating latency
// budget after a few failures while cached plans keep serving.
//
// The mutex guards only the tiny state transition — never an engine call
// (see the lockdiscipline analyzer) — and is touched exclusively on the
// optimizer miss path, so the read-path hot loop never sees it. A nil
// *breaker is valid and always allows.
type breaker struct {
	threshold int
	cooldown  time.Duration

	mu          sync.Mutex
	state       BreakerState
	consecFails int
	openedAt    time.Time
	probing     bool

	opens     atomic.Int64
	halfOpens atomic.Int64
	closes    atomic.Int64
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown}
}

// Allow reports whether an optimizer call may proceed now. When it returns
// true the caller must follow up with exactly one RecordSuccess or
// RecordFailure; when false the caller serves degraded (or fails) without
// recording.
func (b *breaker) Allow() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if time.Since(b.openedAt) < b.cooldown {
			return false
		}
		b.state = BreakerHalfOpen
		b.halfOpens.Add(1)
		b.probing = true
		return true
	default: // BreakerHalfOpen
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// RecordSuccess reports a completed optimizer call.
func (b *breaker) RecordSuccess() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecFails = 0
	if b.state == BreakerHalfOpen {
		b.state = BreakerClosed
		b.probing = false
		b.closes.Add(1)
	}
}

// RecordFailure reports a failed or timed-out optimizer call.
func (b *breaker) RecordFailure() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerHalfOpen:
		b.trip()
	case BreakerClosed:
		b.consecFails++
		if b.consecFails >= b.threshold {
			b.trip()
		}
	}
}

// RecordCancel reports an optimizer call abandoned because the *caller*
// was cancelled — evidence of nothing about optimizer health, so it only
// releases a half-open probe slot.
func (b *breaker) RecordCancel() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerHalfOpen {
		b.probing = false
	}
}

// trip moves to open. Caller holds b.mu.
func (b *breaker) trip() {
	b.state = BreakerOpen
	b.openedAt = time.Now()
	b.probing = false
	b.consecFails = 0
	b.opens.Add(1)
}

// State returns the current state, advancing open → half-open eligibility
// lazily (reporting only; the transition itself happens in Allow).
func (b *breaker) State() BreakerState {
	if b == nil {
		return BreakerClosed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Counters reports cumulative transition counts.
func (b *breaker) Counters() (opens, halfOpens, closes int64) {
	if b == nil {
		return 0, 0, 0
	}
	return b.opens.Load(), b.halfOpens.Load(), b.closes.Load()
}
