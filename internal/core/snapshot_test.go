package core

import (
	"context"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"repro/internal/pqotest"
)

// snapshotFingerprint deep-copies everything an RCU reader may dereference
// from a published snapshot: the entry pointer slices, each entry's
// selectivity vector and plan binding, the plan list, and the selectivity
// index arrays. Atomic fields (anchor, usage, quarantine) are the designed
// mutable channel and are deliberately excluded.
type snapshotFingerprint struct {
	version  int64
	epoch    uint64
	insts    []*instanceEntry
	vecs     [][]float64
	pps      []*planEntry
	plans    []*planEntry
	idxKeys []float64
	idxEnts []*instanceEntry
	idxPos  []int32
	planFPs []string
}

func fingerprintSnapshot(snap *cacheSnapshot) snapshotFingerprint {
	f := snapshotFingerprint{
		version: snap.version,
		epoch:   snap.epoch,
		insts:   append([]*instanceEntry(nil), snap.instances...),
		plans:   append([]*planEntry(nil), snap.plans...),
		idxKeys: append([]float64(nil), snap.index.keys...),
		idxEnts: append([]*instanceEntry(nil), snap.index.ents...),
		idxPos:  append([]int32(nil), snap.index.pos...),
	}
	for _, e := range snap.instances {
		f.vecs = append(f.vecs, append([]float64(nil), e.v...))
		f.pps = append(f.pps, e.pp)
	}
	for _, pe := range snap.plans {
		f.planFPs = append(f.planFPs, pe.fp)
	}
	return f
}

// verify re-reads the snapshot and fails if anything diverged from the
// fingerprint taken at publication time.
func (f *snapshotFingerprint) verify(t *testing.T, snap *cacheSnapshot) {
	t.Helper()
	if snap.version != f.version || snap.epoch != f.epoch {
		t.Errorf("snapshot (version,epoch) mutated: (%d,%d) -> (%d,%d)",
			f.version, f.epoch, snap.version, snap.epoch)
	}
	if len(snap.instances) != len(f.insts) {
		t.Fatalf("snapshot instance list resized: %d -> %d", len(f.insts), len(snap.instances))
	}
	for i, e := range snap.instances {
		if e != f.insts[i] {
			t.Fatalf("snapshot instance %d swapped after publication", i)
		}
		if e.pp != f.pps[i] {
			t.Fatalf("instance %d plan binding mutated after publication", i)
		}
		if len(e.v) != len(f.vecs[i]) {
			t.Fatalf("instance %d vector resized after publication", i)
		}
		for d := range e.v {
			if e.v[d] != f.vecs[i][d] {
				t.Fatalf("instance %d vector dim %d mutated: %v -> %v",
					i, d, f.vecs[i][d], e.v[d])
			}
		}
	}
	if len(snap.plans) != len(f.plans) {
		t.Fatalf("snapshot plan list resized: %d -> %d", len(f.plans), len(snap.plans))
	}
	for i, pe := range snap.plans {
		if pe != f.plans[i] || pe.fp != f.planFPs[i] {
			t.Fatalf("snapshot plan %d mutated after publication", i)
		}
	}
	if len(snap.index.keys) != len(f.idxKeys) {
		t.Fatalf("snapshot index resized: %d -> %d", len(f.idxKeys), len(snap.index.keys))
	}
	for i := range snap.index.keys {
		if snap.index.keys[i] != f.idxKeys[i] ||
			snap.index.ents[i] != f.idxEnts[i] ||
			snap.index.pos[i] != f.idxPos[i] {
			t.Fatalf("snapshot index entry %d mutated after publication", i)
		}
	}
}

// TestSnapshotImmutableUnderWriterChurn is the RCU design's load-bearing
// invariant: once published, a cacheSnapshot is never mutated — writers
// build replacements, readers keep scanning old snapshots indefinitely.
// Readers here capture a snapshot, deep-fingerprint it, wait out heavy
// concurrent writer churn (inserts, evictions, sweeps, seeds, re-sorts),
// and then verify the captured snapshot byte-for-byte. Run under -race:
// the fingerprint re-reads would also race with any in-place writer
// mutation the comparison failed to catch semantically.
func TestSnapshotImmutableUnderWriterChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	eng, err := pqotest.RandomEngine(rng, 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	// A small plan budget forces evictions (instance-list rewrites) and
	// ScanByUsage forces periodic re-sorts — the mutations most likely to
	// touch a published array if the copy-on-write discipline slipped.
	s, err := NewSCR(eng, Config{Lambda: 2, PlanBudget: 4, Scan: ScanByUsage, StoreAlways: true})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 8; i++ {
		if _, err := s.Process(ctx, pqotest.RandomSVector(rng, 3)); err != nil {
			t.Fatal(err)
		}
	}

	const (
		writers    = 4
		perWriter  = 120
		readRounds = 40
	)
	streams := make([][][]float64, writers)
	for w := range streams {
		streams[w] = make([][]float64, perWriter)
		for i := range streams[w] {
			streams[w][i] = pqotest.RandomSVector(rng, 3)
		}
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(stream [][]float64) {
			defer wg.Done()
			for i, sv := range stream {
				if _, err := s.Process(ctx, sv); err != nil {
					t.Error(err)
					return
				}
				if i%40 == 39 {
					if _, err := s.SweepRedundantPlans(); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(streams[w])
	}

	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for r := 0; r < readRounds; r++ {
			snap := s.snapshot()
			fp := fingerprintSnapshot(snap)
			// Hold the snapshot across real writer churn: wait until the
			// published version has moved several publications past ours
			// (or the writers finish), then verify our old snapshot.
			for s.snapshot().version < fp.version+3 {
				select {
				case <-stop:
					fp.verify(t, snap)
					return
				default:
					runtime.Gosched()
				}
			}
			fp.verify(t, snap)
			if t.Failed() {
				return
			}
		}
	}()

	// Wait for writers, then release the reader: stop unblocks a round
	// still waiting for publications that will never come.
	wg.Wait()
	close(stop)
	<-readerDone

	// Version must have advanced monotonically through the churn and the
	// final snapshot must be internally consistent.
	final := s.snapshot()
	if final.version <= 0 {
		t.Fatalf("final snapshot version %d, want > 0", final.version)
	}
	if len(final.index.keys) != len(final.instances) {
		t.Fatalf("final index covers %d entries, instance list has %d",
			len(final.index.keys), len(final.instances))
	}
}
