// Package core implements the paper's primary contribution: the SCR online
// PQO technique (Selectivity check, Cost check, Redundancy check) with its
// plan cache, λ-optimality guarantee machinery, plan-budget enforcement,
// dynamic λ (Appendix D), BCG-violation detection (Appendix G) and the
// existing-plan redundancy sweep (Appendix F).
//
// It also defines the Technique interface shared with the baseline
// techniques of package baselines, and the selectivity-factor arithmetic
// (G, L) of §5.3 used by both.
package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/engine"
)

// Check identifies how a plan decision was made for an instance.
type Check int

const (
	// ViaOptimizer means a full optimizer call was made.
	ViaOptimizer Check = iota
	// ViaSelectivity means the selectivity check inferred a cached plan.
	ViaSelectivity
	// ViaCost means the recost-based cost check inferred a cached plan.
	ViaCost
	// ViaInference means a baseline-specific inference reused a cached
	// plan (ellipse, density, range, PCM box, optimize-once reuse...).
	ViaInference
	// ViaFallback means degraded-mode serving: the optimizer was
	// unavailable (deadline, error, panic or open breaker) and the
	// cheapest cached plan was served without a λ guarantee.
	ViaFallback
)

// String names the check for reports.
func (c Check) String() string {
	switch c {
	case ViaOptimizer:
		return "optimizer"
	case ViaSelectivity:
		return "selectivity-check"
	case ViaCost:
		return "cost-check"
	case ViaInference:
		return "inference"
	case ViaFallback:
		return "degraded-fallback"
	default:
		return fmt.Sprintf("check(%d)", int(c))
	}
}

// Decision is the outcome of processing one query instance.
type Decision struct {
	// Plan is the plan the technique selected for execution.
	Plan *engine.CachedPlan
	// Optimized reports whether this call paid a full optimizer call.
	Optimized bool
	// Via records which mechanism produced the plan.
	Via Check
	// Shared reports that the decision was produced by another in-flight
	// call for the same instance (singleflight dedup): this caller paid
	// neither an optimizer call nor a cache check.
	Shared bool
	// Degraded reports that the λ guarantee was explicitly relaxed for
	// this decision: the optimizer was unavailable and the plan came from
	// the degraded-mode fallback over the cache. Degraded decisions may
	// violate SubOpt ≤ λ; DegradedReason says why the relaxation happened.
	Degraded bool
	// DegradedReason identifies the failure the fallback absorbed; empty
	// unless Degraded.
	DegradedReason DegradedReason
	// Epoch is the id of the statistics epoch the decision's guarantee is
	// stated against: the epoch of the anchor instance that inferred the
	// plan (selectivity/cost check) or the epoch the optimizer call ran
	// under. During revalidation lag an entry anchored under the previous
	// epoch may serve with its old id — the λ bound then holds against
	// that generation's statistics, not the newest. Zero when the engine
	// has no epoch lifecycle.
	Epoch uint64
}

// DegradedReason classifies why a decision was served without its λ
// guarantee.
type DegradedReason string

// Degradation causes, in the order the resilience layer checks them.
const (
	// DegradedBreakerOpen: the optimizer circuit breaker was open, so no
	// optimizer call was attempted.
	DegradedBreakerOpen DegradedReason = "breaker-open"
	// DegradedOptimizerTimeout: the optimizer call exceeded the
	// WithOptimizerDeadline budget and was abandoned (it still populates
	// the cache if it eventually completes).
	DegradedOptimizerTimeout DegradedReason = "optimizer-timeout"
	// DegradedOptimizerPanic: the optimizer panicked and the panic was
	// recovered into the fallback path.
	DegradedOptimizerPanic DegradedReason = "optimizer-panic"
	// DegradedOptimizerError: the optimizer (or the cache-management
	// recosting behind it) returned an error.
	DegradedOptimizerError DegradedReason = "optimizer-error"
	// DegradedStatsEpochLag: the statistics epoch advanced and the
	// instance's best cached candidates are anchored under a previous
	// epoch, not yet revalidated. Rather than stampede the optimizer (or
	// mix anchor factors across generations in the cost check), the best
	// lagging candidate is served flagged; the background revalidator
	// retires the lag.
	DegradedStatsEpochLag DegradedReason = "stats-epoch-lag"
	// DegradedEpochSkew: the node knows (via ObserveClusterEpoch) that the
	// cluster-wide statistics generation is more than the configured skew
	// bound ahead of its own installed epoch — e.g. it missed a
	// coordinator push during a partition. Decisions are still λ-valid
	// against the node's own generation (Decision.Epoch says which), but
	// they are flagged so callers never silently mix answers from
	// generations further apart than the bound (docs/ROBUSTNESS.md).
	DegradedEpochSkew DegradedReason = "epoch-skew"
)

// Stats are cumulative counters a technique reports. Counter semantics
// follow §2.1's metrics.
type Stats struct {
	// Instances processed so far.
	Instances int64
	// OptCalls is numOpt: full optimizer calls incurred.
	OptCalls int64
	// SharedOptCalls counts instances served by joining another caller's
	// in-flight optimizer call (singleflight dedup) instead of paying
	// their own.
	SharedOptCalls int64
	// ReadPathHits counts instances served by the lock-free read path
	// (selectivity or cost check over the published snapshot);
	// WritePathHits counts instances that missed the first read-path pass
	// but were served by the second-chance check on the miss path, after
	// another flight populated the cache.
	ReadPathHits  int64
	WritePathHits int64
	// WriteLockWait accumulates time spent waiting to acquire the cache's
	// writer mutex — the only lock left; the read path acquires none, so
	// there is no read-side counterpart.
	WriteLockWait time.Duration
	// WriteDomains is the number of independent write domains behind these
	// stats: 1 for a single SCR, the template count when aggregated by a
	// Directory. Writers to different domains never contend.
	WriteDomains int
	// PublishTotal counts snapshot publications; PublishCoalesced counts
	// mutations that were folded into another mutation's publication
	// instead of paying their own (PublishTotal + PublishCoalesced =
	// publication marks, i.e. mutation batches).
	PublishTotal     int64
	PublishCoalesced int64
	// GetPlanRecosts counts Recost invocations on the critical path
	// (the cost check of getPlan).
	GetPlanRecosts int64
	// ManageRecosts counts Recost invocations off the critical path
	// (redundancy checks in manageCache).
	ManageRecosts int64
	// SelChecks counts instance-list entries examined by selectivity
	// checks (getPlan scanning overhead).
	SelChecks int64
	// CurPlans is the number of plans currently cached; MaxPlans is the
	// high-water mark (the paper's numPlans).
	CurPlans int
	MaxPlans int
	// MemoryBytes estimates current plan-cache memory (§6.1).
	MemoryBytes int64
	// Violations counts BCG/PCM violations detected via Appendix G.
	Violations int64
	// Evictions counts plans dropped to enforce the plan budget.
	Evictions int64
	// RedundantPlansRejected counts new plans discarded by the
	// redundancy check.
	RedundantPlansRejected int64
	// RecostCacheHits / RecostCacheMisses report the engine's recost
	// result cache (zero when the engine does not implement CacheReporter).
	RecostCacheHits   int64
	RecostCacheMisses int64
	// EnvPoolGets / EnvPoolReuses report the engine's pooled selectivity
	// environments: contexts handed out and pool reuses.
	EnvPoolGets   int64
	EnvPoolReuses int64
	// DegradedDecisions counts instances served by the degraded-mode
	// fallback (Decision.Degraded), i.e. without their λ guarantee.
	DegradedDecisions int64
	// ReadPathErrors counts read-path (selectivity/cost check) engine
	// failures that degraded fallback absorbed by skipping the checks.
	ReadPathErrors int64
	// BreakerState is the optimizer circuit breaker's current state
	// (BreakerClosed when no breaker is configured); the transition
	// counters record closed→open, open→half-open and half-open→closed
	// moves respectively.
	BreakerState     BreakerState
	BreakerOpens     int64
	BreakerHalfOpens int64
	BreakerCloses    int64
	// InjectedFaults reports faults injected by a fault-injecting engine
	// wrapper (zero when the engine does not implement FaultReporter).
	InjectedFaults int64
	// StatsEpoch is the engine's current statistics epoch id (zero when
	// the engine has no epoch lifecycle); LaggingInstances counts cached
	// instance entries whose anchors were computed under an older epoch
	// and await revalidation.
	StatsEpoch       uint64
	LaggingInstances int64
	// Revalidation counters: anchors re-derived under a new epoch
	// (RevalidatedPlans), entries whose plan survived with a demoted
	// sub-optimality (RevalDemoted), entries/plans dropped because the
	// redundancy threshold no longer held (RevalDroppedInstances,
	// RevalDroppedPlans), anchors whose revalidation errored
	// (RevalFailed), and instances served flagged during epoch lag
	// (EpochLagFallbacks).
	RevalidatedPlans      int64
	RevalDemoted          int64
	RevalDroppedInstances int64
	RevalDroppedPlans     int64
	RevalFailed           int64
	EpochLagFallbacks     int64
	// ClusterEpoch is the highest cluster-wide statistics generation the
	// node has observed (ObserveClusterEpoch); zero when the node has
	// never heard from a coordinator. EpochSkew is how many generations
	// the node's own StatsEpoch lags it (0 when caught up or ahead), and
	// EpochSkewFlagged counts decisions served flagged because that skew
	// exceeded the configured bound.
	ClusterEpoch     uint64
	EpochSkew        uint64
	EpochSkewFlagged int64
}

// Technique is an online PQO technique processing a stream of query
// instances (identified by their selectivity vectors) for one template.
type Technique interface {
	// Name identifies the technique and its configuration, e.g. "SCR(2)".
	Name() string
	// Process decides a plan for the instance with selectivity vector sv.
	// Cancelling ctx makes Process return an error wrapping ErrCancelled;
	// techniques check it at least before starting an optimizer call.
	Process(ctx context.Context, sv []float64) (*Decision, error)
	// Stats returns cumulative counters.
	Stats() Stats
}

// Engine is the database-engine surface a technique requires (§4.2): a full
// optimizer call and the Recost API. engine.TemplateEngine implements it;
// tests substitute synthetic engines with closed-form cost functions.
type Engine interface {
	// Dimensions returns the template's parameter count d.
	Dimensions() int
	// Optimize returns the optimal plan and its cost for sv.
	Optimize(sv []float64) (*engine.CachedPlan, float64, error)
	// Recost returns the cost of a previously optimized plan at sv.
	Recost(cp *engine.CachedPlan, sv []float64) (float64, error)
}

// BatchEngine is the optional batched-recosting surface of an Engine: a
// caller about to recost several plans for one instance prepares the
// instance once (selectivity state + cache key) and recosts candidates
// against it. engine.TemplateEngine implements it; synthetic test engines
// need not, and techniques fall back to per-call Recost when the engine
// does not batch.
type BatchEngine interface {
	Engine
	// PrepareRecost builds a reusable recosting context for sv. The caller
	// must Release it and must not mutate sv until then.
	PrepareRecost(sv []float64) (*engine.PreparedInstance, error)
}

// EpochEngine is the optional versioned-statistics surface of an Engine:
// engines whose statistics roll forward in epochs report the generation a
// cost was derived under, so the plan cache can tag its anchors, key
// served guarantees by epoch, and revalidate lazily instead of flushing.
// engine.TemplateEngine implements it; epoch-less engines are treated as
// permanently at epoch 0.
type EpochEngine interface {
	Engine
	// StatsEpoch returns the id of the current statistics epoch.
	StatsEpoch() uint64
	// OptimizeEpoch is Optimize plus the epoch the search ran under.
	OptimizeEpoch(sv []float64) (*engine.CachedPlan, float64, uint64, error)
	// RecostEpoch is Recost plus the epoch the cost was derived under.
	RecostEpoch(cp *engine.CachedPlan, sv []float64) (float64, uint64, error)
}

// FaultReporter is the optional accounting surface of a fault-injecting
// engine wrapper (internal/faultinject), surfacing how many faults were
// injected through Stats and /metrics.
type FaultReporter interface {
	// InjectedFaults reports the cumulative number of injected faults.
	InjectedFaults() int64
}

// CacheReporter is the optional accounting surface of an Engine exposing
// the recost-result-cache and pooled-environment counters surfaced through
// Stats and /metrics.
type CacheReporter interface {
	// RecostCacheCounters reports recost-cache hits and misses.
	RecostCacheCounters() (hits, misses int64)
	// EnvPoolCounters reports pooled selectivity environments handed out
	// and pool reuses.
	EnvPoolCounters() (gets, reuses int64)
}
