package core

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/pqotest"
)

// TestConcurrentProcess hammers one SCR instance from many goroutines: the
// plan cache must stay consistent (no races — run with -race), the
// guarantee must hold for every decision, and counters must add up.
func TestConcurrentProcess(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	eng, err := pqotest.RandomEngine(rng, 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSCR(eng, Config{Lambda: 2})
	if err != nil {
		t.Fatal(err)
	}
	const (
		workers = 8
		perG    = 150
	)
	// Pre-generate instance streams (the rng is not goroutine-safe).
	streams := make([][][]float64, workers)
	for w := range streams {
		streams[w] = make([][]float64, perG)
		for i := range streams[w] {
			streams[w][i] = pqotest.RandomSVector(rng, 3)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	sos := make(chan float64, workers*perG)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(stream [][]float64) {
			defer wg.Done()
			for _, sv := range stream {
				dec, err := s.Process(context.Background(), sv)
				if err != nil {
					errs <- err
					return
				}
				sos <- eng.PlanCost(dec.Plan, sv) / eng.OptimalCost(sv)
			}
		}(streams[w])
	}
	wg.Wait()
	close(errs)
	close(sos)
	for err := range errs {
		t.Fatal(err)
	}
	n := 0
	for so := range sos {
		n++
		if so > 2*(1+1e-9) {
			t.Errorf("concurrent decision with SO=%v exceeds λ=2", so)
		}
	}
	if n != workers*perG {
		t.Fatalf("processed %d instances, want %d", n, workers*perG)
	}
	st := s.Stats()
	if st.Instances != int64(workers*perG) {
		t.Errorf("Instances counter = %d, want %d", st.Instances, workers*perG)
	}
	if st.OptCalls == 0 || st.OptCalls > st.Instances {
		t.Errorf("OptCalls = %d out of range (0, %d]", st.OptCalls, st.Instances)
	}
	if st.CurPlans == 0 {
		t.Error("no plans cached after stress run")
	}
}

// gateEngine blocks every Optimize call until release is closed, letting
// tests hold an optimizer call open while other goroutines pile up
// behind the same miss.
type gateEngine struct {
	*pqotest.Engine
	release chan struct{}
}

func (e *gateEngine) Optimize(sv []float64) (*engine.CachedPlan, float64, error) {
	<-e.release
	return e.Engine.Optimize(sv)
}

// TestSingleflightSharedMisses is the singleflight acceptance proof: K
// concurrent Process calls for an identical cold instance must perform
// exactly one optimizer call and insert exactly one plan + one instance
// entry; the other K-1 callers are accounted as shared, write-path or
// read-path hits.
func TestSingleflightSharedMisses(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	eng, err := pqotest.RandomEngine(rng, 3, 6)
	if err != nil {
		t.Fatal(err)
	}
	gated := &gateEngine{Engine: eng, release: make(chan struct{})}
	s, err := New(gated, WithLambda(2))
	if err != nil {
		t.Fatal(err)
	}

	const k = 16
	sv := []float64{0.2, 0.3, 0.4}
	var started, done sync.WaitGroup
	errs := make(chan error, k)
	for i := 0; i < k; i++ {
		started.Add(1)
		done.Add(1)
		go func() {
			defer done.Done()
			started.Done()
			if _, err := s.Process(context.Background(), sv); err != nil {
				errs <- err
			}
		}()
	}
	// The leader is parked inside Optimize until we release it; give the
	// other goroutines time to miss the read path and join its flight,
	// then let the optimizer call finish.
	started.Wait()
	time.Sleep(50 * time.Millisecond)
	close(gated.release)
	done.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := s.Stats()
	if got := eng.OptimizeCalls(); got != 1 {
		t.Errorf("engine optimizer calls = %d, want exactly 1", got)
	}
	if st.OptCalls != 1 {
		t.Errorf("OptCalls = %d, want exactly 1", st.OptCalls)
	}
	if st.SharedOptCalls == 0 {
		t.Error("no caller shared the in-flight optimizer call")
	}
	if sum := st.ReadPathHits + st.WritePathHits + st.SharedOptCalls + st.OptCalls; sum != k {
		t.Errorf("hit/miss accounting: read=%d write=%d shared=%d opt=%d, sum %d != %d instances",
			st.ReadPathHits, st.WritePathHits, st.SharedOptCalls, st.OptCalls, sum, k)
	}
	if st.CurPlans != 1 {
		t.Errorf("CurPlans = %d, want 1 (duplicate plan insertion?)", st.CurPlans)
	}
	if n := s.NumInstances(); n != 1 {
		t.Errorf("NumInstances = %d, want 1 (duplicate instance insertion?)", n)
	}
}

// TestStressMixedOperations hammers one SCR from many goroutines with a
// mixed workload — Process over hot and cold instances, ProbeCheck,
// SweepRedundantPlans, Stats and Export — and asserts the counters
// reconcile exactly: every Process call must be accounted as precisely
// one of read-path hit, write-path hit, shared optimizer call, or owned
// optimizer call. Run with -race.
func TestStressMixedOperations(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	eng, err := pqotest.RandomEngine(rng, 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(eng, WithLambda(2), WithScanOrder(ScanByUsage))
	if err != nil {
		t.Fatal(err)
	}

	const (
		workers = 8
		perG    = 200
	)
	hot := make([][]float64, 8)
	for i := range hot {
		hot[i] = pqotest.RandomSVector(rng, 3)
	}
	streams := make([][][]float64, workers)
	for w := range streams {
		streams[w] = make([][]float64, perG)
		for i := range streams[w] {
			if i%10 < 9 { // ~90% hot traffic
				streams[w][i] = hot[(w+i)%len(hot)]
			} else {
				streams[w][i] = pqotest.RandomSVector(rng, 3)
			}
		}
	}

	var (
		wg        sync.WaitGroup
		processed atomic.Int64
	)
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int, stream [][]float64) {
			defer wg.Done()
			for i, sv := range stream {
				if _, err := s.Process(context.Background(), sv); err != nil {
					errCh <- err
					return
				}
				processed.Add(1)
				switch {
				case i%31 == 0:
					s.ProbeCheck(sv)
				case i%47 == 0 && w == 0:
					if _, err := s.SweepRedundantPlans(); err != nil {
						errCh <- err
						return
					}
				case i%13 == 0:
					_ = s.Stats()
				case i%29 == 0:
					if _, err := s.Export(); err != nil {
						errCh <- err
						return
					}
				}
			}
		}(w, streams[w])
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	st := s.Stats()
	if st.Instances != processed.Load() {
		t.Errorf("Instances = %d, want %d", st.Instances, processed.Load())
	}
	if sum := st.ReadPathHits + st.WritePathHits + st.SharedOptCalls + st.OptCalls; sum != st.Instances {
		t.Errorf("counter reconciliation failed: read=%d write=%d shared=%d opt=%d, sum %d != instances %d",
			st.ReadPathHits, st.WritePathHits, st.SharedOptCalls, st.OptCalls, sum, st.Instances)
	}
	if st.OptCalls != eng.OptimizeCalls() {
		t.Errorf("OptCalls = %d but engine served %d optimizer calls", st.OptCalls, eng.OptimizeCalls())
	}
	if st.CurPlans == 0 || s.NumInstances() == 0 {
		t.Error("empty cache after stress run")
	}
	// Plans referenced by instances must all exist (no dangling entries
	// after concurrent sweeps).
	snap, err := s.Export()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := InspectSnapshot(snap); err != nil {
		t.Errorf("snapshot inconsistent after stress run: %v", err)
	}
}

// TestConcurrentProcessWithBudgetAndSweep interleaves Process calls with
// the Appendix F sweep and stat reads under a plan budget.
func TestConcurrentProcessWithBudgetAndSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	eng, err := pqotest.RandomEngine(rng, 2, 12)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSCR(eng, Config{Lambda: 1.5, PlanBudget: 3})
	if err != nil {
		t.Fatal(err)
	}
	streams := make([][][]float64, 4)
	for w := range streams {
		streams[w] = make([][]float64, 100)
		for i := range streams[w] {
			streams[w][i] = pqotest.RandomSVector(rng, 2)
		}
	}
	var wg sync.WaitGroup
	for w := range streams {
		wg.Add(1)
		go func(stream [][]float64) {
			defer wg.Done()
			for i, sv := range stream {
				if _, err := s.Process(context.Background(), sv); err != nil {
					t.Error(err)
					return
				}
				if i%25 == 0 {
					if _, err := s.SweepRedundantPlans(); err != nil {
						t.Error(err)
						return
					}
				}
				if st := s.Stats(); st.CurPlans > 3 {
					t.Errorf("plan budget exceeded under concurrency: %d", st.CurPlans)
					return
				}
			}
		}(streams[w])
	}
	wg.Wait()
}
