package core

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/pqotest"
)

// TestConcurrentProcess hammers one SCR instance from many goroutines: the
// plan cache must stay consistent (no races — run with -race), the
// guarantee must hold for every decision, and counters must add up.
func TestConcurrentProcess(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	eng, err := pqotest.RandomEngine(rng, 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSCR(eng, Config{Lambda: 2})
	if err != nil {
		t.Fatal(err)
	}
	const (
		workers = 8
		perG    = 150
	)
	// Pre-generate instance streams (the rng is not goroutine-safe).
	streams := make([][][]float64, workers)
	for w := range streams {
		streams[w] = make([][]float64, perG)
		for i := range streams[w] {
			streams[w][i] = pqotest.RandomSVector(rng, 3)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	sos := make(chan float64, workers*perG)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(stream [][]float64) {
			defer wg.Done()
			for _, sv := range stream {
				dec, err := s.Process(sv)
				if err != nil {
					errs <- err
					return
				}
				sos <- eng.PlanCost(dec.Plan, sv) / eng.OptimalCost(sv)
			}
		}(streams[w])
	}
	wg.Wait()
	close(errs)
	close(sos)
	for err := range errs {
		t.Fatal(err)
	}
	n := 0
	for so := range sos {
		n++
		if so > 2*(1+1e-9) {
			t.Errorf("concurrent decision with SO=%v exceeds λ=2", so)
		}
	}
	if n != workers*perG {
		t.Fatalf("processed %d instances, want %d", n, workers*perG)
	}
	st := s.Stats()
	if st.Instances != int64(workers*perG) {
		t.Errorf("Instances counter = %d, want %d", st.Instances, workers*perG)
	}
	if st.OptCalls == 0 || st.OptCalls > st.Instances {
		t.Errorf("OptCalls = %d out of range (0, %d]", st.OptCalls, st.Instances)
	}
	if st.CurPlans == 0 {
		t.Error("no plans cached after stress run")
	}
}

// TestConcurrentProcessWithBudgetAndSweep interleaves Process calls with
// the Appendix F sweep and stat reads under a plan budget.
func TestConcurrentProcessWithBudgetAndSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	eng, err := pqotest.RandomEngine(rng, 2, 12)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSCR(eng, Config{Lambda: 1.5, PlanBudget: 3})
	if err != nil {
		t.Fatal(err)
	}
	streams := make([][][]float64, 4)
	for w := range streams {
		streams[w] = make([][]float64, 100)
		for i := range streams[w] {
			streams[w][i] = pqotest.RandomSVector(rng, 2)
		}
	}
	var wg sync.WaitGroup
	for w := range streams {
		wg.Add(1)
		go func(stream [][]float64) {
			defer wg.Done()
			for i, sv := range stream {
				if _, err := s.Process(sv); err != nil {
					t.Error(err)
					return
				}
				if i%25 == 0 {
					if _, err := s.SweepRedundantPlans(); err != nil {
						t.Error(err)
						return
					}
				}
				if st := s.Stats(); st.CurPlans > 3 {
					t.Errorf("plan budget exceeded under concurrency: %d", st.CurPlans)
					return
				}
			}
		}(streams[w])
	}
	wg.Wait()
}
