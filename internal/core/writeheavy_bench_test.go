package core_test

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/pqotest"
)

// writeHeavyTemplates is the fleet size for the write-heavy benchmark:
// enough templates that a shared writer mutex convoys work that per-
// template domains would run independently.
const writeHeavyTemplates = 8

// BenchmarkProcessWriteHeavy measures multi-template throughput under a
// write-heavy mix — ~30% of operations are fresh vectors that miss and
// store (WithStoreAlways), while a background loop continuously advances
// statistics epochs and revalidates one template after another, keeping a
// writer hot in some domain for the whole timed section. Two disciplines:
//
//   - sharded: the shipped write path — every template its own write
//     domain (own mutex, own snapshot) with coalesced publication, so one
//     flush covers a whole critical section's mutations and writers to
//     different templates never contend.
//   - unsharded: the retired design reconstructed via the benchmark-only
//     options — all templates chained to ONE shared writer mutex
//     (WithSharedWriteLock) and every mutation republishing its snapshot
//     eagerly (WithEagerPublish), so each store pays O(instances) rebuilds
//     per mutation and serializes against every other template's writes.
//
// The engines optimize in nanoseconds on purpose: the benchmark isolates
// the write-path critical sections (lock acquisition, snapshot
// publication) rather than optimizer latency, and a single-CPU host still
// exposes the differential because the eager/shared discipline simply
// does more serialized work per store. scripts/bench_scaling.sh -write
// sweeps this benchmark and enforces the BENCH_PR10.json gate. Run with:
//
//	go test ./internal/core/ -bench BenchmarkProcessWriteHeavy -cpu 1,4,16
func BenchmarkProcessWriteHeavy(b *testing.B) {
	b.Run("sharded", func(b *testing.B) { benchWriteHeavy(b, false) })
	b.Run("unsharded", func(b *testing.B) { benchWriteHeavy(b, true) })
}

func benchWriteHeavy(b *testing.B, unsharded bool) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(7))
	var sharedMu sync.Mutex
	type tmpl struct {
		eng  *pqotest.EpochEngine
		scr  *core.SCR
		warm [][]float64
	}
	tmpls := make([]*tmpl, writeHeavyTemplates)
	for i := range tmpls {
		eng, err := pqotest.RandomEngine(rng, 4, 8)
		if err != nil {
			b.Fatal(err)
		}
		ee := pqotest.NewEpochEngine(eng)
		// A tight λ keeps the checks strict, so the fresh-vector share of
		// traffic really reaches the optimizer and stores — without it the
		// selectivity check absorbs most "misses" and the write path idles.
		opts := []core.Option{core.WithLambda(1.2), core.WithStoreAlways()}
		if unsharded {
			opts = append(opts, core.WithSharedWriteLock(&sharedMu), core.WithEagerPublish())
		}
		scr, err := core.New(ee, opts...)
		if err != nil {
			b.Fatal(err)
		}
		// A substantial warmed instance list per template makes snapshot
		// publication cost realistic: each eager republication rebuilds
		// O(instances) state, which is exactly what coalescing amortizes.
		tm := &tmpl{eng: ee, scr: scr, warm: make([][]float64, 384)}
		for j := range tm.warm {
			tm.warm[j] = pqotest.RandomSVector(rng, 4)
			if _, err := scr.Process(ctx, tm.warm[j]); err != nil {
				b.Fatal(err)
			}
		}
		tmpls[i] = tm
	}

	// The revalidation churn: advance one template's epoch, drain its
	// revalidation (replacing anchors whose plans the new statistics
	// invalidated — real write sections), move to the next template.
	stop := make(chan struct{})
	var stopped sync.WaitGroup
	stopped.Add(1)
	go func() {
		defer stopped.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			tm := tmpls[i%len(tmpls)]
			tm.eng.Advance()
			run, err := tm.scr.Revalidate(ctx, 2)
			if err != nil {
				b.Error(err)
				return
			}
			select {
			case <-run.Done():
			case <-stop:
				return
			}
		}
	}()

	var gid atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(gid.Add(1)))
		for pb.Next() {
			tm := tmpls[rng.Intn(len(tmpls))]
			var sv []float64
			if rng.Float64() < 0.7 {
				sv = tm.warm[rng.Intn(len(tm.warm))]
			} else {
				sv = pqotest.RandomSVector(rng, 4)
			}
			if _, err := tm.scr.Process(ctx, sv); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.StopTimer()
	close(stop)
	stopped.Wait()
}
