package core

import (
	"fmt"
	"sync"
	"time"
)

// Option configures an SCR built with New. Options validate their inputs
// and return errors instead of silently substituting defaults; an invalid
// option fails New with an error wrapping ErrInvalidConfig.
type Option func(*Config) error

// DefaultLambda is the sub-optimality bound New uses when no WithLambda
// option is given (the λ=2 operating point the paper evaluates most).
const DefaultLambda = 2.0

// New builds an SCR over eng from functional options. It replaces the
// Config-struct constructor NewSCR: every knob is an explicit option with
// validation, and omitted options take the documented defaults (λ=2,
// λr=√λ, cost-check limit 8, insertion scan order, no plan budget, no
// violation detection).
func New(eng Engine, opts ...Option) (*SCR, error) {
	cfg := Config{Lambda: DefaultLambda}
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	return NewSCR(eng, cfg)
}

func optErr(format string, args ...interface{}) error {
	return fmt.Errorf("%w: %s", ErrInvalidConfig, fmt.Sprintf(format, args...))
}

// WithLambda sets the cost sub-optimality bound λ ≥ 1 every processed
// instance must satisfy.
func WithLambda(lambda float64) Option {
	return func(c *Config) error {
		if lambda < 1 {
			return optErr("lambda %v must be >= 1", lambda)
		}
		c.Lambda = lambda
		return nil
	}
}

// WithDynamicLambda enables Appendix D's per-instance λ: cheap instances
// get a bound near max, expensive ones near min, decaying exponentially on
// the refCost scale.
func WithDynamicLambda(min, max, refCost float64) Option {
	return func(c *Config) error {
		if min < 1 || max < min {
			return optErr("dynamic lambda range [%v, %v] invalid", min, max)
		}
		if refCost <= 0 {
			return optErr("dynamic lambda refCost %v must be > 0", refCost)
		}
		c.Dynamic = &DynamicLambda{Min: min, Max: max, RefCost: refCost}
		return nil
	}
}

// WithRedundancyThreshold sets the redundancy-check threshold λr in
// [1, λ] (Appendix E). Without this option λr defaults to √λ.
func WithRedundancyThreshold(lambdaR float64) Option {
	return func(c *Config) error {
		if lambdaR < 1 {
			return optErr("lambdaR %v must be >= 1", lambdaR)
		}
		c.LambdaR = lambdaR
		return nil
	}
}

// WithStoreAlways disables the redundancy check entirely: every newly
// optimized plan is kept (λr = 1).
func WithStoreAlways() Option {
	return func(c *Config) error {
		c.StoreAlways = true
		return nil
	}
}

// WithPlanBudget sets the hard limit k ≥ 1 on cached plans (§6.3.1),
// enforced by LFU eviction. Without this option the cache is unbounded.
func WithPlanBudget(k int) Option {
	return func(c *Config) error {
		if k < 1 {
			return optErr("plan budget %d must be >= 1 (omit the option for unlimited)", k)
		}
		c.PlanBudget = k
		return nil
	}
}

// WithCostCheckLimit bounds the number of Recost calls per getPlan to
// n ≥ 1 (§6.2's pruning heuristic). Without this option the limit is 8.
func WithCostCheckLimit(n int) Option {
	return func(c *Config) error {
		if n < 1 {
			return optErr("cost-check limit %d must be >= 1 (use WithoutCostCheck to disable)", n)
		}
		c.CostCheckLimit = n
		return nil
	}
}

// WithoutCostCheck disables the cost check entirely: instances failing the
// selectivity check go straight to the optimizer.
func WithoutCostCheck() Option {
	return func(c *Config) error {
		c.CostCheckLimit = -1
		return nil
	}
}

// WithGLCutoff rejects cost-check candidates whose G·L factor exceeds
// cutoff > 1.
func WithGLCutoff(cutoff float64) Option {
	return func(c *Config) error {
		if cutoff <= 1 {
			return optErr("GL cutoff %v must be > 1", cutoff)
		}
		c.GLCutoff = cutoff
		return nil
	}
}

// WithCandidateOrderByL sorts cost-check candidates by increasing L
// instead of the paper's increasing G·L (see Config.OrderCandidatesByL).
func WithCandidateOrderByL() Option {
	return func(c *Config) error {
		c.OrderCandidatesByL = true
		return nil
	}
}

// WithScanOrder selects the instance-list traversal order for the
// selectivity check (§6.2's alternatives).
func WithScanOrder(o ScanOrder) Option {
	return func(c *Config) error {
		switch o {
		case ScanInsertion, ScanByArea, ScanByUsage:
			c.Scan = o
		default:
			return optErr("unknown scan order %d", int(o))
		}
		return nil
	}
}

// WithDegradedFallback enables degraded-mode serving: when the optimizer
// is unavailable (error, panic, deadline expiry, open circuit breaker)
// Process serves the cheapest cached plan and flags the Decision as
// Degraded with a DegradedReason, instead of returning an error. Degraded
// decisions explicitly relax the λ guarantee — see docs/ROBUSTNESS.md for
// the full degradation ladder. Context cancellation is never absorbed:
// a cancelled caller still gets an ErrCancelled error.
func WithDegradedFallback() Option {
	return func(c *Config) error {
		c.DegradedFallback = true
		return nil
	}
}

// WithOptimizerDeadline bounds each full optimizer call to d > 0. A call
// exceeding the deadline is abandoned — it keeps running detached and
// still populates the plan cache if it completes — and the waiting
// instance is served degraded (with WithDegradedFallback) or fails with
// ErrOptimizerTimeout.
func WithOptimizerDeadline(d time.Duration) Option {
	return func(c *Config) error {
		if d <= 0 {
			return optErr("optimizer deadline %v must be > 0", d)
		}
		c.OptimizerDeadline = d
		return nil
	}
}

// WithCircuitBreaker arms a circuit breaker on the optimizer: after
// failures >= 1 consecutive optimizer failures/timeouts the breaker opens
// and optimizer calls are skipped for cooldown > 0, after which a single
// half-open probe decides whether to close it again. While open, instances
// that miss the cache are served degraded (with WithDegradedFallback) or
// fail with ErrBreakerOpen.
func WithCircuitBreaker(failures int, cooldown time.Duration) Option {
	return func(c *Config) error {
		if failures < 1 {
			return optErr("breaker threshold %d must be >= 1", failures)
		}
		if cooldown <= 0 {
			return optErr("breaker cooldown %v must be > 0", cooldown)
		}
		c.BreakerThreshold = failures
		c.BreakerCooldown = cooldown
		return nil
	}
}

// WithClusterSkewBound sets how many statistics generations n ≥ 1 the node
// may lag the observed cluster epoch (ObserveClusterEpoch) before Process
// flags every decision as ViaFallback/"epoch-skew". Without this option the
// bound is 1: adjacent generations only, matching the epoch coordinator's
// default withhold rule (docs/ROBUSTNESS.md).
func WithClusterSkewBound(n int) Option {
	return func(c *Config) error {
		if n < 1 {
			return optErr("cluster skew bound %d must be >= 1", n)
		}
		c.SkewBound = n
		return nil
	}
}

// WithViolationDetection enables Appendix G's BCG-violation quarantine
// with the given relative tolerance in (0, 1).
func WithViolationDetection(tolerance float64) Option {
	return func(c *Config) error {
		if tolerance <= 0 || tolerance >= 1 {
			return optErr("violation tolerance %v must be in (0, 1)", tolerance)
		}
		c.DetectViolations = true
		c.ViolationTolerance = tolerance
		return nil
	}
}

// WithSharedWriteLock makes the SCR's write domain acquire mu instead of
// its own per-template mutex, collapsing every SCR built with the same mu
// into one write domain. This deliberately reconstructs the pre-sharding
// single-mutex write path; it exists so benchmarks can measure the
// sharded design against that baseline (scripts/bench_scaling.sh's
// write-heavy sweep). Production callers should never need it.
func WithSharedWriteLock(mu *sync.Mutex) Option {
	return func(c *Config) error {
		if mu == nil {
			return optErr("shared write lock must not be nil")
		}
		c.sharedWriteMu = mu
		return nil
	}
}

// WithEagerPublish disables publication coalescing: every mutation under
// the domain mutex republishes the snapshot immediately instead of
// batching mutations from one critical section into a single publish, and
// each publication pays the retired design's full rebuild (a fresh
// instance-list copy plus a from-scratch selectivity index, with none of
// the incremental merge/reuse the coalescing flush applies). Like
// WithSharedWriteLock this reconstructs the pre-sharding baseline for
// benchmarks; coalescing is strictly cheaper for readers and writers.
func WithEagerPublish() Option {
	return func(c *Config) error {
		c.eagerPublish = true
		return nil
	}
}
