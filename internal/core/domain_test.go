package core

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/pqotest"
	"repro/internal/workload"
)

// TestSweepCoalescesIntoSinglePublication pins the coalescing primitive:
// a sweep that removes k plans marks k publications but flushes exactly
// once, when its critical section ends — readers see the whole sweep as
// one version move, never a half-swept cache.
func TestSweepCoalescesIntoSinglePublication(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	eng, err := pqotest.RandomEngine(rng, 3, 12)
	if err != nil {
		t.Fatal(err)
	}
	s := mustSCR(t, eng, Config{Lambda: 2, StoreAlways: true})
	for i := 0; i < 300; i++ {
		if _, err := s.Process(context.Background(), pqotest.RandomSVector(rng, 3)); err != nil {
			t.Fatal(err)
		}
	}
	before := s.snapshot().version
	stBefore := s.Stats()
	dropped, err := s.SweepRedundantPlans()
	if err != nil {
		t.Fatal(err)
	}
	after := s.snapshot().version
	stAfter := s.Stats()
	if dropped == 0 {
		t.Skip("sweep found nothing to drop; coalescing unexercised under this seed")
	}
	if after != before+1 {
		t.Errorf("sweep dropping %d plans moved version %d -> %d, want exactly one publication", dropped, before, after)
	}
	if got := stAfter.PublishTotal - stBefore.PublishTotal; got != 1 {
		t.Errorf("PublishTotal moved by %d across the sweep, want 1", got)
	}
	if got := stAfter.PublishCoalesced - stBefore.PublishCoalesced; got != int64(dropped)-1 {
		t.Errorf("PublishCoalesced moved by %d across a %d-removal sweep, want %d", got, dropped, dropped-1)
	}
}

// TestImportSinglePublication: the whole import — plan set and instance
// list — lands under one publication.
func TestImportSinglePublication(t *testing.T) {
	eng := realEngine(t)
	src := mustSCR(t, eng, Config{Lambda: 2, StoreAlways: true})
	insts, err := workload.GenerateSet(2, 40, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range insts {
		if _, err := src.Process(context.Background(), q.SV); err != nil {
			t.Fatal(err)
		}
	}
	data, err := src.Export()
	if err != nil {
		t.Fatal(err)
	}
	dst := mustSCR(t, eng, Config{Lambda: 2})
	before := dst.snapshot().version
	if err := dst.Import(data); err != nil {
		t.Fatal(err)
	}
	after := dst.snapshot().version
	if after != before+1 {
		t.Errorf("import moved version %d -> %d, want exactly one publication", before, after)
	}
	if got, want := dst.Stats().CurPlans, src.Stats().CurPlans; got != want {
		t.Errorf("imported %d plans, want %d", got, want)
	}
}

// TestEagerPublishRestoresPerMutationPublication: the benchmark baseline
// knob must bump the version on every mutation again, and the shared
// write lock option must reject nil.
func TestEagerPublishRestoresPerMutationPublication(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	eng, err := pqotest.RandomEngine(rng, 3, 12)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(eng, WithLambda(2), WithStoreAlways(), WithEagerPublish())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		if _, err := s.Process(context.Background(), pqotest.RandomSVector(rng, 3)); err != nil {
			t.Fatal(err)
		}
	}
	before := s.snapshot().version
	stBefore := s.Stats()
	dropped, err := s.SweepRedundantPlans()
	if err != nil {
		t.Fatal(err)
	}
	if dropped < 2 {
		t.Skipf("sweep dropped %d plans; need >= 2 to distinguish eager from coalesced", dropped)
	}
	if after := s.snapshot().version; after != before+int64(dropped) {
		t.Errorf("eager sweep dropping %d moved version %d -> %d, want one publication per removal", dropped, before, after)
	}
	if st := s.Stats(); st.PublishCoalesced != stBefore.PublishCoalesced {
		t.Errorf("eager publication coalesced %d marks, want 0 new", st.PublishCoalesced-stBefore.PublishCoalesced)
	}

	if _, err := New(eng, WithSharedWriteLock(nil)); err == nil {
		t.Error("WithSharedWriteLock(nil) accepted, want error")
	}
}

// TestWriteDomainIsolation: mutating one template's cache must republish
// only that template's snapshot — sibling domains' published pointers
// stay untouched.
func TestWriteDomainIsolation(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	dir := NewDirectory()
	var scrs []*SCR
	for i := 0; i < 3; i++ {
		eng, err := pqotest.RandomEngine(rng, 3, 8)
		if err != nil {
			t.Fatal(err)
		}
		s := mustSCR(t, eng, Config{Lambda: 2})
		if err := dir.Attach(fmt.Sprintf("t%d", i), s); err != nil {
			t.Fatal(err)
		}
		scrs = append(scrs, s)
	}
	idle0 := scrs[0].snapshot()
	idle2 := scrs[2].snapshot()
	for i := 0; i < 50; i++ {
		if _, err := scrs[1].Process(context.Background(), pqotest.RandomSVector(rng, 3)); err != nil {
			t.Fatal(err)
		}
	}
	if scrs[1].snapshot().version <= 1 {
		t.Error("churned domain never published")
	}
	if scrs[0].snapshot() != idle0 || scrs[2].snapshot() != idle2 {
		t.Error("idle domains republished by a sibling's mutations: write domains are not isolated")
	}
	st := dir.Stats()
	if st.Domains != 3 {
		t.Errorf("directory stats report %d domains, want 3", st.Domains)
	}
	if st.PublishTotal == 0 || st.Instances == 0 {
		t.Errorf("directory stats did not aggregate: %+v", st)
	}
}

// TestSnapshotImmutableUnderMultiTemplateChurn generalizes the RCU
// immutability invariant across write domains: concurrent writers churn
// several templates through one Directory while per-template readers
// hold published snapshots across the churn and verify them
// byte-for-byte afterwards. Run under -race: cross-domain interference —
// one domain's writer touching another's published arrays — would also
// surface as a data race here.
func TestSnapshotImmutableUnderMultiTemplateChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	const templates = 3
	dir := NewDirectory()
	scrs := make([]*SCR, templates)
	for i := range scrs {
		eng, err := pqotest.RandomEngine(rng, 3, 10)
		if err != nil {
			t.Fatal(err)
		}
		scrs[i] = mustSCR(t, eng, Config{Lambda: 2, PlanBudget: 4, Scan: ScanByUsage, StoreAlways: true})
		if err := dir.Attach(fmt.Sprintf("t%d", i), scrs[i]); err != nil {
			t.Fatal(err)
		}
	}
	ctx := context.Background()
	for _, s := range scrs {
		for i := 0; i < 8; i++ {
			if _, err := s.Process(ctx, pqotest.RandomSVector(rng, 3)); err != nil {
				t.Fatal(err)
			}
		}
	}

	const (
		writersPer = 2
		perWriter  = 80
		readRounds = 20
	)
	streams := make([][][]float64, templates*writersPer)
	for w := range streams {
		streams[w] = make([][]float64, perWriter)
		for i := range streams[w] {
			streams[w][i] = pqotest.RandomSVector(rng, 3)
		}
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < templates*writersPer; w++ {
		wg.Add(1)
		go func(s *SCR, stream [][]float64) {
			defer wg.Done()
			for i, sv := range stream {
				if _, err := s.Process(ctx, sv); err != nil {
					t.Error(err)
					return
				}
				if i%40 == 39 {
					if _, err := s.SweepRedundantPlans(); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(scrs[w%templates], streams[w])
	}

	var readers sync.WaitGroup
	for ti := 0; ti < templates; ti++ {
		readers.Add(1)
		go func(s *SCR) {
			defer readers.Done()
			for r := 0; r < readRounds; r++ {
				snap := s.snapshot()
				fp := fingerprintSnapshot(snap)
				for s.snapshot().version < fp.version+2 {
					select {
					case <-stop:
						fp.verify(t, snap)
						return
					default:
						runtime.Gosched()
					}
				}
				fp.verify(t, snap)
				if t.Failed() {
					return
				}
			}
		}(scrs[ti])
	}

	wg.Wait()
	close(stop)
	readers.Wait()

	for i, s := range scrs {
		final := s.snapshot()
		if final.version <= 0 {
			t.Fatalf("template %d final version %d, want > 0", i, final.version)
		}
		if len(final.index.keys) != len(final.instances) {
			t.Fatalf("template %d index covers %d entries, instance list has %d",
				i, len(final.index.keys), len(final.instances))
		}
	}
}

// TestDirectoryConsistencyUnderChurn: a reader loading the directory
// snapshot during Attach/Detach churn must never observe a torn
// directory — the name and domain slices always pair up, names stay
// sorted, every pointer is valid, and the version only moves forward.
func TestDirectoryConsistencyUnderChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	eng, err := pqotest.RandomEngine(rng, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	dir := NewDirectory()
	const names = 8
	scrs := make([]*SCR, names)
	for i := range scrs {
		scrs[i] = mustSCR(t, eng, Config{Lambda: 2})
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for round := 0; round < 200; round++ {
			i := round % names
			name := fmt.Sprintf("t%d", i)
			if _, ok := dir.Lookup(name); ok {
				dir.Detach(name)
			} else if err := dir.Attach(name, scrs[i]); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	var lastVersion int64
	for reads := 0; reads < 5000; reads++ {
		snap := dir.snap.Load()
		if len(snap.names) != len(snap.scrs) {
			t.Fatalf("torn directory: %d names, %d domains", len(snap.names), len(snap.scrs))
		}
		if !sort.StringsAreSorted(snap.names) {
			t.Fatalf("directory names unsorted: %v", snap.names)
		}
		for i, s := range snap.scrs {
			if s == nil {
				t.Fatalf("directory entry %q resolves to nil", snap.names[i])
			}
		}
		if snap.version < lastVersion {
			t.Fatalf("directory version moved backwards: %d -> %d", lastVersion, snap.version)
		}
		lastVersion = snap.version
		select {
		case <-stop:
		default:
		}
	}
	wg.Wait()
	close(stop)

	if err := dir.Attach("t0", mustSCR(t, eng, Config{Lambda: 2})); err == nil {
		dir.Detach("t0")
	}
	if _, ok := dir.Lookup("missing"); ok {
		t.Error("Lookup resolved a never-attached name")
	}
	got := dir.Names()
	if len(got) != dir.Len() {
		t.Errorf("Names() returned %d entries, Len() says %d", len(got), dir.Len())
	}
}

// TestDirectoryAttachRejectsDuplicates pins the identity rule: a template
// name binds to one domain for its lifetime.
func TestDirectoryAttachRejectsDuplicates(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	eng, err := pqotest.RandomEngine(rng, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	dir := NewDirectory()
	s := mustSCR(t, eng, Config{Lambda: 2})
	if err := dir.Attach("q1", s); err != nil {
		t.Fatal(err)
	}
	if err := dir.Attach("q1", mustSCR(t, eng, Config{Lambda: 2})); err == nil {
		t.Fatal("duplicate Attach accepted")
	}
	if err := dir.Attach("q2", nil); err == nil {
		t.Fatal("nil Attach accepted")
	}
	if !dir.Detach("q1") {
		t.Fatal("Detach of attached name reported false")
	}
	if dir.Detach("q1") {
		t.Fatal("Detach of detached name reported true")
	}
}

// TestDirectoryRevalidate drives multi-template revalidation through the
// shared pool: every attached epoch-capable domain's lag drains, each
// handle completes, and serving resumes at the new epoch everywhere.
func TestDirectoryRevalidate(t *testing.T) {
	dir := NewDirectory()
	engines := make(map[string]*pqotest.EpochEngine, 3)
	vectors := [][]float64{{0.01, 0.9}, {0.9, 0.01}, {0.05, 0.8}, {0.8, 0.05}}
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("t%d", i)
		s, eng := epochSCR(t)
		if err := dir.Attach(name, s); err != nil {
			t.Fatal(err)
		}
		engines[name] = eng
		for _, sv := range vectors {
			if _, err := s.Process(ctx, sv); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, eng := range engines {
		eng.Advance()
	}
	runs, err := dir.Revalidate(ctx, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 3 {
		t.Fatalf("revalidation covered %d templates, want 3", len(runs))
	}
	deadline, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	for name, r := range runs {
		if err := r.Wait(deadline); err != nil {
			t.Fatalf("template %s: %v", name, err)
		}
		p := r.Progress()
		if !p.Finished || p.Done != p.Total {
			t.Fatalf("template %s run incomplete: %+v", name, p)
		}
	}
	for name := range engines {
		s, ok := dir.Lookup(name)
		if !ok {
			t.Fatalf("template %s detached itself", name)
		}
		if lag := s.Stats().LaggingInstances; lag != 0 {
			t.Errorf("template %s still lags %d instances after revalidation", name, lag)
		}
	}
}
