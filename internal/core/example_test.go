package core_test

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/pqotest"
)

// Example demonstrates SCR over a synthetic two-plan engine: the first
// instance optimizes, a near-identical one is served by the selectivity
// check, and a far-away one triggers the optimizer again.
func Example() {
	eng, err := pqotest.NewEngine(2, []pqotest.PlanSpec{
		{Name: "indexish", Const: 1, Linear: []float64{5, 200}},
		{Name: "scanish", Const: 40, Linear: []float64{1, 1}},
	})
	if err != nil {
		panic(err)
	}
	scr, err := core.NewSCR(eng, core.Config{Lambda: 2})
	if err != nil {
		panic(err)
	}
	for _, sv := range [][]float64{
		{0.01, 0.01},   // first: optimizer
		{0.011, 0.009}, // near the first: selectivity check
		{0.9, 0.9},     // different region: optimizer
	} {
		dec, err := scr.Process(context.Background(), sv)
		if err != nil {
			panic(err)
		}
		fmt.Println(dec.Via)
	}
	st := scr.Stats()
	fmt.Printf("numOpt=%d plans=%d\n", st.OptCalls, st.CurPlans)
	// Output:
	// optimizer
	// selectivity-check
	// optimizer
	// numOpt=2 plans=2
}

// ExampleGLFactors shows the §5.3 selectivity factors: one dimension grows
// 3x (contributing to G), the other shrinks 2x (contributing to L).
func ExampleGLFactors() {
	g, l, err := core.GLFactors([]float64{0.1, 0.4}, []float64{0.3, 0.2})
	if err != nil {
		panic(err)
	}
	fmt.Printf("G=%.0f L=%.0f SubOpt bound=%.0f\n", g, l, g*l)
	// Output:
	// G=3 L=2 SubOpt bound=6
}

// ExampleLambdaAdvisor shows §6.2's λ-choosing procedure: observe the
// optimization-overhead-to-execution-cost ratio of a warm-up phase, then
// take the recommendation.
func ExampleLambdaAdvisor() {
	var adv core.LambdaAdvisor
	// Warm-up observations: optimization costs ~60% of execution.
	for i := 0; i < 5; i++ {
		if err := adv.Observe(300, 500); err != nil {
			panic(err)
		}
	}
	lambda, err := adv.Recommend()
	if err != nil {
		panic(err)
	}
	fmt.Printf("recommended λ = %.2f\n", lambda)
	// Output:
	// recommended λ = 1.79
}
