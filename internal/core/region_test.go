package core

import (
	"math"
	"math/rand"
	"testing"
)

// TestRegionAreaFormulaMonteCarlo validates the closed-form area of the 2-d
// selectivity-based λ-optimal region (§5.3): the region {q : G·L ≤ λ}
// around an instance (s1, s2) has area (λ − 1/λ)·ln λ · s1·s2. We estimate
// the area by Monte Carlo over the bounding box implied by the region
// geometry (s1/λ ≤ x ≤ s1·λ, same for y) and compare.
func TestRegionAreaFormulaMonteCarlo(t *testing.T) {
	rng := rand.New(rand.NewSource(2017))
	cases := []struct {
		lambda, s1, s2 float64
	}{
		{2.0, 0.3, 0.4},
		{1.5, 0.1, 0.1},
		{1.1, 0.5, 0.2},
		{3.0, 0.05, 0.25},
	}
	const samples = 400000
	for _, tc := range cases {
		// Bounding box of the region.
		x0, x1 := tc.s1/tc.lambda, tc.s1*tc.lambda
		y0, y1 := tc.s2/tc.lambda, tc.s2*tc.lambda
		boxArea := (x1 - x0) * (y1 - y0)
		in := 0
		for i := 0; i < samples; i++ {
			x := x0 + rng.Float64()*(x1-x0)
			y := y0 + rng.Float64()*(y1-y0)
			g, l, err := GLFactors([]float64{tc.s1, tc.s2}, []float64{x, y})
			if err != nil {
				t.Fatal(err)
			}
			if g*l <= tc.lambda {
				in++
			}
		}
		got := boxArea * float64(in) / samples
		want := SelectivityRegionArea(tc.lambda, tc.s1, tc.s2)
		if rel := math.Abs(got-want) / want; rel > 0.03 {
			t.Errorf("λ=%v s=(%v,%v): Monte Carlo area %v vs formula %v (rel err %.1f%%)",
				tc.lambda, tc.s1, tc.s2, got, want, rel*100)
		}
	}
}

// TestRegionGeometryBoundaries spot-checks the §5.3 boundary curves: the
// region is bounded by the lines y = s2·λ/s1·x, y = s2/(s1·λ)·x and the
// hyperbolas y = s1·s2/λ/x, y = s1·s2·λ/x. Points just inside each curve
// satisfy G·L ≤ λ; points just outside do not.
func TestRegionGeometryBoundaries(t *testing.T) {
	lambda := 2.0
	s1, s2 := 0.2, 0.3
	check := func(x, y float64, wantInside bool, what string) {
		t.Helper()
		g, l, err := GLFactors([]float64{s1, s2}, []float64{x, y})
		if err != nil {
			t.Fatal(err)
		}
		inside := g*l <= lambda
		if inside != wantInside {
			t.Errorf("%s: point (%v,%v) inside=%v, want %v (GL=%v)", what, x, y, inside, wantInside, g*l)
		}
	}
	eps := 1e-6
	// Along the ray x = s1·t, y = s2·t (both scaled equally): GL = t on one
	// side, 1/t... for t>1: G = t², L = 1 → need t² ≤ λ.
	tMax := math.Sqrt(lambda)
	check(s1*(tMax-eps), s2*(tMax-eps), true, "diagonal inside")
	check(s1*(tMax+1e-3), s2*(tMax+1e-3), false, "diagonal outside")
	// Along the hyperbola x·y = s1·s2 (one up by α, the other down by α):
	// G = α, L = α → GL = α² ≤ λ.
	alpha := math.Sqrt(lambda)
	check(s1*(alpha-1e-3), s2/(alpha-1e-3), true, "hyperbola inside")
	check(s1*(alpha+1e-3), s2/(alpha+1e-3), false, "hyperbola outside")
	// One-dimensional moves: x scaled by λ exactly is on the boundary.
	check(s1*(lambda-1e-3), s2, true, "axis inside")
	check(s1*(lambda+1e-3), s2, false, "axis outside")
}

// TestRecostRegionSupersetOfSelectivityRegion: every point that passes the
// selectivity check would also pass the cost check against a BCG-compliant
// engine (the recost-based region contains the selectivity-based one, as
// drawn in Figure 4).
func TestRecostRegionSupersetOfSelectivityRegion(t *testing.T) {
	// Multilinear cost: Cost = 10 + 50x + 80y (BCG-exact).
	cost := func(sv []float64) float64 { return 10 + 50*sv[0] + 80*sv[1] }
	lambda := 2.0
	anchor := []float64{0.2, 0.3}
	cAnchor := cost(anchor)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 5000; i++ {
		q := []float64{rng.Float64()*0.9 + 1e-4, rng.Float64()*0.9 + 1e-4}
		g, l, err := GLFactors(anchor, q)
		if err != nil {
			t.Fatal(err)
		}
		if g*l > lambda {
			continue // outside the selectivity region
		}
		r := cost(q) / cAnchor
		if r*l > lambda*(1+1e-12) {
			t.Fatalf("point %v passes selectivity check (GL=%v) but fails cost check (RL=%v)",
				q, g*l, r*l)
		}
	}
}
