package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/engine"
)

// This file is the degraded-mode half of SCR's resilience layer
// (docs/ROBUSTNESS.md): when the optimizer is unavailable — slow past its
// deadline, erroring, panicking, or gated by the circuit breaker — the
// instance is served from the cheapest cached plan with the Decision
// explicitly flagged Degraded, instead of turning the fault into a caller
// error. The λ guarantee is relaxed, never silently: every degraded
// decision carries its DegradedReason and is counted in Stats.

// degradeReason classifies the failure err into the DegradedReason the
// fallback decision will carry.
func degradeReason(err error) DegradedReason {
	switch {
	case errors.Is(err, ErrBreakerOpen):
		return DegradedBreakerOpen
	case errors.Is(err, ErrOptimizerTimeout):
		return DegradedOptimizerTimeout
	case errors.Is(err, ErrOptimizerPanic):
		return DegradedOptimizerPanic
	default:
		return DegradedOptimizerError
	}
}

// snapshotPlans returns the published plan list, already in fingerprint
// order (deterministic fallback choice). The slice belongs to the
// immutable snapshot: read it, never mutate it.
func (s *SCR) snapshotPlans() []*planEntry {
	return s.snapshot().plans
}

// degrade serves sv without a λ guarantee: it recosts every cached plan
// and returns the cheapest as a Degraded decision. Plans whose recost
// fails (or panics) are skipped; if no plan can be ranked the first plan
// in fingerprint order is served anyway — in production, a flagged
// possibly-λ-violating plan beats an error. Cancellation is never
// absorbed, and an empty cache cannot degrade: both return errors.
func (s *SCR) degrade(sv []float64, reason DegradedReason, cause error) (*Decision, error) {
	if errors.Is(cause, ErrCancelled) {
		return nil, cause
	}
	pes := s.snapshotPlans()
	if len(pes) == 0 {
		return nil, fmt.Errorf("%w (cause: %w)", ErrUnavailable, cause)
	}
	best := s.rankFallback(pes, sv)
	if best == nil {
		// Recosting is failing too (ladder step: cached-min-cost without
		// ranking). Deterministic last resort: lowest fingerprint.
		best = pes[0]
	}
	s.ctr.degraded.Add(1)
	return &Decision{
		Plan:           best.cp,
		Via:            ViaFallback,
		Degraded:       true,
		DegradedReason: reason,
		Epoch:          s.statsEpoch(),
	}, nil
}

// rankFallback returns the cached plan with the lowest recost at sv, or
// nil when every recost failed. Panics from a faulty engine are contained
// here — degrade must never re-panic out of Process's recovery path.
func (s *SCR) rankFallback(pes []*planEntry, sv []float64) (best *planEntry) {
	defer func() {
		if recover() != nil {
			best = nil
		}
	}()
	pi := s.prepareRecost(sv)
	defer pi.Release()
	bestCost := 0.0
	for _, pe := range pes {
		c, err := s.safeRecost(pi, pe.cp, sv)
		if err != nil {
			continue
		}
		if best == nil || c < bestCost {
			best, bestCost = pe, c
		}
	}
	return best
}

// safeRecost is recostWith with panic containment.
func (s *SCR) safeRecost(pi *engine.PreparedInstance, cp *engine.CachedPlan, sv []float64) (c float64, err error) {
	defer func() {
		if r := recover(); r != nil {
			c, err = 0, fmt.Errorf("pqo: recost panicked: %v", r)
		}
	}()
	return s.recostWith(pi, cp, sv)
}

// optResult carries one optimizer call's outcome across the deadline
// boundary.
type optResult struct {
	cp    *engine.CachedPlan
	cost  float64
	epoch uint64
	err   error
}

// callOptimizer runs the full optimizer call through the resilience
// layer: the circuit breaker gates it, the optional deadline bounds it,
// and panics become ErrOptimizerPanic. When none of the resilience knobs
// are configured this is exactly the bare engine call — the existing fast
// path. The returned epoch is the statistics generation the search ran
// under (0 for epoch-less engines). The background revalidator funnels
// its optimizer calls through here too, so it honors the same breaker and
// fault-injection sites as foreground traffic.
func (s *SCR) callOptimizer(ctx context.Context, sv []float64) (*engine.CachedPlan, float64, uint64, error) {
	if s.breaker == nil && s.cfg.OptimizerDeadline <= 0 && !s.cfg.DegradedFallback {
		return s.engOptimize(sv)
	}
	if !s.breaker.Allow() {
		return nil, 0, 0, fmt.Errorf("%w: optimizer calls suspended", ErrBreakerOpen)
	}
	cp, cost, epoch, err := s.optimizeBounded(ctx, sv)
	switch {
	case err == nil:
		s.breaker.RecordSuccess()
	case errors.Is(err, ErrCancelled):
		// The caller went away; that says nothing about optimizer health.
		s.breaker.RecordCancel()
	default:
		s.breaker.RecordFailure()
	}
	return cp, cost, epoch, err
}

// engOptimize is the bare engine call, epoch-reporting when the engine
// supports it.
func (s *SCR) engOptimize(sv []float64) (*engine.CachedPlan, float64, uint64, error) {
	if s.epochEng != nil {
		return s.epochEng.OptimizeEpoch(sv)
	}
	cp, cost, err := s.eng.Optimize(sv)
	return cp, cost, 0, err
}

// optimizeBounded runs Optimize under the configured deadline. Without a
// deadline it is a panic-contained direct call. With one, the call runs in
// a goroutine: if the deadline (or the caller's context) expires first the
// call is abandoned — but left running, and its result is adopted into the
// cache on completion, so a slow optimizer still warms the cache for
// future instances.
func (s *SCR) optimizeBounded(ctx context.Context, sv []float64) (*engine.CachedPlan, float64, uint64, error) {
	d := s.cfg.OptimizerDeadline
	if d <= 0 {
		return s.safeOptimize(sv)
	}
	// The caller owns sv and may reuse it once Process returns; the
	// detached call needs its own copy.
	svc := make([]float64, len(sv))
	copy(svc, sv)
	ch := make(chan optResult, 1)
	go func() {
		var r optResult
		r.cp, r.cost, r.epoch, r.err = s.safeOptimize(svc)
		ch <- r
	}()
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case r := <-ch:
		return r.cp, r.cost, r.epoch, r.err
	case <-timer.C:
		go s.adoptLateResult(svc, ch)
		return nil, 0, 0, fmt.Errorf("%w (budget %v)", ErrOptimizerTimeout, d)
	case <-ctx.Done():
		go s.adoptLateResult(svc, ch)
		return nil, 0, 0, cancelled(ctx.Err())
	}
}

// safeOptimize is the bare optimizer call with panic containment.
func (s *SCR) safeOptimize(sv []float64) (cp *engine.CachedPlan, cost float64, epoch uint64, err error) {
	defer func() {
		if r := recover(); r != nil {
			cp, cost, epoch, err = nil, 0, 0, fmt.Errorf("%w: %v", ErrOptimizerPanic, r)
		}
	}()
	return s.engOptimize(sv)
}

// adoptLateResult waits for an abandoned optimizer call and, if it
// eventually succeeded, stores its plan so the stall still warms the
// cache.
func (s *SCR) adoptLateResult(sv []float64, ch <-chan optResult) {
	r := <-ch
	if r.err != nil || r.cp == nil {
		return
	}
	s.ctr.optCalls.Add(1)
	if err := s.storePlan(sv, r.cp, r.cost, r.epoch); err != nil {
		_ = err // cache bookkeeping failed; nothing is waiting on this call
	}
}
