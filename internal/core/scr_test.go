package core

import (
	"context"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/pqotest"
)

// twoPlaneEngine builds a deterministic 2-d engine with two plans whose
// optimality regions split the space: plan A is cheap in dimension 0, plan
// B cheap in dimension 1.
func twoPlaneEngine(t *testing.T) *pqotest.Engine {
	t.Helper()
	eng, err := pqotest.NewEngine(2, []pqotest.PlanSpec{
		{Name: "A", Const: 1, Linear: []float64{2, 100}},
		{Name: "B", Const: 1, Linear: []float64{100, 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func mustSCR(t *testing.T, eng Engine, cfg Config) *SCR {
	t.Helper()
	s, err := NewSCR(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestConfigValidation(t *testing.T) {
	eng := twoPlaneEngine(t)
	bad := []Config{
		{Lambda: 0.5},
		{Lambda: 2, LambdaR: 0.5},
		{Lambda: 2, LambdaR: 3},
		{Lambda: 2, PlanBudget: -1},
		{Lambda: 2, Dynamic: &DynamicLambda{Min: 0.5, Max: 2}},
		{Lambda: 2, Dynamic: &DynamicLambda{Min: 3, Max: 2}},
	}
	for i, cfg := range bad {
		if _, err := NewSCR(eng, cfg); err == nil {
			t.Errorf("config %d (%+v) should be rejected", i, cfg)
		}
	}
	if _, err := NewSCR(eng, Config{Lambda: 1}); err != nil {
		t.Errorf("λ=1 must be accepted: %v", err)
	}
}

func TestFirstInstanceOptimizes(t *testing.T) {
	eng := twoPlaneEngine(t)
	s := mustSCR(t, eng, Config{Lambda: 2})
	dec, err := s.Process(context.Background(), []float64{0.01, 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Optimized || dec.Via != ViaOptimizer {
		t.Errorf("first instance must optimize, got %+v", dec)
	}
	st := s.Stats()
	if st.OptCalls != 1 || st.Instances != 1 || st.MaxPlans != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestSelectivityCheckReuse(t *testing.T) {
	eng := twoPlaneEngine(t)
	s := mustSCR(t, eng, Config{Lambda: 2})
	if _, err := s.Process(context.Background(), []float64{0.01, 0.01}); err != nil {
		t.Fatal(err)
	}
	// A nearly identical instance has G·L ≈ 1 ≤ λ: must pass the
	// selectivity check without an optimizer call or a recost.
	dec, err := s.Process(context.Background(), []float64{0.0101, 0.0099})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Optimized || dec.Via != ViaSelectivity {
		t.Errorf("expected selectivity-check reuse, got via=%v optimized=%v", dec.Via, dec.Optimized)
	}
	st := s.Stats()
	if st.OptCalls != 1 {
		t.Errorf("numOpt = %d, want 1", st.OptCalls)
	}
	if st.GetPlanRecosts != 0 {
		t.Errorf("selectivity check must not recost; got %d recosts", st.GetPlanRecosts)
	}
}

func TestCostCheckReuse(t *testing.T) {
	// Plan A's cost is nearly flat in dimension 0 beyond the Const term, so
	// moving far along dimension 1 downwards (L large) fails the
	// selectivity check but the actual recost ratio R stays small.
	eng, err := pqotest.NewEngine(2, []pqotest.PlanSpec{
		{Name: "A", Const: 100, Linear: []float64{1, 1}},
		{Name: "B", Const: 5000, Linear: []float64{1, 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := mustSCR(t, eng, Config{Lambda: 1.5})
	if _, err := s.Process(context.Background(), []float64{0.9, 0.9}); err != nil {
		t.Fatal(err)
	}
	// qc = (0.9, 0.001): L = 900, G = 1 → G·L = 900 >> λ: selectivity
	// check fails. But R ≈ 100/101 and the optimal cost can't be much
	// below 100 (both plans have Const ≥ 100)... Actually the check is
	// R·L ≤ λ/S which is also huge. The cost check bound uses L on the
	// denominator, so this reuse legitimately fails and SCR must optimize.
	dec, err := s.Process(context.Background(), []float64{0.9, 0.001})
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Optimized {
		t.Fatalf("expected optimizer call (cost check is conservative), got %v", dec.Via)
	}
	// Now move *upwards* in dimension 1 from the first instance: G large,
	// L = 1. Selectivity check: G·L = G may exceed λ, but R = actual
	// growth is tiny because Const dominates → cost check passes.
	s2 := mustSCR(t, eng, Config{Lambda: 1.5})
	if _, err := s2.Process(context.Background(), []float64{0.9, 0.001}); err != nil {
		t.Fatal(err)
	}
	dec2, err := s2.Process(context.Background(), []float64{0.9, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if dec2.Optimized || dec2.Via != ViaCost {
		t.Errorf("expected cost-check reuse (R small, L=1), got via=%v optimized=%v",
			dec2.Via, dec2.Optimized)
	}
	if st := s2.Stats(); st.GetPlanRecosts == 0 {
		t.Error("cost check must have recosted")
	}
}

// TestGuaranteeProperty is the central invariant: against a BCG-compliant
// engine, every instance SCR processes satisfies SO(q) ≤ λ.
func TestGuaranteeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, lambda := range []float64{1.1, 1.5, 2.0} {
		for trial := 0; trial < 5; trial++ {
			d := 2 + rng.Intn(3)
			eng, err := pqotest.RandomEngine(rng, d, 6+rng.Intn(6))
			if err != nil {
				t.Fatal(err)
			}
			s := mustSCR(t, eng, Config{Lambda: lambda})
			for i := 0; i < 300; i++ {
				sv := pqotest.RandomSVector(rng, d)
				dec, err := s.Process(context.Background(), sv)
				if err != nil {
					t.Fatal(err)
				}
				so := eng.PlanCost(dec.Plan, sv) / eng.OptimalCost(sv)
				if so > lambda*(1+1e-9) {
					t.Fatalf("λ=%v d=%d trial=%d instance=%d: SO=%v exceeds λ (via %v)",
						lambda, d, trial, i, so, dec.Via)
				}
			}
		}
	}
}

func TestGuaranteeHoldsUnderPlanBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	eng, err := pqotest.RandomEngine(rng, 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	s := mustSCR(t, eng, Config{Lambda: 2, PlanBudget: 2})
	for i := 0; i < 400; i++ {
		sv := pqotest.RandomSVector(rng, 3)
		dec, err := s.Process(context.Background(), sv)
		if err != nil {
			t.Fatal(err)
		}
		so := eng.PlanCost(dec.Plan, sv) / eng.OptimalCost(sv)
		if so > 2*(1+1e-9) {
			t.Fatalf("budget k=2 instance %d: SO=%v exceeds λ=2", i, so)
		}
		if st := s.Stats(); st.CurPlans > 2 {
			t.Fatalf("plan budget violated: %d plans cached", st.CurPlans)
		}
	}
	if st := s.Stats(); st.Evictions == 0 {
		t.Error("expected at least one eviction with k=2 over 10 plans")
	}
}

func TestRedundancyCheckReducesPlans(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	eng1, err := pqotest.RandomEngine(rng, 3, 12)
	if err != nil {
		t.Fatal(err)
	}
	// Same engine contents for the second run.
	rng2 := rand.New(rand.NewSource(13))
	eng2, err := pqotest.RandomEngine(rng2, 3, 12)
	if err != nil {
		t.Fatal(err)
	}
	withRC := mustSCR(t, eng1, Config{Lambda: 2}) // λr = √2
	storeAll := mustSCR(t, eng2, Config{Lambda: 2, StoreAlways: true})
	seqRng := rand.New(rand.NewSource(99))
	svs := make([][]float64, 500)
	for i := range svs {
		svs[i] = pqotest.RandomSVector(seqRng, 3)
	}
	for _, sv := range svs {
		if _, err := withRC.Process(context.Background(), sv); err != nil {
			t.Fatal(err)
		}
		if _, err := storeAll.Process(context.Background(), sv); err != nil {
			t.Fatal(err)
		}
	}
	a, b := withRC.Stats(), storeAll.Stats()
	if a.MaxPlans > b.MaxPlans {
		t.Errorf("redundancy check stored more plans (%d) than store-always (%d)", a.MaxPlans, b.MaxPlans)
	}
	if a.RedundantPlansRejected == 0 {
		t.Error("expected some redundant plans to be rejected")
	}
	if b.RedundantPlansRejected != 0 {
		t.Error("store-always must not reject plans")
	}
}

func TestCostCheckLimitBoundsRecosts(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	eng, err := pqotest.RandomEngine(rng, 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	limit := 3
	s := mustSCR(t, eng, Config{Lambda: 1.1, CostCheckLimit: limit, StoreAlways: true})
	maxPerCall := int64(0)
	var prev int64
	for i := 0; i < 200; i++ {
		sv := pqotest.RandomSVector(rng, 3)
		if _, err := s.Process(context.Background(), sv); err != nil {
			t.Fatal(err)
		}
		st := s.Stats()
		if delta := st.GetPlanRecosts - prev; delta > maxPerCall {
			maxPerCall = delta
		}
		prev = st.GetPlanRecosts
	}
	if maxPerCall > int64(limit) {
		t.Errorf("a getPlan call made %d recosts, limit is %d", maxPerCall, limit)
	}
}

func TestCostCheckDisabled(t *testing.T) {
	eng := twoPlaneEngine(t)
	s := mustSCR(t, eng, Config{Lambda: 2, CostCheckLimit: -1})
	if _, err := s.Process(context.Background(), []float64{0.5, 0.5}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Process(context.Background(), []float64{0.001, 0.001}); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.GetPlanRecosts != 0 {
		t.Errorf("cost check disabled but %d recosts happened", st.GetPlanRecosts)
	}
}

func TestDynamicLambdaLoosensCheapInstances(t *testing.T) {
	// With dynamic λ, a cheap instance (cost << RefCost) gets λ close to
	// Max; an expensive one (cost >> RefCost) gets λ close to Min.
	cfg := Config{Lambda: 1.1, Dynamic: &DynamicLambda{Min: 1.1, Max: 10, RefCost: 100}}
	if got := cfg.lambdaFor(0.01); math.Abs(got-10) > 0.01 {
		t.Errorf("λ(cheap) = %v, want ~10", got)
	}
	if got := cfg.lambdaFor(100000); math.Abs(got-1.1) > 0.01 {
		t.Errorf("λ(expensive) = %v, want ~1.1", got)
	}
	// End-to-end: dynamic λ must not increase optimizer calls relative to
	// static λmin.
	rng := rand.New(rand.NewSource(23))
	engDyn, err := pqotest.RandomEngine(rng, 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	rng2 := rand.New(rand.NewSource(23))
	engStat, err := pqotest.RandomEngine(rng2, 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	dyn := mustSCR(t, engDyn, Config{Lambda: 1.1,
		Dynamic: &DynamicLambda{Min: 1.1, Max: 10, RefCost: 50}})
	stat := mustSCR(t, engStat, Config{Lambda: 1.1})
	seq := rand.New(rand.NewSource(31))
	for i := 0; i < 400; i++ {
		sv := pqotest.RandomSVector(seq, 3)
		if _, err := dyn.Process(context.Background(), sv); err != nil {
			t.Fatal(err)
		}
		if _, err := stat.Process(context.Background(), sv); err != nil {
			t.Fatal(err)
		}
	}
	if dyn.Stats().OptCalls > stat.Stats().OptCalls {
		t.Errorf("dynamic λ made more optimizer calls (%d) than static λmin (%d)",
			dyn.Stats().OptCalls, stat.Stats().OptCalls)
	}
	if !strings.Contains(dyn.Name(), "dyn") {
		t.Errorf("dynamic SCR name = %q", dyn.Name())
	}
}

func TestViolationDetectionQuarantines(t *testing.T) {
	// Plan A has a cost jump in dimension 0 beyond 0.5 — a BCG violation.
	eng, err := pqotest.NewEngine(2, []pqotest.PlanSpec{
		{Name: "jumpy", Const: 10, Linear: []float64{1, 1}, JumpDim: 0, JumpAt: 0.5, JumpAmount: 1e6},
		{Name: "flat", Const: 100000, Linear: []float64{1, 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// λ tight enough that G·L = 1.5 fails the selectivity check and the
	// instance reaches the cost check, where the jump is observable.
	s := mustSCR(t, eng, Config{Lambda: 1.2, DetectViolations: true})
	if _, err := s.Process(context.Background(), []float64{0.4, 0.4}); err != nil {
		t.Fatal(err)
	}
	// Crossing the jump: the recost ratio exceeds G → quarantine.
	if _, err := s.Process(context.Background(), []float64{0.6, 0.4}); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Violations == 0 {
		t.Error("expected a BCG violation to be detected")
	}
}

func TestSweepRedundantPlans(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	eng, err := pqotest.RandomEngine(rng, 3, 12)
	if err != nil {
		t.Fatal(err)
	}
	// Store-always accumulates redundant plans; the Appendix F sweep should
	// then find some to drop.
	s := mustSCR(t, eng, Config{Lambda: 2, StoreAlways: true})
	for i := 0; i < 300; i++ {
		if _, err := s.Process(context.Background(), pqotest.RandomSVector(rng, 3)); err != nil {
			t.Fatal(err)
		}
	}
	before := s.Stats().CurPlans
	dropped, err := s.SweepRedundantPlans()
	if err != nil {
		t.Fatal(err)
	}
	after := s.Stats().CurPlans
	if after != before-dropped {
		t.Errorf("plans %d -> %d but dropped=%d", before, after, dropped)
	}
	// The guarantee must survive the sweep.
	for i := 0; i < 200; i++ {
		sv := pqotest.RandomSVector(rng, 3)
		dec, err := s.Process(context.Background(), sv)
		if err != nil {
			t.Fatal(err)
		}
		so := eng.PlanCost(dec.Plan, sv) / eng.OptimalCost(sv)
		if so > 2*(1+1e-9) {
			t.Fatalf("post-sweep SO=%v exceeds λ=2", so)
		}
	}
}

func TestSCRSavesOptimizerCallsOnClusteredWorkload(t *testing.T) {
	// Instances drawn from a few tight clusters: after warm-up, nearly all
	// should be served from the cache.
	rng := rand.New(rand.NewSource(43))
	eng, err := pqotest.RandomEngine(rng, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	s := mustSCR(t, eng, Config{Lambda: 2})
	centers := [][]float64{{0.001, 0.002}, {0.3, 0.4}, {0.05, 0.9}}
	n := 300
	for i := 0; i < n; i++ {
		c := centers[i%len(centers)]
		sv := []float64{
			math.Min(1, c[0]*(0.95+0.1*rng.Float64())),
			math.Min(1, c[1]*(0.95+0.1*rng.Float64())),
		}
		if _, err := s.Process(context.Background(), sv); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if frac := float64(st.OptCalls) / float64(n); frac > 0.1 {
		t.Errorf("numOpt fraction = %v, want <= 0.1 on clustered workload", frac)
	}
}

func TestNumInstancesTracksOptimizedOnly(t *testing.T) {
	eng := twoPlaneEngine(t)
	s := mustSCR(t, eng, Config{Lambda: 2})
	if _, err := s.Process(context.Background(), []float64{0.01, 0.01}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := s.Process(context.Background(), []float64{0.01, 0.01}); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.NumInstances(); got != 1 {
		t.Errorf("NumInstances = %d, want 1 (only optimized instances stored)", got)
	}
}

func TestStatsMemoryAccounting(t *testing.T) {
	eng := twoPlaneEngine(t)
	s := mustSCR(t, eng, Config{Lambda: 1, StoreAlways: true})
	if _, err := s.Process(context.Background(), []float64{0.001, 0.9}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Process(context.Background(), []float64{0.9, 0.001}); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.MemoryBytes <= 0 {
		t.Error("memory accounting must be positive with cached plans")
	}
	if st.CurPlans != 2 {
		t.Errorf("CurPlans = %d, want 2 (opposite corners need both plans)", st.CurPlans)
	}
}

func TestSeedInstanceValidation(t *testing.T) {
	eng := twoPlaneEngine(t)
	s := mustSCR(t, eng, Config{Lambda: 2})
	cp, c, err := eng.Optimize([]float64{0.01, 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SeedInstance([]float64{0.01, 0.01}, nil, c, 1); err == nil {
		t.Error("nil plan should fail")
	}
	if err := s.SeedInstance([]float64{0.01}, cp, c, 1); err == nil {
		t.Error("wrong dims should fail")
	}
	if err := s.SeedInstance([]float64{0.01, 0.01}, cp, 0, 1); err == nil {
		t.Error("zero optCost should fail")
	}
	if err := s.SeedInstance([]float64{0.01, 0.01}, cp, c, 0.5); err == nil {
		t.Error("subOpt < 1 should fail")
	}
	if err := s.SeedInstance([]float64{0.01, 0.01}, cp, c, 1); err != nil {
		t.Fatalf("valid seed rejected: %v", err)
	}
	if s.Stats().CurPlans != 1 || s.NumInstances() != 1 {
		t.Errorf("seed not recorded: %+v", s.Stats())
	}
	// Budget enforcement on seeding.
	s2 := mustSCR(t, eng, Config{Lambda: 2, PlanBudget: 1})
	if err := s2.SeedInstance([]float64{0.01, 0.01}, cp, c, 1); err != nil {
		t.Fatal(err)
	}
	other, c2, err := eng.Optimize([]float64{0.9, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if other.Fingerprint() == cp.Fingerprint() {
		t.Skip("engine produced one plan; budget path not exercisable")
	}
	if err := s2.SeedInstance([]float64{0.9, 0.9}, other, c2, 1); err == nil {
		t.Error("over-budget seed should fail")
	}
}

func TestSeededGuaranteeHolds(t *testing.T) {
	// Seeding with true sub-optimality bounds must preserve SO ≤ λ.
	rng := rand.New(rand.NewSource(31))
	eng, err := pqotest.RandomEngine(rng, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	s := mustSCR(t, eng, Config{Lambda: 2})
	// Offline phase: probe a grid, seed each point's optimal plan.
	for _, x := range []float64{0.001, 0.01, 0.1, 0.5} {
		for _, y := range []float64{0.001, 0.01, 0.1, 0.5} {
			sv := []float64{x, y}
			cp, c, err := eng.Optimize(sv)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.SeedInstance(sv, cp, c, 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := 0; i < 300; i++ {
		sv := pqotest.RandomSVector(rng, 2)
		dec, err := s.Process(context.Background(), sv)
		if err != nil {
			t.Fatal(err)
		}
		so := eng.PlanCost(dec.Plan, sv) / eng.OptimalCost(sv)
		if so > 2*(1+1e-9) {
			t.Fatalf("seeded cache instance %d: SO=%v exceeds λ=2 (via %v)", i, so, dec.Via)
		}
	}
	// Seeding should have saved optimizer calls vs a cold run.
	if frac := float64(s.Stats().OptCalls) / 300; frac > 0.5 {
		t.Errorf("seeded SCR still optimized %.0f%% of instances", frac*100)
	}
}
