package core

// ScanOrder selects how getPlan's selectivity check traverses the instance
// list. §6.2 suggests the alternatives: scanning instances with larger
// selectivity regions or higher usage counts first makes the first
// successful selectivity check come sooner, shrinking the average scan
// length.
type ScanOrder int

const (
	// ScanInsertion keeps instances in arrival order (the default).
	ScanInsertion ScanOrder = iota
	// ScanByArea orders by decreasing selectivity-region area — a function
	// of the instance's selectivities and λ (§5.3's area formula,
	// generalized to d dimensions as the product of selectivities).
	ScanByArea
	// ScanByUsage orders by decreasing usage count U (LFU-style: hot
	// instances first).
	ScanByUsage
)

// String names the scan order.
func (o ScanOrder) String() string {
	switch o {
	case ScanInsertion:
		return "insertion"
	case ScanByArea:
		return "by-area"
	case ScanByUsage:
		return "by-usage"
	default:
		return "scan-order(?)"
	}
}

// regionWeight is the area-ordering key: the region area formula's
// selectivity-dependent factor ∏ si (the λ factor is shared by all
// entries, so it does not affect the ordering).
func regionWeight(sv []float64) float64 {
	w := 1.0
	for _, s := range sv {
		w *= s
	}
	return w
}

// resortEvery is the number of instance-list insertions between re-sorts
// (writeDomain.resortInstances in domain.go re-orders the master list
// copy-on-write under the domain mutex).
const resortEvery = 32
