package core

import "sort"

// ScanOrder selects how getPlan's selectivity check traverses the instance
// list. §6.2 suggests the alternatives: scanning instances with larger
// selectivity regions or higher usage counts first makes the first
// successful selectivity check come sooner, shrinking the average scan
// length.
type ScanOrder int

const (
	// ScanInsertion keeps instances in arrival order (the default).
	ScanInsertion ScanOrder = iota
	// ScanByArea orders by decreasing selectivity-region area — a function
	// of the instance's selectivities and λ (§5.3's area formula,
	// generalized to d dimensions as the product of selectivities).
	ScanByArea
	// ScanByUsage orders by decreasing usage count U (LFU-style: hot
	// instances first).
	ScanByUsage
)

// String names the scan order.
func (o ScanOrder) String() string {
	switch o {
	case ScanInsertion:
		return "insertion"
	case ScanByArea:
		return "by-area"
	case ScanByUsage:
		return "by-usage"
	default:
		return "scan-order(?)"
	}
}

// regionWeight is the area-ordering key: the region area formula's
// selectivity-dependent factor ∏ si (the λ factor is shared by all
// entries, so it does not affect the ordering).
func regionWeight(sv []float64) float64 {
	w := 1.0
	for _, s := range sv {
		w *= s
	}
	return w
}

// resortInstances re-orders the master instance list per the configured
// scan order. Called (under the writer mutex) every resortEvery lookups;
// sorting is O(n log n) off the hot path and keeps the scan prefix
// effective as the cache evolves. It sorts the master slice in place —
// readers only ever see the copies publishLocked makes — and the caller
// republishes so the new order becomes visible.
//
//lint:allow hotalloc amortized writer-path resort, runs every resortEvery lookups rather than per request
func (s *SCR) resortInstances() {
	if s.cfg.Scan == ScanInsertion {
		return
	}
	insts := s.instances
	switch s.cfg.Scan {
	case ScanByArea:
		sort.SliceStable(insts, func(i, j int) bool {
			return regionWeight(insts[i].v) > regionWeight(insts[j].v)
		})
	case ScanByUsage:
		sort.SliceStable(insts, func(i, j int) bool {
			return insts[i].u.Load() > insts[j].u.Load()
		})
	}
}

// resortEvery is the number of instance-list insertions between re-sorts.
const resortEvery = 32
