package core

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/pqotest"
)

func TestAdvisorObservationValidation(t *testing.T) {
	var a LambdaAdvisor
	for _, bad := range [][2]float64{
		{-1, 1}, {1, 0}, {1, -2}, {math.NaN(), 1}, {1, math.NaN()}, {math.Inf(1), 1},
	} {
		if err := a.Observe(bad[0], bad[1]); err == nil {
			t.Errorf("Observe(%v, %v) should fail", bad[0], bad[1])
		}
	}
	if a.N() != 0 {
		t.Errorf("invalid observations were recorded: N=%d", a.N())
	}
	if _, err := a.Ratio(); err == nil {
		t.Error("Ratio without observations should fail")
	}
	if _, err := a.Recommend(); err == nil {
		t.Error("Recommend without observations should fail")
	}
}

func TestAdvisorRecommendationScales(t *testing.T) {
	// Free optimization → tight bound; optimization-dominated → loose.
	var cheap LambdaAdvisor
	for i := 0; i < 10; i++ {
		if err := cheap.Observe(0.001, 100); err != nil {
			t.Fatal(err)
		}
	}
	lo, err := cheap.Recommend()
	if err != nil {
		t.Fatal(err)
	}
	var expensive LambdaAdvisor
	for i := 0; i < 10; i++ {
		if err := expensive.Observe(150, 100); err != nil {
			t.Fatal(err)
		}
	}
	hi, err := expensive.Recommend()
	if err != nil {
		t.Fatal(err)
	}
	if lo >= hi {
		t.Errorf("cheap-optimization λ %v not below expensive-optimization λ %v", lo, hi)
	}
	if lo < 1.05-1e-9 || hi > 2.0+1e-9 {
		t.Errorf("recommendations [%v, %v] outside default bounds [1.05, 2]", lo, hi)
	}
	// Ratio ≥ 1 saturates at MaxLambda.
	if math.Abs(hi-2.0) > 1e-9 {
		t.Errorf("saturated recommendation = %v, want 2.0", hi)
	}
}

func TestAdvisorCustomRange(t *testing.T) {
	a := LambdaAdvisor{MinLambda: 1.2, MaxLambda: 5}
	if err := a.Observe(50, 100); err != nil {
		t.Fatal(err)
	}
	got, err := a.Recommend()
	if err != nil {
		t.Fatal(err)
	}
	if got < 1.2 || got > 5 {
		t.Errorf("recommendation %v outside [1.2, 5]", got)
	}
	bad := LambdaAdvisor{MinLambda: 0.5, MaxLambda: 2}
	bad.Observe(1, 1)
	if _, err := bad.Recommend(); err == nil {
		t.Error("MinLambda < 1 should fail")
	}
}

func TestAdvisorDynamicRecommendation(t *testing.T) {
	var a LambdaAdvisor
	for i := 1; i <= 9; i++ {
		if err := a.Observe(40, float64(i*100)); err != nil {
			t.Fatal(err)
		}
	}
	d, err := a.RecommendDynamic()
	if err != nil {
		t.Fatal(err)
	}
	if d.Min < 1 || d.Max < d.Min {
		t.Errorf("dynamic range [%v, %v] invalid", d.Min, d.Max)
	}
	if d.Max > 10 {
		t.Errorf("dynamic max %v exceeds the cap", d.Max)
	}
	if d.RefCost != 500 {
		t.Errorf("RefCost = %v, want median 500", d.RefCost)
	}
	// The recommendation must be accepted by NewSCR.
	rng := rand.New(rand.NewSource(1))
	eng, err := pqotest.RandomEngine(rng, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSCR(eng, Config{Lambda: d.Min, Dynamic: d}); err != nil {
		t.Errorf("advisor-recommended config rejected: %v", err)
	}
}

func TestScanOrderReducesScanLength(t *testing.T) {
	// With a skewed instance distribution, ordering the instance list by
	// usage should reduce selectivity-check scans per instance relative to
	// insertion order.
	run := func(order ScanOrder) (selChecks, instances int64) {
		rng := rand.New(rand.NewSource(55))
		eng, err := pqotest.RandomEngine(rng, 2, 8)
		if err != nil {
			t.Fatal(err)
		}
		s, err := NewSCR(eng, Config{Lambda: 2, Scan: order, StoreAlways: true})
		if err != nil {
			t.Fatal(err)
		}
		seqRng := rand.New(rand.NewSource(66))
		// Phase 1: diverse cold traffic populates the instance list with
		// many entries that arrive BEFORE the hot cluster's entry.
		for i := 0; i < 120; i++ {
			if _, err := s.Process(context.Background(), pqotest.RandomSVector(seqRng, 2)); err != nil {
				t.Fatal(err)
			}
		}
		// Phase 2: traffic concentrates on one hot point; insertion order
		// must scan every cold entry first, usage order promotes the hot
		// entry to the front after the first re-sort.
		hot := []float64{0.31, 0.42}
		for i := 0; i < 500; i++ {
			sv := []float64{
				math.Min(1, hot[0]*(0.98+0.04*seqRng.Float64())),
				math.Min(1, hot[1]*(0.98+0.04*seqRng.Float64())),
			}
			if _, err := s.Process(context.Background(), sv); err != nil {
				t.Fatal(err)
			}
		}
		st := s.Stats()
		return st.SelChecks, st.Instances
	}
	baseChecks, n1 := run(ScanInsertion)
	usageChecks, n2 := run(ScanByUsage)
	areaChecks, n3 := run(ScanByArea)
	if n1 != n2 || n2 != n3 {
		t.Fatalf("instance counts differ: %d %d %d", n1, n2, n3)
	}
	if usageChecks > baseChecks {
		t.Errorf("usage-ordered scan did %d checks, insertion order %d; expected fewer or equal",
			usageChecks, baseChecks)
	}
	t.Logf("selectivity-check scans: insertion=%d by-usage=%d by-area=%d",
		baseChecks, usageChecks, areaChecks)
}

func TestScanOrderString(t *testing.T) {
	for o, want := range map[ScanOrder]string{
		ScanInsertion: "insertion", ScanByArea: "by-area", ScanByUsage: "by-usage",
	} {
		if o.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(o), o.String(), want)
		}
	}
	if ScanOrder(9).String() != "scan-order(?)" {
		t.Error("unknown scan order string")
	}
}

func TestScanOrderPreservesGuarantee(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	eng, err := pqotest.RandomEngine(rng, 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, order := range []ScanOrder{ScanByArea, ScanByUsage} {
		s, err := NewSCR(eng, Config{Lambda: 2, Scan: order})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 300; i++ {
			sv := pqotest.RandomSVector(rng, 3)
			dec, err := s.Process(context.Background(), sv)
			if err != nil {
				t.Fatal(err)
			}
			so := eng.PlanCost(dec.Plan, sv) / eng.OptimalCost(sv)
			if so > 2*(1+1e-9) {
				t.Fatalf("scan order %v: SO=%v exceeds λ=2", order, so)
			}
		}
	}
}
