package core

import (
	"fmt"
	"math"
	"sort"
)

// LambdaAdvisor implements §6.2's "Choosing λ" proposal: run
// Optimize-Always for a small initial subset of query instances, observe
// the ratio between average optimization overhead and average execution
// cost, and derive a suitable λ — a query whose optimization overhead is
// large relative to its execution cost can afford a loose bound (large λ,
// aggressive reuse), while a query dominated by execution cost should use a
// tight bound.
//
// Overheads and costs are in the same abstract unit (the caller converts
// wall-clock optimization time via a cost calibration, or supplies
// optimizer-estimated costs directly).
type LambdaAdvisor struct {
	// MinLambda and MaxLambda bound the recommendation; zero values select
	// 1.05 and 2.0 (the λ range the paper evaluates).
	MinLambda, MaxLambda float64

	optOverheads []float64
	execCosts    []float64
}

// Observe records one optimized instance: its optimization overhead and
// its (estimated) execution cost.
func (a *LambdaAdvisor) Observe(optOverhead, execCost float64) error {
	if optOverhead < 0 || execCost <= 0 ||
		math.IsNaN(optOverhead) || math.IsNaN(execCost) ||
		math.IsInf(optOverhead, 0) || math.IsInf(execCost, 0) {
		return fmt.Errorf("core: invalid observation (opt=%v, exec=%v)", optOverhead, execCost)
	}
	a.optOverheads = append(a.optOverheads, optOverhead)
	a.execCosts = append(a.execCosts, execCost)
	return nil
}

// N returns the number of observations.
func (a *LambdaAdvisor) N() int { return len(a.optOverheads) }

// Ratio returns the observed ratio of average optimization overhead to
// average execution cost.
func (a *LambdaAdvisor) Ratio() (float64, error) {
	if len(a.optOverheads) == 0 {
		return 0, fmt.Errorf("core: no observations")
	}
	var so, se float64
	for i := range a.optOverheads {
		so += a.optOverheads[i]
		se += a.execCosts[i]
	}
	return so / se, nil
}

// Recommend maps the observed overhead ratio to a λ in [MinLambda,
// MaxLambda]: ratio 0 (optimization free) → MinLambda; ratio ≥ 1
// (optimization as expensive as execution) → MaxLambda; in between, λ
// interpolates on a square-root scale so moderate overheads already earn
// meaningful reuse latitude.
func (a *LambdaAdvisor) Recommend() (float64, error) {
	lo, hi := a.MinLambda, a.MaxLambda
	if lo == 0 {
		lo = 1.05
	}
	if hi == 0 {
		hi = 2.0
	}
	if lo < 1 || hi < lo {
		return 0, fmt.Errorf("core: invalid advisor range [%v, %v]", lo, hi)
	}
	ratio, err := a.Ratio()
	if err != nil {
		return 0, err
	}
	t := math.Sqrt(math.Min(ratio, 1))
	return lo + t*(hi-lo), nil
}

// RecommendDynamic suggests an Appendix D dynamic-λ configuration: the
// static recommendation becomes the tight end (expensive instances), the
// loose end opens up by the overhead ratio, and the decay reference is the
// median observed execution cost.
func (a *LambdaAdvisor) RecommendDynamic() (*DynamicLambda, error) {
	base, err := a.Recommend()
	if err != nil {
		return nil, err
	}
	ratio, err := a.Ratio()
	if err != nil {
		return nil, err
	}
	costs := make([]float64, len(a.execCosts))
	copy(costs, a.execCosts)
	sort.Float64s(costs)
	ref := costs[len(costs)/2]
	// The loose end grows with the overhead ratio, capped at 10 (the
	// Appendix D experiment's λmax).
	maxL := base * (1 + 4*math.Min(ratio, 1))
	if maxL > 10 {
		maxL = 10
	}
	if maxL < base {
		maxL = base
	}
	return &DynamicLambda{Min: base, Max: maxL, RefCost: ref}, nil
}
