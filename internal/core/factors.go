package core

import (
	"fmt"
	"math"
)

// GLFactors computes the paper's net cost increment factor G and net cost
// decrement factor L between a stored instance qe and a new instance qc
// (§5.3): with αi = si(qc)/si(qe),
//
//	G = ∏_{αi>1} αi   and   L = ∏_{αi<1} 1/αi.
//
// Under the BCG assumption with fi(α)=α, Cost(Pe,qe)/L < Cost(Pe,qc) <
// G·Cost(Pe,qe) (Cost Bounding Lemma) and SubOpt(Pe,qc) < G·L (Theorem 1).
func GLFactors(svE, svC []float64) (g, l float64, err error) {
	if len(svE) != len(svC) {
		return 0, 0, fmt.Errorf("core: selectivity vectors have lengths %d and %d", len(svE), len(svC))
	}
	g, l = 1, 1
	for i := range svE {
		se, sc := svE[i], svC[i]
		if se <= 0 || sc <= 0 || se > 1 || sc > 1 ||
			math.IsNaN(se) || math.IsNaN(sc) {
			return 0, 0, fmt.Errorf("core: selectivity out of (0,1] at dimension %d: %v, %v", i, se, sc)
		}
		alpha := sc / se
		if alpha > 1 {
			g *= alpha
		} else if alpha < 1 {
			l *= 1 / alpha
		}
	}
	return g, l, nil
}

// SelectivityRegionArea returns the area of the 2-dimensional selectivity
// based λ-optimal region around an instance with selectivities (s1, s2):
// (λ − 1/λ)·ln λ · s1·s2 (§5.3). It is used by tests and by the heuristic
// that orders the instance list by decreasing region area.
func SelectivityRegionArea(lambda, s1, s2 float64) float64 {
	if lambda <= 1 {
		return 0
	}
	return (lambda - 1/lambda) * math.Log(lambda) * s1 * s2
}

// CostBounds returns the BCG-implied bounds on Cost(P, qc) given the plan's
// cost at qe (Cost Bounding Lemma): (costAtE/L, G·costAtE).
func CostBounds(costAtE, g, l float64) (lower, upper float64) {
	return costAtE / l, g * costAtE
}

// ViolatesBCG reports whether an observed recost ratio R =
// Cost(P,qc)/Cost(P,qe) falls outside the BCG-implied interval [1/L, G]
// (Appendix G). tolerance absorbs floating-point noise; the paper's
// detection is similarly approximate.
func ViolatesBCG(r, g, l, tolerance float64) bool {
	return r > g*(1+tolerance) || r < (1/l)*(1-tolerance)
}
