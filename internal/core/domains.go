package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Directory is an RCU directory of per-template write domains: each
// attached SCR owns one template's plan cache (and its own writer mutex
// and snapshot pointer), and the directory publishes an immutable name →
// SCR mapping through a single atomic pointer. Lookups on the serving
// path are lock-free and never observe a torn directory — every name in
// a published dirSnapshot resolves to a valid *SCR from one publication.
//
// The directory mutex orders Attach/Detach only; it is never taken by
// Lookup, Stats, or any per-domain operation, so mutating one template's
// cache republishes only that template's snapshot and touches nothing
// shared.
type Directory struct {
	mu      sync.Mutex
	domains map[string]*SCR
	snap    atomic.Pointer[dirSnapshot]
}

// dirSnapshot is one immutable published directory state: names sorted
// ascending, scrs parallel to names. Readers binary-search names and
// index scrs — both slices are frozen at publication.
type dirSnapshot struct {
	version int64
	names   []string
	scrs    []*SCR
}

// NewDirectory returns an empty directory with an initial (version 1)
// published snapshot.
func NewDirectory() *Directory {
	d := &Directory{domains: make(map[string]*SCR)}
	d.mu.Lock()
	d.publishLocked()
	d.mu.Unlock()
	return d
}

// publishLocked rebuilds and publishes the directory snapshot from the
// domains map. Callers hold d.mu.
func (d *Directory) publishLocked() {
	next := &dirSnapshot{
		version: 1,
		names:   make([]string, 0, len(d.domains)),
		scrs:    make([]*SCR, 0, len(d.domains)),
	}
	if prev := d.snap.Load(); prev != nil {
		next.version = prev.version + 1
	}
	for name := range d.domains {
		next.names = append(next.names, name)
	}
	sort.Strings(next.names)
	for _, name := range next.names {
		next.scrs = append(next.scrs, d.domains[name])
	}
	d.snap.Store(next)
}

// Attach registers s as the write domain for template name. Attaching a
// name twice is an error: a template's cache identity must be stable for
// its lifetime (detach first to replace it).
func (d *Directory) Attach(name string, s *SCR) error {
	if s == nil {
		return fmt.Errorf("core: attach %q: nil SCR", name)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, dup := d.domains[name]; dup {
		return fmt.Errorf("core: template %q already attached", name)
	}
	d.domains[name] = s
	d.publishLocked()
	return nil
}

// Detach removes template name's domain from the directory, reporting
// whether it was attached. In-flight readers holding the previous
// snapshot still resolve the name until they re-load.
func (d *Directory) Detach(name string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.domains[name]; !ok {
		return false
	}
	delete(d.domains, name)
	d.publishLocked()
	return true
}

// Lookup resolves a template name to its SCR lock-free: one snapshot
// load and a binary search over the published name list.
func (d *Directory) Lookup(name string) (*SCR, bool) {
	snap := d.snap.Load()
	i := sort.SearchStrings(snap.names, name)
	if i < len(snap.names) && snap.names[i] == name {
		return snap.scrs[i], true
	}
	return nil, false
}

// Names returns the attached template names in ascending order.
func (d *Directory) Names() []string {
	snap := d.snap.Load()
	out := make([]string, len(snap.names))
	copy(out, snap.names)
	return out
}

// Len reports the number of attached domains.
func (d *Directory) Len() int { return len(d.snap.Load().names) }

// DirectoryStats aggregates write-path counters across every attached
// domain. Per-domain totals are summed from each SCR's own Stats — the
// aggregation takes no lock and stops no writer.
type DirectoryStats struct {
	// Domains is the number of attached write domains.
	Domains int
	// PublishTotal / PublishCoalesced sum snapshot publications and
	// coalesced-away publications across domains.
	PublishTotal     int64
	PublishCoalesced int64
	// WriterWait sums time writers spent waiting on domain mutexes.
	WriterWait time.Duration
	// Instances / Plans sum cached instance entries and plans.
	Instances int64
	Plans     int
}

// Stats aggregates write-path counters across all attached domains
// without stopping the world: each domain's counters are read from its
// own published state while writers keep running.
func (d *Directory) Stats() DirectoryStats {
	snap := d.snap.Load()
	out := DirectoryStats{Domains: len(snap.scrs)}
	for _, s := range snap.scrs {
		st := s.Stats()
		out.PublishTotal += st.PublishTotal
		out.PublishCoalesced += st.PublishCoalesced
		out.WriterWait += st.WriteLockWait
		out.Instances += st.Instances
		out.Plans += st.CurPlans
	}
	return out
}

// ExportAll serializes every attached domain's plan cache, keyed by
// template name. Each domain exports from its own published snapshot;
// no domain blocks another.
func (d *Directory) ExportAll() (map[string][]byte, error) {
	snap := d.snap.Load()
	out := make(map[string][]byte, len(snap.names))
	for i, name := range snap.names {
		data, err := snap.scrs[i].Export()
		if err != nil {
			return nil, fmt.Errorf("core: exporting template %q: %w", name, err)
		}
		out[name] = data
	}
	return out, nil
}

// ImportAll restores per-template caches produced by ExportAll into the
// matching attached domains. Templates present in data but not attached
// are an error; attached templates absent from data are left untouched.
// Each domain's import is a single publication (see SCR.Import).
func (d *Directory) ImportAll(data map[string][]byte) error {
	names := make([]string, 0, len(data))
	for name := range data {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s, ok := d.Lookup(name)
		if !ok {
			return fmt.Errorf("core: import for unattached template %q", name)
		}
		if err := s.Import(data[name]); err != nil {
			return fmt.Errorf("core: importing template %q: %w", name, err)
		}
	}
	return nil
}

// Revalidate starts one revalidation run per attached epoch-capable
// domain, all fed through a single shared pool of `workers` goroutines.
// Domains are interleaved in decreasing aggregate-usage order (hottest
// lag first) with cheapest-first ordering within each domain — the
// cross-domain half of the revalidation scheduling the single-SCR
// Revalidate cannot do. Domains whose engine has no epoch lifecycle are
// skipped. The returned handles are keyed by template name; each
// completes independently as its own domain's lag drains.
func (d *Directory) Revalidate(ctx context.Context, workers int) (map[string]*Revalidation, error) {
	snap := d.snap.Load()
	out := make(map[string]*Revalidation, len(snap.names))
	jobs := make([]*revalJob, 0, len(snap.names))
	for i, name := range snap.names {
		j, err := snap.scrs[i].prepareReval(ctx)
		if err != nil {
			if errors.Is(err, ErrEpochUnsupported) {
				continue
			}
			return nil, fmt.Errorf("core: revalidating template %q: %w", name, err)
		}
		out[name] = j.r
		jobs = append(jobs, j)
	}
	runReval(jobs, workers)
	return out, nil
}
