package core

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"sync"
)

// flightGroup deduplicates concurrent optimizer calls for byte-identical
// selectivity vectors (a minimal singleflight, keyed by svKey). The first
// caller for a key becomes the leader and runs fn to completion; callers
// arriving while the flight is open wait for the leader's result instead of
// paying their own optimizer call. Waiters abandon the wait when their
// context is cancelled — the leader is never interrupted, so the cache is
// still populated for future instances.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

type flightCall struct {
	done chan struct{}
	dec  *Decision
	err  error
}

// Do runs fn once per concurrent burst of callers with the same key. The
// second return value reports whether the result was shared from another
// caller's flight rather than produced by this one.
//
//lint:allow hotalloc miss-path singleflight bookkeeping, dominated by the optimizer call it deduplicates
func (g *flightGroup) Do(ctx context.Context, key string, fn func() (*Decision, error)) (*Decision, bool, error) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flightCall)
	}
	if c, ok := g.m[key]; ok {
		//lint:allow lockdiscipline singleflight must release before blocking on the leader's done channel
		g.mu.Unlock()
		select {
		case <-c.done:
			return c.dec, true, c.err
		case <-ctx.Done():
			return nil, true, cancelled(ctx.Err())
		}
	}
	c := &flightCall{done: make(chan struct{})}
	g.m[key] = c
	g.mu.Unlock()

	// The flight must be torn down even if fn panics: a leaked entry would
	// strand every waiter (and every future caller for this key) on a done
	// channel that never closes. The panic is converted into an error both
	// the leader and the waiters observe — Process's degraded-fallback path
	// turns it into a served plan when enabled.
	func() {
		defer func() {
			if r := recover(); r != nil {
				c.dec, c.err = nil, fmt.Errorf("%w: flight leader: %v", ErrOptimizerPanic, r)
			}
			// Remove the flight before signalling completion: a caller
			// that misses the flight entirely re-checks the cache (which
			// the leader has already populated) before opening a new one,
			// so the burst still performs exactly one optimizer call.
			g.mu.Lock()
			delete(g.m, key)
			g.mu.Unlock()
			close(c.done)
		}()
		c.dec, c.err = fn()
	}()
	return c.dec, false, c.err
}

// svKey encodes a selectivity vector into a byte-exact map key.
//
//lint:allow hotalloc miss-path key construction, paid only when an optimizer call is already due
func svKey(sv []float64) string {
	b := make([]byte, 8*len(sv))
	for i, v := range sv {
		binary.LittleEndian.PutUint64(b[i*8:], math.Float64bits(v))
	}
	return string(b)
}

// cancelled wraps a context error so it matches both ErrCancelled and the
// original context sentinel.
func cancelled(err error) error {
	return fmt.Errorf("%w: %w", ErrCancelled, err)
}
