package core

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
)

// This file is the write half of the sharded RCU concurrency model: each
// SCR (one template's plan cache) embeds exactly one writeDomain, the
// unit of writer serialization and snapshot publication. Writers to
// different templates mutate different domains and never contend; a
// mutation republishes only its own domain's snapshot — O(instances in
// this domain), never O(total across templates). The top-level Directory
// (domains.go) maps template names to their domains through its own
// RCU-published snapshot, so the read path crosses the template boundary
// without a lock either.
//
// Publication protocol (coalescing). publishLocked no longer rebuilds the
// snapshot eagerly: it records a publication mark (pending) and defers
// the rebuild+store to flushLocked, which runs when the critical section
// ends (unlock) or every publishCoalesceWindow marks mid-section,
// whichever comes first. Mutations batched inside one critical section —
// a sweep removing k plans, an import installing a whole cache, a
// revalidation replacement followed by cache management — publish once,
// and readers never observe a snapshot staler than one mutation batch:
// visibility IS publication, and every writer flushes before releasing
// the domain mutex.
//
// Incremental publication. Between two publications the master instance
// slice is append-only: the published snapshot shares its backing array,
// with the snapshot's length fixed at publication time, so appends land
// beyond every published element and flushLocked can extend the previous
// snapshot — merging only the appended entries into the selectivity
// index — instead of rebuilding O(n log n) from scratch. Any mutation
// that is not an append (eviction, sweep, re-sort, import, plan-list
// change) must install a freshly allocated slice and set d.structural,
// which forces the next flush down the full-rebuild path.

// publishCoalesceWindow bounds how many publication marks may batch into
// one flush while a writer stays inside a single critical section. It is
// a mid-section backstop: unlock always flushes, so the window only
// matters for pathologically long batches (a sweep dropping hundreds of
// plans), where it bounds how far readers can lag behind the writer.
const publishCoalesceWindow = 64

// writeDomain owns one template's mutable plan-cache state: the writer
// mutex, the master plan and instance lists, and the published snapshot
// pointer. SCR embeds it by value and delegates every mutation to it;
// nothing outside this type's methods may touch these fields (the
// rcupublish analyzer enforces both the publish discipline and the
// no-cross-domain-store rule).
type writeDomain struct {
	// scr points back to the owning SCR for configuration, engine access
	// and counters. Set once in init, immutable afterwards.
	scr *SCR

	// mu serializes writers over the master state below. It normally
	// points at ownMu; WithSharedWriteLock aims it at a caller-supplied
	// mutex instead (the unsharded baseline the write-path benchmarks
	// compare against). Readers never take it — they load snap.
	mu    *sync.Mutex
	ownMu sync.Mutex

	// eager disables coalescing: every publication mark flushes
	// immediately, restoring the one-publish-per-mutation behavior the
	// pre-sharding write path had (WithEagerPublish, benchmarks only).
	eager bool

	// plans indexes cached plans by fingerprint; plansSorted is the same
	// set in ascending fingerprint order, rebuilt copy-on-write by
	// insertPlanLocked/removePlanLocked (never sorted in place) so a
	// published snapshot can share it.
	plans       map[string]*planEntry
	plansSorted []*planEntry

	// instances is the scan-ordered master instance list. Append-only
	// between publications; see the invariant above.
	instances []*instanceEntry

	// structural records that a non-append mutation happened since the
	// last flush, forcing a full snapshot rebuild.
	structural bool

	// pending counts publication marks since the last flush. It is an
	// atomic only so the analyzer's master-state detection skips it; it
	// is always accessed under mu.
	pending atomic.Int64

	// snap is the published immutable view of the master state; never nil
	// after init. Writers rebuild and swap it via publishLocked/
	// flushLocked.
	snap atomic.Pointer[cacheSnapshot]
}

// init wires the domain to its owning SCR and publishes the initial
// empty snapshot (version 1). Called once from NewSCR, before the SCR
// escapes its constructor.
func (d *writeDomain) init(s *SCR) {
	d.scr = s
	d.eager = s.cfg.eagerPublish
	d.mu = &d.ownMu
	if s.cfg.sharedWriteMu != nil {
		d.mu = s.cfg.sharedWriteMu
	}
	d.plans = make(map[string]*planEntry)
	d.publishLocked()
	d.flushLocked()
}

// lock acquires the domain's writer mutex, charging the wait to the
// striped writer-wait counter (pqo_writer_wait_seconds_total): under
// sharding, aggregate wait across domains is the direct measure of
// residual write contention.
func (d *writeDomain) lock() {
	start := time.Now()
	d.mu.Lock()
	d.scr.ctr.writerWaitNs.Add(time.Since(start).Nanoseconds())
}

// unlock flushes any pending publication marks and releases the writer
// mutex. Flushing before the release is what bounds reader staleness to
// one mutation batch: no mutation ever outlives its critical section
// unpublished.
func (d *writeDomain) unlock() {
	d.flushLocked()
	d.mu.Unlock()
}

// publishLocked records that master state changed and readers must gain
// visibility. Under coalescing the rebuild is deferred: the mark is
// counted and flushLocked runs at the end of the critical section (or
// every publishCoalesceWindow marks mid-section). Caller holds the
// domain mutex.
func (d *writeDomain) publishLocked() {
	if n := d.pending.Add(1); d.eager || n >= publishCoalesceWindow {
		d.flushLocked()
	}
}

// flushLocked rebuilds the immutable cache snapshot from the master state
// and publishes it with one atomic store, bumping the version — once for
// the whole batch of marks accumulated since the previous flush. A flush
// with no pending marks is a no-op, so unlock's unconditional flush costs
// nothing on read-only sections. When the batch was append-only (no
// structural mutation), the previous snapshot is extended in place:
// instances and plan list are shared, and only the appended entries are
// merged into the selectivity index — O(n + k log k) instead of the full
// O(n log n) rebuild. Caller holds the domain mutex.
//
//lint:allow hotalloc writer-path snapshot rebuild, amortized against the mutation batch that triggered it
func (d *writeDomain) flushLocked() {
	n := d.pending.Swap(0)
	if n == 0 {
		return
	}
	if len(d.plans) != len(d.plansSorted) {
		panic("core: write-domain plan map and sorted plan list diverged")
	}
	prev := d.snap.Load()
	next := &cacheSnapshot{
		instances: d.instances,
		plans:     d.plansSorted,
		version:   1,
		epoch:     d.scr.statsEpoch(),
	}
	switch {
	case d.eager:
		// Faithful reconstruction of the retired publication (benchmark
		// baseline): a fresh instance copy and a from-scratch index on
		// every single publish, exactly what the pre-sharding write path
		// paid per mutation.
		insts := make([]*instanceEntry, len(d.instances))
		copy(insts, d.instances)
		next.instances = insts
		next.index = buildSelIndex(insts)
	case prev == nil || d.structural || len(d.instances) < len(prev.instances):
		next.index = buildSelIndex(d.instances)
	case len(d.instances) == len(prev.instances):
		// Marks without new entries (defensive publish on an error path,
		// anchor-only batches): reuse the previous index outright.
		next.index = prev.index
	default:
		next.index = mergeSelIndex(&prev.index, d.instances, len(prev.instances))
	}
	if prev != nil {
		next.version = prev.version + 1
	}
	d.structural = false
	d.snap.Store(next)
	d.scr.ctr.publishes.Add(1)
	if n > 1 {
		d.scr.ctr.coalesced.Add(n - 1)
	}
}

// mergeSelIndex extends a published snapshot's selectivity index with the
// k entries appended since that snapshot was built. The previous index is
// already weight-sorted and the appended entries' scan positions all
// follow the published ones, so sorting the k newcomers and merging —
// previous entries first on weight ties — reproduces buildSelIndex's
// stable sort exactly, in O(n + k log k).
func mergeSelIndex(prev *selIndex, insts []*instanceEntry, oldLen int) selIndex {
	n := len(insts)
	k := n - oldLen
	type add struct {
		w   float64
		pos int32
	}
	adds := make([]add, 0, k)
	for i := oldLen; i < n; i++ {
		adds = append(adds, add{w: regionWeight(insts[i].v), pos: int32(i)})
	}
	sort.SliceStable(adds, func(a, b int) bool { return adds[a].w < adds[b].w })
	idx := selIndex{
		keys: make([]float64, 0, n),
		ents: make([]*instanceEntry, 0, n),
		pos:  make([]int32, 0, n),
	}
	i, j := 0, 0
	for i < oldLen || j < k {
		if j >= k || (i < oldLen && prev.keys[i] <= adds[j].w) {
			idx.keys = append(idx.keys, prev.keys[i])
			idx.ents = append(idx.ents, prev.ents[i])
			idx.pos = append(idx.pos, prev.pos[i])
			i++
		} else {
			idx.keys = append(idx.keys, adds[j].w)
			idx.ents = append(idx.ents, insts[adds[j].pos])
			idx.pos = append(idx.pos, adds[j].pos)
			j++
		}
	}
	return idx
}

// insertPlanLocked adds a plan to the master plan set, rebuilding the
// sorted plan list copy-on-write. Caller holds the domain mutex and must
// publish.
func (d *writeDomain) insertPlanLocked(pe *planEntry) {
	d.plans[pe.fp] = pe
	sorted := make([]*planEntry, 0, len(d.plans))
	i := sort.Search(len(d.plansSorted), func(i int) bool { return d.plansSorted[i].fp >= pe.fp })
	sorted = append(sorted, d.plansSorted[:i]...)
	sorted = append(sorted, pe)
	sorted = append(sorted, d.plansSorted[i:]...)
	d.plansSorted = sorted
	d.structural = true
	if n := int64(len(d.plans)); n > d.scr.maxPlans.Load() {
		d.scr.maxPlans.Store(n)
	}
}

// removePlanLocked drops a plan from the master plan set, rebuilding the
// sorted plan list copy-on-write. Caller holds the domain mutex and must
// publish.
func (d *writeDomain) removePlanLocked(pe *planEntry) {
	delete(d.plans, pe.fp)
	sorted := make([]*planEntry, 0, len(d.plans))
	for _, other := range d.plansSorted {
		if other != pe {
			sorted = append(sorted, other)
		}
	}
	d.plansSorted = sorted
	d.structural = true
}

// addInstance appends an instance entry. Appends are the one mutation the
// published snapshot tolerates in place (they land beyond its fixed
// length), so this does NOT set structural. Caller holds the domain mutex
// and must publish.
func (d *writeDomain) addInstance(e *instanceEntry) {
	d.instances = append(d.instances, e)
}

// setInstancesLocked replaces the master instance list with a freshly
// allocated slice — the required form for every non-append mutation,
// since the previous slice's backing array is shared with the published
// snapshot. Caller holds the domain mutex and must publish.
func (d *writeDomain) setInstancesLocked(insts []*instanceEntry) {
	d.instances = insts
	d.structural = true
}

// manageCache is Algorithm 2: record the optimized instance, running the
// redundancy check for genuinely new plans and enforcing the plan budget.
// epoch is the statistics generation optCost was derived under. Caller
// holds the domain mutex.
func (d *writeDomain) manageCache(sv []float64, cp *engine.CachedPlan, optCost float64, epoch uint64) error {
	s := d.scr
	// Mark a publication on every exit: even an error path may have
	// mutated master state (e.g. an eviction before the failure), and
	// readers must see it no later than the end of this critical section.
	defer d.publishLocked()
	v := make([]float64, len(sv))
	copy(v, sv)
	fp := cp.Fingerprint()

	if pe, ok := d.plans[fp]; ok {
		// Plan already cached: extend its inference region with this
		// instance.
		d.addInstance(newInstance(v, pe, optCost, 1, 1, epoch))
		return nil
	}

	// New plan: redundancy check against the cached plans. The check
	// compares optCost against recosts made under the *current* epoch, so
	// it is only sound when the generation has not advanced since the
	// optimizer call; after a mid-flight advance the plan is stored
	// directly (always sound — the check is an optimization).
	if !s.cfg.StoreAlways && len(d.plans) > 0 && epoch == s.statsEpoch() {
		minPE, minCost, err := d.minCostPlan(sv)
		if err != nil {
			return err
		}
		sMin := minCost / optCost
		if sMin <= s.cfg.lambdaR() {
			// Redundant: discard the new plan, bind the instance to the
			// cheapest existing plan with its sub-optimality.
			s.ctr.redundantPlans.Add(1)
			d.addInstance(newInstance(v, minPE, optCost, sMin, 1, epoch))
			return nil
		}
	}

	if s.cfg.PlanBudget > 0 && len(d.plans) >= s.cfg.PlanBudget {
		d.evictLFU()
	}
	pe := &planEntry{cp: cp, fp: fp}
	d.insertPlanLocked(pe)
	d.addInstance(newInstance(v, pe, optCost, 1, 1, epoch))
	return nil
}

// minCostPlan recosts every cached plan at sv and returns the cheapest
// (getMinCostPlan of Algorithm 2). These recosts happen off the critical
// path and are counted separately.
func (d *writeDomain) minCostPlan(sv []float64) (*planEntry, float64, error) {
	s := d.scr
	var (
		best     *planEntry
		bestCost = math.Inf(1)
	)
	// Batch: one prepared instance across every cached plan's recost.
	pi := s.prepareRecost(sv)
	defer pi.Release()
	// plansSorted iterates in deterministic (fingerprint) order.
	for _, pe := range d.plansSorted {
		c, err := s.recostWith(pi, pe.cp, sv)
		if err != nil {
			return nil, 0, err
		}
		s.ctr.manageRecosts.Add(1)
		if c < bestCost {
			best, bestCost = pe, c
		}
	}
	return best, bestCost, nil
}

// evictLFU drops the plan with the lowest aggregate usage count and
// removes every instance entry pointing to it, preserving the
// λ-optimality guarantee (§6.3.1). Caller holds the domain mutex and
// must publish.
func (d *writeDomain) evictLFU() {
	usage := make(map[*planEntry]int64, len(d.plans))
	for _, e := range d.instances {
		usage[e.pp] += e.u.Load()
	}
	var (
		victim    *planEntry
		victimUse = int64(math.MaxInt64)
	)
	for _, pe := range d.plansSorted {
		if u := usage[pe]; u < victimUse {
			victim, victimUse = pe, u
		}
	}
	if victim == nil {
		return
	}
	d.removePlanLocked(victim)
	// The previous instance slice's backing array is shared with the
	// published snapshot: filter into a fresh slice, never in place.
	kept := make([]*instanceEntry, 0, len(d.instances))
	for _, e := range d.instances {
		if e.pp != victim {
			kept = append(kept, e)
		}
	}
	d.setInstancesLocked(kept)
	d.scr.ctr.evictions.Add(1)
}

// resortInstances re-orders the master instance list per the configured
// scan order (§6.2) into a fresh slice — the previous one is shared with
// the published snapshot — and marks the publication. Called under the
// domain mutex every resortEvery lookups; sorting is O(n log n) off the
// hot path and keeps the scan prefix effective as the cache evolves.
//
//lint:allow hotalloc amortized writer-path resort, runs every resortEvery lookups rather than per request
func (d *writeDomain) resortInstances() {
	s := d.scr
	if s.cfg.Scan == ScanInsertion {
		return
	}
	insts := make([]*instanceEntry, len(d.instances))
	copy(insts, d.instances)
	switch s.cfg.Scan {
	case ScanByArea:
		sort.SliceStable(insts, func(i, j int) bool {
			return regionWeight(insts[i].v) > regionWeight(insts[j].v)
		})
	case ScanByUsage:
		sort.SliceStable(insts, func(i, j int) bool {
			return insts[i].u.Load() > insts[j].u.Load()
		})
	}
	d.setInstancesLocked(insts)
	d.publishLocked()
}

// sweepLocked is the body of SweepRedundantPlans (Appendix F): it tests
// every cached plan for redundancy against the remaining plans and drops
// those whose instances can all be served λ-optimally by alternatives.
// The per-removal publication marks coalesce into a single flush when the
// caller's critical section ends. Caller holds the domain mutex.
func (d *writeDomain) sweepLocked() (int, error) {
	dropped := 0
	for {
		// Order plans by ascending instance count (cheapest to verify and
		// most likely redundant, per Appendix F).
		count := make(map[*planEntry]int, len(d.plans))
		for _, e := range d.instances {
			count[e.pp]++
		}
		ordered := make([]*planEntry, 0, len(d.plans))
		ordered = append(ordered, d.plansSorted...)
		sort.Slice(ordered, func(i, j int) bool {
			if count[ordered[i]] != count[ordered[j]] {
				return count[ordered[i]] < count[ordered[j]]
			}
			return ordered[i].fp < ordered[j].fp
		})
		removedOne := false
		for _, pe := range ordered {
			if len(d.plans) <= 1 {
				break
			}
			ok, rebound, err := d.planIsRedundant(pe)
			if err != nil {
				return dropped, err
			}
			if !ok {
				continue
			}
			d.removePlanLocked(pe)
			kept := make([]*instanceEntry, 0, len(d.instances))
			for _, e := range d.instances {
				if e.pp != pe {
					kept = append(kept, e)
				}
			}
			d.setInstancesLocked(append(kept, rebound...))
			d.publishLocked()
			dropped++
			removedOne = true
			break // re-derive counts after each removal
		}
		if !removedOne {
			return dropped, nil
		}
	}
}

// planIsRedundant checks whether every instance bound to pe has an
// alternative λ-optimal plan among the other cached plans; if so it
// returns replacement instance entries bound to those alternatives.
func (d *writeDomain) planIsRedundant(pe *planEntry) (bool, []*instanceEntry, error) {
	s := d.scr
	var rebound []*instanceEntry
	cur := s.statsEpoch()
	for _, e := range d.instances {
		if e.pp != pe {
			continue
		}
		if e.anc.Load().epoch != cur {
			// A lagging anchor cannot be compared against current-epoch
			// recosts; the plan is not sweepable until revalidated.
			return false, nil, nil
		}
		var (
			alt     *planEntry
			altCost = math.Inf(1)
		)
		// Batch per bound instance: its vector is fixed across the recosts
		// of every alternative plan.
		pi := s.prepareRecost(e.v)
		for _, other := range d.plansSorted {
			if other == pe {
				continue
			}
			c, err := s.recostWith(pi, other.cp, e.v)
			if err != nil {
				pi.Release()
				return false, nil, err
			}
			s.ctr.manageRecosts.Add(1)
			if c < altCost {
				alt, altCost = other, c
			}
		}
		pi.Release()
		if alt == nil {
			return false, nil, nil
		}
		a := e.anc.Load()
		sAlt := altCost / a.c
		if sAlt > s.cfg.lambdaFor(a.c) {
			return false, nil, nil
		}
		rebound = append(rebound, newInstance(e.v, alt, a.c, sAlt, e.u.Load(), a.epoch))
	}
	return true, rebound, nil
}

// seedLocked is the body of SeedInstance: install an externally supplied
// (plan, anchor) pair. Caller holds the domain mutex; input validation
// happened in the wrapper.
func (d *writeDomain) seedLocked(sv []float64, cp *engine.CachedPlan, optCost, subOpt float64) error {
	s := d.scr
	fp := cp.Fingerprint()
	pe, ok := d.plans[fp]
	if !ok {
		if s.cfg.PlanBudget > 0 && len(d.plans) >= s.cfg.PlanBudget {
			return fmt.Errorf("%w: seeding would exceed the plan budget %d", ErrBudgetExhausted, s.cfg.PlanBudget)
		}
		pe = &planEntry{cp: cp, fp: fp}
		d.insertPlanLocked(pe)
	}
	v := make([]float64, len(sv))
	copy(v, sv)
	d.addInstance(newInstance(v, pe, optCost, subOpt, 0, s.statsEpoch()))
	d.publishLocked()
	return nil
}

// replaceEntryLocked is the body of revalidation's replaceInstance: drop
// a lagging entry whose plan failed the λr threshold under the new epoch
// — removing the plan too if no other entry references it — and insert
// the freshly optimized plan through manageCache at the target epoch. The
// removal's and the insert's publication marks coalesce into one flush.
// Caller holds the domain mutex.
func (d *writeDomain) replaceEntryLocked(e *instanceEntry, cp *engine.CachedPlan, optCost float64, epoch uint64, r *Revalidation) {
	s := d.scr
	found := false
	orphaned := true
	kept := make([]*instanceEntry, 0, len(d.instances))
	for _, o := range d.instances {
		if o == e {
			found = true
			continue
		}
		kept = append(kept, o)
		if o.pp == e.pp {
			orphaned = false
		}
	}
	if !found {
		// The entry was evicted or swept while we optimized; nothing to
		// replace.
		return
	}
	d.setInstancesLocked(kept)
	d.publishLocked()
	r.droppedI.Add(1)
	s.ctr.revalDroppedI.Add(1)
	if orphaned {
		d.removePlanLocked(e.pp)
		d.publishLocked()
		r.droppedP.Add(1)
		s.ctr.revalDroppedP.Add(1)
	}
	if err := d.manageCache(e.v, cp, optCost, epoch); err != nil {
		r.failed.Add(1)
		s.ctr.revalFailed.Add(1)
		return
	}
	r.reanchored.Add(1)
	s.ctr.revalidated.Add(1)
}

// installImportLocked is the body of Import's final installation step:
// adopt the rehydrated plan set and instance list wholesale. One
// publication covers the whole install. Caller holds the domain mutex
// and has verified the cache is empty.
func (d *writeDomain) installImportLocked(byFP map[string]*planEntry, insts []*instanceEntry) {
	for _, pe := range byFP {
		d.insertPlanLocked(pe)
	}
	d.setInstancesLocked(insts)
	d.publishLocked()
}
