package core_test

import (
	"context"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/pqotest"
)

// optimizerDelay simulates a realistic full-optimizer planning time. The
// paper's premise is that optimizer calls are orders of magnitude more
// expensive than the selectivity/cost checks; the synthetic test engine
// optimizes in nanoseconds, which would hide exactly the contention this
// benchmark exists to measure.
const optimizerDelay = 200 * time.Microsecond

// slowEngine adds optimizerDelay to every Optimize call; Recost (the
// checks' hot path) stays fast, as in a real engine.
type slowEngine struct {
	*pqotest.Engine
}

func (e *slowEngine) Optimize(sv []float64) (*engine.CachedPlan, float64, error) {
	time.Sleep(optimizerDelay)
	return e.Engine.Optimize(sv)
}

// BenchmarkProcessParallel measures SCR throughput under parallel
// read-mostly traffic (~90% cache hits, ~10% misses that pay a simulated
// optimizer latency), across three serving disciplines:
//
//   - rcu: the shipped read path — one atomic snapshot load, no locks.
//     This is the variant the BENCH_PR7.json scaling gate tracks
//     (scripts/bench_scaling.sh sweeps it across -cpu).
//   - rwmutex: emulates the retired design, which acquired a shared
//     RWMutex read lock around every Process. The RLock/RUnlock pair puts
//     every core back on the lock's reader-count cache line and lets a
//     queued writer convoy readers — exactly the costs the RCU snapshot
//     removed.
//   - mutex: the original monolithic lock; a miss held it across its
//     optimizer call and stalled every concurrent hit.
//
// The win does not require multiple cores: it comes from hits proceeding
// while misses wait on the optimizer, and from concurrent miss latencies
// overlapping. Run with:
//
//	go test ./internal/core/ -bench BenchmarkProcessParallel -cpu 1,2,4,8
func BenchmarkProcessParallel(b *testing.B) {
	b.Run("rcu", func(b *testing.B) {
		scr, warm := newWarmSCR(b)
		shakeout(b, scr.Process, warm)
		benchParallel(b, scr.Process, warm)
	})
	b.Run("rwmutex", func(b *testing.B) {
		scr, warm := newWarmSCR(b)
		var mu sync.RWMutex
		readLocked := func(ctx context.Context, sv []float64) (*core.Decision, error) {
			mu.RLock()
			defer mu.RUnlock()
			return scr.Process(ctx, sv)
		}
		shakeout(b, readLocked, warm)
		benchParallel(b, readLocked, warm)
	})
	b.Run("mutex", func(b *testing.B) {
		scr, warm := newWarmSCR(b)
		var mu sync.Mutex
		serialized := func(ctx context.Context, sv []float64) (*core.Decision, error) {
			mu.Lock()
			defer mu.Unlock()
			return scr.Process(ctx, sv)
		}
		shakeout(b, serialized, warm)
		benchParallel(b, serialized, warm)
	})
}

// BenchmarkProcessParallelResilient measures the overhead of the
// resilience layer (docs/ROBUSTNESS.md) on a healthy system: degraded
// fallback armed, circuit breaker closed, optimizer deadline far above
// the simulated planning time, so no request actually degrades. The
// read-path hot loop is untouched by the layer; the only added work is
// on optimizer misses (breaker bookkeeping plus the deadline goroutine),
// so "resilient" must stay within noise of "baseline".
//
// Both variants build their SCR from the same seed and run the same
// fixed-seed shakeout before timing, so the two timed sections start from
// byte-identical warmed cache state. (BENCH_PR4.json recorded resilient
// *faster* than baseline — an ordering artifact: the second subbenchmark
// inherited a warmed process while the first paid the one-time heap and
// cache warmup. The shakeout absorbs those one-time costs.)
func BenchmarkProcessParallelResilient(b *testing.B) {
	b.Run("baseline", func(b *testing.B) {
		scr, warm := newWarmSCR(b)
		shakeout(b, scr.Process, warm)
		benchParallel(b, scr.Process, warm)
	})
	b.Run("resilient", func(b *testing.B) {
		scr, warm := newWarmSCR(b,
			core.WithDegradedFallback(),
			core.WithOptimizerDeadline(100*time.Millisecond),
			core.WithCircuitBreaker(5, time.Second))
		shakeout(b, scr.Process, warm)
		benchParallel(b, scr.Process, warm)
	})
}

// shakeout drives a short burst of fixed-seed traffic (the same hit/miss
// mix benchParallel generates) through process before the timed section,
// so every subbenchmark enters timing from the same cache state and the
// first-run one-time costs (heap growth, branch warmup) land outside the
// measurement.
func shakeout(b *testing.B, process func(context.Context, []float64) (*core.Decision, error), warm [][]float64) {
	b.Helper()
	ctx := context.Background()
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 256; i++ {
		var sv []float64
		if rng.Float64() < 0.9 {
			sv = warm[rng.Intn(len(warm))]
		} else {
			sv = pqotest.RandomSVector(rng, 4)
		}
		if _, err := process(ctx, sv); err != nil {
			b.Fatal(err)
		}
	}
}

// slowEpochEngine is slowEngine for the epoch lifecycle: the simulated
// planning latency applies to the epoch-aware optimize path too, so
// background revalidation (which re-optimizes anchors) exerts realistic
// pressure on the serving benchmark.
type slowEpochEngine struct {
	*pqotest.EpochEngine
}

func (e *slowEpochEngine) OptimizeEpoch(sv []float64) (*engine.CachedPlan, float64, uint64, error) {
	time.Sleep(optimizerDelay)
	return e.EpochEngine.OptimizeEpoch(sv)
}

func (e *slowEpochEngine) Optimize(sv []float64) (*engine.CachedPlan, float64, error) {
	cp, c, _, err := e.OptimizeEpoch(sv)
	return cp, c, err
}

// BenchmarkProcessDuringRevalidation measures steady-state Process
// latency while background epoch revalidation is continuously running,
// against the same traffic with no revalidation at all. Both variants
// report tail latency as "p99-ns"; scripts/bench_smoke.sh fails if the
// revalidating p99 exceeds 2× the steady p99 — the "stats refresh must
// not be a self-inflicted cold start" bar from docs/STATS.md.
func BenchmarkProcessDuringRevalidation(b *testing.B) {
	b.Run("steady", func(b *testing.B) { benchRevalidation(b, false) })
	b.Run("revalidating", func(b *testing.B) { benchRevalidation(b, true) })
}

func benchRevalidation(b *testing.B, revalidate bool) {
	rng := rand.New(rand.NewSource(11))
	eng, err := pqotest.RandomEngine(rng, 4, 8)
	if err != nil {
		b.Fatal(err)
	}
	se := &slowEpochEngine{pqotest.NewEpochEngine(eng)}
	scr, err := core.New(se, core.WithLambda(2))
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	warm := make([][]float64, 16)
	for i := range warm {
		warm[i] = pqotest.RandomSVector(rng, 4)
		if _, err := scr.Process(ctx, warm[i]); err != nil {
			b.Fatal(err)
		}
	}

	stop := make(chan struct{})
	var stopped sync.WaitGroup
	if revalidate {
		// Keep a revalidation run permanently in flight: advance the
		// epoch, revalidate the whole cache, repeat.
		stopped.Add(1)
		go func() {
			defer stopped.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				se.Advance()
				run, err := scr.Revalidate(ctx, core.DefaultRevalidationWorkers)
				if err != nil {
					b.Error(err)
					return
				}
				select {
				case <-run.Done():
				case <-stop:
					return
				}
			}
		}()
	}

	var (
		latMu sync.Mutex
		lats  []time.Duration
	)
	var gid atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(gid.Add(1)))
		local := make([]time.Duration, 0, 1024)
		for pb.Next() {
			var sv []float64
			if rng.Float64() < 0.9 {
				sv = warm[rng.Intn(len(warm))]
			} else {
				sv = pqotest.RandomSVector(rng, 4)
			}
			t0 := time.Now()
			if _, err := scr.Process(ctx, sv); err != nil {
				b.Fatal(err)
			}
			local = append(local, time.Since(t0))
		}
		latMu.Lock()
		lats = append(lats, local...)
		latMu.Unlock()
	})
	b.StopTimer()
	close(stop)
	stopped.Wait()
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		b.ReportMetric(float64(lats[len(lats)*99/100].Nanoseconds()), "p99-ns")
	}
}

// newWarmSCR builds an SCR over a synthetic 4-dimensional engine with
// simulated optimizer latency, warmed with a fixed hot set so ~90% of
// traffic resolves through the selectivity check near the head of the
// instance list.
func newWarmSCR(b *testing.B, opts ...core.Option) (*core.SCR, [][]float64) {
	b.Helper()
	rng := rand.New(rand.NewSource(11))
	eng, err := pqotest.RandomEngine(rng, 4, 8)
	if err != nil {
		b.Fatal(err)
	}
	scr, err := core.New(&slowEngine{eng}, append([]core.Option{core.WithLambda(2)}, opts...)...)
	if err != nil {
		b.Fatal(err)
	}
	warm := make([][]float64, 16)
	ctx := context.Background()
	for i := range warm {
		warm[i] = pqotest.RandomSVector(rng, 4)
		if _, err := scr.Process(ctx, warm[i]); err != nil {
			b.Fatal(err)
		}
	}
	return scr, warm
}

func benchParallel(b *testing.B, process func(context.Context, []float64) (*core.Decision, error), warm [][]float64) {
	ctx := context.Background()
	// Per-goroutine seeds restart at 1 for every variant so both variants
	// see identical traffic at a given -cpu setting.
	var gid atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(gid.Add(1)))
		for pb.Next() {
			var sv []float64
			if rng.Float64() < 0.9 {
				sv = warm[rng.Intn(len(warm))]
			} else {
				sv = pqotest.RandomSVector(rng, 4)
			}
			if _, err := process(ctx, sv); err != nil {
				b.Fatal(err)
			}
		}
	})
}
