package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGLFactorsBasics(t *testing.T) {
	cases := []struct {
		name     string
		svE, svC []float64
		wantG    float64
		wantL    float64
	}{
		{"identical", []float64{0.1, 0.2}, []float64{0.1, 0.2}, 1, 1},
		{"both up", []float64{0.1, 0.1}, []float64{0.2, 0.3}, 2 * 3, 1},
		{"both down", []float64{0.4, 0.9}, []float64{0.2, 0.3}, 1, 2 * 3},
		{"mixed", []float64{0.1, 0.9}, []float64{0.2, 0.3}, 2, 3},
		{"one dim", []float64{0.5}, []float64{0.25}, 1, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g, l, err := GLFactors(tc.svE, tc.svC)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(g-tc.wantG) > 1e-12 || math.Abs(l-tc.wantL) > 1e-12 {
				t.Errorf("GLFactors = (%v, %v), want (%v, %v)", g, l, tc.wantG, tc.wantL)
			}
		})
	}
}

func TestGLFactorsErrors(t *testing.T) {
	if _, _, err := GLFactors([]float64{0.1}, []float64{0.1, 0.2}); err == nil {
		t.Error("length mismatch should fail")
	}
	for _, bad := range [][]float64{{0}, {-0.1}, {1.5}, {math.NaN()}} {
		if _, _, err := GLFactors(bad, []float64{0.5}); err == nil {
			t.Errorf("svE=%v should fail", bad)
		}
		if _, _, err := GLFactors([]float64{0.5}, bad); err == nil {
			t.Errorf("svC=%v should fail", bad)
		}
	}
}

// Property: G and L are always >= 1, and swapping the two instances swaps
// the roles of G and L.
func TestGLFactorsSymmetryProperty(t *testing.T) {
	f := func(aRaw, bRaw, cRaw, dRaw uint16) bool {
		svE := []float64{float64(aRaw%999+1) / 1000, float64(bRaw%999+1) / 1000}
		svC := []float64{float64(cRaw%999+1) / 1000, float64(dRaw%999+1) / 1000}
		g1, l1, err := GLFactors(svE, svC)
		if err != nil {
			return false
		}
		g2, l2, err := GLFactors(svC, svE)
		if err != nil {
			return false
		}
		if g1 < 1 || l1 < 1 {
			return false
		}
		return math.Abs(g1-l2) < 1e-9*g1 && math.Abs(l1-g2) < 1e-9*math.Max(l1, 1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSelectivityRegionArea(t *testing.T) {
	// Formula from §5.3: (λ − 1/λ)·lnλ·s1·s2.
	got := SelectivityRegionArea(2, 0.3, 0.4)
	want := (2 - 0.5) * math.Log(2) * 0.3 * 0.4
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("area = %v, want %v", got, want)
	}
	if SelectivityRegionArea(1, 0.3, 0.4) != 0 {
		t.Error("λ=1 region must have zero area")
	}
	if SelectivityRegionArea(0.5, 0.3, 0.4) != 0 {
		t.Error("λ<1 region must have zero area")
	}
	// Area increases with λ and with selectivities.
	if SelectivityRegionArea(3, 0.3, 0.4) <= got {
		t.Error("area must increase with λ")
	}
	if SelectivityRegionArea(2, 0.6, 0.4) <= got {
		t.Error("area must increase with s1")
	}
}

func TestCostBounds(t *testing.T) {
	lo, hi := CostBounds(100, 3, 2)
	if lo != 50 || hi != 300 {
		t.Errorf("CostBounds = (%v, %v), want (50, 300)", lo, hi)
	}
}

func TestViolatesBCG(t *testing.T) {
	// Interval is [1/L, G] = [0.5, 3] with L=2, G=3.
	cases := []struct {
		r    float64
		want bool
	}{
		{1.0, false}, {0.5, false}, {3.0, false},
		{3.2, true}, {0.4, true},
		{3.02, false}, // within 1% tolerance
		{0.496, false},
	}
	for _, tc := range cases {
		if got := ViolatesBCG(tc.r, 3, 2, 0.01); got != tc.want {
			t.Errorf("ViolatesBCG(%v) = %v, want %v", tc.r, got, tc.want)
		}
	}
}

func TestCheckString(t *testing.T) {
	for c, want := range map[Check]string{
		ViaOptimizer: "optimizer", ViaSelectivity: "selectivity-check",
		ViaCost: "cost-check", ViaInference: "inference",
	} {
		if c.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(c), c.String(), want)
		}
	}
	if Check(9).String() == "" {
		t.Error("unknown check should render something")
	}
}
