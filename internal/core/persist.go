package core

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"repro/internal/engine"
	"repro/internal/plan"
)

// Rehydrator is the optional engine capability needed to import a
// serialized plan cache: rebuilding a cached plan (with its recost
// representation) from a bare plan tree. engine.TemplateEngine implements
// it.
type Rehydrator interface {
	Rehydrate(p *plan.Plan) (*engine.CachedPlan, error)
}

// cacheJSON is the serialized plan-cache state: the plan list plus the
// instance 5-tuples (referencing plans by fingerprint). Configuration is
// not serialized — the importing SCR supplies its own.
type cacheJSON struct {
	Plans     []json.RawMessage `json:"plans"`
	Instances []instanceJSON    `json:"instances"`
}

type instanceJSON struct {
	V           []float64 `json:"v"`
	PlanFP      string    `json:"planFP"`
	C           float64   `json:"c"`
	S           float64   `json:"s"`
	U           int64     `json:"u"`
	Quarantined bool      `json:"quarantined,omitempty"`
}

// Export serializes the current plan cache (plan list + instance list) so
// it can be persisted across process restarts. The guarantee-relevant
// state — selectivity vectors, optimal costs, sub-optimality factors and
// quarantine flags — round-trips exactly.
func (s *SCR) Export() ([]byte, error) {
	// The published snapshot is immutable and internally consistent (plans
	// and instances from the same publication), so export needs no lock.
	snap := s.snapshot()
	out := cacheJSON{}
	for _, pe := range snap.plans {
		raw, err := json.Marshal(pe.cp.Plan)
		if err != nil {
			return nil, fmt.Errorf("core: exporting plan %s: %w", pe.fp, err)
		}
		out.Plans = append(out.Plans, raw)
	}
	for _, e := range snap.instances {
		a := e.anc.Load()
		out.Instances = append(out.Instances, instanceJSON{
			V: e.v, PlanFP: e.pp.fp, C: a.c, S: a.s,
			U: e.u.Load(), Quarantined: e.quarantined.Load(),
		})
	}
	return json.Marshal(out)
}

// Import restores a plan cache exported by Export into an empty SCR whose
// engine supports rehydration. Importing into a non-empty cache is
// rejected: merged caches could double-count usage and violate budget
// accounting. The whole install — plan set and instance list — lands
// under one publication, so readers see either the empty cache or the
// fully imported one.
func (s *SCR) Import(data []byte) error {
	rh, ok := s.eng.(Rehydrator)
	if !ok {
		return fmt.Errorf("core: engine %T cannot rehydrate plans", s.eng)
	}
	d := &s.dom
	d.lock()
	defer d.unlock()
	if len(d.plans) != 0 || len(d.instances) != 0 {
		return fmt.Errorf("core: import into non-empty plan cache")
	}
	var in cacheJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("core: import: %w", err)
	}
	byFP := make(map[string]*planEntry, len(in.Plans))
	for i, raw := range in.Plans {
		p, err := plan.UnmarshalPlan(raw)
		if err != nil {
			return fmt.Errorf("core: import plan %d: %w", i, err)
		}
		cp, err := rh.Rehydrate(p)
		if err != nil {
			return fmt.Errorf("core: rehydrating plan %d: %w", i, err)
		}
		pe := &planEntry{cp: cp, fp: cp.Fingerprint()}
		byFP[pe.fp] = pe
	}
	if s.cfg.PlanBudget > 0 && len(byFP) > s.cfg.PlanBudget {
		return fmt.Errorf("%w: import has %d plans, budget is %d", ErrBudgetExhausted, len(byFP), s.cfg.PlanBudget)
	}
	var insts []*instanceEntry
	// Imported anchors are adopted into the engine's current statistics
	// epoch: importing asserts the snapshot was taken against statistics
	// equivalent to the present store (the pre-epoch semantics). A caller
	// restoring against drifted statistics should Revalidate afterwards.
	epoch := s.statsEpoch()
	for i, ij := range in.Instances {
		pe, ok := byFP[ij.PlanFP]
		if !ok {
			return fmt.Errorf("core: import instance %d references unknown plan %q", i, ij.PlanFP)
		}
		if len(ij.V) != s.eng.Dimensions() {
			return fmt.Errorf("core: import instance %d has %d dimensions, engine has %d",
				i, len(ij.V), s.eng.Dimensions())
		}
		if ij.C <= 0 || ij.S < 1 {
			return fmt.Errorf("core: import instance %d has invalid C=%v S=%v", i, ij.C, ij.S)
		}
		e := newInstance(ij.V, pe, ij.C, ij.S, ij.U, epoch)
		e.quarantined.Store(ij.Quarantined)
		insts = append(insts, e)
	}
	d.installImportLocked(byFP, insts)
	return nil
}

// Snapshot file framing. A node killed mid-persist must always be able to
// rejoin the cluster from its last good snapshot, so snapshot files are
// written via temp file + fsync + atomic rename and framed so partial or
// torn contents are detected on read instead of half-imported:
//
//	offset 0  magic "PQOSNAP1" (8 bytes)
//	offset 8  big-endian uint32 IEEE CRC of the payload
//	offset 12 big-endian uint64 payload length
//	offset 20 payload (Export JSON)
var snapshotMagic = []byte("PQOSNAP1")

const snapshotHeaderLen = len("PQOSNAP1") + 4 + 8

// ErrSnapshotCorrupt reports that a snapshot file exists but its framing
// is damaged — truncated payload, checksum mismatch, or an impossible
// length. Callers must treat the snapshot as absent rather than import a
// torn write.
var ErrSnapshotCorrupt = errors.New("pqo: snapshot file corrupt or truncated")

// WriteSnapshotFile persists an Export-produced snapshot crash-safely: the
// framed payload is written to a temp file in the same directory, fsynced,
// atomically renamed over path, and the directory entry is fsynced too. A
// crash at any point leaves either the previous snapshot or the new one at
// path, never a mix; abandoned temp files are ignorable garbage.
func WriteSnapshotFile(path string, data []byte) (err error) {
	var buf bytes.Buffer
	buf.Grow(snapshotHeaderLen + len(data))
	buf.Write(snapshotMagic)
	var hdr [12]byte
	binary.BigEndian.PutUint32(hdr[:4], crc32.ChecksumIEEE(data))
	binary.BigEndian.PutUint64(hdr[4:], uint64(len(data)))
	buf.Write(hdr[:])
	buf.Write(data)

	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("core: snapshot temp file: %w", err)
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	if _, err = f.Write(buf.Bytes()); err != nil {
		return fmt.Errorf("core: snapshot write: %w", err)
	}
	if err = f.Sync(); err != nil {
		return fmt.Errorf("core: snapshot fsync: %w", err)
	}
	if err = f.Close(); err != nil {
		return fmt.Errorf("core: snapshot close: %w", err)
	}
	if err = os.Rename(tmp, path); err != nil {
		return fmt.Errorf("core: snapshot rename: %w", err)
	}
	// Persist the rename itself. Directory fsync is best-effort where the
	// platform disallows opening directories; the rename is already atomic
	// with respect to readers either way.
	if d, derr := os.Open(dir); derr == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	return nil
}

// ReadSnapshotFile reads a snapshot written by WriteSnapshotFile and
// returns its payload after verifying length and checksum; damaged framing
// yields an error wrapping ErrSnapshotCorrupt. Files that predate the
// framing (raw Export JSON, no magic) are returned as-is for backward
// compatibility — they carry no integrity protection.
func ReadSnapshotFile(path string) ([]byte, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if !bytes.HasPrefix(raw, snapshotMagic) {
		return raw, nil // legacy unframed snapshot
	}
	if len(raw) < snapshotHeaderLen {
		return nil, fmt.Errorf("%w: %s: %d-byte header truncated", ErrSnapshotCorrupt, path, len(raw))
	}
	sum := binary.BigEndian.Uint32(raw[len(snapshotMagic):])
	n := binary.BigEndian.Uint64(raw[len(snapshotMagic)+4:])
	payload := raw[snapshotHeaderLen:]
	if n != uint64(len(payload)) {
		return nil, fmt.Errorf("%w: %s: payload %d bytes, header says %d", ErrSnapshotCorrupt, path, len(payload), n)
	}
	if got := crc32.ChecksumIEEE(payload); got != sum {
		return nil, fmt.Errorf("%w: %s: checksum %08x, header says %08x", ErrSnapshotCorrupt, path, got, sum)
	}
	return payload, nil
}

// SnapshotSummary describes an exported plan cache without rehydrating it.
type SnapshotSummary struct {
	Plans     []SnapshotPlan
	Instances int
	// Dimensions is the selectivity-vector width of the stored instances.
	Dimensions int
}

// SnapshotPlan summarizes one cached plan within a snapshot.
type SnapshotPlan struct {
	Fingerprint string
	// Instances is the number of instance entries bound to this plan;
	// Usage is their aggregate usage count U.
	Instances int
	Usage     int64
	// MinCost and MaxCost bound the optimal costs of the bound instances.
	MinCost, MaxCost float64
	// Quarantined counts entries excluded from cost-check reuse (App. G).
	Quarantined int
}

// InspectSnapshot parses an Export-produced snapshot and returns its
// summary. It does not need an engine: plans are summarized structurally.
func InspectSnapshot(data []byte) (*SnapshotSummary, error) {
	var in cacheJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("core: inspect: %w", err)
	}
	out := &SnapshotSummary{Instances: len(in.Instances)}
	byFP := make(map[string]*SnapshotPlan)
	var order []string
	for i, raw := range in.Plans {
		p, err := plan.UnmarshalPlan(raw)
		if err != nil {
			return nil, fmt.Errorf("core: inspect plan %d: %w", i, err)
		}
		fp := p.Fingerprint()
		if _, dup := byFP[fp]; !dup {
			byFP[fp] = &SnapshotPlan{Fingerprint: fp}
			order = append(order, fp)
		}
	}
	for i, ij := range in.Instances {
		sp, ok := byFP[ij.PlanFP]
		if !ok {
			return nil, fmt.Errorf("core: inspect: instance %d references unknown plan %q", i, ij.PlanFP)
		}
		if out.Dimensions == 0 {
			out.Dimensions = len(ij.V)
		}
		sp.Instances++
		sp.Usage += ij.U
		if ij.Quarantined {
			sp.Quarantined++
		}
		if sp.MinCost == 0 || ij.C < sp.MinCost {
			sp.MinCost = ij.C
		}
		if ij.C > sp.MaxCost {
			sp.MaxCost = ij.C
		}
	}
	for _, fp := range order {
		out.Plans = append(out.Plans, *byFP[fp])
	}
	return out, nil
}
