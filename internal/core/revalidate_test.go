package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/pqotest"
)

// epochSCR builds an SCR over a synthetic EpochEngine with a deterministic
// two-plan split, plus the raw engine for ground-truth checks.
func epochSCR(t *testing.T, opts ...Option) (*SCR, *pqotest.EpochEngine) {
	t.Helper()
	eng := pqotest.NewEpochEngine(twoPlaneEngine(t))
	s, err := New(eng, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return s, eng
}

func TestDecisionCarriesEpoch(t *testing.T) {
	s, eng := epochSCR(t)
	ctx := context.Background()
	dec, err := s.Process(ctx, []float64{0.01, 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Epoch != 1 {
		t.Fatalf("optimizer decision epoch = %d, want 1", dec.Epoch)
	}
	// A nearby instance is served by the selectivity check, anchored at 1.
	dec, err = s.Process(ctx, []float64{0.011, 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Via != ViaSelectivity || dec.Epoch != 1 {
		t.Fatalf("sel-check decision = (%v, epoch %d), want (selectivity, 1)", dec.Via, dec.Epoch)
	}
	eng.Advance()
	dec, err = s.Process(ctx, []float64{0.5, 0.001})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Optimized && dec.Epoch != 2 {
		t.Fatalf("post-advance optimizer decision epoch = %d, want 2", dec.Epoch)
	}
}

func TestEpochLagServesFlaggedFallback(t *testing.T) {
	s, eng := epochSCR(t)
	ctx := context.Background()
	anchor := []float64{0.01, 0.01}
	if _, err := s.Process(ctx, anchor); err != nil {
		t.Fatal(err)
	}
	eng.Advance()
	// The exact anchor vector still passes the selectivity check (G·L = 1),
	// served under its own (old) epoch, not degraded.
	dec, err := s.Process(ctx, anchor)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Degraded || dec.Via != ViaSelectivity || dec.Epoch != 1 {
		t.Fatalf("lagging sel-hit = (%v, degraded=%v, epoch %d), want (selectivity, false, 1)",
			dec.Via, dec.Degraded, dec.Epoch)
	}
	// A vector failing the sel check but reachable only via a lagging
	// candidate is served as the flagged epoch-lag fallback: lagging
	// entries are excluded from cost-check candidacy, and serving flagged
	// beats stampeding the optimizer mid-revalidation. Disable the cost
	// check's contribution by picking a far vector — with only lagging
	// entries cached, every path reduces to the lag fallback.
	dec, err = s.Process(ctx, []float64{0.2, 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Via == ViaFallback {
		if !dec.Degraded || dec.DegradedReason != DegradedStatsEpochLag {
			t.Fatalf("lag fallback not flagged: %+v", dec)
		}
		if dec.Epoch != 1 {
			t.Fatalf("lag fallback epoch = %d, want 1", dec.Epoch)
		}
		if s.Stats().EpochLagFallbacks == 0 {
			t.Fatal("EpochLagFallbacks counter not incremented")
		}
	} else if !dec.Optimized {
		t.Fatalf("expected lag fallback or fresh optimization, got %+v", dec)
	}
}

func TestStatsReportsEpochAndLag(t *testing.T) {
	s, eng := epochSCR(t)
	ctx := context.Background()
	if _, err := s.Process(ctx, []float64{0.01, 0.01}); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.StatsEpoch != 1 || st.LaggingInstances != 0 {
		t.Fatalf("pre-advance stats = (epoch %d, lagging %d), want (1, 0)", st.StatsEpoch, st.LaggingInstances)
	}
	eng.Advance()
	st = s.Stats()
	if st.StatsEpoch != 2 || st.LaggingInstances != 1 {
		t.Fatalf("post-advance stats = (epoch %d, lagging %d), want (2, 1)", st.StatsEpoch, st.LaggingInstances)
	}
}

func TestRevalidateReanchorsLaggingEntries(t *testing.T) {
	s, eng := epochSCR(t)
	ctx := context.Background()
	// Populate anchors in both plans' optimality regions.
	vectors := [][]float64{{0.01, 0.9}, {0.9, 0.01}, {0.05, 0.8}, {0.8, 0.05}}
	for _, sv := range vectors {
		if _, err := s.Process(ctx, sv); err != nil {
			t.Fatal(err)
		}
	}
	eng.Advance()
	r, err := s.Revalidate(ctx, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	p := r.Progress()
	if !p.Finished || p.Superseded {
		t.Fatalf("run state = %+v, want finished, not superseded", p)
	}
	if p.Done != p.Total {
		t.Fatalf("done %d != total %d", p.Done, p.Total)
	}
	if p.ReAnchored+p.Demoted+p.Failed == 0 {
		t.Fatalf("no entries handled: %+v", p)
	}
	st := s.Stats()
	if st.LaggingInstances != 0 {
		t.Fatalf("lagging instances after revalidation = %d, want 0", st.LaggingInstances)
	}
	// Every surviving anchor must now carry the new epoch, and serving
	// resumes un-degraded with epoch 2 decisions.
	dec, err := s.Process(ctx, []float64{0.01, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Degraded || dec.Epoch != 2 {
		t.Fatalf("post-revalidation decision = (degraded=%v, epoch %d), want (false, 2)", dec.Degraded, dec.Epoch)
	}
}

// TestRevalidateGuaranteeAtNewEpoch verifies λ-optimality against ground
// truth at the new epoch after revalidation: every non-degraded decision's
// plan cost is within λ of the true optimum of the epoch it was served
// from.
func TestRevalidateGuaranteeAtNewEpoch(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	raw, err := pqotest.RandomEngine(rng, 3, 6)
	if err != nil {
		t.Fatal(err)
	}
	eng := pqotest.NewEpochEngine(raw)
	s, err := New(eng, WithLambda(2))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var svs [][]float64
	for i := 0; i < 40; i++ {
		svs = append(svs, pqotest.RandomSVector(rng, 3))
	}
	for _, sv := range svs {
		if _, err := s.Process(ctx, sv); err != nil {
			t.Fatal(err)
		}
	}
	for advance := 0; advance < 3; advance++ {
		eng.Advance()
		r, err := s.Revalidate(ctx, 3)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Wait(ctx); err != nil {
			t.Fatal(err)
		}
		for _, sv := range svs {
			dec, err := s.Process(ctx, sv)
			if err != nil {
				t.Fatal(err)
			}
			if dec.Degraded {
				continue // guarantee explicitly relaxed and flagged
			}
			got, ok := eng.CostAt(dec.Plan.Fingerprint(), sv, dec.Epoch)
			if !ok {
				t.Fatalf("unknown plan served: %q", dec.Plan.Fingerprint())
			}
			opt := eng.OptimalCostAt(sv, dec.Epoch)
			if got > 2*opt*(1+1e-9) {
				t.Fatalf("λ violated at %v (epoch %d, via %v): cost %v > 2·%v",
					sv, dec.Epoch, dec.Via, got, opt)
			}
		}
	}
}

func TestRevalidateSuperseded(t *testing.T) {
	s, eng := epochSCR(t)
	ctx := context.Background()
	for i := 0; i < 4; i++ {
		if _, err := s.Process(ctx, []float64{0.01 + float64(i)*0.001, 0.9}); err != nil {
			t.Fatal(err)
		}
	}
	eng.Advance()
	r1, err := s.Revalidate(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	eng.Advance()
	r2, err := s.Revalidate(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := r2.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	// r1 must be stopped (either it finished before the second advance or
	// it was superseded); its Done channel must be closed either way.
	select {
	case <-r1.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("superseded run never finished")
	}
	if got := s.CurrentRevalidation(); got != r2 {
		t.Fatalf("CurrentRevalidation = %p, want the newest run %p", got, r2)
	}
	if s.Stats().LaggingInstances != 0 {
		t.Fatalf("lag remains after final revalidation: %d", s.Stats().LaggingInstances)
	}
}

func TestRevalidateRequiresEpochEngine(t *testing.T) {
	s := mustSCR(t, twoPlaneEngine(t), Config{Lambda: 2})
	if _, err := s.Revalidate(context.Background(), 1); err == nil {
		t.Fatal("Revalidate on an epoch-less engine must fail")
	} else if !errors.Is(err, ErrEpochUnsupported) {
		t.Fatalf("error = %v, want ErrEpochUnsupported", err)
	}
}

func TestRevalidateNoLagIsNoop(t *testing.T) {
	s, _ := epochSCR(t)
	ctx := context.Background()
	if _, err := s.Process(ctx, []float64{0.01, 0.01}); err != nil {
		t.Fatal(err)
	}
	r, err := s.Revalidate(ctx, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if p := r.Progress(); p.Total != 0 || !p.Finished {
		t.Fatalf("no-lag run progress = %+v, want empty finished run", p)
	}
}

// TestRevalidateConcurrentServing drives Process traffic across an epoch
// advance with revalidation in flight and asserts every decision is either
// λ-guaranteed against the epoch it reports, or explicitly degraded.
func TestRevalidateConcurrentServing(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	raw, err := pqotest.RandomEngine(rng, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	eng := pqotest.NewEpochEngine(raw)
	s, err := New(eng, WithLambda(2))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var svs [][]float64
	for i := 0; i < 32; i++ {
		svs = append(svs, pqotest.RandomSVector(rng, 3))
	}
	for _, sv := range svs {
		if _, err := s.Process(ctx, sv); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			wrng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				sv := svs[wrng.Intn(len(svs))]
				dec, err := s.Process(ctx, sv)
				if err != nil {
					errCh <- err
					return
				}
				if dec.Degraded {
					continue
				}
				got, ok := eng.CostAt(dec.Plan.Fingerprint(), sv, dec.Epoch)
				opt := eng.OptimalCostAt(sv, dec.Epoch)
				if !ok || got > 2*opt*(1+1e-9) {
					errCh <- fmt.Errorf("λ violated at %v (epoch %d): cost %v > 2·%v", sv, dec.Epoch, got, opt)
					return
				}
			}
		}(int64(w) + 100)
	}

	eng.Advance()
	r, err := s.Revalidate(ctx, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
}
