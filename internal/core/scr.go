package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/stripe"
)

// Config parameterizes SCR.
//
// Deprecated: Config retains its original zero-value-magic semantics
// (LambdaR 0 → √λ, CostCheckLimit 0 → 8, ViolationTolerance 0 → 1%) for
// callers of NewSCR. New code should build SCRs with New and functional
// options (WithLambda, WithPlanBudget, WithDynamicLambda, ...), which
// validate every value explicitly.
type Config struct {
	// Lambda is the cost sub-optimality bound λ ≥ 1 every processed
	// instance must satisfy (SO(q) ≤ λ).
	Lambda float64
	// LambdaR is the redundancy-check threshold λr < λ. Zero selects the
	// paper's default √λ (Appendix E). Set StoreAlways to disable the
	// redundancy check entirely (λr = 1, i.e. keep every new plan).
	LambdaR     float64
	StoreAlways bool
	// PlanBudget is the hard limit k on cached plans; 0 means unlimited
	// (§6.3.1).
	PlanBudget int
	// CostCheckLimit bounds the number of Recost calls per getPlan: the
	// selectivity check collects cost-check candidates in increasing GL
	// order and rejects the rest (§6.2's pruning heuristic). Zero selects
	// the default of 8. Negative disables the cost check entirely.
	CostCheckLimit int
	// GLCutoff additionally rejects cost-check candidates whose GL exceeds
	// this value; zero disables the cutoff.
	GLCutoff float64
	// OrderCandidatesByL sorts cost-check candidates by increasing L
	// instead of the paper's increasing G·L. Rationale (an extension over
	// §6.2): the cost check replaces G with the measured ratio R, so a
	// candidate's G is irrelevant to whether R·L ≤ λ/S can hold — only a
	// small L gives headroom. Instances the new one *dominates* have L = 1
	// and are the most likely to pass, yet have the largest G·L and are
	// pruned first under GL order. L-ordering markedly reduces optimizer
	// calls on high-dimensional templates (see the candidate-order
	// ablation bench).
	OrderCandidatesByL bool
	// Scan selects the instance-list traversal order for the selectivity
	// check (§6.2's alternatives): insertion order (default), decreasing
	// selectivity-region area, or decreasing usage count.
	Scan ScanOrder
	// DetectViolations enables Appendix G: instances whose recost reveals
	// a BCG violation are quarantined from future cost-check reuse.
	DetectViolations bool
	// ViolationTolerance is the relative slack for violation detection;
	// zero selects 1%.
	ViolationTolerance float64
	// Dynamic enables Appendix D's per-instance λ; nil keeps λ static.
	Dynamic *DynamicLambda

	// DegradedFallback enables degraded-mode serving: when the optimizer
	// is unavailable (error, panic, deadline, open breaker) Process falls
	// back to the cheapest cached plan and returns a Decision flagged
	// Degraded instead of an error (docs/ROBUSTNESS.md).
	DegradedFallback bool
	// OptimizerDeadline, when positive, bounds each full optimizer call;
	// a call exceeding it is abandoned (it still populates the cache if it
	// eventually completes) and the instance is served degraded.
	OptimizerDeadline time.Duration
	// BreakerThreshold, when positive, arms a circuit breaker on the
	// optimizer: after this many consecutive failures/timeouts the breaker
	// opens and optimizer calls are skipped for BreakerCooldown, then a
	// half-open probe decides whether to close again.
	BreakerThreshold int
	BreakerCooldown  time.Duration

	// SkewBound is the cross-node statistics-generation skew the node
	// tolerates before flagging its decisions: when the observed cluster
	// epoch (ObserveClusterEpoch) exceeds the node's own epoch by more
	// than this many generations, every decision is served degraded with
	// DegradedEpochSkew. Zero selects the default of 1 — adjacent
	// generations only, matching the coordinator's default withhold rule.
	SkewBound int

	// sharedWriteMu, when non-nil, makes the SCR's write domain acquire
	// this mutex instead of its own — collapsing several SCRs into one
	// write domain. Benchmark-only (WithSharedWriteLock): it reconstructs
	// the pre-sharding single-mutex write path as a baseline.
	sharedWriteMu *sync.Mutex
	// eagerPublish disables publication coalescing: every mutation under
	// the domain mutex republishes the snapshot immediately. Benchmark-only
	// (WithEagerPublish): it reconstructs the publish-per-mutation baseline.
	eagerPublish bool
}

// DynamicLambda maps an instance's optimal cost to a λ in [Min, Max] via an
// exponentially decaying function of cost (Appendix D): cheap instances get
// a loose bound (large λ), expensive instances a tight one.
type DynamicLambda struct {
	Min, Max float64
	// RefCost is the decay scale: λ(C) = Min + (Max−Min)·exp(−C/RefCost).
	RefCost float64
}

// lambdaFor returns the sub-optimality bound to enforce for an instance
// whose optimal cost is c.
func (c0 *Config) lambdaFor(c float64) float64 {
	if c0.Dynamic == nil {
		return c0.Lambda
	}
	d := c0.Dynamic
	ref := d.RefCost
	if ref <= 0 {
		ref = 1
	}
	return d.Min + (d.Max-d.Min)*math.Exp(-c/ref)
}

func (c0 *Config) lambdaR() float64 {
	if c0.StoreAlways {
		return 1
	}
	if c0.LambdaR > 0 {
		return c0.LambdaR
	}
	return math.Sqrt(c0.Lambda)
}

// lambdaMax is the loosest sub-optimality bound any instance can be held
// to: λ itself, or the dynamic range's upper end. It bounds the
// selectivity-index search window — an entry can only pass the
// selectivity check for a query whose region weight is within a λmax
// factor of the entry's (see selHit).
func (c0 *Config) lambdaMax() float64 {
	if c0.Dynamic != nil {
		return c0.Dynamic.Max
	}
	return c0.Lambda
}

func (c0 *Config) costCheckLimit() int {
	if c0.CostCheckLimit == 0 {
		return 8
	}
	return c0.CostCheckLimit
}

func (c0 *Config) validate() error {
	if c0.Lambda < 1 {
		return optErr("lambda %v must be >= 1", c0.Lambda)
	}
	if c0.LambdaR != 0 && (c0.LambdaR < 1 || c0.LambdaR > c0.Lambda) {
		return optErr("lambdaR %v must lie in [1, lambda]", c0.LambdaR)
	}
	if c0.PlanBudget < 0 {
		return optErr("plan budget %v must be >= 0", c0.PlanBudget)
	}
	if d := c0.Dynamic; d != nil {
		if d.Min < 1 || d.Max < d.Min {
			return optErr("dynamic lambda range [%v,%v] invalid", d.Min, d.Max)
		}
	}
	if c0.OptimizerDeadline < 0 {
		return optErr("optimizer deadline %v must be >= 0", c0.OptimizerDeadline)
	}
	if c0.BreakerThreshold < 0 {
		return optErr("breaker threshold %d must be >= 0", c0.BreakerThreshold)
	}
	if c0.BreakerThreshold > 0 && c0.BreakerCooldown <= 0 {
		return optErr("breaker cooldown %v must be > 0", c0.BreakerCooldown)
	}
	if c0.SkewBound < 0 {
		return optErr("cluster skew bound %d must be >= 0", c0.SkewBound)
	}
	return nil
}

// skewBound is the effective cross-node skew tolerance (generations).
func (c0 *Config) skewBound() uint64 {
	if c0.SkewBound > 0 {
		return uint64(c0.SkewBound)
	}
	return 1
}

// planEntry is one plan in the plan cache's plan list.
type planEntry struct {
	cp *engine.CachedPlan
	fp string
}

// anchor is the guarantee-bearing core of an instance entry: the optimal
// cost C and sub-optimality S of §6.1's 5-tuple, tagged with the
// statistics epoch they were derived under. C and S are only meaningful
// together and only against one statistics generation, so they live in a
// single immutable struct behind an atomic pointer — readers always
// observe a consistent (C, S, epoch) triple, and the background
// revalidator re-anchors entries by swapping the pointer without taking
// the cache's write lock.
type anchor struct {
	c     float64 // C: optimizer-estimated optimal cost at V
	s     float64 // S: sub-optimality of PP at V
	epoch uint64  // statistics epoch C and S were derived under
}

// instanceEntry is the 5-tuple I = <V, PP, C, S, U> of §6.1, plus the
// Appendix G quarantine flag. The immutable fields (v, pp) are set at
// insertion under the mutex, before the entry is published; the anchor
// (C, S, epoch) is an atomic pointer swapped by revalidation; the
// remaining mutable fields (u, quarantined) are atomics so the lock-free
// read path can update them on shared, published entries.
type instanceEntry struct {
	v   []float64 // V: selectivity vector of the optimized instance
	pp  *planEntry
	anc atomic.Pointer[anchor]
	u   atomic.Int64 // U: usage count (instances served through this entry)
	// quarantined excludes the entry from cost-check reuse after a BCG
	// violation was observed through it (Appendix G).
	quarantined atomic.Bool
}

func newInstance(v []float64, pp *planEntry, c, s float64, u int64, epoch uint64) *instanceEntry {
	e := &instanceEntry{v: v, pp: pp}
	e.anc.Store(&anchor{c: c, s: s, epoch: epoch})
	e.u.Store(u)
	return e
}

// counters are SCR's cumulative statistics. The counters every request
// bumps on the lock-free read path are striped (stripe.Int64): a shared
// atomic there would put all cores back on one cache line and re-
// serialize the very path the RCU snapshot freed. Counters touched only
// on slow paths (optimizer calls, evictions, breaker transitions,
// revalidation) stay plain atomics — striping them would buy nothing and
// cost 4KiB each.
type counters struct {
	// Hot: bumped by every Process / selectivity check / cost check.
	instances      stripe.Int64
	readPathHits   stripe.Int64
	selChecks      stripe.Int64
	getPlanRecosts stripe.Int64
	// writerWaitNs accumulates time spent waiting to acquire a write
	// domain's mutex (pqo_writer_wait_seconds_total). Striped: under a
	// miss-heavy load every Process may charge it, and the whole point of
	// sharded write domains is that those writers not share a cache line.
	writerWaitNs stripe.Int64

	// Cold: slow-path only.
	optCalls       atomic.Int64
	sharedOptCalls atomic.Int64
	manageRecosts  atomic.Int64
	violations     atomic.Int64
	evictions      atomic.Int64
	redundantPlans atomic.Int64
	writePathHits  atomic.Int64
	degraded       atomic.Int64
	readPathErrors atomic.Int64
	// Publication accounting (domain.go): snapshots actually published
	// (flushes with pending marks) and marks absorbed by coalescing —
	// publishes + coalesced = publishLocked calls.
	publishes atomic.Int64
	coalesced atomic.Int64
	// Epoch lifecycle counters (revalidate.go): instances served flagged
	// because their candidates lagged the current epoch, anchors
	// revalidated, entries demoted in place, entries/plans dropped, and
	// revalidation attempts that errored.
	epochLagServed atomic.Int64
	skewFlagged    atomic.Int64
	revalidated    atomic.Int64
	revalDemoted   atomic.Int64
	revalDroppedI  atomic.Int64
	revalDroppedP  atomic.Int64
	revalFailed    atomic.Int64
}

// cacheSnapshot is the immutable published view of one write domain's
// plan cache. It is built under the domain's writer mutex and published
// with a single atomic pointer store (flushLocked, domain.go); readers
// load the pointer and scan without locks or fences beyond the load
// itself — Go's atomic.Pointer gives the happens-before edge that makes
// everything reachable from the snapshot visible.
//
// Sharing discipline: the instances and plans slice HEADERS here are
// copies of the master's, and the instance backing array is shared with
// the master under the append-only invariant (domain.go): the published
// length is fixed at publication, master appends land strictly beyond
// it, and every non-append mutation installs a freshly allocated master
// slice. No published element is ever written again except the instance
// entries' designated atomic fields (anchor, usage, quarantine), which
// are the shared mutable channel by design. The plan list is rebuilt
// copy-on-write on every plan-set change, so the published header always
// names an array the master will never touch.
type cacheSnapshot struct {
	// instances is the scan-ordered instance list (the 5-tuples of §6.1).
	instances []*instanceEntry
	// plans is the plan list in ascending fingerprint order — the
	// deterministic iteration the degraded fallback and Export need.
	plans []*planEntry
	// index orders the same instance entries by anchor region weight for
	// the O(log n + candidates) selectivity hit test (selHit).
	index selIndex
	// version counts publications. Under coalescing one publication may
	// cover a whole batch of mutations (a k-plan sweep, an import), but a
	// mutation is never visible to readers without a version move, so the
	// miss path's rule stands: re-run the checks only when the version
	// moved past its read-path observation, and a serial miss pays the
	// checks exactly once.
	version int64
	// epoch is the statistics epoch current when the snapshot was
	// published (diagnostic; per-entry guarantees carry their own epochs
	// in their anchors).
	epoch uint64
}

// SCR is the paper's technique: an online PQO plan cache driven by the
// selectivity, cost and redundancy checks.
//
// Concurrency model (RCU-style read-mostly serving): Process's hot path —
// the selectivity check, the cost check — plus ProbeCheck, Stats, Export
// and Revalidate's walk all run against an immutable cacheSnapshot loaded
// from an atomic pointer; they acquire no locks. Cache management
// (inserting plans and instances, eviction, sweep, import) mutates the
// master state under a plain writer mutex and republishes the snapshot
// copy-on-write. Concurrent misses for byte-identical selectivity vectors
// share one optimizer call through a singleflight group, and every miss
// re-checks the cache once more before optimizing, so a burst of
// identical cold instances performs exactly one optimizer call.
type SCR struct {
	cfg Config
	eng Engine
	// epochEng is eng's versioned-statistics surface, nil when the engine
	// has no epoch lifecycle (then every anchor is at epoch 0 forever and
	// the epoch machinery is inert).
	epochEng EpochEngine
	// reval is the in-flight background revalidation, if any; superseded
	// runs are cancelled and replaced (revalidate.go).
	reval atomic.Pointer[Revalidation]
	// breaker gates optimizer calls when WithCircuitBreaker is set; nil
	// (the default) always allows.
	breaker *breaker

	// dom is this template's write domain (domain.go): the writer mutex,
	// the master plan/instance lists, and the published snapshot pointer.
	// One SCR serves one template, so SCR-level sharding is per-template
	// sharding — exactly the partition the paper's checks respect, since
	// instances of different templates never interact in the selectivity
	// or cost check. All master-state mutation goes through dom's
	// methods; SCR methods wrap them with lock/unlock.
	dom writeDomain

	// maxPlans is the plan-count high-water mark; written under the
	// domain mutex, read lock-free by Stats.
	maxPlans atomic.Int64

	// clusterEpoch is the highest cluster-wide statistics generation the
	// node has observed via ObserveClusterEpoch (zero until a coordinator
	// speaks). When it runs ahead of the engine's own epoch by more than
	// cfg.skewBound() generations, Process flags every decision with
	// DegradedEpochSkew instead of silently serving across the bound.
	clusterEpoch atomic.Uint64

	flight  flightGroup
	lookups atomic.Int64
	ctr     counters
}

// NewSCR returns an SCR technique over eng with the given configuration.
//
// Deprecated: use New with functional options; NewSCR remains for one
// release for callers holding a Config.
func NewSCR(eng Engine, cfg Config) (*SCR, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	s := &SCR{cfg: cfg, eng: eng}
	if ee, ok := eng.(EpochEngine); ok {
		s.epochEng = ee
	}
	if cfg.BreakerThreshold > 0 {
		s.breaker = newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown)
	}
	s.dom.init(s)
	return s, nil
}

// statsEpoch returns the engine's current statistics epoch id, 0 for
// epoch-less engines.
func (s *SCR) statsEpoch() uint64 {
	if s.epochEng != nil {
		return s.epochEng.StatsEpoch()
	}
	return 0
}

// ObserveClusterEpoch records that the cluster-wide statistics generation
// has reached at least id. The observation is monotonic (stale or
// duplicate deliveries are ignored) and lock-free, so transport layers may
// call it on every RPC. Once the observed cluster epoch runs ahead of the
// node's own statistics epoch by more than the configured skew bound,
// Process serves every decision flagged DegradedEpochSkew until the node
// catches up (docs/ROBUSTNESS.md).
func (s *SCR) ObserveClusterEpoch(id uint64) {
	for {
		cur := s.clusterEpoch.Load()
		if id <= cur || s.clusterEpoch.CompareAndSwap(cur, id) {
			return
		}
	}
}

// ClusterEpoch returns the highest cluster generation observed, zero if no
// coordinator has spoken.
func (s *SCR) ClusterEpoch() uint64 {
	return s.clusterEpoch.Load()
}

// CurrentStatsEpoch returns the engine's current statistics epoch id (0
// for epoch-less engines): the node-local generation, cheap enough for
// per-request use.
func (s *SCR) CurrentStatsEpoch() uint64 {
	return s.statsEpoch()
}

// EpochSkew returns how many generations the node's own statistics epoch
// lags the observed cluster epoch (0 when caught up, ahead, or epoch-less).
func (s *SCR) EpochSkew() uint64 {
	if s.epochEng == nil {
		return 0
	}
	cluster := s.clusterEpoch.Load()
	if local := s.statsEpoch(); cluster > local {
		return cluster - local
	}
	return 0
}

// SkewLagging reports whether the node is behind the observed cluster
// epoch by more than the configured skew bound (WithClusterSkewBound,
// default 1) — the condition under which Process flags every decision
// DegradedEpochSkew and health surfaces should report the node degraded.
func (s *SCR) SkewLagging() bool {
	return s.EpochSkew() > s.cfg.skewBound()
}

// flagSkew demotes a healthy decision to an explicitly flagged one when
// the node knows it is behind the cluster skew bound. The plan and its
// epoch are untouched — the λ bound still holds against the generation
// Decision.Epoch names — but Via/Degraded say the node should not be
// trusted to be within one generation of its peers. Already-degraded
// decisions keep their original (more specific) reason.
//
//lint:allow hotalloc one Decision copy, only on the rare skew-lagging path
func (s *SCR) flagSkew(dec *Decision) *Decision {
	if dec == nil || dec.Degraded || !s.SkewLagging() {
		return dec
	}
	d := *dec
	d.Via = ViaFallback
	d.Degraded = true
	d.DegradedReason = DegradedEpochSkew
	s.ctr.skewFlagged.Add(1)
	s.ctr.degraded.Add(1)
	return &d
}

// Name identifies the technique and its λ, e.g. "SCR(2)".
func (s *SCR) Name() string {
	if s.cfg.Dynamic != nil {
		return fmt.Sprintf("SCR(dyn %g..%g)", s.cfg.Dynamic.Min, s.cfg.Dynamic.Max)
	}
	return fmt.Sprintf("SCR(%g)", s.cfg.Lambda)
}

// Stats returns cumulative counters. It reads the published snapshot and
// the (striped) counters, never the writer mutex, so scraping /stats under
// load perturbs nothing.
func (s *SCR) Stats() Stats {
	snap := s.snapshot()
	st := Stats{
		Instances:              s.ctr.instances.Load(),
		OptCalls:               s.ctr.optCalls.Load(),
		SharedOptCalls:         s.ctr.sharedOptCalls.Load(),
		GetPlanRecosts:         s.ctr.getPlanRecosts.Load(),
		ManageRecosts:          s.ctr.manageRecosts.Load(),
		SelChecks:              s.ctr.selChecks.Load(),
		Violations:             s.ctr.violations.Load(),
		Evictions:              s.ctr.evictions.Load(),
		RedundantPlansRejected: s.ctr.redundantPlans.Load(),
		ReadPathHits:           s.ctr.readPathHits.Load(),
		WritePathHits:          s.ctr.writePathHits.Load(),
		WriteLockWait:          time.Duration(s.ctr.writerWaitNs.Load()),
		CurPlans:               len(snap.plans),
		MaxPlans:               int(s.maxPlans.Load()),
		WriteDomains:           1,
		PublishTotal:           s.ctr.publishes.Load(),
		PublishCoalesced:       s.ctr.coalesced.Load(),
	}
	st.DegradedDecisions = s.ctr.degraded.Load()
	st.ReadPathErrors = s.ctr.readPathErrors.Load()
	st.StatsEpoch = s.statsEpoch()
	st.ClusterEpoch = s.clusterEpoch.Load()
	if st.ClusterEpoch > st.StatsEpoch && s.epochEng != nil {
		st.EpochSkew = st.ClusterEpoch - st.StatsEpoch
	}
	st.EpochSkewFlagged = s.ctr.skewFlagged.Load()
	st.EpochLagFallbacks = s.ctr.epochLagServed.Load()
	st.RevalidatedPlans = s.ctr.revalidated.Load()
	st.RevalDemoted = s.ctr.revalDemoted.Load()
	st.RevalDroppedInstances = s.ctr.revalDroppedI.Load()
	st.RevalDroppedPlans = s.ctr.revalDroppedP.Load()
	st.RevalFailed = s.ctr.revalFailed.Load()
	for _, e := range snap.instances {
		if e.anc.Load().epoch < st.StatsEpoch {
			st.LaggingInstances++
		}
	}
	st.BreakerState = s.breaker.State()
	st.BreakerOpens, st.BreakerHalfOpens, st.BreakerCloses = s.breaker.Counters()
	if rep, ok := s.eng.(CacheReporter); ok {
		st.RecostCacheHits, st.RecostCacheMisses = rep.RecostCacheCounters()
		st.EnvPoolGets, st.EnvPoolReuses = rep.EnvPoolCounters()
	}
	if fr, ok := s.eng.(FaultReporter); ok {
		st.InjectedFaults = fr.InjectedFaults()
	}
	var mem int64
	for _, pe := range snap.plans {
		mem += int64(pe.cp.MemoryBytes())
	}
	mem += int64(len(snap.instances)) * 100 // ~100 bytes per 5-tuple (§6.1)
	st.MemoryBytes = mem
	return st
}

// prepareRecost returns a batched recosting context for sv when the engine
// supports batching, else nil. A nil context is valid: recostWith falls
// back to per-call Engine.Recost.
func (s *SCR) prepareRecost(sv []float64) *engine.PreparedInstance {
	if be, ok := s.eng.(BatchEngine); ok {
		if pi, err := be.PrepareRecost(sv); err == nil { //lint:allow envpool hand-off helper: every caller pairs prepareRecost with a deferred Release
			return pi
		}
	}
	return nil
}

// recostWith recosts cp at sv through the prepared instance when one is
// available (batched path: selectivity state built once per instance).
func (s *SCR) recostWith(pi *engine.PreparedInstance, cp *engine.CachedPlan, sv []float64) (float64, error) {
	if pi != nil {
		return pi.Recost(cp)
	}
	return s.eng.Recost(cp, sv)
}

// recostWithEpoch is recostWith plus the statistics epoch the cost was
// derived under (0 for epoch-less engines). The epoch comes from the
// prepared instance's pinned environment when batching, else from the
// engine's per-call epoch report.
func (s *SCR) recostWithEpoch(pi *engine.PreparedInstance, cp *engine.CachedPlan, sv []float64) (float64, uint64, error) {
	if pi != nil {
		c, err := pi.Recost(cp)
		return c, pi.EpochID(), err
	}
	if s.epochEng != nil {
		return s.epochEng.RecostEpoch(cp, sv)
	}
	c, err := s.eng.Recost(cp, sv)
	return c, 0, err
}

// prepareEpoch returns the epoch a prepared instance is pinned to; for
// the non-batched path it falls back to the engine's current epoch.
func (s *SCR) prepareEpoch(pi *engine.PreparedInstance) uint64 {
	if pi != nil {
		return pi.EpochID()
	}
	return s.statsEpoch()
}

// Process implements Technique: getPlan under the read lock, then — on a
// miss — one (possibly shared) optimizer call and manageCache under the
// write lock. Cancelling ctx aborts before the optimizer call and while
// waiting on another caller's shared flight; an optimizer call already in
// progress runs to completion so its plan still populates the cache.
//
// With WithDegradedFallback, optimizer unavailability (error, panic,
// deadline expiry, open breaker) and read-path engine failures never
// surface as errors while the cache holds plans: the instance is served
// by the degraded-mode fallback (degrade.go) with Decision.Degraded set.
// Context cancellation still errors — a cancelled caller wants no plan.
func (s *SCR) Process(ctx context.Context, sv []float64) (dec *Decision, err error) {
	s.ctr.instances.Add(1)
	if err := ctx.Err(); err != nil {
		return nil, cancelled(err)
	}
	s.maybeResort()
	if s.cfg.DegradedFallback {
		// Last-resort containment: a panic anywhere below (an engine crash
		// bug reached through the checks) becomes a degraded decision.
		defer func() {
			if r := recover(); r != nil {
				dec, err = s.degrade(sv, DegradedOptimizerPanic,
					fmt.Errorf("%w: %v", ErrOptimizerPanic, r))
			}
		}()
	}

	dec0, seen, err := s.readPath(ctx, sv)
	switch {
	case err != nil && s.cfg.DegradedFallback && !errors.Is(err, ErrCancelled):
		// Engine failure inside the checks. Fall through to the optimizer
		// path: if the optimizer is healthy the guarantee still holds, and
		// if it is not, the fallback below serves degraded.
		s.ctr.readPathErrors.Add(1)
	case err != nil:
		return nil, err
	case dec0 != nil:
		s.ctr.readPathHits.Add(1)
		return s.flagSkew(dec0), nil
	}

	// Both checks failed: full optimizer call, deduplicated across
	// concurrent identical instances.
	//lint:allow hotalloc miss-path flight closure, dominated by the optimizer call it wraps
	dec2, shared, err := s.flight.Do(ctx, svKey(sv), func() (*Decision, error) {
		// Second chance: an overlapping flight may have populated the
		// cache between our read-path miss and winning the flight. Only
		// re-run the checks if the cache actually changed since.
		if s.snapshot().version != seen {
			//lint:allow rcupublish intentional second-chance re-check after winning the flight
			dec, _, err := s.readPath(ctx, sv)
			switch {
			case err != nil && s.cfg.DegradedFallback && !errors.Is(err, ErrCancelled):
				s.ctr.readPathErrors.Add(1)
			case err != nil:
				return nil, err
			case dec != nil:
				s.ctr.writePathHits.Add(1)
				return dec, nil
			}
		}
		if err := ctx.Err(); err != nil {
			return nil, cancelled(err)
		}
		cp, optCost, ep, err := s.callOptimizer(ctx, sv)
		if err == nil && cp == nil {
			err = fmt.Errorf("%w: optimizer returned no plan", ErrNoPlan)
		}
		if err != nil {
			if s.cfg.DegradedFallback {
				return s.degrade(sv, degradeReason(err), err)
			}
			return nil, err
		}
		s.ctr.optCalls.Add(1)
		if err := s.storePlan(sv, cp, optCost, ep); err != nil {
			if s.cfg.DegradedFallback {
				// The freshly optimized plan is λ-optimal here by
				// definition; only the cache bookkeeping failed. Serve it.
				return &Decision{Plan: cp, Optimized: true, Via: ViaOptimizer, Epoch: ep}, nil
			}
			return nil, err
		}
		return &Decision{Plan: cp, Optimized: true, Via: ViaOptimizer, Epoch: ep}, nil
	})
	if err != nil {
		return nil, err
	}
	if shared {
		s.ctr.sharedOptCalls.Add(1)
		d := *dec2
		d.Optimized = false
		d.Shared = true
		return s.flagSkew(&d), nil
	}
	return s.flagSkew(dec2), nil
}

// storePlan records a freshly optimized (plan, instance) pair under the
// write lock (Algorithm 2). epoch is the statistics generation optCost
// was derived under; the new anchor is tagged with it.
func (s *SCR) storePlan(sv []float64, cp *engine.CachedPlan, optCost float64, epoch uint64) error {
	d := &s.dom
	d.lock()
	defer d.unlock()
	return d.manageCache(sv, cp, optCost, epoch)
}

// maybeResort refreshes the instance-list ordering per the configured scan
// order (§6.2) on a lookup cadence: usage counts and region areas evolve
// with traffic, so the ordering is refreshed periodically rather than only
// on insertion.
func (s *SCR) maybeResort() {
	if s.cfg.Scan == ScanInsertion {
		return
	}
	if s.lookups.Add(1)%resortEvery != 0 {
		return
	}
	d := &s.dom
	d.lock()
	defer d.unlock()
	d.resortInstances()
}

// snapshot returns the published cache snapshot: one atomic load, no
// locks. The snapshot is immutable (instanceEntry atomic fields aside)
// and stays valid indefinitely — writers publish replacements, they never
// touch published state.
func (s *SCR) snapshot() *cacheSnapshot {
	return s.dom.snap.Load()
}

// readPath runs getPlan against the published snapshot, returning the
// cache version observed so the miss path can skip its second-chance
// re-check when nothing changed.
func (s *SCR) readPath(ctx context.Context, sv []float64) (*Decision, int64, error) {
	snap := s.snapshot()
	dec, err := s.getPlan(ctx, sv, snap)
	return dec, snap.version, err
}

// selIndex orders a snapshot's instance entries by anchor region weight
// ∏ v_i, turning the selectivity hit test into a binary search plus a
// short window scan. The soundness argument: the check g·l ≤ λ/S with
// S ≥ 1 and λ ≤ λmax can only pass when g·l ≤ λmax, and
//
//	g·l = ∏ max(αi, 1/αi) ≥ max(∏ αi, ∏ 1/αi) = max(wq/wv, wv/wq)
//
// with αi = si(qc)/si(qe), wq = ∏ si(qc), wv = ∏ si(qe). So every entry
// that can pass for a query with region weight wq has its own weight
// within [wq/λmax, wq·λmax] — the window selHit searches. Entries outside
// it are rejected without evaluating a single per-dimension factor.
type selIndex struct {
	keys []float64        // region weight per entry, ascending
	ents []*instanceEntry // entry at keys[i]
	pos  []int32          // ents[i]'s position in the snapshot's scan order
}

// buildSelIndex constructs the index over insts. Ties in region weight
// keep scan order so the window walk below stays deterministic.
func buildSelIndex(insts []*instanceEntry) selIndex {
	n := len(insts)
	if n == 0 {
		return selIndex{}
	}
	ord := make([]int32, n)
	for i := range ord {
		ord[i] = int32(i)
	}
	sort.SliceStable(ord, func(a, b int) bool {
		return regionWeight(insts[ord[a]].v) < regionWeight(insts[ord[b]].v)
	})
	idx := selIndex{
		keys: make([]float64, n),
		ents: make([]*instanceEntry, n),
		pos:  ord,
	}
	for i, p := range ord {
		e := insts[p]
		idx.keys[i] = regionWeight(e.v)
		idx.ents[i] = e
	}
	return idx
}

// selWindowSlop widens the index window bounds multiplicatively to absorb
// the float rounding difference between the per-dimension product g·l and
// the region-weight ratio computed as two separate products. An entry
// sitting exactly on the λmax boundary must not be excluded by one ULP.
const selWindowSlop = 1e-9

// selHit is the indexed selectivity check: it searches the snapshot's
// index window [wq/λmax, wq·λmax] and serves the passing entry that comes
// first in scan order (identical to what the full scan would have
// served). It returns the number of entries whose factors were evaluated
// (the SelChecks accounting), and (nil, n, nil) on a miss — which, by the
// window invariant on selIndex, proves NO entry passes the selectivity
// check, so the caller can go straight to cost-check candidate
// collection. An invalid query vector yields an empty or garbage window;
// the miss path's full scan surfaces the per-dimension validation error
// exactly as before.
func (s *SCR) selHit(snap *cacheSnapshot, sv []float64) (*Decision, int, error) {
	idx := &snap.index
	if len(idx.keys) == 0 {
		return nil, 0, nil
	}
	wq := regionWeight(sv)
	if !(wq > 0) || math.IsInf(wq, 0) { // NaN, zero, negative: invalid query vector
		return nil, 0, nil
	}
	lamMax := s.cfg.lambdaMax()
	lo := wq / lamMax * (1 - selWindowSlop)
	hi := wq * lamMax * (1 + selWindowSlop)
	examined := 0
	var (
		best    *instanceEntry
		bestAnc *anchor
		bestPos = int32(math.MaxInt32)
	)
	for i := sort.SearchFloat64s(idx.keys, lo); i < len(idx.keys) && idx.keys[i] <= hi; i++ {
		e := idx.ents[i]
		examined++
		a := e.anc.Load()
		g, l, err := GLFactors(e.v, sv)
		if err != nil {
			return nil, examined, err
		}
		if g*l <= s.cfg.lambdaFor(a.c)/a.s && idx.pos[i] < bestPos {
			best, bestAnc, bestPos = e, a, idx.pos[i]
		}
	}
	if best == nil {
		return nil, examined, nil
	}
	best.u.Add(1)
	return &Decision{Plan: best.pp.cp, Via: ViaSelectivity, Epoch: bestAnc.epoch}, examined, nil
}

// getPlan is Algorithm 1: the selectivity check over the instance list
// (served through the snapshot's selectivity index), then the cost check
// over the most promising candidates in increasing GL order. Returns
// (nil, nil) if no cached plan can be inferred λ-optimal. Runs lock-free
// over the immutable snapshot; it mutates only atomic fields.
//
// Epoch semantics during revalidation lag: an entry anchored under an
// older epoch still serves through the selectivity check — its λ bound
// holds against the generation it was derived under, and the Decision
// carries that epoch. The cost check, however, must not mix generations
// (a stale anchor's C against a fresh recost would make R meaningless),
// so lagging entries are excluded from cost-check candidacy; if the
// current-epoch candidates all fail, the best lagging candidate is served
// as an explicitly flagged fallback instead of stampeding the optimizer
// while the background revalidator catches the cache up.
func (s *SCR) getPlan(ctx context.Context, sv []float64, snap *cacheSnapshot) (*Decision, error) {
	examined := 0
	defer func() { s.ctr.selChecks.Add(int64(examined)) }()

	// Fast path: the indexed hit test. On the common warm-cache outcome —
	// a selectivity-check hit — this touches O(log n) keys plus the
	// entries inside the λmax window and returns without scanning the
	// instance list at all.
	dec, n, err := s.selHit(snap, sv)
	examined += n
	if err != nil {
		return nil, err
	}
	if dec != nil {
		return dec, nil
	}

	insts := snap.instances
	cur := s.statsEpoch()
	type cand struct {
		e  *instanceEntry
		a  *anchor
		gl float64
		l  float64
	}
	limit := s.cfg.costCheckLimit()
	// Only the `limit` best candidates are ever recosted, so keep a
	// bounded insertion-sorted list instead of collecting and sorting
	// every entry: on the hot path this is the difference between O(limit)
	// extra memory and an O(instances) allocation + sort per lookup.
	keep := limit
	if keep < 0 {
		keep = 0
	}
	// A limit larger than the instance list (e.g. the "recost all"
	// ablation's 1<<30) must not become the allocation size.
	capHint := keep
	if capHint > len(insts) {
		capHint = len(insts)
	}
	// cands is allocated lazily on first insert: a selectivity-check hit —
	// the overwhelmingly common outcome on a warm cache — pays nothing.
	var cands []cand
	key := func(c cand) float64 { return c.gl }
	if s.cfg.OrderCandidatesByL {
		key = func(c cand) float64 { return c.l }
	}
	insert := func(c cand) {
		if keep == 0 {
			return
		}
		if cands == nil {
			cands = make([]cand, 0, capHint)
		}
		if len(cands) == keep {
			if key(c) >= key(cands[len(cands)-1]) {
				return
			}
			cands = cands[:len(cands)-1]
		}
		i := len(cands)
		for i > 0 && key(c) < key(cands[i-1]) {
			i--
		}
		cands = append(cands, cand{})
		copy(cands[i+1:], cands[i:])
		cands[i] = c
	}

	// lagBest tracks the most promising (lowest GL) non-quarantined entry
	// anchored under an older epoch, for the flagged fallback below.
	var (
		lagBest *instanceEntry
		lagAnc  *anchor
		lagGL   float64
	)

	for _, e := range insts {
		examined++
		a := e.anc.Load()
		g, l, err := GLFactors(e.v, sv)
		if err != nil {
			return nil, err
		}
		lam := s.cfg.lambdaFor(a.c)
		if g*l <= lam/a.s {
			// selHit proved no entry passed, but anchors are live atomics: a
			// concurrent re-anchor (revalidation loosening S) can create a
			// pass between the index walk and this scan. Honor it.
			e.u.Add(1)
			return &Decision{Plan: e.pp.cp, Via: ViaSelectivity, Epoch: a.epoch}, nil
		}
		if e.quarantined.Load() {
			continue
		}
		if a.epoch != cur {
			if lagBest == nil || g*l < lagGL {
				lagBest, lagAnc, lagGL = e, a, g*l
			}
			continue
		}
		insert(cand{e: e, a: a, gl: g * l, l: l})
	}

	if limit >= 0 && len(cands) > 0 {
		tol := s.cfg.ViolationTolerance
		if tol <= 0 {
			tol = 0.01
		}
		// Batch: build selectivity state once for this instance, recost
		// every cost-check candidate against it. If the epoch advanced
		// between the scan above and this preparation, the candidates'
		// anchors no longer match the recost generation — skip the cost
		// check for this lookup (the next one re-scans under the new
		// epoch) rather than compare costs across generations.
		pi := s.prepareRecost(sv)
		defer pi.Release()
		if s.prepareEpoch(pi) != cur {
			cands = cands[:0]
		}
		for _, c := range cands {
			if s.cfg.GLCutoff > 0 && c.gl > s.cfg.GLCutoff {
				break
			}
			if err := ctx.Err(); err != nil {
				return nil, cancelled(err)
			}
			newCost, recEpoch, err := s.recostWithEpoch(pi, c.e.pp.cp, sv)
			if err != nil {
				return nil, err
			}
			s.ctr.getPlanRecosts.Add(1)
			if recEpoch != c.a.epoch {
				// Advanced mid-loop (per-call recost path only): this
				// candidate's anchor and recost disagree on generation.
				continue
			}
			if s.cfg.DetectViolations {
				// Appendix G: the BCG bounds constrain the plan's own cost
				// ratio between qe and qc; Cost(PP, qe) = C·S.
				rPlan := newCost / (c.a.c * c.a.s)
				g, l, err := GLFactors(c.e.v, sv)
				if err != nil {
					return nil, err
				}
				if ViolatesBCG(rPlan, g, l, tol) {
					c.e.quarantined.Store(true)
					s.ctr.violations.Add(1)
					continue
				}
			}
			// §6.2: R = Cost(PP, qc) / C (C is the optimal cost at qe); the
			// cost check is R·L ≤ λ/S.
			r := newCost / c.a.c
			lam := s.cfg.lambdaFor(c.a.c)
			if r*c.l <= lam/c.a.s {
				c.e.u.Add(1)
				return &Decision{Plan: c.e.pp.cp, Via: ViaCost, Epoch: c.a.epoch}, nil
			}
		}
	}

	if lagBest != nil {
		// Every current-epoch avenue failed but a not-yet-revalidated
		// entry is in reach: serve it flagged instead of optimizing. This
		// bounds optimizer load during revalidation lag — the flagged
		// plan was λ-valid under its own epoch, the decision says so, and
		// the revalidator is already retiring the lag.
		lagBest.u.Add(1)
		s.ctr.epochLagServed.Add(1)
		s.ctr.degraded.Add(1)
		return &Decision{
			Plan:           lagBest.pp.cp,
			Via:            ViaFallback,
			Degraded:       true,
			DegradedReason: DegradedStatsEpochLag,
			Epoch:          lagAnc.epoch,
		}, nil
	}
	return nil, nil
}

// ProbeCheck classifies how getPlan would serve an instance at sv — by the
// selectivity check, the cost check, or an optimizer call — WITHOUT
// mutating usage counters, quarantine flags or statistics. It is a
// diagnostic/visualization aid (e.g. rendering the §5.3 inference-region
// geometry) and performs Recost calls against the engine like the real
// cost check would. Like Process's read path it scans a lock-free
// snapshot of the instance list and is safe to call concurrently with
// Process.
func (s *SCR) ProbeCheck(sv []float64) Check {
	insts := s.snapshot().instances
	type cand struct {
		e  *instanceEntry
		a  *anchor
		gl float64
		l  float64
	}
	cur := s.statsEpoch()
	var cands []cand
	for _, e := range insts {
		a := e.anc.Load()
		g, l, err := GLFactors(e.v, sv)
		if err != nil {
			return ViaOptimizer
		}
		if g*l <= s.cfg.lambdaFor(a.c)/a.s {
			return ViaSelectivity
		}
		if !e.quarantined.Load() && a.epoch == cur {
			cands = append(cands, cand{e: e, a: a, gl: g * l, l: l})
		}
	}
	limit := s.cfg.costCheckLimit()
	if limit < 0 {
		return ViaOptimizer
	}
	if s.cfg.OrderCandidatesByL {
		sort.Slice(cands, func(i, j int) bool { return cands[i].l < cands[j].l })
	} else {
		sort.Slice(cands, func(i, j int) bool { return cands[i].gl < cands[j].gl })
	}
	if len(cands) > limit {
		cands = cands[:limit]
	}
	pi := s.prepareRecost(sv)
	defer pi.Release()
	for _, c := range cands {
		if s.cfg.GLCutoff > 0 && c.gl > s.cfg.GLCutoff {
			break
		}
		newCost, err := s.recostWith(pi, c.e.pp.cp, sv)
		if err != nil {
			return ViaOptimizer
		}
		if (newCost/c.a.c)*c.l <= s.cfg.lambdaFor(c.a.c)/c.a.s {
			return ViaCost
		}
	}
	return ViaOptimizer
}

// NumInstances returns the current instance-list length (optimized
// instances retained).
func (s *SCR) NumInstances() int {
	return len(s.snapshot().instances)
}

// SweepRedundantPlans implements Appendix F: it tests every cached plan for
// redundancy against the remaining plans and drops those whose instances
// can all be served λ-optimally by alternatives. Plans are examined in
// increasing order of instance count. It returns the number of plans
// dropped. The sweep is intended to run off the critical path; it holds
// this template's domain mutex for its duration, and the per-removal
// publication marks coalesce into a single publish when the sweep's
// critical section ends — readers see either the pre-sweep cache or the
// swept one, never k intermediate republications.
func (s *SCR) SweepRedundantPlans() (int, error) {
	d := &s.dom
	d.lock()
	defer d.unlock()
	return d.sweepLocked()
}

// SeedInstance pre-populates the plan cache with an externally discovered
// (plan, anchor instance) pair — the §9 future-work hybrid: an offline
// exploration (e.g. an anorexic plan-diagram reduction) supplies plans and
// anchors before any query arrives, and the online checks then reuse them
// exactly as if the anchors had been optimized online. subOpt is the
// known sub-optimality S of the plan at the anchor (1 when the plan is the
// anchor's optimal plan); optCost is the optimal cost C at the anchor.
//
// Seeding preserves the λ-optimality guarantee: the selectivity and cost
// checks both divide the bound by S, so a conservative (over-)estimate of
// subOpt is safe, while an underestimate would not be — callers must pass
// a true upper bound on the plan's sub-optimality at the anchor.
func (s *SCR) SeedInstance(sv []float64, cp *engine.CachedPlan, optCost, subOpt float64) error {
	if cp == nil {
		return fmt.Errorf("%w: seed with nil plan", ErrNoPlan)
	}
	if len(sv) != s.eng.Dimensions() {
		return fmt.Errorf("core: seed sVector has %d dims, engine has %d", len(sv), s.eng.Dimensions())
	}
	if optCost <= 0 || subOpt < 1 || math.IsNaN(optCost) || math.IsNaN(subOpt) {
		return fmt.Errorf("core: seed with invalid optCost=%v subOpt=%v", optCost, subOpt)
	}
	d := &s.dom
	d.lock()
	defer d.unlock()
	return d.seedLocked(sv, cp, optCost, subOpt)
}
