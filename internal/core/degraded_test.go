package core

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/pqotest"
)

// chaosEngine wraps the synthetic test engine with switchable failure
// modes, so one test can warm the cache while healthy and then break the
// optimizer (or the recoster) on demand.
type chaosEngine struct {
	*pqotest.Engine
	failOptimize  atomic.Bool
	panicOptimize atomic.Bool
	slowOptimize  atomic.Int64 // ns added to every Optimize
	failRecost    atomic.Bool

	mu   sync.Mutex
	gate chan struct{} // when set, Optimize blocks until it closes
}

var errChaosOpt = errors.New("chaos: optimizer down")
var errChaosRecost = errors.New("chaos: recost down")

func (e *chaosEngine) setGate() chan struct{} {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.gate = make(chan struct{})
	return e.gate
}

func (e *chaosEngine) currentGate() chan struct{} {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.gate
}

func (e *chaosEngine) Optimize(sv []float64) (*engine.CachedPlan, float64, error) {
	if gate := e.currentGate(); gate != nil {
		<-gate
	}
	if d := e.slowOptimize.Load(); d > 0 {
		time.Sleep(time.Duration(d))
	}
	if e.panicOptimize.Load() {
		panic("chaos: optimizer crash bug")
	}
	if e.failOptimize.Load() {
		return nil, 0, errChaosOpt
	}
	return e.Engine.Optimize(sv)
}

func (e *chaosEngine) Recost(cp *engine.CachedPlan, sv []float64) (float64, error) {
	if e.failRecost.Load() {
		return 0, errChaosRecost
	}
	return e.Engine.Recost(cp, sv)
}

func newChaosEngine(t *testing.T) *chaosEngine {
	t.Helper()
	return &chaosEngine{Engine: twoPlaneEngine(t)}
}

// warm populates s with the two plans of twoPlaneEngine.
func warm(t *testing.T, s *SCR) {
	t.Helper()
	for _, sv := range [][]float64{{0.01, 0.9}, {0.9, 0.01}} {
		if _, err := s.Process(context.Background(), sv); err != nil {
			t.Fatalf("warming cache at %v: %v", sv, err)
		}
	}
}

func TestDegradedFallbackOnOptimizerError(t *testing.T) {
	eng := newChaosEngine(t)
	s, err := New(eng, WithLambda(1.05), WithDegradedFallback())
	if err != nil {
		t.Fatal(err)
	}
	warm(t, s)
	eng.failOptimize.Store(true)

	// A tight λ forces this distant instance to the optimizer — which is
	// now down — so it must be served degraded from the cache.
	dec, err := s.Process(context.Background(), []float64{0.5, 0.45})
	if err != nil {
		t.Fatalf("degraded fallback returned error: %v", err)
	}
	if !dec.Degraded || dec.DegradedReason != DegradedOptimizerError || dec.Via != ViaFallback {
		t.Fatalf("decision = %+v, want degraded optimizer-error via fallback", dec)
	}
	if dec.Plan == nil {
		t.Fatal("degraded decision carries no plan")
	}
	// The fallback must pick the min-cost cached plan at this sv.
	if got, _ := eng.Engine.Recost(dec.Plan, []float64{0.5, 0.45}); got <= 0 {
		t.Fatalf("fallback plan recost = %v", got)
	}
	if st := s.Stats(); st.DegradedDecisions != 1 {
		t.Errorf("DegradedDecisions = %d, want 1", st.DegradedDecisions)
	}
}

func TestDegradedFallbackEmptyCacheErrors(t *testing.T) {
	eng := newChaosEngine(t)
	eng.failOptimize.Store(true)
	s, err := New(eng, WithDegradedFallback())
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.Process(context.Background(), []float64{0.5, 0.5})
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("empty-cache degrade = %v, want ErrUnavailable", err)
	}
}

func TestOptimizerErrorWithoutFallbackSurfaces(t *testing.T) {
	eng := newChaosEngine(t)
	eng.failOptimize.Store(true)
	s, err := New(eng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Process(context.Background(), []float64{0.5, 0.5}); !errors.Is(err, errChaosOpt) {
		t.Fatalf("err = %v, want the engine's error", err)
	}
}

func TestOptimizerDeadlineDegradesAndAdoptsLateResult(t *testing.T) {
	eng := newChaosEngine(t)
	s, err := New(eng, WithLambda(1.05), WithDegradedFallback(),
		WithOptimizerDeadline(5*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	warm(t, s)
	plansBefore := s.Stats().CurPlans

	eng.slowOptimize.Store(int64(100 * time.Millisecond))
	start := time.Now()
	dec, err := s.Process(context.Background(), []float64{0.5, 0.45})
	if err != nil {
		t.Fatalf("deadline path: %v", err)
	}
	if d := time.Since(start); d > 80*time.Millisecond {
		t.Errorf("deadline did not bound the call: took %v", d)
	}
	if !dec.Degraded || dec.DegradedReason != DegradedOptimizerTimeout {
		t.Fatalf("decision = %+v, want degraded optimizer-timeout", dec)
	}

	// The abandoned call keeps running and must populate the cache.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if s.Stats().CurPlans > plansBefore || s.Stats().Instances < s.Stats().OptCalls {
			break
		}
		if st := s.Stats(); st.OptCalls > 2 { // warm(2) + adopted late call
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if st := s.Stats(); st.OptCalls <= 2 && st.CurPlans <= plansBefore {
		t.Errorf("late optimizer result was not adopted: %+v", st)
	}
}

func TestOptimizerPanicBecomesDegradedDecision(t *testing.T) {
	eng := newChaosEngine(t)
	s, err := New(eng, WithLambda(1.05), WithDegradedFallback())
	if err != nil {
		t.Fatal(err)
	}
	warm(t, s)
	eng.panicOptimize.Store(true)
	dec, err := s.Process(context.Background(), []float64{0.5, 0.45})
	if err != nil {
		t.Fatalf("panic path: %v", err)
	}
	if !dec.Degraded || dec.DegradedReason != DegradedOptimizerPanic {
		t.Fatalf("decision = %+v, want degraded optimizer-panic", dec)
	}
}

func TestOptimizerPanicWithoutFallbackIsError(t *testing.T) {
	eng := newChaosEngine(t)
	eng.panicOptimize.Store(true)
	s, err := New(eng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Process(context.Background(), []float64{0.5, 0.5}); !errors.Is(err, ErrOptimizerPanic) {
		t.Fatalf("err = %v, want ErrOptimizerPanic", err)
	}
	// The flight must not leak: a second call opens a fresh flight.
	eng.panicOptimize.Store(false)
	dec, err := s.Process(context.Background(), []float64{0.5, 0.5})
	if err != nil || dec.Via != ViaOptimizer {
		t.Fatalf("post-panic call = %+v, %v; want a fresh optimizer decision", dec, err)
	}
}

func TestCircuitBreakerLifecycle(t *testing.T) {
	eng := newChaosEngine(t)
	const cooldown = 30 * time.Millisecond
	s, err := New(eng, WithLambda(1.05), WithDegradedFallback(),
		WithCircuitBreaker(2, cooldown))
	if err != nil {
		t.Fatal(err)
	}
	warm(t, s)
	optBefore := eng.OptimizeCalls()
	eng.failOptimize.Store(true)

	// Two consecutive failures trip the breaker…
	for i := 0; i < 2; i++ {
		dec, err := s.Process(context.Background(), []float64{0.5, 0.45})
		if err != nil || dec.DegradedReason != DegradedOptimizerError {
			t.Fatalf("failure %d: dec=%+v err=%v", i, dec, err)
		}
	}
	if st := s.Stats(); st.BreakerState != BreakerOpen || st.BreakerOpens != 1 {
		t.Fatalf("after 2 failures: state=%v opens=%d, want open/1", st.BreakerState, st.BreakerOpens)
	}

	// …so the next miss is served degraded WITHOUT touching the optimizer.
	calls := eng.OptimizeCalls()
	dec, err := s.Process(context.Background(), []float64{0.52, 0.44})
	if err != nil || dec.DegradedReason != DegradedBreakerOpen {
		t.Fatalf("breaker-open serve: dec=%+v err=%v", dec, err)
	}
	if got := eng.OptimizeCalls(); got != calls {
		t.Errorf("open breaker still called the optimizer (%d -> %d)", calls, got)
	}

	// After the cooldown a half-open probe runs; the engine is healthy
	// again, so the probe closes the breaker and serving returns to normal.
	eng.failOptimize.Store(false)
	time.Sleep(cooldown + 10*time.Millisecond)
	dec, err = s.Process(context.Background(), []float64{0.54, 0.43})
	if err != nil || dec.Degraded {
		t.Fatalf("probe call: dec=%+v err=%v, want a normal decision", dec, err)
	}
	st := s.Stats()
	if st.BreakerState != BreakerClosed || st.BreakerHalfOpens != 1 || st.BreakerCloses != 1 {
		t.Fatalf("after probe: %+v, want closed with one half-open and one close", st)
	}
	if eng.OptimizeCalls() <= optBefore {
		t.Error("probe did not reach the optimizer")
	}
}

func TestBreakerWithoutFallbackReturnsErrBreakerOpen(t *testing.T) {
	eng := newChaosEngine(t)
	eng.failOptimize.Store(true)
	s, err := New(eng, WithCircuitBreaker(1, time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Process(context.Background(), []float64{0.5, 0.5}); !errors.Is(err, errChaosOpt) {
		t.Fatalf("first failure = %v, want engine error", err)
	}
	if _, err := s.Process(context.Background(), []float64{0.6, 0.6}); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("second call = %v, want ErrBreakerOpen", err)
	}
}

func TestReadPathErrorFallsThroughToOptimizer(t *testing.T) {
	eng := newChaosEngine(t)
	// λ tight enough that the second instance needs the cost check (which
	// recosts — and recost is down), yet the optimizer is healthy: the
	// instance must still get a fully-guaranteed optimizer decision.
	s, err := New(eng, WithLambda(1.05), WithDegradedFallback())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Process(context.Background(), []float64{0.01, 0.9}); err != nil {
		t.Fatal(err)
	}
	eng.failRecost.Store(true)
	dec, err := s.Process(context.Background(), []float64{0.4, 0.5})
	if err != nil {
		t.Fatalf("read-path error path: %v", err)
	}
	if dec.Degraded || dec.Via != ViaOptimizer {
		t.Fatalf("decision = %+v, want a normal optimizer decision", dec)
	}
	if st := s.Stats(); st.ReadPathErrors == 0 {
		t.Error("ReadPathErrors not counted")
	}
}

// TestFlightChaos is the flightGroup chaos test: a panicking leader and a
// slow leader with a cancelled waiter must leave no leaked flight entry,
// and a subsequent call must start a fresh flight.
func TestFlightChaos(t *testing.T) {
	t.Run("leader-panic", func(t *testing.T) {
		eng := newChaosEngine(t)
		eng.panicOptimize.Store(true)
		s, err := New(eng)
		if err != nil {
			t.Fatal(err)
		}
		sv := []float64{0.5, 0.5}
		if _, err := s.Process(context.Background(), sv); !errors.Is(err, ErrOptimizerPanic) {
			t.Fatalf("leader err = %v, want ErrOptimizerPanic", err)
		}
		s.flight.mu.Lock()
		leaked := len(s.flight.m)
		s.flight.mu.Unlock()
		if leaked != 0 {
			t.Fatalf("flight map leaked %d entries after panic", leaked)
		}
		// Fresh flight afterwards.
		eng.panicOptimize.Store(false)
		if dec, err := s.Process(context.Background(), sv); err != nil || !dec.Optimized {
			t.Fatalf("post-panic flight: dec=%+v err=%v", dec, err)
		}
	})

	t.Run("slow-leader-cancelled-waiter", func(t *testing.T) {
		eng := newChaosEngine(t)
		gate := eng.setGate()
		s, err := New(eng)
		if err != nil {
			t.Fatal(err)
		}
		sv := []float64{0.5, 0.5}

		leaderDone := make(chan error, 1)
		go func() {
			_, err := s.Process(context.Background(), sv)
			leaderDone <- err
		}()
		// Wait until the leader owns the flight.
		for {
			s.flight.mu.Lock()
			n := len(s.flight.m)
			s.flight.mu.Unlock()
			if n == 1 {
				break
			}
			time.Sleep(time.Millisecond)
		}

		ctx, cancel := context.WithCancel(context.Background())
		waiterDone := make(chan error, 1)
		go func() {
			_, err := s.Process(ctx, sv)
			waiterDone <- err
		}()
		time.Sleep(5 * time.Millisecond) // let the waiter join the flight
		cancel()
		if err := <-waiterDone; !errors.Is(err, ErrCancelled) {
			t.Fatalf("waiter err = %v, want ErrCancelled", err)
		}

		// The leader is never interrupted; unblock it and check cleanup.
		close(gate)
		if err := <-leaderDone; err != nil {
			t.Fatalf("leader err = %v", err)
		}
		s.flight.mu.Lock()
		leaked := len(s.flight.m)
		s.flight.mu.Unlock()
		if leaked != 0 {
			t.Fatalf("flight map leaked %d entries", leaked)
		}
		// A subsequent identical call is a cache hit (the leader populated
		// the cache), and a distinct one opens a fresh flight cleanly.
		if dec, err := s.Process(context.Background(), sv); err != nil || dec.Plan == nil {
			t.Fatalf("post-flight call: dec=%+v err=%v", dec, err)
		}
	})
}

func TestDegradedSharedWaitersInheritFlag(t *testing.T) {
	eng := newChaosEngine(t)
	s, err := New(eng, WithLambda(1.05), WithDegradedFallback())
	if err != nil {
		t.Fatal(err)
	}
	warm(t, s)
	gate := eng.setGate()
	eng.failOptimize.Store(true)

	sv := []float64{0.5, 0.45}
	const waiters = 4
	var wg sync.WaitGroup
	decs := make([]*Decision, waiters)
	errs := make([]error, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			decs[i], errs[i] = s.Process(context.Background(), sv)
		}(i)
	}
	// Give everyone time to pile onto one flight, then release.
	time.Sleep(10 * time.Millisecond)
	close(gate)
	wg.Wait()

	shared := 0
	for i := 0; i < waiters; i++ {
		if errs[i] != nil {
			t.Fatalf("waiter %d: %v", i, errs[i])
		}
		if !decs[i].Degraded {
			t.Errorf("waiter %d decision not flagged degraded: %+v", i, decs[i])
		}
		if decs[i].Shared {
			shared++
		}
	}
	if shared == 0 {
		t.Log("no waiter shared the flight (timing); still verified degraded flags")
	}
}

func TestResilienceConfigValidation(t *testing.T) {
	eng := twoPlaneEngine(t)
	bad := []Option{
		WithOptimizerDeadline(0),
		WithOptimizerDeadline(-time.Second),
		WithCircuitBreaker(0, time.Second),
		WithCircuitBreaker(3, 0),
	}
	for i, opt := range bad {
		if _, err := New(eng, opt); !errors.Is(err, ErrInvalidConfig) {
			t.Errorf("bad option %d: err = %v, want ErrInvalidConfig", i, err)
		}
	}
	if _, err := New(eng, WithDegradedFallback(),
		WithOptimizerDeadline(time.Second), WithCircuitBreaker(3, time.Second)); err != nil {
		t.Errorf("valid resilience config rejected: %v", err)
	}
}
