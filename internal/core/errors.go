package core

import "errors"

// Sentinel errors returned by the technique API. Callers match them with
// errors.Is; every error carrying one of these sentinels wraps it, so
// additional context (the offending value, the underlying context error)
// stays visible in the message.
var (
	// ErrNoPlan reports that a plan was required but none is available —
	// e.g. seeding or serving with a nil plan.
	ErrNoPlan = errors.New("pqo: no plan available")
	// ErrBudgetExhausted reports that an operation would exceed the
	// configured plan budget k (§6.3.1).
	ErrBudgetExhausted = errors.New("pqo: plan budget exhausted")
	// ErrCancelled reports that processing stopped because the caller's
	// context was cancelled or its deadline expired. The wrapped chain also
	// matches context.Canceled / context.DeadlineExceeded.
	ErrCancelled = errors.New("pqo: cancelled")
	// ErrInvalidConfig reports a rejected configuration option.
	ErrInvalidConfig = errors.New("pqo: invalid configuration")
	// ErrOptimizerTimeout reports that a full optimizer call exceeded the
	// configured WithOptimizerDeadline budget. With degraded fallback
	// enabled the error is absorbed into a Degraded decision; without it
	// the error surfaces to the caller.
	ErrOptimizerTimeout = errors.New("pqo: optimizer deadline exceeded")
	// ErrOptimizerPanic reports that the engine's optimizer panicked.
	// Panics are recovered (the flight is cleaned up, waiters unblocked)
	// and converted into this error — or into a Degraded decision when
	// fallback is enabled.
	ErrOptimizerPanic = errors.New("pqo: optimizer panicked")
	// ErrBreakerOpen reports that the optimizer circuit breaker is open:
	// recent optimizer calls failed or timed out consecutively, so new
	// calls are skipped until the cooldown elapses.
	ErrBreakerOpen = errors.New("pqo: optimizer circuit breaker open")
	// ErrUnavailable reports that degraded-mode fallback was required but
	// impossible: the optimizer is failing (or gated by the breaker) and
	// the plan cache holds nothing to serve instead.
	ErrUnavailable = errors.New("pqo: degraded and no cached plan available")
	// ErrEpochUnsupported reports that an epoch-lifecycle operation
	// (revalidation, epoch-tagged serving) was requested on an engine with
	// no versioned-statistics surface (core.EpochEngine).
	ErrEpochUnsupported = errors.New("pqo: engine has no statistics-epoch lifecycle")
)
