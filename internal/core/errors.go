package core

import "errors"

// Sentinel errors returned by the technique API. Callers match them with
// errors.Is; every error carrying one of these sentinels wraps it, so
// additional context (the offending value, the underlying context error)
// stays visible in the message.
var (
	// ErrNoPlan reports that a plan was required but none is available —
	// e.g. seeding or serving with a nil plan.
	ErrNoPlan = errors.New("pqo: no plan available")
	// ErrBudgetExhausted reports that an operation would exceed the
	// configured plan budget k (§6.3.1).
	ErrBudgetExhausted = errors.New("pqo: plan budget exhausted")
	// ErrCancelled reports that processing stopped because the caller's
	// context was cancelled or its deadline expired. The wrapped chain also
	// matches context.Canceled / context.DeadlineExceeded.
	ErrCancelled = errors.New("pqo: cancelled")
	// ErrInvalidConfig reports a rejected configuration option.
	ErrInvalidConfig = errors.New("pqo: invalid configuration")
)
