package core

import (
	"context"
	"errors"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/engine"
)

// This file is the background half of the statistics-epoch lifecycle
// (docs/STATS.md): after AdvanceEpoch installs a new statistics
// generation, Revalidate walks the plan cache and re-derives every
// lagging anchor under the new epoch, so the read path returns to fully
// guaranteed serving without ever flushing a cache or blocking a request.
//
// Ordering is cheapest-first by anchor optimal cost: cheap instances are
// the ones dynamic λ bounds loosest and traffic hits most often in the
// paper's workloads, so revalidating them first retires the largest share
// of epoch-lag fallbacks per optimizer call.

// DefaultRevalidationWorkers is the worker-pool size Revalidate uses when
// the caller passes workers <= 0.
const DefaultRevalidationWorkers = 2

// Revalidation is a handle on one background revalidation run. All
// methods are safe for concurrent use; counters advance while workers
// run and freeze when the run finishes or is superseded.
type Revalidation struct {
	target uint64
	total  int64

	done       atomic.Int64
	reanchored atomic.Int64
	demoted    atomic.Int64
	droppedI   atomic.Int64
	droppedP   atomic.Int64
	failed     atomic.Int64
	superseded atomic.Bool

	finished chan struct{}
	cancel   context.CancelFunc
}

// RevalidationProgress is a point-in-time snapshot of a run's counters.
type RevalidationProgress struct {
	// TargetEpoch is the statistics epoch the run revalidates anchors to.
	TargetEpoch uint64 `json:"targetEpoch"`
	// Total is the number of lagging instance entries the run set out to
	// revalidate; Done counts entries fully handled (whatever the outcome).
	Total int64 `json:"total"`
	Done  int64 `json:"done"`
	// ReAnchored counts entries whose anchor was re-derived at the target
	// epoch (same plan still optimal, or replaced by a fresh plan);
	// Demoted counts entries whose plan survived with a recost-measured
	// sub-optimality ≤ λr; DroppedInstances / DroppedPlans count entries
	// and orphaned plans removed because the redundancy threshold no
	// longer held; Failed counts entries whose revalidation errored.
	ReAnchored       int64 `json:"reAnchored"`
	Demoted          int64 `json:"demoted"`
	DroppedInstances int64 `json:"droppedInstances"`
	DroppedPlans     int64 `json:"droppedPlans"`
	Failed           int64 `json:"failed"`
	// Superseded reports the run was abandoned because the epoch advanced
	// past its target (a newer run owns the remaining lag). Finished
	// reports the run is no longer doing work, for either reason.
	Superseded bool `json:"superseded"`
	Finished   bool `json:"finished"`
}

// TargetEpoch returns the epoch the run revalidates anchors to.
func (r *Revalidation) TargetEpoch() uint64 { return r.target }

// Progress returns a snapshot of the run's counters.
func (r *Revalidation) Progress() RevalidationProgress {
	p := RevalidationProgress{
		TargetEpoch:      r.target,
		Total:            r.total,
		Done:             r.done.Load(),
		ReAnchored:       r.reanchored.Load(),
		Demoted:          r.demoted.Load(),
		DroppedInstances: r.droppedI.Load(),
		DroppedPlans:     r.droppedP.Load(),
		Failed:           r.failed.Load(),
		Superseded:       r.superseded.Load(),
	}
	select {
	case <-r.finished:
		p.Finished = true
	default:
	}
	return p
}

// Done returns a channel closed when the run finishes or is superseded.
func (r *Revalidation) Done() <-chan struct{} { return r.finished }

// Wait blocks until the run finishes (or ctx is cancelled).
func (r *Revalidation) Wait(ctx context.Context) error {
	select {
	case <-r.finished:
		return nil
	case <-ctx.Done():
		return cancelled(ctx.Err())
	}
}

// supersede marks the run abandoned and stops its workers.
func (r *Revalidation) supersede() {
	r.superseded.Store(true)
	r.cancel()
}

// CurrentRevalidation returns the most recent revalidation run (possibly
// finished or superseded), or nil if none was ever started.
func (s *SCR) CurrentRevalidation() *Revalidation { return s.reval.Load() }

// Revalidate starts a background revalidation of every instance entry
// whose anchor lags the engine's current statistics epoch, using a pool
// of `workers` goroutines (DefaultRevalidationWorkers when <= 0). It
// returns immediately with a handle; cancel ctx or let a later
// Revalidate supersede the run to stop it early. A run already in flight
// is superseded — its remaining lag belongs to the new run.
//
// Revalidation optimizer calls funnel through the same resilience layer
// as foreground traffic (circuit breaker, deadline, panic containment,
// fault injection), so a sick optimizer degrades revalidation instead of
// revalidation masking the sickness.
func (s *SCR) Revalidate(ctx context.Context, workers int) (*Revalidation, error) {
	if s.epochEng == nil {
		return nil, ErrEpochUnsupported
	}
	if workers <= 0 {
		workers = DefaultRevalidationWorkers
	}
	target := s.statsEpoch()
	insts := s.snapshot().instances
	lag := make([]*instanceEntry, 0)
	for _, e := range insts {
		if e.anc.Load().epoch != target {
			lag = append(lag, e)
		}
	}
	// Cheapest-first (ties broken by plan fingerprint for determinism).
	sort.SliceStable(lag, func(i, j int) bool {
		ai, aj := lag[i].anc.Load(), lag[j].anc.Load()
		if ai.c != aj.c {
			return ai.c < aj.c
		}
		return lag[i].pp.fp < lag[j].pp.fp
	})

	rctx, cancel := context.WithCancel(ctx)
	r := &Revalidation{
		target:   target,
		total:    int64(len(lag)),
		finished: make(chan struct{}),
		cancel:   cancel,
	}
	if prev := s.reval.Swap(r); prev != nil {
		prev.supersede()
	}
	if len(lag) == 0 {
		cancel()
		close(r.finished)
		return r, nil
	}

	work := make(chan *instanceEntry)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for e := range work {
				s.revalidateEntry(rctx, r, e)
			}
		}()
	}
	go func() {
	feed:
		for _, e := range lag {
			select {
			case work <- e:
			case <-rctx.Done():
				break feed
			}
		}
		close(work)
		wg.Wait()
		cancel()
		close(r.finished)
	}()
	return r, nil
}

// revalidateEntry re-derives one lagging anchor under the run's target
// epoch: one full optimizer call at the entry's vector, then
//
//   - same plan still optimal  → re-anchor in place at S = 1;
//   - plan changed, old plan's recost ratio S' ≤ λr → demote in place
//     (the redundancy check's own threshold: the old plan is exactly as
//     acceptable as a redundant new plan would have been);
//   - otherwise → drop the entry (and its plan if orphaned) and insert
//     the fresh plan through the normal cache-management path.
//
// A cancelled context (superseded run, shutdown) is not a failure; any
// other error leaves the anchor lagging and counts as Failed.
func (s *SCR) revalidateEntry(ctx context.Context, r *Revalidation, e *instanceEntry) {
	defer r.done.Add(1)
	if ctx.Err() != nil {
		return
	}
	if e.anc.Load().epoch == r.target {
		return // already caught up (e.g. replaced by a concurrent insert)
	}
	if s.statsEpoch() != r.target {
		r.supersede()
		return
	}
	cp, optCost, ep, err := s.callOptimizer(ctx, e.v)
	if err == nil && cp == nil {
		err = ErrNoPlan
	}
	if err != nil {
		if errors.Is(err, ErrCancelled) {
			return
		}
		r.failed.Add(1)
		s.ctr.revalFailed.Add(1)
		return
	}
	s.ctr.optCalls.Add(1)
	if ep != r.target {
		// The epoch advanced mid-call; a newer run owns this lag now.
		r.supersede()
		return
	}
	if cp.Fingerprint() == e.pp.fp {
		e.anc.Store(&anchor{c: optCost, s: 1, epoch: ep})
		r.reanchored.Add(1)
		s.ctr.revalidated.Add(1)
		return
	}
	// The optimal plan changed under the new statistics: measure the old
	// plan's residual sub-optimality at the anchor.
	oldCost, recEpoch, err := s.recostWithEpoch(nil, e.pp.cp, e.v)
	if err != nil {
		r.failed.Add(1)
		s.ctr.revalFailed.Add(1)
		return
	}
	s.ctr.manageRecosts.Add(1)
	if recEpoch != r.target {
		r.supersede()
		return
	}
	sNew := oldCost / optCost
	if sNew < 1 {
		// Stats noise put the cached plan below the new "optimal" —
		// sub-optimality is bounded by 1 by definition.
		sNew = 1
	}
	if sNew <= s.cfg.lambdaR() {
		e.anc.Store(&anchor{c: optCost, s: sNew, epoch: ep})
		r.demoted.Add(1)
		s.ctr.revalDemoted.Add(1)
		s.ctr.revalidated.Add(1)
		return
	}
	s.replaceInstance(e, cp, optCost, ep, r)
}

// replaceInstance drops a lagging entry whose plan failed the λr
// threshold under the new epoch — removing the plan too if no other
// entry references it — and inserts the freshly optimized plan through
// manageCache at the target epoch.
func (s *SCR) replaceInstance(e *instanceEntry, cp *engine.CachedPlan, optCost float64, epoch uint64, r *Revalidation) {
	s.lock()
	defer s.mu.Unlock()
	found := false
	orphaned := true
	kept := make([]*instanceEntry, 0, len(s.instances))
	for _, o := range s.instances {
		if o == e {
			found = true
			continue
		}
		kept = append(kept, o)
		if o.pp == e.pp {
			orphaned = false
		}
	}
	if !found {
		// The entry was evicted or swept while we optimized; nothing to
		// replace.
		return
	}
	s.instances = kept
	r.droppedI.Add(1)
	s.ctr.revalDroppedI.Add(1)
	if orphaned {
		delete(s.plans, e.pp.fp)
		r.droppedP.Add(1)
		s.ctr.revalDroppedP.Add(1)
	}
	if err := s.manageCache(e.v, cp, optCost, epoch); err != nil {
		r.failed.Add(1)
		s.ctr.revalFailed.Add(1)
		return
	}
	r.reanchored.Add(1)
	s.ctr.revalidated.Add(1)
}
