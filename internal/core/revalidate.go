package core

import (
	"context"
	"errors"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/engine"
)

// This file is the background half of the statistics-epoch lifecycle
// (docs/STATS.md): after AdvanceEpoch installs a new statistics
// generation, Revalidate walks the plan cache and re-derives every
// lagging anchor under the new epoch, so the read path returns to fully
// guaranteed serving without ever flushing a cache or blocking a request.
//
// Ordering is cheapest-first by anchor optimal cost: cheap instances are
// the ones dynamic λ bounds loosest and traffic hits most often in the
// paper's workloads, so revalidating them first retires the largest share
// of epoch-lag fallbacks per optimizer call.

// DefaultRevalidationWorkers is the worker-pool size Revalidate uses when
// the caller passes workers <= 0.
const DefaultRevalidationWorkers = 2

// Revalidation is a handle on one background revalidation run. All
// methods are safe for concurrent use; counters advance while workers
// run and freeze when the run finishes or is superseded.
type Revalidation struct {
	target uint64
	total  int64

	done       atomic.Int64
	reanchored atomic.Int64
	demoted    atomic.Int64
	droppedI   atomic.Int64
	droppedP   atomic.Int64
	failed     atomic.Int64
	superseded atomic.Bool

	finished chan struct{}
	cancel   context.CancelFunc
}

// RevalidationProgress is a point-in-time snapshot of a run's counters.
type RevalidationProgress struct {
	// TargetEpoch is the statistics epoch the run revalidates anchors to.
	TargetEpoch uint64 `json:"targetEpoch"`
	// Total is the number of lagging instance entries the run set out to
	// revalidate; Done counts entries fully handled (whatever the outcome).
	Total int64 `json:"total"`
	Done  int64 `json:"done"`
	// ReAnchored counts entries whose anchor was re-derived at the target
	// epoch (same plan still optimal, or replaced by a fresh plan);
	// Demoted counts entries whose plan survived with a recost-measured
	// sub-optimality ≤ λr; DroppedInstances / DroppedPlans count entries
	// and orphaned plans removed because the redundancy threshold no
	// longer held; Failed counts entries whose revalidation errored.
	ReAnchored       int64 `json:"reAnchored"`
	Demoted          int64 `json:"demoted"`
	DroppedInstances int64 `json:"droppedInstances"`
	DroppedPlans     int64 `json:"droppedPlans"`
	Failed           int64 `json:"failed"`
	// Superseded reports the run was abandoned because the epoch advanced
	// past its target (a newer run owns the remaining lag). Finished
	// reports the run is no longer doing work, for either reason.
	Superseded bool `json:"superseded"`
	Finished   bool `json:"finished"`
}

// TargetEpoch returns the epoch the run revalidates anchors to.
func (r *Revalidation) TargetEpoch() uint64 { return r.target }

// Progress returns a snapshot of the run's counters.
func (r *Revalidation) Progress() RevalidationProgress {
	p := RevalidationProgress{
		TargetEpoch:      r.target,
		Total:            r.total,
		Done:             r.done.Load(),
		ReAnchored:       r.reanchored.Load(),
		Demoted:          r.demoted.Load(),
		DroppedInstances: r.droppedI.Load(),
		DroppedPlans:     r.droppedP.Load(),
		Failed:           r.failed.Load(),
		Superseded:       r.superseded.Load(),
	}
	select {
	case <-r.finished:
		p.Finished = true
	default:
	}
	return p
}

// Done returns a channel closed when the run finishes or is superseded.
func (r *Revalidation) Done() <-chan struct{} { return r.finished }

// Wait blocks until the run finishes (or ctx is cancelled).
func (r *Revalidation) Wait(ctx context.Context) error {
	select {
	case <-r.finished:
		return nil
	case <-ctx.Done():
		return cancelled(ctx.Err())
	}
}

// supersede marks the run abandoned and stops its workers.
func (r *Revalidation) supersede() {
	r.superseded.Store(true)
	r.cancel()
}

// CurrentRevalidation returns the most recent revalidation run (possibly
// finished or superseded), or nil if none was ever started.
func (s *SCR) CurrentRevalidation() *Revalidation { return s.reval.Load() }

// Revalidate starts a background revalidation of every instance entry
// whose anchor lags the engine's current statistics epoch, using a pool
// of `workers` goroutines (DefaultRevalidationWorkers when <= 0). It
// returns immediately with a handle; cancel ctx or let a later
// Revalidate supersede the run to stop it early. A run already in flight
// is superseded — its remaining lag belongs to the new run.
//
// Revalidation optimizer calls funnel through the same resilience layer
// as foreground traffic (circuit breaker, deadline, panic containment,
// fault injection), so a sick optimizer degrades revalidation instead of
// revalidation masking the sickness.
//
// Revalidate covers one template (one write domain); Directory.Revalidate
// walks every attached domain through one shared pool with usage-weighted
// cross-domain ordering (domains.go).
func (s *SCR) Revalidate(ctx context.Context, workers int) (*Revalidation, error) {
	j, err := s.prepareReval(ctx)
	if err != nil {
		return nil, err
	}
	runReval([]*revalJob{j}, workers)
	return j.r, nil
}

// revalJob is one domain's share of a revalidation round: its lagging
// entries in cheapest-first order plus the bookkeeping the shared worker
// pool needs to feed and finish the run.
type revalJob struct {
	s   *SCR
	r   *Revalidation
	ctx context.Context
	// lag is the entry work list, cheapest-first; next indexes the first
	// not-yet-dispatched entry (feeder goroutine only).
	lag  []*instanceEntry
	next int
	// usage is the aggregate usage count of the lagging entries — the
	// cross-domain feeding priority: revalidating the hottest domain's
	// entries first retires the most epoch-lag fallbacks per optimizer
	// call.
	usage int64
	// left counts entries not yet finished or abandoned; the run
	// completes when it reaches zero.
	left atomic.Int64
	once sync.Once
}

// prepareReval snapshots one domain's lagging entries into a revalJob and
// installs its Revalidation handle (superseding any in-flight run). A
// domain with nothing lagging yields an already-finished job.
func (s *SCR) prepareReval(ctx context.Context) (*revalJob, error) {
	if s.epochEng == nil {
		return nil, ErrEpochUnsupported
	}
	target := s.statsEpoch()
	insts := s.snapshot().instances
	lag := make([]*instanceEntry, 0)
	for _, e := range insts {
		if e.anc.Load().epoch != target {
			lag = append(lag, e)
		}
	}
	// Cheapest-first within the domain (ties broken by plan fingerprint
	// for determinism): cheap instances are the ones dynamic λ bounds
	// loosest and traffic hits most often.
	sort.SliceStable(lag, func(i, j int) bool {
		ai, aj := lag[i].anc.Load(), lag[j].anc.Load()
		if ai.c != aj.c {
			return ai.c < aj.c
		}
		return lag[i].pp.fp < lag[j].pp.fp
	})

	rctx, cancel := context.WithCancel(ctx)
	r := &Revalidation{
		target:   target,
		total:    int64(len(lag)),
		finished: make(chan struct{}),
		cancel:   cancel,
	}
	if prev := s.reval.Swap(r); prev != nil {
		prev.supersede()
	}
	j := &revalJob{s: s, r: r, ctx: rctx, lag: lag}
	j.left.Store(int64(len(lag)))
	for _, e := range lag {
		j.usage += e.u.Load()
	}
	if len(lag) == 0 {
		j.complete()
	}
	return j, nil
}

// finishOne accounts one dispatched entry as processed.
func (j *revalJob) finishOne() {
	if j.left.Add(-1) == 0 {
		j.complete()
	}
}

// abandon accounts k never-dispatched entries of a cancelled job.
func (j *revalJob) abandon(k int) {
	if k <= 0 {
		return
	}
	if j.left.Add(int64(-k)) == 0 {
		j.complete()
	}
}

// complete finishes the job's run exactly once: the context is cancelled
// (releasing any resources) and the handle's Done channel closes.
func (j *revalJob) complete() {
	j.once.Do(func() {
		j.r.cancel()
		close(j.r.finished)
	})
}

// revalItem is one unit of shared-pool work: an entry and the job it
// belongs to.
type revalItem struct {
	job *revalJob
	e   *instanceEntry
}

// runReval drives a set of revalidation jobs — one per domain — through a
// single shared worker pool and returns immediately. The feeder
// interleaves domains in decreasing aggregate-usage order, one entry per
// domain per round (cheapest-first within each domain), so the pool is
// never monopolized by a cold domain while a hot one lags, and each job's
// handle completes as soon as its own entries are accounted for — a fast
// domain's Done fires while slower domains keep revalidating.
func runReval(jobs []*revalJob, workers int) {
	if workers <= 0 {
		workers = DefaultRevalidationWorkers
	}
	var live []*revalJob
	for _, j := range jobs {
		if len(j.lag) > 0 {
			live = append(live, j)
		}
	}
	if len(live) == 0 {
		return
	}
	sort.SliceStable(live, func(i, k int) bool { return live[i].usage > live[k].usage })

	work := make(chan revalItem)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := range work {
				it.job.s.revalidateEntry(it.job.ctx, it.job.r, it.e)
				it.job.finishOne()
			}
		}()
	}
	go func() {
		for {
			dispatched := false
			for _, j := range live {
				if j.next >= len(j.lag) {
					continue
				}
				if j.ctx.Err() != nil {
					j.abandon(len(j.lag) - j.next)
					j.next = len(j.lag)
					continue
				}
				select {
				case work <- revalItem{job: j, e: j.lag[j.next]}:
					j.next++
					dispatched = true
				case <-j.ctx.Done():
					j.abandon(len(j.lag) - j.next)
					j.next = len(j.lag)
				}
			}
			if !dispatched {
				break
			}
		}
		close(work)
		wg.Wait()
	}()
}

// revalidateEntry re-derives one lagging anchor under the run's target
// epoch: one full optimizer call at the entry's vector, then
//
//   - same plan still optimal  → re-anchor in place at S = 1;
//   - plan changed, old plan's recost ratio S' ≤ λr → demote in place
//     (the redundancy check's own threshold: the old plan is exactly as
//     acceptable as a redundant new plan would have been);
//   - otherwise → drop the entry (and its plan if orphaned) and insert
//     the fresh plan through the normal cache-management path.
//
// A cancelled context (superseded run, shutdown) is not a failure; any
// other error leaves the anchor lagging and counts as Failed.
func (s *SCR) revalidateEntry(ctx context.Context, r *Revalidation, e *instanceEntry) {
	defer r.done.Add(1)
	if ctx.Err() != nil {
		return
	}
	if e.anc.Load().epoch == r.target {
		return // already caught up (e.g. replaced by a concurrent insert)
	}
	if s.statsEpoch() != r.target {
		r.supersede()
		return
	}
	cp, optCost, ep, err := s.callOptimizer(ctx, e.v)
	if err == nil && cp == nil {
		err = ErrNoPlan
	}
	if err != nil {
		if errors.Is(err, ErrCancelled) {
			return
		}
		r.failed.Add(1)
		s.ctr.revalFailed.Add(1)
		return
	}
	s.ctr.optCalls.Add(1)
	if ep != r.target {
		// The epoch advanced mid-call; a newer run owns this lag now.
		r.supersede()
		return
	}
	if cp.Fingerprint() == e.pp.fp {
		e.anc.Store(&anchor{c: optCost, s: 1, epoch: ep})
		r.reanchored.Add(1)
		s.ctr.revalidated.Add(1)
		return
	}
	// The optimal plan changed under the new statistics: measure the old
	// plan's residual sub-optimality at the anchor.
	oldCost, recEpoch, err := s.recostWithEpoch(nil, e.pp.cp, e.v)
	if err != nil {
		r.failed.Add(1)
		s.ctr.revalFailed.Add(1)
		return
	}
	s.ctr.manageRecosts.Add(1)
	if recEpoch != r.target {
		r.supersede()
		return
	}
	sNew := oldCost / optCost
	if sNew < 1 {
		// Stats noise put the cached plan below the new "optimal" —
		// sub-optimality is bounded by 1 by definition.
		sNew = 1
	}
	if sNew <= s.cfg.lambdaR() {
		e.anc.Store(&anchor{c: optCost, s: sNew, epoch: ep})
		r.demoted.Add(1)
		s.ctr.revalDemoted.Add(1)
		s.ctr.revalidated.Add(1)
		return
	}
	s.replaceInstance(e, cp, optCost, ep, r)
}

// replaceInstance drops a lagging entry whose plan failed the λr
// threshold under the new epoch — removing the plan too if no other
// entry references it — and inserts the freshly optimized plan through
// manageCache at the target epoch.
func (s *SCR) replaceInstance(e *instanceEntry, cp *engine.CachedPlan, optCost float64, epoch uint64, r *Revalidation) {
	d := &s.dom
	d.lock()
	defer d.unlock()
	d.replaceEntryLocked(e, cp, optCost, epoch, r)
}
