package core_test

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/pqotest"
)

// TestProcessHitPathAllocBudget pins the allocation budget of the serving
// hot path: Process on a warm cache served by the selectivity check. The
// budget covers the Decision value; the candidate list is allocated lazily
// and never materializes on a selectivity-check hit.
func TestProcessHitPathAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts differ under the race detector")
	}
	rng := rand.New(rand.NewSource(3))
	eng, err := pqotest.RandomEngine(rng, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	scr, err := core.New(eng, core.WithLambda(2))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	sv := pqotest.RandomSVector(rng, 4)
	if _, err := scr.Process(ctx, sv); err != nil { // cold miss populates the cache
		t.Fatal(err)
	}
	dec, err := scr.Process(ctx, sv)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Via != core.ViaSelectivity {
		t.Fatalf("identical repeat served via %s, want selectivity-check", dec.Via)
	}

	const budget = 2
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := scr.Process(ctx, sv); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > budget {
		t.Errorf("Process hit path allocates %.1f per run, budget %d", allocs, budget)
	}
}
