package core

import (
	"context"
	"sync"
	"testing"
	"time"
)

// TestObserveClusterEpochMonotonic pins the cluster-epoch observation to a
// monotonic maximum under concurrency: stale stamps never lower it.
func TestObserveClusterEpochMonotonic(t *testing.T) {
	s, _ := epochSCR(t)
	s.ObserveClusterEpoch(5)
	s.ObserveClusterEpoch(3)
	if got := s.ClusterEpoch(); got != 5 {
		t.Fatalf("ClusterEpoch = %d, want 5 (stale observation lowered it)", got)
	}
	var wg sync.WaitGroup
	for i := 1; i <= 32; i++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			s.ObserveClusterEpoch(id)
		}(uint64(i))
	}
	wg.Wait()
	if got := s.ClusterEpoch(); got != 32 {
		t.Fatalf("ClusterEpoch after concurrent observes = %d, want 32", got)
	}
}

// TestSkewFlagging walks a node through the skew ladder: within the bound
// decisions serve normally; beyond it every decision is copied to a
// flagged fallback (λ still holds at the decision's stated epoch — the
// flag says the node is behind quorum); catching up unflags.
func TestSkewFlagging(t *testing.T) {
	s, eng := epochSCR(t)
	ctx := context.Background()
	sv := []float64{0.01, 0.01}
	if _, err := s.Process(ctx, sv); err != nil {
		t.Fatal(err)
	}

	// Cluster one generation ahead: within the default bound of 1.
	s.ObserveClusterEpoch(2)
	dec, err := s.Process(ctx, sv)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Degraded {
		t.Fatalf("decision flagged within the skew bound: %+v", dec)
	}
	if s.SkewLagging() {
		t.Fatal("SkewLagging with skew == bound")
	}

	// Two generations ahead: beyond the bound — flagged fallback.
	s.ObserveClusterEpoch(3)
	if !s.SkewLagging() || s.EpochSkew() != 2 {
		t.Fatalf("skew = %d lagging=%v, want 2/true", s.EpochSkew(), s.SkewLagging())
	}
	dec, err = s.Process(ctx, sv)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Degraded || dec.DegradedReason != DegradedEpochSkew || dec.Via != ViaFallback {
		t.Fatalf("beyond-bound decision = %+v, want flagged %s fallback", dec, DegradedEpochSkew)
	}
	if dec.Epoch != 1 {
		t.Fatalf("flagged decision epoch = %d, want 1 (guarantee stays stated at its epoch)", dec.Epoch)
	}
	st := s.Stats()
	if st.ClusterEpoch != 3 || st.EpochSkew != 2 || st.EpochSkewFlagged == 0 {
		t.Fatalf("stats = cluster %d skew %d flagged %d, want 3/2/>0",
			st.ClusterEpoch, st.EpochSkew, st.EpochSkewFlagged)
	}

	// The node installs the next generation: back within the bound,
	// decisions serve unflagged again.
	eng.Advance()
	dec, err = s.Process(ctx, sv)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Degraded && dec.DegradedReason == DegradedEpochSkew {
		t.Fatalf("still skew-flagged after catching up to within the bound: %+v", dec)
	}
}

// TestClusterSkewBoundOption verifies the configurable bound and its
// validation.
func TestClusterSkewBoundOption(t *testing.T) {
	s, _ := epochSCR(t, WithClusterSkewBound(2))
	s.ObserveClusterEpoch(3) // skew 2 == bound: tolerated
	if s.SkewLagging() {
		t.Fatal("lagging at skew == configured bound 2")
	}
	s.ObserveClusterEpoch(4) // skew 3 > bound
	if !s.SkewLagging() {
		t.Fatal("not lagging at skew 3 with bound 2")
	}
	if _, err := New(twoPlaneEngine(t), WithLambda(2), WithClusterSkewBound(0)); err == nil {
		t.Fatal("WithClusterSkewBound(0) accepted")
	}
}

// TestSkewIgnoredWithoutEpochEngine: an epoch-less engine has no
// generation to lag, so cluster stamps must not degrade anything.
func TestSkewIgnoredWithoutEpochEngine(t *testing.T) {
	s := mustSCR(t, twoPlaneEngine(t), Config{Lambda: 2})
	s.ObserveClusterEpoch(10)
	if s.EpochSkew() != 0 || s.SkewLagging() {
		t.Fatalf("epoch-less engine reports skew %d lagging=%v", s.EpochSkew(), s.SkewLagging())
	}
	dec, err := s.Process(context.Background(), []float64{0.01, 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Degraded {
		t.Fatalf("epoch-less decision flagged: %+v", dec)
	}
}

// TestRevalidateSupersededByCoordinatorBurst models a coordinator
// delivering generations back-to-back (each install starts a revalidation
// that supersedes the previous): superseded runs freeze their progress
// counters instead of losing them, the revalidated-plans counter never
// goes backwards, and after the burst drains every unflagged decision is
// λ-guaranteed at the epoch it states — never judged against another
// generation's costs.
func TestRevalidateSupersededByCoordinatorBurst(t *testing.T) {
	s, eng := epochSCR(t)
	ctx := context.Background()
	for i := 0; i < 6; i++ {
		if _, err := s.Process(ctx, []float64{0.01 + float64(i)*0.001, 0.9}); err != nil {
			t.Fatal(err)
		}
	}

	var runs []*Revalidation
	var lastRevalidated int64
	for burst := 0; burst < 3; burst++ {
		eng.Advance()
		s.ObserveClusterEpoch(eng.StatsEpoch())
		r, err := s.Revalidate(ctx, 1)
		if err != nil {
			t.Fatal(err)
		}
		runs = append(runs, r)
		if got := s.Stats().RevalidatedPlans; got < lastRevalidated {
			t.Fatalf("revalidated-plans counter went backwards: %d -> %d", lastRevalidated, got)
		} else {
			lastRevalidated = got
		}
	}
	final := runs[len(runs)-1]
	if err := final.Wait(ctx); err != nil {
		t.Fatal(err)
	}

	for i, r := range runs[:len(runs)-1] {
		select {
		case <-r.Done():
		case <-time.After(5 * time.Second):
			t.Fatalf("run %d never stopped after supersession", i)
		}
		p1 := r.Progress()
		if !p1.Finished && !p1.Superseded {
			t.Fatalf("run %d progress = %+v, want finished or superseded", i, p1)
		}
		time.Sleep(2 * time.Millisecond)
		if p2 := r.Progress(); p2 != p1 {
			t.Fatalf("superseded run %d progress moved after freeze: %+v -> %+v", i, p1, p2)
		}
	}

	if lag := s.Stats().LaggingInstances; lag != 0 {
		t.Fatalf("lag remains after the burst drained: %d", lag)
	}
	finalEpoch := eng.StatsEpoch()
	for i := 0; i < 6; i++ {
		sv := []float64{0.01 + float64(i)*0.001, 0.9}
		dec, err := s.Process(ctx, sv)
		if err != nil {
			t.Fatal(err)
		}
		if dec.Degraded {
			continue // explicitly flagged is always admissible
		}
		if dec.Epoch != finalEpoch {
			t.Errorf("post-burst decision at epoch %d, want %d", dec.Epoch, finalEpoch)
		}
		got, ok := eng.CostAt(dec.Plan.Fingerprint(), sv, dec.Epoch)
		if !ok {
			t.Fatalf("unknown plan served: %q", dec.Plan.Fingerprint())
		}
		if opt := eng.OptimalCostAt(sv, dec.Epoch); got > 2*opt*(1+1e-9) {
			t.Errorf("λ violated at %v under its own epoch %d: %g > 2·%g", sv, dec.Epoch, got, opt)
		}
	}
}
