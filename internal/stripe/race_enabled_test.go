//go:build race

package stripe

// raceEnabled reports whether the race detector instrumented this build.
// Its shadow-memory bookkeeping changes allocation counts, so the
// allocation-budget tests skip themselves under -race.
const raceEnabled = true
