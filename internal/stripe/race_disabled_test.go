//go:build !race

package stripe

const raceEnabled = false
