package stripe

import (
	"runtime"
	"sync"
	"testing"
)

func TestZeroValue(t *testing.T) {
	var c Int64
	if got := c.Load(); got != 0 {
		t.Fatalf("zero value Load = %d, want 0", got)
	}
	c.Add(5)
	if got := c.Load(); got != 5 {
		t.Fatalf("Load after Add(5) = %d, want 5", got)
	}
}

func TestShardsPowerOfTwo(t *testing.T) {
	n := Shards()
	if n < 8 || n > maxShards || n&(n-1) != 0 {
		t.Fatalf("Shards() = %d, want a power of two in [8, %d]", n, maxShards)
	}
}

func TestConcurrentAdds(t *testing.T) {
	var c Int64
	const goroutines = 32
	const perG = 10_000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Add(1)
			}
		}()
	}
	wg.Wait()
	if got, want := c.Load(), int64(goroutines*perG); got != want {
		t.Fatalf("Load = %d, want %d", got, want)
	}
}

func TestNegativeDeltaAndStore(t *testing.T) {
	var c Int64
	c.Add(10)
	c.Add(-3)
	if got := c.Load(); got != 7 {
		t.Fatalf("Load = %d, want 7", got)
	}
	c.Store(42)
	if got := c.Load(); got != 42 {
		t.Fatalf("Load after Store(42) = %d, want 42", got)
	}
	c.Store(0)
	if got := c.Load(); got != 0 {
		t.Fatalf("Load after Store(0) = %d, want 0", got)
	}
}

// The SCR hit path has a strict allocation budget (core's
// TestProcessHitPathAllocBudget); the counters it bumps must not allocate.
func TestAddDoesNotAllocate(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is unreliable under -race")
	}
	var c Int64
	allocs := testing.AllocsPerRun(1000, func() { c.Add(1) })
	if allocs != 0 {
		t.Fatalf("Add allocates %.1f times per call, want 0", allocs)
	}
}

func TestShardSpread(t *testing.T) {
	// Distinct goroutines should not all collapse onto one shard. This is
	// probabilistic (stack placement), so only require that *some* spread
	// exists across many goroutines, and skip on single-shard builds.
	if Shards() < 2 {
		t.Skip("single shard")
	}
	var c Int64
	var wg sync.WaitGroup
	for g := 0; g < 64; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.Add(1)
		}()
	}
	wg.Wait()
	used := 0
	for i := 0; i < nShards; i++ {
		if c.shards[i].v.Load() != 0 {
			used++
		}
	}
	// 64 goroutines all hashing to a single shard would mean the
	// discriminator is broken; even 2 distinct shards proves spreading.
	if used < 2 {
		t.Fatalf("64 goroutines used %d shard(s), want >= 2 (GOMAXPROCS=%d)",
			used, runtime.GOMAXPROCS(0))
	}
}
