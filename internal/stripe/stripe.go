// Package stripe provides cache-line-padded striped counters for
// write-hot, read-rare statistics on concurrent serving paths.
//
// A single atomic.Int64 bumped by every request serializes all cores on
// one cache line: each Add forces the line into the local core's cache in
// exclusive state, evicting it from whichever core wrote last (MESI
// ping-pong). At production concurrency this coherence traffic — not the
// add itself — dominates, and it grows with core count, so a path that is
// otherwise lock-free stops scaling. A stripe.Int64 spreads the counter
// over several cache-line-sized shards; concurrent writers land on
// different shards with high probability and never share a line, while
// readers (Stats, /metrics — rare) pay a short summation loop.
//
// The zero value is ready to use, so counters embed by value exactly like
// atomic.Int64. Totals are eventually consistent across shards in the
// same way a torn read of several related atomics already was.
package stripe

import (
	"runtime"
	"sync/atomic"
	"unsafe"
)

// cacheLine is the coherence granularity the shards are padded to. 64
// bytes covers x86-64 and most arm64 parts; the adjacent-line prefetcher
// on some Intel cores effectively pairs lines, but doubling the padding
// buys little once shards outnumber cores.
const cacheLine = 64

// maxShards bounds the by-value shard array (maxShards × cacheLine bytes
// per counter). It must be a power of two.
const maxShards = 64

// nShards is the number of active shards: enough to give every core its
// own line (sized to the machine's available parallelism, with a floor of
// 8 so small hosts still spread oversubscribed GOMAXPROCS runs), capped
// at maxShards. Computed once — NumCPU is fixed for the process lifetime,
// unlike GOMAXPROCS which tests resize mid-run.
var nShards = func() int {
	n := runtime.NumCPU()
	if n < 8 {
		n = 8
	}
	shards := 1
	for shards < n && shards < maxShards {
		shards <<= 1
	}
	return shards
}()

// shard is one padded slot. The counter sits alone in its line: trailing
// padding keeps the next shard off this line, and the array layout keeps
// the previous shard's padding between it and this counter.
type shard struct {
	v atomic.Int64
	_ [cacheLine - 8]byte
}

// Int64 is a striped int64 counter. The zero value is ready to use.
type Int64 struct {
	shards [maxShards]shard
}

// slot picks the calling goroutine's shard. There is no portable
// per-CPU id in Go, so the discriminator is the address of a stack
// local: distinct goroutines run on distinct stacks (spaced by at least
// a stack allocation span), so concurrent writers hash to different
// shards with high probability, and writers running on different cores
// are different goroutines. The address is consumed immediately as a
// uintptr, so the local never escapes and Add stays allocation-free
// (pinned by TestAddDoesNotAllocate). A goroutine's stack may move on
// growth, re-homing it to a new shard — harmless, totals are sums.
func slot() int {
	var b byte
	return int(uintptr(unsafe.Pointer(&b))>>10) & (nShards - 1)
}

// Add adds delta to the counter.
func (c *Int64) Add(delta int64) {
	c.shards[slot()].v.Add(delta)
}

// Load returns the current total: the sum over all shards. Shards are
// read individually, so a Load concurrent with Adds observes some subset
// of them — the same monotone eventual consistency a plain atomic
// counter read concurrently with writers has.
func (c *Int64) Load() int64 {
	var sum int64
	for i := 0; i < nShards; i++ {
		sum += c.shards[i].v.Load()
	}
	return sum
}

// Store resets the counter to v (v on one shard, zero elsewhere). It is
// not atomic with respect to concurrent Adds and exists for tests and
// reset-between-phases accounting, mirroring atomic.Int64.Store.
func (c *Int64) Store(v int64) {
	for i := 0; i < nShards; i++ {
		c.shards[i].v.Store(0)
	}
	c.shards[0].v.Store(v)
}

// Shards reports the number of active stripes (for tests and docs).
func Shards() int { return nShards }
