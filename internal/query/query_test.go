package query

import (
	"math"
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/datagen"
	"repro/internal/stats"
)

func testTemplate(t *testing.T) (*Template, *stats.Store) {
	t.Helper()
	cat := catalog.NewTPCH(0.05)
	st, err := stats.Build(cat, datagen.New(cat, 5))
	if err != nil {
		t.Fatal(err)
	}
	tpl := &Template{
		Name:    "q_test",
		Catalog: cat,
		Tables:  []string{"lineitem", "orders"},
		Joins: []Join{
			{Left: "lineitem", Right: "orders", LeftCol: "l_orderkey", RightCol: "o_orderkey", Selectivity: 1.0 / 1.5e6 / 0.05},
		},
		Preds: []Predicate{
			{Table: "lineitem", Column: "l_shipdate", Op: LE, Param: 0},
			{Table: "orders", Column: "o_totalprice", Op: GE, Param: 1},
			{Table: "orders", Column: "o_shippriority", Op: LE, Param: -1, Value: 2},
		},
	}
	if err := tpl.Validate(); err != nil {
		t.Fatal(err)
	}
	return tpl, st
}

func TestValidateRejectsBadTemplates(t *testing.T) {
	cat := catalog.NewTPCH(0.05)
	base := func() *Template {
		return &Template{
			Name:    "q",
			Catalog: cat,
			Tables:  []string{"lineitem", "orders"},
			Joins: []Join{{Left: "lineitem", Right: "orders",
				LeftCol: "l_orderkey", RightCol: "o_orderkey", Selectivity: 0.001}},
			Preds: []Predicate{{Table: "lineitem", Column: "l_shipdate", Op: LE, Param: 0}},
		}
	}
	cases := []struct {
		name   string
		mutate func(*Template)
		want   string
	}{
		{"empty name", func(q *Template) { q.Name = "" }, "empty name"},
		{"nil catalog", func(q *Template) { q.Catalog = nil }, "nil catalog"},
		{"no tables", func(q *Template) { q.Tables = nil }, "no tables"},
		{"unknown table", func(q *Template) { q.Tables = []string{"nope", "orders"} }, "unknown table"},
		{"duplicate table", func(q *Template) { q.Tables = []string{"orders", "orders"} }, "twice"},
		{"join outside FROM", func(q *Template) { q.Joins[0].Left = "part"; q.Tables = []string{"lineitem", "orders"} }, "not in FROM"},
		{"join unknown column", func(q *Template) { q.Joins[0].LeftCol = "zzz" }, "unknown column"},
		{"join bad selectivity", func(q *Template) { q.Joins[0].Selectivity = 0 }, "selectivity"},
		{"disconnected", func(q *Template) { q.Joins = nil }, "not connected"},
		{"pred outside FROM", func(q *Template) { q.Preds[0].Table = "part" }, "not in FROM"},
		{"pred unknown column", func(q *Template) { q.Preds[0].Column = "zzz" }, "unknown column"},
		{"duplicate param", func(q *Template) {
			q.Preds = append(q.Preds, Predicate{Table: "orders", Column: "o_orderdate", Op: LE, Param: 0})
		}, "two predicates"},
		{"sparse params", func(q *Template) { q.Preds[0].Param = 3 }, "not dense"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			q := base()
			tc.mutate(q)
			err := q.Validate()
			if err == nil {
				t.Fatalf("Validate() succeeded, want error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate() = %v, want containing %q", err, tc.want)
			}
		})
	}
}

func TestDimensionsAndParamPredicates(t *testing.T) {
	tpl, _ := testTemplate(t)
	if d := tpl.Dimensions(); d != 2 {
		t.Fatalf("Dimensions() = %d, want 2", d)
	}
	pp := tpl.ParamPredicates()
	if len(pp) != 2 {
		t.Fatalf("ParamPredicates len = %d, want 2", len(pp))
	}
	if pp[0].Column != "l_shipdate" || pp[1].Column != "o_totalprice" {
		t.Errorf("ParamPredicates order wrong: %+v", pp)
	}
}

func TestNewInstanceArity(t *testing.T) {
	tpl, _ := testTemplate(t)
	if _, err := NewInstance(tpl, []float64{1}); err == nil {
		t.Error("NewInstance with 1 param should fail (needs 2)")
	}
	inst, err := NewInstance(tpl, []float64{100, 5000})
	if err != nil {
		t.Fatal(err)
	}
	// Params must be copied, not aliased.
	src := []float64{1, 2}
	inst2, _ := NewInstance(tpl, src)
	src[0] = 99
	if inst2.Params[0] == 99 {
		t.Error("NewInstance aliased caller slice")
	}
	_ = inst
}

func TestSVector(t *testing.T) {
	tpl, st := testTemplate(t)
	// Pick parameter values targeting known selectivities via inversion.
	v0, err := st.ValueForSelectivityLE("lineitem", "l_shipdate", 0.3)
	if err != nil {
		t.Fatal(err)
	}
	v1, err := st.ValueForSelectivityGE("orders", "o_totalprice", 0.2)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := NewInstance(tpl, []float64{v0, v1})
	if err != nil {
		t.Fatal(err)
	}
	sv, err := inst.SVector(st)
	if err != nil {
		t.Fatal(err)
	}
	if len(sv) != 2 {
		t.Fatalf("sVector len = %d, want 2", len(sv))
	}
	if math.Abs(sv[0]-0.3) > 0.05 {
		t.Errorf("sv[0] = %v, want ~0.3", sv[0])
	}
	if math.Abs(sv[1]-0.2) > 0.05 {
		t.Errorf("sv[1] = %v, want ~0.2", sv[1])
	}
}

func TestTableSelectivityCombinesPreds(t *testing.T) {
	tpl, st := testTemplate(t)
	sv := []float64{0.4, 0.5}
	selLI, err := tpl.TableSelectivity("lineitem", sv, st)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(selLI-0.4) > 1e-9 {
		t.Errorf("lineitem selectivity = %v, want 0.4", selLI)
	}
	selO, err := tpl.TableSelectivity("orders", sv, st)
	if err != nil {
		t.Fatal(err)
	}
	// orders has param 1 (0.5) AND the constant o_shippriority <= 2
	// predicate; combined must be strictly below 0.5.
	if selO >= 0.5 {
		t.Errorf("orders selectivity = %v, want < 0.5 (constant pred must contribute)", selO)
	}
	if selO <= 0 {
		t.Errorf("orders selectivity = %v, want > 0", selO)
	}
	// Table with no predicates: selectivity 1.
	selNone, err := tpl.TableSelectivity("part", sv, st)
	if err != nil {
		t.Fatal(err)
	}
	if selNone != 1 {
		t.Errorf("no-predicate table selectivity = %v, want 1", selNone)
	}
	// Short sVector must error.
	if _, err := tpl.TableSelectivity("orders", []float64{0.4}, st); err == nil {
		t.Error("short sVector should fail")
	}
}

func TestSQLRendering(t *testing.T) {
	tpl, _ := testTemplate(t)
	sql := tpl.SQL()
	for _, want := range []string{
		"FROM lineitem, orders",
		"lineitem.l_orderkey = orders.o_orderkey",
		"lineitem.l_shipdate <= ?0",
		"orders.o_totalprice >= ?1",
		"orders.o_shippriority <= 2",
	} {
		if !strings.Contains(sql, want) {
			t.Errorf("SQL() = %q missing %q", sql, want)
		}
	}
	tpl.Agg = GroupBy
	if sql := tpl.SQL(); !strings.Contains(sql, "GROUP BY") {
		t.Errorf("GroupBy SQL missing GROUP BY: %q", sql)
	}
}

func TestCmpOpString(t *testing.T) {
	if LE.String() != "<=" || GE.String() != ">=" {
		t.Errorf("CmpOp strings wrong: %q %q", LE.String(), GE.String())
	}
}

func TestSingleTableTemplate(t *testing.T) {
	cat := catalog.NewTPCH(0.05)
	tpl := &Template{
		Name:    "q_single",
		Catalog: cat,
		Tables:  []string{"lineitem"},
		Preds: []Predicate{
			{Table: "lineitem", Column: "l_shipdate", Op: LE, Param: 0},
			{Table: "lineitem", Column: "l_quantity", Op: GE, Param: 1},
		},
	}
	if err := tpl.Validate(); err != nil {
		t.Fatalf("single-table template should validate: %v", err)
	}
	if tpl.Dimensions() != 2 {
		t.Errorf("Dimensions = %d, want 2", tpl.Dimensions())
	}
}
