// Package query defines parameterized query templates and query instances.
//
// A Template is the paper's "parameterized query Q": a join graph over base
// tables together with predicates, d of which are parameterized one-sided
// range predicates (the paper's "dimensions"). An Instance binds concrete
// parameter values; its compact representation is the selectivity vector
// sVector of the parameterized predicates (§2).
package query

import (
	"fmt"
	"strings"

	"repro/internal/catalog"
	"repro/internal/stats"
)

// CmpOp is the comparison operator of a range predicate. The paper's
// workloads use one-sided range predicates (col <= v or col >= v).
type CmpOp int

const (
	// LE is "column <= value".
	LE CmpOp = iota
	// GE is "column >= value".
	GE
)

// String returns the SQL spelling of the operator.
func (op CmpOp) String() string {
	if op == GE {
		return ">="
	}
	return "<="
}

// Predicate is a range predicate on a base-table column. If Param >= 0 the
// comparison value is the Param-th query parameter (a "dimension");
// otherwise Value is a template constant.
type Predicate struct {
	Table  string
	Column string
	Op     CmpOp
	Param  int // parameter ordinal, or -1 for a constant predicate
	Value  float64
}

// Join is an equi-join edge between two tables. Selectivity is the join
// selectivity factor applied to the Cartesian product; per the paper's
// standard PQO assumptions (§5.2 footnote), it is fixed across instances.
type Join struct {
	Left, Right       string
	LeftCol, RightCol string
	Selectivity       float64
}

// Aggregation describes an optional final aggregation on the query.
type Aggregation int

const (
	// NoAgg means the query returns join rows directly.
	NoAgg Aggregation = iota
	// GroupBy adds a grouping aggregation over the join result.
	GroupBy
)

// Template is a parameterized query: the unit the PQO techniques operate on.
type Template struct {
	Name    string
	Catalog *catalog.Catalog
	Tables  []string
	Joins   []Join
	Preds   []Predicate
	Agg     Aggregation
	// GroupCard is the estimated number of groups when Agg == GroupBy.
	GroupCard float64
}

// Validate checks the template for internal consistency against its catalog.
func (t *Template) Validate() error {
	if t.Name == "" {
		return fmt.Errorf("query: template with empty name")
	}
	if t.Catalog == nil {
		return fmt.Errorf("query: template %s has nil catalog", t.Name)
	}
	if len(t.Tables) == 0 {
		return fmt.Errorf("query: template %s has no tables", t.Name)
	}
	inQuery := make(map[string]bool, len(t.Tables))
	for _, tab := range t.Tables {
		ct := t.Catalog.Table(tab)
		if ct == nil {
			return fmt.Errorf("query: template %s references unknown table %s", t.Name, tab)
		}
		if inQuery[tab] {
			return fmt.Errorf("query: template %s lists table %s twice", t.Name, tab)
		}
		inQuery[tab] = true
	}
	for _, j := range t.Joins {
		for _, side := range []struct{ tab, col string }{{j.Left, j.LeftCol}, {j.Right, j.RightCol}} {
			if !inQuery[side.tab] {
				return fmt.Errorf("query: template %s join references table %s not in FROM list", t.Name, side.tab)
			}
			if t.Catalog.Table(side.tab).Column(side.col) == nil {
				return fmt.Errorf("query: template %s join references unknown column %s.%s", t.Name, side.tab, side.col)
			}
		}
		if j.Selectivity <= 0 || j.Selectivity > 1 {
			return fmt.Errorf("query: template %s join %s-%s has selectivity %v outside (0,1]",
				t.Name, j.Left, j.Right, j.Selectivity)
		}
	}
	if len(t.Tables) > 1 && !t.connected() {
		return fmt.Errorf("query: template %s join graph is not connected", t.Name)
	}
	seenParam := make(map[int]bool)
	for _, p := range t.Preds {
		if !inQuery[p.Table] {
			return fmt.Errorf("query: template %s predicate references table %s not in FROM list", t.Name, p.Table)
		}
		if t.Catalog.Table(p.Table).Column(p.Column) == nil {
			return fmt.Errorf("query: template %s predicate references unknown column %s.%s", t.Name, p.Table, p.Column)
		}
		if p.Param >= 0 {
			if seenParam[p.Param] {
				return fmt.Errorf("query: template %s has two predicates for parameter %d", t.Name, p.Param)
			}
			seenParam[p.Param] = true
		}
	}
	d := t.Dimensions()
	for i := 0; i < d; i++ {
		if !seenParam[i] {
			return fmt.Errorf("query: template %s parameter ordinals not dense: missing %d", t.Name, i)
		}
	}
	return nil
}

// connected reports whether the join graph spans all tables.
func (t *Template) connected() bool {
	idx := make(map[string]int, len(t.Tables))
	for i, tab := range t.Tables {
		idx[tab] = i
	}
	parent := make([]int, len(t.Tables))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, j := range t.Joins {
		a, aok := idx[j.Left]
		b, bok := idx[j.Right]
		if !aok || !bok {
			return false
		}
		parent[find(a)] = find(b)
	}
	root := find(0)
	for i := range parent {
		if find(i) != root {
			return false
		}
	}
	return true
}

// Dimensions returns d, the number of parameterized predicates.
func (t *Template) Dimensions() int {
	max := -1
	for _, p := range t.Preds {
		if p.Param > max {
			max = p.Param
		}
	}
	return max + 1
}

// ParamPredicates returns the parameterized predicates indexed by parameter
// ordinal: result[i] is the predicate bound to parameter i.
func (t *Template) ParamPredicates() []Predicate {
	out := make([]Predicate, t.Dimensions())
	for _, p := range t.Preds {
		if p.Param >= 0 {
			out[p.Param] = p
		}
	}
	return out
}

// SQL renders the template as SQL text with ? placeholders, for display.
func (t *Template) SQL() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if t.Agg == GroupBy {
		b.WriteString("g, COUNT(*) ")
	} else {
		b.WriteString("* ")
	}
	b.WriteString("FROM ")
	b.WriteString(strings.Join(t.Tables, ", "))
	conds := make([]string, 0, len(t.Joins)+len(t.Preds))
	for _, j := range t.Joins {
		conds = append(conds, fmt.Sprintf("%s.%s = %s.%s", j.Left, j.LeftCol, j.Right, j.RightCol))
	}
	for _, p := range t.Preds {
		if p.Param >= 0 {
			conds = append(conds, fmt.Sprintf("%s.%s %s ?%d", p.Table, p.Column, p.Op, p.Param))
		} else {
			conds = append(conds, fmt.Sprintf("%s.%s %s %g", p.Table, p.Column, p.Op, p.Value))
		}
	}
	if len(conds) > 0 {
		b.WriteString(" WHERE ")
		b.WriteString(strings.Join(conds, " AND "))
	}
	if t.Agg == GroupBy {
		b.WriteString(" GROUP BY g")
	}
	return b.String()
}

// Instance is one execution of a template with bound parameter values.
type Instance struct {
	Template *Template
	// Params[i] is the value bound to parameter i.
	Params []float64
}

// NewInstance binds parameter values to a template.
func NewInstance(t *Template, params []float64) (*Instance, error) {
	if got, want := len(params), t.Dimensions(); got != want {
		return nil, fmt.Errorf("query: template %s needs %d params, got %d", t.Name, want, got)
	}
	cp := make([]float64, len(params))
	copy(cp, params)
	return &Instance{Template: t, Params: cp}, nil
}

// SVector computes the instance's selectivity vector from the statistics
// store: entry i is the selectivity of the i-th parameterized predicate.
// This is the engine's "compute selectivity vector" API (§4.2): it requires
// only histogram lookups, no plan search.
func (q *Instance) SVector(st *stats.Store) ([]float64, error) {
	preds := q.Template.ParamPredicates()
	sv := make([]float64, len(preds))
	for i, p := range preds {
		var (
			sel float64
			err error
		)
		if p.Op == LE {
			sel, err = st.SelectivityLE(p.Table, p.Column, q.Params[i])
		} else {
			sel, err = st.SelectivityGE(p.Table, p.Column, q.Params[i])
		}
		if err != nil {
			return nil, fmt.Errorf("query: sVector for %s: %w", q.Template.Name, err)
		}
		sv[i] = sel
	}
	return sv, nil
}

// TableSelectivity returns the combined selectivity of all predicates
// (parameterized and constant) on the given table, assuming predicate
// independence (the paper's assumption (c) in §5.2), where sv is the
// instance's selectivity vector.
func (t *Template) TableSelectivity(table string, sv []float64, st *stats.Store) (float64, error) {
	sel := 1.0
	for _, p := range t.Preds {
		if p.Table != table {
			continue
		}
		if p.Param >= 0 {
			if p.Param >= len(sv) {
				return 0, fmt.Errorf("query: sVector too short for template %s (need %d)", t.Name, p.Param+1)
			}
			sel *= sv[p.Param]
			continue
		}
		var (
			s   float64
			err error
		)
		if p.Op == LE {
			s, err = st.SelectivityLE(p.Table, p.Column, p.Value)
		} else {
			s, err = st.SelectivityGE(p.Table, p.Column, p.Value)
		}
		if err != nil {
			return 0, err
		}
		sel *= s
	}
	return stats.ClampSelectivity(sel), nil
}
