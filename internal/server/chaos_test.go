package server

import (
	"encoding/json"
	"errors"
	"flag"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/pqotest"
	"repro/pqo"
)

// chaosFull switches the chaos suite from the short CI profile to the
// full one (longer streams, more concurrency). Run it with
//
//	go test -race ./internal/server/ -run TestChaos -chaos.full
//
// or ./scripts/check.sh -chaos.
var chaosFull = flag.Bool("chaos.full", false, "run the full (long) chaos profiles")

// chaosLambda is deliberately tight so a realistic share of the stream
// misses the cache and exercises the optimizer-side fault sites.
const chaosLambda = 1.1

// chaosServer is one template served through a fault-injecting engine
// with the full resilience configuration, plus the clean twin engine used
// as ground truth for λ checks.
type chaosServer struct {
	srv   *Server
	h     http.Handler
	inj   *faultinject.Injector
	truth *pqotest.Engine
}

func newChaosServer(t *testing.T, inj *faultinject.Injector, cfg Config, opts ...pqo.Option) *chaosServer {
	t.Helper()
	eng, err := pqotest.RandomEngine(rand.New(rand.NewSource(11)), 2, 6)
	if err != nil {
		t.Fatal(err)
	}
	// Same seed → identical specs and fingerprints: a clean twin that
	// reports ground-truth costs no matter what the injector does.
	truth, err := pqotest.RandomEngine(rand.New(rand.NewSource(11)), 2, 6)
	if err != nil {
		t.Fatal(err)
	}
	faulty := faultinject.Wrap(eng, inj)
	scr, err := pqo.New(faulty, append([]pqo.Option{pqo.WithLambda(chaosLambda)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	s := New(cfg)
	if err := s.Register("chaos", "SELECT chaos", faulty, scr); err != nil {
		t.Fatal(err)
	}
	return &chaosServer{srv: s, h: s.Handler(), inj: inj, truth: truth}
}

// resilientOpts is the full degraded-mode configuration every chaos
// profile serves under.
func resilientOpts() []pqo.Option {
	return []pqo.Option{
		pqo.WithDegradedFallback(),
		pqo.WithOptimizerDeadline(20 * time.Millisecond),
		pqo.WithCircuitBreaker(3, 25*time.Millisecond),
	}
}

// chaosOutcome tallies one stream's responses.
type chaosOutcome struct {
	ok, degraded, shed, explainedErr int
}

// replayChaosStream fires n requests (from workers concurrent goroutines)
// drawn from a small recurring sv pool — TPC-style: templates see repeated
// parameter regions, so the cache warms and hits mix with misses. Every
// response must be λ-guaranteed, explicitly Degraded, or an explained
// error (a mapped sentinel or a shed with Retry-After); anything else
// fails the test.
func replayChaosStream(t *testing.T, cs *chaosServer, seed int64, n, workers int) chaosOutcome {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	pool := make([][]float64, 40)
	for i := range pool {
		pool[i] = pqotest.RandomSVector(rng, 2)
	}

	// Warm the recurring pool while the injector is quiet, as a service
	// with healthy history would be. Without this the stream is a
	// cold-start outage: the breaker can trip before any plan is cached
	// and the whole (fast) stream then drains inside one cooldown window,
	// a scenario TestDegradedFallbackEmptyCacheErrors covers directly.
	cs.inj.Disable()
	for _, sv := range pool {
		if code, _, _ := chaosPost(t, cs.h, sv); code != http.StatusOK {
			t.Fatalf("healthy warmup at %v: status %d", sv, code)
		}
	}
	cs.inj.Enable()
	svs := make([][]float64, n)
	for i := range svs {
		if rng.Intn(4) == 0 { // 25% fresh instances, 75% recurring
			svs[i] = pqotest.RandomSVector(rng, 2)
		} else {
			svs[i] = pool[rng.Intn(len(pool))]
		}
	}

	var mu sync.Mutex
	var out chaosOutcome
	var wg sync.WaitGroup
	work := make(chan []float64)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for sv := range work {
				code, resp, eb := chaosPost(t, cs.h, sv)
				mu.Lock()
				classifyChaosResponse(t, cs, sv, code, resp, eb, &out)
				mu.Unlock()
			}
		}()
	}
	for _, sv := range svs {
		work <- sv
	}
	close(work)
	wg.Wait()
	return out
}

func chaosPost(t *testing.T, h http.Handler, sv []float64) (int, *PlanResponse, *errorBody) {
	t.Helper()
	w, resp := postPlan(t, h, PlanRequest{Template: "chaos", SVector: sv})
	if w.Code == http.StatusOK {
		return w.Code, resp, nil
	}
	var eb errorBody
	if err := json.Unmarshal(w.Body.Bytes(), &eb); err != nil {
		t.Errorf("non-JSON error body (status %d): %q", w.Code, w.Body)
		return w.Code, nil, nil
	}
	return w.Code, nil, &eb
}

// classifyChaosResponse enforces the chaos invariant on one response.
// Callers serialize access (out is shared).
func classifyChaosResponse(t *testing.T, cs *chaosServer, sv []float64, code int, resp *PlanResponse, eb *errorBody, out *chaosOutcome) {
	switch code {
	case http.StatusOK:
		cost, known := cs.truth.CostByFingerprint(resp.Fingerprint, sv)
		if !known {
			t.Errorf("response served unknown plan %q", resp.Fingerprint)
			return
		}
		if resp.Degraded {
			if resp.DegradedReason == "" {
				t.Errorf("degraded response without a reason: %+v", resp)
			}
			out.degraded++
			return
		}
		// A non-degraded response carries the full λ guarantee, checked
		// against the clean twin engine: cost(served) ≤ λ·cost(optimal).
		if opt := cs.truth.OptimalCost(sv); cost > chaosLambda*opt*(1+1e-9) {
			t.Errorf("λ guarantee violated at %v: served cost %g > %g·%g", sv, cost, chaosLambda, opt)
		}
		out.ok++
	case http.StatusTooManyRequests:
		if eb == nil || eb.Sentinel != "ErrOverloaded" {
			t.Errorf("429 without ErrOverloaded sentinel: %+v", eb)
		}
		out.shed++
	case http.StatusServiceUnavailable, http.StatusGatewayTimeout, http.StatusBadGateway,
		http.StatusUnprocessableEntity:
		if eb == nil || eb.Sentinel == "" {
			t.Errorf("status %d without a sentinel: %+v", code, eb)
		}
		out.explainedErr++
	default:
		t.Errorf("unexplained response: status %d (%+v %+v)", code, resp, eb)
	}
}

var errChaosInjected = errors.New("chaos: injected engine fault")

// TestChaosProfiles replays a TPC-style instance stream against each
// fault profile and asserts the degraded-mode invariant: every response
// is λ-guaranteed, explicitly Degraded, or an explained error — never an
// unexplained failure. Run with -race (scripts/check.sh does).
func TestChaosProfiles(t *testing.T) {
	n, workers := 300, 4
	if *chaosFull {
		n, workers = 3000, 8
	}
	profiles := []struct {
		name string
		inj  *faultinject.Injector
		cfg  Config
	}{
		{"latency-spikes", faultinject.LatencyProfile(1, 0.2, 40*time.Millisecond), Config{}},
		{"engine-errors", faultinject.ErrorProfile(2, 0.3, errChaosInjected), Config{}},
		{"optimizer-panics", faultinject.PanicProfile(3, 0.5), Config{}},
		{"overload", faultinject.LatencyProfile(4, 0.5, 15*time.Millisecond),
			Config{MaxInFlight: 2, QueueWait: time.Millisecond}},
		{"mixed", faultinject.New(5).
			Set(faultinject.SiteOptimize, faultinject.Point{Rate: 0.15, Fault: faultinject.Fault{Latency: 30 * time.Millisecond}}).
			Set(faultinject.SiteRecost, faultinject.Point{Rate: 0.1, Fault: faultinject.Fault{Err: errChaosInjected}}).
			Set(faultinject.SitePrepare, faultinject.Point{Rate: 0.05, Fault: faultinject.Fault{Err: errChaosInjected}}),
			Config{MaxInFlight: 8, QueueWait: 5 * time.Millisecond}},
	}
	for _, p := range profiles {
		t.Run(p.name, func(t *testing.T) {
			t.Parallel()
			cs := newChaosServer(t, p.inj, p.cfg, resilientOpts()...)
			out := replayChaosStream(t, cs, 100+int64(len(p.name)), n, workers)
			total := out.ok + out.degraded + out.shed + out.explainedErr
			if total != n {
				t.Errorf("classified %d of %d responses", total, n)
			}
			if out.ok == 0 {
				t.Error("no fully-guaranteed responses at all")
			}
			if cs.inj.Injected() == 0 {
				t.Error("profile injected no faults — the stream proved nothing")
			}
			t.Logf("%s: %d ok, %d degraded, %d shed, %d explained errors (%d faults injected)",
				p.name, out.ok, out.degraded, out.shed, out.explainedErr, cs.inj.Injected())
		})
	}
}

// TestChaosBreakerObservability drives the breaker through a full
// open → half-open → closed cycle with a hard outage and asserts every
// transition is visible in /metrics and /healthz.
func TestChaosBreakerObservability(t *testing.T) {
	inj := faultinject.ErrorProfile(7, 1, errChaosInjected)
	inj.Disable()
	cs := newChaosServer(t, inj, Config{},
		pqo.WithDegradedFallback(), pqo.WithCircuitBreaker(3, 20*time.Millisecond))

	// Warm the cache while healthy.
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 20; i++ {
		if code, _, _ := chaosPost(t, cs.h, pqotest.RandomSVector(rng, 2)); code != http.StatusOK {
			t.Fatalf("warmup request %d: status %d", i, code)
		}
	}

	// Hard outage: every engine call fails until the breaker opens.
	inj.Enable()
	opened := false
	for i := 0; i < 50 && !opened; i++ {
		chaosPost(t, cs.h, pqotest.RandomSVector(rng, 2))
		opened = cs.metricValue(t, `pqo_breaker_state{template="chaos"}`) == int64(pqo.BreakerOpen)
	}
	if !opened {
		t.Fatal("breaker never opened under a hard outage")
	}
	if got := cs.metricValue(t, `pqo_breaker_transitions_total{template="chaos",transition="open"}`); got < 1 {
		t.Errorf("open transitions = %d, want >= 1", got)
	}
	if got := cs.metricValue(t, `pqo_injected_faults_total{template="chaos"}`); got < 3 {
		t.Errorf("injected faults metric = %d, want >= 3", got)
	}
	if hs := cs.srv.health(); hs.Status != "degraded" || hs.Breakers["chaos"] == "" {
		t.Errorf("health during outage = %+v, want degraded with a breaker entry", hs)
	}

	// Recovery: after the cooldown a probe closes the breaker.
	inj.Disable()
	deadline := time.Now().Add(2 * time.Second)
	for cs.metricValue(t, `pqo_breaker_state{template="chaos"}`) != int64(pqo.BreakerClosed) {
		if time.Now().After(deadline) {
			t.Fatal("breaker never closed after recovery")
		}
		time.Sleep(10 * time.Millisecond)
		chaosPost(t, cs.h, pqotest.RandomSVector(rng, 2))
	}
	if got := cs.metricValue(t, `pqo_breaker_transitions_total{template="chaos",transition="close"}`); got < 1 {
		t.Errorf("close transitions = %d, want >= 1", got)
	}
	if hs := cs.srv.health(); hs.Status != "serving" {
		t.Errorf("health after recovery = %+v, want serving", hs)
	}
}

func (cs *chaosServer) metricValue(t *testing.T, series string) int64 {
	t.Helper()
	w := httptest.NewRecorder()
	cs.h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/metrics", nil))
	return promValue(t, w.Body.String(), series)
}
