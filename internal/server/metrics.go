package server

import (
	"fmt"
	"io"
	"sort"
	"sync/atomic"
	"time"

	"repro/pqo"
)

// histBuckets is the number of exponential latency buckets: bucket i
// counts observations with latency ≤ 1µs·2^i, so the range spans 1µs to
// ~8.4s before the overflow bucket.
const histBuckets = 24

// latencyHist is a lock-free exponential-bucket latency histogram. All
// fields are atomics: request handlers observe concurrently, /metrics
// reads concurrently.
type latencyHist struct {
	counts   [histBuckets]atomic.Int64
	overflow atomic.Int64
	count    atomic.Int64
	sumNanos atomic.Int64
}

func (h *latencyHist) observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.count.Add(1)
	h.sumNanos.Add(d.Nanoseconds())
	us := d.Microseconds()
	for i := 0; i < histBuckets; i++ {
		if us <= 1<<i {
			h.counts[i].Add(1)
			return
		}
	}
	h.overflow.Add(1)
}

// bucketBound returns bucket i's upper bound in seconds.
func bucketBound(i int) float64 { return float64(int64(1)<<i) / 1e6 }

// writeProm writes the histogram in Prometheus text format (cumulative
// buckets, _sum and _count series) under the given metric name and label
// set.
func (h *latencyHist) writeProm(w io.Writer, name, labels string) {
	cum := int64(0)
	for i := 0; i < histBuckets; i++ {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{%s,le=\"%g\"} %d\n", name, labels, bucketBound(i), cum)
	}
	cum += h.overflow.Load()
	fmt.Fprintf(w, "%s_bucket{%s,le=\"+Inf\"} %d\n", name, labels, cum)
	fmt.Fprintf(w, "%s_sum{%s} %g\n", name, labels, float64(h.sumNanos.Load())/1e9)
	fmt.Fprintf(w, "%s_count{%s} %d\n", name, labels, h.count.Load())
}

// checkLabels are the decision provenances a /plan request can resolve
// through, in the order their histograms are kept per template entry.
var checkLabels = [...]string{"optimizer", "selectivity-check", "cost-check", "shared", "degraded"}

const (
	histOptimizer = iota
	histSelectivity
	histCost
	histShared
	histDegraded
)

// writeMetrics renders every registered template's counters and latency
// histograms in Prometheus text exposition format.
func (s *Server) writeMetrics(w io.Writer) {
	s.mu.RLock()
	names := make([]string, 0, len(s.entries))
	for name := range s.entries {
		names = append(names, name)
	}
	s.mu.RUnlock()
	sort.Strings(names)

	fmt.Fprintln(w, "# HELP pqo_instances_total Query instances processed per template.")
	fmt.Fprintln(w, "# TYPE pqo_instances_total counter")
	for _, name := range names {
		e := s.entry(name)
		st := e.scr.Stats()
		fmt.Fprintf(w, "pqo_instances_total{template=%q} %d\n", name, st.Instances)
	}

	type scalar struct {
		metric, help string
		value        func(st statsSnapshot) string
	}
	scalars := []scalar{
		{"pqo_opt_calls_total", "Full optimizer calls (numOpt).",
			func(st statsSnapshot) string { return fmt.Sprintf("%d", st.OptCalls) }},
		{"pqo_shared_opt_calls_total", "Instances served by joining another caller's in-flight optimizer call.",
			func(st statsSnapshot) string { return fmt.Sprintf("%d", st.SharedOptCalls) }},
		{"pqo_read_path_hits_total", "Cache hits served by the lock-free snapshot read path.",
			func(st statsSnapshot) string { return fmt.Sprintf("%d", st.ReadPathHits) }},
		{"pqo_write_path_hits_total", "Cache hits served by the second-chance check on the miss path.",
			func(st statsSnapshot) string { return fmt.Sprintf("%d", st.WritePathHits) }},
		{"pqo_getplan_recosts_total", "Recost calls on the critical path (cost check).",
			func(st statsSnapshot) string { return fmt.Sprintf("%d", st.GetPlanRecosts) }},
		{"pqo_recost_cache_hits_total", "Recost result cache hits.",
			func(st statsSnapshot) string { return fmt.Sprintf("%d", st.RecostCacheHits) }},
		{"pqo_recost_cache_misses_total", "Recost result cache misses.",
			func(st statsSnapshot) string { return fmt.Sprintf("%d", st.RecostCacheMisses) }},
		{"pqo_env_pool_gets_total", "Pooled selectivity environments handed out.",
			func(st statsSnapshot) string { return fmt.Sprintf("%d", st.EnvPoolGets) }},
		{"pqo_env_pool_reuses_total", "Pooled selectivity environments reused from the pool.",
			func(st statsSnapshot) string { return fmt.Sprintf("%d", st.EnvPoolReuses) }},
		{"pqo_plans", "Plans currently cached.",
			func(st statsSnapshot) string { return fmt.Sprintf("%d", st.CurPlans) }},
		{"pqo_plan_cache_bytes", "Estimated plan-cache memory.",
			func(st statsSnapshot) string { return fmt.Sprintf("%d", st.MemoryBytes) }},
		{"pqo_bcg_violations_total", "BCG violations detected (Appendix G).",
			func(st statsSnapshot) string { return fmt.Sprintf("%d", st.Violations) }},
		{"pqo_evictions_total", "Plans evicted to enforce the plan budget.",
			func(st statsSnapshot) string { return fmt.Sprintf("%d", st.Evictions) }},
		{"pqo_degraded_total", "Decisions served without the λ guarantee (degraded fallback).",
			func(st statsSnapshot) string { return fmt.Sprintf("%d", st.DegradedDecisions) }},
		{"pqo_read_path_errors_total", "Read-path faults absorbed by falling through to the optimizer path.",
			func(st statsSnapshot) string { return fmt.Sprintf("%d", st.ReadPathErrors) }},
		{"pqo_breaker_state", "Optimizer circuit breaker state (0=closed, 1=open, 2=half-open).",
			func(st statsSnapshot) string { return fmt.Sprintf("%d", int(st.BreakerState)) }},
		{"pqo_injected_faults_total", "Faults injected by the fault-injection harness (0 in production).",
			func(st statsSnapshot) string { return fmt.Sprintf("%d", st.InjectedFaults) }},
		{"pqo_stats_epoch", "Current statistics epoch id (0 = epoch-less engine).",
			func(st statsSnapshot) string { return fmt.Sprintf("%d", st.StatsEpoch) }},
		{"pqo_cluster_epoch_observed", "Highest cluster statistics generation observed from the coordinator (0 = none).",
			func(st statsSnapshot) string { return fmt.Sprintf("%d", st.ClusterEpoch) }},
		{"pqo_cluster_epoch_skew", "Generations this node's statistics epoch lags the observed cluster epoch.",
			func(st statsSnapshot) string { return fmt.Sprintf("%d", st.EpochSkew) }},
		{"pqo_epoch_skew_flagged_total", "Decisions served flagged because the node exceeded the cluster skew bound.",
			func(st statsSnapshot) string { return fmt.Sprintf("%d", st.EpochSkewFlagged) }},
		{"pqo_lagging_instances", "Cached instance anchors awaiting revalidation under the current epoch.",
			func(st statsSnapshot) string { return fmt.Sprintf("%d", st.LaggingInstances) }},
		{"pqo_revalidated_plans_total", "Anchors re-derived under a new statistics epoch by background revalidation.",
			func(st statsSnapshot) string { return fmt.Sprintf("%d", st.RevalidatedPlans) }},
		{"pqo_epoch_lag_fallbacks_total", "Instances served flagged because their candidates lagged the current epoch.",
			func(st statsSnapshot) string { return fmt.Sprintf("%d", st.EpochLagFallbacks) }},
		{"pqo_write_lock_wait_seconds_total", "Cumulative time waiting for the cache write lock.",
			func(st statsSnapshot) string { return fmt.Sprintf("%g", st.WriteLockWait.Seconds()) }},
		{"pqo_writer_wait_seconds_total", "Time writers waited to acquire this template's write-domain mutex (striped accumulation).",
			func(st statsSnapshot) string { return fmt.Sprintf("%g", st.WriteLockWait.Seconds()) }},
		{"pqo_publish_total", "RCU snapshot publications for this template's write domain.",
			func(st statsSnapshot) string { return fmt.Sprintf("%d", st.PublishTotal) }},
		{"pqo_publish_coalesced_total", "Publication marks absorbed into a batched flush instead of publishing their own snapshot.",
			func(st statsSnapshot) string { return fmt.Sprintf("%d", st.PublishCoalesced) }},
	}
	for _, sc := range scalars {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", sc.metric, sc.help, sc.metric, promType(sc.metric))
		for _, name := range names {
			e := s.entry(name)
			st := e.scr.Stats()
			fmt.Fprintf(w, "%s{template=%q} %s\n", sc.metric, name, sc.value(st))
		}
	}

	fmt.Fprintln(w, "# HELP pqo_breaker_transitions_total Circuit breaker state transitions by kind.")
	fmt.Fprintln(w, "# TYPE pqo_breaker_transitions_total counter")
	for _, name := range names {
		e := s.entry(name)
		st := e.scr.Stats()
		for _, t := range []struct {
			kind  string
			count int64
		}{{"open", st.BreakerOpens}, {"half-open", st.BreakerHalfOpens}, {"close", st.BreakerCloses}} {
			fmt.Fprintf(w, "pqo_breaker_transitions_total{template=%q,transition=%q} %d\n",
				name, t.kind, t.count)
		}
	}

	fmt.Fprintln(w, "# HELP pqo_write_domains Per-template RCU write domains attached to this server's directory.")
	fmt.Fprintln(w, "# TYPE pqo_write_domains gauge")
	fmt.Fprintf(w, "pqo_write_domains %d\n", s.dir.Stats().Domains)

	fmt.Fprintln(w, "# HELP pqo_shed_total /plan requests shed with 429 because every in-flight slot stayed busy.")
	fmt.Fprintln(w, "# TYPE pqo_shed_total counter")
	fmt.Fprintf(w, "pqo_shed_total %d\n", s.shedTotal.Load())

	fmt.Fprintln(w, "# HELP pqo_epoch_lag_seconds Seconds since the last epoch advance while any plan-cache anchor still lags it (0 once revalidation drains).")
	fmt.Fprintln(w, "# TYPE pqo_epoch_lag_seconds gauge")
	fmt.Fprintf(w, "pqo_epoch_lag_seconds %g\n", s.epochLagSeconds())

	fmt.Fprintln(w, "# HELP pqo_check_latency_seconds End-to-end /plan decision latency by serving mechanism.")
	fmt.Fprintln(w, "# TYPE pqo_check_latency_seconds histogram")
	for _, name := range names {
		e := s.entry(name)
		for i := range e.hist {
			labels := fmt.Sprintf("template=%q,via=%q", name, checkLabels[i])
			e.hist[i].writeProm(w, "pqo_check_latency_seconds", labels)
		}
	}
}

// statsSnapshot is the Stats type rendered by /metrics; aliased to keep
// the scalar table readable.
type statsSnapshot = pqo.Stats

func promType(metric string) string {
	if len(metric) > 6 && metric[len(metric)-6:] == "_total" {
		return "counter"
	}
	return "gauge"
}
