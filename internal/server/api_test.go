package server

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/pqotest"
	"repro/pqo"
)

// TestLegacyRedirects asserts every pre-versioning path answers 308 with
// the /v1 target in Location, for the method the route serves (308
// preserves method and body, so POST clients survive the move).
func TestLegacyRedirects(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	h := s.Handler()
	n := 0
	for _, rt := range s.routes() {
		if rt.legacy == "" {
			continue
		}
		n++
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest(rt.method, rt.legacy, nil))
		if w.Code != http.StatusPermanentRedirect {
			t.Errorf("%s %s: status %d, want 308", rt.method, rt.legacy, w.Code)
		}
		if loc := w.Header().Get("Location"); loc != rt.path {
			t.Errorf("%s redirect Location = %q, want %q", rt.legacy, loc, rt.path)
		}
	}
	if n == 0 {
		t.Fatal("no legacy routes in the registry")
	}
}

// TestLegacyRedirectFollowedByClient proves an unupdated client still
// works end-to-end: net/http follows the 308 preserving the POST body, so
// a plan request against the old path succeeds against the new route.
func TestLegacyRedirectFollowedByClient(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body, _ := json.Marshal(PlanRequest{Template: "t1", SVector: []float64{0.1, 0.2}})
	resp, err := http.Post(ts.URL+"/plan", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("legacy POST /plan through redirect: status %d", resp.StatusCode)
	}
	var pr PlanResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil || pr.Plan == "" {
		t.Fatalf("redirected plan response = %+v (err %v)", pr, err)
	}
}

// TestOpenAPICoversEveryRoute asserts the served OpenAPI document and the
// route registry agree exactly: every registered route appears in the spec
// under its method, and the spec names no path the mux does not serve.
func TestOpenAPICoversEveryRoute(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/openapi.json", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("/v1/openapi.json: status %d", w.Code)
	}
	var doc struct {
		OpenAPI string                            `json:"openapi"`
		Info    struct{ Version string }          `json:"info"`
		Paths   map[string]map[string]interface{} `json:"paths"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.OpenAPI == "" || doc.Info.Version != "v1" {
		t.Errorf("spec header = openapi %q, version %q", doc.OpenAPI, doc.Info.Version)
	}
	registered := make(map[string]map[string]bool)
	for _, rt := range s.routes() {
		if registered[rt.path] == nil {
			registered[rt.path] = make(map[string]bool)
		}
		registered[rt.path][strings.ToLower(rt.method)] = true
	}
	for path, methods := range registered {
		for m := range methods {
			if _, ok := doc.Paths[path][m]; !ok {
				t.Errorf("spec missing %s %s", m, path)
			}
		}
	}
	for path, ops := range doc.Paths {
		for m := range ops {
			if !registered[path][m] {
				t.Errorf("spec documents unserved operation %s %s", m, path)
			}
		}
	}
}

// TestErrorEnvelopes asserts every error path answers the uniform
// {"error","sentinel"} JSON envelope.
func TestErrorEnvelopes(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	h := s.Handler()
	cases := []struct {
		name     string
		req      *http.Request
		code     int
		sentinel string
	}{
		{"unknown path", httptest.NewRequest(http.MethodGet, "/nope", nil),
			http.StatusNotFound, "ErrNotFound"},
		{"method not allowed", httptest.NewRequest(http.MethodDelete, "/v1/plan", nil),
			http.StatusMethodNotAllowed, "ErrMethodNotAllowed"},
		{"snapshots disabled", httptest.NewRequest(http.MethodPost, "/v1/snapshot", nil),
			http.StatusConflict, "ErrSnapshotsDisabled"},
		{"unknown template", httptest.NewRequest(http.MethodPost, "/v1/plan",
			strings.NewReader(`{"template":"nope","sVector":[0.1,0.2]}`)),
			http.StatusNotFound, "ErrUnknownTemplate"},
		{"admin without system", httptest.NewRequest(http.MethodPost, "/v1/admin/stats",
			strings.NewReader(`{"resampleSeed":1}`)),
			http.StatusConflict, "ErrNoSystem"},
	}
	for _, tc := range cases {
		w := httptest.NewRecorder()
		h.ServeHTTP(w, tc.req)
		if w.Code != tc.code {
			t.Errorf("%s: status %d, want %d (body %s)", tc.name, w.Code, tc.code, w.Body)
			continue
		}
		var eb errorBody
		if err := json.Unmarshal(w.Body.Bytes(), &eb); err != nil {
			t.Errorf("%s: body is not the envelope: %q", tc.name, w.Body)
			continue
		}
		if eb.Sentinel != tc.sentinel || eb.Error == "" {
			t.Errorf("%s: envelope = %+v, want sentinel %q with a message", tc.name, eb, tc.sentinel)
		}
	}

	// A draining server's healthz uses the envelope too.
	t.Run("healthz draining", func(t *testing.T) {
		s2, _ := newTestServer(t, Config{})
		s2.draining.Store(true)
		w := httptest.NewRecorder()
		s2.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/healthz", nil))
		if w.Code != http.StatusServiceUnavailable {
			t.Fatalf("draining healthz: status %d", w.Code)
		}
		var eb errorBody
		if err := json.Unmarshal(w.Body.Bytes(), &eb); err != nil || eb.Sentinel != "ErrUnhealthy" {
			t.Fatalf("draining healthz envelope = %s (err %v), want ErrUnhealthy", w.Body, err)
		}
	})
}

// TestTemplatesAndStatsSorted registers templates in non-alphabetical
// order and asserts /v1/templates and /v1/stats list them sorted by name,
// so output is stable across runs regardless of map iteration order.
func TestTemplatesAndStatsSorted(t *testing.T) {
	s, _ := newTestServer(t, Config{}) // registers "t1"
	for _, name := range []string{"zeta", "alpha", "mid"} {
		eng, err := pqotest.RandomEngine(rand.New(rand.NewSource(3)), 2, 4)
		if err != nil {
			t.Fatal(err)
		}
		scr, err := pqo.New(eng, pqo.WithLambda(2))
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Register(name, "SELECT "+name, eng, scr); err != nil {
			t.Fatal(err)
		}
	}
	h := s.Handler()
	want := []string{"alpha", "mid", "t1", "zeta"}

	for try := 0; try < 5; try++ { // map order varies run to run; sample a few
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/templates", nil))
		var tpls []TemplateInfo
		if err := json.Unmarshal(w.Body.Bytes(), &tpls); err != nil {
			t.Fatal(err)
		}
		for i, tpl := range tpls {
			if tpl.Name != want[i] {
				t.Fatalf("templates[%d] = %q, want %q (%+v)", i, tpl.Name, want[i], tpls)
			}
		}

		w = httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/stats", nil))
		var rows []StatsRow
		if err := json.Unmarshal(w.Body.Bytes(), &rows); err != nil {
			t.Fatal(err)
		}
		for i, row := range rows {
			if row.Template != want[i] {
				t.Fatalf("stats[%d] = %q, want %q", i, row.Template, want[i])
			}
		}
	}
}

// adminSystem builds a real TPC-H system with two registered templates
// sharing the system optimizer, the arrangement /v1/admin/stats manages.
func adminSystem(t *testing.T) (*Server, *pqo.System) {
	t.Helper()
	sys, err := pqo.NewSystem(pqo.TPCH(0.01), 3)
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{})
	for name, sql := range map[string]string{
		"q1": `SELECT * FROM lineitem, orders
		       WHERE lineitem.l_orderkey = orders.o_orderkey
		         AND lineitem.l_shipdate <= ?0
		         AND orders.o_totalprice >= ?1`,
		"q2": `SELECT * FROM lineitem
		       WHERE lineitem.l_shipdate <= ?0 AND lineitem.l_quantity <= ?1`,
	} {
		tpl, err := pqo.ParseTemplate(name, sql, sys.Cat)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := sys.EngineFor(tpl)
		if err != nil {
			t.Fatal(err)
		}
		scr, err := pqo.New(eng, pqo.WithLambda(2))
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Register(name, tpl.SQL(), eng, scr); err != nil {
			t.Fatal(err)
		}
	}
	s.SetSystem(sys)
	return s, sys
}

func postAdminStats(t *testing.T, h http.Handler, body string) (*httptest.ResponseRecorder, *AdminStatsResponse) {
	t.Helper()
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/v1/admin/stats", strings.NewReader(body)))
	if w.Code != http.StatusOK {
		return w, nil
	}
	var resp AdminStatsResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decoding admin response: %v (%s)", err, w.Body)
	}
	return w, &resp
}

// TestAdminStatsLifecycle drives the full admin surface: seed traffic,
// advance by full resample, advance by per-column delta, and read the
// epoch log back with revalidation progress.
func TestAdminStatsLifecycle(t *testing.T) {
	s, sys := adminSystem(t)
	h := s.Handler()
	for _, sv := range [][]float64{{0.02, 0.1}, {0.6, 0.5}, {0.3, 0.3}} {
		for _, tpl := range []string{"q1", "q2"} {
			if w, _ := postPlan(t, h, PlanRequest{Template: tpl, SVector: sv}); w.Code != http.StatusOK {
				t.Fatalf("seeding %s: status %d body %s", tpl, w.Code, w.Body)
			}
		}
	}

	// Full swap: resample with a fresh seed.
	w, resp := postAdminStats(t, h, `{"resampleSeed": 99}`)
	if resp == nil {
		t.Fatalf("resample advance: status %d body %s", w.Code, w.Body)
	}
	if resp.Epoch != 2 {
		t.Fatalf("epoch after first advance = %d, want 2", resp.Epoch)
	}
	if len(resp.Revalidation) != 2 {
		t.Fatalf("revalidation started for %d templates, want 2 (%+v)", len(resp.Revalidation), resp.Revalidation)
	}
	for name, p := range resp.Revalidation {
		if p.TargetEpoch != 2 {
			t.Errorf("%s revalidation target = %d, want 2", name, p.TargetEpoch)
		}
	}
	// Drain the background runs so the next advance starts clean.
	for _, e := range s.snapshotEntries() {
		if run := e.scr.CurrentRevalidation(); run != nil {
			<-run.Done()
		}
	}

	// Partial refresh: one column's histogram from a fresh sample.
	cols := sys.Stats.Columns()
	if len(cols) == 0 {
		t.Fatal("system has no histogram columns")
	}
	dot := strings.LastIndex(cols[0], ".")
	vals := make([]float64, 200)
	for i := range vals {
		vals[i] = float64(i) * 1.5
	}
	delta, _ := json.Marshal(AdminStatsRequest{Deltas: []pqo.HistogramDelta{{
		Table: cols[0][:dot], Column: cols[0][dot+1:], Values: vals,
	}}})
	w, resp = postAdminStats(t, h, string(delta))
	if resp == nil {
		t.Fatalf("delta advance: status %d body %s", w.Code, w.Body)
	}
	if resp.Epoch != 3 {
		t.Fatalf("epoch after delta advance = %d, want 3", resp.Epoch)
	}

	// The epoch log lists every generation, ascending, current flagged.
	w2 := httptest.NewRecorder()
	h.ServeHTTP(w2, httptest.NewRequest(http.MethodGet, "/v1/admin/epochs", nil))
	var log []EpochInfo
	if err := json.Unmarshal(w2.Body.Bytes(), &log); err != nil {
		t.Fatal(err)
	}
	if len(log) != 3 {
		t.Fatalf("epoch log has %d entries, want 3: %+v", len(log), log)
	}
	wantReasons := []string{"initial", "resample", "delta"}
	for i, info := range log {
		if info.Epoch != uint64(i+1) || info.Reason != wantReasons[i] {
			t.Errorf("log[%d] = epoch %d reason %q, want %d %q", i, info.Epoch, info.Reason, i+1, wantReasons[i])
		}
		if info.Current != (i == len(log)-1) {
			t.Errorf("log[%d].Current = %v", i, info.Current)
		}
	}
	if cols0 := log[2].Columns; len(cols0) != 1 || cols0[0] != cols[0] {
		t.Errorf("delta record columns = %v, want [%s]", cols0, cols[0])
	}

	// Serving still works and reports the current epoch once revalidation
	// has caught the caches up.
	for _, e := range s.snapshotEntries() {
		if run := e.scr.CurrentRevalidation(); run != nil {
			<-run.Done()
		}
	}
	if w, pr := postPlan(t, h, PlanRequest{Template: "q1", SVector: []float64{0.02, 0.1}}); w.Code != http.StatusOK {
		t.Fatalf("post-advance plan: status %d", w.Code)
	} else if pr.Epoch != 3 {
		t.Errorf("post-revalidation decision epoch = %d, want 3", pr.Epoch)
	}

	// The epoch gauge is visible in /metrics.
	wm := httptest.NewRecorder()
	h.ServeHTTP(wm, httptest.NewRequest(http.MethodGet, "/v1/metrics", nil))
	body := wm.Body.String()
	if got := promValue(t, body, `pqo_stats_epoch{template="q1"}`); got != 3 {
		t.Errorf("pqo_stats_epoch = %d, want 3", got)
	}
	if !strings.Contains(body, "pqo_epoch_lag_seconds") {
		t.Error("/v1/metrics missing pqo_epoch_lag_seconds")
	}
}

// TestAdminStatsValidation covers the request-shape errors.
func TestAdminStatsValidation(t *testing.T) {
	s, _ := adminSystem(t)
	h := s.Handler()
	cases := []struct {
		name, body string
	}{
		{"empty body", `{}`},
		{"both set", `{"resampleSeed":1,"deltas":[{"table":"lineitem","column":"l_shipdate","values":[1,2,3]}]}`},
		{"bad JSON", `{`},
		{"unknown column", `{"deltas":[{"table":"nope","column":"nope","values":[1,2,3]}]}`},
	}
	for _, tc := range cases {
		w, _ := postAdminStats(t, h, tc.body)
		if w.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (body %s)", tc.name, w.Code, w.Body)
			continue
		}
		var eb errorBody
		if err := json.Unmarshal(w.Body.Bytes(), &eb); err != nil || eb.Sentinel != "ErrBadRequest" {
			t.Errorf("%s: envelope = %s, want ErrBadRequest", tc.name, w.Body)
		}
	}
}
