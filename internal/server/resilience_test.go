package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/pqotest"
	"repro/pqo"
)

// toggleEngine wraps the synthetic engine with switchable faults and an
// optional gate that parks Optimize calls until released — the substrate
// for shedding and shutdown-under-load tests.
type toggleEngine struct {
	*pqotest.Engine
	failOpt    atomic.Bool
	failRecost atomic.Bool
	inOptimize atomic.Int64

	mu   sync.Mutex
	gate chan struct{}
}

var errToggleOpt = errors.New("toggle: optimizer down")
var errToggleRecost = errors.New("toggle: recost down")

func (e *toggleEngine) setGate() chan struct{} {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.gate = make(chan struct{})
	return e.gate
}

func (e *toggleEngine) currentGate() chan struct{} {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.gate
}

func (e *toggleEngine) Optimize(sv []float64) (*engine.CachedPlan, float64, error) {
	e.inOptimize.Add(1)
	defer e.inOptimize.Add(-1)
	if gate := e.currentGate(); gate != nil {
		<-gate
	}
	if e.failOpt.Load() {
		return nil, 0, errToggleOpt
	}
	return e.Engine.Optimize(sv)
}

func (e *toggleEngine) Recost(cp *engine.CachedPlan, sv []float64) (float64, error) {
	if e.failRecost.Load() {
		return 0, errToggleRecost
	}
	return e.Engine.Recost(cp, sv)
}

// twoPlane builds the deterministic 2-d two-plan engine used by the core
// tests: plan A cheap in dimension 0, plan B cheap in dimension 1, so a
// tight λ predictably forces mid-space instances to the optimizer.
func twoPlane(t testing.TB) *toggleEngine {
	t.Helper()
	eng, err := pqotest.NewEngine(2, []pqotest.PlanSpec{
		{Name: "A", Const: 1, Linear: []float64{2, 100}},
		{Name: "B", Const: 1, Linear: []float64{100, 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return &toggleEngine{Engine: eng}
}

// newResilientServer registers template "t1" over a toggleEngine with the
// given extra SCR options (λ=1.05 base, so distant instances miss).
func newResilientServer(t testing.TB, cfg Config, opts ...pqo.Option) (*Server, *toggleEngine) {
	t.Helper()
	eng := twoPlane(t)
	scr, err := pqo.New(eng, append([]pqo.Option{pqo.WithLambda(1.05)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	s := New(cfg)
	if err := s.Register("t1", "SELECT synthetic", eng, scr); err != nil {
		t.Fatal(err)
	}
	return s, eng
}

func warmServer(t testing.TB, h http.Handler) {
	t.Helper()
	for _, sv := range [][]float64{{0.01, 0.9}, {0.9, 0.01}} {
		if w, _ := postPlan(t, h, PlanRequest{Template: "t1", SVector: sv}); w.Code != http.StatusOK {
			t.Fatalf("warming at %v: status %d: %s", sv, w.Code, w.Body)
		}
	}
}

func decodeError(t testing.TB, w *httptest.ResponseRecorder) errorBody {
	t.Helper()
	var eb errorBody
	if err := json.Unmarshal(w.Body.Bytes(), &eb); err != nil {
		t.Fatalf("error body is not JSON: %q", w.Body)
	}
	return eb
}

// TestStatusForMapping pins the full sentinel → HTTP status table,
// including wrapped combinations.
func TestStatusForMapping(t *testing.T) {
	cases := []struct {
		err      error
		code     int
		sentinel string
	}{
		{pqo.ErrCancelled, http.StatusGatewayTimeout, "ErrCancelled"},
		{pqo.ErrOptimizerTimeout, http.StatusGatewayTimeout, "ErrOptimizerTimeout"},
		{pqo.ErrBreakerOpen, http.StatusServiceUnavailable, "ErrBreakerOpen"},
		{pqo.ErrUnavailable, http.StatusServiceUnavailable, "ErrUnavailable"},
		{pqo.ErrBudgetExhausted, http.StatusServiceUnavailable, "ErrBudgetExhausted"},
		{pqo.ErrNoPlan, http.StatusUnprocessableEntity, "ErrNoPlan"},
		{pqo.ErrOptimizerPanic, http.StatusBadGateway, "ErrOptimizerPanic"},
		{errors.New("mystery"), http.StatusInternalServerError, ""},
		// degrade wraps the trigger inside ErrUnavailable when the cache is
		// empty; the more specific sentinel must win.
		{fmt.Errorf("%w (cause: %w)", pqo.ErrUnavailable, pqo.ErrBreakerOpen),
			http.StatusServiceUnavailable, "ErrBreakerOpen"},
		{fmt.Errorf("wrap: %w", pqo.ErrNoPlan), http.StatusUnprocessableEntity, "ErrNoPlan"},
	}
	for _, c := range cases {
		code, sentinel := statusFor(c.err)
		if code != c.code || sentinel != c.sentinel {
			t.Errorf("statusFor(%v) = %d %q, want %d %q", c.err, code, sentinel, c.code, c.sentinel)
		}
	}
}

// noPlanEngine optimizes to no plan without error (an engine that cannot
// produce a plan for the instance).
type noPlanEngine struct{ *pqotest.Engine }

func (e *noPlanEngine) Optimize([]float64) (*engine.CachedPlan, float64, error) {
	return nil, 0, nil
}

func TestPlanErrorSentinels(t *testing.T) {
	t.Run("ErrNoPlan-422", func(t *testing.T) {
		eng := &noPlanEngine{Engine: twoPlane(t).Engine}
		scr, err := pqo.New(eng, pqo.WithLambda(2))
		if err != nil {
			t.Fatal(err)
		}
		s := New(Config{})
		if err := s.Register("t1", "", eng, scr); err != nil {
			t.Fatal(err)
		}
		w, _ := postPlan(t, s.Handler(), PlanRequest{Template: "t1", SVector: []float64{0.5, 0.5}})
		if w.Code != http.StatusUnprocessableEntity {
			t.Fatalf("status = %d, want 422", w.Code)
		}
		if eb := decodeError(t, w); eb.Sentinel != "ErrNoPlan" {
			t.Errorf("sentinel = %q, want ErrNoPlan", eb.Sentinel)
		}
	})

	t.Run("ErrBreakerOpen-503", func(t *testing.T) {
		// Breaker without degraded fallback: the first failure surfaces the
		// engine error (500), the second is rejected by the open breaker.
		s, eng := newResilientServer(t, Config{}, pqo.WithCircuitBreaker(1, time.Minute))
		h := s.Handler()
		eng.failOpt.Store(true)
		w, _ := postPlan(t, h, PlanRequest{Template: "t1", SVector: []float64{0.5, 0.5}})
		if w.Code != http.StatusInternalServerError {
			t.Fatalf("first failure status = %d, want 500", w.Code)
		}
		w, _ = postPlan(t, h, PlanRequest{Template: "t1", SVector: []float64{0.6, 0.6}})
		if w.Code != http.StatusServiceUnavailable {
			t.Fatalf("breaker-open status = %d, want 503", w.Code)
		}
		if eb := decodeError(t, w); eb.Sentinel != "ErrBreakerOpen" {
			t.Errorf("sentinel = %q, want ErrBreakerOpen", eb.Sentinel)
		}
	})

	t.Run("ErrCancelled-504", func(t *testing.T) {
		// A nanosecond budget expires before Process starts; the request
		// must map to 504 with the ErrCancelled sentinel. (The engine is
		// not gated: without an optimizer deadline a flight leader runs
		// its optimizer call to completion by design.)
		s, _ := newResilientServer(t, Config{RequestTimeout: time.Nanosecond})
		w, _ := postPlan(t, s.Handler(), PlanRequest{Template: "t1", SVector: []float64{0.5, 0.5}})
		if w.Code != http.StatusGatewayTimeout {
			t.Fatalf("status = %d, want 504", w.Code)
		}
		if eb := decodeError(t, w); eb.Sentinel != "ErrCancelled" {
			t.Errorf("sentinel = %q, want ErrCancelled", eb.Sentinel)
		}
	})
}

func TestDegradedResponseFields(t *testing.T) {
	s, eng := newResilientServer(t, Config{}, pqo.WithDegradedFallback())
	h := s.Handler()
	warmServer(t, h)
	eng.failOpt.Store(true)

	w, resp := postPlan(t, h, PlanRequest{Template: "t1", SVector: []float64{0.5, 0.45}})
	if w.Code != http.StatusOK {
		t.Fatalf("degraded request status = %d: %s", w.Code, w.Body)
	}
	if !resp.Degraded || resp.DegradedReason != string(pqo.DegradedOptimizerError) {
		t.Fatalf("response = %+v, want degraded optimizer-error", resp)
	}
	if resp.Via != "degraded-fallback" || resp.CostUnavailable {
		t.Errorf("via=%q costUnavailable=%v, want degraded-fallback with a cost", resp.Via, resp.CostUnavailable)
	}

	// Break recosting too: the decision still serves, with the cost
	// explicitly marked unavailable instead of a 500.
	eng.failRecost.Store(true)
	w, resp = postPlan(t, h, PlanRequest{Template: "t1", SVector: []float64{0.52, 0.44}})
	if w.Code != http.StatusOK {
		t.Fatalf("cost-unavailable request status = %d: %s", w.Code, w.Body)
	}
	if !resp.Degraded || !resp.CostUnavailable {
		t.Fatalf("response = %+v, want degraded with costUnavailable", resp)
	}

	// Observability: the degraded path shows up in /stats and /metrics.
	wm := httptest.NewRecorder()
	h.ServeHTTP(wm, httptest.NewRequest(http.MethodGet, "/v1/metrics", nil))
	body := wm.Body.String()
	if got := promValue(t, body, `pqo_degraded_total{template="t1"}`); got < 2 {
		t.Errorf("pqo_degraded_total = %d, want >= 2", got)
	}
	if got := promValue(t, body, `pqo_check_latency_seconds_count{template="t1",via="degraded"}`); got < 2 {
		t.Errorf("degraded latency histogram count = %d, want >= 2", got)
	}
}

func TestLoadShedding(t *testing.T) {
	s, eng := newResilientServer(t, Config{
		MaxInFlight: 1,
		QueueWait:   10 * time.Millisecond,
		RetryAfter:  2 * time.Second,
	})
	h := s.Handler()
	gate := eng.setGate()

	// Park one request inside the optimizer: it holds the only slot.
	blocked := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		w, _ := postPlan(t, h, PlanRequest{Template: "t1", SVector: []float64{0.5, 0.5}})
		blocked <- w
	}()
	deadline := time.Now().Add(2 * time.Second)
	for eng.inOptimize.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first request never reached the optimizer")
		}
		time.Sleep(time.Millisecond)
	}

	// The next request cannot get a slot within QueueWait: shed.
	w, _ := postPlan(t, h, PlanRequest{Template: "t1", SVector: []float64{0.2, 0.7}})
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("overload status = %d, want 429", w.Code)
	}
	// Retry-After is jittered in [base, 2·base] whole seconds so a herd
	// of shed clients does not come back in lockstep.
	if ra, err := strconv.Atoi(w.Header().Get("Retry-After")); err != nil || ra < 2 || ra > 4 {
		t.Errorf("Retry-After = %q, want an integer in [2, 4]", w.Header().Get("Retry-After"))
	}
	if eb := decodeError(t, w); eb.Sentinel != "ErrOverloaded" {
		t.Errorf("sentinel = %q, want ErrOverloaded", eb.Sentinel)
	}

	// Shedding shows up in /healthz (degraded) and /metrics.
	if hs := s.health(); hs.Status != "degraded" || hs.Sheds != 1 {
		t.Errorf("health = %+v, want degraded with 1 shed", hs)
	}
	wm := httptest.NewRecorder()
	h.ServeHTTP(wm, httptest.NewRequest(http.MethodGet, "/v1/metrics", nil))
	if got := promValue(t, wm.Body.String(), "pqo_shed_total"); got != 1 {
		t.Errorf("pqo_shed_total = %d, want 1", got)
	}

	// Release the slot: service returns to normal and the freed slot is
	// reusable.
	close(gate)
	if bw := <-blocked; bw.Code != http.StatusOK {
		t.Fatalf("parked request finished with %d: %s", bw.Code, bw.Body)
	}
	if w, _ := postPlan(t, h, PlanRequest{Template: "t1", SVector: []float64{0.2, 0.7}}); w.Code != http.StatusOK {
		t.Fatalf("post-overload request status = %d", w.Code)
	}
}

func TestHealthzStates(t *testing.T) {
	t.Run("serving", func(t *testing.T) {
		s, _ := newResilientServer(t, Config{})
		w := httptest.NewRecorder()
		s.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/healthz", nil))
		if w.Code != http.StatusOK {
			t.Fatalf("status = %d", w.Code)
		}
		var hs HealthStatus
		if err := json.Unmarshal(w.Body.Bytes(), &hs); err != nil || hs.Status != "serving" {
			t.Fatalf("healthz = %s (err %v), want serving", w.Body, err)
		}
	})

	t.Run("degraded-breaker", func(t *testing.T) {
		s, eng := newResilientServer(t, Config{},
			pqo.WithDegradedFallback(), pqo.WithCircuitBreaker(1, time.Minute))
		h := s.Handler()
		warmServer(t, h)
		eng.failOpt.Store(true)
		if w, _ := postPlan(t, h, PlanRequest{Template: "t1", SVector: []float64{0.5, 0.45}}); w.Code != http.StatusOK {
			t.Fatalf("degraded request status = %d", w.Code)
		}
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/healthz", nil))
		if w.Code != http.StatusOK {
			t.Fatalf("degraded healthz status = %d, want 200", w.Code)
		}
		var hs HealthStatus
		if err := json.Unmarshal(w.Body.Bytes(), &hs); err != nil {
			t.Fatal(err)
		}
		if hs.Status != "degraded" || hs.Breakers["t1"] != "open" {
			t.Fatalf("healthz = %+v, want degraded with t1 breaker open", hs)
		}
	})

	t.Run("degraded-epoch-skew", func(t *testing.T) {
		s, _ := adminSystem(t)
		h := s.Handler()
		// A coordinator stamp on any route teaches the node it is behind:
		// cluster generation 5 against an installed epoch of 1.
		req := httptest.NewRequest(http.MethodGet, "/v1/cluster/status", nil)
		req.Header.Set(ClusterEpochHeader, "5")
		h.ServeHTTP(httptest.NewRecorder(), req)

		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/healthz", nil))
		if w.Code != http.StatusOK {
			t.Fatalf("skewed healthz status = %d, want 200", w.Code)
		}
		var hs HealthStatus
		if err := json.Unmarshal(w.Body.Bytes(), &hs); err != nil {
			t.Fatal(err)
		}
		if hs.Status != "degraded" || hs.Epoch != 1 || hs.ClusterEpoch != 5 || hs.EpochSkew != 4 {
			t.Fatalf("healthz = %+v, want degraded epoch 1 cluster 5 skew 4", hs)
		}
		// Decisions served while past the bound carry the epoch-skew flag.
		pw, plan := postPlan(t, h, PlanRequest{Template: "q2", SVector: []float64{0.4, 30}})
		if pw.Code != http.StatusOK {
			t.Fatalf("plan under skew status = %d: %s", pw.Code, pw.Body)
		}
		if !plan.Degraded || plan.DegradedReason != string(pqo.DegradedEpochSkew) {
			t.Fatalf("plan under skew = %+v, want flagged %s", plan, pqo.DegradedEpochSkew)
		}
	})

	t.Run("unhealthy-draining", func(t *testing.T) {
		s, _ := newResilientServer(t, Config{})
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Fatal(err)
		}
		w := httptest.NewRecorder()
		s.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/healthz", nil))
		if w.Code != http.StatusServiceUnavailable {
			t.Fatalf("draining healthz status = %d, want 503", w.Code)
		}
	})
}

// TestRetryAfterJitterBounds pins the jittered Retry-After hint to its
// documented envelope [base, 2·base] (with a 1s floor), so shed clients
// spread out instead of stampeding back in lockstep after a quorum-wide
// withhold.
func TestRetryAfterJitterBounds(t *testing.T) {
	cases := []struct {
		base   time.Duration
		lo, hi int
	}{
		{0, 1, 2},
		{500 * time.Millisecond, 1, 2},
		{2 * time.Second, 2, 4},
		{5 * time.Second, 5, 10},
	}
	for _, tc := range cases {
		seen := make(map[int]bool)
		for i := 0; i < 400; i++ {
			got := retryAfterSeconds(tc.base)
			if got < tc.lo || got > tc.hi {
				t.Fatalf("retryAfterSeconds(%v) = %d, want in [%d, %d]", tc.base, got, tc.lo, tc.hi)
			}
			seen[got] = true
		}
		if len(seen) < 2 {
			t.Errorf("retryAfterSeconds(%v) never jittered: only %v over 400 draws", tc.base, seen)
		}
	}
}

// TestShutdownUnderLoad drives real TCP connections: requests parked
// inside the optimizer while Shutdown is called must drain to 200s, the
// snapshot must be persisted afterwards, and new connections must be
// refused — no dropped persists, no panics.
func TestShutdownUnderLoad(t *testing.T) {
	dir := t.TempDir()
	s, eng := newResilientServer(t, Config{SnapshotDir: dir})
	gate := eng.setGate()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(ln) }()
	url := "http://" + ln.Addr().String()

	const load = 4
	codes := make(chan int, load)
	for i := 0; i < load; i++ {
		sv := []float64{0.1 + float64(i)*0.2, 0.8 - float64(i)*0.15}
		go func() {
			body, _ := json.Marshal(PlanRequest{Template: "t1", SVector: sv})
			resp, err := http.Post(url+"/v1/plan", "application/json", bytes.NewReader(body))
			if err != nil {
				codes <- -1
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			codes <- resp.StatusCode
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for eng.inOptimize.Load() < load {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d requests reached the optimizer", eng.inOptimize.Load(), load)
		}
		time.Sleep(time.Millisecond)
	}

	shutdownDone := make(chan error, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	go func() { shutdownDone <- s.Shutdown(ctx) }()

	// The listener closes promptly even while requests drain.
	dialDeadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := http.Get(url + "/v1/healthz"); err != nil {
			break
		}
		if time.Now().After(dialDeadline) {
			t.Fatal("server still accepting new connections during drain")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Release the parked requests: every one must complete successfully.
	close(gate)
	for i := 0; i < load; i++ {
		if code := <-codes; code != http.StatusOK {
			t.Errorf("in-flight request %d finished with %d, want 200", i, code)
		}
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
		t.Errorf("Serve returned %v, want http.ErrServerClosed", err)
	}
	// The drained caches were persisted (no dropped persists).
	if _, err := os.Stat(dir + "/t1.json"); err != nil {
		t.Errorf("snapshot after drain: %v", err)
	}
}
