package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/pqo"
)

// This file is the versioned statistics-administration surface
// (docs/STATS.md): POST /v1/admin/stats installs a new statistics
// generation — from per-column histogram deltas or a full resample —
// advances the epoch, and kicks off background revalidation of every
// registered plan cache; GET /v1/admin/epochs lists every generation this
// process has served with its revalidation progress. Serving never
// pauses: the recost cache is epoch-keyed (old entries age out instead of
// being flushed) and plan-cache anchors revalidate lazily while the read
// path keeps answering from the generation each entry was derived under.

// adminState holds the optional system handle and the epoch log.
type adminState struct {
	mu  sync.Mutex
	sys *pqo.System
	log []*epochRecord
	// installMu serializes whole generation installs (admin- and
	// cluster-initiated): the read-current-epoch / build-store / advance
	// sequence must be atomic so concurrent installs cannot interleave
	// and the cluster handler's monotonicity check stays sound. It is
	// never held while mu is taken for log access the other way around,
	// and no RPC or engine call runs under mu.
	installMu sync.Mutex
}

// epochRecord is one entry of the epoch log.
type epochRecord struct {
	id      uint64
	reason  string   // "initial", "delta", "resample", "cluster-delta" or "cluster-resample"
	columns []string // refreshed columns, delta advances only
	at      time.Time
	// revals holds the per-template revalidation runs this advance
	// started; their counters freeze once the run finishes or a later
	// advance supersedes it.
	revals map[string]*pqo.Revalidation
}

// SetSystem attaches the database system whose statistics the admin
// endpoints manage. Every TemplateEngine registered on this server must
// share sys's optimizer (the normal System.EngineFor arrangement), so one
// epoch advance is observed by all templates at once. Without a system
// the admin endpoints respond 409.
func (s *Server) SetSystem(sys *pqo.System) {
	s.admin.mu.Lock()
	defer s.admin.mu.Unlock()
	s.admin.sys = sys
	s.admin.log = append(s.admin.log, &epochRecord{
		id: sys.Opt.Epoch().ID, reason: "initial", at: time.Now(),
	})
}

// appendEpochRecord appends one entry to the epoch log.
func (s *Server) appendEpochRecord(rec *epochRecord) {
	s.admin.mu.Lock()
	defer s.admin.mu.Unlock()
	s.admin.log = append(s.admin.log, rec)
}

// system returns the attached system, or nil.
func (s *Server) system() *pqo.System {
	s.admin.mu.Lock()
	defer s.admin.mu.Unlock()
	return s.admin.sys
}

// AdminStatsRequest is the body of POST /v1/admin/stats. Exactly one of
// Deltas (a partial refresh: each delta replaces one column's histogram
// from a fresh value sample) or ResampleSeed (a full statistics swap,
// rebuilt from synthetic data with the given seed) must be set. Workers
// sizes the per-template revalidation pool; <= 0 selects the default.
type AdminStatsRequest struct {
	Deltas       []pqo.HistogramDelta `json:"deltas,omitempty"`
	ResampleSeed *int64               `json:"resampleSeed,omitempty"`
	Workers      int                  `json:"workers,omitempty"`
}

// AdminStatsResponse is the body of a successful POST /v1/admin/stats.
type AdminStatsResponse struct {
	// Epoch is the id of the newly installed statistics generation.
	Epoch uint64 `json:"epoch"`
	// Revalidation maps template name to its background run's progress at
	// response time; poll /v1/admin/epochs for completion.
	Revalidation map[string]pqo.RevalidationProgress `json:"revalidation"`
}

func (s *Server) handleAdminStats(w http.ResponseWriter, r *http.Request) {
	var req AdminStatsRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "ErrBadRequest", err)
		return
	}
	if (len(req.Deltas) == 0) == (req.ResampleSeed == nil) {
		writeError(w, http.StatusBadRequest, "ErrBadRequest",
			errors.New("exactly one of deltas or resampleSeed must be set"))
		return
	}
	sys := s.system()
	if sys == nil {
		writeError(w, http.StatusConflict, "ErrNoSystem",
			errors.New("statistics administration requires an attached system (Server.SetSystem)"))
		return
	}

	out, code, sentinel, err := func() (*advanceOutcome, int, string, error) {
		s.admin.installMu.Lock()
		defer s.admin.installMu.Unlock()
		return s.advanceGeneration(r.Context(), sys, "", req.Deltas, req.ResampleSeed, req.Workers)
	}()
	if err != nil {
		writeError(w, code, sentinel, err)
		return
	}

	resp := AdminStatsResponse{Epoch: out.epoch, Revalidation: make(map[string]pqo.RevalidationProgress, len(out.revals))}
	for name, run := range out.revals {
		resp.Revalidation[name] = run.Progress()
	}
	writeJSON(w, resp)
}

// advanceOutcome reports one completed generation install.
type advanceOutcome struct {
	epoch  uint64
	revals map[string]*pqo.Revalidation
}

// advanceGeneration installs one statistics generation — from per-column
// deltas or a full resample — advances the epoch, kicks off background
// revalidation of every registered plan cache, and appends the epoch
// record. It is the shared core of the admin (/v1/admin/stats) and
// cluster (/v1/cluster/epoch) install paths; reasonPrefix distinguishes
// them in the epoch log ("" or "cluster-"). On failure it returns the
// HTTP status and sentinel the caller should respond with.
//
// The caller must hold s.admin.installMu so concurrent installs cannot
// interleave between reading the current store and advancing the epoch.
func (s *Server) advanceGeneration(ctx context.Context, sys *pqo.System, reasonPrefix string, deltas []pqo.HistogramDelta, resampleSeed *int64, workers int) (*advanceOutcome, int, string, error) {
	var (
		next    *pqo.StatsStore
		reason  string
		columns []string
		err     error
	)
	if len(deltas) > 0 {
		reason = reasonPrefix + "delta"
		next, err = sys.Stats.Apply(deltas)
		if err != nil {
			return nil, http.StatusBadRequest, "ErrBadRequest", err
		}
		for _, d := range deltas {
			columns = append(columns, d.Table+"."+d.Column)
		}
		sort.Strings(columns)
	} else {
		reason = reasonPrefix + "resample"
		next, err = sys.ResampleStats(*resampleSeed)
		if err != nil {
			return nil, http.StatusInternalServerError, "", err
		}
	}

	ep := sys.AdvanceEpoch(next)
	s.logf("statistics epoch %d installed (%s)", ep.ID, reason)

	// Revalidation outlives the install request: detach from its deadline
	// and cancellation while keeping its values (trace metadata etc.).
	// The directory fans every template's lag into one shared worker pool,
	// interleaved usage-weighted across domains (hottest lag revalidates
	// first) and cheapest-first within each; templates over engines with
	// no epoch lifecycle are skipped inside.
	detached := context.WithoutCancel(ctx)
	revals, err := s.dir.Revalidate(detached, workers)
	if err != nil {
		return nil, http.StatusInternalServerError, "", err
	}
	s.logf("revalidation started for %d of %d templates", len(revals), s.dir.Len())

	s.appendEpochRecord(&epochRecord{
		id: ep.ID, reason: reason, columns: columns, at: time.Now(), revals: revals,
	})
	return &advanceOutcome{epoch: ep.ID, revals: revals}, 0, "", nil
}

// EpochInfo is one row of GET /v1/admin/epochs.
type EpochInfo struct {
	Epoch   uint64   `json:"epoch"`
	Reason  string   `json:"reason"`
	Columns []string `json:"columns,omitempty"`
	// AdvancedAt is when this process installed the generation (the
	// initial record carries the attach time).
	AdvancedAt time.Time `json:"advancedAt"`
	// Current marks the generation currently serving.
	Current bool `json:"current"`
	// Revalidation is the per-template revalidation progress for the
	// advance that installed this epoch (absent for the initial record).
	Revalidation map[string]pqo.RevalidationProgress `json:"revalidation,omitempty"`
}

func (s *Server) handleAdminEpochs(w http.ResponseWriter, _ *http.Request) {
	sys := s.system()
	if sys == nil {
		writeError(w, http.StatusConflict, "ErrNoSystem",
			errors.New("statistics administration requires an attached system (Server.SetSystem)"))
		return
	}
	cur := sys.Opt.Epoch().ID
	s.admin.mu.Lock()
	records := make([]*epochRecord, len(s.admin.log))
	copy(records, s.admin.log)
	s.admin.mu.Unlock()

	out := make([]EpochInfo, 0, len(records))
	for _, rec := range records {
		info := EpochInfo{
			Epoch: rec.id, Reason: rec.reason, Columns: rec.columns,
			AdvancedAt: rec.at, Current: rec.id == cur,
		}
		if len(rec.revals) > 0 {
			info.Revalidation = make(map[string]pqo.RevalidationProgress, len(rec.revals))
			for name, run := range rec.revals {
				info.Revalidation[name] = run.Progress()
			}
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Epoch < out[j].Epoch })
	writeJSON(w, out)
}

// lastAdvance returns the time of the most recent epoch advance (zero
// when none happened) for the epoch-lag gauge.
func (s *Server) lastAdvance() time.Time {
	s.admin.mu.Lock()
	defer s.admin.mu.Unlock()
	if len(s.admin.log) == 0 {
		return time.Time{}
	}
	return s.admin.log[len(s.admin.log)-1].at
}

// epochLagSeconds is the pqo_epoch_lag_seconds gauge: how long the oldest
// still-lagging plan-cache anchor has been behind the current epoch,
// approximated as time since the last advance while any template reports
// lagging instances — 0 once revalidation has drained.
func (s *Server) epochLagSeconds() float64 {
	last := s.lastAdvance()
	if last.IsZero() {
		return 0
	}
	for _, e := range s.snapshotEntries() {
		if e.scr.Stats().LaggingInstances > 0 {
			return time.Since(last).Seconds()
		}
	}
	return 0
}
