package server

import (
	"context"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/pqotest"
	"repro/pqo"
)

const epochChaosLambda = 1.5

// TestChaosEpochAdvance replays concurrent /v1/plan traffic across live
// statistics-epoch advances with latency injected into the recost path,
// and holds every single response to the epoch guarantee: a non-degraded
// answer must be λ-optimal against a clean twin engine evaluated at the
// epoch the decision was served from (PlanResponse.Epoch), a degraded
// answer must say why, and nothing may error. Run with -race
// (scripts/check.sh does).
func TestChaosEpochAdvance(t *testing.T) {
	n, workers, advances := 400, 4, 2
	if *chaosFull {
		n, workers, advances = 4000, 8, 4
	}

	base, err := pqotest.RandomEngine(rand.New(rand.NewSource(17)), 2, 6)
	if err != nil {
		t.Fatal(err)
	}
	twinBase, err := pqotest.RandomEngine(rand.New(rand.NewSource(17)), 2, 6)
	if err != nil {
		t.Fatal(err)
	}
	ee := pqotest.NewEpochEngine(base)
	// The twin shares specs and fingerprints; CostAt/OptimalCostAt take
	// the epoch explicitly, so it needs no Advance calls of its own.
	twin := pqotest.NewEpochEngine(twinBase)

	inj := faultinject.New(23).Set(faultinject.SiteRecost,
		faultinject.Point{Rate: 0.3, Fault: faultinject.Fault{Latency: 2 * time.Millisecond}})
	faulty := faultinject.Wrap(ee, inj)
	scr, err := pqo.New(faulty, pqo.WithLambda(epochChaosLambda))
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{})
	if err := s.Register("epoch", "SELECT epoch chaos", faulty, scr); err != nil {
		t.Fatal(err)
	}
	h := s.Handler()

	// Warm a recurring pool while quiet so the stream mixes hits with
	// misses like a real template workload.
	rng := rand.New(rand.NewSource(29))
	pool := make([][]float64, 30)
	inj.Disable()
	for i := range pool {
		pool[i] = pqotest.RandomSVector(rng, 2)
		if w, _ := postPlan(t, h, PlanRequest{Template: "epoch", SVector: pool[i]}); w.Code != http.StatusOK {
			t.Fatalf("warmup %d: status %d body %s", i, w.Code, w.Body)
		}
	}
	inj.Enable()

	svs := make([][]float64, n)
	for i := range svs {
		if rng.Intn(4) == 0 {
			svs[i] = pqotest.RandomSVector(rng, 2)
		} else {
			svs[i] = pool[rng.Intn(len(pool))]
		}
	}

	var (
		mu         sync.Mutex
		okByEpoch  = map[uint64]int{}
		degraded   int
		lagFlagged int
		wg         sync.WaitGroup
		work       = make(chan []float64)
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for sv := range work {
				w, resp := postPlan(t, h, PlanRequest{Template: "epoch", SVector: sv})
				if w.Code != http.StatusOK {
					t.Errorf("unexplained error at %v: status %d body %s", sv, w.Code, w.Body)
					continue
				}
				if resp.Degraded {
					if resp.DegradedReason == "" {
						t.Errorf("degraded response without a reason: %+v", resp)
					}
					mu.Lock()
					degraded++
					if resp.DegradedReason == string(pqo.DegradedStatsEpochLag) {
						lagFlagged++
					}
					mu.Unlock()
					continue
				}
				// The guarantee is stated against the epoch the decision
				// was served from — check it there, on the clean twin.
				if resp.Epoch == 0 {
					t.Errorf("epoch-aware response without an epoch: %+v", resp)
					continue
				}
				cost, known := twin.CostAt(resp.Fingerprint, sv, resp.Epoch)
				if !known {
					t.Errorf("served unknown plan %q", resp.Fingerprint)
					continue
				}
				if opt := twin.OptimalCostAt(sv, resp.Epoch); cost > epochChaosLambda*opt*(1+1e-9) {
					t.Errorf("λ violated at %v under epoch %d: served %g > %g·%g",
						sv, resp.Epoch, cost, epochChaosLambda, opt)
				}
				mu.Lock()
				okByEpoch[resp.Epoch]++
				mu.Unlock()
			}
		}()
	}

	// Feed the stream, advancing the statistics epoch mid-flight and
	// kicking off background revalidation each time — exactly what
	// POST /v1/admin/stats does, minus the System plumbing the synthetic
	// engine does not have.
	chunk := n / (advances + 1)
	for i, sv := range svs {
		if i > 0 && i%chunk == 0 && i/chunk <= advances {
			ee.Advance()
			if _, err := scr.Revalidate(context.Background(), 2); err != nil {
				t.Errorf("revalidate after advance: %v", err)
			}
		}
		work <- sv
	}
	close(work)
	wg.Wait()

	// Let the last run drain, then confirm the cache caught up: a fresh
	// request must carry the final epoch.
	if run := scr.CurrentRevalidation(); run != nil {
		if err := run.Wait(context.Background()); err != nil {
			t.Fatalf("final revalidation: %v", err)
		}
	}
	final := ee.StatsEpoch()
	if w, resp := postPlan(t, h, PlanRequest{Template: "epoch", SVector: pool[0]}); w.Code != http.StatusOK {
		t.Fatalf("post-chaos request: status %d", w.Code)
	} else if resp.Epoch != final {
		t.Errorf("post-revalidation decision epoch = %d, want %d", resp.Epoch, final)
	}

	ok := 0
	for _, c := range okByEpoch {
		ok += c
	}
	if ok+degraded == 0 {
		t.Fatal("stream produced no classified responses")
	}
	if len(okByEpoch) < 2 {
		t.Errorf("guaranteed responses span %d epoch(s), want >= 2 (advance never overlapped traffic): %v",
			len(okByEpoch), okByEpoch)
	}
	if inj.Injected() == 0 {
		t.Error("no recost latency injected — the stream proved nothing")
	}
	st := scr.Stats()
	if st.StatsEpoch != final {
		t.Errorf("Stats().StatsEpoch = %d, want %d", st.StatsEpoch, final)
	}

	// The write-domain publication surface must have moved under this
	// churn: the warmup and miss traffic published snapshots, and each
	// revalidation's multi-mutation critical sections coalesced marks.
	if st.WriteDomains != 1 {
		t.Errorf("Stats().WriteDomains = %d, want 1", st.WriteDomains)
	}
	if st.PublishTotal == 0 {
		t.Error("Stats().PublishTotal did not move across the chaos stream")
	}
	if st.PublishCoalesced == 0 {
		t.Error("Stats().PublishCoalesced did not move — revalidation batches never coalesced")
	}
	wm := httptest.NewRecorder()
	h.ServeHTTP(wm, httptest.NewRequest(http.MethodGet, "/v1/metrics", nil))
	mBody := wm.Body.String()
	if got := promValue(t, mBody, "pqo_write_domains"); got != 1 {
		t.Errorf("pqo_write_domains = %d, want 1", got)
	}
	if got := promValue(t, mBody, `pqo_publish_total{template="epoch"}`); got == 0 {
		t.Error("pqo_publish_total did not move")
	}
	if got := promValue(t, mBody, `pqo_publish_coalesced_total{template="epoch"}`); got == 0 {
		t.Error("pqo_publish_coalesced_total did not move")
	}
	t.Logf("epoch chaos: %d ok across epochs %v, %d degraded (%d epoch-lag flagged), %d faults injected, final epoch %d",
		ok, okByEpoch, degraded, lagFlagged, inj.Injected(), final)
}
