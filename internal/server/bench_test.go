package server

import (
	"bytes"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"repro/internal/pqotest"
	"repro/pqo"
)

var benchSeed atomic.Int64

// BenchmarkServerParallel drives the full HTTP stack with b.RunParallel
// over mixed traffic: ~90% repeats of a warm instance set (cache hits
// under SCR's read lock) and ~10% fresh instances (misses that optimize
// and take the write lock).
func BenchmarkServerParallel(b *testing.B) {
	eng, err := pqotest.RandomEngine(rand.New(rand.NewSource(11)), 4, 8)
	if err != nil {
		b.Fatal(err)
	}
	scr, err := pqo.New(eng, pqo.WithLambda(2))
	if err != nil {
		b.Fatal(err)
	}
	s := New(Config{})
	if err := s.Register("bench", "SELECT synthetic", eng, scr); err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()
	client.Transport.(*http.Transport).MaxIdleConnsPerHost = 256

	warmRNG := rand.New(rand.NewSource(3))
	warm := make([][][]byte, 16)
	for i := range warm {
		sv := pqotest.RandomSVector(warmRNG, 4)
		body, _ := json.Marshal(PlanRequest{Template: "bench", SVector: sv})
		warm[i] = [][]byte{body}
		resp, err := client.Post(ts.URL+"/v1/plan", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(benchSeed.Add(1)))
		for pb.Next() {
			var body []byte
			if rng.Float64() < 0.9 {
				body = warm[rng.Intn(len(warm))][0]
			} else {
				body, _ = json.Marshal(PlanRequest{Template: "bench", SVector: pqotest.RandomSVector(rng, 4)})
			}
			resp, err := client.Post(ts.URL+"/v1/plan", "application/json", bytes.NewReader(body))
			if err != nil {
				b.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Fatalf("status %d", resp.StatusCode)
			}
		}
	})
}
