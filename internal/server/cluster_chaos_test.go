// Package server_test holds the multi-node cluster chaos suite. It lives
// in the external test package because it drives the epoch coordinator
// (repro/internal/cluster), which imports this server package for its wire
// types — an internal test file would create an import cycle.
package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/faultinject"
	"repro/internal/server"
	"repro/pqo"
)

const clusterChaosLambda = 2.0

// chaosFullSet reports whether the -chaos.full flag (registered by the
// internal server test package, shared through the one test binary) is on.
func chaosFullSet() bool {
	f := flag.Lookup("chaos.full")
	return f != nil && f.Value.String() == "true"
}

// chaosNode is one member of the in-process fleet: a real TPCH system and
// SCR behind the full HTTP surface, plus the live listener the coordinator
// pushes through.
type chaosNode struct {
	h  http.Handler
	ts *httptest.Server
}

func newChaosNode(t *testing.T) *chaosNode {
	t.Helper()
	sys, err := pqo.NewSystem(pqo.TPCH(0.01), 3)
	if err != nil {
		t.Fatal(err)
	}
	tpl, err := pqo.ParseTemplate("cq",
		`SELECT * FROM lineitem WHERE lineitem.l_shipdate <= ?0 AND lineitem.l_quantity <= ?1`, sys.Cat)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := sys.EngineFor(tpl)
	if err != nil {
		t.Fatal(err)
	}
	scr, err := pqo.New(eng, pqo.WithLambda(clusterChaosLambda))
	if err != nil {
		t.Fatal(err)
	}
	s := server.New(server.Config{})
	if err := s.Register("cq", tpl.SQL(), eng, scr); err != nil {
		t.Fatal(err)
	}
	s.SetSystem(sys)
	h := s.Handler()
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	return &chaosNode{h: h, ts: ts}
}

// hostRouter routes each coordinator RPC through a per-member transport,
// so one member can be partitioned or lossy while the others stay clean.
type hostRouter struct {
	mu sync.Mutex
	m  map[string]http.RoundTripper
}

func (hr *hostRouter) set(host string, rt http.RoundTripper) {
	hr.mu.Lock()
	defer hr.mu.Unlock()
	hr.m[host] = rt
}

func (hr *hostRouter) RoundTrip(req *http.Request) (*http.Response, error) {
	hr.mu.Lock()
	rt := hr.m[req.URL.Host]
	hr.mu.Unlock()
	if rt == nil {
		rt = http.DefaultTransport
	}
	return rt.RoundTrip(req)
}

// planRec is one recorded /plan response. s0/s1 bracket the request on a
// global sequence, so two records overlap in time iff their intervals
// intersect — the basis of the cross-node skew assertion.
type planRec struct {
	member   int
	svIdx    int
	fp       string
	epoch    uint64
	nodeEp   uint64
	degraded bool
	reason   string
	s0, s1   int64
}

// TestChaosCluster drives three member nodes and an epoch coordinator
// through five generation advances under transport chaos — drops, delays,
// duplicated deliveries, lost responses, and a full partition of one
// member — and asserts the paper-level contract end to end:
//
//  1. overlapping responses from healthy members never come from
//     statistics generations more than one apart (the skew bound),
//  2. every unflagged response is λ-optimal against a clean twin system
//     evaluated at the generation the decision states,
//  3. the partitioned member is quarantined, rejoins via an in-order
//     catch-up replay, and the fleet converges.
//
// Run with -race (scripts/check.sh does; -chaos selects the full profile).
func TestChaosCluster(t *testing.T) {
	perMember, poolSize := 50, 20
	if chaosFullSet() {
		perMember, poolSize = 350, 36
	}

	nodes := make([]*chaosNode, 3)
	urls := make([]string, 3)
	hosts := make([]string, 3)
	for i := range nodes {
		nodes[i] = newChaosNode(t)
		urls[i] = nodes[i].ts.URL
		hosts[i] = nodes[i].ts.Listener.Addr().String()
	}

	router := &hostRouter{m: make(map[string]http.RoundTripper)}
	coord, err := cluster.New(cluster.Config{
		Members:             urls,
		Client:              &http.Client{Transport: router},
		RPCTimeout:          10 * time.Second,
		RetryLimit:          10,
		BackoffBase:         time.Millisecond,
		BackoffMax:          10 * time.Millisecond,
		QuarantineThreshold: 2,
		Seed:                5,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// A recurring selectivity pool shared by all members: plans derive
	// from optimizations over these points, which is what lets the twin
	// reconstruct every served fingerprint later.
	rng := rand.New(rand.NewSource(11))
	pool := make([][]float64, poolSize)
	for i := range pool {
		pool[i] = []float64{rng.Float64()*0.9 + 0.05, rng.Float64()*0.9 + 0.05}
	}
	for m, n := range nodes {
		for i, sv := range pool {
			if resp, code := chaosPlan(t, n.h, sv); code != http.StatusOK || resp == nil {
				t.Fatalf("member %d warmup %d: status %d", m, i, code)
			}
		}
	}

	var (
		seq  atomic.Int64
		mu   sync.Mutex
		recs [][]planRec = make([][]planRec, 3) // per round
	)
	// drive runs per-member traffic workers while during() executes, and
	// records every response under the given round.
	drive := func(round int, during func()) {
		var wg sync.WaitGroup
		for m := range nodes {
			wg.Add(1)
			go func(m int) {
				defer wg.Done()
				wrng := rand.New(rand.NewSource(int64(100*round + m)))
				for i := 0; i < perMember; i++ {
					svIdx := wrng.Intn(len(pool))
					s0 := seq.Add(1)
					resp, code := chaosPlan(t, nodes[m].h, pool[svIdx])
					s1 := seq.Add(1)
					if code != http.StatusOK || resp == nil {
						t.Errorf("round %d member %d: status %d", round, m, code)
						continue
					}
					if resp.Degraded && resp.DegradedReason == "" {
						t.Errorf("round %d member %d: degraded response without a reason", round, m)
					}
					mu.Lock()
					recs[round] = append(recs[round], planRec{
						member: m, svIdx: svIdx, fp: resp.Fingerprint,
						epoch: resp.Epoch, nodeEp: resp.NodeEpoch,
						degraded: resp.Degraded, reason: resp.DegradedReason,
						s0: s0, s1: s1,
					})
					mu.Unlock()
				}
			}(m)
		}
		during()
		wg.Wait()
	}

	var payloads []cluster.Payload
	advance := func(p cluster.Payload) {
		t.Helper()
		for attempt := 0; attempt < 60; attempt++ {
			if _, err := coord.Advance(ctx, p); err == nil {
				payloads = append(payloads, p)
				return
			} else if !errors.Is(err, cluster.ErrWithheld) {
				t.Fatalf("advance: %v", err)
			}
			coord.Probe(ctx)
		}
		t.Fatal("advance never cleared the withhold")
	}
	seedOf := func(s int64) cluster.Payload { return cluster.Payload{ResampleSeed: &s} }

	// Round 0 — lossy fleet: member 0 drops requests, member 1 delays and
	// loses responses (forcing duplicate deliveries into the idempotent
	// install endpoint), member 2 duplicates deliveries outright. Two
	// generations advance through this.
	injDrop := faultinject.New(41).Set(faultinject.SiteTransport,
		faultinject.Point{Rate: 0.3, Fault: faultinject.Fault{Drop: true}})
	injLose := faultinject.New(42).Set(faultinject.SiteTransport,
		faultinject.Point{Rate: 0.3, Fault: faultinject.Fault{Latency: 2 * time.Millisecond, DropResponse: true}})
	injDup := faultinject.New(43).Set(faultinject.SiteTransport,
		faultinject.Point{Rate: 0.3, Fault: faultinject.Fault{Latency: time.Millisecond, Duplicate: true}})
	router.set(hosts[0], faultinject.NewTransport(http.DefaultTransport, injDrop))
	router.set(hosts[1], faultinject.NewTransport(http.DefaultTransport, injLose))
	router.set(hosts[2], faultinject.NewTransport(http.DefaultTransport, injDup))

	drive(0, func() {
		coord.Probe(ctx)
		advance(seedOf(201))
		coord.Probe(ctx)
		advance(cluster.Payload{Deltas: []pqo.HistogramDelta{{
			Table: "lineitem", Column: "l_quantity", Values: quantitySample(),
		}}})
		coord.Probe(ctx)
	})
	if got := coord.Epoch(); got != 3 {
		t.Fatalf("epoch after lossy round = %d, want 3", got)
	}
	if q := coord.Quarantined(); len(q) != 0 {
		t.Fatalf("lossy faults caused quarantine: %v", q)
	}
	if injDrop.Injected()+injLose.Injected()+injDup.Injected() == 0 {
		t.Error("lossy round injected no transport faults — it proved nothing")
	}
	checkSkew(t, recs[0], map[int]bool{0: true, 1: true, 2: true})

	// Round 1 — partition: member 2 becomes unreachable to the
	// coordinator (clients still reach it). Two advances: the first
	// records its failure, the second quarantines it and proceeds, so the
	// healthy majority keeps absorbing statistics updates.
	injPart := faultinject.PartitionProfile(44)
	router.set(hosts[2], faultinject.NewTransport(http.DefaultTransport, injPart))
	drive(1, func() {
		advance(seedOf(203))
		advance(seedOf(204))
	})
	if got := coord.Epoch(); got != 5 {
		t.Fatalf("epoch after partition round = %d, want 5", got)
	}
	if q := coord.Quarantined(); len(q) != 1 || q[0] != urls[2] {
		t.Fatalf("quarantined after partition = %v, want [%s]", q, urls[2])
	}
	checkSkew(t, recs[1], map[int]bool{0: true, 1: true})

	// Round 2 — rejoin: heal the partition; a probe replays generations
	// 4..5 into member 2 in order, then one more generation advances with
	// the whole fleet healthy again.
	router.set(hosts[2], http.DefaultTransport)
	coord.Probe(ctx)
	if q := coord.Quarantined(); len(q) != 0 {
		t.Fatalf("member 2 still quarantined after heal+probe: %v", q)
	}
	drive(2, func() {
		advance(seedOf(205))
	})
	if got := coord.Epoch(); got != 6 {
		t.Fatalf("final epoch = %d, want 6", got)
	}
	checkSkew(t, recs[2], map[int]bool{0: true, 1: true, 2: true})

	// Convergence: every member reports the final generation with zero
	// skew from its own status endpoint.
	for m, n := range nodes {
		w := httptest.NewRecorder()
		n.h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/cluster/status", nil))
		var st server.ClusterStatusResponse
		if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
			t.Fatalf("member %d status: %v", m, err)
		}
		if st.Epoch != 6 || st.Skew != 0 {
			t.Errorf("member %d converged to %+v, want epoch 6 skew 0", m, st)
		}
	}

	// Every member's write-domain publication surface must have moved:
	// one attached domain per node, snapshot publications from the warmup
	// and miss traffic, and coalesced marks from each revalidation's
	// multi-mutation critical sections across the five advances.
	for m, n := range nodes {
		w := httptest.NewRecorder()
		n.h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/metrics", nil))
		mBody := w.Body.String()
		if v := chaosMetric(t, mBody, "pqo_write_domains"); v != 1 {
			t.Errorf("member %d pqo_write_domains = %g, want 1", m, v)
		}
		if v := chaosMetric(t, mBody, `pqo_publish_total{template="cq"}`); v <= 0 {
			t.Errorf("member %d pqo_publish_total did not move (%g)", m, v)
		}
		// Coalescing is workload-dependent here: TPC-H revalidation mostly
		// re-anchors in place (no mutation batch), so only presence and
		// non-negativity are asserted — the epoch chaos test pins movement.
		if v := chaosMetric(t, mBody, `pqo_publish_coalesced_total{template="cq"}`); v < 0 {
			t.Errorf("member %d pqo_publish_coalesced_total negative (%g)", m, v)
		}
		if v := chaosMetric(t, mBody, `pqo_writer_wait_seconds_total{template="cq"}`); v < 0 {
			t.Errorf("member %d pqo_writer_wait_seconds_total negative (%g)", m, v)
		}
	}

	// The λ oracle: a clean twin system replays the exact payload
	// sequence; every unflagged response must be λ-optimal at the
	// generation it states. Plans are reconstructed by optimizing the
	// shared pool at every generation — the only way plans enter a
	// member's cache.
	verifyLambda(t, payloads, pool, recs)

	// The coordinator's metric surface names the fleet counters.
	var buf bytes.Buffer
	coord.WriteMetrics(&buf)
	for _, name := range []string{
		"pqo_cluster_epoch_skew", "pqo_cluster_push_retries_total",
		"pqo_cluster_quarantined_nodes", "pqo_cluster_ack_latency_seconds",
	} {
		if !bytes.Contains(buf.Bytes(), []byte(name)) {
			t.Errorf("coordinator metrics missing %s", name)
		}
	}

	// Cumulatively, every chaos mode must have actually fired: drops and
	// lost responses (installed for the whole run) and the partition.
	for name, inj := range map[string]*faultinject.Injector{
		"drop": injDrop, "lost-response": injLose, "partition": injPart,
	} {
		if inj.Injected() == 0 {
			t.Errorf("no %s faults injected over the whole run", name)
		}
	}

	total, degraded := 0, 0
	for _, rs := range recs {
		for _, r := range rs {
			total++
			if r.degraded {
				degraded++
			}
		}
	}
	t.Logf("cluster chaos: %d responses (%d degraded) across 5 advances; %d/%d/%d faults injected per member",
		total, degraded, injDrop.Injected(), injLose.Injected(), injPart.Injected())
}

// chaosPlan posts one /v1/plan request straight into a member's handler
// (client traffic does not traverse the faulty coordinator transport).
func chaosPlan(t *testing.T, h http.Handler, sv []float64) (*server.PlanResponse, int) {
	t.Helper()
	body, _ := json.Marshal(server.PlanRequest{Template: "cq", SVector: sv})
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/v1/plan", bytes.NewReader(body)))
	if w.Code != http.StatusOK {
		return nil, w.Code
	}
	var resp server.PlanResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decoding plan response: %v", err)
	}
	return &resp, w.Code
}

// checkSkew asserts the cross-node bound: any two time-overlapping,
// unflagged responses from members in the healthy set must come from
// node generations at most one apart.
func checkSkew(t *testing.T, rs []planRec, healthy map[int]bool) {
	t.Helper()
	for i := range rs {
		a := rs[i]
		if a.degraded || !healthy[a.member] {
			continue
		}
		for j := i + 1; j < len(rs); j++ {
			b := rs[j]
			if b.degraded || !healthy[b.member] || a.member == b.member {
				continue
			}
			if a.s0 < b.s1 && b.s0 < a.s1 {
				d := a.nodeEp - b.nodeEp
				if b.nodeEp > a.nodeEp {
					d = b.nodeEp - a.nodeEp
				}
				if d > 1 {
					t.Errorf("skew bound violated: members %d@%d and %d@%d served concurrently (%d apart)",
						a.member, a.nodeEp, b.member, b.nodeEp, d)
				}
			}
		}
	}
}

// verifyLambda replays the pushed payload sequence on a pristine twin
// system and holds every unflagged recorded response to the λ guarantee at
// its stated generation.
func verifyLambda(t *testing.T, payloads []cluster.Payload, pool [][]float64, recs [][]planRec) {
	t.Helper()
	twin, err := pqo.NewSystem(pqo.TPCH(0.01), 3)
	if err != nil {
		t.Fatal(err)
	}
	tpl, err := pqo.ParseTemplate("cq",
		`SELECT * FROM lineitem WHERE lineitem.l_shipdate <= ?0 AND lineitem.l_quantity <= ?1`, twin.Cat)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := twin.EngineFor(tpl)
	if err != nil {
		t.Fatal(err)
	}

	byEpoch := make(map[uint64][]planRec)
	for _, rs := range recs {
		for _, r := range rs {
			if r.degraded {
				continue
			}
			if r.epoch == 0 {
				t.Errorf("unflagged response without a stated epoch: %+v", r)
				continue
			}
			byEpoch[r.epoch] = append(byEpoch[r.epoch], r)
		}
	}

	planByFP := make(map[string]*pqo.CachedPlan)
	checked := 0
	evalGen := func(gen uint64) {
		// Derive this generation's plan space over the workload pool;
		// plans first derived at earlier generations stay in the map.
		for _, sv := range pool {
			cp, _, err := eng.Optimize(sv)
			if err != nil {
				t.Fatalf("twin optimize at generation %d: %v", gen, err)
			}
			planByFP[cp.Fingerprint()] = cp
		}
		for _, r := range byEpoch[gen] {
			cp, ok := planByFP[r.fp]
			if !ok {
				t.Errorf("served plan %q not derivable from the workload at generation <= %d", r.fp, gen)
				continue
			}
			cost, err := eng.Recost(cp, pool[r.svIdx])
			if err != nil {
				t.Fatalf("twin recost at generation %d: %v", gen, err)
			}
			_, opt, err := eng.Optimize(pool[r.svIdx])
			if err != nil {
				t.Fatalf("twin optimize at generation %d: %v", gen, err)
			}
			if cost > clusterChaosLambda*opt*(1+1e-9) {
				t.Errorf("λ violated: member %d at generation %d, sv %v: served %g > %g·%g",
					r.member, r.epoch, pool[r.svIdx], cost, clusterChaosLambda, opt)
			}
			checked++
		}
	}

	gen := uint64(1)
	evalGen(gen)
	for _, p := range payloads {
		var next *pqo.StatsStore
		var err error
		if p.ResampleSeed != nil {
			next, err = twin.ResampleStats(*p.ResampleSeed)
		} else {
			next, err = twin.Stats.Apply(p.Deltas)
		}
		if err != nil {
			t.Fatalf("twin replay of generation %d: %v", gen+1, err)
		}
		twin.AdvanceEpoch(next)
		gen++
		evalGen(gen)
	}
	if checked == 0 {
		t.Fatal("λ verification checked no responses")
	}
	t.Logf("λ verified %d responses across %d generations", checked, gen)
}

// quantitySample is the deterministic value sample behind the delta
// generation.
func quantitySample() []float64 {
	vals := make([]float64, 300)
	for i := range vals {
		vals[i] = float64(i%97)*0.37 + 1
	}
	return vals
}

// chaosMetric extracts one series' value from a Prometheus text scrape;
// a missing series is fatal (the exposition surface regressed).
func chaosMetric(t *testing.T, body, series string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, series+" ") {
			var v float64
			if _, err := fmt.Sscanf(line[len(series)+1:], "%g", &v); err != nil {
				t.Fatalf("parsing %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("metrics missing series %q", series)
	return 0
}
