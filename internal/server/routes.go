package server

import (
	"fmt"
	"net/http"
	"strings"
)

// APIVersion is the served API version prefix. Every endpoint lives under
// it; the unversioned paths that predate versioning respond with 308
// permanent redirects so existing clients keep working while new clients
// bind to a stable, evolvable surface.
const APIVersion = "/v1"

// route is one row of the server's route registry. The registry is the
// single source of truth for the HTTP surface: Handler builds the mux
// from it (including method enforcement and legacy redirects) and the
// OpenAPI document is generated from it, so the spec cannot drift from
// the routes actually served.
type route struct {
	// path is the versioned pattern, e.g. "/v1/plan".
	path string
	// legacy, when non-empty, is the pre-versioning path that now
	// permanently redirects (308) to path.
	legacy string
	// method is the single allowed method; GET routes also accept HEAD.
	method  string
	handler http.HandlerFunc
	// summary and description feed the generated OpenAPI document.
	summary     string
	description string
}

// routes returns the registry. Order is the order paths appear in the
// OpenAPI document.
func (s *Server) routes() []route {
	return []route{
		{
			path: APIVersion + "/plan", legacy: "/plan", method: http.MethodPost,
			handler: s.handlePlan,
			summary: "Decide a plan for one query instance",
			description: "Runs the SCR checks for the given template and selectivity vector, " +
				"returning the chosen plan, its provenance, the statistics epoch the decision's " +
				"λ guarantee is stated against, and the estimated cost.",
		},
		{
			path: APIVersion + "/templates", legacy: "/templates", method: http.MethodGet,
			handler:     s.handleTemplates,
			summary:     "List registered templates",
			description: "Registered query templates with SQL and dimensionality, sorted by name.",
		},
		{
			path: APIVersion + "/stats", legacy: "/stats", method: http.MethodGet,
			handler:     s.handleStats,
			summary:     "Per-template technique counters",
			description: "The paper's metrics plus concurrency, resilience and epoch counters, sorted by template name.",
		},
		{
			path: APIVersion + "/metrics", legacy: "/metrics", method: http.MethodGet,
			handler:     s.handleMetrics,
			summary:     "Prometheus metrics",
			description: "Counters, gauges and latency histograms in Prometheus text exposition format.",
		},
		{
			path: APIVersion + "/snapshot", legacy: "/snapshot", method: http.MethodPost,
			handler:     s.handleSnapshot,
			summary:     "Persist plan caches",
			description: "Exports every registered plan cache to the configured snapshot directory.",
		},
		{
			path: APIVersion + "/healthz", legacy: "/healthz", method: http.MethodGet,
			handler:     s.handleHealthz,
			summary:     "Liveness and readiness",
			description: "Three-state health: serving, degraded (shedding or open breakers), or unhealthy (draining).",
		},
		{
			path: APIVersion + "/admin/stats", method: http.MethodPost,
			handler: s.handleAdminStats,
			summary: "Advance the statistics epoch",
			description: "Installs a new statistics generation — from per-column histogram deltas or a full " +
				"resample — advances the epoch, and starts background revalidation of every plan cache. " +
				"Serving continues uninterrupted; no cache is flushed.",
		},
		{
			path: APIVersion + "/admin/epochs", method: http.MethodGet,
			handler:     s.handleAdminEpochs,
			summary:     "List statistics epochs",
			description: "Every epoch this process has served, with its origin and per-template revalidation progress.",
		},
		{
			path: APIVersion + "/cluster/epoch", method: http.MethodPost,
			handler: s.handleClusterEpoch,
			summary: "Install a coordinator-pushed statistics generation",
			description: "Idempotent member-side install for multi-node epoch propagation: epoch N+1 installs " +
				"when the node is at N, earlier epochs are acknowledged as duplicates, and later epochs are " +
				"refused with ErrEpochGap (the coordinator replays the missed generations in order).",
		},
		{
			path: APIVersion + "/cluster/status", method: http.MethodGet,
			handler: s.handleClusterStatus,
			summary: "Node epoch and skew status",
			description: "The node's installed generation, the highest cluster generation it has observed, the " +
				"resulting skew, and revalidation lag — the roll-up the epoch coordinator and load balancers poll.",
		},
		{
			path: APIVersion + "/openapi.json", method: http.MethodGet,
			handler:     s.handleOpenAPI,
			summary:     "This API's OpenAPI document",
			description: "Generated from the live route registry, so it always matches the served surface.",
		},
	}
}

// Handler returns the server's route table; usable directly with
// httptest or any http.Server. Unknown paths get the JSON error
// envelope with 404, disallowed methods get it with 405.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	for _, rt := range s.routes() {
		rt := rt
		mux.HandleFunc(rt.path, func(w http.ResponseWriter, r *http.Request) {
			// Every coordinator RPC carries the cluster-epoch stamp; feeding
			// it to the plan caches here means even a node that cannot
			// install (mid-partition, mid-replay) learns it is behind.
			s.observeClusterHeader(r)
			if !methodAllowed(r.Method, rt.method) {
				w.Header().Set("Allow", rt.method)
				writeError(w, http.StatusMethodNotAllowed, "ErrMethodNotAllowed",
					fmt.Errorf("%s requires %s", rt.path, rt.method))
				return
			}
			rt.handler(w, r)
		})
		if rt.legacy != "" {
			target := rt.path
			mux.HandleFunc(rt.legacy, func(w http.ResponseWriter, r *http.Request) {
				// 308 preserves the method and body, so POST /plan
				// clients keep working through the redirect.
				http.Redirect(w, r, target, http.StatusPermanentRedirect)
			})
		}
	}
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, http.StatusNotFound, "ErrNotFound",
			fmt.Errorf("no route %s (the API lives under %s/)", r.URL.Path, APIVersion))
	})
	return mux
}

// methodAllowed reports whether got may invoke a route declared with
// want; HEAD rides along with GET per RFC 9110.
func methodAllowed(got, want string) bool {
	return got == want || (want == http.MethodGet && got == http.MethodHead)
}

// openAPIDoc is the minimal OpenAPI 3 document shape the server emits.
type openAPIDoc struct {
	OpenAPI string                  `json:"openapi"`
	Info    openAPIInfo             `json:"info"`
	Paths   map[string]openAPIPath  `json:"paths"`
}

type openAPIInfo struct {
	Title       string `json:"title"`
	Description string `json:"description"`
	Version     string `json:"version"`
}

type openAPIPath map[string]openAPIOp

type openAPIOp struct {
	Summary     string                     `json:"summary"`
	Description string                     `json:"description,omitempty"`
	Responses   map[string]openAPIResponse `json:"responses"`
}

type openAPIResponse struct {
	Description string `json:"description"`
}

// openAPI generates the spec from the route registry.
func (s *Server) openAPI() openAPIDoc {
	doc := openAPIDoc{
		OpenAPI: "3.0.3",
		Info: openAPIInfo{
			Title: "pqo plan-cache service",
			Description: "Online parametric query optimization with λ-optimality guarantees: " +
				"plan decisions, statistics-epoch administration, metrics and snapshots.",
			Version: strings.TrimPrefix(APIVersion, "/"),
		},
		Paths: make(map[string]openAPIPath),
	}
	for _, rt := range s.routes() {
		op := openAPIOp{
			Summary:     rt.summary,
			Description: rt.description,
			Responses: map[string]openAPIResponse{
				"200": {Description: "Success."},
				"default": {Description: `Error envelope {"error","sentinel"}; the sentinel is a ` +
					"stable identifier clients can branch on."},
			},
		}
		if doc.Paths[rt.path] == nil {
			doc.Paths[rt.path] = make(openAPIPath)
		}
		doc.Paths[rt.path][strings.ToLower(rt.method)] = op
	}
	return doc
}

func (s *Server) handleOpenAPI(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.openAPI())
}
