package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/pqotest"
	"repro/pqo"
)

// newTestServer builds a Server over one synthetic 2-dimensional template
// named "t1".
func newTestServer(t testing.TB, cfg Config) (*Server, *pqotest.Engine) {
	t.Helper()
	eng, err := pqotest.RandomEngine(rand.New(rand.NewSource(7)), 2, 6)
	if err != nil {
		t.Fatal(err)
	}
	scr, err := pqo.New(eng, pqo.WithLambda(2))
	if err != nil {
		t.Fatal(err)
	}
	s := New(cfg)
	if err := s.Register("t1", "SELECT synthetic", eng, scr); err != nil {
		t.Fatal(err)
	}
	return s, eng
}

func postPlan(t testing.TB, h http.Handler, req PlanRequest) (*httptest.ResponseRecorder, *PlanResponse) {
	t.Helper()
	body, _ := json.Marshal(req)
	r := httptest.NewRequest(http.MethodPost, "/v1/plan", bytes.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	if w.Code != http.StatusOK {
		return w, nil
	}
	var resp PlanResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decoding /plan response: %v", err)
	}
	return w, &resp
}

func TestPlanEndpoint(t *testing.T) {
	s, eng := newTestServer(t, Config{})
	h := s.Handler()

	w, resp := postPlan(t, h, PlanRequest{Template: "t1", SVector: []float64{0.1, 0.2}})
	if w.Code != http.StatusOK {
		t.Fatalf("first /plan: status %d, body %s", w.Code, w.Body)
	}
	if resp.Via != "optimizer" || !resp.Optimized {
		t.Errorf("cold cache should optimize, got via=%s optimized=%v", resp.Via, resp.Optimized)
	}
	if resp.Fingerprint == "" || resp.Plan == "" || resp.EstimatedCost <= 0 {
		t.Errorf("incomplete response: %+v", resp)
	}

	w, resp = postPlan(t, h, PlanRequest{Template: "t1", SVector: []float64{0.1, 0.2}})
	if w.Code != http.StatusOK {
		t.Fatalf("second /plan: status %d", w.Code)
	}
	if resp.Via != "selectivity-check" {
		t.Errorf("identical repeat should hit the selectivity check, got via=%s", resp.Via)
	}
	if got := eng.OptimizeCalls(); got != 1 {
		t.Errorf("optimizer calls = %d, want 1", got)
	}

	cases := []struct {
		name string
		req  *http.Request
		want int
	}{
		{"GET not allowed", httptest.NewRequest(http.MethodGet, "/v1/plan", nil), http.StatusMethodNotAllowed},
		{"bad JSON", httptest.NewRequest(http.MethodPost, "/v1/plan", strings.NewReader("{")), http.StatusBadRequest},
		{"unknown template", httptest.NewRequest(http.MethodPost, "/v1/plan",
			strings.NewReader(`{"template":"nope","sVector":[0.1,0.2]}`)), http.StatusNotFound},
		{"wrong dimensions", httptest.NewRequest(http.MethodPost, "/v1/plan",
			strings.NewReader(`{"template":"t1","sVector":[0.1]}`)), http.StatusBadRequest},
	}
	for _, tc := range cases {
		w := httptest.NewRecorder()
		h.ServeHTTP(w, tc.req)
		if w.Code != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, w.Code, tc.want)
		}
	}
}

func TestRequestTimeout(t *testing.T) {
	// A 1ns budget is always expired by the time Process checks its
	// context, so the request must fail as a timeout, not a 400.
	s, _ := newTestServer(t, Config{RequestTimeout: time.Nanosecond})
	w, _ := postPlan(t, s.Handler(), PlanRequest{Template: "t1", SVector: []float64{0.1, 0.2}})
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want %d (body %s)", w.Code, http.StatusGatewayTimeout, w.Body)
	}
}

func TestTemplatesStatsMetrics(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	h := s.Handler()
	vectors := [][]float64{{0.1, 0.2}, {0.1, 0.2}, {0.1, 0.2}, {0.8, 0.9}}
	for _, sv := range vectors {
		if w, _ := postPlan(t, h, PlanRequest{Template: "t1", SVector: sv}); w.Code != http.StatusOK {
			t.Fatalf("/plan: status %d", w.Code)
		}
	}

	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/templates", nil))
	var tpls []TemplateInfo
	if err := json.Unmarshal(w.Body.Bytes(), &tpls); err != nil {
		t.Fatalf("/templates: %v", err)
	}
	if len(tpls) != 1 || tpls[0].Name != "t1" || tpls[0].Dimensions != 2 {
		t.Errorf("/templates = %+v", tpls)
	}

	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/stats", nil))
	var rows []StatsRow
	if err := json.Unmarshal(w.Body.Bytes(), &rows); err != nil {
		t.Fatalf("/stats: %v", err)
	}
	if len(rows) != 1 {
		t.Fatalf("/stats rows = %d", len(rows))
	}
	st := rows[0]
	if st.Instances != int64(len(vectors)) {
		t.Errorf("instances = %d, want %d", st.Instances, len(vectors))
	}
	if st.NumOpt == 0 || st.ReadPathHits == 0 {
		t.Errorf("expected optimizer calls and read-path hits, got %+v", st)
	}

	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/metrics", nil))
	body := w.Body.String()
	for _, want := range []string{
		`pqo_instances_total{template="t1"} 4`,
		`pqo_opt_calls_total{template="t1"}`,
		`pqo_read_path_hits_total{template="t1"}`,
		`pqo_check_latency_seconds_bucket{template="t1",via="optimizer",le="+Inf"}`,
		`pqo_check_latency_seconds_count{template="t1",via="selectivity-check"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// The per-via histogram counts must account for every /plan request.
	total := int64(0)
	for _, via := range checkLabels {
		total += promValue(t, body, fmt.Sprintf(`pqo_check_latency_seconds_count{template="t1",via=%q}`, via))
	}
	if total != int64(len(vectors)) {
		t.Errorf("histogram total = %d, want %d", total, len(vectors))
	}
}

// promValue extracts the value of a series line from Prometheus text.
func promValue(t *testing.T, body, series string) int64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, series+" ") {
			var v int64
			if _, err := fmt.Sscanf(line[len(series)+1:], "%d", &v); err != nil {
				t.Fatalf("parsing %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("series %q not found", series)
	return 0
}

// TestSnapshotRoundTrip uses a real template engine (the synthetic test
// engine cannot rehydrate plans) and verifies the cache survives a
// restart via POST /snapshot + Register-time restore.
func TestSnapshotRoundTrip(t *testing.T) {
	sys, err := pqo.NewSystem(pqo.TPCH(0.01), 3)
	if err != nil {
		t.Fatal(err)
	}
	tpl, err := pqo.ParseTemplate("q", `
		SELECT * FROM lineitem, orders
		WHERE lineitem.l_orderkey = orders.o_orderkey
		  AND lineitem.l_shipdate <= ?0
		  AND orders.o_totalprice >= ?1`, sys.Cat)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	build := func() (*Server, *pqo.SCR) {
		eng, err := sys.EngineFor(tpl)
		if err != nil {
			t.Fatal(err)
		}
		scr, err := pqo.New(eng, pqo.WithLambda(2))
		if err != nil {
			t.Fatal(err)
		}
		s := New(Config{SnapshotDir: dir})
		if err := s.Register("q", tpl.SQL(), eng, scr); err != nil {
			t.Fatal(err)
		}
		return s, scr
	}

	s1, scr1 := build()
	h := s1.Handler()
	for _, sv := range [][]float64{{0.02, 0.1}, {0.6, 0.5}} {
		if w, _ := postPlan(t, h, PlanRequest{Template: "q", SVector: sv}); w.Code != http.StatusOK {
			t.Fatalf("/plan: status %d body %s", w.Code, w.Body)
		}
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/v1/snapshot", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("/snapshot: status %d body %s", w.Code, w.Body)
	}
	if _, err := os.Stat(dir + "/q.json"); err != nil {
		t.Fatalf("snapshot file: %v", err)
	}
	wantPlans := scr1.Stats().CurPlans

	s2, scr2 := build()
	if got := scr2.Stats().CurPlans; got != wantPlans {
		t.Errorf("restored plans = %d, want %d", got, wantPlans)
	}
	// A previously-seen instance should now hit the restored cache.
	w2, resp := postPlan(t, s2.Handler(), PlanRequest{Template: "q", SVector: []float64{0.02, 0.1}})
	if w2.Code != http.StatusOK {
		t.Fatalf("/plan on restored server: status %d", w2.Code)
	}
	if resp.Via == "optimizer" {
		t.Errorf("restored cache should serve without optimizing, got via=%s", resp.Via)
	}
}

// TestRecostCacheMetrics drives a real template engine through /plan and
// asserts the recost result cache reports a nonzero hit rate: every /plan
// response recosts the decided plan at the request's selectivity vector, so
// a repeated identical request must be answered from the cache.
func TestRecostCacheMetrics(t *testing.T) {
	sys, err := pqo.NewSystem(pqo.TPCH(0.01), 3)
	if err != nil {
		t.Fatal(err)
	}
	tpl, err := pqo.ParseTemplate("q", `
		SELECT * FROM lineitem, orders
		WHERE lineitem.l_orderkey = orders.o_orderkey
		  AND lineitem.l_shipdate <= ?0
		  AND orders.o_totalprice >= ?1`, sys.Cat)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := sys.EngineFor(tpl)
	if err != nil {
		t.Fatal(err)
	}
	scr, err := pqo.New(eng, pqo.WithLambda(2))
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{})
	if err := s.Register("q", tpl.SQL(), eng, scr); err != nil {
		t.Fatal(err)
	}
	h := s.Handler()
	for i := 0; i < 3; i++ {
		if w, _ := postPlan(t, h, PlanRequest{Template: "q", SVector: []float64{0.02, 0.1}}); w.Code != http.StatusOK {
			t.Fatalf("/plan %d: status %d body %s", i, w.Code, w.Body)
		}
	}

	hits, misses := eng.RecostCacheCounters()
	if hits == 0 {
		t.Errorf("recost cache hits = 0 (misses = %d), want > 0", misses)
	}
	if misses == 0 {
		t.Errorf("recost cache misses = 0, want > 0 (first recost must miss)")
	}

	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/metrics", nil))
	body := w.Body.String()
	if got := promValue(t, body, `pqo_recost_cache_hits_total{template="q"}`); got != hits {
		t.Errorf("/metrics recost cache hits = %d, want %d", got, hits)
	}
	if got := promValue(t, body, `pqo_recost_cache_misses_total{template="q"}`); got != misses {
		t.Errorf("/metrics recost cache misses = %d, want %d", got, misses)
	}
	if got := promValue(t, body, `pqo_env_pool_gets_total{template="q"}`); got == 0 {
		t.Error("/metrics env pool gets = 0, want > 0")
	}

	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/stats", nil))
	var rows []StatsRow
	if err := json.Unmarshal(w.Body.Bytes(), &rows); err != nil {
		t.Fatalf("/stats: %v", err)
	}
	if len(rows) != 1 || rows[0].RecostCacheHits != hits {
		t.Errorf("/stats recost cache hits = %+v, want %d", rows, hits)
	}

	// Flushing drops entries but preserves counters; the next identical
	// request misses once and repopulates.
	eng.FlushRecostCache()
	if w, _ := postPlan(t, h, PlanRequest{Template: "q", SVector: []float64{0.02, 0.1}}); w.Code != http.StatusOK {
		t.Fatal("post-flush /plan failed")
	}
	_, misses2 := eng.RecostCacheCounters()
	if misses2 <= misses {
		t.Errorf("post-flush misses = %d, want > %d", misses2, misses)
	}
}

func TestSnapshotDisabled(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/v1/snapshot", nil))
	if w.Code != http.StatusConflict {
		t.Fatalf("/snapshot without SnapshotDir: status %d, want %d", w.Code, http.StatusConflict)
	}
}

func TestRegisterValidation(t *testing.T) {
	s, eng := newTestServer(t, Config{})
	scr, err := pqo.New(eng)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Register("", "", eng, scr); err == nil {
		t.Error("empty name accepted")
	}
	if err := s.Register("t2", "", nil, scr); err == nil {
		t.Error("nil engine accepted")
	}
	if err := s.Register("t1", "", eng, scr); err == nil {
		t.Error("duplicate name accepted")
	}
}

func TestGracefulShutdown(t *testing.T) {
	dir := t.TempDir()
	s, _ := newTestServer(t, Config{SnapshotDir: dir})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(ln) }()

	body, _ := json.Marshal(PlanRequest{Template: "t1", SVector: []float64{0.1, 0.2}})
	url := "http://" + ln.Addr().String()
	resp, err := http.Post(url+"/v1/plan", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/plan over TCP: status %d", resp.StatusCode)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
		t.Errorf("Serve returned %v, want http.ErrServerClosed", err)
	}
	// Shutdown with SnapshotDir set must flush the caches.
	if _, err := os.Stat(dir + "/t1.json"); err != nil {
		t.Errorf("shutdown snapshot: %v", err)
	}
	if _, err := http.Post(url+"/v1/plan", "application/json", bytes.NewReader(body)); err == nil {
		t.Error("server still accepting connections after shutdown")
	}
}
