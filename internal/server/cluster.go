package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"repro/pqo"
)

// This file is the member side of multi-node epoch propagation
// (docs/ROBUSTNESS.md): POST /v1/cluster/epoch is the coordinator-facing
// install endpoint — idempotent, monotonic, duplicate-delivery tolerant —
// and GET /v1/cluster/status is the roll-up a coordinator (or load
// balancer) polls to see how far this node's statistics generation and
// revalidation lag the cluster. The coordinator stamps every RPC with the
// Pqo-Cluster-Epoch header; the server feeds it to each plan cache
// (SCR.ObserveClusterEpoch) so even a node that cannot install — mid-
// partition, mid-replay — knows when it is behind quorum and flags its
// decisions instead of silently mixing generations.

// ClusterEpochHeader carries the highest generation the coordinator has
// assigned; sent on every coordinator RPC, observed on every route.
const ClusterEpochHeader = "Pqo-Cluster-Epoch"

// NodeEpochHeader reports this node's installed generation on cluster
// responses, so a coordinator seeing ErrEpochGap knows where to start the
// catch-up replay without a second round trip.
const NodeEpochHeader = "Pqo-Node-Epoch"

// ClusterEpochRequest is the body of POST /v1/cluster/epoch: install
// generation Epoch from exactly one of Deltas or ResampleSeed. Epoch must
// be exactly one past the node's current generation; earlier epochs are
// acknowledged as duplicates (delivering a push twice must be harmless),
// later ones are refused with ErrEpochGap so the coordinator replays the
// missed generations in order.
type ClusterEpochRequest struct {
	Epoch        uint64               `json:"epoch"`
	Deltas       []pqo.HistogramDelta `json:"deltas,omitempty"`
	ResampleSeed *int64               `json:"resampleSeed,omitempty"`
	Workers      int                  `json:"workers,omitempty"`
}

// ClusterEpochResponse is the body of a successful POST /v1/cluster/epoch.
type ClusterEpochResponse struct {
	// Epoch is the node's installed generation after handling the push.
	Epoch uint64 `json:"epoch"`
	// Installed reports that this delivery performed the install;
	// Duplicate that the generation was already in place (idempotent ack).
	Installed bool `json:"installed,omitempty"`
	Duplicate bool `json:"duplicate,omitempty"`
	// Revalidation is the per-template background revalidation progress at
	// response time (installs only).
	Revalidation map[string]pqo.RevalidationProgress `json:"revalidation,omitempty"`
}

// ClusterStatusResponse is the body of GET /v1/cluster/status.
type ClusterStatusResponse struct {
	// Epoch is the node's installed statistics generation; ClusterEpoch
	// the highest cluster generation it has observed; Skew how many
	// generations it lags (0 when caught up or no coordinator has spoken).
	Epoch        uint64 `json:"epoch"`
	ClusterEpoch uint64 `json:"clusterEpoch"`
	Skew         uint64 `json:"skew"`
	// LaggingInstances counts plan-cache anchors still awaiting
	// revalidation under the node's current epoch, summed over templates.
	LaggingInstances int64 `json:"laggingInstances"`
	// SkewFlagged counts decisions served flagged DegradedEpochSkew.
	SkewFlagged int64 `json:"skewFlagged"`
	// Health is the /v1/healthz status string.
	Health    string `json:"health"`
	Templates int    `json:"templates"`
}

// observeClusterEpoch feeds a coordinator's cluster-epoch observation to
// every registered plan cache.
func (s *Server) observeClusterEpoch(id uint64) {
	if id == 0 {
		return
	}
	for _, e := range s.snapshotEntries() {
		e.scr.ObserveClusterEpoch(id)
	}
}

// observeClusterHeader picks up the Pqo-Cluster-Epoch stamp, if present.
func (s *Server) observeClusterHeader(r *http.Request) {
	if v := r.Header.Get(ClusterEpochHeader); v != "" {
		if id, err := strconv.ParseUint(v, 10, 64); err == nil {
			s.observeClusterEpoch(id)
		}
	}
}

func (s *Server) handleClusterEpoch(w http.ResponseWriter, r *http.Request) {
	var req ClusterEpochRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "ErrBadRequest", err)
		return
	}
	if req.Epoch == 0 {
		writeError(w, http.StatusBadRequest, "ErrBadRequest",
			errors.New("cluster epoch id must be >= 1"))
		return
	}
	if (len(req.Deltas) == 0) == (req.ResampleSeed == nil) {
		writeError(w, http.StatusBadRequest, "ErrBadRequest",
			errors.New("exactly one of deltas or resampleSeed must be set"))
		return
	}
	sys := s.system()
	if sys == nil {
		writeError(w, http.StatusConflict, "ErrNoSystem",
			errors.New("cluster installs require an attached system (Server.SetSystem)"))
		return
	}
	// The push itself proves the cluster has assigned generation
	// req.Epoch, whether or not this delivery installs it.
	s.observeClusterEpoch(req.Epoch)

	s.admin.installMu.Lock()
	defer s.admin.installMu.Unlock()
	cur := sys.Opt.Epoch().ID
	w.Header().Set(NodeEpochHeader, strconv.FormatUint(cur, 10))
	switch {
	case req.Epoch <= cur:
		// Duplicate delivery (a retransmit, or a retry after a lost
		// response): the generation is already installed. Acknowledge
		// without touching anything — installs must be idempotent.
		writeJSON(w, ClusterEpochResponse{Epoch: cur, Duplicate: true})
		return
	case req.Epoch > cur+1:
		writeError(w, http.StatusConflict, "ErrEpochGap",
			fmt.Errorf("node at epoch %d cannot install %d: generations %d..%d missing (replay them in order)",
				cur, req.Epoch, cur+1, req.Epoch-1))
		return
	}

	out, code, sentinel, err := s.advanceGeneration(r.Context(), sys, "cluster-", req.Deltas, req.ResampleSeed, req.Workers)
	if err != nil {
		writeError(w, code, sentinel, err)
		return
	}
	w.Header().Set(NodeEpochHeader, strconv.FormatUint(out.epoch, 10))
	resp := ClusterEpochResponse{
		Epoch:        out.epoch,
		Installed:    true,
		Revalidation: make(map[string]pqo.RevalidationProgress, len(out.revals)),
	}
	for name, run := range out.revals {
		resp.Revalidation[name] = run.Progress()
	}
	writeJSON(w, resp)
}

func (s *Server) handleClusterStatus(w http.ResponseWriter, _ *http.Request) {
	resp := ClusterStatusResponse{Health: s.health().Status}
	if sys := s.system(); sys != nil {
		resp.Epoch = sys.Opt.Epoch().ID
	}
	entries := s.snapshotEntries()
	resp.Templates = len(entries)
	for _, e := range entries {
		st := e.scr.Stats()
		if st.StatsEpoch > resp.Epoch {
			resp.Epoch = st.StatsEpoch
		}
		if st.ClusterEpoch > resp.ClusterEpoch {
			resp.ClusterEpoch = st.ClusterEpoch
		}
		resp.LaggingInstances += st.LaggingInstances
		resp.SkewFlagged += st.EpochSkewFlagged
	}
	if resp.ClusterEpoch > resp.Epoch {
		resp.Skew = resp.ClusterEpoch - resp.Epoch
	}
	w.Header().Set(NodeEpochHeader, strconv.FormatUint(resp.Epoch, 10))
	writeJSON(w, resp)
}
