// Package server is the HTTP plan-cache service around SCR: a production
// front-end for the paper's online PQO technique.
//
// A Server owns one SCR plan cache per registered query template and
// serves mixed read-mostly traffic concurrently — cache hits resolve on
// SCR's lock-free snapshot read path, and concurrent identical misses
// share a single optimizer call. The API is versioned under /v1 (docs/API.md);
// the route registry in routes.go is the single source of truth and also
// generates /v1/openapi.json:
//
//	POST /v1/plan         {template, sVector} → plan decision + epoch + cost
//	GET  /v1/templates    registered templates with SQL and dimensionality
//	GET  /v1/stats        the paper's metrics per template (JSON)
//	GET  /v1/metrics      Prometheus text format: counters + latency histograms
//	POST /v1/snapshot     persist every plan cache via Export
//	GET  /v1/healthz      liveness/readiness
//	POST /v1/admin/stats  install a statistics generation, advance the epoch
//	GET  /v1/admin/epochs epoch log with revalidation progress
//	GET  /v1/openapi.json the generated OpenAPI document
//
// Unversioned legacy paths (/plan, /stats, ...) respond 308 Permanent
// Redirect to their /v1 equivalents. Every error response uses the JSON
// envelope {"error","sentinel"}.
//
// The server dogfoods the public pqo facade: apart from this package's
// own plumbing it depends only on repro/pqo.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"math"
	"math/rand"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/pqo"
)

// Config tunes a Server. The zero value is usable: a 5s request timeout,
// snapshots disabled, logging discarded.
type Config struct {
	// RequestTimeout bounds each /plan request, including any optimizer
	// call it triggers. Process observes cancellation via context; an
	// expired request returns 504 with an ErrCancelled-wrapped error.
	// Zero means DefaultRequestTimeout; negative disables the timeout.
	RequestTimeout time.Duration
	// SnapshotDir, when non-empty, enables plan-cache persistence:
	// Register restores <dir>/<template>.json when present, POST
	// /snapshot and Shutdown write them back.
	SnapshotDir string
	// Logger receives operational messages; nil discards them.
	Logger *log.Logger

	// MaxInFlight bounds concurrently-processing /plan requests; zero
	// means unlimited. When every slot is busy an arriving request waits
	// up to QueueWait for one to free and is otherwise shed with
	// 429 Too Many Requests and a Retry-After hint — overload degrades
	// into fast, explicit rejections instead of a latency collapse.
	MaxInFlight int
	// QueueWait bounds how long a /plan request may wait for an in-flight
	// slot before being shed. Zero means DefaultQueueWait; it only
	// matters when MaxInFlight > 0.
	QueueWait time.Duration
	// RetryAfter is the Retry-After value (rounded up to whole seconds)
	// attached to shed responses. Zero means DefaultRetryAfter.
	RetryAfter time.Duration
}

// DefaultRequestTimeout bounds /plan requests when Config.RequestTimeout
// is zero.
const DefaultRequestTimeout = 5 * time.Second

// DefaultQueueWait bounds the wait for an in-flight slot when
// Config.MaxInFlight is set and Config.QueueWait is zero.
const DefaultQueueWait = 100 * time.Millisecond

// DefaultRetryAfter is the shed-response Retry-After hint when
// Config.RetryAfter is zero.
const DefaultRetryAfter = time.Second

// shedRecencyWindow is how recently a request must have been shed for
// /healthz to report "degraded" on that evidence.
const shedRecencyWindow = 10 * time.Second

// Server is an HTTP front-end over per-template SCR plan caches. All
// methods are safe for concurrent use.
type Server struct {
	cfg Config

	mu      sync.RWMutex
	entries map[string]*entry
	httpSrv *http.Server

	// dir mirrors entries as a pqo.Directory of per-template write
	// domains: epoch revalidation schedules across it (usage-weighted,
	// one shared worker pool) and /metrics aggregates publication
	// counters from it without stopping writers.
	dir *pqo.Directory

	// sem bounds in-flight /plan work when Config.MaxInFlight > 0; nil
	// means unlimited. Acquiring is a buffered-channel send so the hot
	// path pays one channel op when a slot is free.
	sem       chan struct{}
	shedTotal atomic.Int64
	lastShed  atomic.Int64 // unix nanos of the most recent shed
	draining  atomic.Bool  // set by Shutdown before the listener closes

	// admin is the statistics-epoch administration state (admin.go): the
	// optional attached system plus the epoch log.
	admin adminState
}

// entry binds one registered template to its engine, plan cache and
// latency histograms (indexed by histOptimizer..histShared).
type entry struct {
	name string
	sql  string
	eng  pqo.Engine
	scr  *pqo.SCR
	hist [len(checkLabels)]latencyHist
}

// New returns an empty Server; add templates with Register.
func New(cfg Config) *Server {
	if cfg.RequestTimeout == 0 {
		cfg.RequestTimeout = DefaultRequestTimeout
	}
	if cfg.QueueWait == 0 {
		cfg.QueueWait = DefaultQueueWait
	}
	if cfg.RetryAfter == 0 {
		cfg.RetryAfter = DefaultRetryAfter
	}
	s := &Server{cfg: cfg, entries: make(map[string]*entry), dir: pqo.NewDirectory()}
	if cfg.MaxInFlight > 0 {
		s.sem = make(chan struct{}, cfg.MaxInFlight)
	}
	return s
}

// Register adds a template under name, backed by eng and the given SCR
// cache. sql is informational (shown by /templates; empty is fine for
// synthetic engines). If Config.SnapshotDir holds a snapshot for name it
// is restored into scr — a corrupt or incompatible snapshot is logged
// and ignored, never fatal.
func (s *Server) Register(name, sql string, eng pqo.Engine, scr *pqo.SCR) error {
	if name == "" {
		return errors.New("server: empty template name")
	}
	if eng == nil || scr == nil {
		return fmt.Errorf("server: template %q needs an engine and an SCR", name)
	}
	e := &entry{name: name, sql: sql, eng: eng, scr: scr}
	if s.cfg.SnapshotDir != "" {
		// ReadSnapshotFile verifies the checksum framing, so a node killed
		// mid-persist rejoins from its last good snapshot: a torn write
		// fails verification here (logged, ignored) instead of being half-
		// imported, and the atomic-rename writer below means the previous
		// good file is still what's at this path.
		if data, err := pqo.ReadSnapshotFile(s.snapshotPath(name)); err == nil {
			if err := scr.Import(data); err != nil {
				s.logf("snapshot for %s ignored: %v", name, err)
			} else {
				s.logf("restored plan cache for %s (%d plans)", name, scr.Stats().CurPlans)
			}
		} else if !os.IsNotExist(err) {
			s.logf("snapshot for %s unreadable: %v", name, err)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.entries[name]; dup {
		return fmt.Errorf("server: template %q already registered", name)
	}
	if err := s.dir.Attach(name, scr); err != nil {
		return err
	}
	s.entries[name] = e
	return nil
}

func (s *Server) entry(name string) *entry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.entries[name]
}

func (s *Server) snapshotPath(name string) string {
	return filepath.Join(s.cfg.SnapshotDir, name+".json")
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logger != nil {
		s.cfg.Logger.Printf(format, args...)
	}
}

// HealthStatus is the body of GET /v1/healthz: a three-state readiness
// report. "serving" means full service; "degraded" means the service is
// up but shedding load, running with an unhealthy optimizer (a circuit
// breaker not closed), or lagging the cluster statistics generation past
// the skew bound, so responses may carry Degraded decisions; "unhealthy"
// means the server is shutting down and new requests will be rejected.
//
// The epoch fields report revalidation lag so load balancers and the
// epoch coordinator can drain or deprioritize lagging nodes: Epoch is the
// node's installed statistics generation, ClusterEpoch the highest
// cluster generation observed (0 when no coordinator has spoken),
// EpochSkew their difference, and LaggingInstances the plan-cache anchors
// still awaiting revalidation, summed over templates.
type HealthStatus struct {
	Status           string            `json:"status"`
	Breakers         map[string]string `json:"breakers,omitempty"`
	Sheds            int64             `json:"sheds,omitempty"`
	Epoch            uint64            `json:"epoch,omitempty"`
	ClusterEpoch     uint64            `json:"clusterEpoch,omitempty"`
	EpochSkew        uint64            `json:"epochSkew,omitempty"`
	LaggingInstances int64             `json:"laggingInstances,omitempty"`
}

// health computes the current health state from breaker states, shed
// recency and cluster-epoch skew.
func (s *Server) health() HealthStatus {
	h := HealthStatus{Status: "serving", Sheds: s.shedTotal.Load()}
	if s.draining.Load() {
		h.Status = "unhealthy"
		return h
	}
	for _, e := range s.snapshotEntries() {
		st := e.scr.Stats()
		if st.BreakerState != pqo.BreakerClosed {
			if h.Breakers == nil {
				h.Breakers = make(map[string]string)
			}
			h.Breakers[e.name] = st.BreakerState.String()
			h.Status = "degraded"
		}
		if st.StatsEpoch > h.Epoch {
			h.Epoch = st.StatsEpoch
		}
		if st.ClusterEpoch > h.ClusterEpoch {
			h.ClusterEpoch = st.ClusterEpoch
		}
		h.LaggingInstances += st.LaggingInstances
		if e.scr.SkewLagging() {
			// Behind the cluster quorum past the skew bound: decisions are
			// being served flagged, so report degraded until catch-up.
			h.Status = "degraded"
		}
	}
	if h.ClusterEpoch > h.Epoch {
		h.EpochSkew = h.ClusterEpoch - h.Epoch
	}
	if last := s.lastShed.Load(); last != 0 &&
		time.Since(time.Unix(0, last)) < shedRecencyWindow {
		h.Status = "degraded"
	}
	return h
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	h := s.health()
	if h.Status == "unhealthy" {
		// Errors use the uniform envelope even here, so probes and humans
		// parse one shape everywhere.
		s.setRetryAfter(w)
		writeError(w, http.StatusServiceUnavailable, "ErrUnhealthy",
			errors.New("server is shutting down"))
		return
	}
	writeJSON(w, h)
}

// Serve accepts connections on ln until Shutdown. It returns
// http.ErrServerClosed after a graceful shutdown.
func (s *Server) Serve(ln net.Listener) error {
	srv := &http.Server{Handler: s.Handler(), ReadHeaderTimeout: 10 * time.Second}
	if err := s.setServing(srv); err != nil {
		return err
	}
	return srv.Serve(ln)
}

// setServing installs srv as the active http.Server, failing if one is
// already installed.
func (s *Server) setServing(srv *http.Server) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.httpSrv != nil {
		return errors.New("server: already serving")
	}
	s.httpSrv = srv
	return nil
}

// takeServer detaches and returns the active http.Server, if any.
func (s *Server) takeServer() *http.Server {
	s.mu.Lock()
	defer s.mu.Unlock()
	srv := s.httpSrv
	s.httpSrv = nil
	return srv
}

// snapshotEntries copies the registered-template list under the read lock so
// slow per-entry work (snapshot export, file IO) runs without holding it.
func (s *Server) snapshotEntries() []*entry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	entries := make([]*entry, 0, len(s.entries))
	for _, e := range s.entries {
		entries = append(entries, e)
	}
	return entries
}

// ListenAndServe listens on addr and calls Serve.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Shutdown gracefully stops the server: it marks itself unhealthy (so
// load balancers stop routing here), drains in-flight requests (bounded
// by ctx) and then persists every plan cache when snapshots are enabled,
// so restarts resume with warm caches.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	srv := s.takeServer()
	if srv != nil {
		if err := srv.Shutdown(ctx); err != nil {
			return err
		}
	}
	if s.cfg.SnapshotDir == "" {
		return nil
	}
	_, err := s.SaveSnapshots()
	return err
}

// SaveSnapshots exports every registered plan cache to
// Config.SnapshotDir and returns how many were written.
func (s *Server) SaveSnapshots() (int, error) {
	if s.cfg.SnapshotDir == "" {
		return 0, errors.New("server: snapshots disabled (no SnapshotDir)")
	}
	if err := os.MkdirAll(s.cfg.SnapshotDir, 0o755); err != nil {
		return 0, err
	}
	entries := s.snapshotEntries()
	saved := 0
	for _, e := range entries {
		data, err := e.scr.Export()
		if err != nil {
			return saved, fmt.Errorf("server: exporting %s: %w", e.name, err)
		}
		if err := pqo.WriteSnapshotFile(s.snapshotPath(e.name), data); err != nil {
			return saved, err
		}
		saved++
	}
	return saved, nil
}

// PlanRequest is the body of POST /plan.
type PlanRequest struct {
	Template string    `json:"template"`
	SVector  []float64 `json:"sVector"`
}

// PlanResponse is the body of a successful POST /v1/plan. Degraded
// reports that the decision was served without the λ guarantee (the
// optimizer was unavailable); DegradedReason says why. Epoch is the id of
// the statistics epoch the decision's guarantee is stated against — it
// can trail the engine's current epoch while background revalidation
// catches the cache up after an advance (0 for epoch-less engines).
// CostUnavailable marks a response whose estimatedCost could not be
// computed because recosting failed after the decision — the plan itself
// is still valid.
type PlanResponse struct {
	Via            string `json:"via"`
	Optimized      bool   `json:"optimized"`
	Shared         bool   `json:"shared,omitempty"`
	Degraded       bool   `json:"degraded,omitempty"`
	DegradedReason string `json:"degradedReason,omitempty"`
	Epoch          uint64 `json:"epoch,omitempty"`
	// NodeEpoch is the node's installed statistics generation at response
	// time. It can run ahead of Epoch (a lagging anchor's guarantee is
	// stated against the generation it was derived under) and is the value
	// cross-node skew is measured on: two healthy nodes must never differ
	// by more than the cluster skew bound.
	NodeEpoch       uint64  `json:"nodeEpoch,omitempty"`
	EstimatedCost   float64 `json:"estimatedCost"`
	CostUnavailable bool    `json:"costUnavailable,omitempty"`
	Plan            string  `json:"plan"`
	Fingerprint     string  `json:"fingerprint"`
	LatencyMicros   int64   `json:"latencyMicros"`
}

// errorBody is the JSON body of every /plan error response: the message
// plus the matching sentinel's name, so clients branch on a stable
// identifier instead of parsing prose.
type errorBody struct {
	Error    string `json:"error"`
	Sentinel string `json:"sentinel,omitempty"`
}

func writeError(w http.ResponseWriter, code int, sentinel string, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(errorBody{Error: err.Error(), Sentinel: sentinel})
}

// statusFor maps a Process error to its HTTP status and sentinel name.
// Every sentinel gets a distinct, intentional status: cancellation is the
// caller's deadline (504), exhausted budgets and open breakers are
// retryable capacity conditions (503), and a template with no feasible
// plan is a semantic problem with the request (422).
func statusFor(err error) (int, string) {
	switch {
	case errors.Is(err, pqo.ErrCancelled):
		return http.StatusGatewayTimeout, "ErrCancelled"
	case errors.Is(err, pqo.ErrOptimizerTimeout):
		return http.StatusGatewayTimeout, "ErrOptimizerTimeout"
	case errors.Is(err, pqo.ErrBreakerOpen):
		// Checked before ErrUnavailable: degrade wraps the breaker error
		// inside ErrUnavailable when the cache is empty, and the more
		// specific sentinel wins.
		return http.StatusServiceUnavailable, "ErrBreakerOpen"
	case errors.Is(err, pqo.ErrUnavailable):
		return http.StatusServiceUnavailable, "ErrUnavailable"
	case errors.Is(err, pqo.ErrBudgetExhausted):
		return http.StatusServiceUnavailable, "ErrBudgetExhausted"
	case errors.Is(err, pqo.ErrNoPlan):
		return http.StatusUnprocessableEntity, "ErrNoPlan"
	case errors.Is(err, pqo.ErrOptimizerPanic):
		return http.StatusBadGateway, "ErrOptimizerPanic"
	default:
		return http.StatusInternalServerError, ""
	}
}

// acquireSlot claims an in-flight /plan slot, waiting up to
// Config.QueueWait. It reports whether the request may proceed; the
// caller must invoke release exactly once when it does.
func (s *Server) acquireSlot(ctx context.Context) (release func(), ok bool) {
	if s.sem == nil {
		return func() {}, true
	}
	release = func() { <-s.sem }
	select {
	case s.sem <- struct{}{}:
		return release, true
	default:
	}
	timer := time.NewTimer(s.cfg.QueueWait)
	defer timer.Stop()
	select {
	case s.sem <- struct{}{}:
		return release, true
	case <-timer.C:
	case <-ctx.Done():
	}
	s.shedTotal.Add(1)
	s.lastShed.Store(time.Now().UnixNano())
	return nil, false
}

// retryAfterSeconds is the whole-second Retry-After hint attached to every
// shed (429) and unavailable (503) response: the configured base, rounded
// up to at least 1s, plus uniform jitter of up to one base interval — so
// the value lies in [base, 2·base]. Without jitter a quorum-wide withhold
// (every node refusing at once during an epoch advance) would synchronize
// all clients onto the same retry instant and turn recovery into a
// stampede.
func retryAfterSeconds(base time.Duration) int {
	b := int(math.Ceil(base.Seconds()))
	if b < 1 {
		b = 1
	}
	return b + rand.Intn(b+1)
}

// setRetryAfter stamps the jittered Retry-After header.
func (s *Server) setRetryAfter(w http.ResponseWriter) {
	w.Header().Set("Retry-After", fmt.Sprintf("%d", retryAfterSeconds(s.cfg.RetryAfter)))
}

func (s *Server) shed(w http.ResponseWriter) {
	s.setRetryAfter(w)
	writeError(w, http.StatusTooManyRequests, "ErrOverloaded",
		errors.New("server: overloaded, request shed"))
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	var req PlanRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "ErrBadRequest", err)
		return
	}
	e := s.entry(req.Template)
	if e == nil {
		writeError(w, http.StatusNotFound, "ErrUnknownTemplate",
			fmt.Errorf("unknown template %q", req.Template))
		return
	}
	if len(req.SVector) != e.eng.Dimensions() {
		writeError(w, http.StatusBadRequest, "ErrBadRequest",
			fmt.Errorf("template %q takes %d selectivities, got %d",
				req.Template, e.eng.Dimensions(), len(req.SVector)))
		return
	}
	release, ok := s.acquireSlot(r.Context())
	if !ok {
		s.shed(w)
		return
	}
	defer release()
	ctx := r.Context()
	if s.cfg.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.RequestTimeout)
		defer cancel()
	}

	start := time.Now()
	dec, err := e.scr.Process(ctx, req.SVector)
	if err != nil {
		code, sentinel := statusFor(err)
		if code == http.StatusServiceUnavailable {
			s.setRetryAfter(w)
		}
		writeError(w, code, sentinel, err)
		return
	}
	resp := PlanResponse{
		Via:            dec.Via.String(),
		Optimized:      dec.Optimized,
		Shared:         dec.Shared,
		Degraded:       dec.Degraded,
		DegradedReason: string(dec.DegradedReason),
		Epoch:          dec.Epoch,
		NodeEpoch:      e.scr.CurrentStatsEpoch(),
		Plan:           dec.Plan.Plan.String(),
		Fingerprint:    dec.Plan.Fingerprint(),
	}
	// A decision in hand is worth serving even when the engine cannot
	// price it anymore (it may be the same fault that degraded the
	// decision): mark the cost unavailable rather than failing the
	// request after the hard part succeeded.
	if cost, err := e.eng.Recost(dec.Plan, req.SVector); err == nil {
		resp.EstimatedCost = cost
	} else {
		resp.CostUnavailable = true
	}
	latency := time.Since(start)
	e.hist[histIndex(dec)].observe(latency)
	resp.LatencyMicros = latency.Microseconds()
	writeJSON(w, resp)
}

// histIndex maps a decision to its latency histogram: degraded fallbacks
// and shared optimizer results are tracked separately from the check
// that produced them.
func histIndex(dec *pqo.Decision) int {
	if dec.Degraded {
		return histDegraded
	}
	if dec.Shared {
		return histShared
	}
	switch dec.Via {
	case pqo.ViaSelectivity:
		return histSelectivity
	case pqo.ViaCost:
		return histCost
	default:
		return histOptimizer
	}
}

// TemplateInfo is one row of GET /templates.
type TemplateInfo struct {
	Name       string `json:"name"`
	SQL        string `json:"sql,omitempty"`
	Dimensions int    `json:"dimensions"`
}

func (s *Server) handleTemplates(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	out := make([]TemplateInfo, 0, len(s.entries))
	for name, e := range s.entries {
		out = append(out, TemplateInfo{Name: name, SQL: e.sql, Dimensions: e.eng.Dimensions()})
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	writeJSON(w, out)
}

// StatsRow is one row of GET /stats: the paper's metrics plus the
// concurrency counters for one template.
type StatsRow struct {
	Template          string  `json:"template"`
	Instances         int64   `json:"instances"`
	NumOpt            int64   `json:"numOpt"`
	OptPct            float64 `json:"optPct"`
	SharedOptCalls    int64   `json:"sharedOptCalls"`
	ReadPathHits      int64   `json:"readPathHits"`
	WritePathHits     int64   `json:"writePathHits"`
	Plans             int     `json:"plans"`
	MemoryBytes       int64   `json:"memoryBytes"`
	Recosts           int64   `json:"getPlanRecosts"`
	Violations        int64   `json:"bcgViolations"`
	WriteLockWaitUS   int64   `json:"writeLockWaitMicros"`
	WriteDomains      int     `json:"writeDomains"`
	PublishTotal      int64   `json:"publishTotal"`
	PublishCoalesced  int64   `json:"publishCoalesced"`
	RecostCacheHits   int64   `json:"recostCacheHits"`
	RecostCacheMisses int64   `json:"recostCacheMisses"`
	Degraded          int64   `json:"degradedDecisions"`
	ReadPathErrors    int64   `json:"readPathErrors"`
	BreakerState      string  `json:"breakerState"`
	BreakerOpens      int64   `json:"breakerOpens"`
	InjectedFaults    int64   `json:"injectedFaults"`
	StatsEpoch        uint64  `json:"statsEpoch"`
	LaggingInstances  int64   `json:"laggingInstances"`
	RevalidatedPlans  int64   `json:"revalidatedPlans"`
	RevalDemoted      int64   `json:"revalDemoted"`
	RevalDropped      int64   `json:"revalDroppedInstances"`
	RevalFailed       int64   `json:"revalFailed"`
	EpochLagFallbacks int64   `json:"epochLagFallbacks"`
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	entries := make([]*entry, 0, len(s.entries))
	for _, e := range s.entries {
		entries = append(entries, e)
	}
	s.mu.RUnlock()
	out := make([]StatsRow, 0, len(entries))
	for _, e := range entries {
		st := e.scr.Stats()
		pct := 0.0
		if st.Instances > 0 {
			pct = float64(st.OptCalls) / float64(st.Instances) * 100
		}
		out = append(out, StatsRow{
			Template: e.name, Instances: st.Instances, NumOpt: st.OptCalls,
			OptPct: pct, SharedOptCalls: st.SharedOptCalls,
			ReadPathHits: st.ReadPathHits, WritePathHits: st.WritePathHits,
			Plans: st.CurPlans, MemoryBytes: st.MemoryBytes,
			Recosts: st.GetPlanRecosts, Violations: st.Violations,
			WriteLockWaitUS:   st.WriteLockWait.Microseconds(),
			WriteDomains:      st.WriteDomains,
			PublishTotal:      st.PublishTotal,
			PublishCoalesced:  st.PublishCoalesced,
			RecostCacheHits:   st.RecostCacheHits,
			RecostCacheMisses: st.RecostCacheMisses,
			Degraded:          st.DegradedDecisions,
			ReadPathErrors:    st.ReadPathErrors,
			BreakerState:      st.BreakerState.String(),
			BreakerOpens:      st.BreakerOpens,
			InjectedFaults:    st.InjectedFaults,
			StatsEpoch:        st.StatsEpoch,
			LaggingInstances:  st.LaggingInstances,
			RevalidatedPlans:  st.RevalidatedPlans,
			RevalDemoted:      st.RevalDemoted,
			RevalDropped:      st.RevalDroppedInstances,
			RevalFailed:       st.RevalFailed,
			EpochLagFallbacks: st.EpochLagFallbacks,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Template < out[j].Template })
	writeJSON(w, out)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.writeMetrics(w)
}

func (s *Server) handleSnapshot(w http.ResponseWriter, _ *http.Request) {
	saved, err := s.SaveSnapshots()
	if err != nil {
		if s.cfg.SnapshotDir == "" {
			writeError(w, http.StatusConflict, "ErrSnapshotsDisabled", err)
			return
		}
		writeError(w, http.StatusInternalServerError, "", err)
		return
	}
	writeJSON(w, map[string]int{"snapshots": saved})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// The connection is gone; nothing better to do than drop it.
		_ = err
	}
}
