// Package server is the HTTP plan-cache service around SCR: a production
// front-end for the paper's online PQO technique.
//
// A Server owns one SCR plan cache per registered query template and
// serves mixed read-mostly traffic concurrently — cache hits resolve
// under SCR's shared read lock, and concurrent identical misses share a
// single optimizer call. Endpoints:
//
//	POST /plan      {template, sVector} → plan decision + estimated cost
//	GET  /templates registered templates with SQL and dimensionality
//	GET  /stats     the paper's metrics per template (JSON)
//	GET  /metrics   Prometheus text format: counters + latency histograms
//	POST /snapshot  persist every plan cache via Export
//	GET  /healthz   liveness
//
// The server dogfoods the public pqo facade: apart from this package's
// own plumbing it depends only on repro/pqo.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/pqo"
)

// Config tunes a Server. The zero value is usable: a 5s request timeout,
// snapshots disabled, logging discarded.
type Config struct {
	// RequestTimeout bounds each /plan request, including any optimizer
	// call it triggers. Process observes cancellation via context; an
	// expired request returns 504 with an ErrCancelled-wrapped error.
	// Zero means DefaultRequestTimeout; negative disables the timeout.
	RequestTimeout time.Duration
	// SnapshotDir, when non-empty, enables plan-cache persistence:
	// Register restores <dir>/<template>.json when present, POST
	// /snapshot and Shutdown write them back.
	SnapshotDir string
	// Logger receives operational messages; nil discards them.
	Logger *log.Logger
}

// DefaultRequestTimeout bounds /plan requests when Config.RequestTimeout
// is zero.
const DefaultRequestTimeout = 5 * time.Second

// Server is an HTTP front-end over per-template SCR plan caches. All
// methods are safe for concurrent use.
type Server struct {
	cfg Config

	mu      sync.RWMutex
	entries map[string]*entry
	httpSrv *http.Server
}

// entry binds one registered template to its engine, plan cache and
// latency histograms (indexed by histOptimizer..histShared).
type entry struct {
	name string
	sql  string
	eng  pqo.Engine
	scr  *pqo.SCR
	hist [len(checkLabels)]latencyHist
}

// New returns an empty Server; add templates with Register.
func New(cfg Config) *Server {
	if cfg.RequestTimeout == 0 {
		cfg.RequestTimeout = DefaultRequestTimeout
	}
	return &Server{cfg: cfg, entries: make(map[string]*entry)}
}

// Register adds a template under name, backed by eng and the given SCR
// cache. sql is informational (shown by /templates; empty is fine for
// synthetic engines). If Config.SnapshotDir holds a snapshot for name it
// is restored into scr — a corrupt or incompatible snapshot is logged
// and ignored, never fatal.
func (s *Server) Register(name, sql string, eng pqo.Engine, scr *pqo.SCR) error {
	if name == "" {
		return errors.New("server: empty template name")
	}
	if eng == nil || scr == nil {
		return fmt.Errorf("server: template %q needs an engine and an SCR", name)
	}
	e := &entry{name: name, sql: sql, eng: eng, scr: scr}
	if s.cfg.SnapshotDir != "" {
		if data, err := os.ReadFile(s.snapshotPath(name)); err == nil {
			if err := scr.Import(data); err != nil {
				s.logf("snapshot for %s ignored: %v", name, err)
			} else {
				s.logf("restored plan cache for %s (%d plans)", name, scr.Stats().CurPlans)
			}
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.entries[name]; dup {
		return fmt.Errorf("server: template %q already registered", name)
	}
	s.entries[name] = e
	return nil
}

func (s *Server) entry(name string) *entry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.entries[name]
}

func (s *Server) snapshotPath(name string) string {
	return filepath.Join(s.cfg.SnapshotDir, name+".json")
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logger != nil {
		s.cfg.Logger.Printf(format, args...)
	}
}

// Handler returns the server's route table; usable directly with
// httptest or any http.Server.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/plan", s.handlePlan)
	mux.HandleFunc("/templates", s.handleTemplates)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/snapshot", s.handleSnapshot)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// Serve accepts connections on ln until Shutdown. It returns
// http.ErrServerClosed after a graceful shutdown.
func (s *Server) Serve(ln net.Listener) error {
	srv := &http.Server{Handler: s.Handler(), ReadHeaderTimeout: 10 * time.Second}
	if err := s.setServing(srv); err != nil {
		return err
	}
	return srv.Serve(ln)
}

// setServing installs srv as the active http.Server, failing if one is
// already installed.
func (s *Server) setServing(srv *http.Server) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.httpSrv != nil {
		return errors.New("server: already serving")
	}
	s.httpSrv = srv
	return nil
}

// takeServer detaches and returns the active http.Server, if any.
func (s *Server) takeServer() *http.Server {
	s.mu.Lock()
	defer s.mu.Unlock()
	srv := s.httpSrv
	s.httpSrv = nil
	return srv
}

// snapshotEntries copies the registered-template list under the read lock so
// slow per-entry work (snapshot export, file IO) runs without holding it.
func (s *Server) snapshotEntries() []*entry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	entries := make([]*entry, 0, len(s.entries))
	for _, e := range s.entries {
		entries = append(entries, e)
	}
	return entries
}

// ListenAndServe listens on addr and calls Serve.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Shutdown gracefully stops the server: it drains in-flight requests
// (bounded by ctx) and then persists every plan cache when snapshots are
// enabled, so restarts resume with warm caches.
func (s *Server) Shutdown(ctx context.Context) error {
	srv := s.takeServer()
	if srv != nil {
		if err := srv.Shutdown(ctx); err != nil {
			return err
		}
	}
	if s.cfg.SnapshotDir == "" {
		return nil
	}
	_, err := s.SaveSnapshots()
	return err
}

// SaveSnapshots exports every registered plan cache to
// Config.SnapshotDir and returns how many were written.
func (s *Server) SaveSnapshots() (int, error) {
	if s.cfg.SnapshotDir == "" {
		return 0, errors.New("server: snapshots disabled (no SnapshotDir)")
	}
	if err := os.MkdirAll(s.cfg.SnapshotDir, 0o755); err != nil {
		return 0, err
	}
	entries := s.snapshotEntries()
	saved := 0
	for _, e := range entries {
		data, err := e.scr.Export()
		if err != nil {
			return saved, fmt.Errorf("server: exporting %s: %w", e.name, err)
		}
		if err := os.WriteFile(s.snapshotPath(e.name), data, 0o644); err != nil {
			return saved, err
		}
		saved++
	}
	return saved, nil
}

// PlanRequest is the body of POST /plan.
type PlanRequest struct {
	Template string    `json:"template"`
	SVector  []float64 `json:"sVector"`
}

// PlanResponse is the body of a successful POST /plan.
type PlanResponse struct {
	Via           string  `json:"via"`
	Optimized     bool    `json:"optimized"`
	Shared        bool    `json:"shared,omitempty"`
	EstimatedCost float64 `json:"estimatedCost"`
	Plan          string  `json:"plan"`
	Fingerprint   string  `json:"fingerprint"`
	LatencyMicros int64   `json:"latencyMicros"`
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req PlanRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	e := s.entry(req.Template)
	if e == nil {
		http.Error(w, fmt.Sprintf("unknown template %q", req.Template), http.StatusNotFound)
		return
	}
	if len(req.SVector) != e.eng.Dimensions() {
		http.Error(w, fmt.Sprintf("template %q takes %d selectivities, got %d",
			req.Template, e.eng.Dimensions(), len(req.SVector)), http.StatusBadRequest)
		return
	}
	ctx := r.Context()
	if s.cfg.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.RequestTimeout)
		defer cancel()
	}

	start := time.Now()
	dec, err := e.scr.Process(ctx, req.SVector)
	if err != nil {
		if errors.Is(err, pqo.ErrCancelled) {
			http.Error(w, err.Error(), http.StatusGatewayTimeout)
		} else {
			http.Error(w, err.Error(), http.StatusBadRequest)
		}
		return
	}
	cost, err := e.eng.Recost(dec.Plan, req.SVector)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	latency := time.Since(start)
	e.hist[histIndex(dec)].observe(latency)

	writeJSON(w, PlanResponse{
		Via:           dec.Via.String(),
		Optimized:     dec.Optimized,
		Shared:        dec.Shared,
		EstimatedCost: cost,
		Plan:          dec.Plan.Plan.String(),
		Fingerprint:   dec.Plan.Fingerprint(),
		LatencyMicros: latency.Microseconds(),
	})
}

// histIndex maps a decision to its latency histogram: shared optimizer
// results are tracked separately from the check that produced them.
func histIndex(dec *pqo.Decision) int {
	if dec.Shared {
		return histShared
	}
	switch dec.Via {
	case pqo.ViaSelectivity:
		return histSelectivity
	case pqo.ViaCost:
		return histCost
	default:
		return histOptimizer
	}
}

// TemplateInfo is one row of GET /templates.
type TemplateInfo struct {
	Name       string `json:"name"`
	SQL        string `json:"sql,omitempty"`
	Dimensions int    `json:"dimensions"`
}

func (s *Server) handleTemplates(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	out := make([]TemplateInfo, 0, len(s.entries))
	for name, e := range s.entries {
		out = append(out, TemplateInfo{Name: name, SQL: e.sql, Dimensions: e.eng.Dimensions()})
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	writeJSON(w, out)
}

// StatsRow is one row of GET /stats: the paper's metrics plus the
// concurrency counters for one template.
type StatsRow struct {
	Template          string  `json:"template"`
	Instances         int64   `json:"instances"`
	NumOpt            int64   `json:"numOpt"`
	OptPct            float64 `json:"optPct"`
	SharedOptCalls    int64   `json:"sharedOptCalls"`
	ReadPathHits      int64   `json:"readPathHits"`
	WritePathHits     int64   `json:"writePathHits"`
	Plans             int     `json:"plans"`
	MemoryBytes       int64   `json:"memoryBytes"`
	Recosts           int64   `json:"getPlanRecosts"`
	Violations        int64   `json:"bcgViolations"`
	ReadLockWaitUS    int64   `json:"readLockWaitMicros"`
	WriteLockWaitUS   int64   `json:"writeLockWaitMicros"`
	RecostCacheHits   int64   `json:"recostCacheHits"`
	RecostCacheMisses int64   `json:"recostCacheMisses"`
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	entries := make([]*entry, 0, len(s.entries))
	for _, e := range s.entries {
		entries = append(entries, e)
	}
	s.mu.RUnlock()
	out := make([]StatsRow, 0, len(entries))
	for _, e := range entries {
		st := e.scr.Stats()
		pct := 0.0
		if st.Instances > 0 {
			pct = float64(st.OptCalls) / float64(st.Instances) * 100
		}
		out = append(out, StatsRow{
			Template: e.name, Instances: st.Instances, NumOpt: st.OptCalls,
			OptPct: pct, SharedOptCalls: st.SharedOptCalls,
			ReadPathHits: st.ReadPathHits, WritePathHits: st.WritePathHits,
			Plans: st.CurPlans, MemoryBytes: st.MemoryBytes,
			Recosts: st.GetPlanRecosts, Violations: st.Violations,
			ReadLockWaitUS:    st.ReadLockWait.Microseconds(),
			WriteLockWaitUS:   st.WriteLockWait.Microseconds(),
			RecostCacheHits:   st.RecostCacheHits,
			RecostCacheMisses: st.RecostCacheMisses,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Template < out[j].Template })
	writeJSON(w, out)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.writeMetrics(w)
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	saved, err := s.SaveSnapshots()
	if err != nil {
		code := http.StatusInternalServerError
		if s.cfg.SnapshotDir == "" {
			code = http.StatusConflict
		}
		http.Error(w, err.Error(), code)
		return
	}
	writeJSON(w, map[string]int{"snapshots": saved})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// The connection is gone; nothing better to do than drop it.
		_ = err
	}
}
