package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/server"
)

// Advance assigns the next statistics generation and pushes it to every
// non-quarantined member in parallel. Before assigning, it enforces the
// skew bound: every non-quarantined member must have acknowledged
// generation next−SkewBound (with the default bound of 1, that is the
// current generation — adjacent generations only). If a member is still
// behind after a full push round, Advance returns ErrWithheld without
// assigning; retry once the member catches up or quarantines out of the
// quorum.
//
// Push failures after assignment do not fail Advance — they are recorded
// per member (and eventually quarantine it); the next Advance's withhold
// check is what stops the fleet from running away from a struggling node.
func (c *Coordinator) Advance(ctx context.Context, p Payload) (uint64, error) {
	if err := p.validate(); err != nil {
		return 0, err
	}
	if err := c.converge(ctx); err != nil {
		return 0, err
	}

	id, targets := c.assign(p)
	c.logf("cluster: assigned epoch %d, pushing to %d member(s)", id, len(targets))

	c.pushAll(ctx, targets, id)
	return id, nil
}

// assign records p as the next generation and snapshots the push targets.
func (c *Coordinator) assign(p Payload) (uint64, []string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.epoch++
	id := c.epoch
	c.history[id] = p
	return id, c.pushTargetsLocked()
}

// converge brings every non-quarantined member up to the skew floor for
// the next generation, or reports ErrWithheld.
func (c *Coordinator) converge(ctx context.Context) error {
	floor, target, behind := c.skewFloor(nil)
	if len(behind) == 0 {
		return nil
	}

	// One catch-up round outside the lock; failures count toward
	// quarantine, which itself unblocks the quorum.
	c.pushAll(ctx, behind, target)

	if _, _, still := c.skewFloor(behind); len(still) > 0 {
		return fmt.Errorf("%w: %s behind generation %d",
			ErrWithheld, strings.Join(still, ", "), floor)
	}
	return nil
}

// skewFloor computes the acknowledgment floor the next generation
// requires and the members (restricted to urls when non-nil, the whole
// fleet otherwise) that are non-quarantined yet still below it.
func (c *Coordinator) skewFloor(urls []string) (floor, target uint64, behind []string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if next := c.epoch + 1; next > c.cfg.SkewBound {
		floor = next - c.cfg.SkewBound
	}
	if urls == nil {
		urls = c.order
	}
	for _, url := range urls {
		n := c.nodes[url]
		if !n.quarantined && n.acked < floor {
			behind = append(behind, url)
		}
	}
	return floor, c.epoch, behind
}

// pushTargetsLocked returns the members that should receive pushes.
// Caller holds c.mu.
func (c *Coordinator) pushTargetsLocked() []string {
	out := make([]string, 0, len(c.order))
	for _, url := range c.order {
		if !c.nodes[url].quarantined {
			out = append(out, url)
		}
	}
	return out
}

// pushAll replays every member in targets up to generation target,
// in parallel, and waits for all of them.
func (c *Coordinator) pushAll(ctx context.Context, targets []string, target uint64) {
	var wg sync.WaitGroup
	for _, url := range targets {
		wg.Add(1)
		go func(url string) {
			defer wg.Done()
			if err := c.pushNode(ctx, url, target); err != nil && ctx.Err() == nil {
				c.logf("cluster: push to %s failed: %v", url, err)
			}
		}(url)
	}
	wg.Wait()
}

// pushNode replays, in order, every generation the member is missing up to
// target. Deliveries retry inside pushGeneration; an ErrEpochGap response
// resynchronizes the loop from the epoch the member reported (our record
// of it can be stale — it may have restarted from a snapshot, or a prior
// ack may have been lost). Never called with c.mu held.
func (c *Coordinator) pushNode(ctx context.Context, url string, target uint64) error {
	if !c.beginPush(url) {
		// Another push to this member is in flight (e.g. a probe-driven
		// catch-up racing an Advance); it will deliver the same prefix.
		return nil
	}
	defer c.endPush(url)

	gen := c.ackedEpoch(url) + 1
	resyncs := 0
	for gen <= target {
		p, ok := c.payload(gen)
		if !ok {
			err := fmt.Errorf("cluster: no recorded payload for generation %d (coordinator restarted?)", gen)
			c.recordFailure(url, err)
			return err
		}
		nodeEp, err := c.pushGeneration(ctx, url, gen, p)
		switch {
		case err == nil:
			if nodeEp < gen {
				// A 200 with an older epoch violates the member's
				// monotonicity contract; bail rather than spin.
				err = fmt.Errorf("cluster: member %s acked epoch %d below pushed %d", url, nodeEp, gen)
				c.recordFailure(url, err)
				return err
			}
			c.recordAck(url, nodeEp)
			gen = nodeEp + 1
		case errors.Is(err, errEpochGap):
			resyncs++
			if resyncs > 2 || nodeEp+1 >= gen {
				// The gap doesn't close by restarting earlier: give up
				// this round.
				c.recordFailure(url, err)
				return err
			}
			c.recordAck(url, nodeEp)
			gen = nodeEp + 1
		default:
			c.recordFailure(url, err)
			return err
		}
	}
	return nil
}

// pushGeneration delivers one generation to one member with retry and
// jittered exponential backoff. On success it returns the member's
// installed epoch (>= id); on an epoch-gap refusal it returns the member's
// reported epoch wrapped in errEpochGap.
func (c *Coordinator) pushGeneration(ctx context.Context, url string, id uint64, p Payload) (uint64, error) {
	var lastErr error
	for attempt := 1; attempt <= c.cfg.RetryLimit; attempt++ {
		if attempt > 1 {
			c.pushRetries.Add(1)
			if err := sleepCtx(ctx, c.backoff(attempt-1)); err != nil {
				return 0, err
			}
		}
		start := time.Now()
		nodeEp, err := c.rpcPushEpoch(ctx, url, id, p)
		if err == nil {
			c.ackHist.observe(time.Since(start))
			return nodeEp, nil
		}
		if errors.Is(err, errEpochGap) {
			// Not a transport failure — the member answered. Let the
			// caller resynchronize instead of burning retries.
			return nodeEp, err
		}
		lastErr = err
		if ctx.Err() != nil {
			return 0, ctx.Err()
		}
	}
	return 0, fmt.Errorf("cluster: epoch %d to %s failed after %d attempts: %w",
		id, url, c.cfg.RetryLimit, lastErr)
}

// Probe checks every member's /v1/healthz in parallel, records
// reachability and reported epochs, and starts catch-up replays for
// reachable members that are behind — including quarantined ones, which is
// how they rejoin. It returns the post-probe member view.
func (c *Coordinator) Probe(ctx context.Context) []MemberStatus {
	c.mu.Lock()
	targets := make([]string, len(c.order))
	copy(targets, c.order)
	c.mu.Unlock()

	var wg sync.WaitGroup
	for _, url := range targets {
		wg.Add(1)
		go func(url string) {
			defer wg.Done()
			c.probeNode(ctx, url)
		}(url)
	}
	wg.Wait()
	return c.Members()
}

// probeNode probes one member and, when it is reachable but behind,
// replays its missed generations.
func (c *Coordinator) probeNode(ctx context.Context, url string) {
	h, err := c.rpcHealthz(ctx, url)
	if err != nil {
		c.recordFailure(url, fmt.Errorf("probe: %w", err))
		return
	}

	c.mu.Lock()
	n := c.nodes[url]
	n.health = h.Status
	if h.Epoch > n.acked {
		n.acked = h.Epoch
	}
	if h.Epoch > c.epoch {
		// The member is ahead of us — this coordinator restarted with a
		// stale InitialEpoch. Adopt the fleet's generation; the history
		// before it is unknown, but nothing below it needs replaying.
		c.logf("cluster: adopting epoch %d reported by %s (was %d)", h.Epoch, url, c.epoch)
		c.epoch = h.Epoch
	}
	behind := n.acked < c.epoch
	quarantined := n.quarantined
	target := c.epoch
	if !behind && !quarantined {
		// A responsive, caught-up member is healthy regardless of past
		// failures.
		n.failures = 0
		n.lastErr = ""
	}
	c.mu.Unlock()

	if behind || quarantined {
		// Reachable but behind: catch up. For a quarantined member this
		// is the re-admission path — a completed replay walks it
		// rejoining → healthy in recordAck.
		if err := c.pushNode(ctx, url, target); err != nil && ctx.Err() == nil {
			c.logf("cluster: catch-up for %s failed: %v", url, err)
		}
	}
}

// Status probes the fleet and additionally rolls up each member's
// /v1/admin/epochs revalidation progress for its current generation.
func (c *Coordinator) Status(ctx context.Context) []MemberStatus {
	members := c.Probe(ctx)
	var wg sync.WaitGroup
	for i := range members {
		if members[i].Health == "" {
			continue // unreachable this round; nothing to roll up
		}
		wg.Add(1)
		go func(m *MemberStatus) {
			defer wg.Done()
			st, err := c.rpcClusterStatus(ctx, m.URL)
			if err == nil {
				m.ReportedEpoch = st.Epoch
				m.ReportedClusterView = st.ClusterEpoch
				m.LaggingInstances = st.LaggingInstances
			}
			epochs, err := c.rpcAdminEpochs(ctx, m.URL)
			if err != nil {
				return
			}
			for _, rec := range epochs {
				if rec.Current && len(rec.Revalidation) > 0 {
					m.Revalidation = rec.Revalidation
				}
			}
		}(&members[i])
	}
	wg.Wait()
	return members
}

// RPC helpers. Each issues exactly one HTTP request bounded by
// Config.RPCTimeout, stamps it with the coordinator's cluster epoch, and
// is never called with c.mu held (lockdiscipline enforces this by name).

// rpcPushEpoch POSTs one generation to a member's /v1/cluster/epoch and
// returns the member's resulting epoch. A 409 ErrEpochGap refusal returns
// the member's reported epoch wrapped in errEpochGap.
func (c *Coordinator) rpcPushEpoch(ctx context.Context, base string, id uint64, p Payload) (uint64, error) {
	body, err := json.Marshal(server.ClusterEpochRequest{
		Epoch: id, Deltas: p.Deltas, ResampleSeed: p.ResampleSeed, Workers: c.cfg.Workers,
	})
	if err != nil {
		return 0, err
	}
	rctx, cancel := context.WithTimeout(ctx, c.cfg.RPCTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodPost,
		base+server.APIVersion+"/cluster/epoch", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	c.stampClusterEpoch(req)
	resp, err := c.client.Do(req)
	if err != nil {
		return 0, err
	}
	defer closeBody(resp)
	nodeEp := headerEpoch(resp)
	switch resp.StatusCode {
	case http.StatusOK:
		var out server.ClusterEpochResponse
		if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&out); err != nil {
			return 0, fmt.Errorf("cluster: decoding push response from %s: %w", base, err)
		}
		return out.Epoch, nil
	case http.StatusConflict:
		e := decodeErrorEnvelope(resp.Body)
		if e.Sentinel == "ErrEpochGap" {
			return nodeEp, fmt.Errorf("%w: %s", errEpochGap, e.Error)
		}
		return nodeEp, fmt.Errorf("cluster: %s refused epoch %d: %s (%s)", base, id, e.Error, e.Sentinel)
	default:
		e := decodeErrorEnvelope(resp.Body)
		return nodeEp, fmt.Errorf("cluster: pushing epoch %d to %s: HTTP %d %s",
			id, base, resp.StatusCode, e.Error)
	}
}

// rpcHealthz GETs a member's /v1/healthz.
func (c *Coordinator) rpcHealthz(ctx context.Context, base string) (server.HealthStatus, error) {
	var h server.HealthStatus
	err := c.rpcGetJSON(ctx, base, server.APIVersion+"/healthz", &h)
	return h, err
}

// rpcClusterStatus GETs a member's /v1/cluster/status.
func (c *Coordinator) rpcClusterStatus(ctx context.Context, base string) (server.ClusterStatusResponse, error) {
	var st server.ClusterStatusResponse
	err := c.rpcGetJSON(ctx, base, server.APIVersion+"/cluster/status", &st)
	return st, err
}

// rpcAdminEpochs GETs a member's /v1/admin/epochs log.
func (c *Coordinator) rpcAdminEpochs(ctx context.Context, base string) ([]server.EpochInfo, error) {
	var out []server.EpochInfo
	err := c.rpcGetJSON(ctx, base, server.APIVersion+"/admin/epochs", &out)
	return out, err
}

// rpcGetJSON performs one bounded GET and decodes a 200 JSON body.
func (c *Coordinator) rpcGetJSON(ctx context.Context, base, path string, out any) error {
	rctx, cancel := context.WithTimeout(ctx, c.cfg.RPCTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodGet, base+path, nil)
	if err != nil {
		return err
	}
	c.stampClusterEpoch(req)
	resp, err := c.client.Do(req)
	if err != nil {
		return err
	}
	defer closeBody(resp)
	if resp.StatusCode != http.StatusOK {
		e := decodeErrorEnvelope(resp.Body)
		return fmt.Errorf("cluster: GET %s%s: HTTP %d %s", base, path, resp.StatusCode, e.Error)
	}
	return json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(out)
}

// stampClusterEpoch attaches the Pqo-Cluster-Epoch header so every RPC —
// even a probe of a partitioned-but-reachable member — disseminates the
// fleet's current generation.
func (c *Coordinator) stampClusterEpoch(req *http.Request) {
	req.Header.Set(server.ClusterEpochHeader, strconv.FormatUint(c.Epoch(), 10))
}

// headerEpoch parses the member's Pqo-Node-Epoch response header (0 when
// absent or malformed).
func headerEpoch(resp *http.Response) uint64 {
	v := resp.Header.Get(server.NodeEpochHeader)
	if v == "" {
		return 0
	}
	id, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		return 0
	}
	return id
}

// errorEnvelope mirrors the server's uniform error body.
type errorEnvelope struct {
	Error    string `json:"error"`
	Sentinel string `json:"sentinel"`
}

func decodeErrorEnvelope(r io.Reader) errorEnvelope {
	var e errorEnvelope
	if err := json.NewDecoder(io.LimitReader(r, 1<<16)).Decode(&e); err != nil || e.Error == "" {
		e.Error = "(unparseable error body)"
	}
	return e
}

// closeBody drains and closes so the transport can reuse the connection.
func closeBody(resp *http.Response) {
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	_ = resp.Body.Close()
}
