package cluster

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/server"
	"repro/pqo"
)

// gate wraps a member's handler with a switchable outage: while down, every
// request answers 500 — a member that is reachable at the TCP level but
// persistently failing, the shape that must lead to quarantine.
type gate struct {
	down atomic.Bool
	h    http.Handler
}

func (g *gate) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if g.down.Load() {
		http.Error(w, `{"error":"injected outage","sentinel":"ErrInjected"}`, http.StatusInternalServerError)
		return
	}
	g.h.ServeHTTP(w, r)
}

// newMember builds a full member node: a real TPCH system with one
// registered template behind the versioned HTTP surface.
func newMember(t *testing.T) (*httptest.Server, *server.Server, *gate) {
	t.Helper()
	sys, err := pqo.NewSystem(pqo.TPCH(0.01), 3)
	if err != nil {
		t.Fatal(err)
	}
	s := server.New(server.Config{})
	tpl, err := pqo.ParseTemplate("q",
		`SELECT * FROM lineitem WHERE lineitem.l_shipdate <= ?0 AND lineitem.l_quantity <= ?1`, sys.Cat)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := sys.EngineFor(tpl)
	if err != nil {
		t.Fatal(err)
	}
	scr, err := pqo.New(eng, pqo.WithLambda(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Register("q", tpl.SQL(), eng, scr); err != nil {
		t.Fatal(err)
	}
	s.SetSystem(sys)
	g := &gate{h: s.Handler()}
	ts := httptest.NewServer(g)
	t.Cleanup(ts.Close)
	return ts, s, g
}

// fastConfig returns a Config tuned for tests: tight timeouts, tiny
// backoff, deterministic jitter.
func fastConfig(members ...string) Config {
	return Config{
		Members:     members,
		RPCTimeout:  5 * time.Second,
		BackoffBase: time.Millisecond,
		BackoffMax:  5 * time.Millisecond,
		Seed:        7,
	}
}

func seedPayload(seed int64) Payload {
	s := seed
	return Payload{ResampleSeed: &s}
}

// TestAdvancePropagatesToAllMembers drives two generations — a full
// resample and a per-column delta — through a three-member fleet and
// asserts every member installs both, in order, and reports zero skew.
func TestAdvancePropagatesToAllMembers(t *testing.T) {
	var urls []string
	var servers []*server.Server
	for i := 0; i < 3; i++ {
		ts, s, _ := newMember(t)
		urls = append(urls, ts.URL)
		servers = append(servers, s)
	}
	c, err := New(fastConfig(urls...))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	id, err := c.Advance(ctx, seedPayload(101))
	if err != nil || id != 2 {
		t.Fatalf("first advance = (%d, %v), want (2, nil)", id, err)
	}
	id, err = c.Advance(ctx, Payload{Deltas: []pqo.HistogramDelta{{
		Table: "lineitem", Column: "l_quantity", Values: []float64{1, 2, 3, 4, 5, 6, 7, 8},
	}}})
	if err != nil || id != 3 {
		t.Fatalf("second advance = (%d, %v), want (3, nil)", id, err)
	}

	for i, m := range c.Members() {
		if m.State != StateHealthy || m.Acked != 3 {
			t.Errorf("member %d = %+v, want healthy at 3", i, m)
		}
	}
	// Each member's own status endpoint agrees: installed generation 3,
	// observed cluster generation 3, zero skew.
	for i, ts := range urls {
		st, err := c.rpcClusterStatus(ctx, ts)
		if err != nil {
			t.Fatalf("member %d status: %v", i, err)
		}
		if st.Epoch != 3 || st.ClusterEpoch != 3 || st.Skew != 0 {
			t.Errorf("member %d status = %+v, want epoch 3, cluster 3, skew 0", i, st)
		}
	}
	// The epoch log records the installs as cluster-initiated.
	epochs, err := c.rpcAdminEpochs(ctx, urls[0])
	if err != nil {
		t.Fatal(err)
	}
	var reasons []string
	for _, rec := range epochs {
		reasons = append(reasons, rec.Reason)
	}
	if got := strings.Join(reasons, ","); got != "initial,cluster-resample,cluster-delta" {
		t.Errorf("epoch log reasons = %s", got)
	}
	_ = servers
}

// TestAdvanceWithheldUntilMemberCatchesUp asserts the skew bound: with a
// member failing and quarantine disabled (huge threshold), the coordinator
// assigns at most one generation beyond it and withholds the next.
func TestAdvanceWithheldUntilMemberCatchesUp(t *testing.T) {
	tsA, _, _ := newMember(t)
	tsB, _, gB := newMember(t)
	cfg := fastConfig(tsA.URL, tsB.URL)
	cfg.QuarantineThreshold = 1000
	cfg.RetryLimit = 2
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	gB.down.Store(true)
	// Assigning generation 2 is allowed — every member has generation 1,
	// which is within the default bound of the new generation.
	if id, err := c.Advance(ctx, seedPayload(50)); err != nil || id != 2 {
		t.Fatalf("advance with lagging member = (%d, %v), want (2, nil)", id, err)
	}
	// Generation 3 must be withheld: B never acknowledged 2.
	if _, err := c.Advance(ctx, seedPayload(51)); !errors.Is(err, ErrWithheld) {
		t.Fatalf("second advance error = %v, want ErrWithheld", err)
	}
	if got := c.Epoch(); got != 2 {
		t.Fatalf("epoch after withheld advance = %d, want 2", got)
	}
	var lagging bool
	for _, m := range c.Members() {
		if m.URL == tsB.URL && m.State == StateLagging {
			lagging = true
		}
	}
	if !lagging {
		t.Errorf("member B not reported skew-lagging: %+v", c.Members())
	}

	// Heal B: the withheld generation goes through.
	gB.down.Store(false)
	if id, err := c.Advance(ctx, seedPayload(51)); err != nil || id != 3 {
		t.Fatalf("advance after heal = (%d, %v), want (3, nil)", id, err)
	}
	for _, m := range c.Members() {
		if m.State != StateHealthy || m.Acked != 3 {
			t.Errorf("member %s = %+v, want healthy at 3", m.URL, m)
		}
	}
}

// TestQuarantineAndRejoin walks the full degradation ladder: a
// persistently failing member is quarantined (and stops gating the
// quorum), then rejoins through a probe-driven catch-up replay of every
// generation it missed, in order.
func TestQuarantineAndRejoin(t *testing.T) {
	tsA, _, _ := newMember(t)
	tsB, _, _ := newMember(t)
	tsC, _, gC := newMember(t)
	cfg := fastConfig(tsA.URL, tsB.URL, tsC.URL)
	cfg.QuarantineThreshold = 2
	cfg.RetryLimit = 2
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	gC.down.Store(true)
	if id, err := c.Advance(ctx, seedPayload(60)); err != nil || id != 2 {
		t.Fatalf("advance 1 = (%d, %v)", id, err)
	}
	// The converge round for generation 3 fails C a second time, tripping
	// quarantine — which removes it from the quorum, so the advance goes
	// through instead of being withheld.
	if id, err := c.Advance(ctx, seedPayload(61)); err != nil || id != 3 {
		t.Fatalf("advance 2 = (%d, %v)", id, err)
	}
	if q := c.Quarantined(); len(q) != 1 || q[0] != tsC.URL {
		t.Fatalf("quarantined = %v, want [%s]", q, tsC.URL)
	}
	// Further advances proceed without C.
	if id, err := c.Advance(ctx, seedPayload(62)); err != nil || id != 4 {
		t.Fatalf("advance 3 = (%d, %v)", id, err)
	}

	// Heal C; a probe re-admits it by replaying generations 2..4.
	gC.down.Store(false)
	c.Probe(ctx)
	if q := c.Quarantined(); len(q) != 0 {
		t.Fatalf("still quarantined after heal+probe: %v", q)
	}
	for _, m := range c.Members() {
		if m.State != StateHealthy || m.Acked != 4 {
			t.Errorf("member %s = %+v, want healthy at 4", m.URL, m)
		}
	}
	// C really holds generation 4 (not just the coordinator's belief),
	// and its install log shows the replayed generations in order.
	st, err := c.rpcClusterStatus(ctx, tsC.URL)
	if err != nil {
		t.Fatal(err)
	}
	if st.Epoch != 4 || st.Skew != 0 {
		t.Errorf("rejoined member status = %+v, want epoch 4 skew 0", st)
	}
	epochs, err := c.rpcAdminEpochs(ctx, tsC.URL)
	if err != nil {
		t.Fatal(err)
	}
	var ids []uint64
	for _, rec := range epochs {
		ids = append(ids, rec.Epoch)
	}
	if len(ids) != 4 {
		t.Fatalf("rejoined member epoch log = %v, want 1..4", ids)
	}
	for i, id := range ids {
		if id != uint64(i+1) {
			t.Fatalf("rejoined member installed out of order: %v", ids)
		}
	}
}

// TestPushSurvivesLossyTransport runs advances through a faulty transport
// that drops requests, drops responses (forcing duplicate deliveries into
// the idempotent member endpoint) and injects latency; the retry loop must
// still converge, and the retry counter must show it worked for it.
func TestPushSurvivesLossyTransport(t *testing.T) {
	var urls []string
	for i := 0; i < 2; i++ {
		ts, _, _ := newMember(t)
		urls = append(urls, ts.URL)
	}
	inj := faultinject.New(99).Set(faultinject.SiteTransport, faultinject.Point{
		Rate:  0.4,
		Fault: faultinject.Fault{Drop: true},
	})
	cfg := fastConfig(urls...)
	cfg.Client = &http.Client{Transport: faultinject.NewTransport(http.DefaultTransport, inj)}
	cfg.RetryLimit = 12
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for gen := uint64(2); gen <= 4; gen++ {
		id, err := c.Advance(ctx, seedPayload(int64(70+gen)))
		if err != nil || id != gen {
			t.Fatalf("advance to %d = (%d, %v)", gen, id, err)
		}
	}
	for _, m := range c.Members() {
		if m.State != StateHealthy || m.Acked != 4 {
			t.Errorf("member %s = %+v, want healthy at 4", m.URL, m)
		}
	}
	if inj.Injected() == 0 {
		t.Error("no transport faults injected — the run proved nothing")
	}
	if c.pushRetries.Load() == 0 {
		t.Error("lossy transport produced zero retries")
	}
}

// TestStaleCoordinatorCannotReplay: a coordinator started ahead of the
// fleet (history it does not have) must fail the push rather than invent
// generations, and the member must stay where it was.
func TestStaleCoordinatorCannotReplay(t *testing.T) {
	ts, _, _ := newMember(t)
	cfg := fastConfig(ts.URL)
	cfg.InitialEpoch = 5
	cfg.QuarantineThreshold = 1000
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if id, err := c.Advance(ctx, seedPayload(80)); err != nil || id != 6 {
		t.Fatalf("advance = (%d, %v), want (6, nil): assignment itself is not blocked", id, err)
	}
	// The push cannot succeed: the member is at 1 and generations 2..5
	// are not in this coordinator's history.
	st, err := c.rpcClusterStatus(ctx, ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if st.Epoch != 1 {
		t.Errorf("member advanced to %d through a gap", st.Epoch)
	}
	m := c.Members()[0]
	if m.Failures == 0 || !strings.Contains(m.LastErr, "no recorded payload") {
		t.Errorf("member record = %+v, want a recorded replay failure", m)
	}
}

// TestBackoffBounds pins the jittered exponential backoff envelope:
// attempt k waits in [half, full] of BackoffBase·2^(k-1), capped at
// BackoffMax.
func TestBackoffBounds(t *testing.T) {
	cfg := fastConfig("http://unused")
	cfg.BackoffBase = 10 * time.Millisecond
	cfg.BackoffMax = 80 * time.Millisecond
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= 6; k++ {
		want := cfg.BackoffBase << (k - 1)
		if want > cfg.BackoffMax {
			want = cfg.BackoffMax
		}
		for i := 0; i < 200; i++ {
			got := c.backoff(k)
			if got < want/2 || got > want {
				t.Fatalf("backoff(%d) = %v, want within [%v, %v]", k, got, want/2, want)
			}
		}
	}
}

// TestPayloadValidation rejects ambiguous generations before any RPC.
func TestPayloadValidation(t *testing.T) {
	c, err := New(fastConfig("http://unused"))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := c.Advance(ctx, Payload{}); err == nil {
		t.Error("empty payload accepted")
	}
	s := int64(1)
	if _, err := c.Advance(ctx, Payload{ResampleSeed: &s, Deltas: []pqo.HistogramDelta{{}}}); err == nil {
		t.Error("double payload accepted")
	}
	if c.Epoch() != 1 {
		t.Errorf("invalid payloads moved the epoch to %d", c.Epoch())
	}
}

// TestNewRejectsBadConfigs covers constructor validation.
func TestNewRejectsBadConfigs(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("no members accepted")
	}
	if _, err := New(Config{Members: []string{"http://a", "http://a"}}); err == nil {
		t.Error("duplicate members accepted")
	}
	if _, err := New(Config{Members: []string{""}}); err == nil {
		t.Error("empty member URL accepted")
	}
}
