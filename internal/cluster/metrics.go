package cluster

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"
)

// ackBuckets is the number of exponential ack-latency buckets: bucket i
// counts acks with latency ≤ 1ms·2^i, spanning 1ms to ~16s before the
// overflow bucket — epoch pushes are RPCs plus a member-side install, so
// millisecond resolution is the interesting range.
const ackBuckets = 15

// latencyHist is a lock-free exponential-bucket histogram for epoch ack
// latencies (same shape as the server's request histogram, coarser base).
type latencyHist struct {
	counts   [ackBuckets]atomic.Int64
	overflow atomic.Int64
	count    atomic.Int64
	sumNanos atomic.Int64
}

func (h *latencyHist) observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.count.Add(1)
	h.sumNanos.Add(d.Nanoseconds())
	ms := d.Milliseconds()
	for i := 0; i < ackBuckets; i++ {
		if ms <= 1<<i {
			h.counts[i].Add(1)
			return
		}
	}
	h.overflow.Add(1)
}

// WriteMetrics renders the coordinator's fleet metrics in Prometheus text
// exposition format: the assigned epoch, the worst cross-node skew, push
// retries, quarantined-member count, per-member acked generations, and the
// ack-latency histogram.
func (c *Coordinator) WriteMetrics(w io.Writer) {
	c.mu.Lock()
	epoch := c.epoch
	type row struct {
		url   string
		acked uint64
		state NodeState
	}
	rows := make([]row, 0, len(c.order))
	var quarantined int64
	var maxSkew uint64
	for _, url := range c.order {
		n := c.nodes[url]
		st := n.state(epoch, c.cfg.SkewBound)
		rows = append(rows, row{url, n.acked, st})
		if n.quarantined {
			quarantined++
			continue
		}
		if skew := epoch - min64(n.acked, epoch); skew > maxSkew {
			maxSkew = skew
		}
	}
	c.mu.Unlock()

	fmt.Fprintln(w, "# HELP pqo_cluster_epoch Highest statistics generation the coordinator has assigned.")
	fmt.Fprintln(w, "# TYPE pqo_cluster_epoch gauge")
	fmt.Fprintf(w, "pqo_cluster_epoch %d\n", epoch)

	fmt.Fprintln(w, "# HELP pqo_cluster_epoch_skew Worst generation lag across non-quarantined members.")
	fmt.Fprintln(w, "# TYPE pqo_cluster_epoch_skew gauge")
	fmt.Fprintf(w, "pqo_cluster_epoch_skew %d\n", maxSkew)

	fmt.Fprintln(w, "# HELP pqo_cluster_push_retries_total Epoch push delivery retries (attempts after the first).")
	fmt.Fprintln(w, "# TYPE pqo_cluster_push_retries_total counter")
	fmt.Fprintf(w, "pqo_cluster_push_retries_total %d\n", c.pushRetries.Load())

	fmt.Fprintln(w, "# HELP pqo_cluster_quarantined_nodes Members currently excluded from the skew quorum.")
	fmt.Fprintln(w, "# TYPE pqo_cluster_quarantined_nodes gauge")
	fmt.Fprintf(w, "pqo_cluster_quarantined_nodes %d\n", quarantined)

	fmt.Fprintln(w, "# HELP pqo_cluster_member_epoch Highest generation each member has acknowledged.")
	fmt.Fprintln(w, "# TYPE pqo_cluster_member_epoch gauge")
	for _, r := range rows {
		fmt.Fprintf(w, "pqo_cluster_member_epoch{member=%q,state=%q} %d\n", r.url, r.state, r.acked)
	}

	fmt.Fprintln(w, "# HELP pqo_cluster_ack_latency_seconds Latency from push attempt to member acknowledgement.")
	fmt.Fprintln(w, "# TYPE pqo_cluster_ack_latency_seconds histogram")
	cum := int64(0)
	for i := 0; i < ackBuckets; i++ {
		cum += c.ackHist.counts[i].Load()
		fmt.Fprintf(w, "pqo_cluster_ack_latency_seconds_bucket{le=\"%g\"} %d\n",
			float64(int64(1)<<i)/1e3, cum)
	}
	cum += c.ackHist.overflow.Load()
	fmt.Fprintf(w, "pqo_cluster_ack_latency_seconds_bucket{le=\"+Inf\"} %d\n", cum)
	fmt.Fprintf(w, "pqo_cluster_ack_latency_seconds_sum %g\n", float64(c.ackHist.sumNanos.Load())/1e9)
	fmt.Fprintf(w, "pqo_cluster_ack_latency_seconds_count %d\n", c.ackHist.count.Load())
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
