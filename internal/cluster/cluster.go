// Package cluster implements multi-node statistics-epoch propagation: a
// coordinator that pushes each new statistics generation (histogram deltas
// or a resample seed) to every member node over the existing /v1 HTTP
// surface, with per-node retry, timeout and exponential backoff with
// jitter.
//
// The paper's λ guarantee is stated against one statistics generation;
// PR 5 made that explicit per process (stats.Epoch, Decision.Epoch), and
// this package makes it hold across a fleet: the coordinator enforces a
// configurable cross-node skew bound — by default it withholds generation
// N+1 until every non-quarantined member has acknowledged installing N —
// so no two healthy nodes ever serve the same template from generations
// further apart than the bound. Members that fail persistently are
// quarantined: marked degraded, excluded from the skew quorum (so one
// partitioned node cannot freeze the fleet), and re-admitted through a
// catch-up replay of every generation they missed, in order. The member
// side (internal/server's /v1/cluster/epoch) is idempotent and monotonic,
// so lost responses, retries and duplicate deliveries are all harmless.
//
// See docs/ROBUSTNESS.md for the multi-node degradation ladder
// (healthy → skew-lagging → quarantined → rejoining).
package cluster

import (
	"context"
	"errors"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/pqo"
)

// NodeState is a member's position on the multi-node degradation ladder.
type NodeState string

const (
	// StateHealthy: the member has acknowledged every generation the skew
	// bound requires and counts toward the quorum that gates the next one.
	StateHealthy NodeState = "healthy"
	// StateLagging: the member is behind by more than the skew bound but
	// not yet quarantined; it still gates the quorum (that is the
	// withhold mechanism) while pushes retry.
	StateLagging NodeState = "skew-lagging"
	// StateQuarantined: the member failed QuarantineThreshold consecutive
	// rounds; it no longer gates the quorum and serves degraded (its own
	// skew detection flags its decisions) until it rejoins.
	StateQuarantined NodeState = "quarantined"
	// StateRejoining: a quarantined member answered a probe and is being
	// caught up by replaying its missed generations in order.
	StateRejoining NodeState = "rejoining"
)

// ErrWithheld reports that the coordinator refused to assign the next
// generation because a non-quarantined member has not acknowledged the
// current one within the skew bound. Retry after the member catches up or
// is quarantined.
var ErrWithheld = errors.New("cluster: epoch withheld: member behind skew bound")

// errEpochGap is the internal signal that a member refused an install
// because it is missing earlier generations (HTTP 409 ErrEpochGap); the
// push loop resynchronizes from the epoch the member reported.
var errEpochGap = errors.New("cluster: member reports epoch gap")

// Payload is one generation's installable content: exactly one of Deltas
// (a partial per-column histogram refresh) or ResampleSeed (a full
// statistics swap) must be set — the same contract as POST /v1/admin/stats.
type Payload struct {
	Deltas       []pqo.HistogramDelta `json:"deltas,omitempty"`
	ResampleSeed *int64               `json:"resampleSeed,omitempty"`
}

func (p Payload) validate() error {
	if (len(p.Deltas) == 0) == (p.ResampleSeed == nil) {
		return errors.New("cluster: exactly one of Deltas or ResampleSeed must be set")
	}
	return nil
}

// Config tunes a Coordinator. Members is required; every other field has a
// production-shaped default.
type Config struct {
	// Members are the base URLs of the member nodes, e.g.
	// "http://10.0.0.1:8080". Duplicates are rejected.
	Members []string
	// Client performs the RPCs; nil selects http.DefaultClient. Chaos
	// tests install a faultinject.Transport here.
	Client *http.Client
	// RPCTimeout bounds each individual RPC attempt (default 2s).
	RPCTimeout time.Duration
	// RetryLimit is the number of delivery attempts per generation per
	// node within one push round (default 4). Exhausting it counts one
	// failed round toward quarantine.
	RetryLimit int
	// BackoffBase and BackoffMax shape the exponential backoff between
	// attempts: attempt k waits BackoffBase·2^(k-1) capped at BackoffMax,
	// scaled by uniform jitter in [0.5, 1) drawn from the seeded PRNG
	// (defaults 25ms and 1s).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// QuarantineThreshold is how many consecutive failed rounds (push or
	// probe) a member survives before quarantine (default 3).
	QuarantineThreshold int
	// SkewBound is the cross-node skew the coordinator tolerates, in
	// generations: generation N+1 is assigned only once every
	// non-quarantined member has acknowledged N+1−SkewBound. The default
	// 1 admits adjacent generations only.
	SkewBound uint64
	// Workers is forwarded with every install for the member's
	// revalidation pool; <= 0 selects the member default.
	Workers int
	// Seed drives the backoff jitter PRNG (default 1), keeping chaos runs
	// reproducible.
	Seed int64
	// ProbeInterval is Run's health-probe cadence (default 2s).
	ProbeInterval time.Duration
	// InitialEpoch is the generation every member is assumed to hold at
	// startup (default 1 — freshly built systems install their seed
	// statistics as epoch 1). Probe raises the coordinator's view if a
	// member reports higher.
	InitialEpoch uint64
	// Logger receives operational messages; nil discards them.
	Logger *log.Logger
}

func (c *Config) fillDefaults() {
	if c.RPCTimeout == 0 {
		c.RPCTimeout = 2 * time.Second
	}
	if c.RetryLimit == 0 {
		c.RetryLimit = 4
	}
	if c.BackoffBase == 0 {
		c.BackoffBase = 25 * time.Millisecond
	}
	if c.BackoffMax == 0 {
		c.BackoffMax = time.Second
	}
	if c.QuarantineThreshold == 0 {
		c.QuarantineThreshold = 3
	}
	if c.SkewBound == 0 {
		c.SkewBound = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.ProbeInterval == 0 {
		c.ProbeInterval = 2 * time.Second
	}
	if c.InitialEpoch == 0 {
		c.InitialEpoch = 1
	}
}

// node is the coordinator's record of one member. All fields are guarded
// by Coordinator.mu; RPCs never run with it held.
type node struct {
	url string
	// acked is the highest generation the member confirmed installed.
	acked uint64
	// failures counts consecutive failed rounds; reset by any ack.
	failures int
	// quarantined excludes the member from the skew quorum; rejoining
	// marks an in-progress catch-up replay.
	quarantined bool
	rejoining   bool
	// pushing serializes pushes per member so a probe-triggered catch-up
	// never interleaves with an Advance push to the same node.
	pushing bool
	lastErr string
	health  string
}

// state derives the member's ladder position.
func (n *node) state(clusterEpoch, skewBound uint64) NodeState {
	switch {
	case n.quarantined && n.rejoining:
		return StateRejoining
	case n.quarantined:
		return StateQuarantined
	case clusterEpoch > n.acked && clusterEpoch-n.acked >= skewBound:
		// Behind far enough that the next assignment would be withheld
		// on this member's account.
		return StateLagging
	default:
		return StateHealthy
	}
}

// MemberStatus is the coordinator's roll-up for one member: its local
// bookkeeping plus, when produced by Probe/Status, what the member itself
// reported.
type MemberStatus struct {
	URL      string    `json:"url"`
	State    NodeState `json:"state"`
	Acked    uint64    `json:"acked"`
	Failures int       `json:"failures,omitempty"`
	LastErr  string    `json:"lastError,omitempty"`
	// Health is the member's /v1/healthz status ("" when unreachable or
	// not yet probed); ReportedEpoch / ReportedClusterEpoch /
	// LaggingInstances echo its health report.
	Health              string `json:"health,omitempty"`
	ReportedEpoch       uint64 `json:"reportedEpoch,omitempty"`
	ReportedClusterView uint64 `json:"reportedClusterEpoch,omitempty"`
	LaggingInstances    int64  `json:"laggingInstances,omitempty"`
	// Revalidation is the member's latest per-template revalidation
	// progress, rolled up from /v1/admin/epochs (Status only).
	Revalidation map[string]pqo.RevalidationProgress `json:"revalidation,omitempty"`
}

// Coordinator drives epoch propagation for one fleet. All methods are safe
// for concurrent use; RPCs never run while the state mutex is held.
type Coordinator struct {
	cfg    Config
	client *http.Client

	// rngMu guards the seeded jitter PRNG (math/rand.Rand is not
	// concurrency-safe).
	rngMu sync.Mutex
	rng   *rand.Rand

	// mu guards the member table, the assigned-epoch counter and the
	// payload history. Collect work under mu, RPC outside, re-acquire to
	// record — never block on the network under the lock.
	mu    sync.Mutex
	nodes map[string]*node
	order []string
	epoch uint64
	// history records every assigned generation's payload for catch-up
	// replay of quarantined members. It grows with the epoch count; an
	// operator restarting the coordinator restarts history (members ahead
	// of it are resynchronized via their reported epochs).
	history map[uint64]Payload

	pushRetries atomic.Int64
	ackHist     latencyHist
}

// New validates cfg and returns a Coordinator; no RPCs are performed.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Members) == 0 {
		return nil, errors.New("cluster: no members configured")
	}
	cfg.fillDefaults()
	c := &Coordinator{
		cfg:     cfg,
		client:  cfg.Client,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		nodes:   make(map[string]*node, len(cfg.Members)),
		history: make(map[uint64]Payload),
		epoch:   cfg.InitialEpoch,
	}
	if c.client == nil {
		c.client = http.DefaultClient
	}
	for _, m := range cfg.Members {
		if m == "" {
			return nil, errors.New("cluster: empty member URL")
		}
		if _, dup := c.nodes[m]; dup {
			return nil, fmt.Errorf("cluster: duplicate member %s", m)
		}
		c.nodes[m] = &node{url: m, acked: cfg.InitialEpoch}
		c.order = append(c.order, m)
	}
	sort.Strings(c.order)
	return c, nil
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Logger != nil {
		c.cfg.Logger.Printf(format, args...)
	}
}

// Epoch returns the highest generation the coordinator has assigned.
func (c *Coordinator) Epoch() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch
}

// Members returns the coordinator's local view of every member (no RPCs).
func (c *Coordinator) Members() []MemberStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]MemberStatus, 0, len(c.order))
	for _, url := range c.order {
		n := c.nodes[url]
		out = append(out, MemberStatus{
			URL: url, State: n.state(c.epoch, c.cfg.SkewBound),
			Acked: n.acked, Failures: n.failures, LastErr: n.lastErr,
			Health: n.health,
		})
	}
	return out
}

// Quarantined returns the URLs of currently quarantined members.
func (c *Coordinator) Quarantined() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []string
	for _, url := range c.order {
		if c.nodes[url].quarantined {
			out = append(out, url)
		}
	}
	return out
}

// Run probes the fleet every ProbeInterval — health via /v1/healthz,
// catch-up replay for reachable quarantined or lagging members — until ctx
// is cancelled. It returns ctx.Err().
func (c *Coordinator) Run(ctx context.Context) error {
	ticker := time.NewTicker(c.cfg.ProbeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ticker.C:
			c.Probe(ctx)
		}
	}
}

// backoff returns the jittered wait before attempt k (k >= 1):
// BackoffBase·2^(k-1) capped at BackoffMax, scaled by uniform jitter in
// [0.5, 1) so synchronized retries against a recovering member spread out.
func (c *Coordinator) backoff(k int) time.Duration {
	d := c.cfg.BackoffBase
	for i := 1; i < k && d < c.cfg.BackoffMax; i++ {
		d *= 2
	}
	if d > c.cfg.BackoffMax {
		d = c.cfg.BackoffMax
	}
	c.rngMu.Lock()
	f := 0.5 + 0.5*c.rng.Float64()
	c.rngMu.Unlock()
	return time.Duration(float64(d) * f)
}

// sleepCtx waits d or until ctx is cancelled.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Locked bookkeeping helpers. Each takes the mutex briefly; none performs
// IO.

func (c *Coordinator) ackedEpoch(url string) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.nodes[url].acked
}

func (c *Coordinator) payload(gen uint64) (Payload, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.history[gen]
	return p, ok
}

// beginPush claims the per-member push slot; a second concurrent push to
// the same member (e.g. a probe catch-up racing an Advance) backs off.
func (c *Coordinator) beginPush(url string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := c.nodes[url]
	if n.pushing {
		return false
	}
	n.pushing = true
	return true
}

func (c *Coordinator) endPush(url string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nodes[url].pushing = false
}

// recordAck notes that a member confirmed holding generation ep, resetting
// its failure streak and walking it back down the ladder (rejoining →
// healthy once caught up).
func (c *Coordinator) recordAck(url string, ep uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := c.nodes[url]
	if ep > n.acked {
		n.acked = ep
	}
	n.failures = 0
	n.lastErr = ""
	if n.quarantined {
		if n.acked >= c.epoch {
			n.quarantined = false
			n.rejoining = false
			c.logf("cluster: member %s rejoined at epoch %d", url, n.acked)
		} else {
			n.rejoining = true
		}
	}
}

// recordFailure counts one failed round; QuarantineThreshold consecutive
// failures quarantine the member (excluded from the skew quorum until a
// successful catch-up replay).
func (c *Coordinator) recordFailure(url string, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := c.nodes[url]
	n.failures++
	n.lastErr = err.Error()
	if !n.quarantined && n.failures >= c.cfg.QuarantineThreshold {
		n.quarantined = true
		n.rejoining = false
		c.logf("cluster: member %s quarantined after %d consecutive failed rounds: %v",
			url, n.failures, err)
	}
}
