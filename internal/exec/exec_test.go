package exec

import (
	"testing"

	"repro/internal/catalog"
	"repro/internal/datagen"
	"repro/internal/engine"
	"repro/internal/plan"
	"repro/internal/query"
)

// rig bundles a small materialized database with a 2-d join template.
type rig struct {
	db  *DB
	cat *catalog.Catalog
	tpl *query.Template
}

func newRig(t testing.TB) *rig {
	t.Helper()
	cat := catalog.NewTPCH(0.01)
	gen := datagen.New(cat, 42)
	db, err := Materialize(cat, gen, 20000)
	if err != nil {
		t.Fatal(err)
	}
	tpl := &query.Template{
		Name:    "exec2d",
		Catalog: cat,
		Tables:  []string{"lineitem", "orders"},
		Joins: []query.Join{{Left: "lineitem", Right: "orders",
			LeftCol: "l_orderkey", RightCol: "o_orderkey", Selectivity: 1.0 / 15_000}},
		Preds: []query.Predicate{
			{Table: "lineitem", Column: "l_shipdate", Op: query.LE, Param: 0},
			{Table: "orders", Column: "o_orderdate", Op: query.LE, Param: 1},
		},
	}
	if err := tpl.Validate(); err != nil {
		t.Fatal(err)
	}
	return &rig{db: db, cat: cat, tpl: tpl}
}

func TestMaterializeScalesProportionally(t *testing.T) {
	cat := catalog.NewTPCH(0.1)
	gen := datagen.New(cat, 1)
	db, err := Materialize(cat, gen, 10000)
	if err != nil {
		t.Fatal(err)
	}
	li := db.RowCount("lineitem")
	ord := db.RowCount("orders")
	if li != 10000 {
		t.Errorf("largest table got %d rows, want 10000", li)
	}
	if ord == 0 || ord >= li {
		t.Errorf("orders rows = %d, want positive and below lineitem's %d", ord, li)
	}
	if db.RowCount("nope") != 0 {
		t.Error("unknown table should report 0 rows")
	}
	if _, err := Materialize(cat, gen, 0); err == nil {
		t.Error("maxRows=0 should fail")
	}
}

// buildJoinPlan constructs a specific physical plan by hand.
func buildJoinPlan(op plan.OpType, leftScan, rightScan *plan.Node) *plan.Plan {
	return plan.New("exec2d", &plan.Node{
		Op: op, JoinCol: "lineitem.l_orderkey", RightJoinCol: "orders.o_orderkey",
		JoinSel:  1.0 / 15_000,
		Children: []*plan.Node{leftScan, rightScan},
	})
}

func TestJoinAlgorithmsAgree(t *testing.T) {
	r := newRig(t)
	liScan := &plan.Node{Op: plan.TableScan, Table: "lineitem"}
	ordScan := &plan.Node{Op: plan.TableScan, Table: "orders"}
	params := []float64{1000, 1200} // l_shipdate <= 1000, o_orderdate <= 1200

	var counts []int
	for _, op := range []plan.OpType{plan.HashJoin, plan.NLJoin, plan.MergeJoin} {
		p := buildJoinPlan(op, liScan, ordScan)
		n, err := r.db.Execute(p, r.tpl, params)
		if err != nil {
			t.Fatalf("%s: %v", op, err)
		}
		counts = append(counts, n)
	}
	if counts[0] != counts[1] || counts[1] != counts[2] {
		t.Fatalf("join algorithms disagree: hash=%d nl=%d merge=%d", counts[0], counts[1], counts[2])
	}
	if counts[0] == 0 {
		t.Fatal("join produced no rows; parameters too selective for a meaningful test")
	}
}

func TestIndexScanMatchesTableScan(t *testing.T) {
	r := newRig(t)
	params := []float64{800, 1200}
	full := buildJoinPlan(plan.HashJoin,
		&plan.Node{Op: plan.TableScan, Table: "lineitem"},
		&plan.Node{Op: plan.TableScan, Table: "orders"})
	viaIndex := buildJoinPlan(plan.HashJoin,
		&plan.Node{Op: plan.IndexScan, Table: "lineitem", Index: "ix_l_shipdate", IndexColumn: "l_shipdate"},
		&plan.Node{Op: plan.IndexScan, Table: "orders", Index: "ix_o_orderdate", IndexColumn: "o_orderdate"})
	a, err := r.db.Execute(full, r.tpl, params)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.db.Execute(viaIndex, r.tpl, params)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("index scan result %d != table scan result %d", b, a)
	}
}

func TestGEPredicateAndResidualFilters(t *testing.T) {
	r := newRig(t)
	tpl := &query.Template{
		Name:    "exec1t",
		Catalog: r.cat,
		Tables:  []string{"lineitem"},
		Preds: []query.Predicate{
			{Table: "lineitem", Column: "l_shipdate", Op: query.GE, Param: 0},
			{Table: "lineitem", Column: "l_quantity", Op: query.LE, Param: 1},
		},
	}
	if err := tpl.Validate(); err != nil {
		t.Fatal(err)
	}
	full := plan.New("exec1t", &plan.Node{Op: plan.TableScan, Table: "lineitem"})
	ix := plan.New("exec1t", &plan.Node{Op: plan.IndexScan, Table: "lineitem",
		Index: "ix_l_shipdate", IndexColumn: "l_shipdate"})
	params := []float64{1500, 25}
	a, err := r.db.Execute(full, tpl, params)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.db.Execute(ix, tpl, params)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("GE index scan %d != table scan %d", b, a)
	}
	// Result must shrink as the filter tightens.
	tight, err := r.db.Execute(full, tpl, []float64{2400, 5})
	if err != nil {
		t.Fatal(err)
	}
	if tight >= a {
		t.Errorf("tighter predicate returned %d rows, loose returned %d", tight, a)
	}
}

func TestAggregation(t *testing.T) {
	r := newRig(t)
	tpl := &query.Template{
		Name:    "execagg",
		Catalog: r.cat,
		Tables:  []string{"lineitem"},
		Preds: []query.Predicate{
			{Table: "lineitem", Column: "l_shipdate", Op: query.LE, Param: 0},
		},
		Agg:       query.GroupBy,
		GroupCard: 100,
	}
	if err := tpl.Validate(); err != nil {
		t.Fatal(err)
	}
	scan := &plan.Node{Op: plan.TableScan, Table: "lineitem"}
	hash := plan.New("execagg", &plan.Node{Op: plan.HashAgg, Children: []*plan.Node{scan}})
	stream := plan.New("execagg", &plan.Node{Op: plan.StreamAgg, Children: []*plan.Node{scan}})
	params := []float64{1200}
	a, err := r.db.Execute(hash, tpl, params)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.db.Execute(stream, tpl, params)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("hash agg groups %d != stream agg groups %d", a, b)
	}
	if a == 0 {
		t.Fatal("aggregation produced no groups")
	}
}

func TestExecuteErrors(t *testing.T) {
	r := newRig(t)
	p := plan.New("exec2d", &plan.Node{Op: plan.TableScan, Table: "lineitem"})
	if _, err := r.db.Execute(p, r.tpl, []float64{1}); err == nil {
		t.Error("wrong param arity should fail")
	}
	bad := plan.New("exec2d", &plan.Node{Op: plan.TableScan, Table: "missing"})
	if _, err := r.db.Execute(bad, r.tpl, []float64{1, 1}); err == nil {
		t.Error("missing table should fail")
	}
	if _, err := r.db.Execute(plan.New("x", nil), r.tpl, []float64{1, 1}); err == nil {
		t.Error("nil plan should fail")
	}
}

func TestOptimizerPlansExecuteCorrectly(t *testing.T) {
	// Integration: plans chosen by the real optimizer at different
	// selectivities all produce identical results for the same instance.
	cat := catalog.NewTPCH(0.01)
	sysFull, err := engine.NewSystem(cat, 42)
	if err != nil {
		t.Fatal(err)
	}
	db, err := Materialize(cat, sysFull.Gen, 20000)
	if err != nil {
		t.Fatal(err)
	}
	tpl := &query.Template{
		Name:    "execint",
		Catalog: cat,
		Tables:  []string{"lineitem", "orders"},
		Joins: []query.Join{{Left: "lineitem", Right: "orders",
			LeftCol: "l_orderkey", RightCol: "o_orderkey", Selectivity: 1.0 / 15_000}},
		Preds: []query.Predicate{
			{Table: "lineitem", Column: "l_shipdate", Op: query.LE, Param: 0},
			{Table: "orders", Column: "o_orderdate", Op: query.LE, Param: 1},
		},
	}
	eng, err := sysFull.EngineFor(tpl)
	if err != nil {
		t.Fatal(err)
	}
	// Optimize at several selectivity points; execute each plan with the
	// same concrete parameter values.
	params := []float64{1200, 1500}
	counts := map[int]bool{}
	fps := map[string]bool{}
	for _, sv := range [][]float64{{1e-4, 1e-4}, {0.5, 0.5}, {1e-4, 0.9}, {0.9, 1e-4}} {
		cp, _, err := eng.Optimize(sv)
		if err != nil {
			t.Fatal(err)
		}
		fps[cp.Fingerprint()] = true
		n, err := db.Execute(cp.Plan, tpl, params)
		if err != nil {
			t.Fatalf("executing plan for sv=%v: %v", sv, err)
		}
		counts[n] = true
	}
	if len(counts) != 1 {
		t.Fatalf("different plans gave different results: %v", counts)
	}
	if len(fps) < 2 {
		t.Log("note: only one distinct plan across the probe points")
	}
}
