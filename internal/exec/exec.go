// Package exec is an in-memory execution engine that runs the optimizer's
// physical plans over rows materialized by package datagen. It exists for
// the paper's execution experiment (Table 3): measuring real wall-clock
// execution time of the plans the PQO techniques choose, so that
// optimization-time savings and execution-time sub-optimality can be
// compared in the same unit.
//
// Operators implement the classic materialized evaluation model: table and
// index scans with residual filters, block nested-loops / hash / merge
// joins, and hash/stream aggregation. Index scans are simulated against a
// pre-sorted copy of the table, so their touched-row advantage is real.
package exec

import (
	"fmt"
	"sort"

	"repro/internal/catalog"
	"repro/internal/datagen"
	"repro/internal/plan"
	"repro/internal/query"
)

// DB holds materialized tables for one catalog.
type DB struct {
	cat    *catalog.Catalog
	tables map[string]*tableData
}

// tableData is one materialized table plus per-column sorted projections
// that stand in for secondary indexes.
type tableData struct {
	meta   *catalog.Table
	rows   []datagen.Row
	colIdx map[string]int
	// sortedBy[col] is the row order sorted ascending by that column, for
	// columns that carry an index.
	sortedBy map[string][]int
}

// Materialize generates up to maxRows rows per table and builds index
// structures. maxRows bounds memory; the relative table sizes of the
// catalog are preserved by proportional scaling.
func Materialize(cat *catalog.Catalog, gen *datagen.Generator, maxRows int) (*DB, error) {
	if maxRows <= 0 {
		return nil, fmt.Errorf("exec: maxRows %d must be positive", maxRows)
	}
	var largest int64 = 1
	for _, t := range cat.Tables() {
		if t.Rows > largest {
			largest = t.Rows
		}
	}
	db := &DB{cat: cat, tables: make(map[string]*tableData)}
	for _, t := range cat.Tables() {
		n := int(float64(t.Rows) / float64(largest) * float64(maxRows))
		if n < 1 {
			n = 1
		}
		rows, err := gen.Rows(t.Name, n)
		if err != nil {
			return nil, fmt.Errorf("exec: materializing %s: %w", t.Name, err)
		}
		td := &tableData{
			meta:     t,
			rows:     rows,
			colIdx:   make(map[string]int, len(t.Columns)),
			sortedBy: make(map[string][]int),
		}
		for i, c := range t.Columns {
			td.colIdx[c.Name] = i
		}
		for _, ix := range t.Indexes {
			ci := td.colIdx[ix.Column]
			order := make([]int, len(rows))
			for i := range order {
				order[i] = i
			}
			sort.SliceStable(order, func(a, b int) bool {
				return rows[order[a]][ci] < rows[order[b]][ci]
			})
			td.sortedBy[ix.Column] = order
		}
		db.tables[t.Name] = td
	}
	return db, nil
}

// RowCount returns the materialized row count of a table (0 if unknown).
func (db *DB) RowCount(table string) int {
	if td := db.tables[table]; td != nil {
		return len(td.rows)
	}
	return 0
}

// colRef identifies an output column of an operator: source table + column.
type colRef struct {
	table, column string
}

// relation is a materialized intermediate result.
type relation struct {
	schema []colRef
	rows   [][]float64
}

func (r *relation) colOffset(table, column string) (int, error) {
	for i, c := range r.schema {
		if c.table == table && c.column == column {
			return i, nil
		}
	}
	return 0, fmt.Errorf("exec: column %s.%s not in schema %v", table, column, r.schema)
}

// Execute runs plan p for template tpl with bound parameter values and
// returns the result cardinality. Parameter values select the predicate
// constants exactly as the optimizer assumed.
func (db *DB) Execute(p *plan.Plan, tpl *query.Template, params []float64) (int, error) {
	if got, want := len(params), tpl.Dimensions(); got != want {
		return 0, fmt.Errorf("exec: got %d params, template %s needs %d", got, tpl.Name, want)
	}
	rel, err := db.eval(p.Root, tpl, params)
	if err != nil {
		return 0, err
	}
	return len(rel.rows), nil
}

func (db *DB) eval(n *plan.Node, tpl *query.Template, params []float64) (*relation, error) {
	if n == nil {
		return nil, fmt.Errorf("exec: nil plan node")
	}
	switch n.Op {
	case plan.TableScan:
		return db.scan(n.Table, tpl, params, "", 0)
	case plan.IndexScan:
		return db.scan(n.Table, tpl, params, n.IndexColumn, 0)
	case plan.NLJoin, plan.HashJoin, plan.MergeJoin:
		left, err := db.eval(n.Children[0], tpl, params)
		if err != nil {
			return nil, err
		}
		right, err := db.eval(n.Children[1], tpl, params)
		if err != nil {
			return nil, err
		}
		return db.join(n, tpl, left, right)
	case plan.HashAgg, plan.StreamAgg:
		in, err := db.eval(n.Children[0], tpl, params)
		if err != nil {
			return nil, err
		}
		return db.aggregate(n, in)
	default:
		return nil, fmt.Errorf("exec: unsupported operator %s", n.Op)
	}
}

// predsFor collects the bound predicates on a table as (column index, op,
// value) triples.
type boundPred struct {
	col int
	op  query.CmpOp
	val float64
}

func (db *DB) predsFor(table string, tpl *query.Template, params []float64,
	td *tableData) ([]boundPred, error) {

	var out []boundPred
	for _, p := range tpl.Preds {
		if p.Table != table {
			continue
		}
		ci, ok := td.colIdx[p.Column]
		if !ok {
			return nil, fmt.Errorf("exec: predicate column %s.%s missing", table, p.Column)
		}
		v := p.Value
		if p.Param >= 0 {
			v = params[p.Param]
		}
		out = append(out, boundPred{col: ci, op: p.Op, val: v})
	}
	return out, nil
}

func matches(row []float64, preds []boundPred) bool {
	for _, p := range preds {
		if p.op == query.LE {
			if row[p.col] > p.val {
				return false
			}
		} else if row[p.col] < p.val {
			return false
		}
	}
	return true
}

// scan reads a base table. If indexColumn is non-empty the matching index
// order is used to touch only the qualifying range for the predicate on
// that column (the simulated index seek); remaining predicates filter
// row-by-row.
func (db *DB) scan(table string, tpl *query.Template, params []float64,
	indexColumn string, _ int) (*relation, error) {

	td := db.tables[table]
	if td == nil {
		return nil, fmt.Errorf("exec: table %s not materialized", table)
	}
	preds, err := db.predsFor(table, tpl, params, td)
	if err != nil {
		return nil, err
	}
	schema := make([]colRef, len(td.meta.Columns))
	for i, c := range td.meta.Columns {
		schema[i] = colRef{table: table, column: c.Name}
	}
	out := &relation{schema: schema}

	if indexColumn != "" {
		order := td.sortedBy[indexColumn]
		ci, hasCol := td.colIdx[indexColumn]
		if order != nil && hasCol {
			// Find the predicate served by the index, if any.
			var served *boundPred
			for i := range preds {
				if preds[i].col == ci {
					served = &preds[i]
					break
				}
			}
			if served != nil {
				lo, hi := 0, len(order)
				if served.op == query.LE {
					hi = sort.Search(len(order), func(i int) bool {
						return td.rows[order[i]][ci] > served.val
					})
				} else {
					lo = sort.Search(len(order), func(i int) bool {
						return td.rows[order[i]][ci] >= served.val
					})
				}
				for _, ri := range order[lo:hi] {
					if matches(td.rows[ri], preds) {
						out.rows = append(out.rows, td.rows[ri])
					}
				}
				return out, nil
			}
			// Index with no served predicate: clustered-order full scan.
			for _, ri := range order {
				if matches(td.rows[ri], preds) {
					out.rows = append(out.rows, td.rows[ri])
				}
			}
			return out, nil
		}
	}
	for _, row := range td.rows {
		if matches(row, preds) {
			out.rows = append(out.rows, row)
		}
	}
	return out, nil
}

// joinKeys resolves the equi-join columns for a join node from the
// template's join list: the first edge connecting a left-side table to a
// right-side table.
func joinKeys(n *plan.Node, tpl *query.Template, left, right *relation) (int, int, error) {
	inLeft := make(map[string]bool)
	for _, c := range left.schema {
		inLeft[c.table] = true
	}
	inRight := make(map[string]bool)
	for _, c := range right.schema {
		inRight[c.table] = true
	}
	for _, j := range tpl.Joins {
		if inLeft[j.Left] && inRight[j.Right] {
			li, err := left.colOffset(j.Left, j.LeftCol)
			if err != nil {
				return 0, 0, err
			}
			ri, err := right.colOffset(j.Right, j.RightCol)
			if err != nil {
				return 0, 0, err
			}
			return li, ri, nil
		}
		if inLeft[j.Right] && inRight[j.Left] {
			li, err := left.colOffset(j.Right, j.RightCol)
			if err != nil {
				return 0, 0, err
			}
			ri, err := right.colOffset(j.Left, j.LeftCol)
			if err != nil {
				return 0, 0, err
			}
			return li, ri, nil
		}
	}
	return 0, 0, fmt.Errorf("exec: no join edge between %v and %v", left.schema, right.schema)
}

func (db *DB) join(n *plan.Node, tpl *query.Template, left, right *relation) (*relation, error) {
	li, ri, err := joinKeys(n, tpl, left, right)
	if err != nil {
		return nil, err
	}
	out := &relation{schema: append(append([]colRef{}, left.schema...), right.schema...)}
	emit := func(l, r []float64) {
		row := make([]float64, 0, len(l)+len(r))
		row = append(row, l...)
		row = append(row, r...)
		out.rows = append(out.rows, row)
	}
	switch n.Op {
	case plan.NLJoin:
		for _, lr := range left.rows {
			for _, rr := range right.rows {
				if lr[li] == rr[ri] {
					emit(lr, rr)
				}
			}
		}
	case plan.HashJoin:
		ht := make(map[float64][][]float64, len(right.rows))
		for _, rr := range right.rows {
			ht[rr[ri]] = append(ht[rr[ri]], rr)
		}
		for _, lr := range left.rows {
			for _, rr := range ht[lr[li]] {
				emit(lr, rr)
			}
		}
	case plan.MergeJoin:
		ls := append([][]float64{}, left.rows...)
		rs := append([][]float64{}, right.rows...)
		sort.SliceStable(ls, func(a, b int) bool { return ls[a][li] < ls[b][li] })
		sort.SliceStable(rs, func(a, b int) bool { return rs[a][ri] < rs[b][ri] })
		i, j := 0, 0
		for i < len(ls) && j < len(rs) {
			switch {
			case ls[i][li] < rs[j][ri]:
				i++
			case ls[i][li] > rs[j][ri]:
				j++
			default:
				key := ls[i][li]
				jEnd := j
				for jEnd < len(rs) && rs[jEnd][ri] == key {
					jEnd++
				}
				for i < len(ls) && ls[i][li] == key {
					for k := j; k < jEnd; k++ {
						emit(ls[i], rs[k])
					}
					i++
				}
				j = jEnd
			}
		}
	default:
		return nil, fmt.Errorf("exec: %s is not a join", n.Op)
	}
	return out, nil
}

// aggregate groups on the first output column and counts group members —
// the GROUP BY g, COUNT(*) shape of the templates.
func (db *DB) aggregate(n *plan.Node, in *relation) (*relation, error) {
	if len(in.schema) == 0 {
		return nil, fmt.Errorf("exec: aggregate over empty schema")
	}
	out := &relation{schema: []colRef{in.schema[0], {table: "", column: "count"}}}
	switch n.Op {
	case plan.HashAgg:
		counts := make(map[float64]float64)
		var order []float64
		for _, row := range in.rows {
			if _, seen := counts[row[0]]; !seen {
				order = append(order, row[0])
			}
			counts[row[0]]++
		}
		for _, k := range order {
			out.rows = append(out.rows, []float64{k, counts[k]})
		}
	case plan.StreamAgg:
		rows := append([][]float64{}, in.rows...)
		sort.SliceStable(rows, func(a, b int) bool { return rows[a][0] < rows[b][0] })
		for i := 0; i < len(rows); {
			j := i
			for j < len(rows) && rows[j][0] == rows[i][0] {
				j++
			}
			out.rows = append(out.rows, []float64{rows[i][0], float64(j - i)})
			i = j
		}
	default:
		return nil, fmt.Errorf("exec: %s is not an aggregate", n.Op)
	}
	return out, nil
}
