package exec

import (
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/cost"
	"repro/internal/engine"
	"repro/internal/query"
)

// TestCostModelCorrelatesWithExecutionTime is the substrate-validation
// test: Table 3 (and the paper's whole premise that optimizer-estimated
// cost is a meaningful proxy) requires estimated plan cost to track actual
// execution time. We sweep selectivities, execute the optimizer's chosen
// plan for each, and require a strong positive correlation.
func TestCostModelCorrelatesWithExecutionTime(t *testing.T) {
	if testing.Short() {
		t.Skip("executes many plans")
	}
	cat := catalog.NewTPCH(0.01)
	sys, err := engine.NewSystem(cat, 42)
	if err != nil {
		t.Fatal(err)
	}
	db, err := Materialize(cat, sys.Gen, 40000)
	if err != nil {
		t.Fatal(err)
	}
	tpl := &query.Template{
		Name:    "calib",
		Catalog: cat,
		Tables:  []string{"lineitem", "orders"},
		Joins: []query.Join{{Left: "lineitem", Right: "orders",
			LeftCol: "l_orderkey", RightCol: "o_orderkey", Selectivity: 1.0 / 15_000}},
		Preds: []query.Predicate{
			{Table: "lineitem", Column: "l_shipdate", Op: query.LE, Param: 0},
			{Table: "orders", Column: "o_orderdate", Op: query.LE, Param: 1},
		},
	}
	eng, err := sys.EngineFor(tpl)
	if err != nil {
		t.Fatal(err)
	}
	var costs, secs []float64
	for _, sel := range []float64{0.005, 0.02, 0.08, 0.2, 0.4, 0.7, 0.95} {
		sv := []float64{sel, sel}
		cp, c, err := eng.Optimize(sv)
		if err != nil {
			t.Fatal(err)
		}
		// Bind parameters matching the selectivities.
		v0, err := sys.Stats.ValueForSelectivityLE("lineitem", "l_shipdate", sel)
		if err != nil {
			t.Fatal(err)
		}
		v1, err := sys.Stats.ValueForSelectivityLE("orders", "o_orderdate", sel)
		if err != nil {
			t.Fatal(err)
		}
		// Median-of-3 timing to damp scheduler noise.
		best := time.Duration(1 << 62)
		for rep := 0; rep < 3; rep++ {
			t0 := time.Now()
			if _, err := db.Execute(cp.Plan, tpl, []float64{v0, v1}); err != nil {
				t.Fatal(err)
			}
			if d := time.Since(t0); d < best {
				best = d
			}
		}
		costs = append(costs, c)
		secs = append(secs, best.Seconds())
	}
	// Rank correlation: costlier plans must run longer. (The linear fit
	// below is informational — the in-memory executor has no I/O, so the
	// absolute relationship is non-linear.)
	rho, err := cost.SpearmanRho(costs, secs)
	if err != nil {
		t.Fatal(err)
	}
	if rho < 0.8 {
		t.Errorf("cost/time rank correlation rho = %.2f, want >= 0.8\ncosts: %v\nsecs:  %v", rho, costs, secs)
	}
	r, err := cost.PearsonR(costs, secs)
	if err != nil {
		t.Fatal(err)
	}
	cal, err := cost.Fit(costs, secs)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("calibration: seconds ≈ %.3g·cost + %.3g (R²=%.2f, r=%.2f, rho=%.2f)",
		cal.Slope, cal.Intercept, cal.R2, r, rho)
}
