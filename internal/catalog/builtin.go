package catalog

import "fmt"

// The built-in catalogs mirror the four databases used in the paper's
// evaluation: the TPC-H and TPC-DS industry benchmarks and two synthetic
// "real-world-like" databases (RD1, RD2). Row counts correspond to modest
// scale factors; what matters for the reproduction is the relative table
// sizes, the presence/absence of indexes, and column value skew — these
// drive the plan diagrams the PQO techniques are evaluated on.

// NewTPCH returns a TPC-H-shaped catalog with skewed columns (the paper uses
// the skewed TPC-H data generator). sf scales base cardinalities; sf=1 gives
// the canonical 6M-row lineitem.
func NewTPCH(sf float64) *Catalog {
	if sf <= 0 {
		sf = 1
	}
	n := func(base float64) int64 {
		v := int64(base * sf)
		if v < 1 {
			v = 1
		}
		return v
	}
	c := New(fmt.Sprintf("tpch-sf%g", sf))
	c.MustAddTable(&Table{
		Name: "lineitem", Rows: n(6_000_000), RowBytes: 120,
		Columns: []Column{
			{Name: "l_orderkey", Min: 0, Max: 1.5e6 * sf, Distinct: n(1_500_000), Dist: Sequential},
			{Name: "l_partkey", Min: 0, Max: 2e5 * sf, Distinct: n(200_000), Dist: Zipf, Skew: 1.0},
			{Name: "l_suppkey", Min: 0, Max: 1e4 * sf, Distinct: n(10_000), Dist: Zipf, Skew: 0.8},
			{Name: "l_quantity", Min: 1, Max: 50, Distinct: 50, Dist: Uniform},
			{Name: "l_extendedprice", Min: 900, Max: 105000, Distinct: n(1_000_000), Dist: Zipf, Skew: 0.6},
			{Name: "l_discount", Min: 0, Max: 0.1, Distinct: 11, Dist: Uniform},
			{Name: "l_shipdate", Min: 0, Max: 2557, Distinct: 2557, Dist: Uniform},
			{Name: "l_receiptdate", Min: 0, Max: 2587, Distinct: 2587, Dist: Normal},
		},
		Indexes: []Index{
			{Name: "pk_lineitem", Column: "l_orderkey", Clustered: true},
			{Name: "ix_l_shipdate", Column: "l_shipdate"},
			{Name: "ix_l_partkey", Column: "l_partkey"},
		},
	})
	c.MustAddTable(&Table{
		Name: "orders", Rows: n(1_500_000), RowBytes: 100,
		Columns: []Column{
			{Name: "o_orderkey", Min: 0, Max: 1.5e6 * sf, Distinct: n(1_500_000), Dist: Sequential},
			{Name: "o_custkey", Min: 0, Max: 1.5e5 * sf, Distinct: n(150_000), Dist: Zipf, Skew: 1.0},
			{Name: "o_totalprice", Min: 850, Max: 560000, Distinct: n(1_000_000), Dist: Zipf, Skew: 0.7},
			{Name: "o_orderdate", Min: 0, Max: 2405, Distinct: 2405, Dist: Uniform},
			{Name: "o_shippriority", Min: 0, Max: 4, Distinct: 5, Dist: Uniform},
		},
		Indexes: []Index{
			{Name: "pk_orders", Column: "o_orderkey", Clustered: true},
			{Name: "ix_o_orderdate", Column: "o_orderdate"},
			{Name: "ix_o_custkey", Column: "o_custkey"},
		},
	})
	c.MustAddTable(&Table{
		Name: "customer", Rows: n(150_000), RowBytes: 160,
		Columns: []Column{
			{Name: "c_custkey", Min: 0, Max: 1.5e5 * sf, Distinct: n(150_000), Dist: Sequential},
			{Name: "c_nationkey", Min: 0, Max: 24, Distinct: 25, Dist: Zipf, Skew: 0.9},
			{Name: "c_acctbal", Min: -1000, Max: 10000, Distinct: n(140_000), Dist: Uniform},
		},
		Indexes: []Index{
			{Name: "pk_customer", Column: "c_custkey", Clustered: true},
		},
	})
	c.MustAddTable(&Table{
		Name: "part", Rows: n(200_000), RowBytes: 140,
		Columns: []Column{
			{Name: "p_partkey", Min: 0, Max: 2e5 * sf, Distinct: n(200_000), Dist: Sequential},
			{Name: "p_size", Min: 1, Max: 50, Distinct: 50, Dist: Uniform},
			{Name: "p_retailprice", Min: 900, Max: 2100, Distinct: n(120_000), Dist: Normal},
		},
		Indexes: []Index{
			{Name: "pk_part", Column: "p_partkey", Clustered: true},
			{Name: "ix_p_size", Column: "p_size"},
		},
	})
	c.MustAddTable(&Table{
		Name: "supplier", Rows: n(10_000), RowBytes: 150,
		Columns: []Column{
			{Name: "s_suppkey", Min: 0, Max: 1e4 * sf, Distinct: n(10_000), Dist: Sequential},
			{Name: "s_nationkey", Min: 0, Max: 24, Distinct: 25, Dist: Zipf, Skew: 0.9},
			{Name: "s_acctbal", Min: -1000, Max: 10000, Distinct: n(9_900), Dist: Uniform},
		},
		Indexes: []Index{
			{Name: "pk_supplier", Column: "s_suppkey", Clustered: true},
		},
	})
	c.MustAddTable(&Table{
		Name: "nation", Rows: 25, RowBytes: 120,
		Columns: []Column{
			{Name: "n_nationkey", Min: 0, Max: 24, Distinct: 25, Dist: Sequential},
			{Name: "n_regionkey", Min: 0, Max: 4, Distinct: 5, Dist: Uniform},
		},
		Indexes: []Index{
			{Name: "pk_nation", Column: "n_nationkey", Clustered: true},
		},
	})
	return c
}

// NewTPCDS returns a TPC-DS-shaped star-schema catalog. sf scales base
// cardinalities; sf=1 gives the canonical ~2.9M-row store_sales.
func NewTPCDS(sf float64) *Catalog {
	if sf <= 0 {
		sf = 1
	}
	n := func(base float64) int64 {
		v := int64(base * sf)
		if v < 1 {
			v = 1
		}
		return v
	}
	c := New(fmt.Sprintf("tpcds-sf%g", sf))
	c.MustAddTable(&Table{
		Name: "store_sales", Rows: n(2_880_000), RowBytes: 100,
		Columns: []Column{
			{Name: "ss_sold_date_sk", Min: 0, Max: 1823, Distinct: 1823, Dist: Uniform},
			{Name: "ss_item_sk", Min: 0, Max: 18000 * sf, Distinct: n(18_000), Dist: Zipf, Skew: 1.1},
			{Name: "ss_customer_sk", Min: 0, Max: 100000 * sf, Distinct: n(100_000), Dist: Zipf, Skew: 0.9},
			{Name: "ss_store_sk", Min: 0, Max: 12, Distinct: 12, Dist: Zipf, Skew: 0.7},
			{Name: "ss_quantity", Min: 1, Max: 100, Distinct: 100, Dist: Uniform},
			{Name: "ss_sales_price", Min: 0, Max: 200, Distinct: n(100_000), Dist: Zipf, Skew: 0.8},
			{Name: "ss_net_profit", Min: -10000, Max: 10000, Distinct: n(500_000), Dist: Normal},
		},
		Indexes: []Index{
			{Name: "ix_ss_sold_date", Column: "ss_sold_date_sk"},
			{Name: "ix_ss_item", Column: "ss_item_sk"},
		},
	})
	c.MustAddTable(&Table{
		Name: "web_sales", Rows: n(720_000), RowBytes: 110,
		Columns: []Column{
			{Name: "ws_sold_date_sk", Min: 0, Max: 1823, Distinct: 1823, Dist: Uniform},
			{Name: "ws_item_sk", Min: 0, Max: 18000 * sf, Distinct: n(18_000), Dist: Zipf, Skew: 1.0},
			{Name: "ws_bill_customer_sk", Min: 0, Max: 100000 * sf, Distinct: n(100_000), Dist: Zipf, Skew: 0.9},
			{Name: "ws_quantity", Min: 1, Max: 100, Distinct: 100, Dist: Uniform},
			{Name: "ws_sales_price", Min: 0, Max: 300, Distinct: n(90_000), Dist: Zipf, Skew: 0.8},
		},
		Indexes: []Index{
			{Name: "ix_ws_sold_date", Column: "ws_sold_date_sk"},
		},
	})
	c.MustAddTable(&Table{
		Name: "date_dim", Rows: 73049, RowBytes: 140,
		Columns: []Column{
			{Name: "d_date_sk", Min: 0, Max: 73048, Distinct: 73049, Dist: Sequential},
			{Name: "d_year", Min: 1900, Max: 2100, Distinct: 201, Dist: Uniform},
			{Name: "d_moy", Min: 1, Max: 12, Distinct: 12, Dist: Uniform},
		},
		Indexes: []Index{
			{Name: "pk_date_dim", Column: "d_date_sk", Clustered: true},
			{Name: "ix_d_year", Column: "d_year"},
		},
	})
	c.MustAddTable(&Table{
		Name: "item", Rows: n(18_000), RowBytes: 280,
		Columns: []Column{
			{Name: "i_item_sk", Min: 0, Max: 18000 * sf, Distinct: n(18_000), Dist: Sequential},
			{Name: "i_current_price", Min: 0.09, Max: 99, Distinct: n(9_900), Dist: Zipf, Skew: 0.6},
			{Name: "i_category_id", Min: 1, Max: 10, Distinct: 10, Dist: Uniform},
			{Name: "i_manufact_id", Min: 1, Max: 1000, Distinct: 1000, Dist: Zipf, Skew: 0.5},
		},
		Indexes: []Index{
			{Name: "pk_item", Column: "i_item_sk", Clustered: true},
		},
	})
	c.MustAddTable(&Table{
		Name: "customer", Rows: n(100_000), RowBytes: 180,
		Columns: []Column{
			{Name: "c_customer_sk", Min: 0, Max: 100000 * sf, Distinct: n(100_000), Dist: Sequential},
			{Name: "c_birth_year", Min: 1920, Max: 1992, Distinct: 73, Dist: Normal},
			{Name: "c_current_addr_sk", Min: 0, Max: 50000 * sf, Distinct: n(50_000), Dist: Uniform},
		},
		Indexes: []Index{
			{Name: "pk_customer", Column: "c_customer_sk", Clustered: true},
		},
	})
	c.MustAddTable(&Table{
		Name: "customer_address", Rows: n(50_000), RowBytes: 160,
		Columns: []Column{
			{Name: "ca_address_sk", Min: 0, Max: 50000 * sf, Distinct: n(50_000), Dist: Sequential},
			{Name: "ca_gmt_offset", Min: -10, Max: -5, Distinct: 6, Dist: Uniform},
		},
		Indexes: []Index{
			{Name: "pk_customer_address", Column: "ca_address_sk", Clustered: true},
		},
	})
	c.MustAddTable(&Table{
		Name: "store", Rows: 12, RowBytes: 260,
		Columns: []Column{
			{Name: "s_store_sk", Min: 0, Max: 11, Distinct: 12, Dist: Sequential},
			{Name: "s_number_employees", Min: 200, Max: 300, Distinct: 100, Dist: Uniform},
		},
		Indexes: []Index{
			{Name: "pk_store", Column: "s_store_sk", Clustered: true},
		},
	})
	return c
}

// NewRD1 returns a synthetic catalog standing in for the paper's 98 GB
// real-world database RD1: a normalized OLTP-ish schema with many mid-sized
// relations, suitable for multi-block, multi-join templates whose
// optimization time is significant.
func NewRD1() *Catalog {
	c := New("rd1")
	sizes := []struct {
		name string
		rows int64
		skew float64
	}{
		{"accounts", 4_000_000, 0.9},
		{"transactions", 20_000_000, 1.1},
		{"merchants", 300_000, 0.7},
		{"devices", 1_200_000, 0.8},
		{"sessions", 9_000_000, 1.0},
		{"events", 30_000_000, 1.2},
		{"geo", 45_000, 0.5},
		{"plans", 600, 0.3},
	}
	for i, s := range sizes {
		t := &Table{
			Name: s.name, Rows: s.rows, RowBytes: 90 + 10*i,
			Columns: []Column{
				{Name: s.name + "_id", Min: 0, Max: float64(s.rows), Distinct: s.rows, Dist: Sequential},
				{Name: s.name + "_fk", Min: 0, Max: float64(s.rows / 4), Distinct: maxI64(s.rows/4, 1), Dist: Zipf, Skew: s.skew},
				{Name: s.name + "_ts", Min: 0, Max: 86400 * 365, Distinct: maxI64(s.rows/10, 1), Dist: Uniform},
				{Name: s.name + "_amount", Min: 0, Max: 1e6, Distinct: maxI64(s.rows/20, 1), Dist: Zipf, Skew: s.skew},
				{Name: s.name + "_score", Min: 0, Max: 1000, Distinct: 1000, Dist: Normal},
			},
			Indexes: []Index{
				{Name: "pk_" + s.name, Column: s.name + "_id", Clustered: true},
				{Name: "ix_" + s.name + "_ts", Column: s.name + "_ts"},
			},
		}
		c.MustAddTable(t)
	}
	return c
}

// NewRD2 returns a synthetic catalog standing in for the paper's 780 GB
// real-world database RD2, which supported high-dimensional templates
// (d >= 5, up to 10 parameterized predicates): a wide fact table with many
// filterable attributes plus a ring of dimensions.
func NewRD2() *Catalog {
	c := New("rd2")
	fact := &Table{
		Name: "facts", Rows: 100_000_000, RowBytes: 200,
		Columns: []Column{
			{Name: "f_id", Min: 0, Max: 1e8, Distinct: 100_000_000, Dist: Sequential},
		},
		Indexes: []Index{
			{Name: "pk_facts", Column: "f_id", Clustered: true},
		},
	}
	// Twelve filterable measure/attribute columns with varied distributions,
	// enough for templates with up to 10 parameterized predicates on the
	// fact table alone.
	dists := []Distribution{Uniform, Zipf, Normal, Uniform, Zipf, Zipf, Normal, Uniform, Zipf, Uniform, Normal, Zipf}
	for i, d := range dists {
		col := Column{
			Name:     fmt.Sprintf("f_attr%02d", i),
			Min:      0,
			Max:      float64(1000 * (i + 1)),
			Distinct: int64(10000 * (i + 1)),
			Dist:     d,
			Skew:     0.5 + 0.1*float64(i%5),
		}
		fact.Columns = append(fact.Columns, col)
		if i%3 == 0 {
			fact.Indexes = append(fact.Indexes, Index{Name: fmt.Sprintf("ix_f_attr%02d", i), Column: col.Name})
		}
	}
	for i := 0; i < 6; i++ {
		fact.Columns = append(fact.Columns, Column{
			Name: fmt.Sprintf("f_dim%d_fk", i), Min: 0, Max: float64(200_000 * (i + 1)),
			Distinct: int64(200_000 * (i + 1)), Dist: Zipf, Skew: 0.9,
		})
	}
	c.MustAddTable(fact)
	for i := 0; i < 6; i++ {
		rows := int64(200_000 * (i + 1))
		name := fmt.Sprintf("dim%d", i)
		c.MustAddTable(&Table{
			Name: name, Rows: rows, RowBytes: 120,
			Columns: []Column{
				{Name: name + "_id", Min: 0, Max: float64(rows), Distinct: rows, Dist: Sequential},
				{Name: name + "_attr", Min: 0, Max: 5000, Distinct: 5000, Dist: Zipf, Skew: 0.6},
				{Name: name + "_grade", Min: 0, Max: 100, Distinct: 100, Dist: Normal},
			},
			Indexes: []Index{
				{Name: "pk_" + name, Column: name + "_id", Clustered: true},
			},
		})
	}
	return c
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
