// Package catalog defines database schemas and table-level metadata used by
// the optimizer, statistics builder, data generator and execution engine.
//
// A Catalog is a purely descriptive object: it records tables, columns,
// indexes and base cardinalities, together with the value distribution of
// each column. Actual rows are produced by package datagen and histograms by
// package stats; both consume the distribution descriptors stored here.
package catalog

import (
	"fmt"
	"sort"
)

// Distribution identifies the shape of the value distribution of a column.
type Distribution int

const (
	// Uniform values are spread evenly across [Min, Max].
	Uniform Distribution = iota
	// Zipf values are skewed towards Min with exponent Skew.
	Zipf
	// Normal values cluster around the midpoint of [Min, Max].
	Normal
	// Sequential values are a dense sequence 0..Rows-1 (typical keys).
	Sequential
)

// String returns the distribution name.
func (d Distribution) String() string {
	switch d {
	case Uniform:
		return "uniform"
	case Zipf:
		return "zipf"
	case Normal:
		return "normal"
	case Sequential:
		return "sequential"
	default:
		return fmt.Sprintf("distribution(%d)", int(d))
	}
}

// Column describes a single (numeric) attribute of a table.
//
// All columns are modeled as float64-valued. This is sufficient for the
// reproduction: the paper's parameterized predicates are one-sided range
// predicates over ordered domains, and ordered numeric domains capture the
// selectivity behaviour of dates, keys and amounts alike.
type Column struct {
	Name     string
	Min, Max float64
	Distinct int64
	Dist     Distribution
	// Skew is the Zipf exponent; ignored for other distributions.
	Skew float64
}

// Index describes a secondary or clustered index on a prefix of columns.
type Index struct {
	Name      string
	Column    string
	Clustered bool
}

// Table describes a base relation.
type Table struct {
	Name     string
	Rows     int64
	RowBytes int
	Columns  []Column
	Indexes  []Index
}

// Column returns the named column, or nil if the table has no such column.
func (t *Table) Column(name string) *Column {
	for i := range t.Columns {
		if t.Columns[i].Name == name {
			return &t.Columns[i]
		}
	}
	return nil
}

// HasIndex reports whether an index exists whose key is the given column.
func (t *Table) HasIndex(column string) bool {
	for _, ix := range t.Indexes {
		if ix.Column == column {
			return true
		}
	}
	return false
}

// Pages returns the number of disk pages occupied by the table, assuming the
// conventional 8 KiB page size.
func (t *Table) Pages() float64 {
	const pageBytes = 8192
	p := float64(t.Rows) * float64(t.RowBytes) / pageBytes
	if p < 1 {
		return 1
	}
	return p
}

// Catalog is a named collection of tables.
type Catalog struct {
	Name   string
	tables map[string]*Table
}

// New returns an empty catalog with the given name.
func New(name string) *Catalog {
	return &Catalog{Name: name, tables: make(map[string]*Table)}
}

// AddTable registers a table. It returns an error if a table with the same
// name is already present or if the definition is inconsistent.
func (c *Catalog) AddTable(t *Table) error {
	if t.Name == "" {
		return fmt.Errorf("catalog %s: table with empty name", c.Name)
	}
	if _, dup := c.tables[t.Name]; dup {
		return fmt.Errorf("catalog %s: duplicate table %s", c.Name, t.Name)
	}
	if t.Rows <= 0 {
		return fmt.Errorf("catalog %s: table %s has non-positive row count %d", c.Name, t.Name, t.Rows)
	}
	if len(t.Columns) == 0 {
		return fmt.Errorf("catalog %s: table %s has no columns", c.Name, t.Name)
	}
	seen := make(map[string]bool, len(t.Columns))
	for _, col := range t.Columns {
		if col.Name == "" {
			return fmt.Errorf("catalog %s: table %s has a column with empty name", c.Name, t.Name)
		}
		if seen[col.Name] {
			return fmt.Errorf("catalog %s: table %s has duplicate column %s", c.Name, t.Name, col.Name)
		}
		seen[col.Name] = true
		if col.Max < col.Min {
			return fmt.Errorf("catalog %s: table %s column %s has Max < Min", c.Name, t.Name, col.Name)
		}
		if col.Distinct <= 0 {
			return fmt.Errorf("catalog %s: table %s column %s has non-positive distinct count", c.Name, t.Name, col.Name)
		}
	}
	for _, ix := range t.Indexes {
		if !seen[ix.Column] {
			return fmt.Errorf("catalog %s: table %s index %s references unknown column %s",
				c.Name, t.Name, ix.Name, ix.Column)
		}
	}
	c.tables[t.Name] = t
	return nil
}

// MustAddTable is AddTable but panics on error; intended for the built-in
// catalog constructors whose definitions are statically known to be valid.
func (c *Catalog) MustAddTable(t *Table) {
	if err := c.AddTable(t); err != nil {
		panic(err)
	}
}

// Table returns the named table, or nil if absent.
func (c *Catalog) Table(name string) *Table {
	return c.tables[name]
}

// Tables returns all tables sorted by name.
func (c *Catalog) Tables() []*Table {
	out := make([]*Table, 0, len(c.tables))
	for _, t := range c.tables {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// NumTables returns the number of tables in the catalog.
func (c *Catalog) NumTables() int { return len(c.tables) }
