package catalog

import (
	"strings"
	"testing"
)

func TestAddTableValidation(t *testing.T) {
	cases := []struct {
		name    string
		table   *Table
		wantErr string
	}{
		{
			name:    "empty name",
			table:   &Table{Rows: 1, Columns: []Column{{Name: "a", Max: 1, Distinct: 1}}},
			wantErr: "empty name",
		},
		{
			name:    "non-positive rows",
			table:   &Table{Name: "t", Rows: 0, Columns: []Column{{Name: "a", Max: 1, Distinct: 1}}},
			wantErr: "non-positive row count",
		},
		{
			name:    "no columns",
			table:   &Table{Name: "t", Rows: 1},
			wantErr: "no columns",
		},
		{
			name: "duplicate column",
			table: &Table{Name: "t", Rows: 1, Columns: []Column{
				{Name: "a", Max: 1, Distinct: 1}, {Name: "a", Max: 1, Distinct: 1},
			}},
			wantErr: "duplicate column",
		},
		{
			name: "max below min",
			table: &Table{Name: "t", Rows: 1, Columns: []Column{
				{Name: "a", Min: 5, Max: 1, Distinct: 1},
			}},
			wantErr: "Max < Min",
		},
		{
			name: "bad distinct",
			table: &Table{Name: "t", Rows: 1, Columns: []Column{
				{Name: "a", Max: 1, Distinct: 0},
			}},
			wantErr: "distinct",
		},
		{
			name: "index on unknown column",
			table: &Table{Name: "t", Rows: 1,
				Columns: []Column{{Name: "a", Max: 1, Distinct: 1}},
				Indexes: []Index{{Name: "ix", Column: "zzz"}},
			},
			wantErr: "unknown column",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := New("test")
			err := c.AddTable(tc.table)
			if err == nil {
				t.Fatalf("AddTable(%v) succeeded, want error containing %q", tc.table, tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("AddTable error = %v, want containing %q", err, tc.wantErr)
			}
		})
	}
}

func TestAddTableDuplicate(t *testing.T) {
	c := New("test")
	tab := &Table{Name: "t", Rows: 10, Columns: []Column{{Name: "a", Max: 1, Distinct: 1}}}
	if err := c.AddTable(tab); err != nil {
		t.Fatalf("first AddTable: %v", err)
	}
	if err := c.AddTable(tab); err == nil {
		t.Fatal("second AddTable of same name succeeded, want duplicate error")
	}
}

func TestTableLookups(t *testing.T) {
	c := NewTPCH(0.01)
	li := c.Table("lineitem")
	if li == nil {
		t.Fatal("lineitem missing from TPCH catalog")
	}
	if col := li.Column("l_shipdate"); col == nil {
		t.Error("l_shipdate column missing")
	}
	if col := li.Column("no_such"); col != nil {
		t.Errorf("Column(no_such) = %v, want nil", col)
	}
	if !li.HasIndex("l_shipdate") {
		t.Error("expected index on l_shipdate")
	}
	if li.HasIndex("l_discount") {
		t.Error("unexpected index on l_discount")
	}
	if c.Table("bogus") != nil {
		t.Error("Table(bogus) should be nil")
	}
}

func TestPagesAtLeastOne(t *testing.T) {
	tiny := &Table{Name: "tiny", Rows: 1, RowBytes: 8}
	if got := tiny.Pages(); got != 1 {
		t.Errorf("Pages() = %v, want 1 for tiny table", got)
	}
	big := &Table{Name: "big", Rows: 1_000_000, RowBytes: 100}
	if got := big.Pages(); got <= 1000 {
		t.Errorf("Pages() = %v, want > 1000 for 100MB table", got)
	}
}

func TestBuiltinCatalogsWellFormed(t *testing.T) {
	cats := []*Catalog{NewTPCH(1), NewTPCH(0), NewTPCDS(1), NewTPCDS(0), NewRD1(), NewRD2()}
	for _, c := range cats {
		if c.NumTables() == 0 {
			t.Errorf("catalog %s has no tables", c.Name)
		}
		for _, tab := range c.Tables() {
			if tab.Rows <= 0 {
				t.Errorf("%s.%s has %d rows", c.Name, tab.Name, tab.Rows)
			}
			if len(tab.Columns) == 0 {
				t.Errorf("%s.%s has no columns", c.Name, tab.Name)
			}
		}
	}
}

func TestTablesSorted(t *testing.T) {
	c := NewTPCDS(1)
	tabs := c.Tables()
	for i := 1; i < len(tabs); i++ {
		if tabs[i-1].Name >= tabs[i].Name {
			t.Fatalf("Tables() not sorted: %s before %s", tabs[i-1].Name, tabs[i].Name)
		}
	}
}

func TestScaleFactorScalesRows(t *testing.T) {
	small := NewTPCH(0.01)
	big := NewTPCH(1)
	if small.Table("lineitem").Rows >= big.Table("lineitem").Rows {
		t.Error("scale factor did not scale lineitem rows")
	}
	// Fixed-size tables must not scale.
	if small.Table("nation").Rows != big.Table("nation").Rows {
		t.Error("nation should not scale with sf")
	}
}

func TestRD2SupportsHighDimensionalTemplates(t *testing.T) {
	c := NewRD2()
	f := c.Table("facts")
	if f == nil {
		t.Fatal("facts table missing")
	}
	attrs := 0
	for _, col := range f.Columns {
		if strings.HasPrefix(col.Name, "f_attr") {
			attrs++
		}
	}
	if attrs < 10 {
		t.Errorf("facts has %d filterable attrs, want >= 10 for d=10 templates", attrs)
	}
}

func TestDistributionString(t *testing.T) {
	want := map[Distribution]string{
		Uniform: "uniform", Zipf: "zipf", Normal: "normal", Sequential: "sequential",
	}
	for d, s := range want {
		if d.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(d), d.String(), s)
		}
	}
	if got := Distribution(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown distribution String() = %q", got)
	}
}
