// Package diagram builds plan diagrams — the per-cell optimal-plan maps
// over a 2-d selectivity grid introduced by Reddy & Haritsa and central to
// the PQO literature the paper builds on — and implements the "anorexic"
// reduction of Harish et al. [8 in the paper]: collapsing a diagram to the
// minimal plan set that keeps every cell within a cost-increase threshold
// λ. The reduction is the offline complement of SCR's online redundancy
// check; its output cardinality explains why a small plan cache can cover
// a large selectivity space.
package diagram

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/engine"
)

// Diagram is a plan diagram over a log-scaled 2-d selectivity grid.
type Diagram struct {
	// Grid is the resolution per axis; Lo/Hi the selectivity range.
	Grid   int
	Lo, Hi float64
	// Plans are the distinct optimal plans, in first-seen order.
	Plans []*engine.CachedPlan
	// Cell[y][x] is the index into Plans of the winner at that grid point;
	// WinnerCost[y][x] its optimal cost.
	Cell       [][]int
	WinnerCost [][]float64

	eng *engine.TemplateEngine
}

// Build optimizes every grid point of a 2-d template.
func Build(eng *engine.TemplateEngine, grid int, lo, hi float64) (*Diagram, error) {
	if eng.Dimensions() != 2 {
		return nil, fmt.Errorf("diagram: need a 2-d template, have d=%d", eng.Dimensions())
	}
	if grid < 2 {
		return nil, fmt.Errorf("diagram: grid %d too small", grid)
	}
	if lo <= 0 || hi <= lo || hi > 1 {
		return nil, fmt.Errorf("diagram: invalid selectivity range [%v, %v]", lo, hi)
	}
	d := &Diagram{Grid: grid, Lo: lo, Hi: hi, eng: eng}
	index := map[string]int{}
	d.Cell = make([][]int, grid)
	d.WinnerCost = make([][]float64, grid)
	for y := 0; y < grid; y++ {
		d.Cell[y] = make([]int, grid)
		d.WinnerCost[y] = make([]float64, grid)
		for x := 0; x < grid; x++ {
			sv := []float64{d.Axis(x), d.Axis(y)}
			cp, c, err := eng.Optimize(sv)
			if err != nil {
				return nil, fmt.Errorf("diagram: optimizing cell (%d,%d): %w", x, y, err)
			}
			fp := cp.Fingerprint()
			idx, seen := index[fp]
			if !seen {
				idx = len(d.Plans)
				index[fp] = idx
				d.Plans = append(d.Plans, cp)
			}
			d.Cell[y][x] = idx
			d.WinnerCost[y][x] = c
		}
	}
	return d, nil
}

// Axis maps a grid coordinate to its selectivity value (log scale).
func (d *Diagram) Axis(i int) float64 {
	t := float64(i) / float64(d.Grid-1)
	return math.Exp(math.Log(d.Lo) + t*(math.Log(d.Hi)-math.Log(d.Lo)))
}

// NumPlans returns the diagram's plan cardinality.
func (d *Diagram) NumPlans() int { return len(d.Plans) }

// CellCounts returns the number of cells won by each plan.
func (d *Diagram) CellCounts() []int {
	counts := make([]int, len(d.Plans))
	for _, row := range d.Cell {
		for _, idx := range row {
			counts[idx]++
		}
	}
	return counts
}

// Reduce performs the anorexic reduction: it returns a new Diagram whose
// cells are reassigned to a subset of plans such that every cell's cost is
// within the factor lambda of its original winner cost. The greedy
// "swallowing" strategy of Harish et al. is used: repeatedly retire the
// plan with the fewest cells whose cells can all be λ-covered by surviving
// plans.
func (d *Diagram) Reduce(lambda float64) (*Diagram, error) {
	if lambda < 1 {
		return nil, fmt.Errorf("diagram: reduction threshold %v must be >= 1", lambda)
	}
	// costs[p][y][x]: plan p recosted at every cell (computed lazily, one
	// plan at a time, cached).
	costCache := make([][][]float64, len(d.Plans))
	planCost := func(p, y, x int) (float64, error) {
		if costCache[p] == nil {
			grid := make([][]float64, d.Grid)
			for yy := 0; yy < d.Grid; yy++ {
				grid[yy] = make([]float64, d.Grid)
				for xx := 0; xx < d.Grid; xx++ {
					c, err := d.eng.Recost(d.Plans[p], []float64{d.Axis(xx), d.Axis(yy)})
					if err != nil {
						return 0, err
					}
					grid[yy][xx] = c
				}
			}
			costCache[p] = grid
		}
		return costCache[p][y][x], nil
	}

	alive := make([]bool, len(d.Plans))
	for i := range alive {
		alive[i] = true
	}
	assign := make([][]int, d.Grid)
	for y := range assign {
		assign[y] = make([]int, d.Grid)
		copy(assign[y], d.Cell[y])
	}

	for {
		// Candidate victim: the alive plan with the fewest assigned cells
		// whose every cell can be re-covered within λ by another alive plan.
		counts := make([]int, len(d.Plans))
		for y := 0; y < d.Grid; y++ {
			for x := 0; x < d.Grid; x++ {
				counts[assign[y][x]]++
			}
		}
		type victim struct {
			p     int
			cells int
		}
		var order []victim
		for p, a := range alive {
			if a && counts[p] > 0 {
				order = append(order, victim{p: p, cells: counts[p]})
			}
		}
		// Smallest region first.
		for i := 1; i < len(order); i++ {
			for j := i; j > 0 && order[j].cells < order[j-1].cells; j-- {
				order[j], order[j-1] = order[j-1], order[j]
			}
		}
		retired := false
		for _, v := range order {
			if countAlive(alive) <= 1 {
				break
			}
			// Try to re-cover every cell of v.p.
			type move struct{ y, x, to int }
			var moves []move
			ok := true
			for y := 0; y < d.Grid && ok; y++ {
				for x := 0; x < d.Grid && ok; x++ {
					if assign[y][x] != v.p {
						continue
					}
					found := false
					for q, qa := range alive {
						if !qa || q == v.p {
							continue
						}
						c, err := planCost(q, y, x)
						if err != nil {
							return nil, err
						}
						if c <= lambda*d.WinnerCost[y][x] {
							moves = append(moves, move{y: y, x: x, to: q})
							found = true
							break
						}
					}
					if !found {
						ok = false
					}
				}
			}
			if !ok {
				continue
			}
			for _, m := range moves {
				assign[m.y][m.x] = m.to
			}
			alive[v.p] = false
			retired = true
			break
		}
		if !retired {
			break
		}
	}

	// Repack the surviving plans.
	out := &Diagram{Grid: d.Grid, Lo: d.Lo, Hi: d.Hi, eng: d.eng}
	remap := make([]int, len(d.Plans))
	for p, a := range alive {
		remap[p] = -1
		if a {
			remap[p] = len(out.Plans)
			out.Plans = append(out.Plans, d.Plans[p])
		}
	}
	out.Cell = make([][]int, d.Grid)
	out.WinnerCost = make([][]float64, d.Grid)
	for y := 0; y < d.Grid; y++ {
		out.Cell[y] = make([]int, d.Grid)
		out.WinnerCost[y] = make([]float64, d.Grid)
		copy(out.WinnerCost[y], d.WinnerCost[y])
		for x := 0; x < d.Grid; x++ {
			idx := remap[assign[y][x]]
			if idx < 0 {
				return nil, fmt.Errorf("diagram: internal error: cell assigned to retired plan")
			}
			out.Cell[y][x] = idx
		}
	}
	return out, nil
}

func countAlive(alive []bool) int {
	n := 0
	for _, a := range alive {
		if a {
			n++
		}
	}
	return n
}

// MaxSubOptimality returns the worst Cost(assigned, cell)/WinnerCost over
// the diagram — 1.0 for an unreduced diagram, ≤ λ after Reduce(λ).
func (d *Diagram) MaxSubOptimality() (float64, error) {
	worst := 1.0
	for y := 0; y < d.Grid; y++ {
		for x := 0; x < d.Grid; x++ {
			c, err := d.eng.Recost(d.Plans[d.Cell[y][x]], []float64{d.Axis(x), d.Axis(y)})
			if err != nil {
				return 0, err
			}
			if so := c / d.WinnerCost[y][x]; so > worst {
				worst = so
			}
		}
	}
	return worst, nil
}

// Render draws the diagram as ASCII art, one letter per plan.
func (d *Diagram) Render() string {
	const letters = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"
	var b strings.Builder
	for y := d.Grid - 1; y >= 0; y-- {
		for x := 0; x < d.Grid; x++ {
			idx := d.Cell[y][x]
			if idx < len(letters) {
				b.WriteByte(letters[idx])
			} else {
				b.WriteByte('?')
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
