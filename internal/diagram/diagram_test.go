package diagram

import (
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/engine"
	"repro/internal/query"
)

func testEngine(t testing.TB) *engine.TemplateEngine {
	t.Helper()
	sys, err := engine.NewSystem(catalog.NewTPCH(0.1), 42)
	if err != nil {
		t.Fatal(err)
	}
	tpl := &query.Template{
		Name:    "diag2d",
		Catalog: sys.Cat,
		Tables:  []string{"lineitem", "orders"},
		Joins: []query.Join{{Left: "lineitem", Right: "orders",
			LeftCol: "l_orderkey", RightCol: "o_orderkey", Selectivity: 1.0 / 150_000}},
		Preds: []query.Predicate{
			{Table: "lineitem", Column: "l_shipdate", Op: query.LE, Param: 0},
			{Table: "orders", Column: "o_orderdate", Op: query.LE, Param: 1},
		},
	}
	eng, err := sys.EngineFor(tpl)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestBuildValidation(t *testing.T) {
	eng := testEngine(t)
	if _, err := Build(eng, 1, 1e-4, 0.9); err == nil {
		t.Error("grid=1 should fail")
	}
	if _, err := Build(eng, 8, 0, 0.9); err == nil {
		t.Error("lo=0 should fail")
	}
	if _, err := Build(eng, 8, 0.5, 0.1); err == nil {
		t.Error("hi<lo should fail")
	}
	if _, err := Build(eng, 8, 0.1, 2); err == nil {
		t.Error("hi>1 should fail")
	}
}

func TestBuildProducesMultiPlanDiagram(t *testing.T) {
	eng := testEngine(t)
	d, err := Build(eng, 12, 1e-4, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumPlans() < 3 {
		t.Errorf("diagram has %d plans, expected a rich 2-d diagram", d.NumPlans())
	}
	counts := d.CellCounts()
	total := 0
	for _, c := range counts {
		if c == 0 {
			t.Error("a plan with zero cells should not be in the diagram")
		}
		total += c
	}
	if total != 12*12 {
		t.Errorf("cell counts sum %d, want %d", total, 144)
	}
	// Winner costs positive, and the base diagram's assignment is optimal.
	so, err := d.MaxSubOptimality()
	if err != nil {
		t.Fatal(err)
	}
	if so > 1+1e-9 {
		t.Errorf("base diagram max sub-optimality %v, want 1", so)
	}
	// Rendering is grid-shaped.
	lines := strings.Split(strings.TrimRight(d.Render(), "\n"), "\n")
	if len(lines) != 12 || len(lines[0]) != 12 {
		t.Errorf("render shape %dx%d, want 12x12", len(lines), len(lines[0]))
	}
}

func TestAnorexicReduction(t *testing.T) {
	eng := testEngine(t)
	d, err := Build(eng, 12, 1e-4, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	base := d.NumPlans()

	prev := base + 1
	for _, lambda := range []float64{1.05, 1.2, 2.0, 10.0} {
		r, err := d.Reduce(lambda)
		if err != nil {
			t.Fatal(err)
		}
		if r.NumPlans() > base {
			t.Errorf("λ=%v: reduction grew the plan set (%d > %d)", lambda, r.NumPlans(), base)
		}
		// Monotone: a looser threshold never needs more plans.
		if r.NumPlans() > prev {
			t.Errorf("λ=%v needs %d plans, tighter threshold needed %d", lambda, r.NumPlans(), prev)
		}
		prev = r.NumPlans()
		// The reduced assignment respects the threshold everywhere.
		so, err := r.MaxSubOptimality()
		if err != nil {
			t.Fatal(err)
		}
		if so > lambda*(1+1e-9) {
			t.Errorf("λ=%v: reduced diagram has sub-optimality %v", lambda, so)
		}
	}
	// The headline: a λ=2 anorexic diagram needs very few plans — the
	// offline analogue of SCR's small plan cache.
	r2, err := d.Reduce(2)
	if err != nil {
		t.Fatal(err)
	}
	if r2.NumPlans() > (base+1)/2 {
		t.Errorf("λ=2 reduction kept %d of %d plans; expected at least half retired", r2.NumPlans(), base)
	}
	t.Logf("anorexic reduction: %d plans → %d at λ=1.05 → %d at λ=2",
		base, mustPlans(t, d, 1.05), r2.NumPlans())
}

func mustPlans(t *testing.T, d *Diagram, lambda float64) int {
	t.Helper()
	r, err := d.Reduce(lambda)
	if err != nil {
		t.Fatal(err)
	}
	return r.NumPlans()
}

func TestReduceValidation(t *testing.T) {
	eng := testEngine(t)
	d, err := Build(eng, 6, 1e-3, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Reduce(0.9); err == nil {
		t.Error("λ<1 should fail")
	}
	// λ=1 is a no-op reduction (only exact-cost swallowing possible).
	r, err := d.Reduce(1)
	if err != nil {
		t.Fatal(err)
	}
	if r.NumPlans() > d.NumPlans() {
		t.Error("λ=1 reduction grew the plan set")
	}
}
