// Package sqlparse parses a SQL subset into query templates, so templates
// can be declared as SQL text rather than Go structs:
//
//	SELECT * FROM lineitem, orders
//	WHERE lineitem.l_orderkey = orders.o_orderkey
//	  AND lineitem.l_shipdate <= ?0
//	  AND orders.o_totalprice >= 1000
//	[GROUP BY g]
//
// Supported: multi-table FROM lists, conjunctive WHERE clauses mixing
// equi-join conditions (table.col = table.col), parameterized one-sided
// range predicates (table.col <= ?N / >= ?N) and constant range predicates
// (table.col <= literal). Join selectivities are derived from the catalog
// as 1/distinct(key column), the standard foreign-key estimate.
package sqlparse

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind enumerates lexical token classes.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokParam // ?N
	tokComma
	tokDot
	tokStar
	tokLParen
	tokRParen
	tokEq
	tokLE
	tokGE
	tokLT
	tokGT
	tokKeyword
)

// token is one lexical token with its source position for error messages.
type token struct {
	kind tokenKind
	text string
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

// keywords recognized case-insensitively.
var keywords = map[string]bool{
	"select": true, "from": true, "where": true, "and": true,
	"group": true, "by": true, "count": true, "as": true,
}

// lex tokenizes the input. It returns an error for any unsupported rune.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == ',':
			toks = append(toks, token{tokComma, ",", i})
			i++
		case c == '.':
			toks = append(toks, token{tokDot, ".", i})
			i++
		case c == '*':
			toks = append(toks, token{tokStar, "*", i})
			i++
		case c == '(':
			toks = append(toks, token{tokLParen, "(", i})
			i++
		case c == ')':
			toks = append(toks, token{tokRParen, ")", i})
			i++
		case c == '=':
			toks = append(toks, token{tokEq, "=", i})
			i++
		case c == '<':
			if i+1 < n && input[i+1] == '=' {
				toks = append(toks, token{tokLE, "<=", i})
				i += 2
			} else {
				toks = append(toks, token{tokLT, "<", i})
				i++
			}
		case c == '>':
			if i+1 < n && input[i+1] == '=' {
				toks = append(toks, token{tokGE, ">=", i})
				i += 2
			} else {
				toks = append(toks, token{tokGT, ">", i})
				i++
			}
		case c == '?':
			j := i + 1
			for j < n && isDigit(input[j]) {
				j++
			}
			toks = append(toks, token{tokParam, input[i:j], i})
			i = j
		case isDigit(c) || (c == '-' && i+1 < n && isDigit(input[i+1])):
			j := i + 1
			seenDot := false
			for j < n && (isDigit(input[j]) || (!seenDot && input[j] == '.') ||
				input[j] == 'e' || input[j] == 'E' ||
				((input[j] == '+' || input[j] == '-') && (input[j-1] == 'e' || input[j-1] == 'E'))) {
				if input[j] == '.' {
					// A dot followed by a non-digit terminates the number
					// (e.g. "1.x" is not a valid literal here).
					if j+1 >= n || !isDigit(input[j+1]) {
						break
					}
					seenDot = true
				}
				j++
			}
			toks = append(toks, token{tokNumber, input[i:j], i})
			i = j
		case isIdentStart(rune(c)):
			j := i + 1
			for j < n && isIdentPart(rune(input[j])) {
				j++
			}
			word := input[i:j]
			if keywords[strings.ToLower(word)] {
				toks = append(toks, token{tokKeyword, strings.ToLower(word), i})
			} else {
				toks = append(toks, token{tokIdent, word, i})
			}
			i = j
		default:
			return nil, fmt.Errorf("sqlparse: unexpected character %q at offset %d", c, i)
		}
	}
	toks = append(toks, token{tokEOF, "", n})
	return toks, nil
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}
