package sqlparse

import (
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/query"
)

func cat(t *testing.T) *catalog.Catalog {
	t.Helper()
	return catalog.NewTPCH(0.1)
}

func TestParseBasicJoinTemplate(t *testing.T) {
	sql := `SELECT * FROM lineitem, orders
	        WHERE lineitem.l_orderkey = orders.o_orderkey
	          AND lineitem.l_shipdate <= ?0
	          AND orders.o_totalprice >= ?1`
	tpl, err := Parse("q", sql, cat(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(tpl.Tables) != 2 || tpl.Tables[0] != "lineitem" || tpl.Tables[1] != "orders" {
		t.Errorf("tables = %v", tpl.Tables)
	}
	if len(tpl.Joins) != 1 {
		t.Fatalf("joins = %v", tpl.Joins)
	}
	j := tpl.Joins[0]
	if j.Left != "lineitem" || j.LeftCol != "l_orderkey" || j.Right != "orders" || j.RightCol != "o_orderkey" {
		t.Errorf("join = %+v", j)
	}
	if j.Selectivity <= 0 || j.Selectivity > 1e-5 {
		t.Errorf("join selectivity = %v, want ~1/1.5e5", j.Selectivity)
	}
	if tpl.Dimensions() != 2 {
		t.Errorf("dimensions = %d", tpl.Dimensions())
	}
	pp := tpl.ParamPredicates()
	if pp[0].Column != "l_shipdate" || pp[0].Op != query.LE {
		t.Errorf("param 0 = %+v", pp[0])
	}
	if pp[1].Column != "o_totalprice" || pp[1].Op != query.GE {
		t.Errorf("param 1 = %+v", pp[1])
	}
}

func TestParseConstantsAndStrictOps(t *testing.T) {
	sql := `SELECT * FROM lineitem
	        WHERE lineitem.l_shipdate < ?0
	          AND lineitem.l_quantity > 25
	          AND lineitem.l_discount <= 0.05`
	tpl, err := Parse("q", sql, cat(t))
	if err != nil {
		t.Fatal(err)
	}
	if tpl.Dimensions() != 1 {
		t.Fatalf("dimensions = %d", tpl.Dimensions())
	}
	consts := 0
	for _, p := range tpl.Preds {
		if p.Param == -1 {
			consts++
			if p.Column == "l_quantity" && (p.Op != query.GE || p.Value != 25) {
				t.Errorf("l_quantity pred = %+v", p)
			}
			if p.Column == "l_discount" && (p.Op != query.LE || p.Value != 0.05) {
				t.Errorf("l_discount pred = %+v", p)
			}
		}
	}
	if consts != 2 {
		t.Errorf("constant predicates = %d, want 2", consts)
	}
}

func TestParseAnonymousParams(t *testing.T) {
	sql := `SELECT * FROM lineitem
	        WHERE lineitem.l_shipdate <= ? AND lineitem.l_quantity >= ?`
	tpl, err := Parse("q", sql, cat(t))
	if err != nil {
		t.Fatal(err)
	}
	if tpl.Dimensions() != 2 {
		t.Fatalf("dimensions = %d, want 2", tpl.Dimensions())
	}
	pp := tpl.ParamPredicates()
	if pp[0].Column != "l_shipdate" || pp[1].Column != "l_quantity" {
		t.Errorf("anonymous params not in syntactic order: %+v", pp)
	}
}

func TestParseMixedAnonymousAndExplicit(t *testing.T) {
	sql := `SELECT * FROM lineitem
	        WHERE lineitem.l_shipdate <= ?1 AND lineitem.l_quantity >= ?`
	tpl, err := Parse("q", sql, cat(t))
	if err != nil {
		t.Fatal(err)
	}
	pp := tpl.ParamPredicates()
	if pp[1].Column != "l_shipdate" || pp[0].Column != "l_quantity" {
		t.Errorf("mixed numbering wrong: %+v", pp)
	}
}

func TestParseGroupBy(t *testing.T) {
	for _, sql := range []string{
		`SELECT g, COUNT(*) FROM lineitem WHERE lineitem.l_shipdate <= ?0 GROUP BY g`,
		`SELECT * FROM lineitem WHERE lineitem.l_shipdate <= ?0 GROUP BY lineitem.l_partkey`,
	} {
		tpl, err := Parse("q", sql, cat(t))
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		if tpl.Agg != query.GroupBy {
			t.Errorf("%s: Agg = %v, want GroupBy", sql, tpl.Agg)
		}
		if tpl.GroupCard <= 0 {
			t.Errorf("GroupCard = %v", tpl.GroupCard)
		}
	}
}

func TestParseThreeWayJoin(t *testing.T) {
	sql := `SELECT * FROM lineitem, orders, customer
	        WHERE lineitem.l_orderkey = orders.o_orderkey
	          AND orders.o_custkey = customer.c_custkey
	          AND lineitem.l_shipdate <= ?0
	          AND customer.c_acctbal >= ?1`
	tpl, err := Parse("q", sql, cat(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(tpl.Joins) != 2 || len(tpl.Tables) != 3 {
		t.Errorf("joins=%d tables=%d", len(tpl.Joins), len(tpl.Tables))
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		sql  string
		want string
	}{
		{"garbage rune", `SELECT * FROM a WHERE a.b <= 'x'`, "unexpected character"},
		{"missing select", `FROM lineitem`, `expected "select"`},
		{"missing from", `SELECT * lineitem`, `expected "from"`},
		{"bad projection", `SELECT <= FROM lineitem`, "unexpected"},
		{"join to literal", `SELECT * FROM lineitem WHERE lineitem.l_orderkey = 3`, "table name"},
		{"pred without dot", `SELECT * FROM lineitem WHERE shipdate <= ?0`, "'.'"},
		{"bad op", `SELECT * FROM lineitem WHERE lineitem.l_shipdate , ?0`, "comparison operator"},
		{"dup param", `SELECT * FROM lineitem WHERE lineitem.l_shipdate <= ?0 AND lineitem.l_quantity >= ?0`, "twice"},
		{"unknown table", `SELECT * FROM nope WHERE nope.x <= ?0`, "unknown table"},
		{"unknown column", `SELECT * FROM lineitem WHERE lineitem.zzz <= ?0`, "unknown column"},
		{"trailing junk", `SELECT * FROM lineitem WHERE lineitem.l_shipdate <= ?0 ) `, "unexpected"},
		{"disconnected", `SELECT * FROM lineitem, part WHERE lineitem.l_shipdate <= ?0`, "not connected"},
		{"sparse params", `SELECT * FROM lineitem WHERE lineitem.l_shipdate <= ?5`, "not dense"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse("q", tc.sql, cat(t))
			if err == nil {
				t.Fatalf("Parse(%q) succeeded, want error containing %q", tc.sql, tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Parse(%q) error = %v, want containing %q", tc.sql, err, tc.want)
			}
		})
	}
}

func TestParseRoundTripsThroughSQLRendering(t *testing.T) {
	// The template's own SQL() rendering must re-parse to an equivalent
	// template (fixed point after one iteration).
	sql := `SELECT * FROM lineitem, orders
	        WHERE lineitem.l_orderkey = orders.o_orderkey
	          AND lineitem.l_shipdate <= ?0
	          AND orders.o_totalprice >= 500`
	c := cat(t)
	tpl, err := Parse("q", sql, c)
	if err != nil {
		t.Fatal(err)
	}
	re, err := Parse("q", tpl.SQL(), c)
	if err != nil {
		t.Fatalf("re-parsing %q: %v", tpl.SQL(), err)
	}
	if re.SQL() != tpl.SQL() {
		t.Errorf("round trip diverged:\n  %s\n  %s", tpl.SQL(), re.SQL())
	}
}

func TestParsedTemplateOptimizes(t *testing.T) {
	// Integration: a parsed template drives the optimizer end to end.
	sql := `SELECT * FROM lineitem, orders
	        WHERE lineitem.l_orderkey = orders.o_orderkey
	          AND lineitem.l_shipdate <= ?0
	          AND orders.o_orderdate <= ?1`
	c := cat(t)
	tpl, err := Parse("q", sql, c)
	if err != nil {
		t.Fatal(err)
	}
	if err := tpl.Validate(); err != nil {
		t.Fatal(err)
	}
	if tpl.Dimensions() != 2 {
		t.Fatalf("dimensions = %d", tpl.Dimensions())
	}
}

func TestNumbersAndScientificNotation(t *testing.T) {
	sql := `SELECT * FROM lineitem WHERE lineitem.l_extendedprice <= 1.5e4 AND lineitem.l_shipdate <= ?0`
	tpl, err := Parse("q", sql, cat(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range tpl.Preds {
		if p.Param == -1 && p.Value != 1.5e4 {
			t.Errorf("literal parsed as %v, want 15000", p.Value)
		}
	}
}
