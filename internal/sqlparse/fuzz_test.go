package sqlparse

import (
	"testing"

	"repro/internal/catalog"
)

// FuzzParse checks the parser never panics and that every accepted input
// yields a template passing validation. The seed corpus covers every
// grammar production; `go test` replays the seeds, `go test -fuzz=FuzzParse
// ./internal/sqlparse` explores further.
func FuzzParse(f *testing.F) {
	seeds := []string{
		`SELECT * FROM lineitem WHERE lineitem.l_shipdate <= ?0`,
		`SELECT * FROM lineitem, orders WHERE lineitem.l_orderkey = orders.o_orderkey AND lineitem.l_shipdate <= ?0`,
		`SELECT g, COUNT(*) FROM lineitem WHERE lineitem.l_quantity >= ? GROUP BY g`,
		`SELECT * FROM lineitem WHERE lineitem.l_extendedprice <= 1.5e4`,
		`SELECT * FROM lineitem WHERE lineitem.l_shipdate < -3.5`,
		`select * from lineitem where lineitem.l_shipdate <= ?0 and lineitem.l_quantity >= ?1`,
		``,
		`SELECT`,
		`SELECT * FROM`,
		`SELECT * FROM lineitem WHERE`,
		`SELECT * FROM lineitem WHERE lineitem.`,
		`SELECT * FROM lineitem WHERE lineitem.l_shipdate`,
		`SELECT * FROM lineitem WHERE lineitem.l_shipdate <=`,
		`SELECT * FROM lineitem WHERE lineitem.l_shipdate <= ?`,
		`SELECT (((((`,
		`SELECT * FROM a,b,c,d,e,f,g,h`,
		"SELECT * FROM lineitem -- comment?",
		"SELECT * FROM lineitem WHERE lineitem.l_shipdate <= ?0 GROUP BY",
		"SELECT COUNT(*), x FROM lineitem",
		"??0",
		"1e309",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	cat := catalog.NewTPCH(0.01)
	f.Fuzz(func(t *testing.T, sql string) {
		tpl, err := Parse("fuzz", sql, cat)
		if err != nil {
			return // rejected inputs are fine; panics are not
		}
		// Accepted templates must be internally consistent.
		if err := tpl.Validate(); err != nil {
			t.Fatalf("accepted template fails validation: %v\nSQL: %s", err, sql)
		}
		if tpl.Dimensions() < 0 {
			t.Fatalf("negative dimensions for %q", sql)
		}
	})
}

// FuzzLex checks the lexer in isolation: it must never panic and must
// always terminate with an EOF token.
func FuzzLex(f *testing.F) {
	for _, s := range []string{"", "a.b <= ?0", "<<=>>", "1.2.3", "?abc", "\x00\xff"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		toks, err := lex(input)
		if err != nil {
			return
		}
		if len(toks) == 0 || toks[len(toks)-1].kind != tokEOF {
			t.Fatalf("lex(%q) did not end with EOF", input)
		}
	})
}
