package sqlparse

import (
	"fmt"
	"strconv"

	"repro/internal/catalog"
	"repro/internal/query"
)

// Parse parses SQL text into a validated query template bound to cat. The
// template name is supplied by the caller.
func Parse(name, sql string, cat *catalog.Catalog) (*query.Template, error) {
	toks, err := lex(sql)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, cat: cat}
	tpl, err := p.parseSelect(name)
	if err != nil {
		return nil, err
	}
	if err := tpl.Validate(); err != nil {
		return nil, fmt.Errorf("sqlparse: %w", err)
	}
	return tpl, nil
}

type parser struct {
	toks []token
	i    int
	cat  *catalog.Catalog
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) expect(kind tokenKind, what string) (token, error) {
	t := p.next()
	if t.kind != kind {
		return t, fmt.Errorf("sqlparse: expected %s at offset %d, got %s", what, t.pos, t)
	}
	return t, nil
}

func (p *parser) expectKeyword(kw string) error {
	t := p.next()
	if t.kind != tokKeyword || t.text != kw {
		return fmt.Errorf("sqlparse: expected %q at offset %d, got %s", kw, t.pos, t)
	}
	return nil
}

// colRef is a parsed table.column reference.
type colRef struct {
	table, column string
}

func (p *parser) parseColRef() (colRef, error) {
	tab, err := p.expect(tokIdent, "table name")
	if err != nil {
		return colRef{}, err
	}
	if _, err := p.expect(tokDot, "'.'"); err != nil {
		return colRef{}, err
	}
	col, err := p.expect(tokIdent, "column name")
	if err != nil {
		return colRef{}, err
	}
	return colRef{table: tab.text, column: col.text}, nil
}

func (p *parser) parseSelect(name string) (*query.Template, error) {
	if err := p.expectKeyword("select"); err != nil {
		return nil, err
	}
	tpl := &query.Template{Name: name, Catalog: p.cat}

	// Projection: either '*' or an aggregation list containing COUNT(*).
	if p.cur().kind == tokStar {
		p.next()
	} else {
		hasCount, err := p.parseProjection()
		if err != nil {
			return nil, err
		}
		if hasCount {
			tpl.Agg = query.GroupBy
		}
	}

	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	for {
		t, err := p.expect(tokIdent, "table name")
		if err != nil {
			return nil, err
		}
		tpl.Tables = append(tpl.Tables, t.text)
		if p.cur().kind != tokComma {
			break
		}
		p.next()
	}

	if p.cur().kind == tokKeyword && p.cur().text == "where" {
		p.next()
		if err := p.parseConjuncts(tpl); err != nil {
			return nil, err
		}
	}

	if p.cur().kind == tokKeyword && p.cur().text == "group" {
		p.next()
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		// The grouping expression is a single identifier or column ref; it
		// only marks the template as aggregating.
		if _, err := p.expect(tokIdent, "grouping column"); err != nil {
			return nil, err
		}
		if p.cur().kind == tokDot {
			p.next()
			if _, err := p.expect(tokIdent, "grouping column"); err != nil {
				return nil, err
			}
		}
		tpl.Agg = query.GroupBy
	}
	if tpl.Agg == query.GroupBy && tpl.GroupCard == 0 {
		tpl.GroupCard = 100
	}

	if t := p.cur(); t.kind != tokEOF {
		return nil, fmt.Errorf("sqlparse: unexpected %s at offset %d", t, t.pos)
	}
	if err := p.numberParams(tpl); err != nil {
		return nil, err
	}
	return tpl, nil
}

// parseProjection consumes a projection list, reporting whether it contains
// a COUNT(*) aggregate.
func (p *parser) parseProjection() (bool, error) {
	hasCount := false
	for {
		t := p.next()
		switch {
		case t.kind == tokKeyword && t.text == "count":
			if _, err := p.expect(tokLParen, "'('"); err != nil {
				return false, err
			}
			if _, err := p.expect(tokStar, "'*'"); err != nil {
				return false, err
			}
			if _, err := p.expect(tokRParen, "')'"); err != nil {
				return false, err
			}
			hasCount = true
		case t.kind == tokIdent:
			// A bare column or table.column projection item.
			if p.cur().kind == tokDot {
				p.next()
				if _, err := p.expect(tokIdent, "column name"); err != nil {
					return false, err
				}
			}
		default:
			return false, fmt.Errorf("sqlparse: unexpected %s in projection at offset %d", t, t.pos)
		}
		if p.cur().kind != tokComma {
			return hasCount, nil
		}
		p.next()
	}
}

// parseConjuncts consumes AND-separated predicates, classifying each as a
// join edge or a range predicate.
func (p *parser) parseConjuncts(tpl *query.Template) error {
	for {
		left, err := p.parseColRef()
		if err != nil {
			return err
		}
		op := p.next()
		switch op.kind {
		case tokEq:
			right, err := p.parseColRef()
			if err != nil {
				return err
			}
			tpl.Joins = append(tpl.Joins, p.joinEdge(left, right))
		case tokLE, tokGE, tokLT, tokGT:
			cmp := query.LE
			if op.kind == tokGE || op.kind == tokGT {
				cmp = query.GE
			}
			t := p.next()
			switch t.kind {
			case tokParam:
				ordinal := -1
				if len(t.text) > 1 {
					n, err := strconv.Atoi(t.text[1:])
					if err != nil {
						return fmt.Errorf("sqlparse: bad parameter %q at offset %d", t.text, t.pos)
					}
					ordinal = n
				}
				tpl.Preds = append(tpl.Preds, query.Predicate{
					Table: left.table, Column: left.column, Op: cmp,
					// Unnumbered '?' markers get ordinals assigned later;
					// temporarily encode them as -2-index.
					Param: encodeParam(ordinal, len(tpl.Preds)),
				})
			case tokNumber:
				v, err := strconv.ParseFloat(t.text, 64)
				if err != nil {
					return fmt.Errorf("sqlparse: bad literal %q at offset %d", t.text, t.pos)
				}
				tpl.Preds = append(tpl.Preds, query.Predicate{
					Table: left.table, Column: left.column, Op: cmp, Param: -1, Value: v,
				})
			default:
				return fmt.Errorf("sqlparse: expected parameter or literal at offset %d, got %s", t.pos, t)
			}
		default:
			return fmt.Errorf("sqlparse: expected comparison operator at offset %d, got %s", op.pos, op)
		}
		if p.cur().kind == tokKeyword && p.cur().text == "and" {
			p.next()
			continue
		}
		return nil
	}
}

// encodeParam returns the explicit ordinal, or a sentinel (-2 - seq) for
// unnumbered '?' markers resolved by numberParams.
func encodeParam(explicit, seq int) int {
	if explicit >= 0 {
		return explicit
	}
	return -2 - seq
}

// numberParams assigns dense ordinals: explicit ?N markers keep N,
// unnumbered ? markers fill the remaining ordinals in syntactic order.
func (p *parser) numberParams(tpl *query.Template) error {
	used := map[int]bool{}
	anon := 0
	for _, pr := range tpl.Preds {
		if pr.Param >= 0 {
			if used[pr.Param] {
				return fmt.Errorf("sqlparse: parameter ?%d used twice", pr.Param)
			}
			used[pr.Param] = true
		} else if pr.Param <= -2 {
			anon++
		}
	}
	nextFree := 0
	for i := range tpl.Preds {
		if tpl.Preds[i].Param <= -2 {
			for used[nextFree] {
				nextFree++
			}
			tpl.Preds[i].Param = nextFree
			used[nextFree] = true
		}
	}
	return nil
}

// joinEdge builds the join with the standard 1/distinct(key) selectivity;
// the side with the larger distinct count is treated as the key side. When
// the catalog cannot resolve a side (Validate will reject the template
// anyway), a selectivity of 1 is used.
func (p *parser) joinEdge(left, right colRef) query.Join {
	distinct := func(r colRef) int64 {
		if t := p.cat.Table(r.table); t != nil {
			if c := t.Column(r.column); c != nil {
				return c.Distinct
			}
		}
		return 0
	}
	dl, dr := distinct(left), distinct(right)
	d := dl
	if dr > d {
		d = dr
	}
	sel := 1.0
	if d > 0 {
		sel = 1.0 / float64(d)
	}
	return query.Join{
		Left: left.table, LeftCol: left.column,
		Right: right.table, RightCol: right.column,
		Selectivity: sel,
	}
}
