package sqlparse_test

import (
	"fmt"

	"repro/internal/catalog"
	"repro/internal/sqlparse"
)

// ExampleParse shows declaring a parameterized template as SQL text:
// numbered ? markers become dimensions, literals become constant
// predicates, and equi-join conditions become join edges with
// catalog-derived selectivities.
func ExampleParse() {
	cat := catalog.NewTPCH(1)
	tpl, err := sqlparse.Parse("example", `
		SELECT * FROM lineitem, orders
		WHERE lineitem.l_orderkey = orders.o_orderkey
		  AND lineitem.l_shipdate <= ?0
		  AND orders.o_totalprice >= ?1
		  AND orders.o_shippriority <= 2`, cat)
	if err != nil {
		panic(err)
	}
	fmt.Println("dimensions:", tpl.Dimensions())
	fmt.Println("joins:", len(tpl.Joins))
	fmt.Println(tpl.SQL())
	// Output:
	// dimensions: 2
	// joins: 1
	// SELECT * FROM lineitem, orders WHERE lineitem.l_orderkey = orders.o_orderkey AND lineitem.l_shipdate <= ?0 AND orders.o_totalprice >= ?1 AND orders.o_shippriority <= 2
}
