// Package stats provides per-column statistics — equi-depth histograms and
// distinct counts — and the selectivity-estimation API the optimizer and the
// PQO techniques depend on.
//
// The paper's techniques operate entirely on selectivity vectors: the
// selectivities of a query instance's parameterized predicates. This package
// supplies the "compute selectivity vector" engine requirement of §4.2: an
// efficient mapping from predicate parameter values to selectivities, backed
// by histograms built from generated data.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Histogram is an equi-depth (equi-height) histogram over a numeric column.
// Each of the b buckets holds the same number of sample values; bucket
// boundaries adapt to the data distribution, so skewed columns get fine
// resolution where their mass is.
type Histogram struct {
	// bounds has len = buckets+1; bucket i spans [bounds[i], bounds[i+1]).
	bounds []float64
	// cum is the cumulative-fraction prefix array, precomputed at build
	// time: cum[i] is the exact fraction of sample values <= bounds[i].
	// With it, an estimate is one sort.Search over bounds plus a linear
	// interpolation between cum[i] and cum[i+1] — no per-bucket
	// accumulation, and point masses (duplicate boundary values) carry
	// their true cumulative weight instead of the uniform-depth
	// approximation i/buckets.
	cum []float64
	// total is the number of sample values the histogram was built from.
	total int
}

// BuildHistogram constructs an equi-depth histogram with the given number of
// buckets from an ascending-sorted sample. It returns an error if the sample
// is empty, unsorted, or buckets is non-positive.
func BuildHistogram(sorted []float64, buckets int) (*Histogram, error) {
	if len(sorted) == 0 {
		return nil, fmt.Errorf("stats: empty sample")
	}
	if buckets <= 0 {
		return nil, fmt.Errorf("stats: non-positive bucket count %d", buckets)
	}
	for i := 1; i < len(sorted); i++ {
		if sorted[i-1] > sorted[i] {
			return nil, fmt.Errorf("stats: sample not sorted at index %d", i)
		}
	}
	if buckets > len(sorted) {
		buckets = len(sorted)
	}
	h := &Histogram{
		bounds: make([]float64, buckets+1),
		cum:    make([]float64, buckets+1),
		total:  len(sorted),
	}
	perBucket := float64(len(sorted)) / float64(buckets)
	for i := 0; i <= buckets; i++ {
		idx := int(float64(i) * perBucket)
		if idx >= len(sorted) {
			idx = len(sorted) - 1
		}
		h.bounds[i] = sorted[idx]
	}
	// The last bound must cover the maximum sample value.
	h.bounds[buckets] = sorted[len(sorted)-1]
	// Precompute the cumulative fraction at each bound from the sample
	// itself: the count of values <= bounds[i], not the equi-depth ideal
	// i/buckets — the two differ exactly where duplicates pile up on a
	// boundary, which is where the uniform approximation was worst.
	for i, b := range h.bounds {
		le := sort.Search(len(sorted), func(k int) bool { return sorted[k] > b })
		h.cum[i] = float64(le) / float64(len(sorted))
	}
	return h, nil
}

// Buckets returns the number of buckets.
func (h *Histogram) Buckets() int { return len(h.bounds) - 1 }

// Min returns the smallest value covered by the histogram.
func (h *Histogram) Min() float64 { return h.bounds[0] }

// Max returns the largest value covered by the histogram.
func (h *Histogram) Max() float64 { return h.bounds[len(h.bounds)-1] }

// SelectivityLE estimates the fraction of values <= v, interpolating
// linearly within the containing bucket. The result is clamped to
// [minSelectivity, 1] so downstream cost ratios stay finite. A NaN
// predicate value carries no information; the conservative floor is
// returned so the multiplicative G/L factors downstream stay finite.
func (h *Histogram) SelectivityLE(v float64) float64 {
	if math.IsNaN(v) {
		return minSelectivity
	}
	return clampSel(h.fractionBelow(v))
}

// SelectivityGE estimates the fraction of values >= v; NaN gets the
// conservative floor, as in SelectivityLE.
func (h *Histogram) SelectivityGE(v float64) float64 {
	if math.IsNaN(v) {
		return minSelectivity
	}
	return clampSel(1 - h.fractionBelow(v))
}

// SelectivityRange estimates the fraction of values in [lo, hi]. An empty
// range (hi < lo) and NaN endpoints both floor to minSelectivity.
func (h *Histogram) SelectivityRange(lo, hi float64) float64 {
	if math.IsNaN(lo) || math.IsNaN(hi) || hi < lo {
		return minSelectivity
	}
	return clampSel(h.fractionBelow(hi) - h.fractionBelow(lo))
}

// fractionBelow returns the unclamped estimated fraction of values <= v:
// one sort.Search over the bounds, then linear interpolation between the
// precomputed cumulative fractions at the containing bucket's endpoints.
func (h *Histogram) fractionBelow(v float64) float64 {
	n := h.Buckets()
	if v < h.bounds[0] {
		return 0
	}
	if v >= h.bounds[n] {
		return 1
	}
	// Find the first bound strictly greater than v; buckets 0..j-2 lie
	// entirely at or below v and bucket j-1 contains v. Using the strict
	// upper bound makes duplicate boundary values (point masses) count
	// fully towards "<= v" — an exact bound hit returns cum[i] exactly.
	j := sort.Search(len(h.bounds), func(i int) bool { return h.bounds[i] > v })
	i := j - 1
	if i >= n {
		i = n - 1
	}
	if i < 0 {
		i = 0
	}
	lo, hi := h.bounds[i], h.bounds[i+1]
	if hi > lo {
		return h.cum[i] + (v-lo)/(hi-lo)*(h.cum[i+1]-h.cum[i])
	}
	return h.cum[i+1]
}

// ValueAtFraction returns the value v such that approximately a fraction f
// of the column is <= v. It is the inverse of SelectivityLE and is used by
// the workload generator to construct query instances with target
// selectivities. f is clamped to [0, 1].
func (h *Histogram) ValueAtFraction(f float64) float64 {
	if f <= 0 {
		return h.bounds[0]
	}
	if f >= 1 {
		return h.bounds[len(h.bounds)-1]
	}
	n := float64(h.Buckets())
	pos := f * n
	i := int(pos)
	if i >= h.Buckets() {
		i = h.Buckets() - 1
	}
	frac := pos - float64(i)
	lo, hi := h.bounds[i], h.bounds[i+1]
	return lo + frac*(hi-lo)
}

// minSelectivity is the floor applied to all selectivity estimates. A zero
// selectivity would make the paper's multiplicative factors (alpha ratios,
// G and L) undefined; commercial optimizers apply a similar floor.
const minSelectivity = 1e-6

func clampSel(s float64) float64 {
	if s < minSelectivity {
		return minSelectivity
	}
	if s > 1 {
		return 1
	}
	return s
}

// ClampSelectivity exposes the estimation floor/ceiling applied by this
// package so other packages (e.g. the workload generator) can normalize
// target selectivities consistently.
func ClampSelectivity(s float64) float64 { return clampSel(s) }

// MinSelectivity is the smallest selectivity this package will ever report.
const MinSelectivity = minSelectivity
