package stats

import (
	"fmt"

	"repro/internal/catalog"
	"repro/internal/datagen"
)

// Store holds the histograms for every (table, column) of a catalog and
// answers selectivity queries. It is the statistics module a database
// engine's optimizer consults during logical property derivation.
type Store struct {
	cat   *catalog.Catalog
	hists map[string]*Histogram // key: "table.column"
}

// DefaultSampleSize is the number of values sampled per column when building
// a Store; DefaultBuckets is the histogram resolution. 200 equi-depth
// buckets give ~0.5% selectivity resolution, comparable to SQL Server's
// 200-step histograms.
const (
	DefaultSampleSize = 20000
	DefaultBuckets    = 200
)

// Build constructs a statistics store for every column of every table in
// cat, sampling values with gen.
func Build(cat *catalog.Catalog, gen *datagen.Generator) (*Store, error) {
	s := &Store{cat: cat, hists: make(map[string]*Histogram)}
	for _, t := range cat.Tables() {
		sample := DefaultSampleSize
		if int64(sample) > t.Rows {
			sample = int(t.Rows)
		}
		for _, col := range t.Columns {
			vals, err := gen.ColumnSample(t.Name, col.Name, sample)
			if err != nil {
				return nil, fmt.Errorf("stats: sampling %s.%s: %w", t.Name, col.Name, err)
			}
			buckets := DefaultBuckets
			h, err := BuildHistogram(vals, buckets)
			if err != nil {
				return nil, fmt.Errorf("stats: histogram for %s.%s: %w", t.Name, col.Name, err)
			}
			s.hists[t.Name+"."+col.Name] = h
		}
	}
	return s, nil
}

// Histogram returns the histogram for table.column, or nil if absent.
func (s *Store) Histogram(table, column string) *Histogram {
	return s.hists[table+"."+column]
}

// SelectivityLE estimates the selectivity of the predicate column <= v.
func (s *Store) SelectivityLE(table, column string, v float64) (float64, error) {
	h := s.hists[table+"."+column]
	if h == nil {
		return 0, fmt.Errorf("stats: no histogram for %s.%s", table, column)
	}
	return h.SelectivityLE(v), nil
}

// SelectivityGE estimates the selectivity of the predicate column >= v.
func (s *Store) SelectivityGE(table, column string, v float64) (float64, error) {
	h := s.hists[table+"."+column]
	if h == nil {
		return 0, fmt.Errorf("stats: no histogram for %s.%s", table, column)
	}
	return h.SelectivityGE(v), nil
}

// ValueForSelectivityLE returns a parameter value v such that the predicate
// column <= v has approximately the requested selectivity.
func (s *Store) ValueForSelectivityLE(table, column string, sel float64) (float64, error) {
	h := s.hists[table+"."+column]
	if h == nil {
		return 0, fmt.Errorf("stats: no histogram for %s.%s", table, column)
	}
	return h.ValueAtFraction(sel), nil
}

// ValueForSelectivityGE returns a parameter value v such that the predicate
// column >= v has approximately the requested selectivity.
func (s *Store) ValueForSelectivityGE(table, column string, sel float64) (float64, error) {
	h := s.hists[table+"."+column]
	if h == nil {
		return 0, fmt.Errorf("stats: no histogram for %s.%s", table, column)
	}
	return h.ValueAtFraction(1 - sel), nil
}
