package stats

import "math"

// fnv64 offset basis and prime (FNV-1a).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// HashSVector returns a 64-bit FNV-1a hash over the exact bit patterns of a
// selectivity vector. Equal vectors (bitwise, so -0 ≠ +0 and NaNs with
// different payloads differ) hash equally; the hash is the selectivity half
// of the recost result cache key (plan fingerprint, sv hash).
func HashSVector(sv []float64) uint64 {
	h := uint64(fnvOffset64)
	for _, v := range sv {
		b := math.Float64bits(v)
		for i := 0; i < 8; i++ {
			h ^= b & 0xff
			h *= fnvPrime64
			b >>= 8
		}
	}
	return h
}
