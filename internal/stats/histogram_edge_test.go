package stats

import (
	"math"
	"testing"
)

// Edge-case coverage for the cumulative-prefix histogram estimator:
// NaN inputs, inverted ranges, probes below the first bound, exact bound
// hits, and point masses on duplicate boundaries.

func uniformHist(t *testing.T, n, buckets int) *Histogram {
	t.Helper()
	sample := make([]float64, n)
	for i := range sample {
		sample[i] = float64(i)
	}
	h, err := BuildHistogram(sample, buckets)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestSelectivityNaN(t *testing.T) {
	h := uniformHist(t, 1000, 10)
	nan := math.NaN()
	if got := h.SelectivityLE(nan); got != MinSelectivity {
		t.Errorf("SelectivityLE(NaN) = %v, want the floor %v", got, MinSelectivity)
	}
	if got := h.SelectivityGE(nan); got != MinSelectivity {
		t.Errorf("SelectivityGE(NaN) = %v, want the floor %v", got, MinSelectivity)
	}
	if got := h.SelectivityRange(nan, 10); got != MinSelectivity {
		t.Errorf("SelectivityRange(NaN, hi) = %v, want the floor %v", got, MinSelectivity)
	}
	if got := h.SelectivityRange(10, nan); got != MinSelectivity {
		t.Errorf("SelectivityRange(lo, NaN) = %v, want the floor %v", got, MinSelectivity)
	}
	// A NaN result anywhere would poison every downstream comparison
	// (NaN compares false), silently disabling the selectivity check.
	for _, got := range []float64{h.SelectivityLE(nan), h.SelectivityGE(nan), h.SelectivityRange(nan, nan)} {
		if math.IsNaN(got) {
			t.Fatalf("NaN leaked through a selectivity estimate")
		}
	}
}

func TestSelectivityRangeInverted(t *testing.T) {
	h := uniformHist(t, 1000, 10)
	if got := h.SelectivityRange(700, 300); got != MinSelectivity {
		t.Errorf("SelectivityRange(lo>hi) = %v, want the floor %v", got, MinSelectivity)
	}
}

func TestSelectivityBelowFirstBound(t *testing.T) {
	h := uniformHist(t, 1000, 10)
	if got := h.SelectivityLE(-5); got != MinSelectivity {
		t.Errorf("SelectivityLE below min = %v, want the floor %v", got, MinSelectivity)
	}
	if got := h.SelectivityGE(-5); got != 1 {
		t.Errorf("SelectivityGE below min = %v, want 1", got)
	}
	if got := h.SelectivityLE(math.Inf(-1)); got != MinSelectivity {
		t.Errorf("SelectivityLE(-Inf) = %v, want the floor %v", got, MinSelectivity)
	}
	if got := h.SelectivityLE(math.Inf(1)); got != 1 {
		t.Errorf("SelectivityLE(+Inf) = %v, want 1", got)
	}
}

// An exact hit on bounds[i] must return the precomputed cumulative
// fraction cum[i] with no interpolation error.
func TestSelectivityExactBoundHits(t *testing.T) {
	h := uniformHist(t, 1000, 10)
	for i, b := range h.bounds {
		want := h.cum[i]
		if got := h.SelectivityLE(b); math.Abs(got-clampSel(want)) > 1e-12 {
			t.Errorf("SelectivityLE(bounds[%d]=%v) = %v, want cum[%d]=%v", i, b, got, i, want)
		}
	}
}

// Duplicate boundary values (a point mass) must carry their true
// cumulative weight: 60% of this column sits at one value, and an exact
// probe there must report all of it — the uniform-depth approximation
// i/buckets cannot.
func TestSelectivityPointMass(t *testing.T) {
	sample := make([]float64, 0, 1000)
	for i := 0; i < 200; i++ {
		sample = append(sample, float64(i)) // 20% below the mass
	}
	for i := 0; i < 600; i++ {
		sample = append(sample, 500) // 60% point mass
	}
	for i := 0; i < 200; i++ {
		sample = append(sample, 1000+float64(i)) // 20% above
	}
	h, err := BuildHistogram(sample, 10)
	if err != nil {
		t.Fatal(err)
	}
	got := h.SelectivityLE(500)
	if want := 0.8; math.Abs(got-want) > 1e-12 {
		t.Errorf("SelectivityLE(point mass) = %v, want %v (20%% below + 60%% mass)", got, want)
	}
	if ge := h.SelectivityGE(500); math.Abs(ge-(1-got)) > 1e-12 {
		t.Errorf("SelectivityGE(point mass) = %v, want complement %v", ge, 1-got)
	}
}

// The prefix array must be monotone and pinned at [cum(min), 1]; the
// estimator interpolates inside it, so any probe stays within [0, 1]
// before clamping and the public estimates within [MinSelectivity, 1].
func TestCumPrefixInvariants(t *testing.T) {
	h := uniformHist(t, 997, 13) // deliberately non-divisible
	if len(h.cum) != len(h.bounds) {
		t.Fatalf("cum has %d entries, bounds %d", len(h.cum), len(h.bounds))
	}
	for i := 1; i < len(h.cum); i++ {
		if h.cum[i] < h.cum[i-1] {
			t.Fatalf("cum not monotone at %d: %v < %v", i, h.cum[i], h.cum[i-1])
		}
	}
	if last := h.cum[len(h.cum)-1]; last != 1 {
		t.Errorf("cum at max bound = %v, want 1", last)
	}
	for v := -1.0; v <= float64(h.total)+1; v += 0.37 {
		got := h.SelectivityLE(v)
		if got < MinSelectivity || got > 1 {
			t.Fatalf("SelectivityLE(%v) = %v outside [floor, 1]", v, got)
		}
	}
}
