package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/catalog"
	"repro/internal/datagen"
)

func mustHist(t *testing.T, vals []float64, buckets int) *Histogram {
	t.Helper()
	h, err := BuildHistogram(vals, buckets)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func seq(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(i)
	}
	return out
}

func TestBuildHistogramErrors(t *testing.T) {
	if _, err := BuildHistogram(nil, 10); err == nil {
		t.Error("empty sample should fail")
	}
	if _, err := BuildHistogram([]float64{1, 2}, 0); err == nil {
		t.Error("zero buckets should fail")
	}
	if _, err := BuildHistogram([]float64{2, 1}, 2); err == nil {
		t.Error("unsorted sample should fail")
	}
}

func TestBucketsClampedToSampleSize(t *testing.T) {
	h := mustHist(t, []float64{1, 2, 3}, 100)
	if h.Buckets() > 3 {
		t.Errorf("Buckets() = %d, want <= 3", h.Buckets())
	}
}

func TestSelectivityLEUniform(t *testing.T) {
	h := mustHist(t, seq(10000), 100)
	cases := []struct{ v, want float64 }{
		{-1, MinSelectivity}, // below domain clamps to floor
		{0, MinSelectivity},
		{2499.5, 0.25},
		{4999.5, 0.50},
		{7499.5, 0.75},
		{9999, 1.0},
		{20000, 1.0},
	}
	for _, c := range cases {
		got := h.SelectivityLE(c.v)
		if math.Abs(got-c.want) > 0.02 {
			t.Errorf("SelectivityLE(%v) = %v, want ~%v", c.v, got, c.want)
		}
	}
}

func TestSelectivityGEComplementsLE(t *testing.T) {
	h := mustHist(t, seq(5000), 50)
	for _, v := range []float64{100, 1234, 2500, 4000} {
		le := h.SelectivityLE(v)
		ge := h.SelectivityGE(v)
		if math.Abs(le+ge-1) > 0.01 {
			t.Errorf("LE(%v)+GE(%v) = %v, want ~1", v, v, le+ge)
		}
	}
}

func TestSelectivityRange(t *testing.T) {
	h := mustHist(t, seq(10000), 100)
	got := h.SelectivityRange(2500, 7500)
	if math.Abs(got-0.5) > 0.02 {
		t.Errorf("SelectivityRange(2500,7500) = %v, want ~0.5", got)
	}
	if got := h.SelectivityRange(7500, 2500); got != MinSelectivity {
		t.Errorf("inverted range = %v, want floor", got)
	}
}

func TestSelectivityMonotone(t *testing.T) {
	h := mustHist(t, seq(1000), 20)
	prev := 0.0
	for v := -10.0; v <= 1010; v += 7 {
		s := h.SelectivityLE(v)
		if s < prev-1e-12 {
			t.Fatalf("SelectivityLE not monotone at v=%v: %v < %v", v, s, prev)
		}
		prev = s
	}
}

func TestValueAtFractionInvertsLE(t *testing.T) {
	// Build from a skewed sample to exercise non-uniform buckets.
	vals := make([]float64, 20000)
	for i := range vals {
		u := float64(i) / float64(len(vals))
		vals[i] = math.Pow(u, 3) * 1000 // cubic skew towards 0
	}
	sort.Float64s(vals)
	h := mustHist(t, vals, 200)
	for _, f := range []float64{0.01, 0.05, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99} {
		v := h.ValueAtFraction(f)
		got := h.SelectivityLE(v)
		if math.Abs(got-f) > 0.02 {
			t.Errorf("round-trip: ValueAtFraction(%v)=%v, SelectivityLE=%v", f, v, got)
		}
	}
}

func TestValueAtFractionEdges(t *testing.T) {
	h := mustHist(t, seq(100), 10)
	if v := h.ValueAtFraction(0); v != h.Min() {
		t.Errorf("ValueAtFraction(0) = %v, want Min %v", v, h.Min())
	}
	if v := h.ValueAtFraction(1); v != h.Max() {
		t.Errorf("ValueAtFraction(1) = %v, want Max %v", v, h.Max())
	}
	if v := h.ValueAtFraction(-3); v != h.Min() {
		t.Errorf("ValueAtFraction(-3) = %v, want Min", v)
	}
	if v := h.ValueAtFraction(7); v != h.Max() {
		t.Errorf("ValueAtFraction(7) = %v, want Max", v)
	}
}

func TestConstantColumn(t *testing.T) {
	vals := make([]float64, 100)
	for i := range vals {
		vals[i] = 42
	}
	h := mustHist(t, vals, 10)
	if got := h.SelectivityLE(42); got != 1 {
		t.Errorf("SelectivityLE(42) on constant column = %v, want 1", got)
	}
	if got := h.SelectivityLE(41); got != MinSelectivity {
		t.Errorf("SelectivityLE(41) on constant column = %v, want floor", got)
	}
}

// Property: selectivities are always within [MinSelectivity, 1] and LE is
// monotone in v for arbitrary sorted samples.
func TestHistogramProperties(t *testing.T) {
	f := func(raw []float64, vq float64) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				vals = append(vals, math.Mod(v, 1e6))
			}
		}
		if len(vals) == 0 {
			return true
		}
		sort.Float64s(vals)
		h, err := BuildHistogram(vals, 16)
		if err != nil {
			return false
		}
		if math.IsNaN(vq) || math.IsInf(vq, 0) {
			vq = 0
		}
		s := h.SelectivityLE(vq)
		if s < MinSelectivity || s > 1 {
			return false
		}
		s2 := h.SelectivityLE(vq + 1)
		return s2+1e-12 >= s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestStoreBuildAndLookup(t *testing.T) {
	cat := catalog.NewTPCH(0.01)
	gen := datagen.New(cat, 11)
	st, err := Build(cat, gen)
	if err != nil {
		t.Fatal(err)
	}
	if st.Histogram("lineitem", "l_shipdate") == nil {
		t.Fatal("missing histogram for lineitem.l_shipdate")
	}
	if st.Histogram("lineitem", "nope") != nil {
		t.Error("unexpected histogram for bogus column")
	}
	sel, err := st.SelectivityLE("lineitem", "l_shipdate", 1278)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sel-0.5) > 0.06 {
		t.Errorf("mid-domain uniform LE selectivity = %v, want ~0.5", sel)
	}
	if _, err := st.SelectivityLE("x", "y", 0); err == nil {
		t.Error("SelectivityLE on missing histogram should fail")
	}
	if _, err := st.SelectivityGE("x", "y", 0); err == nil {
		t.Error("SelectivityGE on missing histogram should fail")
	}
}

func TestStoreValueForSelectivity(t *testing.T) {
	cat := catalog.NewTPCH(0.05)
	gen := datagen.New(cat, 11)
	st, err := Build(cat, gen)
	if err != nil {
		t.Fatal(err)
	}
	for _, target := range []float64{0.01, 0.1, 0.5, 0.9} {
		v, err := st.ValueForSelectivityLE("orders", "o_totalprice", target)
		if err != nil {
			t.Fatal(err)
		}
		got, _ := st.SelectivityLE("orders", "o_totalprice", v)
		if math.Abs(got-target) > 0.03 {
			t.Errorf("LE target %v: value %v gives selectivity %v", target, v, got)
		}
		vg, err := st.ValueForSelectivityGE("orders", "o_totalprice", target)
		if err != nil {
			t.Fatal(err)
		}
		gotG, _ := st.SelectivityGE("orders", "o_totalprice", vg)
		if math.Abs(gotG-target) > 0.03 {
			t.Errorf("GE target %v: value %v gives selectivity %v", target, vg, gotG)
		}
	}
	if _, err := st.ValueForSelectivityLE("x", "y", 0.5); err == nil {
		t.Error("missing histogram should fail")
	}
	if _, err := st.ValueForSelectivityGE("x", "y", 0.5); err == nil {
		t.Error("missing histogram should fail")
	}
}

func TestClampSelectivity(t *testing.T) {
	if got := ClampSelectivity(-1); got != MinSelectivity {
		t.Errorf("ClampSelectivity(-1) = %v", got)
	}
	if got := ClampSelectivity(2); got != 1 {
		t.Errorf("ClampSelectivity(2) = %v", got)
	}
	if got := ClampSelectivity(0.5); got != 0.5 {
		t.Errorf("ClampSelectivity(0.5) = %v", got)
	}
}
