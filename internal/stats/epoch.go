package stats

import (
	"fmt"
	"sort"
)

// Epoch is one generation of the statistics lifecycle: a monotonically
// increasing id paired with the immutable Store that was current while the
// id was. Costs, G/L factors and recost results are all deterministic in
// (plan, sv, statistics), so an epoch id is a complete validity token for
// any derived cost: two values computed under the same epoch are mutually
// consistent, and a value tagged with an older epoch is stale — not wrong,
// just answered against the previous statistics generation.
//
// Epochs are immutable after construction. The optimizer publishes the
// current epoch through an atomic pointer (memo.Optimizer.Epoch), so a
// reader always observes a consistent (id, store) pair even while an
// AdvanceEpoch is in flight. This package deliberately records no wall
// clock — stats feed cost derivation, which must be deterministic; the
// serving layer timestamps epoch advances instead.
type Epoch struct {
	// ID is the monotonic generation number, starting at 1 for the store
	// an optimizer was constructed with. ID 0 is reserved for engines
	// without an epoch lifecycle ("epoch-less"), so a zero value never
	// collides with a real generation.
	ID uint64
	// Store is the statistics snapshot of this generation.
	Store *Store
}

// HistogramDelta replaces the histogram of one column: the raw sample
// values are sorted and rebuilt into an equi-depth histogram with
// DefaultBuckets resolution (or Buckets when positive). It is the unit of
// an incremental statistics update — the online alternative to rebuilding
// a full Store.
type HistogramDelta struct {
	Table   string    `json:"table"`
	Column  string    `json:"column"`
	Values  []float64 `json:"values"`
	Buckets int       `json:"buckets,omitempty"`
}

// Apply derives a new Store from s with the given histogram deltas
// applied. The receiver is not modified: unchanged histograms are shared
// structurally (they are immutable), so a delta touching one column copies
// only the map, never the per-column data. Every delta must name a column
// the store already has a histogram for — a delta cannot invent columns the
// catalog does not know.
func (s *Store) Apply(deltas []HistogramDelta) (*Store, error) {
	if len(deltas) == 0 {
		return nil, fmt.Errorf("stats: empty delta")
	}
	next := &Store{cat: s.cat, hists: make(map[string]*Histogram, len(s.hists))}
	for k, h := range s.hists {
		next.hists[k] = h
	}
	for _, d := range deltas {
		key := d.Table + "." + d.Column
		if _, ok := s.hists[key]; !ok {
			return nil, fmt.Errorf("stats: delta for unknown column %s", key)
		}
		if len(d.Values) == 0 {
			return nil, fmt.Errorf("stats: delta for %s has no values", key)
		}
		vals := append([]float64(nil), d.Values...)
		sort.Float64s(vals)
		buckets := d.Buckets
		if buckets <= 0 {
			buckets = DefaultBuckets
		}
		h, err := BuildHistogram(vals, buckets)
		if err != nil {
			return nil, fmt.Errorf("stats: delta for %s: %w", key, err)
		}
		next.hists[key] = h
	}
	return next, nil
}

// Columns lists every "table.column" key the store holds a histogram for,
// sorted for deterministic output.
func (s *Store) Columns() []string {
	keys := make([]string, 0, len(s.hists))
	for k := range s.hists {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
