package cost

import (
	"fmt"
	"math"
)

// Calibration is a least-squares affine map from optimizer cost units to
// wall-clock seconds: seconds ≈ Slope·cost + Intercept. Commercial
// optimizers maintain exactly such a mapping to convert their abstract
// units into time estimates; here it also serves as a substrate check —
// the Table 3 experiment is only meaningful if estimated cost correlates
// with measured execution time.
type Calibration struct {
	Slope     float64
	Intercept float64
	// R2 is the coefficient of determination of the fit.
	R2 float64
	// N is the number of (cost, seconds) observations fitted.
	N int
}

// Fit computes the least-squares calibration from paired observations. It
// returns an error for fewer than two points or degenerate (constant cost)
// inputs.
func Fit(costs, seconds []float64) (*Calibration, error) {
	if len(costs) != len(seconds) {
		return nil, fmt.Errorf("cost: %d costs vs %d timings", len(costs), len(seconds))
	}
	n := len(costs)
	if n < 2 {
		return nil, fmt.Errorf("cost: need at least 2 observations, got %d", n)
	}
	var sx, sy, sxx, sxy float64
	for i := 0; i < n; i++ {
		if math.IsNaN(costs[i]) || math.IsNaN(seconds[i]) ||
			math.IsInf(costs[i], 0) || math.IsInf(seconds[i], 0) {
			return nil, fmt.Errorf("cost: non-finite observation at index %d", i)
		}
		sx += costs[i]
		sy += seconds[i]
		sxx += costs[i] * costs[i]
		sxy += costs[i] * seconds[i]
	}
	den := float64(n)*sxx - sx*sx
	if den == 0 {
		return nil, fmt.Errorf("cost: all observations have the same cost; cannot fit a slope")
	}
	slope := (float64(n)*sxy - sx*sy) / den
	intercept := (sy - slope*sx) / float64(n)

	// R².
	meanY := sy / float64(n)
	var ssRes, ssTot float64
	for i := 0; i < n; i++ {
		pred := slope*costs[i] + intercept
		ssRes += (seconds[i] - pred) * (seconds[i] - pred)
		ssTot += (seconds[i] - meanY) * (seconds[i] - meanY)
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return &Calibration{Slope: slope, Intercept: intercept, R2: r2, N: n}, nil
}

// Predict converts a cost estimate into seconds under the calibration.
func (c *Calibration) Predict(cost float64) float64 {
	return c.Slope*cost + c.Intercept
}

// PearsonR returns the Pearson correlation coefficient between two series,
// used by the substrate-validation tests.
func PearsonR(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0, fmt.Errorf("cost: correlation needs two equal-length series of >= 2 points")
	}
	n := float64(len(xs))
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var num, dx, dy float64
	for i := range xs {
		a, b := xs[i]-mx, ys[i]-my
		num += a * b
		dx += a * a
		dy += b * b
	}
	if dx == 0 || dy == 0 {
		return 0, fmt.Errorf("cost: zero variance series")
	}
	return num / math.Sqrt(dx*dy), nil
}

// SpearmanRho returns the Spearman rank correlation between two series:
// Pearson correlation of their ranks. For validating a cost model against
// measured times it is the more robust statistic — what matters for plan
// choice is that costlier plans run longer (monotone agreement), not that
// the relationship is linear.
func SpearmanRho(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0, fmt.Errorf("cost: correlation needs two equal-length series of >= 2 points")
	}
	return PearsonR(ranks(xs), ranks(ys))
}

// ranks assigns average ranks (ties share the mean of their positions).
func ranks(vals []float64) []float64 {
	type iv struct {
		v float64
		i int
	}
	sorted := make([]iv, len(vals))
	for i, v := range vals {
		sorted[i] = iv{v: v, i: i}
	}
	for a := 1; a < len(sorted); a++ {
		for b := a; b > 0 && sorted[b].v < sorted[b-1].v; b-- {
			sorted[b], sorted[b-1] = sorted[b-1], sorted[b]
		}
	}
	out := make([]float64, len(vals))
	for a := 0; a < len(sorted); {
		b := a
		for b < len(sorted) && sorted[b].v == sorted[a].v {
			b++
		}
		avg := float64(a+b-1)/2 + 1
		for k := a; k < b; k++ {
			out[sorted[k].i] = avg
		}
		a = b
	}
	return out
}
