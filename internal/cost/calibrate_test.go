package cost

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFitRecoversExactLine(t *testing.T) {
	costs := []float64{1, 2, 3, 4, 5}
	secs := make([]float64, len(costs))
	for i, c := range costs {
		secs[i] = 0.5*c + 3
	}
	cal, err := Fit(costs, secs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cal.Slope-0.5) > 1e-12 || math.Abs(cal.Intercept-3) > 1e-12 {
		t.Errorf("fit = (%v, %v), want (0.5, 3)", cal.Slope, cal.Intercept)
	}
	if cal.R2 < 1-1e-12 {
		t.Errorf("R2 = %v, want 1 for exact line", cal.R2)
	}
	if got := cal.Predict(10); math.Abs(got-8) > 1e-12 {
		t.Errorf("Predict(10) = %v, want 8", got)
	}
	if cal.N != 5 {
		t.Errorf("N = %d", cal.N)
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := Fit([]float64{1}, []float64{1}); err == nil {
		t.Error("single point should fail")
	}
	if _, err := Fit([]float64{2, 2, 2}, []float64{1, 2, 3}); err == nil {
		t.Error("constant costs should fail")
	}
	if _, err := Fit([]float64{1, math.NaN()}, []float64{1, 2}); err == nil {
		t.Error("NaN should fail")
	}
	if _, err := Fit([]float64{1, math.Inf(1)}, []float64{1, 2}); err == nil {
		t.Error("Inf should fail")
	}
}

// Property: for any non-degenerate data, the least-squares fit's residual
// sum is no worse than the flat-line (slope 0, mean intercept) fit.
func TestFitBeatsMeanProperty(t *testing.T) {
	f := func(raw [6]int16) bool {
		costs := make([]float64, 6)
		secs := make([]float64, 6)
		for i, v := range raw {
			costs[i] = float64(i + 1)
			secs[i] = float64(v%100) / 10
		}
		cal, err := Fit(costs, secs)
		if err != nil {
			return false
		}
		var mean float64
		for _, s := range secs {
			mean += s
		}
		mean /= float64(len(secs))
		var ssFit, ssMean float64
		for i := range costs {
			d1 := secs[i] - cal.Predict(costs[i])
			d2 := secs[i] - mean
			ssFit += d1 * d1
			ssMean += d2 * d2
		}
		return ssFit <= ssMean+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPearsonR(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if r, err := PearsonR(xs, []float64{2, 4, 6, 8}); err != nil || math.Abs(r-1) > 1e-12 {
		t.Errorf("perfect correlation: r=%v err=%v", r, err)
	}
	if r, err := PearsonR(xs, []float64{8, 6, 4, 2}); err != nil || math.Abs(r+1) > 1e-12 {
		t.Errorf("perfect anticorrelation: r=%v err=%v", r, err)
	}
	if _, err := PearsonR(xs, []float64{1, 1, 1, 1}); err == nil {
		t.Error("zero-variance should fail")
	}
	if _, err := PearsonR([]float64{1}, []float64{1}); err == nil {
		t.Error("single point should fail")
	}
}

func TestSpearmanRho(t *testing.T) {
	// Monotone but non-linear: rank correlation 1, Pearson below 1.
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{1, 10, 100, 1000, 10000}
	rho, err := SpearmanRho(xs, ys)
	if err != nil || math.Abs(rho-1) > 1e-12 {
		t.Errorf("monotone series: rho=%v err=%v, want 1", rho, err)
	}
	r, _ := PearsonR(xs, ys)
	if r >= 1-1e-9 {
		t.Errorf("Pearson on exponential series = %v, expected < 1", r)
	}
	// Ties get average ranks.
	rho2, err := SpearmanRho([]float64{1, 1, 2}, []float64{5, 5, 9})
	if err != nil || rho2 < 0.99 {
		t.Errorf("tied series: rho=%v err=%v", rho2, err)
	}
	if _, err := SpearmanRho(xs, ys[:2]); err == nil {
		t.Error("length mismatch should fail")
	}
}
