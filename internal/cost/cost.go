// Package cost implements the optimizer's cost model.
//
// The per-operator cost functions deliberately have the growth shapes that
// §5.4 of the paper relies on when arguing the Bounded Cost Growth (BCG)
// assumption with fi(α)=α:
//
//   - table scan: constant in predicate selectivity (I/O bound by pages);
//   - index scan: linear in the served predicate's selectivity;
//   - nested-loops join: ~ s1·s2 (product of input cardinalities);
//   - hash join: ~ s1 + s2 (linear in each input);
//   - sort / merge join / stream aggregate: ~ s·log s (super-linear, the
//     case §5.4 addresses via polynomial bounding functions);
//   - hash aggregate: linear.
//
// Costs are abstract "optimizer units": like commercial optimizers, only
// ratios between plan costs matter to PQO.
package cost

import (
	"math"

	"repro/internal/catalog"
)

// Model holds the cost-model coefficients. The zero value is not usable;
// call DefaultModel.
type Model struct {
	// CPUTuple is the CPU cost of producing/consuming one tuple.
	CPUTuple float64
	// CPUCompare is the CPU cost of one predicate/join comparison.
	CPUCompare float64
	// IOPage is the cost of one sequential page read.
	IOPage float64
	// RandomIOFactor multiplies IOPage for random page accesses (index
	// lookups into unclustered heaps).
	RandomIOFactor float64
	// SeekCost is the fixed cost of descending a B-tree.
	SeekCost float64
	// HashBuild is the per-tuple cost of inserting into a hash table.
	HashBuild float64
	// HashProbe is the per-tuple cost of probing a hash table.
	HashProbe float64
	// SortFactor is the per-comparison cost of sorting.
	SortFactor float64
	// MemPages is the number of buffer pages available to a hash join
	// build side before it spills.
	MemPages float64
	// SpillFactor multiplies hash-join cost when the build side spills.
	SpillFactor float64
	// PageBytes is the page size used to convert rows to pages.
	PageBytes float64
}

// DefaultModel returns the coefficients used throughout the reproduction.
// The relative magnitudes follow textbook disk-based systems: sequential
// I/O dominates CPU by ~100x, random I/O costs ~4x sequential.
func DefaultModel() *Model {
	return &Model{
		CPUTuple:       0.01,
		CPUCompare:     0.002,
		IOPage:         1.0,
		RandomIOFactor: 4.0,
		SeekCost:       3.0,
		HashBuild:      0.015,
		HashProbe:      0.01,
		SortFactor:     0.004,
		MemPages:       10000,
		SpillFactor:    2.5,
		PageBytes:      8192,
	}
}

// TableScanCost returns the cost of a full scan of t. It does not depend on
// predicate selectivity (every page is read); the paper's "scan grows
// linearly" case corresponds to IndexScanCost below, while a constant cost
// trivially satisfies BCG.
func (m *Model) TableScanCost(t *catalog.Table) float64 {
	return t.Pages()*m.IOPage + float64(t.Rows)*m.CPUTuple
}

// IndexScanCost returns the cost of a range scan via an index that serves a
// predicate of selectivity indexSel on table t. For a clustered index the
// matching rows are read sequentially; for a secondary index each match
// costs a random page access.
func (m *Model) IndexScanCost(t *catalog.Table, clustered bool, indexSel float64) float64 {
	matched := float64(t.Rows) * indexSel
	if clustered {
		pages := matched * float64(t.RowBytes) / m.PageBytes
		if pages < 1 {
			pages = 1
		}
		return m.SeekCost + pages*m.IOPage + matched*m.CPUTuple
	}
	return m.SeekCost + matched*(m.IOPage*m.RandomIOFactor+m.CPUTuple)
}

// FilterCost returns the cost of applying nPreds residual predicates to
// inCard tuples.
func (m *Model) FilterCost(inCard float64, nPreds int) float64 {
	if nPreds <= 0 {
		return 0
	}
	return inCard * float64(nPreds) * m.CPUCompare
}

// NLJoinCost returns the cost of a (block) nested-loops join given the
// cardinalities of the two inputs. Child costs are added by the caller.
// The o(s1·s2) term is the defining growth shape.
func (m *Model) NLJoinCost(outerCard, innerCard float64) float64 {
	return outerCard*innerCard*m.CPUCompare + innerCard*m.CPUTuple
}

// HashJoinCost returns the cost of a hash join building on the inner input
// and probing with the outer. Spilling kicks in when the build side exceeds
// the memory grant; rowBytes is the inner input's row width.
func (m *Model) HashJoinCost(outerCard, innerCard float64, innerRowBytes int) float64 {
	c := innerCard*m.HashBuild + outerCard*m.HashProbe
	buildPages := innerCard * float64(innerRowBytes) / m.PageBytes
	if buildPages > m.MemPages {
		c *= m.SpillFactor
	}
	return c
}

// SortCost returns the cost of sorting n tuples: n·log2(n) comparisons.
func (m *Model) SortCost(n float64) float64 {
	if n < 2 {
		return m.SortFactor
	}
	return m.SortFactor * n * math.Log2(n)
}

// MergeJoinCost returns the cost of merge-joining two inputs, including
// sorting whichever inputs are not already ordered on the join key.
func (m *Model) MergeJoinCost(outerCard, innerCard float64, outerSorted, innerSorted bool) float64 {
	c := (outerCard + innerCard) * m.CPUCompare
	if !outerSorted {
		c += m.SortCost(outerCard)
	}
	if !innerSorted {
		c += m.SortCost(innerCard)
	}
	return c
}

// HashAggCost returns the cost of a hash aggregation over inCard tuples.
func (m *Model) HashAggCost(inCard float64) float64 {
	return inCard * m.HashBuild
}

// StreamAggCost returns the cost of a sort-based aggregation over inCard
// tuples (sort then single pass).
func (m *Model) StreamAggCost(inCard float64) float64 {
	return m.SortCost(inCard) + inCard*m.CPUTuple
}
