package cost

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/catalog"
)

func table(rows int64, rowBytes int) *catalog.Table {
	return &catalog.Table{Name: "t", Rows: rows, RowBytes: rowBytes,
		Columns: []catalog.Column{{Name: "a", Max: 1, Distinct: 1}}}
}

func TestTableScanCostIndependentOfSelectivity(t *testing.T) {
	m := DefaultModel()
	tab := table(1_000_000, 100)
	c := m.TableScanCost(tab)
	if c <= 0 {
		t.Fatalf("scan cost = %v, want > 0", c)
	}
	// Bigger tables cost more.
	if m.TableScanCost(table(2_000_000, 100)) <= c {
		t.Error("scan cost not increasing in table size")
	}
}

func TestIndexScanLinearInSelectivity(t *testing.T) {
	m := DefaultModel()
	tab := table(1_000_000, 100)
	for _, clustered := range []bool{true, false} {
		c1 := m.IndexScanCost(tab, clustered, 0.01)
		c2 := m.IndexScanCost(tab, clustered, 0.02)
		c4 := m.IndexScanCost(tab, clustered, 0.04)
		// Doubling selectivity should not more than double cost (BCG with
		// fi(α)=α) and should strictly increase it.
		if c2 <= c1 || c4 <= c2 {
			t.Errorf("clustered=%v: index scan cost not increasing: %v %v %v", clustered, c1, c2, c4)
		}
		if c2 > 2*c1+1e-9 || c4 > 2*c2+1e-9 {
			t.Errorf("clustered=%v: index scan violates BCG fi(α)=α: %v %v %v", clustered, c1, c2, c4)
		}
	}
}

func TestIndexScanClusteredCheaperAtHighSelectivity(t *testing.T) {
	m := DefaultModel()
	tab := table(1_000_000, 100)
	sel := 0.5
	if m.IndexScanCost(tab, true, sel) >= m.IndexScanCost(tab, false, sel) {
		t.Error("clustered index scan should beat secondary at high selectivity")
	}
}

func TestIndexVsTableScanCrossover(t *testing.T) {
	// The defining behaviour for plan diversity: a secondary index scan wins
	// at low selectivity and a full scan wins at high selectivity.
	m := DefaultModel()
	tab := table(1_000_000, 100)
	full := m.TableScanCost(tab)
	if m.IndexScanCost(tab, false, 1e-5) >= full {
		t.Error("index scan should win at selectivity 1e-5")
	}
	if m.IndexScanCost(tab, false, 0.9) <= full {
		t.Error("full scan should win at selectivity 0.9")
	}
}

func TestNLJoinGrowsAsProduct(t *testing.T) {
	m := DefaultModel()
	base := m.NLJoinCost(1000, 1000)
	both := m.NLJoinCost(2000, 2000)
	// Quadrupling the product should roughly quadruple the cost: this is
	// the s1·s2 growth that makes BCG tight for NLJ (§5.4).
	if ratio := both / base; ratio < 3.5 || ratio > 4.5 {
		t.Errorf("NLJ growth ratio = %v, want ~4", ratio)
	}
	// One-sided growth bounded by α (here α=2).
	one := m.NLJoinCost(2000, 1000)
	if one > 2*base+1e-9 {
		t.Errorf("NLJ one-sided growth %v exceeds α·C = %v", one, 2*base)
	}
}

func TestHashJoinGrowsAsSum(t *testing.T) {
	m := DefaultModel()
	base := m.HashJoinCost(1000, 1000, 100)
	both := m.HashJoinCost(2000, 2000, 100)
	if ratio := both / base; math.Abs(ratio-2) > 0.01 {
		t.Errorf("hash join growth ratio = %v, want ~2 (s1+s2 shape)", ratio)
	}
}

func TestHashJoinSpill(t *testing.T) {
	m := DefaultModel()
	small := m.HashJoinCost(1000, 1000, 100)
	// A build side far beyond MemPages*PageBytes must incur the spill factor.
	hugeInner := m.MemPages * m.PageBytes / 100 * 10
	spilled := m.HashJoinCost(1000, hugeInner, 100)
	unspilledEquiv := 1000*m.HashProbe + hugeInner*m.HashBuild
	if spilled <= unspilledEquiv {
		t.Error("spilling hash join should cost more than memory-resident formula")
	}
	_ = small
}

func TestSortCostSuperlinear(t *testing.T) {
	m := DefaultModel()
	c1 := m.SortCost(1000)
	c2 := m.SortCost(2000)
	if c2 <= 2*c1 {
		t.Errorf("sort should be super-linear: SortCost(2000)=%v <= 2*SortCost(1000)=%v", c2, 2*c1)
	}
	// But bounded by α² for α=2 (the paper's polynomial bounding function).
	if c2 > 4*c1 {
		t.Errorf("sort growth %v exceeds α²·C = %v", c2, 4*c1)
	}
	if m.SortCost(0) <= 0 || m.SortCost(1) <= 0 {
		t.Error("tiny sorts should have positive cost")
	}
}

func TestMergeJoinSortAvoidance(t *testing.T) {
	m := DefaultModel()
	unsorted := m.MergeJoinCost(10000, 10000, false, false)
	sorted := m.MergeJoinCost(10000, 10000, true, true)
	half := m.MergeJoinCost(10000, 10000, true, false)
	if !(sorted < half && half < unsorted) {
		t.Errorf("merge join sort avoidance broken: sorted=%v half=%v unsorted=%v", sorted, half, unsorted)
	}
}

func TestAggCosts(t *testing.T) {
	m := DefaultModel()
	if m.HashAggCost(1000) <= 0 || m.StreamAggCost(1000) <= 0 {
		t.Error("aggregation costs must be positive")
	}
	// Stream agg pays a sort, so it must exceed hash agg at scale.
	if m.StreamAggCost(100000) <= m.HashAggCost(100000) {
		t.Error("stream agg should cost more than hash agg at scale")
	}
}

func TestFilterCost(t *testing.T) {
	m := DefaultModel()
	if got := m.FilterCost(1000, 0); got != 0 {
		t.Errorf("FilterCost with 0 preds = %v, want 0", got)
	}
	if m.FilterCost(1000, 2) != 2*m.FilterCost(1000, 1) {
		t.Error("FilterCost not linear in predicate count")
	}
}

// Property: all operator costs are non-negative and monotone in input
// cardinality — the PCM assumption the paper extends.
func TestCostsMonotoneProperty(t *testing.T) {
	m := DefaultModel()
	tab := table(10_000_000, 120)
	f := func(s1Raw, s2Raw uint16) bool {
		s1 := float64(s1Raw%1000+1) / 1000
		s2 := float64(s2Raw%1000+1) / 1000
		lo, hi := s1, s2
		if lo > hi {
			lo, hi = hi, lo
		}
		n1 := lo * 1e6
		n2 := hi * 1e6
		checks := []struct{ a, b float64 }{
			{m.IndexScanCost(tab, false, lo), m.IndexScanCost(tab, false, hi)},
			{m.IndexScanCost(tab, true, lo), m.IndexScanCost(tab, true, hi)},
			{m.NLJoinCost(n1, n1), m.NLJoinCost(n2, n2)},
			{m.HashJoinCost(n1, n1, 100), m.HashJoinCost(n2, n2, 100)},
			{m.SortCost(n1), m.SortCost(n2)},
			{m.HashAggCost(n1), m.HashAggCost(n2)},
			{m.StreamAggCost(n1), m.StreamAggCost(n2)},
		}
		for _, c := range checks {
			if c.a < 0 || c.b < 0 || c.a > c.b+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: BCG with fi(α)=α holds for index scans, NLJ (per dimension) and
// hash joins in this model: scaling one input's selectivity by α scales the
// operator cost by at most α.
func TestBCGComplianceProperty(t *testing.T) {
	m := DefaultModel()
	tab := table(10_000_000, 120)
	f := func(selRaw, alphaRaw uint16) bool {
		sel := float64(selRaw%999+1) / 1000
		alpha := 1 + float64(alphaRaw%400)/100 // α in [1, 5)
		if sel*alpha > 1 {
			return true
		}
		// Index scan.
		if m.IndexScanCost(tab, false, sel*alpha) > alpha*m.IndexScanCost(tab, false, sel)+1e-6 {
			return false
		}
		// NLJ: scale one side.
		n := sel * 1e6
		if m.NLJoinCost(n*alpha, n) > alpha*m.NLJoinCost(n, n)+1e-6 {
			return false
		}
		// Hash join: scale one side (stay below spill region).
		if m.HashJoinCost(n*alpha, n, 10) > alpha*m.HashJoinCost(n, n, 10)+1e-6 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
