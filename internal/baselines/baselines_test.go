package baselines

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/pqotest"
)

// cornerEngine is a 2-d engine with four plans, each optimal near one
// corner of the selectivity square.
func cornerEngine(t *testing.T) *pqotest.Engine {
	t.Helper()
	eng, err := pqotest.NewEngine(2, []pqotest.PlanSpec{
		{Name: "lowlow", Const: 1, Linear: []float64{10, 10}},
		{Name: "lowhigh", Const: 4, Linear: []float64{10, 2}},
		{Name: "highlow", Const: 4, Linear: []float64{2, 10}},
		{Name: "highhigh", Const: 8, Linear: []float64{1, 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func process(t *testing.T, tech core.Technique, sv []float64) *core.Decision {
	t.Helper()
	dec, err := tech.Process(context.Background(), sv)
	if err != nil {
		t.Fatalf("%s.Process(context.Background(), %v): %v", tech.Name(), sv, err)
	}
	if dec.Plan == nil {
		t.Fatalf("%s returned nil plan", tech.Name())
	}
	return dec
}

func TestOptAlways(t *testing.T) {
	eng := cornerEngine(t)
	tech := NewOptAlways(eng)
	for i := 0; i < 10; i++ {
		dec := process(t, tech, []float64{0.1, 0.1})
		if !dec.Optimized {
			t.Fatal("OptAlways must optimize every instance")
		}
	}
	st := tech.Stats()
	if st.OptCalls != 10 || st.Instances != 10 {
		t.Errorf("stats = %+v", st)
	}
	if st.MaxPlans != 0 || st.CurPlans != 0 {
		t.Errorf("OptAlways must store no plans: %+v", st)
	}
	if tech.Name() != "OptAlways" {
		t.Errorf("Name = %q", tech.Name())
	}
}

func TestOptOnce(t *testing.T) {
	eng := cornerEngine(t)
	tech := NewOptOnce(eng)
	first := process(t, tech, []float64{0.001, 0.001})
	if !first.Optimized {
		t.Fatal("first instance must optimize")
	}
	for i := 0; i < 5; i++ {
		dec := process(t, tech, []float64{0.9, 0.9})
		if dec.Optimized {
			t.Fatal("OptOnce must never optimize again")
		}
		if dec.Plan.Fingerprint() != first.Plan.Fingerprint() {
			t.Fatal("OptOnce must reuse the first plan")
		}
	}
	st := tech.Stats()
	if st.OptCalls != 1 || st.MaxPlans != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestPCMGuarantee(t *testing.T) {
	// PCM's guarantee holds under plan-cost monotonicity, which the
	// synthetic engine satisfies: every processed instance must be
	// λ-optimal.
	rng := rand.New(rand.NewSource(3))
	eng, err := pqotest.RandomEngine(rng, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	lambda := 2.0
	tech, err := NewPCM(eng, lambda)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 400; i++ {
		sv := pqotest.RandomSVector(rng, 3)
		dec := process(t, tech, sv)
		so := eng.PlanCost(dec.Plan, sv) / eng.OptimalCost(sv)
		if so > lambda*(1+1e-9) {
			t.Fatalf("instance %d: PCM SO=%v exceeds λ=%v", i, so, lambda)
		}
	}
	st := tech.Stats()
	if st.OptCalls == int64(st.Instances) {
		t.Error("PCM never inferred a plan over 400 instances")
	}
}

func TestPCMRejectsBadLambda(t *testing.T) {
	eng := cornerEngine(t)
	if _, err := NewPCM(eng, 0.9); err == nil {
		t.Error("λ<1 must be rejected")
	}
}

func TestPCMDominationPairLogic(t *testing.T) {
	eng := cornerEngine(t)
	tech, err := NewPCM(eng, 10) // generous λ so cost condition passes
	if err != nil {
		t.Fatal(err)
	}
	process(t, tech, []float64{0.1, 0.1})
	process(t, tech, []float64{0.5, 0.5})
	// Inside the box [0.1,0.5]²: must be inferred.
	dec := process(t, tech, []float64{0.3, 0.3})
	if dec.Optimized {
		t.Error("instance inside PCM box should be inferred")
	}
	// Outside any box (not dominated): must optimize.
	dec2 := process(t, tech, []float64{0.9, 0.01})
	if !dec2.Optimized {
		t.Error("instance outside all PCM boxes should optimize")
	}
}

func TestEllipseInference(t *testing.T) {
	eng := cornerEngine(t)
	tech, err := NewEllipse(eng, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	// Two instances with the same optimal plan establish foci.
	process(t, tech, []float64{0.01, 0.01})
	process(t, tech, []float64{0.05, 0.05})
	// A point between the foci lies inside the ellipse.
	dec := process(t, tech, []float64{0.03, 0.03})
	if dec.Optimized {
		t.Error("midpoint of foci should be inferred by Ellipse")
	}
	// A far away point must optimize.
	dec2 := process(t, tech, []float64{0.9, 0.9})
	if !dec2.Optimized {
		t.Error("distant point should optimize")
	}
	if _, err := NewEllipse(eng, 0); err == nil {
		t.Error("delta=0 must be rejected")
	}
	if _, err := NewEllipse(eng, 1.5); err == nil {
		t.Error("delta>1 must be rejected")
	}
}

func TestDensityInference(t *testing.T) {
	eng := cornerEngine(t)
	tech, err := NewDensity(eng, 0.1, 0.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Three near-identical instances create a dense neighborhood.
	process(t, tech, []float64{0.30, 0.30})
	process(t, tech, []float64{0.31, 0.31})
	process(t, tech, []float64{0.32, 0.32})
	dec := process(t, tech, []float64{0.315, 0.315})
	if dec.Optimized {
		t.Error("dense neighborhood should be inferred by Density")
	}
	// Sparse region: optimize.
	dec2 := process(t, tech, []float64{0.9, 0.01})
	if !dec2.Optimized {
		t.Error("sparse region should optimize")
	}
	if _, err := NewDensity(eng, 0, 0.5, 3); err == nil {
		t.Error("radius=0 must be rejected")
	}
	if _, err := NewDensity(eng, 0.1, 1.5, 3); err == nil {
		t.Error("confidence>1 must be rejected")
	}
}

func TestRangesInference(t *testing.T) {
	eng := cornerEngine(t)
	tech, err := NewRanges(eng, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	process(t, tech, []float64{0.2, 0.2})
	// Within the ±0.01 near range of the single-instance MBR.
	dec := process(t, tech, []float64{0.205, 0.195})
	if dec.Optimized {
		t.Error("instance within near-range should be inferred by Ranges")
	}
	// Outside: optimize (and possibly extend an MBR for its plan).
	dec2 := process(t, tech, []float64{0.5, 0.5})
	if !dec2.Optimized {
		t.Error("instance outside all MBRs should optimize")
	}
	if _, err := NewRanges(eng, -0.1); err == nil {
		t.Error("negative near range must be rejected")
	}
}

func TestRangesUnboundedSubOptimality(t *testing.T) {
	// §3 / Appendix A: Ranges-style selectivity neighborhoods can pick
	// arbitrarily sub-optimal plans. Construct the failure: an MBR spanning
	// a plan-crossover boundary.
	eng, err := pqotest.NewEngine(2, []pqotest.PlanSpec{
		{Name: "A", Const: 1, Linear: []float64{1, 1000}},
		{Name: "B", Const: 2, Linear: []float64{1000, 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	tech, err := NewRanges(eng, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	// Plan A is optimal along dimension 0 (low s1); stretch its MBR.
	process(t, tech, []float64{0.001, 0.001})
	process(t, tech, []float64{0.9, 0.001})
	// Now (0.9, 0.0011) falls inside A's MBR... but so does a point where
	// B is vastly better? Both stored points chose A (s2 tiny). A point
	// with s1 large inside the MBR still favours A here, so instead probe
	// the metric: the harness-level MSO for heuristics is measured in the
	// harness tests. Here we only assert the mechanism: inference happens
	// with no sub-optimality control.
	dec := process(t, tech, []float64{0.5, 0.005})
	if dec.Optimized {
		t.Skip("MBR did not cover the probe; geometry-dependent")
	}
	so := eng.PlanCost(dec.Plan, []float64{0.5, 0.005}) / eng.OptimalCost([]float64{0.5, 0.005})
	if so < 1 {
		t.Errorf("SO=%v < 1 impossible", so)
	}
}

func TestStatsPlanAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	eng, err := pqotest.RandomEngine(rng, 2, 6)
	if err != nil {
		t.Fatal(err)
	}
	tech, err := NewRanges(eng, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		process(t, tech, pqotest.RandomSVector(rng, 2))
	}
	st := tech.Stats()
	if st.MaxPlans == 0 || st.CurPlans == 0 {
		t.Errorf("plan accounting missing: %+v", st)
	}
	if st.MemoryBytes <= 0 {
		t.Error("memory accounting missing")
	}
	if st.MaxPlans < st.CurPlans {
		t.Error("MaxPlans below CurPlans")
	}
}

func TestEnableRedundancyReducesPlans(t *testing.T) {
	mk := func(seed int64) (*pqotest.Engine, *Ellipse) {
		rng := rand.New(rand.NewSource(seed))
		eng, err := pqotest.RandomEngine(rng, 3, 12)
		if err != nil {
			t.Fatal(err)
		}
		tech, err := NewEllipse(eng, 0.9)
		if err != nil {
			t.Fatal(err)
		}
		return eng, tech
	}
	_, plain := mk(7)
	_, augmented := mk(7)
	if err := EnableRedundancy(augmented, 1.4); err != nil {
		t.Fatal(err)
	}
	seq := rand.New(rand.NewSource(77))
	svs := make([][]float64, 400)
	for i := range svs {
		svs[i] = pqotest.RandomSVector(seq, 3)
	}
	for _, sv := range svs {
		process(t, plain, sv)
		process(t, augmented, sv)
	}
	a, b := plain.Stats(), augmented.Stats()
	if b.MaxPlans >= a.MaxPlans {
		t.Errorf("H.6 redundancy check did not reduce plans: %d vs %d", b.MaxPlans, a.MaxPlans)
	}
	if b.RedundantPlansRejected == 0 {
		t.Error("no redundant plans rejected despite reduction")
	}
}

func TestEnableRedundancyValidation(t *testing.T) {
	eng := cornerEngine(t)
	if err := EnableRedundancy(NewOptAlways(eng), 1.4); err == nil {
		t.Error("OptAlways should not support redundancy")
	}
	p, _ := NewPCM(eng, 2)
	if err := EnableRedundancy(p, 0.5); err == nil {
		t.Error("λr < 1 must be rejected")
	}
	if err := EnableRedundancy(p, 1.4); err != nil {
		t.Errorf("PCM redundancy: %v", err)
	}
	d, _ := NewDensity(eng, 0.1, 0.5, 0)
	if err := EnableRedundancy(d, 1.4); err != nil {
		t.Errorf("Density redundancy: %v", err)
	}
	r, _ := NewRanges(eng, 0.01)
	if err := EnableRedundancy(r, 1.4); err != nil {
		t.Errorf("Ranges redundancy: %v", err)
	}
}

func TestTechniqueNames(t *testing.T) {
	eng := cornerEngine(t)
	p, _ := NewPCM(eng, 2)
	e, _ := NewEllipse(eng, 0.9)
	d, _ := NewDensity(eng, 0.1, 0.5, 0)
	r, _ := NewRanges(eng, 0.01)
	for tech, want := range map[core.Technique]string{
		p: "PCM(2)", e: "Ellipse(0.9)", d: "Density(r=0.1,c=0.5)", r: "Ranges(0.01)",
	} {
		if tech.Name() != want {
			t.Errorf("Name = %q, want %q", tech.Name(), want)
		}
	}
}
