package baselines

import (
	"fmt"
	"math"

	"repro/internal/core"
)

// EnableRedundancy switches on the Appendix H.6 variant for a baseline
// technique: before storing a newly optimized plan, the technique recosts
// its existing plans and, if the cheapest is within the λr factor of the
// new plan's optimal cost, records the instance against that existing plan
// instead of growing the plan list. It returns an error for invalid λr or
// unsupported techniques.
func EnableRedundancy(t core.Technique, lambdaR float64) error {
	if lambdaR < 1 {
		return fmt.Errorf("baselines: redundancy lambdaR %v must be >= 1", lambdaR)
	}
	switch v := t.(type) {
	case *PCM:
		v.redundancyLR = lambdaR
	case *Ellipse:
		v.redundancyLR = lambdaR
	case *Density:
		v.redundancyLR = lambdaR
	case *Ranges:
		v.redundancyLR = lambdaR
	default:
		return fmt.Errorf("baselines: %s does not support the redundancy check", t.Name())
	}
	return nil
}

// storeOptimized records an optimized instance in st, applying the H.6
// redundancy check when lambdaR >= 1. It returns the plan recorded for the
// instance (the new plan, or the substituted existing plan) and updates the
// ManageRecosts / RedundantPlansRejected counters.
func storeOptimized(eng core.Engine, st *store, stats *core.Stats,
	sv []float64, cp *cachedPlan, optCost, lambdaR float64) (*cachedPlan, error) {

	fp := cp.Fingerprint()
	_, known := st.byPlan[fp]
	if lambdaR >= 1 && !known && st.numPlans() > 0 {
		var (
			best     *cachedPlan
			bestCost = math.Inf(1)
		)
		for _, existingFP := range st.sortedPlanFPs() {
			other := st.byPlan[existingFP][0].cp
			c, err := eng.Recost(other, sv)
			if err != nil {
				return nil, err
			}
			stats.ManageRecosts++
			if c < bestCost {
				best, bestCost = other, c
			}
		}
		if best != nil && bestCost/optCost <= lambdaR {
			stats.RedundantPlansRejected++
			st.add(sv, best, optCost)
			return best, nil
		}
	}
	st.add(sv, cp, optCost)
	return cp, nil
}
