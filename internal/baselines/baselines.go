// Package baselines implements the comparison techniques of the paper's
// evaluation (Table 2): Optimize-Always, Optimize-Once, PCM (the only prior
// technique with a sub-optimality guarantee), and the heuristic techniques
// Ellipse, Density and Ranges. It also provides the Recost-augmented
// variants of Appendix H.6 in which a heuristic technique additionally uses
// the Recost API for a store-time redundancy check.
//
// All techniques implement core.Technique and share the plan/instance
// bookkeeping of store (store.go).
package baselines

import (
	"context"
	"fmt"
	"math"

	"repro/internal/core"
)

// OptAlways optimizes every instance and stores nothing — the paper's
// numPlans = 0 extreme.
type OptAlways struct {
	eng   core.Engine
	stats core.Stats
}

// NewOptAlways returns the Optimize-Always baseline.
func NewOptAlways(eng core.Engine) *OptAlways { return &OptAlways{eng: eng} }

// Name implements core.Technique.
func (o *OptAlways) Name() string { return "OptAlways" }

// Stats implements core.Technique.
func (o *OptAlways) Stats() core.Stats { return o.stats }

// Process implements core.Technique.
func (o *OptAlways) Process(ctx context.Context, sv []float64) (*core.Decision, error) {
	o.stats.Instances++
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("%w: %w", core.ErrCancelled, err)
	}
	cp, _, err := o.eng.Optimize(sv)
	if err != nil {
		return nil, err
	}
	o.stats.OptCalls++
	return &core.Decision{Plan: cp, Optimized: true, Via: core.ViaOptimizer}, nil
}

// OptOnce optimizes the first instance and reuses that plan forever — the
// paper's numOpt = 1 extreme (plan caching as shipped by commercial
// systems).
type OptOnce struct {
	eng   core.Engine
	plan  *cachedPlan
	stats core.Stats
}

// NewOptOnce returns the Optimize-Once baseline.
func NewOptOnce(eng core.Engine) *OptOnce { return &OptOnce{eng: eng} }

// Name implements core.Technique.
func (o *OptOnce) Name() string { return "OptOnce" }

// Stats implements core.Technique.
func (o *OptOnce) Stats() core.Stats { return o.stats }

// Process implements core.Technique.
func (o *OptOnce) Process(ctx context.Context, sv []float64) (*core.Decision, error) {
	o.stats.Instances++
	if o.plan != nil {
		return &core.Decision{Plan: o.plan, Via: core.ViaInference}, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("%w: %w", core.ErrCancelled, err)
	}
	cp, _, err := o.eng.Optimize(sv)
	if err != nil {
		return nil, err
	}
	o.stats.OptCalls++
	o.stats.MaxPlans, o.stats.CurPlans = 1, 1
	o.plan = cp
	return &core.Decision{Plan: cp, Optimized: true, Via: core.ViaOptimizer}, nil
}

// PCM is the Progressive Parametric Query Optimization "bounded" technique
// [Bizarro et al.]: the only prior online technique with a guarantee. A new
// instance qc can reuse a plan when a pair of previously optimized
// instances (qa, qb) exists such that qa dominates qc dominates qb in the
// selectivity space (component-wise qa ≤ qc ≤ qb) and their optimal costs
// are within the λ factor; under plan cost monotonicity, qb's plan is then
// λ-optimal at qc.
type PCM struct {
	lambda       float64
	redundancyLR float64
	st           *store
	stats        core.Stats
	eng          core.Engine
}

// NewPCM returns the PCM baseline with sub-optimality parameter lambda.
func NewPCM(eng core.Engine, lambda float64) (*PCM, error) {
	if lambda < 1 {
		return nil, fmt.Errorf("baselines: PCM lambda %v must be >= 1", lambda)
	}
	return &PCM{lambda: lambda, st: newStore(), eng: eng}, nil
}

// Name implements core.Technique.
func (p *PCM) Name() string { return fmt.Sprintf("PCM(%g)", p.lambda) }

// Stats implements core.Technique.
func (p *PCM) Stats() core.Stats {
	st := p.stats
	st.CurPlans = p.st.numPlans()
	st.MemoryBytes = p.st.memoryBytes()
	return st
}

// Process implements core.Technique.
func (p *PCM) Process(ctx context.Context, sv []float64) (*core.Decision, error) {
	p.stats.Instances++
	// Find a bounding pair qa ≤ sv ≤ qb with cost(qb) ≤ λ·cost(qa). A pair
	// exists iff the cheapest dominating instance is within λ of the most
	// expensive dominated one, so a single O(n) pass suffices (and picks
	// the tightest pair).
	var (
		bestBelow *storedInstance // max-cost instance dominated by sv
		bestAbove *storedInstance // min-cost instance dominating sv
	)
	for _, e := range p.st.instances {
		p.stats.SelChecks++
		if dominates(sv, e.sv) && (bestBelow == nil || e.optCost > bestBelow.optCost) {
			bestBelow = e
		}
		if dominates(e.sv, sv) && (bestAbove == nil || e.optCost < bestAbove.optCost) {
			bestAbove = e
		}
	}
	if bestBelow != nil && bestAbove != nil && bestAbove.optCost <= p.lambda*bestBelow.optCost {
		bestAbove.uses++
		return &core.Decision{Plan: bestAbove.cp, Via: core.ViaInference}, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("%w: %w", core.ErrCancelled, err)
	}
	cp, c, err := p.eng.Optimize(sv)
	if err != nil {
		return nil, err
	}
	p.stats.OptCalls++
	stored, err := storeOptimized(p.eng, p.st, &p.stats, sv, cp, c, p.redundancyLR)
	if err != nil {
		return nil, err
	}
	if n := p.st.numPlans(); n > p.stats.MaxPlans {
		p.stats.MaxPlans = n
	}
	return &core.Decision{Plan: stored, Optimized: true, Via: core.ViaOptimizer}, nil
}

// dominates reports a ≥ b component-wise.
func dominates(a, b []float64) bool {
	for i := range a {
		if a[i] < b[i] {
			return false
		}
	}
	return true
}

// Ellipse is the PPQO heuristic: qc can reuse plan P when two optimized
// instances qa, qb share P as optimal plan and qc lies within the ellipse
// with foci qa, qb whose major axis is |qa qb|/Δ.
type Ellipse struct {
	delta        float64
	redundancyLR float64
	st           *store
	stats        core.Stats
	eng          core.Engine
}

// NewEllipse returns the Ellipse baseline with eccentricity parameter
// delta in (0, 1].
func NewEllipse(eng core.Engine, delta float64) (*Ellipse, error) {
	if delta <= 0 || delta > 1 {
		return nil, fmt.Errorf("baselines: ellipse delta %v must be in (0,1]", delta)
	}
	return &Ellipse{delta: delta, st: newStore(), eng: eng}, nil
}

// Name implements core.Technique.
func (e *Ellipse) Name() string { return fmt.Sprintf("Ellipse(%g)", e.delta) }

// Stats implements core.Technique.
func (e *Ellipse) Stats() core.Stats {
	st := e.stats
	st.CurPlans = e.st.numPlans()
	st.MemoryBytes = e.st.memoryBytes()
	return st
}

// Process implements core.Technique.
func (e *Ellipse) Process(ctx context.Context, sv []float64) (*core.Decision, error) {
	e.stats.Instances++
	for _, fp := range e.st.planOrder {
		insts := e.st.byPlan[fp]
		for i := 0; i < len(insts); i++ {
			for j := i + 1; j < len(insts); j++ {
				e.stats.SelChecks++
				a, b := insts[i], insts[j]
				fociDist := euclid(a.sv, b.sv)
				if fociDist == 0 {
					continue
				}
				if euclid(sv, a.sv)+euclid(sv, b.sv) <= fociDist/e.delta {
					a.uses++
					return &core.Decision{Plan: a.cp, Via: core.ViaInference}, nil
				}
			}
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("%w: %w", core.ErrCancelled, err)
	}
	cp, c, err := e.eng.Optimize(sv)
	if err != nil {
		return nil, err
	}
	e.stats.OptCalls++
	stored, err := storeOptimized(e.eng, e.st, &e.stats, sv, cp, c, e.redundancyLR)
	if err != nil {
		return nil, err
	}
	if n := e.st.numPlans(); n > e.stats.MaxPlans {
		e.stats.MaxPlans = n
	}
	return &core.Decision{Plan: stored, Optimized: true, Via: core.ViaOptimizer}, nil
}

func euclid(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// Density is the parametric plan caching heuristic [Aluç et al.]: qc reuses
// the plan that a sufficient number (MinNeighbors) of optimized instances
// in a circular neighborhood agree on with at least Confidence majority.
type Density struct {
	radius       float64
	confidence   float64
	minNeighbors int
	redundancyLR float64
	st           *store
	stats        core.Stats
	eng          core.Engine
}

// NewDensity returns the Density baseline. The paper fixes radius = 0.1 and
// confidence = 0.5; minNeighbors ("sufficient number of instances") is our
// choice, default 3 when zero.
func NewDensity(eng core.Engine, radius, confidence float64, minNeighbors int) (*Density, error) {
	if radius <= 0 || confidence <= 0 || confidence > 1 {
		return nil, fmt.Errorf("baselines: density radius %v / confidence %v invalid", radius, confidence)
	}
	if minNeighbors <= 0 {
		minNeighbors = 3
	}
	return &Density{radius: radius, confidence: confidence, minNeighbors: minNeighbors,
		st: newStore(), eng: eng}, nil
}

// Name implements core.Technique.
func (d *Density) Name() string { return fmt.Sprintf("Density(r=%g,c=%g)", d.radius, d.confidence) }

// Stats implements core.Technique.
func (d *Density) Stats() core.Stats {
	st := d.stats
	st.CurPlans = d.st.numPlans()
	st.MemoryBytes = d.st.memoryBytes()
	return st
}

// Process implements core.Technique.
func (d *Density) Process(ctx context.Context, sv []float64) (*core.Decision, error) {
	d.stats.Instances++
	counts := make(map[string]int)
	reps := make(map[string]*storedInstance)
	total := 0
	for _, e := range d.st.instances {
		d.stats.SelChecks++
		if euclid(e.sv, sv) <= d.radius {
			fp := e.cp.Fingerprint()
			counts[fp]++
			if reps[fp] == nil {
				reps[fp] = e
			}
			total++
		}
	}
	if total >= d.minNeighbors {
		bestFP, bestN := "", 0
		for fp, n := range counts {
			if n > bestN || (n == bestN && fp < bestFP) {
				bestFP, bestN = fp, n
			}
		}
		if float64(bestN)/float64(total) >= d.confidence {
			reps[bestFP].uses++
			return &core.Decision{Plan: reps[bestFP].cp, Via: core.ViaInference}, nil
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("%w: %w", core.ErrCancelled, err)
	}
	cp, c, err := d.eng.Optimize(sv)
	if err != nil {
		return nil, err
	}
	d.stats.OptCalls++
	stored, err := storeOptimized(d.eng, d.st, &d.stats, sv, cp, c, d.redundancyLR)
	if err != nil {
		return nil, err
	}
	if n := d.st.numPlans(); n > d.stats.MaxPlans {
		d.stats.MaxPlans = n
	}
	return &core.Decision{Plan: stored, Optimized: true, Via: core.ViaOptimizer}, nil
}

// Ranges models Oracle-style adaptive cursor sharing [Lee & Zait]: each
// plan's inference region is the minimum bounding rectangle of the
// optimized instances that chose it, expanded by NearRange in every
// dimension.
type Ranges struct {
	nearRange    float64
	redundancyLR float64
	st           *store
	stats        core.Stats
	eng          core.Engine
}

// NewRanges returns the Ranges baseline with the given near-selectivity
// expansion (the paper uses 0.01).
func NewRanges(eng core.Engine, nearRange float64) (*Ranges, error) {
	if nearRange < 0 {
		return nil, fmt.Errorf("baselines: near range %v must be >= 0", nearRange)
	}
	return &Ranges{nearRange: nearRange, st: newStore(), eng: eng}, nil
}

// Name implements core.Technique.
func (r *Ranges) Name() string { return fmt.Sprintf("Ranges(%g)", r.nearRange) }

// Stats implements core.Technique.
func (r *Ranges) Stats() core.Stats {
	st := r.stats
	st.CurPlans = r.st.numPlans()
	st.MemoryBytes = r.st.memoryBytes()
	return st
}

// Process implements core.Technique.
func (r *Ranges) Process(ctx context.Context, sv []float64) (*core.Decision, error) {
	r.stats.Instances++
	for _, fp := range r.st.planOrder {
		r.stats.SelChecks++
		insts := r.st.byPlan[fp]
		if len(insts) == 0 {
			continue
		}
		inside := true
		for dim := range sv {
			lo, hi := math.Inf(1), math.Inf(-1)
			for _, e := range insts {
				lo = math.Min(lo, e.sv[dim])
				hi = math.Max(hi, e.sv[dim])
			}
			if sv[dim] < lo-r.nearRange || sv[dim] > hi+r.nearRange {
				inside = false
				break
			}
		}
		if inside {
			insts[0].uses++
			return &core.Decision{Plan: insts[0].cp, Via: core.ViaInference}, nil
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("%w: %w", core.ErrCancelled, err)
	}
	cp, c, err := r.eng.Optimize(sv)
	if err != nil {
		return nil, err
	}
	r.stats.OptCalls++
	stored, err := storeOptimized(r.eng, r.st, &r.stats, sv, cp, c, r.redundancyLR)
	if err != nil {
		return nil, err
	}
	if n := r.st.numPlans(); n > r.stats.MaxPlans {
		r.stats.MaxPlans = n
	}
	return &core.Decision{Plan: stored, Optimized: true, Via: core.ViaOptimizer}, nil
}
