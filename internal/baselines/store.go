package baselines

import (
	"sort"

	"repro/internal/engine"
)

// cachedPlan aliases engine.CachedPlan for readability inside this package.
type cachedPlan = engine.CachedPlan

// storedInstance records one optimized instance and the plan it produced.
// The existing techniques (unlike SCR) store every optimized instance and
// never reject or drop plans.
type storedInstance struct {
	sv      []float64
	cp      *cachedPlan
	optCost float64
	uses    int64
}

// store is the trivial plan/instance bookkeeping shared by the baselines:
// every new plan is kept, nothing is ever dropped (§3, "limitations
// affecting number of plans required").
type store struct {
	instances []*storedInstance
	byPlan    map[string][]*storedInstance
	// planOrder preserves first-seen order for deterministic iteration.
	planOrder []string
	planMem   map[string]int
}

func newStore() *store {
	return &store{byPlan: make(map[string][]*storedInstance), planMem: make(map[string]int)}
}

func (s *store) add(sv []float64, cp *cachedPlan, optCost float64) *storedInstance {
	v := make([]float64, len(sv))
	copy(v, sv)
	e := &storedInstance{sv: v, cp: cp, optCost: optCost}
	s.instances = append(s.instances, e)
	fp := cp.Fingerprint()
	if _, seen := s.byPlan[fp]; !seen {
		s.planOrder = append(s.planOrder, fp)
		s.planMem[fp] = cp.MemoryBytes()
	}
	s.byPlan[fp] = append(s.byPlan[fp], e)
	return e
}

func (s *store) numPlans() int { return len(s.planOrder) }

func (s *store) memoryBytes() int64 {
	var m int64
	for _, b := range s.planMem {
		m += int64(b)
	}
	m += int64(len(s.instances)) * 100
	return m
}

// byPlanOrdered returns the per-plan instance lists in a deterministic
// order (first-seen plan order, which is also sorted-stable for replays).
func (s *store) byPlanOrdered() map[string][]*storedInstance {
	// The map itself is returned for range convenience; determinism is
	// achieved by callers iterating planOrder when order matters. For the
	// Ellipse scan we return an ordered copy keyed by insertion index.
	ordered := make(map[string][]*storedInstance, len(s.byPlan))
	for _, fp := range s.planOrder {
		ordered[fp] = s.byPlan[fp]
	}
	return ordered
}

// sortedPlanFPs returns plan fingerprints sorted lexicographically.
func (s *store) sortedPlanFPs() []string {
	out := make([]string, len(s.planOrder))
	copy(out, s.planOrder)
	sort.Strings(out)
	return out
}
