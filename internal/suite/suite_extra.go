package suite

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/query"
)

// buildExtra contributes the remaining template families that bring the
// suite to the paper's 90 templates: deeper joins (5-way TPC-H with d=5),
// additional TPC-DS web_sales shapes, RD1 4-way chains with d=5, and RD2
// two-dimension joins.
func buildExtra(sys *Systems, add adder) error {
	if err := buildTPCHExtra(sys.TPCH, add); err != nil {
		return err
	}
	if err := buildTPCDSExtra(sys.TPCDS, add); err != nil {
		return err
	}
	if err := buildRD1Extra(sys.RD1, add); err != nil {
		return err
	}
	return buildRD2Extra(sys.RD2, add)
}

func buildTPCHExtra(sys *engine.System, add adder) error {
	cat := sys.Cat
	// 5-way join lineitem-orders-customer-supplier-part with d=5.
	tabs := []string{"lineitem", "orders", "customer", "supplier", "part"}
	joins := []query.Join{
		fk(cat, "lineitem", "l_orderkey", "orders", "o_orderkey"),
		fk(cat, "orders", "o_custkey", "customer", "c_custkey"),
		fk(cat, "lineitem", "l_suppkey", "supplier", "s_suppkey"),
		fk(cat, "lineitem", "l_partkey", "part", "p_partkey"),
	}
	fives := [][5]paramSpec{
		{{"lineitem", "l_shipdate", query.LE}, {"orders", "o_orderdate", query.LE},
			{"customer", "c_acctbal", query.GE}, {"supplier", "s_acctbal", query.GE},
			{"part", "p_size", query.LE}},
		{{"lineitem", "l_quantity", query.GE}, {"orders", "o_totalprice", query.LE},
			{"customer", "c_nationkey", query.LE}, {"supplier", "s_nationkey", query.GE},
			{"part", "p_retailprice", query.GE}},
		{{"lineitem", "l_extendedprice", query.LE}, {"orders", "o_orderdate", query.GE},
			{"customer", "c_acctbal", query.LE}, {"supplier", "s_acctbal", query.LE},
			{"part", "p_size", query.GE}},
	}
	for i, p := range fives {
		if err := add(build(sys, fmt.Sprintf("tpch_5way_%02d", i), tabs, joins,
			p[:], query.NoAgg)); err != nil {
			return err
		}
	}
	// customer-orders d=2 (smaller join, distinct cost regime).
	coTabs := []string{"customer", "orders"}
	coJoins := []query.Join{fk(cat, "orders", "o_custkey", "customer", "c_custkey")}
	for i, p := range [][2]paramSpec{
		{{"customer", "c_acctbal", query.GE}, {"orders", "o_totalprice", query.LE}},
		{{"customer", "c_nationkey", query.LE}, {"orders", "o_orderdate", query.GE}},
	} {
		if err := add(build(sys, fmt.Sprintf("tpch_cust_ord_%02d", i), coTabs, coJoins,
			p[:], query.NoAgg)); err != nil {
			return err
		}
	}
	// 3-dimension single-table on lineitem.
	for i, p := range [][3]paramSpec{
		{{"lineitem", "l_shipdate", query.LE}, {"lineitem", "l_quantity", query.GE},
			{"lineitem", "l_extendedprice", query.LE}},
		{{"lineitem", "l_receiptdate", query.GE}, {"lineitem", "l_discount", query.GE},
			{"lineitem", "l_extendedprice", query.GE}},
	} {
		if err := add(build(sys, fmt.Sprintf("tpch_1t3d_%02d", i), []string{"lineitem"}, nil,
			p[:], query.NoAgg)); err != nil {
			return err
		}
	}
	return nil
}

func buildTPCDSExtra(sys *engine.System, add adder) error {
	cat := sys.Cat
	// web_sales + item via a cross-catalog join on item keys.
	wsItem := []string{"web_sales", "item"}
	wsItemJoin := []query.Join{fk(cat, "web_sales", "ws_item_sk", "item", "i_item_sk")}
	for i, p := range [][3]paramSpec{
		{{"web_sales", "ws_sales_price", query.LE}, {"web_sales", "ws_quantity", query.GE},
			{"item", "i_current_price", query.LE}},
		{{"web_sales", "ws_sold_date_sk", query.LE}, {"web_sales", "ws_sales_price", query.GE},
			{"item", "i_manufact_id", query.LE}},
	} {
		if err := add(build(sys, fmt.Sprintf("tpcds_ws_item_%02d", i), wsItem, wsItemJoin,
			p[:], query.NoAgg)); err != nil {
			return err
		}
	}
	// 5-way star: store_sales with four dimensions, d=5.
	starTabs := []string{"store_sales", "date_dim", "item", "store", "customer"}
	starJoins := []query.Join{
		fk(cat, "store_sales", "ss_sold_date_sk", "date_dim", "d_date_sk"),
		fk(cat, "store_sales", "ss_item_sk", "item", "i_item_sk"),
		fk(cat, "store_sales", "ss_store_sk", "store", "s_store_sk"),
		fk(cat, "store_sales", "ss_customer_sk", "customer", "c_customer_sk"),
	}
	for i, p := range [][5]paramSpec{
		{{"store_sales", "ss_sales_price", query.LE}, {"date_dim", "d_year", query.LE},
			{"item", "i_current_price", query.LE}, {"store", "s_number_employees", query.GE},
			{"customer", "c_birth_year", query.LE}},
		{{"store_sales", "ss_net_profit", query.GE}, {"date_dim", "d_moy", query.GE},
			{"item", "i_manufact_id", query.LE}, {"store", "s_number_employees", query.LE},
			{"customer", "c_birth_year", query.GE}},
	} {
		if err := add(build(sys, fmt.Sprintf("tpcds_star5_%02d", i), starTabs, starJoins,
			p[:], query.NoAgg)); err != nil {
			return err
		}
	}
	// GroupBy variants over sales+date.
	ssDate := []string{"store_sales", "date_dim"}
	ssDateJoin := []query.Join{fk(cat, "store_sales", "ss_sold_date_sk", "date_dim", "d_date_sk")}
	for i, p := range [][2]paramSpec{
		{{"store_sales", "ss_net_profit", query.LE}, {"date_dim", "d_year", query.GE}},
		{{"store_sales", "ss_sales_price", query.GE}, {"date_dim", "d_moy", query.LE}},
	} {
		if err := add(build(sys, fmt.Sprintf("tpcds_agg_%02d", i), ssDate, ssDateJoin,
			p[:], query.GroupBy)); err != nil {
			return err
		}
	}
	return nil
}

func buildRD1Extra(sys *engine.System, add adder) error {
	cat := sys.Cat
	// 4-way chains with d=5 — the multi-block real-world statements whose
	// optimization time dominates.
	fours := []struct {
		name   string
		tables []string
		joins  []query.Join
		params []paramSpec
	}{
		{
			name:   "rd1_5d_txn_chain",
			tables: []string{"transactions", "accounts", "geo", "plans"},
			joins: []query.Join{
				fk(cat, "transactions", "transactions_fk", "accounts", "accounts_id"),
				fk(cat, "accounts", "accounts_fk", "geo", "geo_id"),
				fk(cat, "geo", "geo_fk", "plans", "plans_id"),
			},
			params: []paramSpec{
				{"transactions", "transactions_ts", query.LE},
				{"transactions", "transactions_amount", query.GE},
				{"accounts", "accounts_score", query.GE},
				{"geo", "geo_amount", query.LE},
				{"plans", "plans_score", query.LE},
			},
		},
		{
			name:   "rd1_5d_evt_chain",
			tables: []string{"events", "sessions", "devices", "geo"},
			joins: []query.Join{
				fk(cat, "events", "events_fk", "sessions", "sessions_id"),
				fk(cat, "sessions", "sessions_fk", "devices", "devices_id"),
				fk(cat, "devices", "devices_fk", "geo", "geo_id"),
			},
			params: []paramSpec{
				{"events", "events_ts", query.GE},
				{"events", "events_amount", query.LE},
				{"sessions", "sessions_score", query.LE},
				{"devices", "devices_amount", query.GE},
				{"geo", "geo_score", query.GE},
			},
		},
	}
	for _, c := range fours {
		if err := add(build(sys, c.name, c.tables, c.joins, c.params, query.NoAgg)); err != nil {
			return err
		}
	}
	// 3-dimension single-table on the two largest facts.
	for i, p := range [][3]paramSpec{
		{{"events", "events_ts", query.LE}, {"events", "events_amount", query.GE},
			{"events", "events_score", query.LE}},
		{{"transactions", "transactions_ts", query.GE}, {"transactions", "transactions_amount", query.LE},
			{"transactions", "transactions_score", query.GE}},
	} {
		if err := add(build(sys, fmt.Sprintf("rd1_1t3d_%02d", i), []string{p[0].table}, nil,
			p[:], query.NoAgg)); err != nil {
			return err
		}
	}
	// GroupBy variants.
	for i, p := range [][2]paramSpec{
		{{"transactions", "transactions_ts", query.LE}, {"accounts", "accounts_score", query.LE}},
		{{"events", "events_amount", query.GE}, {"sessions", "sessions_ts", query.GE}},
	} {
		tables := []string{p[0].table, p[1].table}
		var joins []query.Join
		if p[0].table == "transactions" {
			joins = []query.Join{fk(cat, "transactions", "transactions_fk", "accounts", "accounts_id")}
		} else {
			joins = []query.Join{fk(cat, "events", "events_fk", "sessions", "sessions_id")}
		}
		if err := add(build(sys, fmt.Sprintf("rd1_agg_%02d", i), tables, joins,
			p[:], query.GroupBy)); err != nil {
			return err
		}
	}
	return nil
}

func buildRD2Extra(sys *engine.System, add adder) error {
	cat := sys.Cat
	attr := func(i int) string { return fmt.Sprintf("f_attr%02d", i) }
	// Fact + two dimensions with d = 6..7.
	for v := 0; v < 3; v++ {
		dimA := fmt.Sprintf("dim%d", v)
		dimB := fmt.Sprintf("dim%d", (v+3)%6)
		d := 6 + v%2
		params := []paramSpec{
			{dimA, dimA + "_attr", query.LE},
			{dimA, dimA + "_grade", query.GE},
			{dimB, dimB + "_attr", query.GE},
			{dimB, dimB + "_grade", query.LE},
		}
		ops := []query.CmpOp{query.LE, query.GE}
		for i := 0; len(params) < d; i++ {
			params = append(params, paramSpec{"facts", attr((v*4 + i*3) % 12), ops[i%2]})
		}
		joins := []query.Join{
			fk(cat, "facts", fmt.Sprintf("f_dim%d_fk", v), dimA, dimA+"_id"),
			fk(cat, "facts", fmt.Sprintf("f_dim%d_fk", (v+3)%6), dimB, dimB+"_id"),
		}
		if err := add(build(sys, fmt.Sprintf("rd2_2dim_d%d_%d", d, v),
			[]string{"facts", dimA, dimB}, joins, params, query.NoAgg)); err != nil {
			return err
		}
	}
	// Additional pure-fact variant at d=4 (bridging the dimension bands);
	// one variant keeps the suite at exactly the paper's 90 templates.
	ops := []query.CmpOp{query.GE, query.LE}
	for v := 0; v < 1; v++ {
		params := make([]paramSpec, 4)
		for i := range params {
			params[i] = paramSpec{"facts", attr((v*5 + i*2 + 1) % 12), ops[(i+v)%2]}
		}
		if err := add(build(sys, fmt.Sprintf("rd2_fact_d4_%d", v),
			[]string{"facts"}, nil, params, query.NoAgg)); err != nil {
			return err
		}
	}
	return nil
}
