package suite

import (
	"testing"

	"repro/internal/workload"
)

func buildSuite(t *testing.T) ([]Entry, *Systems) {
	t.Helper()
	sys, err := NewSystems(42)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := Build(sys)
	if err != nil {
		t.Fatal(err)
	}
	return entries, sys
}

func TestSuiteSize(t *testing.T) {
	entries, _ := buildSuite(t)
	if len(entries) < 45 {
		t.Fatalf("suite has %d templates, want a substantial benchmark set", len(entries))
	}
	t.Logf("suite: %d templates", len(entries))
}

func TestSuiteTemplatesValidate(t *testing.T) {
	entries, _ := buildSuite(t)
	names := map[string]bool{}
	for _, e := range entries {
		if err := e.Tpl.Validate(); err != nil {
			t.Errorf("template %s invalid: %v", e.Tpl.Name, err)
		}
		if names[e.Tpl.Name] {
			t.Errorf("duplicate template name %s", e.Tpl.Name)
		}
		names[e.Tpl.Name] = true
		if e.Sys == nil || e.Sys.Cat != e.Tpl.Catalog {
			t.Errorf("template %s not paired with its catalog's system", e.Tpl.Name)
		}
	}
}

func TestSuiteDimensionDistribution(t *testing.T) {
	// §7.1: templates go up to 10 parameters and roughly a third have
	// d >= 4.
	entries, _ := buildSuite(t)
	highD, maxD := 0, 0
	for _, e := range entries {
		d := e.Tpl.Dimensions()
		if d < 2 {
			t.Errorf("template %s has d=%d, want >= 2", e.Tpl.Name, d)
		}
		if d >= 4 {
			highD++
		}
		if d > maxD {
			maxD = d
		}
	}
	if maxD < 10 {
		t.Errorf("max dimensions = %d, want 10", maxD)
	}
	frac := float64(highD) / float64(len(entries))
	if frac < 0.2 || frac > 0.6 {
		t.Errorf("d>=4 fraction = %.2f, want roughly a third", frac)
	}
}

func TestSuiteTemplatesOptimizeAndShowPlanDiversity(t *testing.T) {
	// Every template must optimize successfully, and the bucketized
	// workload must exercise more than one optimal plan for most
	// templates — the precondition for PQO to be interesting.
	if testing.Short() {
		t.Skip("optimizes every suite template")
	}
	entries, _ := buildSuite(t)
	diverse := 0
	for _, e := range entries {
		eng, err := e.Sys.EngineFor(e.Tpl)
		if err != nil {
			t.Fatalf("%s: %v", e.Tpl.Name, err)
		}
		insts, err := workload.GenerateSet(e.Tpl.Dimensions(), 24, 7)
		if err != nil {
			t.Fatal(err)
		}
		insts, err = workload.Prepare(eng, insts)
		if err != nil {
			t.Fatalf("%s: %v", e.Tpl.Name, err)
		}
		if n := workload.DistinctOptimalPlans(insts); n >= 2 {
			diverse++
		}
	}
	frac := float64(diverse) / float64(len(entries))
	if frac < 0.6 {
		t.Errorf("only %.0f%% of templates show plan diversity; PQO evaluation needs more", frac*100)
	}
	t.Logf("plan diversity: %d/%d templates with >= 2 optimal plans", diverse, len(entries))
}
