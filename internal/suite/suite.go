// Package suite constructs the benchmark query templates the experiments
// run on: 90 parameterized templates across the four databases of the
// paper's evaluation (TPC-H with skew, TPC-DS, RD1, RD2), with the workload
// properties of §7.1 — one-sided range predicates for fine-grained
// selectivity control, up to 10 parameters, and roughly one third of
// templates with d >= 4 (the RD2-like database supplies the d >= 5 ones).
package suite

import (
	"fmt"

	"repro/internal/catalog"
	"repro/internal/engine"
	"repro/internal/query"
)

// Entry pairs a template with the system (catalog + stats + optimizer) it
// runs against.
type Entry struct {
	Tpl *query.Template
	Sys *engine.System
}

// Systems holds one engine.System per evaluation database.
type Systems struct {
	TPCH, TPCDS, RD1, RD2 *engine.System
}

// NewSystems builds the four systems. Scale factors are modest so that
// statistics construction stays fast; plan-space shape, not absolute size,
// is what the experiments depend on.
func NewSystems(seed int64) (*Systems, error) {
	tpch, err := engine.NewSystem(catalog.NewTPCH(0.1), seed)
	if err != nil {
		return nil, err
	}
	tpcds, err := engine.NewSystem(catalog.NewTPCDS(0.1), seed+1)
	if err != nil {
		return nil, err
	}
	rd1, err := engine.NewSystem(catalog.NewRD1(), seed+2)
	if err != nil {
		return nil, err
	}
	rd2, err := engine.NewSystem(catalog.NewRD2(), seed+3)
	if err != nil {
		return nil, err
	}
	return &Systems{TPCH: tpch, TPCDS: tpcds, RD1: rd1, RD2: rd2}, nil
}

// fk returns an equi-join edge whose selectivity is 1/distinct(key side),
// the standard foreign-key join estimate.
func fk(cat *catalog.Catalog, left, lcol, right, rcol string) query.Join {
	d := int64(1)
	if t := cat.Table(right); t != nil {
		if c := t.Column(rcol); c != nil {
			d = c.Distinct
		}
	}
	if d < 1 {
		d = 1
	}
	return query.Join{Left: left, Right: right, LeftCol: lcol, RightCol: rcol,
		Selectivity: 1.0 / float64(d)}
}

// paramSpec names a column carrying a parameterized one-sided range
// predicate.
type paramSpec struct {
	table, column string
	op            query.CmpOp
}

func build(sys *engine.System, name string, tables []string, joins []query.Join,
	params []paramSpec, agg query.Aggregation) (Entry, error) {

	tpl := &query.Template{
		Name:    name,
		Catalog: sys.Cat,
		Tables:  tables,
		Joins:   joins,
		Agg:     agg,
	}
	if agg == query.GroupBy {
		tpl.GroupCard = 100
	}
	for i, p := range params {
		tpl.Preds = append(tpl.Preds, query.Predicate{
			Table: p.table, Column: p.column, Op: p.op, Param: i,
		})
	}
	if err := tpl.Validate(); err != nil {
		return Entry{}, fmt.Errorf("suite: template %s: %w", name, err)
	}
	return Entry{Tpl: tpl, Sys: sys}, nil
}

// Build returns the full 90-template suite.
func Build(sys *Systems) ([]Entry, error) {
	var out []Entry
	add := func(e Entry, err error) error {
		if err != nil {
			return err
		}
		out = append(out, e)
		return nil
	}

	if err := buildTPCH(sys.TPCH, add); err != nil {
		return nil, err
	}
	if err := buildTPCDS(sys.TPCDS, add); err != nil {
		return nil, err
	}
	if err := buildRD1(sys.RD1, add); err != nil {
		return nil, err
	}
	if err := buildRD2(sys.RD2, add); err != nil {
		return nil, err
	}
	if err := buildExtra(sys, add); err != nil {
		return nil, err
	}
	return out, nil
}

type adder func(Entry, error) error

func buildTPCH(sys *engine.System, add adder) error {
	cat := sys.Cat
	liOrders := []string{"lineitem", "orders"}
	liOrdersJoin := []query.Join{fk(cat, "lineitem", "l_orderkey", "orders", "o_orderkey")}
	liOrdersCust := []string{"lineitem", "orders", "customer"}
	liOrdersCustJoin := append(append([]query.Join{}, liOrdersJoin...),
		fk(cat, "orders", "o_custkey", "customer", "c_custkey"))
	partLi := []string{"part", "lineitem"}
	partLiJoin := []query.Join{fk(cat, "lineitem", "l_partkey", "part", "p_partkey")}

	// d=2 family: scan/join crossovers in two dimensions.
	pairs := [][2]paramSpec{
		{{"lineitem", "l_shipdate", query.LE}, {"orders", "o_orderdate", query.LE}},
		{{"lineitem", "l_extendedprice", query.LE}, {"orders", "o_totalprice", query.GE}},
		{{"lineitem", "l_quantity", query.GE}, {"orders", "o_orderdate", query.GE}},
		{{"lineitem", "l_receiptdate", query.LE}, {"orders", "o_totalprice", query.LE}},
		{{"lineitem", "l_discount", query.GE}, {"orders", "o_orderdate", query.LE}},
		{{"lineitem", "l_shipdate", query.GE}, {"orders", "o_totalprice", query.GE}},
	}
	for i, p := range pairs {
		agg := query.NoAgg
		if i%3 == 2 {
			agg = query.GroupBy
		}
		if err := add(build(sys, fmt.Sprintf("tpch_li_ord_%02d", i), liOrders, liOrdersJoin,
			p[:], agg)); err != nil {
			return err
		}
	}
	// part–lineitem d=2.
	for i, p := range [][2]paramSpec{
		{{"part", "p_size", query.LE}, {"lineitem", "l_shipdate", query.LE}},
		{{"part", "p_retailprice", query.GE}, {"lineitem", "l_quantity", query.GE}},
		{{"part", "p_size", query.GE}, {"lineitem", "l_extendedprice", query.LE}},
	} {
		if err := add(build(sys, fmt.Sprintf("tpch_part_li_%02d", i), partLi, partLiJoin,
			p[:], query.NoAgg)); err != nil {
			return err
		}
	}
	// d=3 over three-way joins.
	triples := [][3]paramSpec{
		{{"lineitem", "l_shipdate", query.LE}, {"orders", "o_orderdate", query.LE}, {"customer", "c_acctbal", query.GE}},
		{{"lineitem", "l_quantity", query.GE}, {"orders", "o_totalprice", query.GE}, {"customer", "c_acctbal", query.LE}},
		{{"lineitem", "l_extendedprice", query.LE}, {"orders", "o_orderdate", query.GE}, {"customer", "c_nationkey", query.LE}},
		{{"lineitem", "l_receiptdate", query.GE}, {"orders", "o_totalprice", query.LE}, {"customer", "c_acctbal", query.GE}},
	}
	for i, p := range triples {
		agg := query.NoAgg
		if i%2 == 1 {
			agg = query.GroupBy
		}
		if err := add(build(sys, fmt.Sprintf("tpch_3way_%02d", i), liOrdersCust, liOrdersCustJoin,
			p[:], agg)); err != nil {
			return err
		}
	}
	// d=4: add supplier leg.
	liSupp := []string{"lineitem", "orders", "customer", "supplier"}
	liSuppJoin := append(append([]query.Join{}, liOrdersCustJoin...),
		fk(cat, "lineitem", "l_suppkey", "supplier", "s_suppkey"))
	quads := [][4]paramSpec{
		{{"lineitem", "l_shipdate", query.LE}, {"orders", "o_orderdate", query.LE},
			{"customer", "c_acctbal", query.GE}, {"supplier", "s_acctbal", query.GE}},
		{{"lineitem", "l_quantity", query.GE}, {"orders", "o_totalprice", query.LE},
			{"customer", "c_nationkey", query.LE}, {"supplier", "s_nationkey", query.LE}},
		{{"lineitem", "l_extendedprice", query.LE}, {"orders", "o_orderdate", query.GE},
			{"customer", "c_acctbal", query.LE}, {"supplier", "s_acctbal", query.LE}},
	}
	for i, p := range quads {
		if err := add(build(sys, fmt.Sprintf("tpch_4way_%02d", i), liSupp, liSuppJoin,
			p[:], query.NoAgg)); err != nil {
			return err
		}
	}
	// Single-table d=2 (cheap queries whose optimization overhead matters).
	for i, p := range [][2]paramSpec{
		{{"lineitem", "l_shipdate", query.LE}, {"lineitem", "l_quantity", query.GE}},
		{{"lineitem", "l_extendedprice", query.LE}, {"lineitem", "l_discount", query.GE}},
		{{"orders", "o_orderdate", query.LE}, {"orders", "o_totalprice", query.GE}},
		{{"part", "p_size", query.LE}, {"part", "p_retailprice", query.GE}},
	} {
		if err := add(build(sys, fmt.Sprintf("tpch_1t_%02d", i), []string{p[0].table}, nil,
			p[:], query.NoAgg)); err != nil {
			return err
		}
	}
	return nil
}

func buildTPCDS(sys *engine.System, add adder) error {
	cat := sys.Cat
	ssDate := []string{"store_sales", "date_dim"}
	ssDateJoin := []query.Join{fk(cat, "store_sales", "ss_sold_date_sk", "date_dim", "d_date_sk")}
	ssItemDate := []string{"store_sales", "date_dim", "item"}
	ssItemDateJoin := append(append([]query.Join{}, ssDateJoin...),
		fk(cat, "store_sales", "ss_item_sk", "item", "i_item_sk"))
	ssCustAddr := []string{"store_sales", "customer", "customer_address"}
	ssCustAddrJoin := []query.Join{
		fk(cat, "store_sales", "ss_customer_sk", "customer", "c_customer_sk"),
		fk(cat, "customer", "c_current_addr_sk", "customer_address", "ca_address_sk"),
	}
	wsDate := []string{"web_sales", "date_dim"}
	wsDateJoin := []query.Join{fk(cat, "web_sales", "ws_sold_date_sk", "date_dim", "d_date_sk")}

	for i, p := range [][2]paramSpec{
		{{"store_sales", "ss_sales_price", query.LE}, {"date_dim", "d_year", query.LE}},
		{{"store_sales", "ss_quantity", query.GE}, {"date_dim", "d_year", query.GE}},
		{{"store_sales", "ss_net_profit", query.GE}, {"date_dim", "d_moy", query.LE}},
		{{"web_sales", "ws_sales_price", query.LE}, {"date_dim", "d_year", query.LE}},
		{{"web_sales", "ws_quantity", query.GE}, {"date_dim", "d_moy", query.GE}},
	} {
		tabs, joins := ssDate, ssDateJoin
		if p[0].table == "web_sales" {
			tabs, joins = wsDate, wsDateJoin
		}
		agg := query.NoAgg
		if i%2 == 1 {
			agg = query.GroupBy
		}
		if err := add(build(sys, fmt.Sprintf("tpcds_sales_date_%02d", i), tabs, joins,
			p[:], agg)); err != nil {
			return err
		}
	}
	for i, p := range [][3]paramSpec{
		{{"store_sales", "ss_sales_price", query.LE}, {"date_dim", "d_year", query.LE}, {"item", "i_current_price", query.LE}},
		{{"store_sales", "ss_quantity", query.GE}, {"date_dim", "d_moy", query.LE}, {"item", "i_manufact_id", query.LE}},
		{{"store_sales", "ss_net_profit", query.GE}, {"date_dim", "d_year", query.GE}, {"item", "i_category_id", query.LE}},
		{{"store_sales", "ss_sales_price", query.GE}, {"date_dim", "d_moy", query.GE}, {"item", "i_current_price", query.GE}},
	} {
		agg := query.NoAgg
		if i%2 == 0 {
			agg = query.GroupBy
		}
		if err := add(build(sys, fmt.Sprintf("tpcds_q18like_%02d", i), ssItemDate, ssItemDateJoin,
			p[:], agg)); err != nil {
			return err
		}
	}
	for i, p := range [][3]paramSpec{
		{{"store_sales", "ss_sales_price", query.LE}, {"customer", "c_birth_year", query.LE}, {"customer_address", "ca_gmt_offset", query.LE}},
		{{"store_sales", "ss_quantity", query.GE}, {"customer", "c_birth_year", query.GE}, {"customer_address", "ca_gmt_offset", query.GE}},
	} {
		if err := add(build(sys, fmt.Sprintf("tpcds_cust_%02d", i), ssCustAddr, ssCustAddrJoin,
			p[:], query.NoAgg)); err != nil {
			return err
		}
	}
	// d=4: store_sales + date + item + store.
	fourTabs := []string{"store_sales", "date_dim", "item", "store"}
	fourJoin := append(append([]query.Join{}, ssItemDateJoin...),
		fk(cat, "store_sales", "ss_store_sk", "store", "s_store_sk"))
	for i, p := range [][4]paramSpec{
		{{"store_sales", "ss_sales_price", query.LE}, {"date_dim", "d_year", query.LE},
			{"item", "i_current_price", query.LE}, {"store", "s_number_employees", query.GE}},
		{{"store_sales", "ss_net_profit", query.GE}, {"date_dim", "d_moy", query.GE},
			{"item", "i_manufact_id", query.LE}, {"store", "s_number_employees", query.LE}},
		{{"store_sales", "ss_quantity", query.GE}, {"date_dim", "d_year", query.GE},
			{"item", "i_category_id", query.GE}, {"store", "s_number_employees", query.GE}},
	} {
		if err := add(build(sys, fmt.Sprintf("tpcds_4way_%02d", i), fourTabs, fourJoin,
			p[:], query.NoAgg)); err != nil {
			return err
		}
	}
	// Single-table d=3 on the wide fact table.
	for i, p := range [][3]paramSpec{
		{{"store_sales", "ss_sales_price", query.LE}, {"store_sales", "ss_quantity", query.GE}, {"store_sales", "ss_net_profit", query.GE}},
		{{"web_sales", "ws_sales_price", query.LE}, {"web_sales", "ws_quantity", query.GE}, {"web_sales", "ws_sold_date_sk", query.LE}},
	} {
		if err := add(build(sys, fmt.Sprintf("tpcds_1t_%02d", i), []string{p[0].table}, nil,
			p[:], query.NoAgg)); err != nil {
			return err
		}
	}
	return nil
}

func buildRD1(sys *engine.System, add adder) error {
	cat := sys.Cat
	// Chained multi-join templates: accounts <- transactions <- merchants,
	// sessions <- events, devices <- sessions, mirroring multi-block
	// real-world statements with large optimization times.
	chains := []struct {
		name   string
		tables []string
		joins  []query.Join
		params []paramSpec
	}{
		{
			name:   "rd1_txn_acct",
			tables: []string{"transactions", "accounts"},
			joins:  []query.Join{fk(cat, "transactions", "transactions_fk", "accounts", "accounts_id")},
			params: []paramSpec{
				{"transactions", "transactions_ts", query.LE},
				{"accounts", "accounts_score", query.GE},
			},
		},
		{
			name:   "rd1_txn_merch",
			tables: []string{"transactions", "merchants"},
			joins:  []query.Join{fk(cat, "transactions", "transactions_fk", "merchants", "merchants_id")},
			params: []paramSpec{
				{"transactions", "transactions_amount", query.LE},
				{"merchants", "merchants_score", query.LE},
			},
		},
		{
			name:   "rd1_evt_sess",
			tables: []string{"events", "sessions"},
			joins:  []query.Join{fk(cat, "events", "events_fk", "sessions", "sessions_id")},
			params: []paramSpec{
				{"events", "events_ts", query.GE},
				{"sessions", "sessions_amount", query.LE},
			},
		},
		{
			name:   "rd1_sess_dev",
			tables: []string{"sessions", "devices"},
			joins:  []query.Join{fk(cat, "sessions", "sessions_fk", "devices", "devices_id")},
			params: []paramSpec{
				{"sessions", "sessions_ts", query.LE},
				{"devices", "devices_score", query.GE},
			},
		},
		{
			name:   "rd1_txn_acct_geo",
			tables: []string{"transactions", "accounts", "geo"},
			joins: []query.Join{
				fk(cat, "transactions", "transactions_fk", "accounts", "accounts_id"),
				fk(cat, "accounts", "accounts_fk", "geo", "geo_id"),
			},
			params: []paramSpec{
				{"transactions", "transactions_ts", query.LE},
				{"accounts", "accounts_amount", query.GE},
				{"geo", "geo_score", query.LE},
			},
		},
		{
			name:   "rd1_evt_sess_dev",
			tables: []string{"events", "sessions", "devices"},
			joins: []query.Join{
				fk(cat, "events", "events_fk", "sessions", "sessions_id"),
				fk(cat, "sessions", "sessions_fk", "devices", "devices_id"),
			},
			params: []paramSpec{
				{"events", "events_amount", query.LE},
				{"sessions", "sessions_score", query.GE},
				{"devices", "devices_ts", query.LE},
			},
		},
		{
			name:   "rd1_txn_acct_plan",
			tables: []string{"transactions", "accounts", "plans"},
			joins: []query.Join{
				fk(cat, "transactions", "transactions_fk", "accounts", "accounts_id"),
				fk(cat, "accounts", "accounts_fk", "plans", "plans_id"),
			},
			params: []paramSpec{
				{"transactions", "transactions_amount", query.GE},
				{"accounts", "accounts_ts", query.LE},
				{"plans", "plans_score", query.GE},
			},
		},
	}
	for _, c := range chains {
		if err := add(build(sys, c.name, c.tables, c.joins, c.params, query.NoAgg)); err != nil {
			return err
		}
	}
	// Variants with 4 parameters (extra predicate on the fact side).
	fours := []struct {
		name   string
		tables []string
		joins  []query.Join
		params []paramSpec
	}{
		{
			name:   "rd1_4d_txn",
			tables: []string{"transactions", "accounts", "merchants"},
			joins: []query.Join{
				fk(cat, "transactions", "transactions_fk", "accounts", "accounts_id"),
				fk(cat, "transactions", "transactions_id", "merchants", "merchants_id"),
			},
			params: []paramSpec{
				{"transactions", "transactions_ts", query.LE},
				{"transactions", "transactions_amount", query.GE},
				{"accounts", "accounts_score", query.GE},
				{"merchants", "merchants_amount", query.LE},
			},
		},
		{
			name:   "rd1_4d_evt",
			tables: []string{"events", "sessions", "devices"},
			joins: []query.Join{
				fk(cat, "events", "events_fk", "sessions", "sessions_id"),
				fk(cat, "sessions", "sessions_fk", "devices", "devices_id"),
			},
			params: []paramSpec{
				{"events", "events_ts", query.LE},
				{"events", "events_amount", query.GE},
				{"sessions", "sessions_score", query.LE},
				{"devices", "devices_amount", query.GE},
			},
		},
		{
			name:   "rd1_4d_sess",
			tables: []string{"sessions", "devices", "geo"},
			joins: []query.Join{
				fk(cat, "sessions", "sessions_fk", "devices", "devices_id"),
				fk(cat, "devices", "devices_fk", "geo", "geo_id"),
			},
			params: []paramSpec{
				{"sessions", "sessions_ts", query.LE},
				{"sessions", "sessions_amount", query.LE},
				{"devices", "devices_score", query.GE},
				{"geo", "geo_amount", query.GE},
			},
		},
	}
	for _, c := range fours {
		if err := add(build(sys, c.name, c.tables, c.joins, c.params, query.NoAgg)); err != nil {
			return err
		}
	}
	// Single-table templates.
	for i, p := range [][2]paramSpec{
		{{"transactions", "transactions_ts", query.LE}, {"transactions", "transactions_amount", query.GE}},
		{{"events", "events_ts", query.GE}, {"events", "events_amount", query.LE}},
		{{"accounts", "accounts_score", query.GE}, {"accounts", "accounts_amount", query.LE}},
	} {
		if err := add(build(sys, fmt.Sprintf("rd1_1t_%02d", i), []string{p[0].table}, nil,
			p[:], query.NoAgg)); err != nil {
			return err
		}
	}
	return nil
}

func buildRD2(sys *engine.System, add adder) error {
	cat := sys.Cat
	// High-dimensional templates: d = 5..10. The paper's RD2 queries are
	// multi-block statements over many relations with up to 10
	// parameterized predicates, so variant 0 joins the fact table with two
	// dimensions (predicates spread across all three relations — total
	// cost then has large selectivity-independent components, the regime
	// where the Recost-based cost check shines); variant 1 is a pure
	// fact-table template (every predicate moves the access-path cost).
	attr := func(i int) string { return fmt.Sprintf("f_attr%02d", i) }
	ops := []query.CmpOp{query.LE, query.GE}
	for d := 5; d <= 10; d++ {
		// Variant 0: facts ⋈ dimA ⋈ dimB with params on all three.
		dimA := fmt.Sprintf("dim%d", d%6)
		dimB := fmt.Sprintf("dim%d", (d+2)%6)
		params := []paramSpec{
			{dimA, dimA + "_attr", query.LE},
			{dimA, dimA + "_grade", query.GE},
			{dimB, dimB + "_grade", query.LE},
		}
		for i := 0; len(params) < d; i++ {
			params = append(params, paramSpec{"facts", attr((d + i*2) % 12), ops[i%2]})
		}
		joins := []query.Join{
			fk(cat, "facts", fmt.Sprintf("f_dim%d_fk", d%6), dimA, dimA+"_id"),
			fk(cat, "facts", fmt.Sprintf("f_dim%d_fk", (d+2)%6), dimB, dimB+"_id"),
		}
		if err := add(build(sys, fmt.Sprintf("rd2_fact_d%d_0", d),
			[]string{"facts", dimA, dimB}, joins, params, query.NoAgg)); err != nil {
			return err
		}
		// Variant 1: pure fact-table template.
		pure := make([]paramSpec, d)
		for i := 0; i < d; i++ {
			pure[i] = paramSpec{"facts", attr((i + 3) % 12), ops[(i+1)%2]}
		}
		if err := add(build(sys, fmt.Sprintf("rd2_fact_d%d_1", d),
			[]string{"facts"}, nil, pure, query.NoAgg)); err != nil {
			return err
		}
	}
	// Fact + dimension joins with d = 4..6.
	for di := 0; di < 6; di++ {
		dim := fmt.Sprintf("dim%d", di)
		d := 4 + di%3
		params := make([]paramSpec, 0, d)
		params = append(params,
			paramSpec{dim, dim + "_attr", query.LE},
			paramSpec{dim, dim + "_grade", query.GE},
		)
		for i := 0; len(params) < d; i++ {
			params = append(params, paramSpec{"facts", attr((di + i*2) % 12), ops[i%2]})
		}
		joins := []query.Join{fk(cat, "facts", fmt.Sprintf("f_dim%d_fk", di), dim, dim+"_id")}
		if err := add(build(sys, fmt.Sprintf("rd2_join_d%d_%s", d, dim),
			[]string{"facts", dim}, joins, params, query.NoAgg)); err != nil {
			return err
		}
	}
	return nil
}
