package datagen

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/catalog"
)

func TestRowsDeterministic(t *testing.T) {
	cat := catalog.NewTPCH(0.01)
	g1 := New(cat, 42)
	g2 := New(cat, 42)
	r1, err := g1.Rows("orders", 500)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := g2.Rows("orders", 500)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1) != len(r2) {
		t.Fatalf("row counts differ: %d vs %d", len(r1), len(r2))
	}
	for i := range r1 {
		for j := range r1[i] {
			if r1[i][j] != r2[i][j] {
				t.Fatalf("row %d col %d differs: %v vs %v", i, j, r1[i][j], r2[i][j])
			}
		}
	}
}

func TestRowsDifferentSeedsDiffer(t *testing.T) {
	cat := catalog.NewTPCH(0.01)
	r1, _ := New(cat, 1).Rows("orders", 200)
	r2, _ := New(cat, 2).Rows("orders", 200)
	same := true
	for i := range r1 {
		for j := range r1[i] {
			if r1[i][j] != r2[i][j] {
				same = false
			}
		}
	}
	if same {
		t.Error("different seeds produced identical rows")
	}
}

func TestRowsErrors(t *testing.T) {
	cat := catalog.NewTPCH(0.01)
	g := New(cat, 1)
	if _, err := g.Rows("nope", 10); err == nil {
		t.Error("Rows(nope) should fail")
	}
	if _, err := g.Rows("orders", 0); err == nil {
		t.Error("Rows(n=0) should fail")
	}
	if _, err := g.ColumnSample("nope", "x", 10); err == nil {
		t.Error("ColumnSample(nope) should fail")
	}
	if _, err := g.ColumnSample("orders", "nope", 10); err == nil {
		t.Error("ColumnSample(orders.nope) should fail")
	}
	if _, err := g.ColumnSample("orders", "o_orderdate", -1); err == nil {
		t.Error("ColumnSample(n<0) should fail")
	}
}

func TestRowsClampedToTableCardinality(t *testing.T) {
	cat := catalog.NewTPCH(1)
	g := New(cat, 1)
	rows, err := g.Rows("nation", 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 25 {
		t.Errorf("got %d nation rows, want 25 (clamped)", len(rows))
	}
}

func TestValuesWithinDomain(t *testing.T) {
	cat := catalog.NewTPCDS(0.01)
	g := New(cat, 7)
	for _, tab := range cat.Tables() {
		rows, err := g.Rows(tab.Name, 300)
		if err != nil {
			t.Fatalf("Rows(%s): %v", tab.Name, err)
		}
		for _, row := range rows {
			if len(row) != len(tab.Columns) {
				t.Fatalf("%s: row width %d, want %d", tab.Name, len(row), len(tab.Columns))
			}
			for ci, v := range row {
				col := tab.Columns[ci]
				if v < col.Min || v > col.Max {
					t.Fatalf("%s.%s: value %v outside [%v,%v]", tab.Name, col.Name, v, col.Min, col.Max)
				}
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("%s.%s: non-finite value", tab.Name, col.Name)
				}
			}
		}
	}
}

func TestColumnSampleSorted(t *testing.T) {
	cat := catalog.NewTPCH(0.1)
	g := New(cat, 3)
	vals, err := g.ColumnSample("lineitem", "l_extendedprice", 2000)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(vals); i++ {
		if vals[i-1] > vals[i] {
			t.Fatalf("sample not sorted at %d: %v > %v", i, vals[i-1], vals[i])
		}
	}
}

func TestZipfSkewsTowardsMin(t *testing.T) {
	cat := catalog.NewTPCH(0.1)
	g := New(cat, 3)
	// l_partkey is Zipf-distributed; the mass should concentrate near Min.
	vals, err := g.ColumnSample("lineitem", "l_partkey", 5000)
	if err != nil {
		t.Fatal(err)
	}
	col := cat.Table("lineitem").Column("l_partkey")
	mid := (col.Min + col.Max) / 2
	below := 0
	for _, v := range vals {
		if v < mid {
			below++
		}
	}
	if frac := float64(below) / float64(len(vals)); frac < 0.8 {
		t.Errorf("zipf column: only %.2f of mass below midpoint, want >= 0.8", frac)
	}
}

func TestUniformRoughlyFlat(t *testing.T) {
	cat := catalog.NewTPCH(0.1)
	g := New(cat, 3)
	vals, err := g.ColumnSample("lineitem", "l_shipdate", 10000)
	if err != nil {
		t.Fatal(err)
	}
	col := cat.Table("lineitem").Column("l_shipdate")
	// Count mass in each quartile; each should hold 15-35%.
	quart := [4]int{}
	span := col.Max - col.Min
	for _, v := range vals {
		q := int((v - col.Min) / span * 4)
		if q > 3 {
			q = 3
		}
		quart[q]++
	}
	for i, c := range quart {
		frac := float64(c) / float64(len(vals))
		if frac < 0.15 || frac > 0.35 {
			t.Errorf("uniform column quartile %d holds %.2f of mass", i, frac)
		}
	}
}

func TestNormalClustersAroundMean(t *testing.T) {
	cat := catalog.NewTPCDS(0.1)
	g := New(cat, 3)
	vals, err := g.ColumnSample("customer", "c_birth_year", 5000)
	if err != nil {
		t.Fatal(err)
	}
	col := cat.Table("customer").Column("c_birth_year")
	mean := (col.Min + col.Max) / 2
	span := col.Max - col.Min
	central := 0
	for _, v := range vals {
		if math.Abs(v-mean) < span/4 {
			central++
		}
	}
	if frac := float64(central) / float64(len(vals)); frac < 0.6 {
		t.Errorf("normal column: only %.2f of mass within central half-width, want >= 0.6", frac)
	}
}

// Property: for any (seed, n>0), all generated sample values stay inside the
// column domain and output length equals the request.
func TestColumnSampleProperty(t *testing.T) {
	cat := catalog.NewRD1()
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%200) + 1
		g := New(cat, seed)
		vals, err := g.ColumnSample("accounts", "accounts_amount", n)
		if err != nil || len(vals) != n {
			return false
		}
		col := cat.Table("accounts").Column("accounts_amount")
		for _, v := range vals {
			if v < col.Min || v > col.Max {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
