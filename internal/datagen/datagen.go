// Package datagen deterministically generates synthetic rows for the tables
// described by package catalog.
//
// The generator serves two consumers: package stats builds equi-depth
// histograms from generated column samples, and package exec materializes
// (scaled-down) tables for the execution experiment (Table 3 of the paper).
// Determinism matters: the same (catalog, table, seed) always yields the
// same rows, so experiments are reproducible run to run.
package datagen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/catalog"
)

// Row is one generated tuple; Row[i] is the value of table column i.
type Row []float64

// Generator produces rows for the tables of one catalog.
type Generator struct {
	cat  *catalog.Catalog
	seed int64
}

// New returns a Generator for cat. Seed determines all generated values.
func New(cat *catalog.Catalog, seed int64) *Generator {
	return &Generator{cat: cat, seed: seed}
}

// tableSeed derives a per-table seed so tables are independent of each other
// and of the order in which they are generated.
func (g *Generator) tableSeed(table string) int64 {
	h := int64(1469598103934665603)
	for _, b := range []byte(table) {
		h ^= int64(b)
		h *= 1099511628211
	}
	return h ^ g.seed
}

// Rows generates n rows for the named table. If n exceeds the table's base
// cardinality, it is clamped. It returns an error for unknown tables or
// non-positive n.
func (g *Generator) Rows(table string, n int) ([]Row, error) {
	t := g.cat.Table(table)
	if t == nil {
		return nil, fmt.Errorf("datagen: unknown table %q in catalog %s", table, g.cat.Name)
	}
	if n <= 0 {
		return nil, fmt.Errorf("datagen: non-positive row request %d for table %s", n, table)
	}
	if int64(n) > t.Rows {
		n = int(t.Rows)
	}
	rng := rand.New(rand.NewSource(g.tableSeed(table)))
	rows := make([]Row, n)
	samplers := make([]sampler, len(t.Columns))
	for i := range t.Columns {
		samplers[i] = newSampler(&t.Columns[i], rng)
	}
	for r := 0; r < n; r++ {
		row := make(Row, len(t.Columns))
		for ci := range t.Columns {
			row[ci] = samplers[ci].next(rng, r)
		}
		rows[r] = row
	}
	return rows, nil
}

// ColumnSample generates n values drawn from the named column's
// distribution, sorted ascending. It is the input to histogram construction.
func (g *Generator) ColumnSample(table, column string, n int) ([]float64, error) {
	t := g.cat.Table(table)
	if t == nil {
		return nil, fmt.Errorf("datagen: unknown table %q in catalog %s", table, g.cat.Name)
	}
	col := t.Column(column)
	if col == nil {
		return nil, fmt.Errorf("datagen: unknown column %s.%s", table, column)
	}
	if n <= 0 {
		return nil, fmt.Errorf("datagen: non-positive sample request %d for %s.%s", n, table, column)
	}
	rng := rand.New(rand.NewSource(g.tableSeed(table + "." + column)))
	s := newSampler(col, rng)
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = s.next(rng, i)
	}
	sort.Float64s(vals)
	return vals, nil
}

// sampler draws values for one column.
type sampler interface {
	next(rng *rand.Rand, rowIdx int) float64
}

func newSampler(col *catalog.Column, rng *rand.Rand) sampler {
	switch col.Dist {
	case catalog.Sequential:
		return &seqSampler{min: col.Min, max: col.Max}
	case catalog.Uniform:
		return &uniformSampler{min: col.Min, max: col.Max, distinct: col.Distinct}
	case catalog.Normal:
		return &normalSampler{min: col.Min, max: col.Max}
	case catalog.Zipf:
		return newZipfSampler(col, rng)
	default:
		return &uniformSampler{min: col.Min, max: col.Max, distinct: col.Distinct}
	}
}

type seqSampler struct{ min, max float64 }

func (s *seqSampler) next(_ *rand.Rand, rowIdx int) float64 {
	span := s.max - s.min
	if span <= 0 {
		return s.min
	}
	return s.min + math.Mod(float64(rowIdx), span)
}

type uniformSampler struct {
	min, max float64
	distinct int64
}

func (s *uniformSampler) next(rng *rand.Rand, _ int) float64 {
	if s.distinct > 1 && s.distinct <= 1<<20 {
		// Discrete uniform over the distinct values.
		step := (s.max - s.min) / float64(s.distinct-1)
		return s.min + step*float64(rng.Int63n(s.distinct))
	}
	return s.min + rng.Float64()*(s.max-s.min)
}

type normalSampler struct{ min, max float64 }

func (s *normalSampler) next(rng *rand.Rand, _ int) float64 {
	mean := (s.min + s.max) / 2
	// 3-sigma spans half the domain, so ~99.7% of draws land inside.
	sigma := (s.max - s.min) / 6
	v := rng.NormFloat64()*sigma + mean
	if v < s.min {
		v = s.min
	}
	if v > s.max {
		v = s.max
	}
	return v
}

// zipfSampler maps Zipf ranks onto the column domain: rank 0 (most frequent)
// maps near Min, so small values dominate — matching the skewed TPC-H
// generator the paper uses. Values are jittered uniformly within a rank's
// sub-range so the resulting distribution is continuous (no point masses),
// which keeps histogram selectivity inversion well-defined.
type zipfSampler struct {
	z        *rand.Zipf
	min, max float64
	buckets  uint64
}

func newZipfSampler(col *catalog.Column, rng *rand.Rand) *zipfSampler {
	skew := col.Skew
	if skew <= 1.0 {
		// rand.Zipf requires s > 1; compress milder skews into (1, 2].
		skew = 1.0 + math.Max(skew, 0.01)
	}
	buckets := uint64(col.Distinct)
	if buckets < 2 {
		buckets = 2
	}
	if buckets > 1<<16 {
		buckets = 1 << 16
	}
	return &zipfSampler{
		z:       rand.NewZipf(rng, skew, 1, buckets-1),
		min:     col.Min,
		max:     col.Max,
		buckets: buckets,
	}
}

func (s *zipfSampler) next(rng *rand.Rand, _ int) float64 {
	rank := s.z.Uint64()
	frac := (float64(rank) + rng.Float64()) / float64(s.buckets)
	return s.min + frac*(s.max-s.min)
}
