// Package experiments implements every experiment of the paper's evaluation
// (§7 and Appendices D–H): one function per figure/table, each returning
// structured rows and able to print the same series the paper reports. The
// CLI (cmd/pqobench) and the benchmark harness (bench_test.go) both drive
// this package, so a figure is regenerated identically either way.
package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/harness"
	"repro/internal/suite"
	"repro/internal/workload"
)

// Config scales an experiment run. The defaults regenerate the paper's
// qualitative results in seconds; raise M and NumTemplates towards the
// paper's 1000–2000 instances × 90 templates for full-scale runs.
type Config struct {
	// NumTemplates caps the suite size (0 = all 90 templates).
	NumTemplates int
	// M is the instances per sequence (paper: 1000, or 2000 for d > 3).
	M int
	// Seed drives all pseudo-randomness.
	Seed int64
	// Orderings selects the Appendix H.1 orderings (nil = all five).
	Orderings []workload.Ordering
	// Parallel is the number of sequences run concurrently per technique
	// (0 or 1 = sequential). Techniques are per-sequence objects and the
	// engines are concurrency-safe, so parallel runs are deterministic in
	// everything but wall time.
	Parallel int
	// Out receives the printed report (nil = discard).
	Out io.Writer
}

func (c *Config) normalize() {
	if c.M <= 0 {
		c.M = 200
	}
	if c.Seed == 0 {
		c.Seed = 20170514 // SIGMOD'17 opening day
	}
	if len(c.Orderings) == 0 {
		c.Orderings = workload.AllOrderings
	}
}

// Runner owns the systems, suite and prepared workloads for experiments.
type Runner struct {
	cfg     Config
	systems *suite.Systems
	entries []suite.Entry

	mu       sync.Mutex
	prepared map[string][]workload.Instance // template -> prepared base set
	engines  map[string]*engine.TemplateEngine
}

// NewRunner builds the systems and template suite.
func NewRunner(cfg Config) (*Runner, error) {
	cfg.normalize()
	systems, err := suite.NewSystems(cfg.Seed)
	if err != nil {
		return nil, err
	}
	entries, err := suite.Build(systems)
	if err != nil {
		return nil, err
	}
	if cfg.NumTemplates > 0 && cfg.NumTemplates < len(entries) {
		// Take a spread across the suite rather than a prefix of one
		// catalog: stride through the list.
		stride := len(entries) / cfg.NumTemplates
		if stride < 1 {
			stride = 1
		}
		var picked []suite.Entry
		for i := 0; i < len(entries) && len(picked) < cfg.NumTemplates; i += stride {
			picked = append(picked, entries[i])
		}
		entries = picked
	}
	return &Runner{
		cfg:      cfg,
		systems:  systems,
		entries:  entries,
		prepared: make(map[string][]workload.Instance),
		engines:  make(map[string]*engine.TemplateEngine),
	}, nil
}

// Entries exposes the selected template set.
func (r *Runner) Entries() []suite.Entry { return r.entries }

// Systems exposes the four database systems.
func (r *Runner) Systems() *suite.Systems { return r.systems }

// Config returns the normalized configuration.
func (r *Runner) Config() Config { return r.cfg }

// engineFor returns (building once) the TemplateEngine for an entry.
func (r *Runner) engineFor(e suite.Entry) (*engine.TemplateEngine, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if eng, ok := r.engines[e.Tpl.Name]; ok {
		return eng, nil
	}
	eng, err := e.Sys.EngineFor(e.Tpl)
	if err != nil {
		return nil, err
	}
	r.engines[e.Tpl.Name] = eng
	return eng, nil
}

// preparedSet returns (generating and ground-truthing once) the base
// instance set for a template at the configured M.
func (r *Runner) preparedSet(e suite.Entry, m int) ([]workload.Instance, *engine.TemplateEngine, error) {
	eng, err := r.engineFor(e)
	if err != nil {
		return nil, nil, err
	}
	key := fmt.Sprintf("%s/%d", e.Tpl.Name, m)
	if set, ok := r.cachedSet(key); ok {
		return set, eng, nil
	}
	base, err := workload.GenerateSet(e.Tpl.Dimensions(), m, r.cfg.Seed+int64(len(e.Tpl.Name)))
	if err != nil {
		return nil, nil, err
	}
	base, err = workload.Prepare(eng, base)
	if err != nil {
		return nil, nil, err
	}
	r.storeSet(key, base)
	return base, eng, nil
}

// cachedSet reads a prepared instance set under the lock.
func (r *Runner) cachedSet(key string) ([]workload.Instance, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	set, ok := r.prepared[key]
	return set, ok
}

// storeSet records a prepared instance set under the lock.
func (r *Runner) storeSet(key string, set []workload.Instance) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.prepared[key] = set
}

// Sequences yields every (template × ordering) sequence at the configured M.
func (r *Runner) Sequences() ([]*SeqCtx, error) {
	var out []*SeqCtx
	for _, e := range r.entries {
		base, eng, err := r.preparedSet(e, r.cfg.M)
		if err != nil {
			return nil, err
		}
		for _, o := range r.cfg.Orderings {
			ordered, err := workload.Order(base, o, r.cfg.Seed+int64(o)+17)
			if err != nil {
				return nil, err
			}
			out = append(out, &SeqCtx{
				Entry:    e,
				Eng:      eng,
				Ordering: o,
				Seq: &workload.Sequence{
					Name:      fmt.Sprintf("%s/%s", e.Tpl.Name, o),
					Tpl:       e.Tpl,
					Instances: ordered,
				},
			})
		}
	}
	return out, nil
}

// SeqCtx pairs one ordered sequence with its engine.
type SeqCtx struct {
	Entry    suite.Entry
	Eng      *engine.TemplateEngine
	Ordering workload.Ordering
	Seq      *workload.Sequence
}

// Factory constructs a fresh technique instance bound to an engine.
type Factory struct {
	Label string
	New   func(eng core.Engine) (core.Technique, error)
}

// SCRFactory returns a factory for SCR with the given λ.
func SCRFactory(lambda float64) Factory {
	return Factory{
		Label: fmt.Sprintf("SCR%g", lambda),
		New: func(eng core.Engine) (core.Technique, error) {
			return core.NewSCR(eng, core.Config{Lambda: lambda, DetectViolations: true})
		},
	}
}

// SCRConfigFactory returns a factory for SCR with an explicit config.
func SCRConfigFactory(label string, cfg core.Config) Factory {
	return Factory{
		Label: label,
		New: func(eng core.Engine) (core.Technique, error) {
			return core.NewSCR(eng, cfg)
		},
	}
}

// PCMFactory returns a factory for PCM with the given λ.
func PCMFactory(lambda float64) Factory {
	return Factory{
		Label: fmt.Sprintf("PCM%g", lambda),
		New: func(eng core.Engine) (core.Technique, error) {
			return baselines.NewPCM(eng, lambda)
		},
	}
}

// StandardFactories returns the Table 2 technique index: OptOnce, PCMλ,
// Ellipse(0.90), Density(0.1, 0.5), Ranges(0.01) and SCRλ.
func StandardFactories(lambda float64) []Factory {
	return []Factory{
		{Label: "OptOnce", New: func(eng core.Engine) (core.Technique, error) {
			return baselines.NewOptOnce(eng), nil
		}},
		PCMFactory(lambda),
		{Label: "Ellipse", New: func(eng core.Engine) (core.Technique, error) {
			return baselines.NewEllipse(eng, 0.90)
		}},
		{Label: "Density", New: func(eng core.Engine) (core.Technique, error) {
			return baselines.NewDensity(eng, 0.1, 0.5, 3)
		}},
		{Label: "Ranges", New: func(eng core.Engine) (core.Technique, error) {
			return baselines.NewRanges(eng, 0.01)
		}},
		SCRFactory(lambda),
	}
}

// RunTechnique runs a fresh instance of the factory's technique over every
// sequence, returning one harness result per sequence.
func (r *Runner) RunTechnique(f Factory, seqs []*SeqCtx, opts harness.Options) ([]*harness.Result, error) {
	workers := r.cfg.Parallel
	if workers <= 1 {
		results := make([]*harness.Result, 0, len(seqs))
		for _, sc := range seqs {
			tech, err := f.New(sc.Eng)
			if err != nil {
				return nil, err
			}
			res, err := harness.Run(context.Background(), sc.Eng, tech, sc.Seq, opts)
			if err != nil {
				return nil, err
			}
			res.Technique = f.Label
			results = append(results, res)
		}
		return results, nil
	}
	// Parallel: one fresh technique per sequence, results kept in sequence
	// order so reports stay deterministic.
	results := make([]*harness.Result, len(seqs))
	errs := make([]error, len(seqs))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, sc := range seqs {
		wg.Add(1)
		go func(i int, sc *SeqCtx) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			tech, err := f.New(sc.Eng)
			if err != nil {
				errs[i] = err
				return
			}
			res, err := harness.Run(context.Background(), sc.Eng, tech, sc.Seq, opts)
			if err != nil {
				errs[i] = err
				return
			}
			res.Technique = f.Label
			results[i] = res
		}(i, sc)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// printf writes to the configured output, if any.
func (r *Runner) printf(format string, args ...interface{}) {
	if r.cfg.Out != nil {
		fmt.Fprintf(r.cfg.Out, format, args...)
	}
}

// sortByTC orders results by ascending TotalCostRatio, matching the x-axis
// of Figures 6 and 7.
func sortByTC(rs []*harness.Result) {
	sort.Slice(rs, func(i, j int) bool { return rs[i].TotalCostRatio < rs[j].TotalCostRatio })
}
