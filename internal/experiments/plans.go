package experiments

import (
	"repro/internal/harness"
)

// PlanRow is one technique's numPlans summary (Figures 13–15).
type PlanRow struct {
	Technique string
	Mean      float64
	P95       float64
	Max       float64
}

// Fig13 reproduces Figure 13: numPlans across the Table 2 techniques
// (plotted on a log scale in the paper).
func (r *Runner) Fig13() ([]PlanRow, error) {
	seqs, err := r.Sequences()
	if err != nil {
		return nil, err
	}
	var rows []PlanRow
	for _, f := range StandardFactories(2) {
		results, err := r.RunTechnique(f, seqs, harness.Options{})
		if err != nil {
			return nil, err
		}
		s := harness.Summarize(results, harness.MetricNumPlans)
		rows = append(rows, PlanRow{Technique: f.Label, Mean: s.Mean, P95: s.P95, Max: s.Max})
	}
	r.printPlanRows("Figure 13: numPlans for various techniques", rows)
	return rows, nil
}

// Fig14 reproduces Figure 14: numPlans for SCR with varying λ.
func (r *Runner) Fig14() ([]PlanRow, error) {
	seqs, err := r.Sequences()
	if err != nil {
		return nil, err
	}
	var rows []PlanRow
	for _, lambda := range []float64{1.1, 1.2, 1.5, 2.0} {
		f := SCRFactory(lambda)
		results, err := r.RunTechnique(f, seqs, harness.Options{})
		if err != nil {
			return nil, err
		}
		s := harness.Summarize(results, harness.MetricNumPlans)
		rows = append(rows, PlanRow{Technique: f.Label, Mean: s.Mean, P95: s.P95, Max: s.Max})
	}
	r.printPlanRows("Figure 14: numPlans for SCR with varying λ", rows)
	return rows, nil
}

func (r *Runner) printPlanRows(title string, rows []PlanRow) {
	r.printf("== %s ==\n", title)
	r.printf("%-12s %10s %10s %10s\n", "technique", "mean", "p95", "max")
	for _, row := range rows {
		r.printf("%-12s %10.1f %10.1f %10.0f\n", row.Technique, row.Mean, row.P95, row.Max)
	}
}

// Fig15Row summarizes technique behaviour on the "easy" sequences where
// Optimize-Once already achieves MSO < 2.
type Fig15Row struct {
	Technique string
	AvgPlans  float64
	OptPct    float64
}

// Fig15 reproduces Figure 15: on sequences where Optimize-Once has MSO < 2,
// a good technique should realize that one plan suffices — SCR stores very
// few plans and optimizes a tiny fraction, while others keep storing.
func (r *Runner) Fig15() ([]Fig15Row, int, error) {
	seqs, err := r.Sequences()
	if err != nil {
		return nil, 0, err
	}
	// First pass: find the easy sequences via OptOnce.
	optOnce := StandardFactories(2)[0]
	results, err := r.RunTechnique(optOnce, seqs, harness.Options{})
	if err != nil {
		return nil, 0, err
	}
	var easy []*SeqCtx
	for i, res := range results {
		if res.MSO < 2 {
			easy = append(easy, seqs[i])
		}
	}
	if len(easy) == 0 {
		r.printf("== Figure 15: no sequences with OptOnce MSO < 2 at this scale ==\n")
		return nil, 0, nil
	}
	var rows []Fig15Row
	for _, f := range StandardFactories(2) {
		res, err := r.RunTechnique(f, easy, harness.Options{})
		if err != nil {
			return nil, 0, err
		}
		rows = append(rows, Fig15Row{
			Technique: f.Label,
			AvgPlans:  harness.Summarize(res, harness.MetricNumPlans).Mean,
			OptPct:    harness.Summarize(res, harness.MetricOptFraction).Mean * 100,
		})
	}
	r.printf("== Figure 15: sequences where OptOnce has MSO < 2 (%d of %d) ==\n",
		len(easy), len(seqs))
	r.printf("%-12s %12s %10s\n", "technique", "avg plans", "numOpt%")
	for _, row := range rows {
		r.printf("%-12s %12.1f %9.1f%%\n", row.Technique, row.AvgPlans, row.OptPct)
	}
	return rows, len(easy), nil
}
