package experiments

import (
	"context"
	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/harness"
	"repro/internal/query"
	"repro/internal/workload"
)

// ViolationRow is one configuration of the BCG-violation study.
type ViolationRow struct {
	Config             string
	MSO                float64
	TC                 float64
	BoundViolations    int64
	DetectedViolations int64
	NumOpt             int64
}

// ViolationStudy probes §7.2's cost-model assumption violations on the
// real engine. The hash-join spill cliff is this cost model's only BCG
// discontinuity: a plan whose build side crosses the memory grant jumps in
// cost by the spill factor, potentially exceeding the selectivity-ratio
// bound. The study runs SCR with a tight λ over a workload straddling the
// cliff, with and without Appendix G detection. The expected outcome is a
// *negative* result that mirrors our suite-wide audit: the optimizer's
// winners switch join algorithms before the cliff, so cached plans are
// rarely recosted across it and violations are rarer than in the paper's
// much lumpier commercial cost model (see EXPERIMENTS.md "known
// deviations"). The detection machinery itself is exercised by the
// injected-discontinuity unit test in internal/core.
func (r *Runner) ViolationStudy(m int) ([]ViolationRow, error) {
	if m <= 0 {
		m = 300
	}
	// A dedicated full-scale TPC-H system: at sf=1 the filtered lineitem
	// build side crosses the ~80 MB memory grant within the selectivity
	// range of interest.
	sys, err := engine.NewSystem(catalog.NewTPCH(1), r.cfg.Seed+101)
	if err != nil {
		return nil, err
	}
	tpl := &query.Template{
		Name:    "spill_study",
		Catalog: sys.Cat,
		Tables:  []string{"orders", "lineitem"},
		Joins: []query.Join{{
			Left: "orders", Right: "lineitem",
			LeftCol: "o_orderkey", RightCol: "l_orderkey",
			Selectivity: 1.0 / 1_500_000,
		}},
		Preds: []query.Predicate{
			{Table: "lineitem", Column: "l_shipdate", Op: query.LE, Param: 0},
			{Table: "orders", Column: "o_orderdate", Op: query.LE, Param: 1},
		},
	}
	eng, err := sys.EngineFor(tpl)
	if err != nil {
		return nil, err
	}
	// The spill boundary: MemPages·PageBytes / rowBytes(lineitem) rows of
	// the 6M-row table → selectivity ≈ 0.11. Concentrate the workload
	// around it.
	base, err := workload.GenerateSet(2, m, r.cfg.Seed+7)
	if err != nil {
		return nil, err
	}
	for i := range base {
		// Remap dimension 0 into [0.02, 0.5] (straddling the cliff) while
		// keeping dimension 1 as generated.
		base[i].SV[0] = 0.02 + base[i].SV[0]*0.5
		if base[i].SV[0] > 0.5 {
			base[i].SV[0] = 0.5
		}
	}
	base, err = workload.Prepare(eng, base)
	if err != nil {
		return nil, err
	}
	seq := &workload.Sequence{Name: tpl.Name, Tpl: tpl, Instances: base}

	lambda := 1.1
	configs := []struct {
		label string
		cfg   core.Config
	}{
		{"SCR1.1, no detection", core.Config{Lambda: lambda}},
		{"SCR1.1, Appendix G", core.Config{Lambda: lambda, DetectViolations: true}},
	}
	var rows []ViolationRow
	for _, c := range configs {
		tech, err := core.NewSCR(eng, c.cfg)
		if err != nil {
			return nil, err
		}
		res, err := harness.Run(context.Background(), eng, tech, seq, harness.Options{Lambda: lambda})
		if err != nil {
			return nil, err
		}
		rows = append(rows, ViolationRow{
			Config:             c.label,
			MSO:                res.MSO,
			TC:                 res.TotalCostRatio,
			BoundViolations:    res.BoundViolations,
			DetectedViolations: tech.Stats().Violations,
			NumOpt:             res.NumOpt,
		})
	}
	r.printf("== Violation study: hash-join spill cliff vs Appendix G (λ=%g, m=%d) ==\n", lambda, m)
	r.printf("%-22s %8s %8s %10s %10s %8s\n", "config", "MSO", "TC", "SO>λ", "detected", "numOpt")
	for _, row := range rows {
		r.printf("%-22s %8.3f %8.3f %10d %10d %8d\n",
			row.Config, row.MSO, row.TC, row.BoundViolations, row.DetectedViolations, row.NumOpt)
	}
	return rows, nil
}
