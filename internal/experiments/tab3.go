package experiments

import (
	"context"
	"time"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/query"
	"repro/internal/workload"
)

// Tab3Row is one technique's row of Table 3: wall-clock optimization time
// (optimizer calls + getPlan overheads), wall-clock execution time of the
// chosen plans, total, and plans stored.
type Tab3Row struct {
	Technique string
	OptTime   time.Duration
	ExecTime  time.Duration
	Total     time.Duration
	Plans     int
}

// Tab3 reproduces Table 3: a sample execution experiment over a TPC-DS-like
// template for which optimization time is comparable to execution time.
// Every chosen plan is actually executed by the in-memory engine against
// materialized data, so execution-time sub-optimality is real, not modeled.
func (r *Runner) Tab3(m, maxRows int) ([]Tab3Row, error) {
	if m <= 0 {
		m = 200
	}
	if maxRows <= 0 {
		maxRows = 50000
	}
	// Pick a TPC-DS three-way join template (the paper uses a TPC-DS-based
	// query).
	var entry = r.entries[0]
	found := false
	for _, e := range r.entries {
		if e.Sys == r.systems.TPCDS && len(e.Tpl.Tables) >= 3 {
			entry = e
			found = true
			break
		}
	}
	if !found {
		for _, e := range r.entries {
			if len(e.Tpl.Tables) >= 2 {
				entry = e
				break
			}
		}
	}
	db, err := exec.Materialize(entry.Sys.Cat, entry.Sys.Gen, maxRows)
	if err != nil {
		return nil, err
	}
	base, eng, err := r.preparedSet(entry, m)
	if err != nil {
		return nil, err
	}
	ordered, err := workload.Order(base, workload.Random, r.cfg.Seed+3)
	if err != nil {
		return nil, err
	}

	// Parameter binding: convert each instance's selectivity vector back
	// into concrete parameter values via histogram inversion, so execution
	// touches the number of rows the optimizer assumed.
	toParams := func(sv []float64) ([]float64, error) {
		preds := entry.Tpl.ParamPredicates()
		params := make([]float64, len(preds))
		for i, p := range preds {
			var (
				v   float64
				err error
			)
			if p.Op == query.LE {
				v, err = entry.Sys.Stats.ValueForSelectivityLE(p.Table, p.Column, sv[i])
			} else {
				v, err = entry.Sys.Stats.ValueForSelectivityGE(p.Table, p.Column, sv[i])
			}
			if err != nil {
				return nil, err
			}
			params[i] = v
		}
		return params, nil
	}

	factories := []Factory{
		{Label: "OptAlways", New: func(e core.Engine) (core.Technique, error) {
			return baselines.NewOptAlways(e), nil
		}},
		{Label: "OptOnce", New: func(e core.Engine) (core.Technique, error) {
			return baselines.NewOptOnce(e), nil
		}},
		{Label: "Ellipse0.9", New: func(e core.Engine) (core.Technique, error) {
			return baselines.NewEllipse(e, 0.9)
		}},
		{Label: "Ellipse0.7", New: func(e core.Engine) (core.Technique, error) {
			return baselines.NewEllipse(e, 0.7)
		}},
		SCRFactory(1.1),
		PCMFactory(1.1),
		{Label: "Ranges1%", New: func(e core.Engine) (core.Technique, error) {
			return baselines.NewRanges(e, 0.01)
		}},
	}
	var rows []Tab3Row
	for _, f := range factories {
		tech, err := f.New(eng)
		if err != nil {
			return nil, err
		}
		eng.ResetTiming()
		var execTime time.Duration
		optWall := time.Duration(0)
		for _, q := range ordered {
			t0 := time.Now()
			dec, err := tech.Process(context.Background(), q.SV)
			if err != nil {
				return nil, err
			}
			optWall += time.Since(t0) // optimizer + getPlan overheads
			params, err := toParams(q.SV)
			if err != nil {
				return nil, err
			}
			t1 := time.Now()
			if _, err := db.Execute(dec.Plan.Plan, entry.Tpl, params); err != nil {
				return nil, err
			}
			execTime += time.Since(t1)
		}
		rows = append(rows, Tab3Row{
			Technique: f.Label,
			OptTime:   optWall,
			ExecTime:  execTime,
			Total:     optWall + execTime,
			Plans:     maxPlans(tech.Stats().MaxPlans, tech.Stats().CurPlans),
		})
	}
	r.printf("== Table 3: sample execution experiment (%s, m=%d, maxRows=%d) ==\n",
		entry.Tpl.Name, m, maxRows)
	r.printf("%-12s %12s %12s %12s %8s\n", "technique", "opt time", "exec time", "total", "plans")
	for _, row := range rows {
		r.printf("%-12s %12s %12s %12s %8d\n", row.Technique,
			row.OptTime.Round(time.Millisecond), row.ExecTime.Round(time.Millisecond),
			row.Total.Round(time.Millisecond), row.Plans)
	}
	return rows, nil
}

func maxPlans(a, b int) int {
	if a > b {
		return a
	}
	return b
}
