package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/harness"
	"repro/internal/workload"
)

// tinyRunner builds a Runner over a handful of templates with short
// sequences — enough to exercise every experiment end to end.
func tinyRunner(t testing.TB, out *bytes.Buffer) *Runner {
	t.Helper()
	cfg := Config{
		NumTemplates: 6,
		M:            48,
		Seed:         7,
		Orderings:    []workload.Ordering{workload.Random, workload.DecreasingCost},
	}
	if out != nil {
		cfg.Out = out
	}
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRunnerSelectsSpreadOfTemplates(t *testing.T) {
	r := tinyRunner(t, nil)
	if got := len(r.Entries()); got != 6 {
		t.Fatalf("selected %d templates, want 6", got)
	}
	cats := map[string]bool{}
	for _, e := range r.Entries() {
		cats[e.Sys.Cat.Name] = true
	}
	if len(cats) < 2 {
		t.Errorf("template spread covers %d catalogs, want >= 2", len(cats))
	}
}

func TestFig6And7Distributions(t *testing.T) {
	var out bytes.Buffer
	r := tinyRunner(t, &out)
	d6, err := r.Fig6()
	if err != nil {
		t.Fatal(err)
	}
	if len(d6) != 2 {
		t.Fatalf("Fig6 returned %d techniques, want 2", len(d6))
	}
	for _, d := range d6 {
		if len(d.Points) != len(r.Entries())*2 {
			t.Errorf("%s: %d points, want %d", d.Technique, len(d.Points), len(r.Entries())*2)
		}
		// Points must be sorted by TC.
		for i := 1; i < len(d.Points); i++ {
			if d.Points[i-1].TC > d.Points[i].TC {
				t.Errorf("%s: points not sorted by TC", d.Technique)
			}
		}
	}
	d7, err := r.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	// SCR2 should satisfy the bound on the vast majority of sequences.
	scr := d7[1]
	if frac := float64(scr.Violations) / float64(len(scr.Points)); frac > 0.2 {
		t.Errorf("SCR2 violated the λ=2 bound on %.0f%% of sequences", frac*100)
	}
	if !strings.Contains(out.String(), "Figure 6") || !strings.Contains(out.String(), "Figure 7") {
		t.Error("reports not printed")
	}
}

func TestFig8LambdaMonotonicity(t *testing.T) {
	r := tinyRunner(t, nil)
	dists, err := r.Fig8()
	if err != nil {
		t.Fatal(err)
	}
	if len(dists) != 4 {
		t.Fatalf("Fig8 returned %d rows", len(dists))
	}
	// TC should stay well below the allowed λ on average (paper: mean TC
	// ~1.1 even at λ=2).
	if dists[3].TC.Mean > 2 {
		t.Errorf("SCR2 mean TC = %v, expected well under λ", dists[3].TC.Mean)
	}
}

func TestFig9And10NumOpt(t *testing.T) {
	r := tinyRunner(t, nil)
	rows, err := r.Fig9()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]OptRow{}
	for _, row := range rows {
		byName[row.Technique] = row
	}
	// SCR2 must beat PCM2 on optimizer overheads (the paper's headline).
	if byName["SCR2"].MeanPct >= byName["PCM2"].MeanPct {
		t.Errorf("SCR2 mean numOpt %.1f%% not below PCM2 %.1f%%",
			byName["SCR2"].MeanPct, byName["PCM2"].MeanPct)
	}
	rows10, err := r.Fig10()
	if err != nil {
		t.Fatal(err)
	}
	// numOpt must decrease as λ grows.
	if rows10[0].MeanPct < rows10[len(rows10)-1].MeanPct {
		t.Errorf("numOpt did not decrease with λ: %.1f%% -> %.1f%%",
			rows10[0].MeanPct, rows10[len(rows10)-1].MeanPct)
	}
}

func TestFig13And14Plans(t *testing.T) {
	r := tinyRunner(t, nil)
	rows, err := r.Fig13()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]PlanRow{}
	for _, row := range rows {
		byName[row.Technique] = row
	}
	if byName["SCR2"].Mean > byName["PCM2"].Mean {
		t.Errorf("SCR2 stores more plans (%.1f) than PCM2 (%.1f)",
			byName["SCR2"].Mean, byName["PCM2"].Mean)
	}
	rows14, err := r.Fig14()
	if err != nil {
		t.Fatal(err)
	}
	if rows14[0].Mean < rows14[len(rows14)-1].Mean {
		t.Errorf("numPlans did not decrease with λ: %.1f -> %.1f",
			rows14[0].Mean, rows14[len(rows14)-1].Mean)
	}
}

func TestFig11GrowthAndFig19Budget(t *testing.T) {
	r := tinyRunner(t, nil)
	pts, err := r.Fig11([]int{60, 120})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 6 { // 2 m-values × 3 techniques
		t.Fatalf("Fig11 returned %d points, want 6", len(pts))
	}
	// numOpt% for SCR2 must not increase with m.
	var small, large float64
	for _, p := range pts {
		if p.Technique == "SCR2" && p.M == 60 {
			small = p.OptPct
		}
		if p.Technique == "SCR2" && p.M == 120 {
			large = p.OptPct
		}
	}
	if large > small+5 {
		t.Errorf("SCR2 numOpt%% grew with m: %.1f -> %.1f", small, large)
	}
	bpts, err := r.Fig19()
	if err != nil {
		t.Fatal(err)
	}
	if len(bpts) != 4 {
		t.Fatalf("Fig19 returned %d points", len(bpts))
	}
	// Tighter budgets cannot reduce optimizer calls.
	if bpts[3].OptPct < bpts[0].OptPct-1e-9 {
		t.Errorf("k=2 has fewer optimizer calls (%.1f%%) than unlimited (%.1f%%)",
			bpts[3].OptPct, bpts[0].OptPct)
	}
}

func TestFig1Example(t *testing.T) {
	var out bytes.Buffer
	r := tinyRunner(t, &out)
	res, err := r.Fig1()
	if err != nil {
		t.Fatal(err)
	}
	if res.NumOpt["SCR2"] == 0 || res.NumOpt["SCR2"] > 13 {
		t.Errorf("SCR2 numOpt = %d, want within (0, 13]", res.NumOpt["SCR2"])
	}
	// SCR should optimize no more than PCM on the clustered example.
	if res.NumOpt["SCR2"] > res.NumOpt["PCM2"] {
		t.Errorf("SCR2 optimized %d > PCM2 %d on the example workload",
			res.NumOpt["SCR2"], res.NumOpt["PCM2"])
	}
	if !strings.Contains(out.String(), "q13") {
		t.Error("Fig1 report incomplete")
	}
}

func TestAppendixExperiments(t *testing.T) {
	r := tinyRunner(t, nil)
	dRows, err := r.AppD(60)
	if err != nil {
		t.Fatal(err)
	}
	if len(dRows) != 2 {
		t.Fatalf("AppD returned %d rows", len(dRows))
	}
	if dRows[1].NumPlans > dRows[0].NumPlans {
		t.Errorf("dynamic λ stored more plans (%d) than static (%d)",
			dRows[1].NumPlans, dRows[0].NumPlans)
	}
	eRows, err := r.AppE(60)
	if err != nil {
		t.Fatal(err)
	}
	if len(eRows) != 4 {
		t.Fatalf("AppE returned %d rows", len(eRows))
	}
	// Store-always retains at least as many plans as λr=√λ.
	if eRows[0].Plans < eRows[2].Plans {
		t.Errorf("store-always plans %d below λr=√λ plans %d", eRows[0].Plans, eRows[2].Plans)
	}
	aRows, err := r.AblationGLOrdering(60)
	if err != nil {
		t.Fatal(err)
	}
	if aRows[0].GetPlanRecosts < aRows[1].GetPlanRecosts {
		t.Errorf("naive recosts %d below limited recosts %d",
			aRows[0].GetPlanRecosts, aRows[1].GetPlanRecosts)
	}
}

func TestTab3Execution(t *testing.T) {
	if testing.Short() {
		t.Skip("materializes data and executes plans")
	}
	var out bytes.Buffer
	r := tinyRunner(t, &out)
	rows, err := r.Tab3(200, 20000)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Tab3Row{}
	for _, row := range rows {
		byName[row.Technique] = row
	}
	oa := byName["OptAlways"]
	scr := byName["SCR1.1"]
	pcm := byName["PCM1.1"]
	if oa.OptTime <= 0 || oa.ExecTime <= 0 {
		t.Fatalf("OptAlways times not measured: %+v", oa)
	}
	// Wall-clock comparisons are tolerant (CI noise); the robust shape is
	// the plan-count ordering: SCR retains far fewer plans than PCM and
	// the heuristics, while OptOnce keeps exactly one.
	if scr.OptTime > 2*oa.OptTime {
		t.Errorf("SCR1.1 opt time %v far above OptAlways %v", scr.OptTime, oa.OptTime)
	}
	if scr.Plans >= pcm.Plans {
		t.Errorf("SCR1.1 stored %d plans, PCM1.1 %d; SCR should store fewer", scr.Plans, pcm.Plans)
	}
	if byName["OptOnce"].Plans != 1 {
		t.Errorf("OptOnce plans = %d, want 1", byName["OptOnce"].Plans)
	}
}

func TestFig12Dimensions(t *testing.T) {
	if testing.Short() {
		t.Skip("runs across dimension bands")
	}
	r := tinyRunner(t, nil)
	pts, err := r.Fig12()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) == 0 {
		t.Fatal("Fig12 returned no points")
	}
	// There must be data across a range of dimensions including d >= 8.
	maxD := 0
	for _, p := range pts {
		if p.D > maxD {
			maxD = p.D
		}
	}
	if maxD < 8 {
		t.Errorf("Fig12 max dimension %d, want >= 8", maxD)
	}
}

func TestFig15And16And17(t *testing.T) {
	if testing.Short() {
		t.Skip("runs all techniques over all sequences")
	}
	r := tinyRunner(t, nil)
	if _, _, err := r.Fig15(); err != nil {
		t.Fatal(err)
	}
	r16, err := r.Fig16()
	if err != nil {
		t.Fatal(err)
	}
	if len(r16) != 6 {
		t.Errorf("Fig16 rows = %d, want 6", len(r16))
	}
	r17, err := r.Fig17()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]AggRow{}
	for _, row := range r17 {
		byName[row.Technique] = row
	}
	// SCR2's aggregate TC should be close to optimal and below OptOnce's.
	if byName["SCR2"].Mean > byName["OptOnce"].Mean {
		t.Errorf("SCR2 mean TC %.2f above OptOnce %.2f", byName["SCR2"].Mean, byName["OptOnce"].Mean)
	}
}

func TestFig20RandomOnly(t *testing.T) {
	if testing.Short() {
		t.Skip("runs all techniques")
	}
	r := tinyRunner(t, nil)
	rows, err := r.Fig20()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Errorf("Fig20 rows = %d, want 6", len(rows))
	}
	// Orderings config must be restored afterwards.
	if len(r.Config().Orderings) != 2 {
		t.Error("Fig20 did not restore the ordering config")
	}
}

func TestFig18TenD(t *testing.T) {
	if testing.Short() {
		t.Skip("10-d growth experiment")
	}
	r := tinyRunner(t, nil)
	pts, err := r.Fig18([]int{60, 120})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 6 {
		t.Fatalf("Fig18 returned %d points, want 6", len(pts))
	}
}

func TestFig21RecostAugmented(t *testing.T) {
	if testing.Short() {
		t.Skip("runs six technique variants")
	}
	r := tinyRunner(t, nil)
	rows, err := r.Fig21()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("Fig21 rows = %d, want 3", len(rows))
	}
	for _, row := range rows {
		if row.AugPlans > row.PlainPlans+1e-9 {
			t.Errorf("%s: redundancy check increased plans (%.0f -> %.0f)",
				row.Technique, row.PlainPlans, row.AugPlans)
		}
	}
}

func TestParallelRunMatchesSequential(t *testing.T) {
	// Parallel execution must produce identical per-sequence results.
	mk := func(par int) []*harness.Result {
		cfg := Config{NumTemplates: 4, M: 40, Seed: 7, Parallel: par,
			Orderings: []workload.Ordering{workload.Random}}
		r, err := NewRunner(cfg)
		if err != nil {
			t.Fatal(err)
		}
		seqs, err := r.Sequences()
		if err != nil {
			t.Fatal(err)
		}
		results, err := r.RunTechnique(SCRFactory(2), seqs, harness.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return results
	}
	seq := mk(1)
	par := mk(4)
	if len(seq) != len(par) {
		t.Fatalf("result counts differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i].Sequence != par[i].Sequence ||
			seq[i].MSO != par[i].MSO ||
			seq[i].TotalCostRatio != par[i].TotalCostRatio ||
			seq[i].NumOpt != par[i].NumOpt ||
			seq[i].NumPlans != par[i].NumPlans {
			t.Errorf("sequence %d differs between parallel and sequential:\n  %+v\n  %+v",
				i, seq[i], par[i])
		}
	}
}

func TestViolationStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a dedicated sf=1 system")
	}
	r := tinyRunner(t, nil)
	rows, err := r.ViolationStudy(200)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	for _, row := range rows {
		// The negative result the suite audit also shows: violations are
		// rare on this cost model, and sub-optimality stays bounded by the
		// worst spill-explainable overshoot.
		if float64(row.BoundViolations) > 0.02*200 {
			t.Errorf("%s: %d bound violations, want rare", row.Config, row.BoundViolations)
		}
		if row.MSO > 1.1*2.5 {
			t.Errorf("%s: MSO %v beyond spill-explainable bound", row.Config, row.MSO)
		}
	}
}

func TestHybridStudy(t *testing.T) {
	r := tinyRunner(t, nil)
	rows, err := r.HybridStudy(300, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	cold, seeded := rows[0], rows[1]
	// The §9 future-work claim: offline seeding reduces optimizer calls
	// without violating the bound.
	if seeded.NumOpt > cold.NumOpt {
		t.Errorf("seeded SCR made more optimizer calls (%d) than cold (%d)",
			seeded.NumOpt, cold.NumOpt)
	}
	if seeded.MSO > 2*(1+0.05) {
		t.Errorf("seeded MSO %v exceeds λ=2", seeded.MSO)
	}
}
