package experiments

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/diagram"
	"repro/internal/harness"
	"repro/internal/suite"
	"repro/internal/workload"
)

// HybridRow is one configuration of the offline+online hybrid study.
type HybridRow struct {
	Config   string
	NumOpt   int64
	OptPct   float64
	NumPlans int
	TC       float64
	MSO      float64
}

// HybridStudy implements the paper's §9 future-work direction: combining
// offline exploration with the online technique. An anorexic plan-diagram
// reduction (Harish et al.) runs offline over a coarse 2-d selectivity
// grid; the surviving plans and their grid anchors are seeded into SCR's
// plan cache before the workload starts. The online checks then reuse the
// seeded plans from the first instance onward, cutting optimizer calls
// relative to a cold SCR — without weakening the λ guarantee, because each
// anchor carries its true sub-optimality.
func (r *Runner) HybridStudy(m, grid int) ([]HybridRow, error) {
	if m <= 0 {
		m = 400
	}
	if grid <= 0 {
		grid = 10
	}
	var entry suite.Entry
	found := false
	for _, e := range r.entries {
		if e.Tpl.Dimensions() == 2 {
			entry, found = e, true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("experiments: hybrid study needs a 2-d template in the suite slice")
	}
	base, eng, err := r.preparedSet(entry, m)
	if err != nil {
		return nil, err
	}
	ordered, err := workload.Order(base, workload.Random, r.cfg.Seed+53)
	if err != nil {
		return nil, err
	}
	seq := &workload.Sequence{Name: entry.Tpl.Name, Tpl: entry.Tpl, Instances: ordered}

	lambda := 2.0
	// Offline phase: plan diagram + anorexic reduction at λr = √λ (so the
	// seeded sub-optimalities leave the online checks reuse headroom).
	lambdaR := 1.4142135623730951
	d, err := diagram.Build(eng, grid, workload.SmallLo, workload.LargeHi)
	if err != nil {
		return nil, err
	}
	reduced, err := d.Reduce(lambdaR)
	if err != nil {
		return nil, err
	}

	var rows []HybridRow
	run := func(label string, seed bool) error {
		scr, err := core.NewSCR(eng, core.Config{Lambda: lambda, DetectViolations: true})
		if err != nil {
			return err
		}
		if seed {
			for y := 0; y < reduced.Grid; y++ {
				for x := 0; x < reduced.Grid; x++ {
					cp := reduced.Plans[reduced.Cell[y][x]]
					sv := []float64{reduced.Axis(x), reduced.Axis(y)}
					c, err := eng.Recost(cp, sv)
					if err != nil {
						return err
					}
					winner := reduced.WinnerCost[y][x]
					subOpt := c / winner
					if subOpt < 1 {
						subOpt = 1
					}
					if err := scr.SeedInstance(sv, cp, winner, subOpt); err != nil {
						return err
					}
				}
			}
		}
		res, err := harness.Run(context.Background(), eng, scr, seq, harness.Options{Lambda: lambda})
		if err != nil {
			return err
		}
		rows = append(rows, HybridRow{
			Config:   label,
			NumOpt:   res.NumOpt,
			OptPct:   res.OptFraction * 100,
			NumPlans: res.NumPlans,
			TC:       res.TotalCostRatio,
			MSO:      res.MSO,
		})
		return nil
	}
	if err := run("cold SCR2", false); err != nil {
		return nil, err
	}
	if err := run(fmt.Sprintf("seeded SCR2 (%d plans)", reduced.NumPlans()), true); err != nil {
		return nil, err
	}
	r.printf("== Hybrid offline+online (§9 future work): %s, m=%d, %dx%d diagram ==\n",
		entry.Tpl.Name, m, grid, grid)
	r.printf("offline: plan diagram %d plans → anorexic %d plans at λr=√2\n",
		d.NumPlans(), reduced.NumPlans())
	r.printf("%-24s %8s %9s %8s %8s %8s\n", "config", "numOpt", "numOpt%", "plans", "TC", "MSO")
	for _, row := range rows {
		r.printf("%-24s %8d %8.1f%% %8d %8.3f %8.3f\n",
			row.Config, row.NumOpt, row.OptPct, row.NumPlans, row.TC, row.MSO)
	}
	return rows, nil
}
