package experiments

import (
	"context"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/workload"
)

// AppDRow compares static λmin against the Appendix D dynamic λ on one
// template: plans stored, optimizer calls, TotalCostRatio.
type AppDRow struct {
	Config   string
	NumPlans int
	NumOpt   int64
	TC       float64
}

// AppD reproduces the Appendix D experiment: dynamic λ ∈ [1.1, 10] as an
// exponentially decaying function of optimal cost, against static λ = 1.1,
// on a multi-plan TPC-DS-like template. Dynamic λ should reduce numPlans
// and numOpt at only a small TotalCostRatio increase.
func (r *Runner) AppD(m int) ([]AppDRow, error) {
	if m <= 0 {
		m = 400
	}
	// Pick the TPC-DS template with the most distinct optimal plans at
	// this scale (the paper uses Q25, which featured 378 plans).
	var entry = r.entries[0]
	bestPlans := -1
	for _, e := range r.entries {
		if e.Sys != r.systems.TPCDS {
			continue
		}
		base, _, err := r.preparedSet(e, m)
		if err != nil {
			return nil, err
		}
		if n := workload.DistinctOptimalPlans(base); n > bestPlans {
			bestPlans, entry = n, e
		}
	}
	base, eng, err := r.preparedSet(entry, m)
	if err != nil {
		return nil, err
	}
	ordered, err := workload.Order(base, workload.Random, r.cfg.Seed+31)
	if err != nil {
		return nil, err
	}
	seq := &workload.Sequence{Name: entry.Tpl.Name, Tpl: entry.Tpl, Instances: ordered}

	// The decay reference cost: median optimal cost of the workload.
	costs := make([]float64, len(base))
	for i, q := range base {
		costs[i] = q.OptCost
	}
	ref := harness.Percentile(costs, 0.5)

	configs := []struct {
		label string
		cfg   core.Config
	}{
		{"static λ=1.1", core.Config{Lambda: 1.1, DetectViolations: true}},
		{"dynamic λ∈[1.1,10]", core.Config{Lambda: 1.1, DetectViolations: true,
			Dynamic: &core.DynamicLambda{Min: 1.1, Max: 10, RefCost: ref}}},
	}
	var rows []AppDRow
	for _, c := range configs {
		tech, err := core.NewSCR(eng, c.cfg)
		if err != nil {
			return nil, err
		}
		res, err := harness.Run(context.Background(), eng, tech, seq, harness.Options{})
		if err != nil {
			return nil, err
		}
		rows = append(rows, AppDRow{
			Config:   c.label,
			NumPlans: res.NumPlans,
			NumOpt:   res.NumOpt,
			TC:       res.TotalCostRatio,
		})
	}
	r.printf("== Appendix D: dynamic λ on %s (m=%d, %d distinct optimal plans) ==\n",
		entry.Tpl.Name, m, bestPlans)
	r.printf("%-22s %10s %10s %10s\n", "config", "numPlans", "numOpt", "TC")
	for _, row := range rows {
		r.printf("%-22s %10d %10d %10.3f\n", row.Config, row.NumPlans, row.NumOpt, row.TC)
	}
	return rows, nil
}

// AppERow is one λr setting's outcome (Appendix E): plans retained, recost
// calls on the critical path, TotalCostRatio.
type AppERow struct {
	Label          string
	Plans          int
	GetPlanRecosts int64
	NumOpt         int64
	TC             float64
}

// AppE reproduces the Appendix E experiment: the effect of the redundancy
// threshold λr on plans retained, getPlan Recost calls and TotalCostRatio,
// for λ = 1.1. λr = √λ should retain far fewer plans than store-always at
// nearly the same TC.
func (r *Runner) AppE(m int) ([]AppERow, error) {
	if m <= 0 {
		m = 400
	}
	var entry = r.entries[0]
	for _, e := range r.entries {
		if e.Sys == r.systems.TPCDS && len(e.Tpl.Tables) >= 3 {
			entry = e
			break
		}
	}
	base, eng, err := r.preparedSet(entry, m)
	if err != nil {
		return nil, err
	}
	ordered, err := workload.Order(base, workload.Random, r.cfg.Seed+37)
	if err != nil {
		return nil, err
	}
	seq := &workload.Sequence{Name: entry.Tpl.Name, Tpl: entry.Tpl, Instances: ordered}

	lambda := 1.1
	configs := []struct {
		label string
		cfg   core.Config
	}{
		{"λr=1 (store always)", core.Config{Lambda: lambda, StoreAlways: true}},
		{"λr=1.01", core.Config{Lambda: lambda, LambdaR: 1.01}},
		{"λr=√λ≈1.049", core.Config{Lambda: lambda}},
		{"λr=λ=1.1", core.Config{Lambda: lambda, LambdaR: lambda}},
	}
	var rows []AppERow
	for _, c := range configs {
		tech, err := core.NewSCR(eng, c.cfg)
		if err != nil {
			return nil, err
		}
		res, err := harness.Run(context.Background(), eng, tech, seq, harness.Options{})
		if err != nil {
			return nil, err
		}
		rows = append(rows, AppERow{
			Label:          c.label,
			Plans:          res.NumPlans,
			GetPlanRecosts: res.GetPlanRecosts,
			NumOpt:         res.NumOpt,
			TC:             res.TotalCostRatio,
		})
	}
	r.printf("== Appendix E: choosing λr (template %s, λ=1.1, m=%d) ==\n", entry.Tpl.Name, m)
	r.printf("%-22s %8s %14s %8s %8s\n", "λr", "plans", "getPlanRecosts", "numOpt", "TC")
	for _, row := range rows {
		r.printf("%-22s %8d %14d %8d %8.3f\n", row.Label, row.Plans, row.GetPlanRecosts, row.NumOpt, row.TC)
	}
	return rows, nil
}

// AblationCandOrder compares the paper's GL-ordering of cost-check
// candidates (§6.2) with the L-ordering extension on a high-dimensional
// template, where the difference matters most: under GL order, instances
// the new one dominates (L=1, huge G) sort last and get pruned, yet they
// are exactly the candidates whose measured ratio R can pass R·L ≤ λ/S.
func (r *Runner) AblationCandOrder(m int) ([]AblationRow, error) {
	if m <= 0 {
		m = 400
	}
	entry, err := r.templateWithDims(10)
	if err != nil {
		return nil, err
	}
	base, eng, err := r.preparedSet(entry, m)
	if err != nil {
		return nil, err
	}
	ordered, err := workload.Order(base, workload.Random, r.cfg.Seed+43)
	if err != nil {
		return nil, err
	}
	seq := &workload.Sequence{Name: entry.Tpl.Name, Tpl: entry.Tpl, Instances: ordered}
	configs := []struct {
		label string
		cfg   core.Config
	}{
		{"GL order (paper), limit 8", core.Config{Lambda: 2}},
		{"L order, limit 8", core.Config{Lambda: 2, OrderCandidatesByL: true}},
		{"L order, limit 32", core.Config{Lambda: 2, OrderCandidatesByL: true, CostCheckLimit: 32}},
	}
	var rows []AblationRow
	for _, c := range configs {
		tech, err := core.NewSCR(eng, c.cfg)
		if err != nil {
			return nil, err
		}
		res, err := harness.Run(context.Background(), eng, tech, seq, harness.Options{Lambda: 2})
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{
			Label:          c.label,
			GetPlanRecosts: res.GetPlanRecosts,
			NumOpt:         res.NumOpt,
			TC:             res.TotalCostRatio,
		})
	}
	r.printf("== Ablation: cost-check candidate ordering on %s (d=10, m=%d) ==\n",
		entry.Tpl.Name, m)
	r.printf("%-26s %14s %8s %8s\n", "config", "getPlanRecosts", "numOpt", "TC")
	for _, row := range rows {
		r.printf("%-26s %14d %8d %8.3f\n", row.Label, row.GetPlanRecosts, row.NumOpt, row.TC)
	}
	return rows, nil
}

// AblationRow is one configuration of the GL-ordering ablation.
type AblationRow struct {
	Label          string
	GetPlanRecosts int64
	NumOpt         int64
	TC             float64
}

// AblationGLOrdering measures the §6.2 heuristic that orders cost-check
// candidates by increasing GL and prunes the rest: a naive getPlan recosts
// every instance entry, the heuristic bounds the number per call. It mirrors
// the paper's 162 → 8 Recost-call example.
func (r *Runner) AblationGLOrdering(m int) ([]AblationRow, error) {
	if m <= 0 {
		m = 400
	}
	var entry = r.entries[0]
	for _, e := range r.entries {
		if e.Sys == r.systems.TPCDS && len(e.Tpl.Tables) >= 3 {
			entry = e
			break
		}
	}
	base, eng, err := r.preparedSet(entry, m)
	if err != nil {
		return nil, err
	}
	ordered, err := workload.Order(base, workload.Random, r.cfg.Seed+41)
	if err != nil {
		return nil, err
	}
	seq := &workload.Sequence{Name: entry.Tpl.Name, Tpl: entry.Tpl, Instances: ordered}
	configs := []struct {
		label string
		cfg   core.Config
	}{
		{"naive (recost all)", core.Config{Lambda: 1.1, StoreAlways: true, CostCheckLimit: 1 << 30}},
		{"GL-order, limit 8", core.Config{Lambda: 1.1, StoreAlways: true, CostCheckLimit: 8}},
		{"GL-order, limit 3", core.Config{Lambda: 1.1, StoreAlways: true, CostCheckLimit: 3}},
		{"+redundancy λr=√λ", core.Config{Lambda: 1.1, CostCheckLimit: 3}},
	}
	var rows []AblationRow
	for _, c := range configs {
		tech, err := core.NewSCR(eng, c.cfg)
		if err != nil {
			return nil, err
		}
		res, err := harness.Run(context.Background(), eng, tech, seq, harness.Options{})
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{
			Label:          c.label,
			GetPlanRecosts: res.GetPlanRecosts,
			NumOpt:         res.NumOpt,
			TC:             res.TotalCostRatio,
		})
	}
	r.printf("== Ablation: GL-ordering heuristic in getPlan (template %s, m=%d) ==\n",
		entry.Tpl.Name, m)
	r.printf("%-22s %14s %8s %8s\n", "config", "getPlanRecosts", "numOpt", "TC")
	for _, row := range rows {
		r.printf("%-22s %14d %8d %8.3f\n", row.Label, row.GetPlanRecosts, row.NumOpt, row.TC)
	}
	return rows, nil
}
