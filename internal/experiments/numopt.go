package experiments

import (
	"context"
	"fmt"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/suite"
	"repro/internal/workload"
)

// OptRow is one technique's optimizer-overhead summary (Figure 9 et al.).
type OptRow struct {
	Technique string
	// MeanPct and P95Pct are numOpt as a percentage of instances.
	MeanPct, P95Pct, MaxPct float64
}

// Fig9 reproduces Figure 9: numOpt % across the Table 2 techniques.
func (r *Runner) Fig9() ([]OptRow, error) {
	seqs, err := r.Sequences()
	if err != nil {
		return nil, err
	}
	rows, err := r.optRows(StandardFactories(2), seqs)
	if err != nil {
		return nil, err
	}
	r.printOptRows("Figure 9: numOpt %% for various techniques", rows)
	return rows, nil
}

// Fig10 reproduces Figure 10: numOpt % for SCR under varying λ.
func (r *Runner) Fig10() ([]OptRow, error) {
	seqs, err := r.Sequences()
	if err != nil {
		return nil, err
	}
	var fs []Factory
	for _, lambda := range []float64{1.1, 1.2, 1.5, 2.0} {
		fs = append(fs, SCRFactory(lambda))
	}
	rows, err := r.optRows(fs, seqs)
	if err != nil {
		return nil, err
	}
	r.printOptRows("Figure 10: numOpt %% for SCR with varying λ", rows)
	return rows, nil
}

// Fig20 reproduces Figure 20 (Appendix H.5): numOpt % restricted to random
// orderings only.
func (r *Runner) Fig20() ([]OptRow, error) {
	saved := r.cfg.Orderings
	r.cfg.Orderings = []workload.Ordering{workload.Random}
	defer func() { r.cfg.Orderings = saved }()
	seqs, err := r.Sequences()
	if err != nil {
		return nil, err
	}
	rows, err := r.optRows(StandardFactories(2), seqs)
	if err != nil {
		return nil, err
	}
	r.printOptRows("Figure 20: numOpt %% (random orderings only)", rows)
	return rows, nil
}

func (r *Runner) optRows(fs []Factory, seqs []*SeqCtx) ([]OptRow, error) {
	var rows []OptRow
	for _, f := range fs {
		results, err := r.RunTechnique(f, seqs, harness.Options{})
		if err != nil {
			return nil, err
		}
		s := harness.Summarize(results, harness.MetricOptFraction)
		rows = append(rows, OptRow{
			Technique: f.Label,
			MeanPct:   s.Mean * 100,
			P95Pct:    s.P95 * 100,
			MaxPct:    s.Max * 100,
		})
	}
	return rows, nil
}

func (r *Runner) printOptRows(title string, rows []OptRow) {
	r.printf("== %s ==\n", title)
	r.printf("%-10s %10s %10s %10s\n", "technique", "mean%", "p95%", "max%")
	for _, row := range rows {
		r.printf("%-10s %10.1f %10.1f %10.1f\n", row.Technique, row.MeanPct, row.P95Pct, row.MaxPct)
	}
}

// GrowthPoint is one (m, numOpt%) sample of Figures 11 and 18.
type GrowthPoint struct {
	M         int
	Technique string
	OptPct    float64
}

// Fig11 reproduces Figure 11: for an example 4-dimensional template, numOpt
// % as the workload length m grows. Techniques: PCM2, SCR1.1, SCR2.
func (r *Runner) Fig11(ms []int) ([]GrowthPoint, error) {
	if len(ms) == 0 {
		ms = []int{250, 500, 1000, 2500}
	}
	e, err := r.templateWithDims(4)
	if err != nil {
		return nil, err
	}
	return r.growthExperiment("Figure 11: 4-d example query — numOpt % vs m", e, ms,
		[]Factory{PCMFactory(2), SCRFactory(1.1), SCRFactory(2)})
}

// Fig18 reproduces Figure 18 (Appendix H.3): for a 10-dimensional template,
// numOpt % as m grows. Techniques: PCM2, Ellipse, SCR2.
func (r *Runner) Fig18(ms []int) ([]GrowthPoint, error) {
	if len(ms) == 0 {
		ms = []int{250, 500, 1000, 2500}
	}
	e, err := r.templateWithDims(10)
	if err != nil {
		return nil, err
	}
	ellipse := Factory{Label: "Ellipse", New: func(eng core.Engine) (core.Technique, error) {
		return baselines.NewEllipse(eng, 0.90)
	}}
	return r.growthExperiment("Figure 18: 10-d example query — numOpt % vs m", e, ms,
		[]Factory{PCMFactory(2), ellipse, SCRFactory(2)})
}

func (r *Runner) templateWithDims(d int) (suite.Entry, error) {
	// Search the complete suite, not just the sampled subset, so the
	// dimension-specific experiments always find their template.
	all, err := suite.Build(r.systems)
	if err != nil {
		return suite.Entry{}, err
	}
	for _, e := range all {
		if e.Tpl.Dimensions() == d {
			return e, nil
		}
	}
	return suite.Entry{}, fmt.Errorf("experiments: no template with d=%d in suite", d)
}

func (r *Runner) growthExperiment(title string, e suite.Entry, ms []int, fs []Factory) ([]GrowthPoint, error) {
	var points []GrowthPoint
	for _, m := range ms {
		base, eng, err := r.preparedSet(e, m)
		if err != nil {
			return nil, err
		}
		ordered, err := workload.Order(base, workload.Random, r.cfg.Seed+99)
		if err != nil {
			return nil, err
		}
		seq := &workload.Sequence{Name: fmt.Sprintf("%s/m=%d", e.Tpl.Name, m), Tpl: e.Tpl, Instances: ordered}
		for _, f := range fs {
			tech, err := f.New(eng)
			if err != nil {
				return nil, err
			}
			res, err := harness.Run(context.Background(), eng, tech, seq, harness.Options{})
			if err != nil {
				return nil, err
			}
			points = append(points, GrowthPoint{M: m, Technique: f.Label, OptPct: res.OptFraction * 100})
		}
	}
	r.printf("== %s (template %s) ==\n", title, e.Tpl.Name)
	r.printf("%-8s", "m")
	for _, f := range fs {
		r.printf(" %10s", f.Label)
	}
	r.printf("\n")
	for _, m := range ms {
		r.printf("%-8d", m)
		for _, f := range fs {
			for _, p := range points {
				if p.M == m && p.Technique == f.Label {
					r.printf(" %9.1f%%", p.OptPct)
				}
			}
		}
		r.printf("\n")
	}
	return points, nil
}

// DimPoint is one (d, numOpt%) sample of Figure 12.
type DimPoint struct {
	D         int
	Technique string
	OptPct    float64
	Templates int
}

// Fig12 reproduces Figure 12: numOpt % for SCR2 and PCM2 as the number of
// parameterized predicates d grows, averaged over the suite templates with
// each dimensionality.
func (r *Runner) Fig12() ([]DimPoint, error) {
	all, err := suite.Build(r.systems)
	if err != nil {
		return nil, err
	}
	byD := map[int][]suite.Entry{}
	for _, e := range all {
		d := e.Tpl.Dimensions()
		// Cap the per-d template count to keep runtime bounded.
		if len(byD[d]) < 3 {
			byD[d] = append(byD[d], e)
		}
	}
	fs := []Factory{SCRFactory(2), PCMFactory(2)}
	var points []DimPoint
	for d := 2; d <= 10; d++ {
		entries := byD[d]
		if len(entries) == 0 {
			continue
		}
		sums := make(map[string]float64)
		count := 0
		for _, e := range entries {
			base, eng, err := r.preparedSet(e, r.cfg.M)
			if err != nil {
				return nil, err
			}
			ordered, err := workload.Order(base, workload.Random, r.cfg.Seed+5)
			if err != nil {
				return nil, err
			}
			seq := &workload.Sequence{Name: e.Tpl.Name, Tpl: e.Tpl, Instances: ordered}
			for _, f := range fs {
				tech, err := f.New(eng)
				if err != nil {
					return nil, err
				}
				res, err := harness.Run(context.Background(), eng, tech, seq, harness.Options{})
				if err != nil {
					return nil, err
				}
				sums[f.Label] += res.OptFraction * 100
			}
			count++
		}
		for _, f := range fs {
			points = append(points, DimPoint{
				D: d, Technique: f.Label, OptPct: sums[f.Label] / float64(count), Templates: count,
			})
		}
	}
	r.printf("== Figure 12: numOpt %% vs dimensions d — SCR2 vs PCM2 ==\n")
	r.printf("%-4s %10s %10s %10s\n", "d", "SCR2", "PCM2", "#templates")
	for d := 2; d <= 10; d++ {
		var scr, pcm float64
		n := 0
		for _, p := range points {
			if p.D != d {
				continue
			}
			n = p.Templates
			if p.Technique == "SCR2" {
				scr = p.OptPct
			} else {
				pcm = p.OptPct
			}
		}
		if n > 0 {
			r.printf("%-4d %9.1f%% %9.1f%% %10d\n", d, scr, pcm, n)
		}
	}
	return points, nil
}

// BudgetPoint is one (k, numOpt%) sample of Figure 19.
type BudgetPoint struct {
	K      int // 0 = unlimited
	OptPct float64
}

// Fig19 reproduces Figure 19 (Appendix H.4): the impact of a plan-cache
// budget k on SCR2's optimizer calls.
func (r *Runner) Fig19() ([]BudgetPoint, error) {
	seqs, err := r.Sequences()
	if err != nil {
		return nil, err
	}
	var points []BudgetPoint
	for _, k := range []int{0, 10, 5, 2} {
		cfg := core.Config{Lambda: 2, PlanBudget: k, DetectViolations: true}
		label := "SCR2/k=inf"
		if k > 0 {
			label = fmt.Sprintf("SCR2/k=%d", k)
		}
		f := SCRConfigFactory(label, cfg)
		results, err := r.RunTechnique(f, seqs, harness.Options{})
		if err != nil {
			return nil, err
		}
		s := harness.Summarize(results, harness.MetricOptFraction)
		points = append(points, BudgetPoint{K: k, OptPct: s.Mean * 100})
	}
	r.printf("== Figure 19: numOpt %% vs plan-cache budget k (SCR2) ==\n")
	r.printf("%-8s %10s\n", "k", "numOpt%")
	for _, p := range points {
		k := "inf"
		if p.K > 0 {
			k = fmt.Sprintf("%d", p.K)
		}
		r.printf("%-8s %9.1f%%\n", k, p.OptPct)
	}
	return points, nil
}
