package experiments

import (
	"fmt"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/harness"
)

// DistPoint is one sequence's (MSO, TotalCostRatio) pair in a distribution
// plot (Figures 6 and 7 plot these in increasing TC order).
type DistPoint struct {
	Sequence string
	MSO      float64
	TC       float64
}

// DistResult is a per-technique distribution over all sequences.
type DistResult struct {
	Technique string
	Points    []DistPoint
	MSO       harness.Summary
	TC        harness.Summary
	// Violations counts sequences whose MSO exceeded the technique's bound
	// (only set for guarantee-bearing techniques).
	Violations int
}

func (r *Runner) distFor(f Factory, seqs []*SeqCtx, lambda float64) (*DistResult, error) {
	results, err := r.RunTechnique(f, seqs, harness.Options{Lambda: lambda})
	if err != nil {
		return nil, err
	}
	sortByTC(results)
	out := &DistResult{
		Technique: f.Label,
		MSO:       harness.Summarize(results, harness.MetricMSO),
		TC:        harness.Summarize(results, harness.MetricTC),
	}
	for _, res := range results {
		out.Points = append(out.Points, DistPoint{Sequence: res.Sequence, MSO: res.MSO, TC: res.TotalCostRatio})
		if lambda > 0 && res.MSO > lambda*(1+1e-9) {
			out.Violations++
		}
	}
	return out, nil
}

func (r *Runner) printDist(title string, dists []*DistResult) {
	r.printf("== %s ==\n", title)
	r.printf("%-10s %8s %8s %8s | %8s %8s %8s | %s\n",
		"technique", "MSO.med", "MSO.p95", "MSO.max", "TC.med", "TC.p95", "TC.max", "bound-violating seqs")
	for _, d := range dists {
		r.printf("%-10s %8.2f %8.2f %8.2f | %8.2f %8.2f %8.2f | %d/%d\n",
			d.Technique, d.MSO.Median, d.MSO.P95, d.MSO.Max,
			d.TC.Median, d.TC.P95, d.TC.Max, d.Violations, d.MSO.N)
	}
}

// Fig6 reproduces Figure 6: MSO and TotalCostRatio distributions for
// Optimize-Once and Ellipse across all workload sequences.
func (r *Runner) Fig6() ([]*DistResult, error) {
	seqs, err := r.Sequences()
	if err != nil {
		return nil, err
	}
	var out []*DistResult
	for _, f := range []Factory{
		{Label: "OptOnce", New: func(eng core.Engine) (core.Technique, error) {
			return baselines.NewOptOnce(eng), nil
		}},
		{Label: "Ellipse", New: func(eng core.Engine) (core.Technique, error) {
			return baselines.NewEllipse(eng, 0.90)
		}},
	} {
		d, err := r.distFor(f, seqs, 0)
		if err != nil {
			return nil, err
		}
		out = append(out, d)
	}
	r.printDist("Figure 6: MSO and TotalCostRatio — OptOnce vs Ellipse", out)
	return out, nil
}

// Fig7 reproduces Figure 7: MSO and TC distributions for PCM2 and SCR2,
// including the count of (rare) bound violations caused by cost-model
// assumption violations.
func (r *Runner) Fig7() ([]*DistResult, error) {
	seqs, err := r.Sequences()
	if err != nil {
		return nil, err
	}
	var out []*DistResult
	for _, f := range []Factory{PCMFactory(2), SCRFactory(2)} {
		d, err := r.distFor(f, seqs, 2)
		if err != nil {
			return nil, err
		}
		out = append(out, d)
	}
	r.printDist("Figure 7: MSO and TotalCostRatio — PCM2 vs SCR2 (λ=2)", out)
	return out, nil
}

// Fig8 reproduces Figure 8: TotalCostRatio for SCR under varying λ.
func (r *Runner) Fig8() ([]*DistResult, error) {
	seqs, err := r.Sequences()
	if err != nil {
		return nil, err
	}
	var out []*DistResult
	for _, lambda := range []float64{1.1, 1.2, 1.5, 2.0} {
		d, err := r.distFor(SCRFactory(lambda), seqs, lambda)
		if err != nil {
			return nil, err
		}
		out = append(out, d)
	}
	r.printf("== Figure 8: TotalCostRatio for SCR with varying λ ==\n")
	r.printf("%-8s %8s %8s %8s %8s\n", "λ", "TC.mean", "TC.med", "TC.p95", "TC.max")
	lambdas := []float64{1.1, 1.2, 1.5, 2.0}
	for i, d := range out {
		r.printf("%-8g %8.3f %8.3f %8.3f %8.3f\n",
			lambdas[i], d.TC.Mean, d.TC.Median, d.TC.P95, d.TC.Max)
	}
	return out, nil
}

// AggRow is one technique's aggregate metric (Figures 16 and 17).
type AggRow struct {
	Technique string
	Mean, P95 float64
}

// Fig16 reproduces Figure 16 (Appendix H.2): aggregate MSO per technique.
func (r *Runner) Fig16() ([]AggRow, error) {
	return r.aggMetric("Figure 16: aggregate MSO (mean / p95)", harness.MetricMSO)
}

// Fig17 reproduces Figure 17 (Appendix H.2): aggregate TotalCostRatio.
func (r *Runner) Fig17() ([]AggRow, error) {
	return r.aggMetric("Figure 17: aggregate TotalCostRatio (mean / p95)", harness.MetricTC)
}

func (r *Runner) aggMetric(title string, metric harness.Metric) ([]AggRow, error) {
	seqs, err := r.Sequences()
	if err != nil {
		return nil, err
	}
	var rows []AggRow
	for _, f := range StandardFactories(2) {
		results, err := r.RunTechnique(f, seqs, harness.Options{})
		if err != nil {
			return nil, err
		}
		s := harness.Summarize(results, metric)
		rows = append(rows, AggRow{Technique: f.Label, Mean: s.Mean, P95: s.P95})
	}
	r.printf("== %s ==\n", title)
	r.printf("%-10s %10s %10s\n", "technique", "mean", "p95")
	for _, row := range rows {
		r.printf("%-10s %10.2f %10.2f\n", row.Technique, row.Mean, row.P95)
	}
	return rows, nil
}

// Fig21Row compares a baseline with and without the H.6 Recost redundancy
// check.
type Fig21Row struct {
	Technique              string
	PlainMSO, AugMSO       float64 // p95
	PlainTC, AugTC         float64 // p95
	PlainPlans, AugPlans   float64 // p95
	PlainOptPct, AugOptPct float64 // mean numOpt %
}

// Fig21 reproduces Figure 21 (Appendix H.6): the effect of giving existing
// techniques the Recost-based redundancy check — numPlans improves but
// MSO/TC stay in the same (high) range.
func (r *Runner) Fig21() ([]Fig21Row, error) {
	seqs, err := r.Sequences()
	if err != nil {
		return nil, err
	}
	type mk struct {
		label string
		build func(eng core.Engine, augment bool) (core.Technique, error)
	}
	makers := []mk{
		{"Ellipse", func(eng core.Engine, augment bool) (core.Technique, error) {
			t, err := baselines.NewEllipse(eng, 0.90)
			if err == nil && augment {
				err = baselines.EnableRedundancy(t, 1.4)
			}
			return t, err
		}},
		{"Density", func(eng core.Engine, augment bool) (core.Technique, error) {
			t, err := baselines.NewDensity(eng, 0.1, 0.5, 3)
			if err == nil && augment {
				err = baselines.EnableRedundancy(t, 1.4)
			}
			return t, err
		}},
		{"Ranges", func(eng core.Engine, augment bool) (core.Technique, error) {
			t, err := baselines.NewRanges(eng, 0.01)
			if err == nil && augment {
				err = baselines.EnableRedundancy(t, 1.4)
			}
			return t, err
		}},
	}
	var rows []Fig21Row
	for _, m := range makers {
		var summ [2]struct {
			mso, tc, plans harness.Summary
			optPct         float64
		}
		for variant := 0; variant < 2; variant++ {
			augment := variant == 1
			f := Factory{Label: m.label, New: func(eng core.Engine) (core.Technique, error) {
				return m.build(eng, augment)
			}}
			results, err := r.RunTechnique(f, seqs, harness.Options{})
			if err != nil {
				return nil, err
			}
			summ[variant].mso = harness.Summarize(results, harness.MetricMSO)
			summ[variant].tc = harness.Summarize(results, harness.MetricTC)
			summ[variant].plans = harness.Summarize(results, harness.MetricNumPlans)
			summ[variant].optPct = harness.Summarize(results, harness.MetricOptFraction).Mean * 100
		}
		rows = append(rows, Fig21Row{
			Technique: m.label,
			PlainMSO:  summ[0].mso.P95, AugMSO: summ[1].mso.P95,
			PlainTC: summ[0].tc.P95, AugTC: summ[1].tc.P95,
			PlainPlans: summ[0].plans.P95, AugPlans: summ[1].plans.P95,
			PlainOptPct: summ[0].optPct, AugOptPct: summ[1].optPct,
		})
	}
	r.printf("== Figure 21: existing techniques with the Recost redundancy check ==\n")
	r.printf("%-10s | %18s | %18s | %18s | %18s\n", "technique",
		"MSO p95 (plain→+RC)", "TC p95 (plain→+RC)", "plans p95 (pl→+RC)", "numOpt%% (pl→+RC)")
	for _, row := range rows {
		r.printf("%-10s | %8.2f → %7.2f | %8.2f → %7.2f | %8.0f → %7.0f | %8.1f → %7.1f\n",
			row.Technique, row.PlainMSO, row.AugMSO, row.PlainTC, row.AugTC,
			row.PlainPlans, row.AugPlans, row.PlainOptPct, row.AugOptPct)
	}
	return rows, nil
}

// fmtPct formats a fraction as a percentage string.
func fmtPct(f float64) string { return fmt.Sprintf("%.1f%%", f*100) }
