package experiments

import (
	"context"
	"repro/internal/baselines"
	"repro/internal/core"
)

// Fig1Decision records how each technique handled one instance of the
// example workload.
type Fig1Decision struct {
	Instance  int
	SV        []float64
	Technique string
	Via       core.Check
	Optimized bool
}

// Fig1Result summarizes the Figure 1 example: per-instance decisions and
// per-technique optimizer-call counts.
type Fig1Result struct {
	Decisions []Fig1Decision
	NumOpt    map[string]int
}

// Fig1 reproduces the flavor of Figure 1: a short 2-dimensional workload
// whose instances cluster in a few selectivity regions, processed by the
// Table 2 techniques. SCR should optimize the fewest instances (6 of 13 in
// the paper's example) by exploiting the selectivity and cost checks, while
// PCM optimizes nearly all.
func (r *Runner) Fig1() (*Fig1Result, error) {
	// A 13-instance 2-d workload shaped like the paper's example: clusters
	// around a few plan-optimality regions plus a couple of outliers.
	svs := [][]float64{
		{0.010, 0.010}, // q1  — cluster A
		{0.300, 0.300}, // q2  — cluster B
		{0.013, 0.012}, // q3  — near q1 (cost check in the paper)
		{0.310, 0.290}, // q4  — near q2 (selectivity check)
		{0.011, 0.009}, // q5  — near q1
		{0.009, 0.012}, // q6  — near q1
		{0.200, 0.010}, // q7  — ridge between regions
		{0.012, 0.011}, // q8  — near q1 (cost check)
		{0.800, 0.800}, // q9  — cluster C
		{0.010, 0.011}, // q10 — near q1 (selectivity check)
		{0.290, 0.310}, // q11 — near q2 (selectivity check)
		{0.015, 0.010}, // q12 — near q1 (cost check)
		{0.820, 0.790}, // q13 — near q9
	}
	// Use the first 2-d template of the suite.
	var entry = r.entries[0]
	for _, e := range r.entries {
		if e.Tpl.Dimensions() == 2 {
			entry = e
			break
		}
	}
	if entry.Tpl.Dimensions() != 2 {
		return nil, errNoTwoD
	}
	eng, err := r.engineFor(entry)
	if err != nil {
		return nil, err
	}
	out := &Fig1Result{NumOpt: make(map[string]int)}
	factories := []Factory{
		PCMFactory(2),
		{Label: "Ellipse", New: func(e core.Engine) (core.Technique, error) {
			return baselines.NewEllipse(e, 0.90)
		}},
		{Label: "Ranges", New: func(e core.Engine) (core.Technique, error) {
			return baselines.NewRanges(e, 0.01)
		}},
		SCRFactory(2),
	}
	for _, f := range factories {
		tech, err := f.New(eng)
		if err != nil {
			return nil, err
		}
		for i, sv := range svs {
			dec, err := tech.Process(context.Background(), sv)
			if err != nil {
				return nil, err
			}
			out.Decisions = append(out.Decisions, Fig1Decision{
				Instance: i + 1, SV: sv, Technique: f.Label,
				Via: dec.Via, Optimized: dec.Optimized,
			})
			if dec.Optimized {
				out.NumOpt[f.Label]++
			}
		}
	}
	r.printf("== Figure 1: example 13-instance workload (%s) ==\n", entry.Tpl.Name)
	r.printf("%-10s", "instance")
	for _, f := range factories {
		r.printf(" %-18s", f.Label)
	}
	r.printf("\n")
	for i := range svs {
		r.printf("q%-9d", i+1)
		for _, f := range factories {
			for _, d := range out.Decisions {
				if d.Instance == i+1 && d.Technique == f.Label {
					r.printf(" %-18s", d.Via)
				}
			}
		}
		r.printf("\n")
	}
	r.printf("%-10s", "numOpt")
	for _, f := range factories {
		r.printf(" %-18d", out.NumOpt[f.Label])
	}
	r.printf("\n")
	return out, nil
}

var errNoTwoD = &noTwoDErr{}

type noTwoDErr struct{}

func (*noTwoDErr) Error() string {
	return "experiments: no 2-dimensional template in the selected suite"
}
