package engine

import (
	"math"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/query"
)

func testSystem(t testing.TB) (*System, *query.Template) {
	t.Helper()
	sys, err := NewSystem(catalog.NewTPCH(0.1), 42)
	if err != nil {
		t.Fatal(err)
	}
	tpl := &query.Template{
		Name:    "q2d",
		Catalog: sys.Cat,
		Tables:  []string{"lineitem", "orders"},
		Joins: []query.Join{{
			Left: "lineitem", Right: "orders",
			LeftCol: "l_orderkey", RightCol: "o_orderkey",
			Selectivity: 1.0 / 150_000,
		}},
		Preds: []query.Predicate{
			{Table: "lineitem", Column: "l_shipdate", Op: query.LE, Param: 0},
			{Table: "orders", Column: "o_orderdate", Op: query.LE, Param: 1},
		},
	}
	return sys, tpl
}

func TestEngineOptimizeAndRecost(t *testing.T) {
	sys, tpl := testSystem(t)
	eng, err := sys.EngineFor(tpl)
	if err != nil {
		t.Fatal(err)
	}
	if eng.Dimensions() != 2 {
		t.Fatalf("Dimensions() = %d, want 2", eng.Dimensions())
	}
	sv := []float64{0.05, 0.1}
	cp, c, err := eng.Optimize(sv)
	if err != nil {
		t.Fatal(err)
	}
	if c <= 0 {
		t.Fatalf("optimize cost = %v", c)
	}
	rc, err := eng.Recost(cp, sv)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rc-c)/c > 1e-9 {
		t.Errorf("Recost at optimized point = %v, want %v", rc, c)
	}
	if cp.Fingerprint() == "" {
		t.Error("empty fingerprint")
	}
	if cp.MemoryBytes() <= 0 {
		t.Error("non-positive plan memory estimate")
	}
}

func TestSetStatsFlushesRecostCache(t *testing.T) {
	sys, tpl := testSystem(t)
	eng, err := sys.EngineFor(tpl)
	if err != nil {
		t.Fatal(err)
	}
	sv := []float64{0.05, 0.1}
	cp, _, err := eng.Optimize(sv)
	if err != nil {
		t.Fatal(err)
	}
	// First recost fills the cache; the second must hit it.
	if _, err := eng.Recost(cp, sv); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Recost(cp, sv); err != nil {
		t.Fatal(err)
	}
	hits, _ := eng.RecostCacheCounters()
	if hits == 0 {
		t.Fatal("expected a recost-cache hit before the stats swap")
	}

	// Swap in a statistics store built from different data: the swap must
	// flush the cache, so the next identical recost misses.
	sys2, err := NewSystem(catalog.NewTPCH(0.1), 43)
	if err != nil {
		t.Fatal(err)
	}
	eng.SetStats(sys2.Stats)
	_, missesBefore := eng.RecostCacheCounters()
	if _, err := eng.Recost(cp, sv); err != nil {
		t.Fatal(err)
	}
	_, missesAfter := eng.RecostCacheCounters()
	if missesAfter != missesBefore+1 {
		t.Errorf("recost after SetStats hit the cache (misses %d -> %d); stale cost served",
			missesBefore, missesAfter)
	}
}

func TestEngineTimingAccounting(t *testing.T) {
	sys, tpl := testSystem(t)
	eng, err := sys.EngineFor(tpl)
	if err != nil {
		t.Fatal(err)
	}
	cp, _, err := eng.Optimize([]float64{0.1, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Recost(cp, []float64{0.2, 0.2}); err != nil {
		t.Fatal(err)
	}
	ot, rt, oc, rc := eng.Timing()
	if oc != 1 || rc != 1 {
		t.Errorf("calls = (%d, %d), want (1, 1)", oc, rc)
	}
	if ot <= 0 || rt <= 0 {
		t.Errorf("times = (%v, %v), want positive", ot, rt)
	}
	eng.ResetTiming()
	ot, rt, oc, rc = eng.Timing()
	if ot != 0 || rt != 0 || oc != 0 || rc != 0 {
		t.Error("ResetTiming did not zero the counters")
	}
}

func TestEngineRecostNil(t *testing.T) {
	sys, tpl := testSystem(t)
	eng, err := sys.EngineFor(tpl)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Recost(nil, []float64{0.1, 0.1}); err == nil {
		t.Error("recost of nil plan should fail")
	}
}

func TestEngineForRejectsInvalidTemplate(t *testing.T) {
	sys, _ := testSystem(t)
	bad := &query.Template{Name: "", Catalog: sys.Cat, Tables: []string{"lineitem"}}
	if _, err := sys.EngineFor(bad); err == nil {
		t.Error("invalid template should be rejected")
	}
}

func TestRecostWallClockCheaperThanOptimize(t *testing.T) {
	// Table 3's enabling fact: Recost is much faster than optimization.
	sys, tpl := testSystem(t)
	eng, err := sys.EngineFor(tpl)
	if err != nil {
		t.Fatal(err)
	}
	cp, _, err := eng.Optimize([]float64{0.05, 0.05})
	if err != nil {
		t.Fatal(err)
	}
	const rounds = 20
	for i := 0; i < rounds; i++ {
		sv := []float64{0.01 + 0.04*float64(i)/rounds, 0.05}
		if _, _, err := eng.Optimize(sv); err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Recost(cp, sv); err != nil {
			t.Fatal(err)
		}
	}
	ot, rt, oc, rc := eng.Timing()
	avgOpt := ot / time.Duration(oc)
	avgRecost := rt / time.Duration(rc)
	if avgRecost*2 >= avgOpt {
		t.Errorf("avg recost %v not clearly cheaper than avg optimize %v", avgRecost, avgOpt)
	}
}

func TestRehydrateRoundTrip(t *testing.T) {
	sys, tpl := testSystem(t)
	eng, err := sys.EngineFor(tpl)
	if err != nil {
		t.Fatal(err)
	}
	sv := []float64{0.03, 0.2}
	cp, c, err := eng.Optimize(sv)
	if err != nil {
		t.Fatal(err)
	}
	re, err := eng.Rehydrate(cp.Plan)
	if err != nil {
		t.Fatal(err)
	}
	if re.Fingerprint() != cp.Fingerprint() {
		t.Error("rehydrated plan has a different fingerprint")
	}
	rc, err := eng.Recost(re, sv)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rc-c)/c > 1e-9 {
		t.Errorf("rehydrated recost %v != optimize cost %v", rc, c)
	}
	if _, err := eng.Rehydrate(nil); err == nil {
		t.Error("rehydrating nil should fail")
	}
}
