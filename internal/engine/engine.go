// Package engine exposes the database-engine surface the paper's online PQO
// techniques require (§4.2): for one query template, a full optimizer call,
// a selectivity-vector computation, and an efficient Recost API — together
// with wall-clock accounting that the experiments (notably Table 3) report.
package engine

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/catalog"
	"repro/internal/cost"
	"repro/internal/datagen"
	"repro/internal/memo"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/stats"
)

// CachedPlan is the unit stored in a PQO plan cache: the physical plan, its
// shrunken-memo recost representation (Appendix B), and its structural
// fingerprint.
type CachedPlan struct {
	Plan *plan.Plan
	SM   *memo.ShrunkenMemo
}

// Fingerprint returns the plan's structural identity.
func (cp *CachedPlan) Fingerprint() string { return cp.Plan.Fingerprint() }

// MemoryBytes estimates the plan-cache memory charged to this plan (§6.1).
// It tolerates plans without a shrunken memo (used by synthetic test
// engines).
func (cp *CachedPlan) MemoryBytes() int {
	n := len(cp.Plan.Fingerprint())
	if cp.SM != nil {
		n += cp.SM.Size()
	}
	return n
}

// TemplateEngine binds an optimizer to one query template. All PQO
// techniques for that template share one TemplateEngine. It is safe for
// concurrent use: Optimize and Recost touch only the immutable template
// and optimizer plus atomic accounting, so any number of Recost calls (the
// PQO cost checks' hot path) proceed in parallel.
type TemplateEngine struct {
	Tpl *query.Template
	Opt *memo.Optimizer

	optNanos    atomic.Int64
	recostNanos atomic.Int64
	optCalls    atomic.Int64
	recostCalls atomic.Int64

	// rc memoizes recost results per (plan fingerprint, sv hash). Valid
	// until the statistics store changes; see FlushRecostCache.
	rc recostCache
}

// NewTemplateEngine builds an engine for tpl over an existing optimizer.
func NewTemplateEngine(tpl *query.Template, opt *memo.Optimizer) (*TemplateEngine, error) {
	if err := tpl.Validate(); err != nil {
		return nil, err
	}
	return &TemplateEngine{Tpl: tpl, Opt: opt}, nil
}

// Dimensions returns the template's parameter count d.
func (e *TemplateEngine) Dimensions() int { return e.Tpl.Dimensions() }

// Optimize performs a full optimizer call for selectivity vector sv,
// returning the winning plan (with its recost representation) and its cost.
func (e *TemplateEngine) Optimize(sv []float64) (*CachedPlan, float64, error) {
	cp, c, _, err := e.OptimizeEpoch(sv)
	return cp, c, err
}

// OptimizeEpoch is Optimize plus the id of the statistics epoch the search
// ran under, so callers recording the result (e.g. a plan-cache anchor)
// can tag it with the generation its cost is valid for.
func (e *TemplateEngine) OptimizeEpoch(sv []float64) (*CachedPlan, float64, uint64, error) {
	start := time.Now()
	p, c, epoch, err := e.Opt.OptimizeEpoch(e.Tpl, sv)
	if err != nil {
		return nil, 0, 0, err
	}
	sm, err := memo.NewShrunkenMemo(e.Opt, p, e.Tpl)
	if err != nil {
		return nil, 0, 0, err
	}
	e.optNanos.Add(time.Since(start).Nanoseconds())
	e.optCalls.Add(1)
	return &CachedPlan{Plan: p, SM: sm}, c, epoch, nil
}

// Recost computes the cost of a cached plan at sv via its shrunken memo,
// consulting the recost result cache first. Callers recosting several plans
// for one instance should batch through PrepareRecost instead.
func (e *TemplateEngine) Recost(cp *CachedPlan, sv []float64) (float64, error) {
	c, _, err := e.RecostEpoch(cp, sv)
	return c, err
}

// RecostEpoch is Recost plus the id of the statistics epoch the cost was
// derived under. It routes through the prepared-instance path so the
// pinned environment, the returned epoch and the recost-cache key all name
// the same generation even if AdvanceEpoch lands concurrently.
func (e *TemplateEngine) RecostEpoch(cp *CachedPlan, sv []float64) (float64, uint64, error) {
	if cp == nil {
		return 0, 0, fmt.Errorf("engine: recost of nil cached plan")
	}
	pi, err := e.PrepareRecost(sv)
	if err != nil {
		return 0, 0, err
	}
	defer pi.Release()
	c, err := pi.Recost(cp)
	if err != nil {
		return 0, 0, err
	}
	return c, pi.EpochID(), nil
}

// StatsEpoch returns the id of the current statistics epoch.
func (e *TemplateEngine) StatsEpoch() uint64 { return e.Opt.Epoch().ID }

// RecostCacheCounters reports cumulative recost-cache hits and misses.
func (e *TemplateEngine) RecostCacheCounters() (hits, misses int64) {
	return e.rc.counters()
}

// AdvanceEpoch installs st as the next statistics generation and returns
// the new epoch. No cache flush is needed: recost results are keyed by
// epoch id, so entries from previous generations simply stop matching and
// age out under the shard-capacity sweep. The cacheinvalidation analyzer
// accepts AdvanceEpoch as a legal alternative to FlushRecostCache
// (docs/LINT.md).
func (e *TemplateEngine) AdvanceEpoch(st *stats.Store) *stats.Epoch {
	return e.Opt.AdvanceEpoch(st)
}

// SetStats swaps the optimizer's statistics store (a statistics reload).
// It is AdvanceEpoch without the returned epoch — kept for callers that
// predate the epoch lifecycle.
func (e *TemplateEngine) SetStats(st *stats.Store) {
	e.AdvanceEpoch(st)
}

// FlushRecostCache drops every cached recost result wholesale. With
// epoch-keyed entries this is never required for correctness — a stats
// swap through AdvanceEpoch invalidates by construction — but it remains
// available to reclaim memory eagerly (e.g. after a template is retired).
// It must not be called on a serving path; pqolint's cacheinvalidation
// analyzer rejects calls from internal/core.
func (e *TemplateEngine) FlushRecostCache() { e.rc.flush() }

// EnvPoolCounters reports the optimizer's pooled-environment accounting:
// environments handed out and pool reuses.
func (e *TemplateEngine) EnvPoolCounters() (gets, reuses int64) {
	return e.Opt.EnvPoolCounters()
}

// Timing reports cumulative wall-clock accounting.
func (e *TemplateEngine) Timing() (optTime, recostTime time.Duration, optCalls, recostCalls int64) {
	return time.Duration(e.optNanos.Load()), time.Duration(e.recostNanos.Load()),
		e.optCalls.Load(), e.recostCalls.Load()
}

// ResetTiming zeroes the wall-clock accounting (used between experiment
// phases that share an engine).
func (e *TemplateEngine) ResetTiming() {
	e.optNanos.Store(0)
	e.recostNanos.Store(0)
	e.optCalls.Store(0)
	e.recostCalls.Store(0)
}

// System bundles a catalog with its statistics and optimizer: the "database
// instance" experiments run against.
type System struct {
	Cat   *catalog.Catalog
	Gen   *datagen.Generator
	Stats *stats.Store
	Opt   *memo.Optimizer
}

// NewSystem builds statistics and an optimizer for cat with the default
// cost model.
func NewSystem(cat *catalog.Catalog, seed int64) (*System, error) {
	gen := datagen.New(cat, seed)
	st, err := stats.Build(cat, gen)
	if err != nil {
		return nil, fmt.Errorf("engine: building statistics for %s: %w", cat.Name, err)
	}
	return &System{
		Cat:   cat,
		Gen:   gen,
		Stats: st,
		Opt:   memo.NewOptimizer(cat, cost.DefaultModel(), st),
	}, nil
}

// EngineFor returns a TemplateEngine for tpl over this system.
func (s *System) EngineFor(tpl *query.Template) (*TemplateEngine, error) {
	return NewTemplateEngine(tpl, s.Opt)
}

// AdvanceEpoch installs st as the system's next statistics generation and
// returns the new epoch. Every TemplateEngine built from this system
// shares the optimizer, so they all observe the advance at once. The
// exported Stats field keeps naming the current store for existing
// callers; versioned readers should use Opt.Epoch.
func (s *System) AdvanceEpoch(st *stats.Store) *stats.Epoch {
	s.Stats = st
	return s.Opt.AdvanceEpoch(st)
}

// ResampleStats builds a fresh statistics store for the system's catalog
// by re-sampling synthetic data with the given seed — the "full swap" form
// of an online statistics refresh. The result is not installed; pass it to
// AdvanceEpoch.
func (s *System) ResampleStats(seed int64) (*stats.Store, error) {
	gen := datagen.New(s.Cat, seed)
	st, err := stats.Build(s.Cat, gen)
	if err != nil {
		return nil, fmt.Errorf("engine: resampling statistics for %s: %w", s.Cat.Name, err)
	}
	return st, nil
}

// Rehydrate rebuilds a CachedPlan (including its shrunken-memo recost
// representation) from a bare plan tree — used when importing a persisted
// plan cache.
func (e *TemplateEngine) Rehydrate(p *plan.Plan) (*CachedPlan, error) {
	if p == nil || p.Root == nil {
		return nil, fmt.Errorf("engine: rehydrate of nil plan")
	}
	sm, err := memo.NewShrunkenMemo(e.Opt, p, e.Tpl)
	if err != nil {
		return nil, err
	}
	return &CachedPlan{Plan: p, SM: sm}, nil
}
